// Package greenviz reproduces "On the Greenness of In-Situ and
// Post-Processing Visualization Pipelines" (Adhinarayanan, Feng,
// Woodring, Rogers, Ahrens — IEEE IPDPSW 2015) as a calibrated,
// deterministic simulation in pure Go.
//
// The paper is an empirical study of one instrumented machine; this
// library rebuilds that machine — CPU/DRAM/disk power models, a
// mechanical 7200 rpm disk with a write-back page cache and an extent
// filesystem, Intel RAPL energy counters, a Wattsup wall meter — and
// runs the paper's proxy heat-transfer application through both
// visualization pipelines on top of it:
//
//	post-processing:  simulate → write checkpoints → read back → render
//	in-situ:          simulate → render live → flush frames
//
// Everything computes real data in virtual time: the heat solver and
// the renderer do genuine numerical work, while a discrete-event
// kernel charges calibrated virtual seconds and watts for it. Every
// run is bit-reproducible from a seed.
//
// # Quick start
//
//	n := greenviz.NewNode(greenviz.SandyBridge(), 1)
//	post := greenviz.Run(n, greenviz.PostProcessing, greenviz.CaseStudies()[0], greenviz.DefaultConfig())
//	n2 := greenviz.NewNode(greenviz.SandyBridge(), 2)
//	insitu := greenviz.Run(n2, greenviz.InSitu, greenviz.CaseStudies()[0], greenviz.DefaultConfig())
//	c := greenviz.Compare(post, insitu)
//	fmt.Printf("in-situ saves %.0f%% energy\n", c.EnergySavingsPct())
//
// # Regenerating the paper
//
// Every table and figure in the evaluation has a driver (see
// Experiments and RunExperiment, or the greenviz CLI under
// cmd/greenviz) and a benchmark in bench_test.go. EXPERIMENTS.md
// records paper-versus-measured for each artifact.
package greenviz

GO ?= go

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full pre-merge gate: formatting, vet, build, and the
# test suite under the race detector.
check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -timeout 45m ./...

# bench records the PR-1 benchmark set into BENCH_pr1.json.
bench:
	scripts/bench.sh

clean:
	rm -f greenviz BENCH_pr1.json

GO ?= go

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full pre-merge gate: formatting, vet, build (library,
# CLI, and examples), the test suite under the race detector, the
# golden-output regression suite (runs without race — the full
# experiment suite is infeasible under the detector, so it is skipped
# there and must run here explicitly), and a short fuzz pass over the
# checkpoint decoder (seeds plus 10s of mutation).
check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) build ./examples/...
	$(GO) test -race -timeout 45m ./...
	$(GO) test -run '^TestGolden' -timeout 30m ./internal/experiments
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePrefix$$' -fuzztime 10s ./internal/checkpoint

# golden re-verifies the committed per-experiment output digests;
# golden-update regenerates them after an intentional output change.
.PHONY: golden golden-update
golden:
	$(GO) test -run '^TestGolden' -timeout 30m ./internal/experiments
golden-update:
	$(GO) test -run '^TestGolden' -timeout 30m -update ./internal/experiments

# bench records the benchmark set into BENCH_pr2.json.
bench:
	scripts/bench.sh

clean:
	rm -f greenviz BENCH_pr1.json BENCH_pr2.json

GO ?= go

.PHONY: build test check static bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# static is the analysis gate on its own: gofmt (no unformatted files)
# and go vet. Runs in seconds; use it as the fast pre-commit check.
static:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

# check is the full pre-merge gate: the static-analysis gate, build
# (library, CLI, daemon, and examples), the test suite under the race
# detector (including the greenvizd API tests), the daemon smoke test
# (builds the real binary, submits fig4 over HTTP, and diffs the served
# report against the committed golden digest), the golden-output
# regression suites (run without race — the full experiment suite and
# the campaign report golden are infeasible under the detector, so
# they are skipped there and must run here explicitly), and a short
# fuzz pass over the checkpoint decoder (seeds plus 10s of mutation).
check: static
	$(GO) build ./...
	$(GO) build ./examples/...
	$(GO) test -race -timeout 45m ./...
	$(GO) test -run '^TestDaemonSmoke$$' -timeout 10m ./cmd/greenvizd
	$(GO) test -run '^TestGolden' -timeout 30m ./internal/experiments
	$(GO) test -run '^TestGoldenCampaignReport$$' -timeout 10m ./internal/campaign
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePrefix$$' -fuzztime 10s ./internal/checkpoint

# golden re-verifies the committed output digests (per-experiment and
# the example campaign report); golden-update regenerates them after
# an intentional output change.
.PHONY: golden golden-update
golden:
	$(GO) test -run '^TestGolden' -timeout 30m ./internal/experiments
	$(GO) test -run '^TestGoldenCampaignReport$$' -timeout 10m ./internal/campaign
golden-update:
	$(GO) test -run '^TestGolden' -timeout 30m -update ./internal/experiments
	$(GO) test -run '^TestGoldenCampaignReport$$' -timeout 10m -update ./internal/campaign

# bench records the benchmark set into BENCH_pr10.json.
bench:
	scripts/bench.sh

# profile captures serial CPU + heap pprof profiles for one experiment
# or pipeline (TARGET, default fig4) into PROFILE_DIR (default
# profiles/) and prints the top consumers. See DESIGN.md §12.
.PHONY: profile
profile:
	scripts/profile.sh $(or $(TARGET),fig4) $(or $(PROFILE_DIR),profiles)

# bench-check reruns the benchmark set into a scratch file and fails
# if any benchmark shared with the newest committed BENCH_*.json
# regressed by more than 10% ns/op (THRESHOLD env overrides).
.PHONY: bench-check
bench-check:
	scripts/bench.sh BENCH_check.json
	scripts/bench_compare.sh BENCH_check.json
	rm -f BENCH_check.json

clean:
	rm -f greenviz greenvizd BENCH_check.json \
		BENCH_pr1.json BENCH_pr2.json BENCH_pr4.json BENCH_pr6.json \
		BENCH_pr7.json BENCH_pr8.json BENCH_pr9.json BENCH_pr10.json
	rm -rf profiles

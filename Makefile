GO ?= go

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full pre-merge gate: formatting, vet, build, the test
# suite under the race detector, and a short fuzz pass over the
# checkpoint decoder (seeds plus 10s of mutation).
check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -timeout 45m ./...
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePrefix$$' -fuzztime 10s ./internal/checkpoint

# bench records the benchmark set into BENCH_pr2.json.
bench:
	scripts/bench.sh

clean:
	rm -f greenviz BENCH_pr1.json BENCH_pr2.json

package greenviz

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/viz"
)

// benchSuite returns a fresh suite per iteration: each benchmark
// measures the full regeneration of its artifact, including every
// pipeline/fio run it needs. RealSubsteps is reduced so host CPU time
// reflects the simulation harness, not redundant solver sub-stepping;
// virtual-time results are identical either way.
func benchSuite(seed uint64) *Suite {
	cfg := DefaultConfig()
	cfg.RealSubsteps = 4
	return NewSuite(seed, &cfg)
}

// benchReport runs one experiment per iteration and fails the
// benchmark if the artifact comes back empty.
func benchReport(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(benchSuite(uint64(i)+1), id)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Body) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

// BenchmarkTable1 regenerates the hardware-specification table.
func BenchmarkTable1(b *testing.B) { benchReport(b, "table1") }

// BenchmarkFig4 regenerates the stage time-share breakdown.
func BenchmarkFig4(b *testing.B) { benchReport(b, "fig4") }

// BenchmarkFig5 regenerates the six power profiles.
func BenchmarkFig5(b *testing.B) { benchReport(b, "fig5") }

// BenchmarkFig6 regenerates the nnread/nnwrite stage profiles.
func BenchmarkFig6(b *testing.B) { benchReport(b, "fig6") }

// BenchmarkFig7 regenerates the execution-time comparison and reports
// the case-study-1 in-situ time reduction as a custom metric.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(uint64(i) + 1)
		if _, err := RunExperiment(s, "fig7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the average-power comparison.
func BenchmarkFig8(b *testing.B) { benchReport(b, "fig8") }

// BenchmarkFig9 regenerates the peak-power comparison.
func BenchmarkFig9(b *testing.B) { benchReport(b, "fig9") }

// BenchmarkFig10 regenerates the energy comparison and reports the
// paper's headline number (case-study-1 energy savings) as a metric.
func BenchmarkFig10(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		n1 := NewNode(SandyBridge(), uint64(i)*2+1)
		n2 := NewNode(SandyBridge(), uint64(i)*2+2)
		cfg := DefaultConfig()
		cfg.RealSubsteps = 4
		cs := CaseStudies()[0]
		c := Compare(Run(n1, PostProcessing, cs, cfg), Run(n2, InSitu, cs, cfg))
		savings = c.EnergySavingsPct()
	}
	b.ReportMetric(savings, "savings_%")
}

// BenchmarkFig11 regenerates the energy-efficiency comparison.
func BenchmarkFig11(b *testing.B) { benchReport(b, "fig11") }

// BenchmarkTable2 regenerates the nnread/nnwrite power properties.
func BenchmarkTable2(b *testing.B) { benchReport(b, "table2") }

// BenchmarkBreakdown regenerates the §V-C savings decomposition and
// reports the static share as a metric.
func BenchmarkBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		n1 := NewNode(SandyBridge(), uint64(i)*2+1)
		n2 := NewNode(SandyBridge(), uint64(i)*2+2)
		cfg := DefaultConfig()
		cfg.RealSubsteps = 4
		cs := CaseStudies()[0]
		c := Compare(Run(n1, PostProcessing, cs, cfg), Run(n2, InSitu, cs, cfg))
		share = c.Breakdown(10.15, 104.5).StaticSharePct()
	}
	b.ReportMetric(share, "static_share_%")
}

// BenchmarkTable3 regenerates the fio table at the paper's full 4 GiB
// (dominated by the 2000+ virtual-second random-read run).
func BenchmarkTable3(b *testing.B) { benchReport(b, "table3") }

// BenchmarkHypothetical regenerates the §V-D reorganization argument.
func BenchmarkHypothetical(b *testing.B) { benchReport(b, "hypothetical") }

// BenchmarkAblations regenerates the design-choice ablations.
func BenchmarkAblations(b *testing.B) { benchReport(b, "ablations") }

// BenchmarkInTransit regenerates the multi-node in-transit study.
func BenchmarkInTransit(b *testing.B) { benchReport(b, "intransit") }

// BenchmarkHybrid regenerates the in-situ + in-transit offload study.
func BenchmarkHybrid(b *testing.B) { benchReport(b, "hybrid") }

// BenchmarkDevices regenerates the HDD/RAID/NVRAM/SSD sweep.
func BenchmarkDevices(b *testing.B) { benchReport(b, "devices") }

// BenchmarkOptimized regenerates the alternative-optimizations study.
func BenchmarkOptimized(b *testing.B) { benchReport(b, "optimized") }

// BenchmarkSampling regenerates the energy-vs-quality sampling sweep.
func BenchmarkSampling(b *testing.B) { benchReport(b, "sampling") }

// BenchmarkPFS regenerates the parallel-filesystem study.
func BenchmarkPFS(b *testing.B) { benchReport(b, "pfs") }

// BenchmarkPowerCap regenerates the power-capping sweep.
func BenchmarkPowerCap(b *testing.B) { benchReport(b, "powercap") }

// BenchmarkCompression regenerates the payload-compression study.
func BenchmarkCompression(b *testing.B) { benchReport(b, "compression") }

// BenchmarkCinema regenerates the image-database study.
func BenchmarkCinema(b *testing.B) { benchReport(b, "cinema") }

// BenchmarkPipelinePostProcessing measures one full post-processing
// case-study-1 run (the heaviest single unit of work in the suite).
func BenchmarkPipelinePostProcessing(b *testing.B) {
	cfg := DefaultConfig()
	cfg.RealSubsteps = 4
	cs := CaseStudies()[0]
	for i := 0; i < b.N; i++ {
		Run(NewNode(SandyBridge(), uint64(i)+1), PostProcessing, cs, cfg)
	}
}

// BenchmarkPipelineInSitu measures one full in-situ case-study-1 run.
func BenchmarkPipelineInSitu(b *testing.B) {
	cfg := DefaultConfig()
	cfg.RealSubsteps = 4
	cs := CaseStudies()[0]
	for i := 0; i < b.N; i++ {
		Run(NewNode(SandyBridge(), uint64(i)+1), InSitu, cs, cfg)
	}
}

// BenchmarkFioRandRead measures the 4 GiB random-read fio run alone
// (262,144 simulated disk requests).
func BenchmarkFioRandRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunFio(NewNode(SandyBridge(), uint64(i)+1), FioRandRead, DefaultFioConfig())
	}
}

// benchGrid builds the pipelines' 256x256 field with a non-trivial
// profile, matching the per-event work of a real run.
func benchGrid() *Field {
	g := NewHeatSolver(DefaultHeatParams()).Field()
	return g
}

// BenchmarkRender measures the hot render path at the pipelines' frame
// geometry, cycling frames through the pool the way the pipeline does.
// Steady state should report ~0 allocs/op.
func BenchmarkRender(b *testing.B) {
	g := benchGrid()
	opts := viz.DefaultRenderOptions()
	opts.Isolines = []float64{25, 50, 75}
	img, _ := viz.Render(g, opts) // warm the pools
	viz.ReleaseFrame(img)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, _ := viz.Render(g, opts)
		viz.ReleaseFrame(img)
	}
}

// BenchmarkCheckpointEncode measures one checkpoint prefix encode
// (header + 256x256 field, ~512 KiB) with the reusable Encoder.
// Steady state should report 0 allocs/op.
func BenchmarkCheckpointEncode(b *testing.B) {
	g := benchGrid()
	var e checkpoint.Encoder
	buf := e.EncodeTo(nil, g, 0, 0, 4096) // grow scratch and dst once
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.EncodeTo(buf[:0], g, uint64(i), float64(i), 4096)
	}
}

// benchSuiteAll regenerates every registered experiment on the given
// worker count; serial vs parallel quantifies the RunAll speedup
// (meaningful only on multi-core hosts).
func benchSuiteAll(b *testing.B, workers int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := benchSuite(uint64(i) + 1)
		s.Fio.FileSize = 64 * MiB
		reports, err := RunAllExperiments(ctx, s, workers)
		if err != nil {
			b.Fatal(err)
		}
		if want := len(Experiments()); len(reports) != want {
			b.Fatalf("got %d reports, want %d", len(reports), want)
		}
	}
}

// BenchmarkSuiteAllSerial regenerates the full artifact registry on one
// worker.
func BenchmarkSuiteAllSerial(b *testing.B) { benchSuiteAll(b, 1) }

// BenchmarkSuiteAllParallel regenerates the full artifact registry on
// one worker per core.
func BenchmarkSuiteAllParallel(b *testing.B) { benchSuiteAll(b, runtime.GOMAXPROCS(0)) }

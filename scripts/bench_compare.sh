#!/bin/sh
# bench_compare.sh — fail on benchmark regressions against a baseline.
#
# Usage: scripts/bench_compare.sh [new.json] [baseline.json]
#
# new.json defaults to BENCH_pr10.json; the baseline defaults to the
# newest committed BENCH_*.json other than new.json (by PR number).
# Benchmarks are matched by name; ones present in only one file are
# reported but don't fail the check (new kernels have no baseline, and
# retired benchmarks leave one behind). A matched benchmark fails when
# its ns/op exceeds the baseline by more than THRESHOLD percent
# (default 10), or — the allocation gates — when its allocs/op or
# B/op exceed the baseline by more than ALLOC_THRESHOLD percent
# (default 10). Allocation counts are deterministic, so the separate
# threshold can be pinned tight without scheduler-noise false alarms;
# ns/op drift never excuses an allocation regression. Kernel scaling
# rows (-2/-4 cpu suffix) are reported but never fail: on a host with
# fewer cores they measure oversubscription jitter, not performance —
# the unsuffixed serial rows carry the regression signal. Comparisons
# across hosts with different core counts are refused unless FORCE=1.
set -eu

cd "$(dirname "$0")/.."
new="${1:-BENCH_pr10.json}"
base="${2:-}"
threshold="${THRESHOLD:-10}"

if [ -z "$base" ]; then
    # Version sort, not lexical: BENCH_pr10.json is newer than
    # BENCH_pr9.json.
    base="$(git ls-files 'BENCH_*.json' | grep -v "^$new\$" | sort -V | tail -1)"
fi
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "bench_compare: no committed baseline BENCH_*.json found" >&2
    exit 1
fi
if [ ! -f "$new" ]; then
    echo "bench_compare: $new not found (run scripts/bench.sh first)" >&2
    exit 1
fi

alloc_threshold="${ALLOC_THRESHOLD:-10}"

echo "comparing $new against baseline $base (ns threshold ${threshold}%, alloc threshold ${alloc_threshold}%)"
NEW="$new" BASE="$base" THRESHOLD="$threshold" ALLOC_THRESHOLD="$alloc_threshold" FORCE="${FORCE:-0}" python3 - <<'EOF'
import json, os, re, sys

new = json.load(open(os.environ["NEW"]))
base = json.load(open(os.environ["BASE"]))
threshold = float(os.environ["THRESHOLD"])
alloc_threshold = float(os.environ["ALLOC_THRESHOLD"])

if os.environ["FORCE"] != "1" and new.get("cores") != base.get("cores"):
    print(f"bench_compare: host core counts differ ({new.get('cores')} vs "
          f"{base.get('cores')}); numbers are not comparable (FORCE=1 overrides)")
    sys.exit(1)

bnew = {b["name"]: b for b in new["benchmarks"]}
bbase = {b["name"]: b for b in base["benchmarks"]}

# The allocation gates compare each metric with its own threshold;
# metrics absent from either side (older ledgers lack them) pass.
GATES = [("ns_per_op", "ns/op", threshold),
         ("allocs_per_op", "allocs/op", alloc_threshold),
         ("bytes_per_op", "B/op", alloc_threshold)]

# fsync-bound benchmarks: their ns/op measures the container's disk
# latency (which swings 2x across container lifetimes), not the code,
# so ns drift is informational there. The alloc/bytes gates still
# apply in full — a leaked buffer in the write path fails the check.
DISK_BOUND = re.compile(r"StorePutCold|StoreEvict")

failed = []
for name in sorted(bnew.keys() & bbase.keys()):
    scaling = re.search(r"-\d+$", name) is not None
    for key, unit, limit in GATES:
        if key not in bnew[name] or key not in bbase[name]:
            continue
        n, b = bnew[name][key], bbase[name][key]
        delta = (n - b) / b * 100 if b else 0.0
        flag = ""
        if delta > limit:
            if scaling:
                flag = "  (scaling row, informational)"
            elif key == "ns_per_op" and DISK_BOUND.search(name):
                flag = "  (disk-bound, informational)"
            else:
                failed.append(f"{name} {unit}")
                flag = "  REGRESSION"
        if key == "ns_per_op" or flag:
            print(f"  {name:<40} {b:>14.0f} -> {n:>14.0f} {unit:<9} {delta:+6.1f}%{flag}")
for name in sorted(bnew.keys() - bbase.keys()):
    print(f"  {name:<40} (new benchmark, no baseline)")
for name in sorted(bbase.keys() - bnew.keys()):
    print(f"  {name:<40} (baseline only, not run)")

if failed:
    print(f"bench_compare: {len(failed)} metric(s) regressed beyond threshold "
          f"vs {os.environ['BASE']}: {', '.join(failed)}")
    sys.exit(1)
print("bench_compare: no regressions beyond threshold (ns/op, allocs/op, B/op)")
EOF

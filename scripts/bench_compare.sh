#!/bin/sh
# bench_compare.sh — fail on benchmark regressions against a baseline.
#
# Usage: scripts/bench_compare.sh [new.json] [baseline.json]
#
# new.json defaults to BENCH_pr7.json; the baseline defaults to the
# newest committed BENCH_*.json other than new.json (by PR number).
# Benchmarks are matched by name; ones present in only one file are
# reported but don't fail the check (new kernels have no baseline, and
# retired benchmarks leave one behind). A matched benchmark fails when
# its ns/op exceeds the baseline by more than THRESHOLD percent
# (default 10). Kernel scaling rows (-2/-4 cpu suffix) are reported
# but never fail: on a host with fewer cores they measure
# oversubscription jitter, not performance — the unsuffixed serial
# rows carry the regression signal. Comparisons across hosts with
# different core counts are refused unless FORCE=1.
set -eu

cd "$(dirname "$0")/.."
new="${1:-BENCH_pr7.json}"
base="${2:-}"
threshold="${THRESHOLD:-10}"

if [ -z "$base" ]; then
    base="$(git ls-files 'BENCH_*.json' | grep -v "^$new\$" | sort -t r -k 3 -n | tail -1)"
fi
if [ -z "$base" ] || [ ! -f "$base" ]; then
    echo "bench_compare: no committed baseline BENCH_*.json found" >&2
    exit 1
fi
if [ ! -f "$new" ]; then
    echo "bench_compare: $new not found (run scripts/bench.sh first)" >&2
    exit 1
fi

echo "comparing $new against baseline $base (threshold ${threshold}%)"
NEW="$new" BASE="$base" THRESHOLD="$threshold" FORCE="${FORCE:-0}" python3 - <<'EOF'
import json, os, re, sys

new = json.load(open(os.environ["NEW"]))
base = json.load(open(os.environ["BASE"]))
threshold = float(os.environ["THRESHOLD"])

if os.environ["FORCE"] != "1" and new.get("cores") != base.get("cores"):
    print(f"bench_compare: host core counts differ ({new.get('cores')} vs "
          f"{base.get('cores')}); numbers are not comparable (FORCE=1 overrides)")
    sys.exit(1)

bnew = {b["name"]: b for b in new["benchmarks"]}
bbase = {b["name"]: b for b in base["benchmarks"]}

failed = []
for name in sorted(bnew.keys() & bbase.keys()):
    n, b = bnew[name]["ns_per_op"], bbase[name]["ns_per_op"]
    delta = (n - b) / b * 100 if b else 0.0
    scaling = re.search(r"-\d+$", name) is not None
    flag = ""
    if delta > threshold:
        if scaling:
            flag = "  (scaling row, informational)"
        else:
            failed.append(name)
            flag = "  REGRESSION"
    print(f"  {name:<40} {b:>14.0f} -> {n:>14.0f} ns/op  {delta:+6.1f}%{flag}")
for name in sorted(bnew.keys() - bbase.keys()):
    print(f"  {name:<40} (new benchmark, no baseline)")
for name in sorted(bbase.keys() - bnew.keys()):
    print(f"  {name:<40} (baseline only, not run)")

if failed:
    print(f"bench_compare: {len(failed)} benchmark(s) regressed more than "
          f"{threshold}% vs {os.environ['BASE']}: {', '.join(failed)}")
    sys.exit(1)
print("bench_compare: no ns/op regressions beyond threshold")
EOF

#!/bin/sh
# profile.sh — capture CPU and heap pprof profiles for a named run.
#
# Usage: scripts/profile.sh [experiment-or-target] [outdir]
#
#   scripts/profile.sh                # profile the default target (fig4)
#   scripts/profile.sh all            # profile the whole 24-experiment suite
#   scripts/profile.sh fig10 /tmp/p   # profile one experiment, custom outdir
#   scripts/profile.sh insitu         # profile one pipeline run
#
# Builds the real greenviz binary (profiles of `go run` attribute time
# to the toolchain), runs the target serially (GOMAXPROCS=1
# -kernel-workers 1 — the serial hot path is what the perf-ledger
# gates), and writes:
#
#   <outdir>/<target>.cpu.pprof    CPU profile of the run
#   <outdir>/<target>.heap.pprof   allocation profile (alloc_space and
#                                  inuse_space sample types)
#
# Inspect with:
#
#   go tool pprof -top <outdir>/<target>.cpu.pprof
#   go tool pprof -sample_index=alloc_space -top <outdir>/<target>.heap.pprof
#
# The run's stdout is discarded — profiling never feeds golden checks;
# use make golden for output regressions.
set -eu

cd "$(dirname "$0")/.."
target="${1:-fig4}"
outdir="${2:-profiles}"
mkdir -p "$outdir"

bin="$(mktemp -d)/greenviz"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/greenviz

cpu="$outdir/$target.cpu.pprof"
heap="$outdir/$target.heap.pprof"

# Pipeline flag names double as targets: anything the experiment
# registry doesn't know is handed to -pipeline.
if "$bin" -list | awk '{print $1}' | grep -qx "$target" || [ "$target" = all ]; then
    mode="-experiment"
else
    mode="-pipeline"
fi

GOMAXPROCS=1 "$bin" "$mode" "$target" -kernel-workers 1 -quiet \
    -cpuprofile "$cpu" -memprofile "$heap" >/dev/null

echo "wrote $cpu"
echo "wrote $heap"
echo "top CPU consumers:"
go tool pprof -top -nodecount 12 "$cpu" 2>/dev/null | sed -n '/flat/,$p' | head -13
echo "top allocators (alloc_space):"
go tool pprof -sample_index=alloc_space -top -nodecount 12 "$heap" 2>/dev/null | sed -n '/flat/,$p' | head -13

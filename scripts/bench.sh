#!/bin/sh
# bench.sh — run the repo benchmark set and record a JSON summary.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the hot-path micro-benchmarks (render, checkpoint encode, fault
# hooks, nil-observer stage dispatch), the serial-vs-parallel
# full-suite pair, and the greenvizd service-layer benchmarks (full
# HTTP round trip against a warm cache, manager-only dedup submit,
# spec digesting) with -benchmem, then converts the `go test` output
# into BENCH_pr4.json: one object per benchmark with ns/op, B/op, and
# allocs/op. The fault-hook and nil-observer pairs document that both
# hooks cost 0 allocs/op when unused. Host details (cores, GOMAXPROCS)
# are recorded so single-core runs are not mistaken for regressions.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr4.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkRender|BenchmarkCheckpointEncode|BenchmarkSuiteAllSerial|BenchmarkSuiteAllParallel|BenchmarkHooksDisabled|BenchmarkHooksEnabled|BenchmarkDoNilObserver|BenchmarkServiceThroughput|BenchmarkSubmitDedup|BenchmarkSpecDigest)$' \
    -benchmem -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" \
    . ./internal/fault ./internal/core/stagegraph ./internal/service | tee "$raw"

awk -v ncpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    lines[n++] = line
}
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    print "{"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %s,\n", (ncpu == "" ? 0 : ncpu)
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    print "  ]"
    print "}"
}' "$raw" > "$out"

echo "wrote $out"

#!/bin/sh
# bench.sh — run the repo benchmark set and record a JSON summary.
#
# Usage: scripts/bench.sh [output.json]
#
# Three passes feed one JSON file:
#
#   1. The comparison pass: the hot-path micro-benchmarks (render,
#      checkpoint encode, fault hooks, no-consumer stage dispatch, the
#      telemetry bus's no-consumer and fan-out emit paths),
#      the greenvizd service-layer benchmarks, the campaign engine's
#      sweep expansion and report aggregation over a 256-point spec,
#      and the result-store pass (warm-hit read+CRC-verify latency vs.
#      the cold durable write path, plus steady-state LRU eviction
#      throughput), at the
#      default GOMAXPROCS with a time-based benchtime so the numbers
#      are steady-state. Each benchmark runs COUNT (default 3) times and
#      the minimum ns/op is recorded — min-of-N is far more stable
#      than a single sample against scheduler noise, which is what
#      makes bench_compare's 10% gate usable. Names are recorded bare
#      (no -N suffix) so they stay comparable across BENCH_*.json
#      generations.
#   1b. The suite pass: the serial-vs-parallel full-suite pair, one
#      iteration each (they run the whole 24-experiment registry,
#      ~30 s/op).
#   2. The kernel scaling pass: the par-engine kernels (heat/ocean
#      BenchmarkStep128, viz BenchmarkRender512, BenchmarkCheckpointEncode,
#      par BenchmarkFor) at -cpu 1,2,4, also min-of-COUNT. Names are
#      recorded as pkg/Benchmark-N so the per-worker-count scaling is
#      explicit. On a single-core host the -cpu 2/4 rows measure
#      oversubscription, not scaling — the recorded "cores" field says
#      whether scaling was measurable, and bench_compare treats the
#      suffixed rows as informational.
#
# Host details (cores, GOMAXPROCS) are recorded so single-core runs
# are not mistaken for regressions.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"
raw="$(mktemp)"
rawk="$(mktemp)"
trap 'rm -f "$raw" "$rawk"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkRender|BenchmarkCheckpointEncode|BenchmarkHooksDisabled|BenchmarkHooksEnabled|BenchmarkDoNoConsumer|BenchmarkTelemetryNoConsumer|BenchmarkTelemetryFanout|BenchmarkServiceThroughput|BenchmarkSubmitDedup|BenchmarkSpecDigest|BenchmarkStoreGetHit|BenchmarkStorePutCold|BenchmarkStoreEvict|BenchmarkCampaignExpand|BenchmarkCampaignAggregate)$' \
    -benchmem -benchtime "${BENCHTIME:-1s}" -count "${COUNT:-3}" \
    . ./internal/fault ./internal/core/stagegraph ./internal/telemetry ./internal/service ./internal/resultstore ./internal/campaign | tee "$raw"

go test -run '^$' \
    -bench '^(BenchmarkSuiteAllSerial|BenchmarkSuiteAllParallel)$' \
    -benchmem -benchtime "${SUITE_BENCHTIME:-1x}" -count "${SUITE_COUNT:-1}" \
    . | tee -a "$raw"

go test -run '^$' \
    -bench '^(BenchmarkStep128|BenchmarkRender512|BenchmarkCheckpointEncode|BenchmarkFor)$' \
    -benchmem -benchtime "${KERNEL_BENCHTIME:-1s}" -count "${COUNT:-3}" \
    -cpu 1,2,4 \
    ./internal/heat ./internal/ocean ./internal/viz ./internal/checkpoint ./internal/par | tee "$rawk"

awk -v ncpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" '
BEGIN { n = 0; kernel = 0 }
FNR == 1 { kernel = (FILENAME == ARGV[2]) }
/^pkg:/ { pkg = $2; sub(/^.*\//, "", pkg) }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    if (kernel) { name = pkg "/" name } else { sub(/-[0-9]+$/, "", name) }
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    # -count N repeats each benchmark; keep the fastest run (min ns/op).
    if (name in best && best[name] <= ns + 0) next
    if (!(name in best)) order[n++] = name
    best[name] = ns + 0
    line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    lines[name] = line
}
END {
    print "{"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %s,\n", (ncpu == "" ? 0 : ncpu)
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[order[i]], (i < n-1 ? "," : "")
    print "  ]"
    print "}"
}' "$raw" "$rawk" > "$out"

echo "wrote $out"

package greenviz

import (
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the README's quick-start path through
// the public API only.
func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RealSubsteps = 4
	cs := CaseStudies()[0]

	post := Run(NewNode(SandyBridge(), 1), PostProcessing, cs, cfg)
	insitu := Run(NewNode(SandyBridge(), 2), InSitu, cs, cfg)
	c := Compare(post, insitu)

	if s := c.EnergySavingsPct(); s < 30 || s > 55 {
		t.Errorf("energy savings = %.1f%%, want the paper's ~43%%", s)
	}
	if post.Frames != 50 || insitu.Frames != 50 {
		t.Errorf("frames = %d/%d, want 50 each", post.Frames, insitu.Frames)
	}
	if post.FrameChecksum != insitu.FrameChecksum {
		t.Error("pipelines rendered different frames")
	}
}

func TestExperimentsRegistryViaFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) != 24 {
		t.Fatalf("Experiments() = %d entries, want 24", len(exps))
	}
	s := NewSuite(3, nil)
	r, err := RunExperiment(s, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "Xeon") {
		t.Errorf("table1 body:\n%s", r.Body)
	}
	if _, err := RunExperiment(s, "nope"); err == nil {
		t.Error("unknown experiment did not error")
	}
}

func TestAdvisorViaFacade(t *testing.T) {
	a := Advise(SandyBridge(), WorkloadSpec{
		Name:           "app",
		ReadBytes:      GiB,
		WriteBytes:     GiB,
		OpSize:         16 * KiB,
		RandomFraction: 1,
		SpanBytes:      GiB,
	})
	if a.Recommended == "" {
		t.Error("advisor returned no recommendation")
	}
}

func TestSSDPlatformDiffers(t *testing.T) {
	hdd, ssd := SandyBridge(), SandyBridgeSSD()
	if ssd.Disk.SeqReadBW <= hdd.Disk.SeqReadBW {
		t.Error("SSD not faster than HDD")
	}
	if ssd.Disk.IdlePower >= hdd.Disk.IdlePower {
		t.Error("SSD idle power not below HDD")
	}
}

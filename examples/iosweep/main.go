// Iosweep extends the paper's three case studies into a full sweep of
// the I/O interval (visualize every k-th iteration, k = 1..16),
// charting how the in-situ energy advantage decays as the application
// becomes compute-dominated — the trend §V-B describes with three
// points, measured here with eight.
package main

import (
	"fmt"
	"strings"

	greenviz "repro"
)

func main() {
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 8

	fmt.Println("I/O interval sweep: in-situ vs post-processing, 50 iterations each")
	fmt.Printf("%-10s %12s %12s %10s %10s  %s\n",
		"interval", "post", "in-situ", "savings", "ioshare", "")

	var seed uint64 = 100
	for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		cs := greenviz.CaseStudy{
			Name:       fmt.Sprintf("every-%d", k),
			Iterations: 50,
			IOInterval: k,
		}
		seed += 2
		post := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), seed), greenviz.PostProcessing, cs, cfg)
		ins := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), seed+1), greenviz.InSitu, cs, cfg)
		c := greenviz.Compare(post, ins)

		ioShare := 1 - float64(post.StageTime["simulation"])/float64(post.ExecTime)
		savings := c.EnergySavingsPct()
		bar := strings.Repeat("#", int(savings/2))
		fmt.Printf("%-10s %12s %12s %9.1f%% %9.0f%%  %s\n",
			cs.Name, post.Energy, ins.Energy, savings, ioShare*100, bar)
	}
	fmt.Println("\nThe greener in-situ pipeline matters most when I/O dominates; as the")
	fmt.Println("interval grows the two pipelines converge (paper §V-B).")
}

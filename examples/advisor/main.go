// Advisor demonstrates the runtime the paper's Future Work proposes: a
// power model that estimates disk time and energy from an
// application's access counts, sizes, and patterns, then recommends a
// pipeline strategy — in-situ, data reorganization, or leave it alone.
package main

import (
	"fmt"

	greenviz "repro"
)

func main() {
	workloads := []greenviz.WorkloadSpec{
		{
			Name:           "checkpoint-heavy climate run (sequential)",
			ReadBytes:      32 * greenviz.GiB,
			WriteBytes:     32 * greenviz.GiB,
			OpSize:         4 * greenviz.MiB,
			RandomFraction: 0.05,
			SpanBytes:      32 * greenviz.GiB,
		},
		{
			Name:           "particle-tracing analysis (random reads)",
			ReadBytes:      4 * greenviz.GiB,
			WriteBytes:     256 * greenviz.MiB,
			OpSize:         16 * greenviz.KiB,
			RandomFraction: 0.9,
			SpanBytes:      4 * greenviz.GiB,
		},
		{
			Name:           "fio-style random mix (the paper's §V-D case)",
			ReadBytes:      4 * greenviz.GiB,
			WriteBytes:     4 * greenviz.GiB,
			OpSize:         16 * greenviz.KiB,
			RandomFraction: 1,
			SpanBytes:      4 * greenviz.GiB,
		},
	}

	// The runtime can also *observe* a workload instead of being told:
	// run the real post-processing pipeline briefly and classify its
	// disk traffic.
	obsNode := greenviz.NewNode(greenviz.SandyBridge(), 99)
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 8
	greenviz.Run(obsNode, greenviz.PostProcessing,
		greenviz.CaseStudy{Name: "observed", Iterations: 6, IOInterval: 1}, cfg)
	observed := greenviz.ObserveWorkload("observed proxy run", obsNode.DiskStats())
	fmt.Printf("observed from a live run: %.1f GiB read, %.1f GiB written, %.0f%% random\n\n",
		float64(observed.ReadBytes)/float64(greenviz.GiB),
		float64(observed.WriteBytes)/float64(greenviz.GiB),
		observed.RandomFraction*100)
	workloads = append(workloads, observed)

	platform := greenviz.SandyBridge()
	for _, w := range workloads {
		a := greenviz.Advise(platform, w)
		fmt.Printf("workload: %s\n", w.Name)
		fmt.Printf("  as-is:        %8.1f s  %10s\n", float64(a.AsIs.Time), a.AsIs.SystemEnergy)
		fmt.Printf("  reorganized:  %8.1f s  %10s\n", float64(a.Reorganized.Time), a.Reorganized.SystemEnergy)
		fmt.Printf("  in-situ:      %8.1f s  %10s  (no exploratory analysis)\n",
			float64(a.InSitu.Time), a.InSitu.SystemEnergy)
		fmt.Printf("  => recommend %s\n     %s\n\n", a.Recommended, a.Reason)
	}
}

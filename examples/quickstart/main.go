// Quickstart runs the paper's headline experiment end to end: case
// study 1 (I/O every iteration) through both pipelines, printing the
// greenness comparison and saving the final rendered frame as a real
// PNG next to the binary.
package main

import (
	"fmt"
	"log"
	"os"

	greenviz "repro"
)

func main() {
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 32   // keep host time modest; virtual timing unchanged
	cfg.RetainFrames = true // so we can save a frame below
	cs := greenviz.CaseStudies()[0]

	fmt.Printf("Running %s through both pipelines on the simulated Sandy Bridge node...\n\n", cs.Name)

	post := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 1), greenviz.PostProcessing, cs, cfg)
	insitu := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 2), greenviz.InSitu, cs, cfg)
	c := greenviz.Compare(post, insitu)

	fmt.Printf("%-16s %14s %14s\n", "metric", "post-processing", "in-situ")
	fmt.Printf("%-16s %14s %14s\n", "execution time",
		fmt.Sprintf("%.1f s", float64(post.ExecTime)), fmt.Sprintf("%.1f s", float64(insitu.ExecTime)))
	fmt.Printf("%-16s %14s %14s\n", "average power", post.AvgPower, insitu.AvgPower)
	fmt.Printf("%-16s %14s %14s\n", "peak power", post.PeakPower, insitu.PeakPower)
	fmt.Printf("%-16s %14s %14s\n", "energy", post.Energy, insitu.Energy)
	fmt.Printf("%-16s %14.2f %14.2f\n", "frames / kJ", post.EnergyEfficiency(), insitu.EnergyEfficiency())

	fmt.Printf("\nIn-situ saves %.1f%% energy at %.1f%% higher average power (paper: 43%% / +8%%).\n",
		c.EnergySavingsPct(), c.AvgPowerIncreasePct())

	b := c.Breakdown(10.15, 104.5)
	fmt.Printf("Of those savings, %.0f%% come from avoiding idle/serialized time and only\n%.0f%% from moving less data (paper: 91%% / 9%%).\n",
		b.StaticSharePct(), b.DynamicSharePct())

	// Both pipelines rendered identical frames from identical physics.
	if post.FrameChecksum != insitu.FrameChecksum {
		log.Fatal("pipelines disagreed on the rendered frames")
	}
	last := insitu.FramePNGs[len(insitu.FramePNGs)-1]
	const out = "frame-final.png"
	if err := os.WriteFile(out, last, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSaved the final rendered frame (%d bytes) to %s.\n", len(last), out)
}

// Ocean addresses the paper's stated limitation — "our findings are
// based on the study of a single proxy application" — by running a
// second proxy, a shallow-water basin in the spirit of the MPAS-Ocean
// workloads its Future Work targets, through both pipelines and
// checking whether the greenness conclusions transfer.
package main

import (
	"fmt"
	"log"
	"os"

	greenviz "repro"
)

func main() {
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 32
	cfg.RetainFrames = true
	cfg.NewSimulator = func() greenviz.Simulator {
		return greenviz.NewOceanSolver(greenviz.DefaultOceanParams())
	}
	cfg.Render = greenviz.RenderOptions{
		Width: 512, Height: 512,
		Colormap: greenviz.CoolWarmColormap(),
		Isolines: []float64{0},
	}

	cs := greenviz.CaseStudy{Name: "ocean waves", Iterations: 50, IOInterval: 1}
	fmt.Println("Shallow-water proxy through both pipelines (I/O every iteration)...")

	post := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 1), greenviz.PostProcessing, cs, cfg)
	insitu := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 2), greenviz.InSitu, cs, cfg)
	c := greenviz.Compare(post, insitu)

	fmt.Printf("\n%-16s %14s %14s\n", "metric", "post", "in-situ")
	fmt.Printf("%-16s %13.1fs %13.1fs\n", "time", float64(post.ExecTime), float64(insitu.ExecTime))
	fmt.Printf("%-16s %14s %14s\n", "energy", post.Energy, insitu.Energy)
	fmt.Printf("%-16s %14s %14s\n", "avg power", post.AvgPower, insitu.AvgPower)

	ioShare := 1 - float64(post.StageTime["simulation"])/float64(post.ExecTime)
	fmt.Printf("\nIn-situ saves %.1f%% energy on the wave workload, vs ~43%% for the heat\n",
		c.EnergySavingsPct())
	fmt.Printf("proxy. The shallow-water solver updates three fields per sub-step, so its\n")
	fmt.Printf("compute share is larger and its I/O share smaller (%.0f%% here vs 67%%) —\n", ioShare*100)
	fmt.Println("and the savings track the I/O share, not the physics, exactly as the")
	fmt.Println("paper's three case studies predict.")

	last := insitu.FramePNGs[len(insitu.FramePNGs)-1]
	const out = "ocean-final.png"
	if err := os.WriteFile(out, last, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSaved the final interference pattern (%d bytes) to %s.\n", len(last), out)
}

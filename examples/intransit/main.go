// Intransit runs the Future Work multi-node study: a simulation node
// that ships each visualization event's data over a 10 GbE link to a
// dedicated staging node, which renders concurrently. It contrasts the
// three pipelines' makespan and energy under two accounting views —
// the simulation node alone versus the whole cluster.
package main

import (
	"fmt"

	greenviz "repro"
)

func main() {
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 8
	cs := greenviz.CaseStudies()[0]

	fmt.Printf("Case study: %s (I/O + render every iteration)\n\n", cs.Name)

	post := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 1), greenviz.PostProcessing, cs, cfg)
	insitu := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 2), greenviz.InSitu, cs, cfg)
	it := greenviz.RunInTransit(greenviz.NewCluster(greenviz.SandyBridge(), greenviz.TenGigE(), 3), cs, cfg)

	fmt.Printf("%-26s %10s %14s %14s\n", "pipeline", "makespan", "sim-node E", "cluster E")
	fmt.Printf("%-26s %9.1fs %14s %14s\n", "post-processing (1 node)", float64(post.ExecTime), post.Energy, post.Energy)
	fmt.Printf("%-26s %9.1fs %14s %14s\n", "in-situ (1 node)", float64(insitu.ExecTime), insitu.Energy, insitu.Energy)
	fmt.Printf("%-26s %9.1fs %14s %14s\n", "in-transit (2 nodes)", float64(it.ExecTime), it.SimEnergy, it.Energy)

	fmt.Printf("\nNetwork moved %s in %d transfers; the staging node rendered for %.1f s\n",
		it.BytesSent, it.Frames, float64(it.StagingBusy))
	fmt.Printf("and idled the rest — %.0f%% of its energy is static floor.\n",
		(1-float64(it.StagingBusy)/float64(it.ExecTime))*100)
	fmt.Println("\nIn-transit is the fastest and greenest per simulation node, but the")
	fmt.Println("dedicated staging node's idle power makes the cluster total exceed")
	fmt.Println("single-node in-situ unless the staging node is shared across jobs.")
}

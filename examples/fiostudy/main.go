// Fiostudy regenerates Table III — the fio sequential/random disk
// tests — on both the paper's hard disk and the Future Work SSD, and
// walks through the §V-D argument that data reorganization can make
// post-processing nearly as green as in-situ.
package main

import (
	"fmt"

	greenviz "repro"
)

func main() {
	cfg := greenviz.DefaultFioConfig()
	cfg.FileSize = 1 * greenviz.GiB // scale the 4 GiB tests down 4x for a quick demo

	for _, platform := range []struct {
		name string
		p    greenviz.Platform
	}{
		{"HDD (paper's Seagate 7200 rpm)", greenviz.SandyBridge()},
		{"SSD (future-work device)", greenviz.SandyBridgeSSD()},
	} {
		fmt.Printf("=== %s ===\n", platform.name)
		fmt.Printf("%-18s %10s %10s %10s %12s\n", "test", "time", "system", "disk dyn", "energy")
		n := greenviz.NewNode(platform.p, 42)
		results := greenviz.RunAllFio(n, cfg)
		for _, r := range results {
			fmt.Printf("%-18s %9.1fs %10s %10s %12s\n",
				r.Kind, float64(r.ExecTime), r.FullSystemPower, r.DiskDynPower, r.FullSystemEnergy)
		}
		randomTotal := results[1].FullSystemEnergy + results[3].FullSystemEnergy
		seqTotal := results[0].FullSystemEnergy + results[2].FullSystemEnergy
		fmt.Printf("\nRandom-I/O app total: %s; after reorganization: %s (%.1fx less)\n\n",
			randomTotal, seqTotal, float64(randomTotal)/float64(seqTotal))
	}

	fmt.Println("§V-D: on the HDD, reorganizing data recovers nearly all of the energy an")
	fmt.Println("in-situ conversion would save — while keeping exploratory analysis. On the")
	fmt.Println("SSD the random-read penalty (and thus the argument) largely disappears.")
}

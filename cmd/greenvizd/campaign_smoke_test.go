package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonCampaignResume is the campaign acceptance gate end to end:
//
//	gen 1 runs two of the example campaign's eight points as plain jobs
//	      into the store, then exits — the "daemon died mid-sweep"
//	      state (warm point reports, no campaign record);
//	gen 2 POSTs the bundled example campaign: the two warm points must
//	      be served from the store (deduped) and only the six cold ones
//	      executed, and the served report must hash to the committed
//	      golden digest — the same bytes the CLI prints;
//	gen 3 re-POSTs the finished campaign: restored from the persisted
//	      state record with zero executions and byte-identical report.
func TestDaemonCampaignResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the daemon and runs eight pipeline simulations")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "greenvizd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(dir, "store")

	specPath := filepath.Join("..", "..", "examples", "campaigns", "greenest-config.json")
	campaignSpec, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatalf("read example campaign: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "campaign", "testdata", "greenest-config.sha256"))
	if err != nil {
		t.Fatalf("read golden digest: %v", err)
	}
	want, _, _ := strings.Cut(strings.TrimSpace(string(golden)), "  ")

	// startDaemon launches one generation against the shared store and
	// returns its base URL plus a stop function (SIGTERM + clean wait).
	startDaemon := func(gen int) (string, func()) {
		t.Helper()
		portFile := filepath.Join(dir, fmt.Sprintf("port-%d", gen))
		daemon := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-portfile", portFile,
			"-store-dir", storeDir, "-drain-timeout", "2m")
		var stderr bytes.Buffer
		daemon.Stderr = &stderr
		if err := daemon.Start(); err != nil {
			t.Fatalf("start daemon gen %d: %v", gen, err)
		}
		var exitErr error
		exited := make(chan struct{})
		go func() { exitErr = daemon.Wait(); close(exited) }()
		t.Cleanup(func() {
			select {
			case <-exited:
			default:
				daemon.Process.Kill()
				<-exited
			}
			if t.Failed() {
				t.Logf("gen %d stderr:\n%s", gen, stderr.String())
			}
		})
		base := waitForPort(t, portFile, exited)
		stop := func() {
			if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatalf("gen %d SIGTERM: %v", gen, err)
			}
			select {
			case <-exited:
				if exitErr != nil {
					t.Fatalf("gen %d exit: %v\n%s", gen, exitErr, stderr.String())
				}
			case <-time.After(3 * time.Minute):
				t.Fatalf("gen %d did not exit after SIGTERM", gen)
			}
		}
		return base, stop
	}

	// Generation 1: warm two of the campaign's points as plain jobs.
	base, stop := startDaemon(1)
	for _, spec := range []string{
		`{"pipeline":"post","device":"hdd","case":1,"seed":1,"real_substeps":4}`,
		`{"pipeline":"post","device":"ssd","case":1,"seed":1,"real_substeps":4}`,
	} {
		id := submit(t, base, spec)
		waitDone(t, base, id, 5*time.Minute)
	}
	stop()

	// Generation 2: run the full campaign over the warm store.
	base, stop = startDaemon(2)
	id := postCampaign(t, base, campaignSpec, http.StatusAccepted)
	waitCampaignDone(t, base, id, 10*time.Minute)
	report := getCampaignReport(t, base, id)
	if got := fmt.Sprintf("%x", sha256.Sum256(report)); got != want {
		t.Errorf("campaign report diverged from golden digest\n  got  %s\n  want %s\nreport:\n%s", got, want, report)
	}
	if got := scrapeMetric(t, base, "greenvizd_executions_total"); got != "6" {
		t.Errorf("gen 2 executions_total = %s, want 6 (two points must come from the store)", got)
	}
	if got := scrapeMetric(t, base, "greenvizd_campaign_points_deduped_total"); got != "2" {
		t.Errorf("gen 2 campaign_points_deduped_total = %s, want 2", got)
	}
	if got := scrapeMetric(t, base, "greenvizd_campaign_points_run_total"); got != "6" {
		t.Errorf("gen 2 campaign_points_run_total = %s, want 6", got)
	}
	if got := scrapeMetric(t, base, "greenvizd_campaigns_completed_total"); got != "1" {
		t.Errorf("gen 2 campaigns_completed_total = %s, want 1", got)
	}
	// Idempotent resubmit: same content address, no second sweep.
	if again := postCampaign(t, base, campaignSpec, http.StatusOK); again != id {
		t.Errorf("resubmit returned campaign %s, want %s", again, id)
	}
	// Build-info and uptime satellites ride along on /metrics.
	metrics := scrapeAll(t, base)
	if !strings.Contains(metrics, "greenvizd_build_info{version=") {
		t.Errorf("/metrics lacks greenvizd_build_info:\n%.400s", metrics)
	}
	if up := scrapeMetric(t, base, "greenvizd_process_uptime_seconds"); !positiveFloat(up) {
		t.Errorf("greenvizd_process_uptime_seconds = %q, want > 0", up)
	}
	stop()

	// Generation 3: the finished campaign restores from its state
	// record — identical bytes, zero executions.
	base, stop = startDaemon(3)
	id3 := postCampaign(t, base, campaignSpec, http.StatusAccepted)
	waitCampaignDone(t, base, id3, time.Minute)
	if id3 != id {
		t.Errorf("gen 3 campaign ID %s, want %s", id3, id)
	}
	report3 := getCampaignReport(t, base, id3)
	if !bytes.Equal(report, report3) {
		t.Errorf("restored campaign report is not byte-identical")
	}
	if got := scrapeMetric(t, base, "greenvizd_executions_total"); got != "0" {
		t.Errorf("gen 3 executions_total = %s, want 0 (campaign must restore from the state record)", got)
	}
	stop()
}

func postCampaign(t *testing.T, base string, spec []byte, wantStatus int) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/campaigns: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/campaigns status %d, want %d: %s", resp.StatusCode, wantStatus, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decode campaign view: %v", err)
	}
	return view.ID
}

func waitCampaignDone(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatalf("GET campaign: %v", err)
		}
		var view struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode campaign view: %v", err)
		}
		switch view.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("campaign %s ended %s", id, view.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish within %s", id, timeout)
}

func getCampaignReport(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/report")
	if err != nil {
		t.Fatalf("GET campaign report: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign report status %d: %s", resp.StatusCode, body)
	}
	return body
}

func scrapeAll(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

func positiveFloat(s string) bool {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return err == nil && f > 0
}

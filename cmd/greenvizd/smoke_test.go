package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the end-to-end gate `make check` runs: build the
// real greenvizd binary, start it on an ephemeral port, submit the
// default fig4 job over HTTP, poll it to completion, and verify the
// served report bytes against the committed golden digest — the same
// digest that certifies the CLI's stdout. Then SIGTERM the daemon with
// a job in flight and verify it drains and exits 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the daemon and runs fig4 at CLI fidelity")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "greenvizd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-portfile", portFile, "-drain-timeout", "2m")
	var stderr bytes.Buffer
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	// exited closes once the daemon is gone; exitErr is valid after.
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = daemon.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			daemon.Process.Kill()
			<-exited
		}
		if t.Failed() {
			t.Logf("daemon stderr:\n%s", stderr.String())
		}
	}()

	base := waitForPort(t, portFile, exited)

	// Submit the default fig4 job: empty fields take the CLI defaults
	// (seed 1, 16 real sub-steps, 4 GiB fio), so the report must hash to
	// the committed golden digest.
	id := submit(t, base, `{"experiment":"fig4"}`)
	waitDone(t, base, id, 5*time.Minute)

	resp, err := http.Get(base + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp.StatusCode, report)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", "fig4.sha256"))
	if err != nil {
		t.Fatalf("read golden digest: %v", err)
	}
	want, _, _ := strings.Cut(strings.TrimSpace(string(golden)), "  ")
	if got := fmt.Sprintf("%x", sha256.Sum256(report)); got != want {
		t.Errorf("served fig4 report diverged from the golden digest\n  got  %s\n  want %s\nreport:\n%.200s",
			got, want, report)
	}

	// The SSE stream of the finished job replays a deterministic,
	// terminated event sequence.
	events, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	evBody, _ := io.ReadAll(events.Body)
	events.Body.Close()
	for _, want := range []string{"event: queued", "event: running", "event: stage", "event: done"} {
		if !strings.Contains(string(evBody), want) {
			t.Errorf("event replay missing %q:\n%s", want, evBody)
		}
	}

	// Graceful drain: put a fresh job in flight, SIGTERM, and verify
	// the daemon finishes it and exits 0. Submits racing the drain may
	// see 503 (draining) — both outcomes are the documented contract.
	slow := submit(t, base, `{"pipeline":"post","case":1}`)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	sawDraining := false
	for i := 0; i < 40; i++ {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"experiment":"table1"}`))
		if err != nil {
			break // server already gone: drain completed
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawDraining = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("daemon exit after SIGTERM: %v\n%s", exitErr, stderr.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !sawDraining {
		t.Logf("note: drain window closed before a 503 was observed (job %s)", slow)
	}
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("daemon did not report a clean drain:\n%s", stderr.String())
	}
}

// TestDaemonWarmRestart is the durability acceptance gate: a daemon
// computes fig4 into its result store, exits cleanly, and a second
// daemon over the same -store-dir serves the identical report —
// verified against the committed golden digest — with its executions
// counter still at zero. The energy the first run burned is spent
// exactly once.
func TestDaemonWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the daemon and runs fig4 at CLI fidelity")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "greenvizd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(dir, "store")
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "golden", "fig4.sha256"))
	if err != nil {
		t.Fatalf("read golden digest: %v", err)
	}
	want, _, _ := strings.Cut(strings.TrimSpace(string(golden)), "  ")

	// daemonCycle runs one daemon generation against the shared store:
	// submit fig4, fetch its report, scrape executions_total and the
	// store hit counter, then SIGTERM and wait for a clean exit.
	daemonCycle := func(gen int) (report []byte, executions, storeHits string) {
		t.Helper()
		portFile := filepath.Join(dir, fmt.Sprintf("port-%d", gen))
		daemon := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-portfile", portFile,
			"-store-dir", storeDir, "-drain-timeout", "2m")
		var stderr bytes.Buffer
		daemon.Stderr = &stderr
		if err := daemon.Start(); err != nil {
			t.Fatalf("start daemon gen %d: %v", gen, err)
		}
		var exitErr error
		exited := make(chan struct{})
		go func() { exitErr = daemon.Wait(); close(exited) }()
		defer func() {
			select {
			case <-exited:
			default:
				daemon.Process.Kill()
				<-exited
			}
			if t.Failed() {
				t.Logf("gen %d stderr:\n%s", gen, stderr.String())
			}
		}()

		base := waitForPort(t, portFile, exited)
		id := submit(t, base, `{"experiment":"fig4"}`)
		waitDone(t, base, id, 5*time.Minute)

		resp, err := http.Get(base + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatalf("gen %d GET report: %v", gen, err)
		}
		report, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gen %d report status %d: %s", gen, resp.StatusCode, report)
		}
		executions = scrapeMetric(t, base, "greenvizd_executions_total")
		storeHits = scrapeMetric(t, base, "greenvizd_store_hits_total")

		if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("gen %d SIGTERM: %v", gen, err)
		}
		select {
		case <-exited:
			if exitErr != nil {
				t.Fatalf("gen %d exit: %v\n%s", gen, exitErr, stderr.String())
			}
		case <-time.After(3 * time.Minute):
			t.Fatalf("gen %d did not exit after SIGTERM", gen)
		}
		return report, executions, storeHits
	}

	cold, coldExecs, _ := daemonCycle(1)
	if got := fmt.Sprintf("%x", sha256.Sum256(cold)); got != want {
		t.Fatalf("cold report diverged from golden digest\n  got  %s\n  want %s", got, want)
	}
	if coldExecs != "1" {
		t.Errorf("cold daemon executions_total = %s, want 1", coldExecs)
	}

	warm, warmExecs, warmHits := daemonCycle(2)
	if !bytes.Equal(warm, cold) {
		t.Errorf("warm-restart report is not byte-identical to the cold run")
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(warm)); got != want {
		t.Errorf("warm report diverged from golden digest\n  got  %s\n  want %s", got, want)
	}
	if warmExecs != "0" {
		t.Errorf("warm daemon executions_total = %s, want 0 (report must come from the store)", warmExecs)
	}
	if warmHits != "1" {
		t.Errorf("warm daemon store_hits_total = %s, want 1", warmHits)
	}
}

// scrapeMetric fetches /metrics and returns the named counter's value.
func scrapeMetric(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s absent:\n%s", name, body)
	return ""
}

// waitForPort waits for the daemon to write its bound address.
func waitForPort(t *testing.T, portFile string, exited <-chan struct{}) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-exited:
			t.Fatal("daemon exited before binding")
		default:
		}
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its portfile")
	return ""
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d: %s", spec, resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return view.ID
}

func waitDone(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var view struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job view: %v", err)
		}
		switch view.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, view.State, view.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %s", id, timeout)
}

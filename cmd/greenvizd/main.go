// Command greenvizd serves the greenviz experiment suite as a
// long-running service: submit jobs over HTTP, watch per-stage
// progress live over SSE, and fetch deterministic report bytes.
// Identical jobs are content-addressed and deduplicated — N concurrent
// submits of the same spec cost one underlying run.
//
// Usage:
//
//	greenvizd -addr 127.0.0.1:8866
//	curl -s localhost:8866/v1/experiments
//	curl -s -XPOST localhost:8866/v1/jobs -d '{"experiment":"fig4"}'
//	curl -N localhost:8866/v1/jobs/job-000001/events
//	curl -s localhost:8866/v1/jobs/job-000001/report
//
// On SIGINT/SIGTERM the daemon drains: new submits are rejected with
// 503 while queued and running jobs finish (bounded by -drain-timeout,
// after which stragglers are canceled at their next stage boundary),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8866", "listen address (use :0 for an ephemeral port)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executions")
		queueDepth   = flag.Int("queue", 64, "submit queue depth; a full queue rejects with 429")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "graceful-shutdown bound; running jobs canceled after this")
		portFile     = flag.String("portfile", "", "write the bound listen address to this file (for scripts starting on :0)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queueDepth, *drainTimeout, *portFile); err != nil {
		fmt.Fprintf(os.Stderr, "greenvizd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueDepth int, drainTimeout time.Duration, portFile string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("portfile: %w", err)
		}
	}

	m := service.NewManager(service.Options{Workers: workers, QueueDepth: queueDepth})
	srv := &http.Server{Handler: service.Handler(m)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "greenvizd: listening on %s (workers=%d queue=%d)\n", ln.Addr(), workers, queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "greenvizd: %v, draining (timeout %s)\n", s, drainTimeout)
	case err := <-serveErr:
		return err
	}

	// Drain the manager first — submits now bounce with 503 while the
	// API keeps answering status/report/event requests for the jobs
	// being drained — then stop the HTTP server.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "greenvizd: drain timeout, canceled remaining jobs: %v\n", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "greenvizd: drained, bye")
	return nil
}

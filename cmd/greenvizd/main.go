// Command greenvizd serves the greenviz experiment suite as a
// long-running service: submit jobs over HTTP, watch per-stage
// progress live over SSE, and fetch deterministic report bytes.
// Identical jobs are content-addressed and deduplicated — N concurrent
// submits of the same spec cost one underlying run — and, with
// -store-dir set, finished reports persist to a CRC-checked on-disk
// store so a restarted daemon serves them byte-identically without
// re-executing.
//
// Usage:
//
//	greenvizd -addr 127.0.0.1:8866 -store-dir /var/lib/greenvizd
//	curl -s localhost:8866/v1/experiments
//	curl -s -XPOST localhost:8866/v1/jobs -d '{"experiment":"fig4"}'
//	curl -N localhost:8866/v1/jobs/job-000001/events
//	curl -s localhost:8866/v1/jobs/job-000001/report
//	curl -s -XPOST localhost:8866/v1/campaigns -d @examples/campaigns/greenest-config.json
//	curl -s localhost:8866/v1/campaigns/<id>/report
//
// Campaigns (POST /v1/campaigns) sweep a cross-product of pipeline,
// device, power-cap, and config axes as one unit: points run as
// ordinary content-addressed jobs (identical points cost one run, warm
// restarts serve from the store), and the campaign report folds the
// results into marginal tables, an energy-vs-time Pareto frontier, and
// a greenest-configuration recommendation.
//
// On SIGINT/SIGTERM the daemon drains: new submits are rejected with
// 503 while queued and running jobs finish (bounded by -drain-timeout,
// after which stragglers are canceled at their next stage boundary),
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/resultstore"
	"repro/internal/service"
)

// daemonConfig bundles the flag set so run and its tests share one
// shape.
type daemonConfig struct {
	addr         string
	workers      int
	queueDepth   int
	drainTimeout time.Duration
	portFile     string

	storeDir       string
	storeMaxBytes  int64
	storeMaxEntr   int
	jobRetention   time.Duration
	sseHeartbeat   time.Duration
	pointWorkers   int
	maxBodyBytes   int64
	readHeaderWait time.Duration
	readWait       time.Duration
	idleWait       time.Duration
}

// init stamps the build-info metric from the binary's own module
// metadata, so /metrics reports which build is serving.
func init() {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		service.BuildVersion = bi.Main.Version
	}
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8866", "listen address (use :0 for an ephemeral port)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "concurrent job executions")
	flag.IntVar(&cfg.queueDepth, "queue", 64, "submit queue depth; a full queue rejects with 429")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Minute, "graceful-shutdown bound; running jobs canceled after this")
	flag.StringVar(&cfg.portFile, "portfile", "", "write the bound listen address to this file (for scripts starting on :0)")
	flag.StringVar(&cfg.storeDir, "store-dir", "", "persist finished reports here (CRC-checked, LRU-bounded); empty disables persistence")
	flag.Int64Var(&cfg.storeMaxBytes, "store-max-bytes", 256<<20, "result-store byte budget; 0 is unbounded")
	flag.IntVar(&cfg.storeMaxEntr, "store-max-entries", 4096, "result-store entry budget; 0 is unbounded")
	flag.DurationVar(&cfg.jobRetention, "job-retention", time.Hour, "prune terminal jobs from the job table after this; 0 keeps them forever")
	flag.DurationVar(&cfg.sseHeartbeat, "sse-heartbeat", 15*time.Second, "emit `: heartbeat` comments on idle SSE streams at this interval; 0 disables")
	flag.IntVar(&cfg.pointWorkers, "campaign-point-workers", 4, "outstanding point submissions per campaign")
	flag.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 1<<20, "POST body cap; larger submissions are rejected with 413")
	flag.DurationVar(&cfg.readHeaderWait, "read-header-timeout", 10*time.Second, "close connections whose request headers stall longer than this")
	flag.DurationVar(&cfg.readWait, "read-timeout", time.Minute, "close connections whose full request (headers+body) stalls longer than this")
	flag.DurationVar(&cfg.idleWait, "idle-timeout", 2*time.Minute, "close kept-alive connections idle longer than this")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "greenvizd: %v\n", err)
		os.Exit(1)
	}
}

// newHTTPServer builds the daemon's http.Server with the hardening
// timeouts applied. WriteTimeout stays zero deliberately: /events
// streams SSE for a job's whole lifetime, and a write deadline would
// sever live progress mid-run; slow readers are bounded by IdleTimeout
// between requests and by the kernel's send buffer within one.
func newHTTPServer(cfg daemonConfig, h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.readHeaderWait,
		ReadTimeout:       cfg.readWait,
		IdleTimeout:       cfg.idleWait,
	}
}

func run(cfg daemonConfig) error {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("portfile: %w", err)
		}
	}

	var store *resultstore.Store
	if cfg.storeDir != "" {
		store, err = resultstore.Open(resultstore.Options{
			Dir:        cfg.storeDir,
			MaxBytes:   cfg.storeMaxBytes,
			MaxEntries: cfg.storeMaxEntr,
		})
		if err != nil {
			ln.Close()
			return err
		}
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "greenvizd: result store %s warm with %d reports (%d bytes, %d corrupt evicted)\n",
			cfg.storeDir, st.Entries, st.Bytes, st.Corruptions)
	}

	m := service.NewManager(service.Options{
		Workers:      cfg.workers,
		QueueDepth:   cfg.queueDepth,
		MaxBodyBytes: cfg.maxBodyBytes,
		Store:        store,
		JobRetention: cfg.jobRetention,
		SSEHeartbeat: cfg.sseHeartbeat,
	})
	cm := campaign.NewManager(m, campaign.Options{PointWorkers: cfg.pointWorkers})
	mux := service.Handler(m)
	cm.Register(mux)
	srv := newHTTPServer(cfg, mux)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "greenvizd: listening on %s (workers=%d queue=%d)\n", ln.Addr(), cfg.workers, cfg.queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "greenvizd: %v, draining (timeout %s)\n", s, cfg.drainTimeout)
	case err := <-serveErr:
		return err
	}

	// Drain the manager first — submits now bounce with 503 while the
	// API keeps answering status/report/event requests for the jobs
	// being drained — then stop the HTTP server. The manager closes
	// the result store once the pool is idle, so every drained job's
	// report is durable before exit.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Campaigns first: Close cancels their point waits and persists
	// final state records while the store is still open, then the job
	// manager drains and closes the store.
	cm.Close()
	if err := m.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "greenvizd: drain timeout, canceled remaining jobs: %v\n", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "greenvizd: drained, bye")
	return nil
}

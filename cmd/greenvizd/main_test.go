package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServerTimeoutsConfigured pins the hardening defaults onto the
// http.Server: header, read, and idle timeouts come from the flags,
// and WriteTimeout stays zero so SSE streams are never severed
// mid-run.
func TestServerTimeoutsConfigured(t *testing.T) {
	cfg := daemonConfig{
		readHeaderWait: 123 * time.Millisecond,
		readWait:       456 * time.Millisecond,
		idleWait:       789 * time.Millisecond,
	}
	srv := newHTTPServer(cfg, http.NewServeMux())
	if srv.ReadHeaderTimeout != cfg.readHeaderWait {
		t.Errorf("ReadHeaderTimeout = %s, want %s", srv.ReadHeaderTimeout, cfg.readHeaderWait)
	}
	if srv.ReadTimeout != cfg.readWait {
		t.Errorf("ReadTimeout = %s, want %s", srv.ReadTimeout, cfg.readWait)
	}
	if srv.IdleTimeout != cfg.idleWait {
		t.Errorf("IdleTimeout = %s, want %s", srv.IdleTimeout, cfg.idleWait)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %s, want 0 (would sever SSE)", srv.WriteTimeout)
	}
}

// TestSlowlorisHeaderTimeout: a client that dribbles half a request
// line and stalls is disconnected once ReadHeaderTimeout elapses,
// instead of pinning a connection forever; a well-behaved request on
// the same server still succeeds.
func TestSlowlorisHeaderTimeout(t *testing.T) {
	cfg := daemonConfig{
		readHeaderWait: 100 * time.Millisecond,
		readWait:       300 * time.Millisecond,
		idleWait:       time.Second,
	}
	srv := newHTTPServer(cfg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: slow\r\nX-Drib")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	elapsed := time.Since(start)
	// The server must end the connection (EOF/reset, possibly after a
	// 408) well before our own 10 s guard deadline.
	if nerr, ok := err.(net.Error); err == nil && n > 0 {
		// Some servers write "408 Request Timeout" before closing; a
		// subsequent read must then hit EOF.
		if _, err2 := conn.Read(buf); err2 == nil {
			t.Fatalf("connection still open %s after partial headers", elapsed)
		}
	} else if ok && nerr.Timeout() {
		t.Fatalf("server never closed the stalled connection (read timed out after %s)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("stalled connection lived %s, want ~%s", elapsed, cfg.readHeaderWait)
	}

	// The listener still serves complete requests afterwards.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("well-behaved request after slowloris: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d after slowloris", resp.StatusCode)
	}
}

// Command greenviz regenerates the paper's tables and figures from the
// command line.
//
// Usage:
//
//	greenviz -list
//	greenviz -experiment fig10
//	greenviz -experiment all -seed 7
//	greenviz -experiment all -workers 8
//	greenviz -experiment fig5 -csv /tmp/profiles
//	greenviz -campaign examples/campaigns/greenest-config.json
//
// Each experiment prints the rows or ASCII-rendered series the paper
// reports, plus the paper's published values for comparison. With
// -experiment all the drivers run on -workers goroutines (default
// GOMAXPROCS); reports still print in registry order and are
// byte-identical at any worker count, with per-experiment wall times
// streamed to stderr as drivers finish (-quiet suppresses them). -csv
// additionally dumps the power profiles of the case-study runs as CSV
// for external plotting. In pipeline mode, -format json emits the
// canonical RunResult encoding — the same bytes the greenvizd service
// serves for an identical job.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	greenviz "repro"
	"repro/internal/core"
	"repro/internal/units"
)

// main defers all work to run so the profile writers flush on every
// exit path — os.Exit skips defers, so no other function calls it.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		expID        = flag.String("experiment", "", "experiment id (see -list), or \"all\"")
		list         = flag.Bool("list", false, "list available experiments")
		seed         = flag.Uint64("seed", 1, "master seed; equal seeds give identical output")
		realSubsteps = flag.Int("real-substeps", 16, "solver sub-steps computed per iteration (<= 1536); higher is more faithful, slower")
		fioGiB       = flag.Int("fio-gib", 4, "fio test file size in GiB (Table III uses 4)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment drivers for -experiment all")
		kernWorkers  = flag.Int("kernel-workers", 0, "intra-step data parallelism of the solver/render/encode kernels (0 = GOMAXPROCS); output is byte-identical at any value")
		csvDir       = flag.String("csv", "", "directory to dump case-study power profiles as CSV")
		faults       = flag.String("faults", "", "inject storage faults: comma-separated bitrot=,readerr=,writeerr=,latency=,drop= (probabilities), spike=,timeout= (seconds), seed= — empty disables injection (byte-identical output)")

		campaignPath = flag.String("campaign", "", "run a campaign spec file (JSON): sweep pipeline/device/power-cap axes and print the greenness report")

		pipeline  = flag.String("pipeline", "", "run one pipeline instead of an experiment: "+strings.Join(pipelineFlags(), ", "))
		app       = flag.String("app", "heat", "proxy application: "+strings.Join(greenviz.AppFlags(), ", "))
		device    = flag.String("device", "hdd", "storage device: "+strings.Join(greenviz.DeviceFlags(), ", "))
		caseIdx   = flag.Int("case", 1, "case study number (1..3)")
		framesDir = flag.String("frames", "", "directory to dump rendered PNG frames (pipeline mode)")
		events    = flag.Bool("events", false, "narrate the run's telemetry stream (stages, retries, faults) on stderr (pipeline mode)")
		format    = flag.String("format", "text", "pipeline-mode output format: text, json (the service's report encoding)")
		quiet     = flag.Bool("quiet", false, "suppress the per-experiment wall-time progress on stderr")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap (alloc) profile to this file at exit")
	)
	// Usage lists the experiment registry and pipeline names, derived
	// from the registries themselves so new entries appear automatically.
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nexperiments (-experiment <id>, or \"all\"):\n")
		for _, e := range greenviz.Experiments() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", e.ID, e.Description)
		}
	}
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "greenviz: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			// alloc_space is the view the allocation-elimination work
			// cares about; the profile also carries inuse_space.
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "greenviz: memprofile: %v\n", err)
			}
		}()
	}

	faultCfg, err := greenviz.ParseFaultSpec(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "greenviz: %v\n", err)
		return 2
	}

	if *campaignPath != "" {
		if err := runCampaign(*campaignPath, *workers, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: %v\n", err)
			return 1
		}
		return 0
	}

	if *pipeline != "" {
		if err := runPipeline(*pipeline, *app, *device, *caseIdx, *seed, *realSubsteps, *kernWorkers, *framesDir, *format, faultCfg, *events); err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range greenviz.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Description)
		}
		return 0
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "greenviz: pass -experiment <id> or -list")
		return 2
	}

	cfg := greenviz.DefaultConfig()
	if *realSubsteps > 0 {
		if *realSubsteps > cfg.SubstepsPerIteration {
			*realSubsteps = cfg.SubstepsPerIteration
		}
		cfg.RealSubsteps = *realSubsteps
	}
	// A -faults spec applies to every pipeline run the experiments
	// perform; left empty, all report bodies are byte-identical to a
	// fault-free build. Kernel workers likewise: the knob changes how
	// many bands each hot kernel splits into, never the output bytes.
	cfg.Faults = faultCfg
	cfg.KernelWorkers = *kernWorkers
	suite := greenviz.NewSuite(*seed, &cfg)
	suite.Fio.FileSize = units.Bytes(*fioGiB) * units.GiB
	// The suite itself is quiet by default (library and daemon embeds
	// stay silent); the CLI opts into live wall-time lines on stderr
	// unless -quiet. Stdout stays byte-identical either way.
	if !*quiet {
		suite.Log = os.Stderr
	}

	if *expID == "all" {
		start := time.Now()
		reports, err := greenviz.RunAllExperiments(context.Background(), suite, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: %v\n", err)
			return 1
		}
		// Reports to stdout in registry order; progress and the timing
		// footer go to stderr so stdout stays byte-identical at any
		// -workers value.
		for _, r := range reports {
			fmt.Print(r.Block())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%-12s %8.2fs (workers=%d)\n", "total", time.Since(start).Seconds(), *workers)
		}
	} else {
		r, err := greenviz.RunExperiment(suite, *expID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: %v\n", err)
			return 1
		}
		fmt.Print(r.Block())
	}

	if *csvDir != "" {
		if err := dumpCSVs(suite, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "greenviz: csv dump: %v\n", err)
			return 1
		}
	}
	return 0
}

// pipelineFlags lists the -pipeline names from the core registry.
func pipelineFlags() []string {
	var out []string
	for _, p := range greenviz.Pipelines() {
		out = append(out, p.Flag())
	}
	return out
}

// dumpCSVs writes the power profile of every cached case-study run.
func dumpCSVs(s *greenviz.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, cs := range greenviz.CaseStudies() {
		for _, p := range []greenviz.Pipeline{greenviz.PostProcessing, greenviz.InSitu} {
			res := suiteRun(s, p, cs)
			if res == nil {
				continue
			}
			name := fmt.Sprintf("%s-%s.csv", p, strings.ReplaceAll(strings.ToLower(cs.Name), " ", "-"))
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := res.Profile.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Printf("wrote %d profile CSVs to %s\n", n, dir)
	return nil
}

// suiteRun peeks at the suite's cache through the comparison helpers;
// it triggers the runs if the chosen experiments didn't already.
func suiteRun(s *greenviz.Suite, p greenviz.Pipeline, cs greenviz.CaseStudy) *core.RunResult {
	for i, c := range greenviz.CaseStudies() {
		if c.Name == cs.Name {
			cmp := s.ComparisonFor(i)
			if p == greenviz.PostProcessing {
				return cmp.Post
			}
			return cmp.InSitu
		}
	}
	return nil
}

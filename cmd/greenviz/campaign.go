package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

// runCampaign executes a campaign spec file in-process: it spins up an
// ephemeral job manager (same engine the daemon embeds), sweeps the
// spec, and prints the deterministic report to stdout. Point progress
// narrates on stderr unless -quiet, so stdout bytes are identical at
// any -workers value — the same contract as -experiment all.
func runCampaign(path string, workers int, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec campaign.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("campaign spec %s: %w", path, err)
	}

	// The queue must hold every in-flight point: the campaign engine
	// retries on a full queue, but sizing it to the hard cap makes the
	// serial path free of backoff noise.
	jobs := service.NewManager(service.Options{
		Workers:    workers,
		QueueDepth: campaign.HardMaxPoints,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		jobs.Shutdown(ctx)
	}()
	cm := campaign.NewManager(jobs, campaign.Options{PointWorkers: workers})
	defer cm.Close()

	c, err := cm.Start(spec)
	if err != nil {
		return err
	}

	progress := io.Discard
	if !quiet {
		progress = os.Stderr
	}
	idx := 0
	for {
		events, closed, wake := c.EventsAfter(idx)
		idx += len(events)
		for _, ev := range events {
			switch ev.Type {
			case "expanded":
				fmt.Fprintf(progress, "campaign %s: %d points\n", c.ID, ev.Points)
			case "point":
				note := ""
				if ev.Deduped {
					note = " (deduped)"
				}
				if ev.Error != "" {
					note += ": " + ev.Error
				}
				fmt.Fprintf(progress, "  point %d %s: %s%s\n", ev.Point, ev.Label, ev.State, note)
			}
		}
		if closed {
			break
		}
		if len(events) == 0 {
			<-wake
		}
	}

	report, ok := c.Report()
	if !ok {
		return fmt.Errorf("campaign %s finished %s", c.ID, c.State())
	}
	_, err = os.Stdout.Write(report)
	return err
}

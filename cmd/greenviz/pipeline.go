package main

import (
	"fmt"
	"os"
	"path/filepath"

	greenviz "repro"
)

// runPipeline executes one explicit pipeline configuration (the CLI's
// -pipeline mode) and prints its measurements: human-readable text by
// default, or (-format json) the canonical RunResult encoding — the
// same bytes the greenvizd service serves as a pipeline job's report.
func runPipeline(pipeline, app, device string, caseIdx int, seed uint64, realSubsteps, kernelWorkers int, framesDir, format string, faults *greenviz.FaultConfig, events bool) error {
	// Device and app names resolve through the same presets the service
	// uses, so CLI and API runs of equal configurations are identical.
	platform, err := greenviz.PlatformByFlag(device)
	if err != nil {
		return err
	}

	cfg := greenviz.DefaultConfig()
	if realSubsteps > 0 {
		if realSubsteps > cfg.SubstepsPerIteration {
			realSubsteps = cfg.SubstepsPerIteration
		}
		cfg.RealSubsteps = realSubsteps
	}
	cfg.RetainFrames = framesDir != ""
	cfg.Faults = faults
	// KernelWorkers must land before ConfigureApp: the ocean preset
	// captures it when wiring its solver constructor.
	cfg.KernelWorkers = kernelWorkers
	if err := greenviz.ConfigureApp(&cfg, app); err != nil {
		return err
	}
	// -events narrates the telemetry stream to stderr; stdout bytes are
	// unaffected (consumers observe runs, they never alter them).
	if events {
		cfg.Telemetry = &eventPrinter{w: os.Stderr}
	}

	cases := greenviz.CaseStudies()
	if caseIdx < 1 || caseIdx > len(cases) {
		return fmt.Errorf("case %d out of range 1..%d", caseIdx, len(cases))
	}
	cs := cases[caseIdx-1]

	// Dispatch is registry-driven: PipelineByFlag resolves every
	// pipeline core declares, so a new pipeline only needs a constant
	// and a Flag() name to be runnable (and listed in errors) here.
	p, err := greenviz.PipelineByFlag(pipeline)
	if err != nil {
		return err
	}
	var r *greenviz.Result
	if p.Clustered() {
		r = greenviz.RunOnCluster(greenviz.NewCluster(platform, greenviz.TenGigE(), seed), p, cs, cfg)
	} else {
		r = greenviz.Run(greenviz.NewNode(platform, seed), p, cs, cfg)
	}

	switch format {
	case "", "text":
		if p.Clustered() {
			printClusterRun(r, cs, app, device)
		} else {
			printRun(r)
		}
	case "json":
		if err := r.EncodeJSON(os.Stdout); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (text, json)", format)
	}
	return dumpFrames(r, framesDir)
}

// printStageTimes reports per-stage times in the canonical order; the
// stage list comes from core so new stages print automatically.
func printStageTimes(r *greenviz.Result) {
	for _, st := range greenviz.StageNames() {
		if d, ok := r.StageTime[st]; ok {
			fmt.Printf("  stage %-13s %8.1f s (%.0f%%)\n", st, float64(d), float64(d)/float64(r.ExecTime)*100)
		}
	}
}

func appName(app string) string {
	if app == "" {
		return "heat"
	}
	return app
}

// printClusterRun reports a clustered (in-transit or hybrid) run.
func printClusterRun(r *greenviz.Result, cs greenviz.CaseStudy, app, device string) {
	fmt.Printf("pipeline: %s (%s, %s, device %s)\n", r.Pipeline, cs.Name, appName(app), deviceName(device))
	fmt.Printf("  makespan        %10.1f s\n", float64(r.ExecTime))
	fmt.Printf("  sim-node energy %12s\n", r.SimEnergy)
	fmt.Printf("  staging energy  %12s\n", r.StagingEnergy)
	fmt.Printf("  cluster energy  %12s\n", r.Energy)
	fmt.Printf("  network moved   %12s in %d transfers\n", r.BytesSent, r.Frames)
	printStageTimes(r)
}

func deviceName(device string) string {
	if device == "" {
		return "hdd"
	}
	return device
}

// printRun reports a single-node run.
func printRun(r *greenviz.Result) {
	fmt.Printf("pipeline: %s (%s)\n", r.Pipeline, r.Case.Name)
	fmt.Printf("  execution time  %10.1f s\n", float64(r.ExecTime))
	fmt.Printf("  average power   %12s\n", r.AvgPower)
	fmt.Printf("  peak power      %12s\n", r.PeakPower)
	fmt.Printf("  energy          %12s\n", r.Energy)
	fmt.Printf("  frames          %12d (checksum %016x)\n", r.Frames, r.FrameChecksum)
	printStageTimes(r)
	if r.Faults.Total() > 0 || r.Recovery.Total() > 0 {
		fmt.Printf("  faults injected %12d (%d bit-rot, %d read, %d write, %d spikes, %d drops)\n",
			r.Faults.Total(), r.Faults.BitRots, r.Faults.ReadErrors, r.Faults.WriteErrors,
			r.Faults.LatencySpikes, r.Faults.ServerDrops)
		fmt.Printf("  recovery        %12d retries, %d re-simulated frames, %d lost writes, %.1f s backoff\n",
			r.Recovery.WriteRetries+r.Recovery.ReadRetries, r.Recovery.Resimulations,
			r.Recovery.LostWrites, float64(r.Recovery.BackoffTime))
	}
}

// dumpFrames writes a run's retained frames to dir, if requested.
func dumpFrames(r *greenviz.Result, framesDir string) error {
	if framesDir == "" {
		return nil
	}
	if err := os.MkdirAll(framesDir, 0o755); err != nil {
		return err
	}
	for i, png := range r.FramePNGs {
		name := filepath.Join(framesDir, fmt.Sprintf("frame-%04d.png", i))
		if err := os.WriteFile(name, png, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d frames to %s\n", len(r.FramePNGs), framesDir)
	return nil
}

package main

import (
	"fmt"
	"io"

	greenviz "repro"
)

// eventPrinter is the CLI's -events consumer: it narrates the
// telemetry stream to stderr so a run's structure — run and stage
// boundaries, per-stage energy, retries, injected faults — is visible
// live without disturbing stdout (which must stay byte-identical for
// the golden harness). Per-sample energy readings and stage starts are
// skipped as too chatty for a terminal; the trace profile already
// captures them.
type eventPrinter struct {
	w io.Writer
}

func (p *eventPrinter) Consume(ev greenviz.TelemetryEvent) {
	switch ev.Kind {
	case greenviz.TelemetryRunStart:
		fmt.Fprintf(p.w, "event: run %s start\n", ev.Run)
	case greenviz.TelemetryRunEnd:
		fmt.Fprintf(p.w, "event: run %s end t=%.1fs\n", ev.Run, float64(ev.End))
	case greenviz.TelemetryStageDone:
		if ev.HasEnergy {
			fmt.Fprintf(p.w, "event: stage %-13s [%s] %8.2fs  %9.1f J  t=%.1fs\n",
				ev.Stage, ev.On, float64(ev.Duration()), float64(ev.Energy()), float64(ev.End))
		} else {
			fmt.Fprintf(p.w, "event: stage %-13s [%s] %8.2fs  t=%.1fs\n",
				ev.Stage, ev.On, float64(ev.Duration()), float64(ev.End))
		}
	case greenviz.TelemetryRetryAttempt:
		fmt.Fprintf(p.w, "event: retry %s attempt=%d backoff=%.2fs\n",
			ev.Op, ev.Attempt, float64(ev.Backoff))
	case greenviz.TelemetryFaultInjected:
		if ev.Value > 0 {
			fmt.Fprintf(p.w, "event: fault %s (stall %.2fs)\n", ev.Source, ev.Value)
		} else {
			fmt.Fprintf(p.w, "event: fault %s\n", ev.Source)
		}
	}
}

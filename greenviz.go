package greenviz

import (
	"context"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/field"
	"repro/internal/fio"
	"repro/internal/heat"
	"repro/internal/netio"
	"repro/internal/node"
	"repro/internal/ocean"
	"repro/internal/pfs"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/viz"
)

// Re-exported quantity types. All durations are virtual seconds.
type (
	// Seconds is a span of virtual time.
	Seconds = units.Seconds
	// Watts is instantaneous power.
	Watts = units.Watts
	// Joules is energy.
	Joules = units.Joules
	// Bytes is a data size.
	Bytes = units.Bytes
)

// Size constants.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB
)

// Platform describes a simulated machine: hardware constants, power
// models, storage stack, and workload-cost calibration.
type Platform = node.Profile

// SandyBridge returns the paper's platform (Table I), calibrated
// against the paper's own measurements (DESIGN.md §3).
func SandyBridge() Platform { return node.SandyBridge() }

// SandyBridgeSSD returns the same node with the HDD replaced by a SATA
// SSD — the paper's Future Work device study.
func SandyBridgeSSD() Platform { return node.SandyBridgeSSD() }

// Node is one simulated machine instance. Create nodes with NewNode;
// equal (platform, seed) pairs produce bit-identical runs.
type Node = node.Node

// NewNode instantiates a platform. The seed drives every stochastic
// element (disk rotation, meter noise, OS jitter, allocation scatter).
func NewNode(p Platform, seed uint64) *Node { return node.New(p, seed) }

// Pipeline selects a visualization pipeline.
type Pipeline = core.Pipeline

// The two pipelines the paper compares (its Fig. 2), plus the two
// clustered pipelines of the Future Work study.
const (
	// PostProcessing simulates, writes checkpoints to disk, then reads
	// them back and renders them in a separate phase.
	PostProcessing = core.PostProcessing
	// InSitu renders alongside the simulation and flushes frames plus a
	// reduced data product.
	InSitu = core.InSitu
	// InTransit ships each event's data to a staging node that renders
	// concurrently (needs a Cluster; use RunInTransit).
	InTransit = core.InTransit
	// Hybrid renders in situ and asynchronously offloads checkpoints to
	// a staging node (needs a Cluster; use RunHybrid).
	Hybrid = core.Hybrid
)

// Pipelines lists every pipeline in declaration order; CLIs and tools
// should derive pipeline menus from it so new pipelines appear
// automatically.
func Pipelines() []Pipeline { return core.Pipelines() }

// PipelineByFlag resolves a pipeline's short CLI name ("post",
// "insitu", "intransit", "hybrid"); the error lists the valid names.
func PipelineByFlag(name string) (Pipeline, error) { return core.PipelineByFlag(name) }

// StageNames returns the canonical reporting order of the stage
// phases appearing in Result.StageTime.
func StageNames() []string { return core.StageNames() }

// DeviceFlags lists the storage-device short names PlatformByFlag
// resolves, in menu order.
func DeviceFlags() []string { return core.DeviceFlags() }

// PlatformByFlag resolves a device short name ("hdd", "ssd", "raid4",
// "nvram"; empty selects the default HDD) to the paper's platform with
// that storage stack. The CLI and the greenvizd service share this
// resolution, so equal names mean equal machines everywhere.
func PlatformByFlag(device string) (Platform, error) { return core.PlatformByFlag(device) }

// AppFlags lists the proxy-application short names ConfigureApp
// accepts, in menu order.
func AppFlags() []string { return core.AppFlags() }

// ConfigureApp wires the named proxy application ("heat", "ocean";
// empty keeps heat) into a config.
func ConfigureApp(cfg *Config, app string) error { return core.ConfigureApp(cfg, app) }

// CaseStudy is one application configuration (I/O every k iterations).
type CaseStudy = core.CaseStudy

// CaseStudies returns the paper's three configurations (§IV-C):
// I/O+visualization every 1st, 2nd, and 8th iteration of 50.
func CaseStudies() []CaseStudy { return core.CaseStudies() }

// Config holds the proxy-application and visualization configuration.
type Config = core.AppConfig

// DefaultConfig returns the paper's calibrated configuration: a
// 128x128 heat grid, ~188 MiB checkpoints, 512x512 frames with three
// isolines.
func DefaultConfig() Config { return core.DefaultAppConfig() }

// Result captures one pipeline run's measurements: execution time,
// energy, average/peak power, per-stage times, power profiles, and a
// frame checksum.
type Result = core.RunResult

// Run executes one pipeline run on a (typically fresh) node.
func Run(n *Node, p Pipeline, cs CaseStudy, cfg Config) *Result {
	return core.Run(n, p, cs, cfg)
}

// Comparison pairs both pipelines' runs of one case study and derives
// the paper's head-to-head metrics (Figs. 7-11 and §V-C).
type Comparison = core.Comparison

// Compare validates and pairs a post-processing and an in-situ run.
func Compare(post, insitu *Result) Comparison { return core.Compare(post, insitu) }

// StageCharacterization is the isolated nnread/nnwrite power study
// (Fig. 6, Table II).
type StageCharacterization = core.StageCharacterization

// CharacterizeStages measures the I/O stages in isolation on a fresh
// node; events sets how many checkpoint writes/reads each stage does.
func CharacterizeStages(n *Node, cfg Config, events int) StageCharacterization {
	return core.CharacterizeStages(n, cfg, events)
}

// WorkloadSpec describes an application's I/O for the advisor.
type WorkloadSpec = core.WorkloadSpec

// Advice is the runtime advisor's recommendation (§V-D, Future Work).
type Advice = core.Advice

// Advise predicts the cost of running a workload as-is, after data
// reorganization, and under in-situ, and recommends a strategy.
func Advise(p Platform, w WorkloadSpec) Advice { return core.Advise(p, w) }

// DiskStats aggregates a node's media traffic, including the
// access-pattern classification the advisor observes.
type DiskStats = storage.DiskStats

// ObserveWorkload derives a WorkloadSpec from a node's disk statistics
// (n.DiskStats()) — the observation half of the Future Work runtime.
func ObserveWorkload(name string, st DiskStats) WorkloadSpec {
	return core.ObserveWorkload(name, st)
}

// Simulator is the proxy-application interface the pipelines drive;
// supply your own via Config.NewSimulator.
type Simulator = core.Simulator

// Field is the 2-D scalar field a Simulator exposes for rendering.
type Field = field.Grid

// HeatParams configures the paper's heat-transfer proxy.
type HeatParams = heat.Params

// DefaultHeatParams returns the paper's 128x128 hot-plate setup.
func DefaultHeatParams() HeatParams { return heat.DefaultParams() }

// NewHeatSolver builds the paper's proxy application.
func NewHeatSolver(p HeatParams) Simulator { return heat.NewSolver(p) }

// OceanParams configures the shallow-water second proxy.
type OceanParams = ocean.Params

// DefaultOceanParams returns a 128x128 two-drop basin.
func DefaultOceanParams() OceanParams { return ocean.DefaultParams() }

// NewOceanSolver builds the shallow-water proxy application.
func NewOceanSolver(p OceanParams) Simulator { return ocean.NewSolver(p) }

// RenderOptions configures the per-event visualization.
type RenderOptions = viz.RenderOptions

// Colormap maps normalized scalars to colors.
type Colormap = viz.Colormap

// InfernoColormap returns the default temperature map.
func InfernoColormap() *Colormap { return viz.Inferno() }

// CoolWarmColormap returns the diverging map for signed fields.
func CoolWarmColormap() *Colormap { return viz.CoolWarm() }

// LinkParams describes a cluster interconnect for the multi-node
// (in-transit) experiments.
type LinkParams = netio.LinkParams

// TenGigE returns an effective 10 GbE link model.
func TenGigE() LinkParams { return netio.TenGigE() }

// Cluster is a two-node in-transit platform: a simulation node and a
// visualization staging node on one virtual clock.
type Cluster = core.Cluster

// NewCluster builds a cluster of two identical nodes joined by a link.
func NewCluster(p Platform, link LinkParams, seed uint64) *Cluster {
	return core.NewCluster(p, link, seed)
}

// RunOnCluster executes one clustered pipeline (InTransit or Hybrid)
// on a cluster.
func RunOnCluster(c *Cluster, p Pipeline, cs CaseStudy, cfg Config) *Result {
	return core.RunOnCluster(c, p, cs, cfg)
}

// RunInTransit executes the in-transit pipeline (Future Work): the
// simulation ships each event's data over the network and the staging
// node renders concurrently. The Result splits Energy across
// SimEnergy/StagingEnergy and reports the link traffic in BytesSent.
func RunInTransit(c *Cluster, cs CaseStudy, cfg Config) *Result {
	return core.RunInTransit(c, cs, cfg)
}

// RunHybrid executes the hybrid pipeline: in-situ rendering on the
// simulation node plus asynchronous checkpoint offload over the link
// to the staging node's disk.
func RunHybrid(c *Cluster, cs CaseStudy, cfg Config) *Result {
	return core.RunHybrid(c, cs, cfg)
}

// NVRAMParams describes the burst-buffer tier (set Platform.NVRAM).
type NVRAMParams = storage.NVRAMParams

// DefaultNVRAM returns a 16 GiB PCIe NVRAM card model.
func DefaultNVRAM() NVRAMParams { return storage.DefaultNVRAM() }

// CheckpointStore is where the post-processing pipeline keeps its
// checkpoints; set Config.Store to redirect them (e.g. to a parallel
// filesystem built with NewPFS).
type CheckpointStore = core.CheckpointStore

// PFSParams configures a striped parallel filesystem (Future Work).
type PFSParams = pfs.Params

// DefaultPFSParams returns a 4-server, 1 MiB-stripe, 10 GbE setup.
func DefaultPFSParams() PFSParams { return pfs.DefaultParams() }

// PFS is a striped parallel filesystem across dedicated storage nodes.
type PFS = pfs.FileSystem

// NewPFS attaches storage servers to the client node's virtual clock.
func NewPFS(client *Node, params PFSParams, seed uint64) *PFS {
	return pfs.New(client, params, seed)
}

// NewPFSStore adapts a parallel filesystem to Config.Store.
func NewPFSStore(fs *PFS) CheckpointStore { return pfs.NewStore(fs) }

// FaultConfig sets the per-operation storage fault rates for a run
// (set Config.Faults). The zero value — and a nil Config.Faults —
// disables injection entirely, leaving all outputs byte-identical to a
// fault-free build.
type FaultConfig = fault.Config

// FaultStats counts the injected faults a run absorbed
// (Result.Faults).
type FaultStats = fault.Stats

// RecoveryStats accounts the retries, re-simulations, and backoff a
// run spent absorbing faults (Result.Recovery).
type RecoveryStats = core.RecoveryStats

// RetryPolicy bounds the recovery from transient storage errors
// (Config.Retry); its zero value means 3 attempts with a 0.5 s initial
// simulated-time backoff.
type RetryPolicy = core.RetryPolicy

// TelemetryEvent is one typed event from a run's telemetry stream:
// run/stage boundaries, energy samples, fault injections, and retry
// attempts, all on the shared timeline. Set Config.Telemetry to
// receive the stream; consumers are synchronous and must not retain
// references into the run.
type TelemetryEvent = telemetry.Event

// TelemetryConsumer receives every TelemetryEvent a run emits
// (Config.Telemetry).
type TelemetryConsumer = telemetry.Consumer

// TelemetryConsumerFunc adapts a function to TelemetryConsumer.
type TelemetryConsumerFunc = telemetry.ConsumerFunc

// TelemetryKind discriminates TelemetryEvent payloads.
type TelemetryKind = telemetry.Kind

// The telemetry event kinds.
const (
	TelemetryRunStart      = telemetry.KindRunStart
	TelemetryStageStart    = telemetry.KindStageStart
	TelemetryStageDone     = telemetry.KindStageDone
	TelemetryEnergySample  = telemetry.KindEnergySample
	TelemetryFaultInjected = telemetry.KindFaultInjected
	TelemetryRetryAttempt  = telemetry.KindRetryAttempt
	TelemetryRunEnd        = telemetry.KindRunEnd
	TelemetrySeriesDefine  = telemetry.KindSeriesDefine
)

// ParseFaultSpec parses the CLI's -faults syntax: comma-separated
// key=value pairs among bitrot, readerr, writeerr, latency, drop
// (probabilities), spike, timeout (seconds), and seed. An empty spec
// returns (nil, nil): injection off.
func ParseFaultSpec(spec string) (*FaultConfig, error) { return fault.ParseSpec(spec) }

// FioKind selects one of the four Table III disk tests.
type FioKind = fio.TestKind

// The fio workloads of Table III.
const (
	FioSeqRead   = fio.SeqRead
	FioRandRead  = fio.RandRead
	FioSeqWrite  = fio.SeqWrite
	FioRandWrite = fio.RandWrite
)

// FioConfig configures the disk tests.
type FioConfig = fio.Config

// DefaultFioConfig returns the paper's 4 GiB setup.
func DefaultFioConfig() FioConfig { return fio.DefaultConfig() }

// FioResult is one Table III row.
type FioResult = fio.Result

// RunFio executes one disk test on the node.
func RunFio(n *Node, kind FioKind, cfg FioConfig) FioResult { return fio.Run(n, kind, cfg) }

// RunAllFio executes the four Table III tests in order.
func RunAllFio(n *Node, cfg FioConfig) []FioResult { return fio.RunAll(n, cfg) }

// Report is one regenerated paper artifact (a table or figure).
type Report = experiments.Report

// Experiment pairs an artifact ID ("fig10", "table3", ...) with its
// driver.
type Experiment = experiments.Experiment

// Experiments lists every reproducible artifact in paper order.
func Experiments() []Experiment { return experiments.Registry() }

// Suite caches the runs that experiments share; use one suite when
// regenerating several artifacts. A suite is safe for concurrent use
// and deterministic in (seed, config) at any parallelism.
type Suite = experiments.Suite

// NewSuite creates an experiment suite. A nil cfg selects
// DefaultConfig.
func NewSuite(seed uint64, cfg *Config) *Suite { return experiments.NewSuite(seed, cfg) }

// RunExperiment regenerates one artifact by ID on the given suite.
func RunExperiment(s *Suite, id string) (Report, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return Report{}, err
	}
	return e.Run(s), nil
}

// TimedReport is a regenerated artifact plus its driver's wall time.
type TimedReport = experiments.Timed

// RunAllExperiments regenerates every artifact, up to workers at a
// time, returning reports in registry order. Report bodies are
// byte-identical at any worker count for a given seed.
func RunAllExperiments(ctx context.Context, s *Suite, workers int) ([]TimedReport, error) {
	return s.RunAll(ctx, workers)
}

package greenviz_test

import (
	"fmt"

	greenviz "repro"
)

// tinyConfig keeps the documented examples fast: few real sub-steps,
// a short case study. Virtual-time behaviour is unchanged.
func tinyConfig() greenviz.Config {
	cfg := greenviz.DefaultConfig()
	cfg.RealSubsteps = 4
	return cfg
}

// ExampleRun executes one in-situ run and inspects its measurements.
func ExampleRun() {
	cs := greenviz.CaseStudy{Name: "demo", Iterations: 5, IOInterval: 1}
	n := greenviz.NewNode(greenviz.SandyBridge(), 1)
	res := greenviz.Run(n, greenviz.InSitu, cs, tinyConfig())
	fmt.Println("frames:", res.Frames)
	fmt.Println("consumed energy:", res.Energy > 0)
	fmt.Println("peak above average:", res.PeakPower > res.AvgPower)
	// Output:
	// frames: 5
	// consumed energy: true
	// peak above average: true
}

// ExampleCompare reproduces the paper's head-to-head comparison shape.
func ExampleCompare() {
	cs := greenviz.CaseStudies()[0] // I/O every iteration
	post := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 1), greenviz.PostProcessing, cs, tinyConfig())
	insitu := greenviz.Run(greenviz.NewNode(greenviz.SandyBridge(), 2), greenviz.InSitu, cs, tinyConfig())
	c := greenviz.Compare(post, insitu)

	fmt.Println("in-situ uses less energy:", c.EnergySavingsPct() > 30)
	fmt.Println("at higher average power:", c.AvgPowerIncreasePct() > 0)
	fmt.Println("identical frames:", post.FrameChecksum == insitu.FrameChecksum)

	b := c.Breakdown(10.15, 104.5)
	fmt.Println("savings mostly static:", b.StaticSharePct() > 80)
	// Output:
	// in-situ uses less energy: true
	// at higher average power: true
	// identical frames: true
	// savings mostly static: true
}

// ExampleAdvise shows the Future Work runtime recommending data
// reorganization for a random-I/O application (§V-D).
func ExampleAdvise() {
	a := greenviz.Advise(greenviz.SandyBridge(), greenviz.WorkloadSpec{
		Name:           "random-io-app",
		ReadBytes:      4 * greenviz.GiB,
		WriteBytes:     4 * greenviz.GiB,
		OpSize:         16 * greenviz.KiB,
		RandomFraction: 1,
		SpanBytes:      4 * greenviz.GiB,
	})
	fmt.Println("recommended:", a.Recommended)
	fmt.Println("keeps exploratory analysis:", a.Reorganized.Exploratory)
	// Output:
	// recommended: reorganized post-processing
	// keeps exploratory analysis: true
}

// ExampleRunFio runs one Table III disk test at reduced size.
func ExampleRunFio() {
	cfg := greenviz.DefaultFioConfig()
	cfg.FileSize = 256 * greenviz.MiB
	n := greenviz.NewNode(greenviz.SandyBridge(), 7)
	seq := greenviz.RunFio(n, greenviz.FioSeqRead, cfg)
	rand := greenviz.RunFio(n, greenviz.FioRandRead, cfg)
	fmt.Println("random reads far slower:", rand.ExecTime > 10*seq.ExecTime)
	// Output:
	// random reads far slower: true
}

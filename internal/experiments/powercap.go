package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/units"
)

// PowerCap sweeps a RAPL PL1-style package power limit over both
// pipelines on case study 1. Fig. 9's point — "no significant
// difference in the peak power, which is an important metric for
// power-capped systems" — implies caps hit both pipelines alike; this
// experiment quantifies the other side: under a cap the compute phases
// stretch, and because the node's energy is dominated by static power
// (§V-C), slowing down *costs* energy on both pipelines.
func (s *Suite) PowerCap() Report {
	cs := core.CaseStudies()[0]

	var rows [][]string
	for _, cap := range []units.Watts{0, 68, 60, 52} {
		label := "uncapped"
		if cap > 0 {
			label = fmt.Sprintf("PKG cap %v", cap)
		}
		p := node.SandyBridge()
		p.PackagePowerCap = cap
		post := core.Run(node.New(p, s.seedFor("powercap/"+label+"/post")), core.PostProcessing, cs, s.Config)
		ins := core.Run(node.New(p, s.seedFor("powercap/"+label+"/insitu")), core.InSitu, cs, s.Config)
		c := core.Compare(post, ins)
		rows = append(rows, []string{
			label,
			secs(ins.ExecTime),
			watts(ins.PeakPower),
			kjoule(ins.Energy),
			kjoule(post.Energy),
			pct(c.EnergySavingsPct()),
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Package limit", "In-situ time", "In-situ peak", "In-situ energy", "Post energy", "Savings"}, rows))
	fmt.Fprintf(&b, "The cap clips peak power identically for both pipelines (they share the\n")
	fmt.Fprintf(&b, "same compute phases), but stretching compute on a static-power-dominated\n")
	fmt.Fprintf(&b, "node raises *both* pipelines' energy — race-to-idle beats slow-and-steady\n")
	fmt.Fprintf(&b, "here, the same static-vs-dynamic logic as Sec. V-C.\n")
	return Report{
		ID:    "powercap",
		Title: "RAPL package power capping across both pipelines (Fig. 9 extension)",
		Body:  b.String(),
	}
}

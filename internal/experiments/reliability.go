package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/pfs"
)

// Reliability measures what storage faults cost each pipeline (ours,
// in the robustness direction of SIM-SITU): case study 1 is rerun with
// the deterministic fault injector at increasing rates — bit-rot on
// delivered bytes, transient read/write errors, disk latency spikes —
// and the bounded-retry/re-simulation recovery machinery absorbs every
// fault while its time and energy land on the ledgers. The fault-free
// row reuses the cached clean runs: with injection off, the pipelines
// are byte-identical to a build without the fault hooks.
func (s *Suite) Reliability() Report {
	cs := core.CaseStudies()[0]
	type point struct {
		label string
		rate  float64
	}
	points := []point{
		{"none", 0},
		{"0.5%", 0.005},
		{"5%", 0.05},
	}

	var rows [][]string
	var cleanPost, cleanIns *core.RunResult
	for _, pt := range points {
		for _, p := range []core.Pipeline{core.PostProcessing, core.InSitu} {
			var res *core.RunResult
			if pt.rate == 0 {
				res = s.run(p, cs)
			} else {
				key := fmt.Sprintf("reliability/%s/%s", p, pt.label)
				cfg := s.Config
				cfg.Faults = &fault.Config{
					Seed:     s.seedFor(key + "/faults"),
					BitRot:   pt.rate,
					ReadErr:  pt.rate,
					WriteErr: pt.rate / 2,
					Latency:  pt.rate * 2,
				}
				res = core.Run(s.nodeFor(key), p, cs, cfg)
			}
			clean := &cleanPost
			if p == core.InSitu {
				clean = &cleanIns
			}
			if pt.rate == 0 {
				*clean = res
			}
			overhead := "—"
			if *clean != nil && (*clean).Energy > 0 && pt.rate > 0 {
				overhead = pct((float64(res.Energy)/float64((*clean).Energy) - 1) * 100)
			}
			rec := res.Recovery
			rows = append(rows, []string{
				p.String(), pt.label,
				secs(res.ExecTime), kjoule(res.Energy), overhead,
				fmt.Sprintf("%d", res.Faults.Total()),
				fmt.Sprintf("%d", rec.WriteRetries+rec.ReadRetries),
				fmt.Sprintf("%d", rec.Resimulations),
			})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Pipeline", "Fault rate", "Time", "Energy", "Overhead", "Faults", "Retries", "Resims"}, rows))

	// Server drops on the parallel filesystem: the RPC-level fault class
	// the local stack cannot express.
	client := node.New(node.SandyBridge(), s.seedFor("reliability/pfs/client"))
	fsys := pfs.New(client, pfs.DefaultParams(), s.seedFor("reliability/pfs/servers"))
	cfg := s.Config
	store := pfs.NewStore(fsys)
	store.SetKernelWorkers(cfg.KernelWorkers)
	cfg.Store = store
	cfg.Faults = &fault.Config{Seed: s.seedFor("reliability/pfs/faults"), Drop: 0.05}
	remote := core.Run(client, core.PostProcessing, cs, cfg)
	rec := remote.Recovery
	fmt.Fprintf(&b, "PFS with 5%% server drops: %s, %s client energy — %d drops absorbed by %d retries\n",
		secs(remote.ExecTime), kjoule(remote.Energy), remote.Faults.ServerDrops, rec.WriteRetries+rec.ReadRetries)
	fmt.Fprintf(&b, "(%s stalled in timeouts/backoff), %d checkpoints re-simulated.\n",
		secs(rec.BackoffTime), rec.Resimulations)

	fmt.Fprintf(&b, "\nThe post-processing pipeline pays twice per fault rate: its checkpoints\n")
	fmt.Fprintf(&b, "round-trip through storage, so both the write and the cold read draw fault\n")
	fmt.Fprintf(&b, "decisions, and an unrecoverable checkpoint costs a full re-simulation of the\n")
	fmt.Fprintf(&b, "lost frame. In-situ renders from memory and exposes only its small frame and\n")
	fmt.Fprintf(&b, "provenance writes, so the same fault rates barely move its energy — the\n")
	fmt.Fprintf(&b, "paper's greenness gap widens as storage gets less reliable.\n")
	return Report{
		ID:    "reliability",
		Title: "Reliability: energy overhead of storage faults per pipeline (ours)",
		Body:  b.String(),
	}
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/node"
	"repro/internal/units"
)

// Ablations exercises the design choices DESIGN.md §6 calls out:
//
//	A1  elevator write-back vs FIFO vs write-through (random-write fio);
//	A2  in-situ per-frame fsync on vs off (case study 1);
//	A3  HDD vs SSD (random-read fio and the case-study-1 comparison) —
//	    the Future Work device study.
func (s *Suite) Ablations() Report {
	var b strings.Builder

	// A1: the random-write row of Table III collapses without the
	// elevator or the cache. The two cached variants run under memory
	// pressure (small dirty thresholds) so the background write-back
	// daemon — where the elevator lives — actually drives the drain;
	// with the paper's 64 GB the whole 1 GiB is absorbed and drained in
	// one sorted fsync pass either way.
	fmt.Fprintf(&b, "A1: random-write fio (1 GiB) under three write paths (memory-pressured node)\n")
	fioCfg := fio.DefaultConfig()
	fioCfg.FileSize = 1 * units.GiB
	pressure := func(p *node.Profile) {
		p.Cache.BackgroundDirty = 64 * units.MiB
		p.Cache.DirtyLimit = 128 * units.MiB
		p.Cache.LowWater = 16 * units.MiB
	}
	rows := [][]string{}
	for _, variant := range []struct {
		name string
		mut  func(*node.Profile)
	}{
		{"elevator write-back (default)", pressure},
		{"FIFO write-back (no elevator)", func(p *node.Profile) { pressure(p); p.Cache.FIFOWriteback = true }},
		{"write-through (no cache)", func(p *node.Profile) { p.Cache.WriteThrough = true }},
	} {
		p := node.SandyBridge()
		variant.mut(&p)
		r := fio.Run(node.New(p, s.seedFor("ablations/a1/"+variant.name)), fio.RandWrite, fioCfg)
		rows = append(rows, []string{variant.name, secs(r.ExecTime), kjoule(r.FullSystemEnergy)})
	}
	fmt.Fprintf(&b, "%s\n", table([]string{"Write path", "Time", "Energy"}, rows))

	// A2: the in-situ pipeline's residual I/O cost is its per-frame
	// durability sync.
	fmt.Fprintf(&b, "A2: in-situ per-frame fsync (case study 1)\n")
	cs := core.CaseStudies()[0]
	rows = rows[:0]
	for _, variant := range []struct {
		name   string
		noSync bool
	}{
		{"fsync every frame (default)", false},
		{"no per-frame fsync", true},
	} {
		cfg := s.Config
		cfg.InsituNoSync = variant.noSync
		r := core.Run(s.nodeFor("ablations/a2/"+variant.name), core.InSitu, cs, cfg)
		rows = append(rows, []string{variant.name, secs(r.ExecTime), kjoule(r.Energy)})
	}
	fmt.Fprintf(&b, "%s\n", table([]string{"In-situ variant", "Time", "Energy"}, rows))

	// A3: on an SSD the random-read penalty — and with it most of the
	// paper's static-time argument — shrinks dramatically.
	fmt.Fprintf(&b, "A3: device study, HDD vs SSD\n")
	ssdFioCfg := fio.DefaultConfig()
	ssdFioCfg.FileSize = 1 * units.GiB
	rows = rows[:0]
	for _, variant := range []struct {
		name    string
		profile node.Profile
	}{
		{"HDD (paper platform)", node.SandyBridge()},
		{"SSD (future work)", node.SandyBridgeSSD()},
	} {
		n := node.New(variant.profile, s.seedFor("ablations/a3/"+variant.name+"/fio"))
		rr := fio.Run(n, fio.RandRead, ssdFioCfg)
		post := core.Run(node.New(variant.profile, s.seedFor("ablations/a3/"+variant.name+"/post")), core.PostProcessing, cs, s.Config)
		ins := core.Run(node.New(variant.profile, s.seedFor("ablations/a3/"+variant.name+"/insitu")), core.InSitu, cs, s.Config)
		c := core.Compare(post, ins)
		rows = append(rows, []string{
			variant.name,
			secs(rr.ExecTime),
			pct(c.EnergySavingsPct()),
		})
	}
	fmt.Fprintf(&b, "%s\n", table([]string{"Device", "Random-read 1 GiB", "In-situ energy savings (case 1)"}, rows))
	fmt.Fprintf(&b, "With seeks gone, post-processing's serialized I/O time shrinks and the\nin-situ advantage narrows — the paper's conclusion is device-dependent.\n")

	return Report{
		ID:    "ablations",
		Title: "Ablations: elevator, cache, per-frame sync, device",
		Body:  b.String(),
	}
}

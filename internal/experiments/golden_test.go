package experiments

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
)

// -update regenerates the golden digests instead of checking them:
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
//
// Review the resulting testdata/golden diff before committing: a
// changed digest means the experiment's stdout changed.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden digests from the current code")

// goldenSuite mirrors the CLI defaults (`greenviz -experiment all
// -seed 1`): seed 1, 16 real sub-steps, 4 GiB fio files. The digests
// therefore certify the exact bytes a default CLI run prints.
func goldenSuite() *Suite {
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 16
	return NewSuite(1, &cfg)
}

// goldenBlock is the exact stdout block the CLI prints per experiment
// and the service daemon serves as an experiment job's report body.
func goldenBlock(r Report) string { return r.Block() }

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".sha256")
}

// TestGoldenOutputs runs every registered experiment and verifies its
// stdout block against the committed per-experiment SHA-256 digest.
// This is the regression harness that lets refactors (like the
// stage-graph engine) prove byte-identical output mechanically: any
// drift in any report body fails here, naming the experiment.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry at CLI fidelity")
	}
	if raceEnabled {
		t.Skip("full registry passes are infeasible under race instrumentation")
	}

	reports, err := goldenSuite().RunAll(context.Background(), runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			sum := sha256.Sum256([]byte(goldenBlock(r.Report)))
			line := fmt.Sprintf("%x  %s\n", sum, r.ID)
			if err := os.WriteFile(goldenPath(r.ID), []byte(line), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden digests", len(reports))
		return
	}

	for _, r := range reports {
		want, err := os.ReadFile(goldenPath(r.ID))
		if err != nil {
			t.Errorf("experiment %q has no golden digest (new experiment? run with -update): %v", r.ID, err)
			continue
		}
		wantSum, _, ok := strings.Cut(strings.TrimSpace(string(want)), "  ")
		if !ok {
			t.Errorf("experiment %q: malformed golden file %q", r.ID, want)
			continue
		}
		got := fmt.Sprintf("%x", sha256.Sum256([]byte(goldenBlock(r.Report))))
		if got != wantSum {
			t.Errorf("experiment %q: stdout diverged from golden digest\n  got  %s\n  want %s\n(run with -update and inspect the report diff if the change is intentional)",
				r.ID, got, wantSum)
		}
	}
}

// TestGoldenCoversRegistry fails when an experiment is registered
// without a committed digest, or a digest is orphaned — so adding an
// experiment forces a golden update and removals don't leave stale
// files behind.
func TestGoldenCoversRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		ids[e.ID] = true
		if _, err := os.Stat(goldenPath(e.ID)); err != nil {
			t.Errorf("experiment %q: missing golden digest %s (run TestGoldenOutputs with -update)", e.ID, goldenPath(e.ID))
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden dir: %v", err)
	}
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".sha256")
		if !ids[id] {
			t.Errorf("orphaned golden digest %s: no experiment %q registered", e.Name(), id)
		}
	}
}

// Package experiments regenerates every table and figure of the
// paper's evaluation: one driver per artifact, each returning a Report
// whose body prints the same rows or series the paper shows. A Suite
// caches pipeline runs so figures that share runs (Figs. 5 and 7-11)
// don't recompute them.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/node"
)

// Report is one regenerated artifact.
type Report struct {
	ID    string // "table1", "fig4", ... "hypothetical"
	Title string
	Body  string
}

// Suite lazily executes and caches the runs the experiments share.
// A suite is deterministic in (Seed, Config); it is not safe for
// concurrent use.
type Suite struct {
	Seed   uint64
	Config core.AppConfig
	// Fio configures the Table III runs (default: the paper's 4 GiB).
	Fio fio.Config

	runs      map[string]*core.RunResult
	fioOut    []fio.Result
	stageChar *core.StageCharacterization
	seedCtr   uint64
}

// NewSuite creates a suite. Config's zero value selects the default
// app configuration.
func NewSuite(seed uint64, cfg *core.AppConfig) *Suite {
	c := core.DefaultAppConfig()
	if cfg != nil {
		c = *cfg
	}
	return &Suite{Seed: seed, Config: c, Fio: fio.DefaultConfig(), runs: map[string]*core.RunResult{}}
}

// newNode builds a fresh node with a per-use derived seed so repeated
// experiments never share stochastic streams, yet the whole suite is
// reproducible from Suite.Seed.
func (s *Suite) newNode() *node.Node {
	s.seedCtr++
	return node.New(node.SandyBridge(), s.Seed*1_000_003+s.seedCtr)
}

// run returns the cached pipeline run, executing it on first use.
func (s *Suite) run(p core.Pipeline, cs core.CaseStudy) *core.RunResult {
	key := fmt.Sprintf("%s/%s", p, cs.Name)
	if r, ok := s.runs[key]; ok {
		return r
	}
	r := core.Run(s.newNode(), p, cs, s.Config)
	s.runs[key] = r
	return r
}

// comparison returns the post/in-situ pair for case study index i.
func (s *Suite) comparison(i int) core.Comparison {
	cs := core.CaseStudies()[i]
	return core.Compare(s.run(core.PostProcessing, cs), s.run(core.InSitu, cs))
}

// ComparisonFor returns the (cached) post/in-situ comparison for
// case-study index i, executing the runs on first use. The CLI uses it
// to export profiles without re-running pipelines.
func (s *Suite) ComparisonFor(i int) core.Comparison { return s.comparison(i) }

// comparisons returns all three case-study comparisons.
func (s *Suite) comparisons() []core.Comparison {
	out := make([]core.Comparison, 0, 3)
	for i := range core.CaseStudies() {
		out = append(out, s.comparison(i))
	}
	return out
}

// fioResults returns the cached Table III runs.
func (s *Suite) fioResults() []fio.Result {
	if s.fioOut == nil {
		s.fioOut = fio.RunAll(s.newNode(), s.Fio)
	}
	return s.fioOut
}

// stages returns the cached Table II / Fig. 6 characterization.
func (s *Suite) stages() *core.StageCharacterization {
	if s.stageChar == nil {
		sc := core.CharacterizeStages(s.newNode(), s.Config, 10)
		s.stageChar = &sc
	}
	return s.stageChar
}

// Experiment pairs an ID with its driver.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Suite) Report
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Hardware specification (Table I)", (*Suite).Table1},
		{"fig4", "Stage time shares per case study (Fig. 4)", (*Suite).Fig4},
		{"fig5", "Power profiles of both pipelines, 3 case studies (Fig. 5)", (*Suite).Fig5},
		{"fig6", "nnread/nnwrite stage power profiles (Fig. 6)", (*Suite).Fig6},
		{"fig7", "Execution time comparison (Fig. 7)", (*Suite).Fig7},
		{"fig8", "Average power comparison (Fig. 8)", (*Suite).Fig8},
		{"fig9", "Peak power comparison (Fig. 9)", (*Suite).Fig9},
		{"fig10", "Energy comparison (Fig. 10)", (*Suite).Fig10},
		{"fig11", "Normalized energy efficiency (Fig. 11)", (*Suite).Fig11},
		{"table2", "nnread/nnwrite power properties (Table II)", (*Suite).Table2},
		{"breakdown", "Energy-savings breakdown, static vs dynamic (Sec. V-C)", (*Suite).BreakdownReport},
		{"table3", "fio sequential/random tests (Table III)", (*Suite).Table3},
		{"hypothetical", "Data-reorganization hypothetical (Sec. V-D)", (*Suite).Hypothetical},
		{"intransit", "Multi-node in-transit pipeline (Future Work)", (*Suite).InTransit},
		{"devices", "Device sweep: HDD/RAID/NVRAM/SSD (Future Work)", (*Suite).Devices},
		{"optimized", "Alternative post-processing optimizations (Conclusion)", (*Suite).Optimized},
		{"sampling", "In-situ data sampling: energy vs quality (refs 21, 25)", (*Suite).Sampling},
		{"pfs", "Post-processing on a parallel filesystem (Future Work)", (*Suite).PFS},
		{"powercap", "RAPL package power capping (Fig. 9 extension)", (*Suite).PowerCap},
		{"compression", "In-situ payload compression (ref 22)", (*Suite).Compression},
		{"cinema", "Image-database in-situ (ref 12)", (*Suite).Cinema},
		{"ablations", "Design-choice ablations (ours)", (*Suite).Ablations},
	}
}

// ByID returns the registered experiment, or an error listing valid IDs.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, ids)
}

// Package experiments regenerates every table and figure of the
// paper's evaluation: one driver per artifact, each returning a Report
// whose body prints the same rows or series the paper shows. A Suite
// caches pipeline runs so figures that share runs (Figs. 5 and 7-11)
// don't recompute them, and is safe for concurrent use: RunAll fans
// the drivers out across a worker pool while singleflight caching
// guarantees each shared run still executes exactly once.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/node"
	"repro/internal/xrand"
)

// Report is one regenerated artifact.
type Report struct {
	ID    string `json:"id"` // "table1", "fig4", ... "hypothetical"
	Title string `json:"title"`
	Body  string `json:"body"`
}

// Block returns the report's canonical stdout block — the exact bytes
// the CLI prints per experiment and the service daemon serves as the
// job report. The golden-digest harness fingerprints this block, so
// every consumer of Block is regression-gated together.
func (r Report) Block() string {
	return fmt.Sprintf("== %s ==\n%s\n%s\n", r.ID, r.Title, r.Body)
}

// cell is a singleflight cache slot: the first caller computes the
// value under its own Once while later callers block on the same
// computation and share the result.
type cell[T any] struct {
	once sync.Once
	v    T
}

func (c *cell[T]) get(compute func() T) T {
	c.once.Do(func() { c.v = compute() })
	return c.v
}

// Suite lazily executes and caches the runs the experiments share.
//
// A suite is deterministic in (Seed, Config) and safe for concurrent
// use: drivers may run on any number of goroutines, and every seed a
// driver consumes is derived from Suite.Seed and a stable string key
// (xrand.SeedFor), never from execution order — so reports are
// byte-identical whether the suite runs serially or on eight workers.
// Mutate the exported fields only before the first driver runs.
type Suite struct {
	Seed   uint64
	Config core.AppConfig
	// Fio configures the Table III runs (default: the paper's 4 GiB).
	Fio fio.Config
	// Log, when non-nil, receives one per-experiment wall-time line as
	// each RunAll driver completes. Nil — the default — is quiet mode:
	// embedded suite runs (the service daemon, library callers) emit
	// nothing; the CLI points it at stderr. Report bodies are unaffected
	// either way.
	Log io.Writer

	mu        sync.Mutex
	logMu     sync.Mutex
	runs      map[string]*cell[*core.RunResult]
	fioOut    cell[[]fio.Result]
	stageChar cell[*core.StageCharacterization]
}

// NewSuite creates a suite. Config's zero value selects the default
// app configuration.
func NewSuite(seed uint64, cfg *core.AppConfig) *Suite {
	c := core.DefaultAppConfig()
	if cfg != nil {
		c = *cfg
	}
	return &Suite{Seed: seed, Config: c, Fio: fio.DefaultConfig(), runs: map[string]*cell[*core.RunResult]{}}
}

// logf writes one progress line to Suite.Log, if attached. Drivers run
// on several goroutines, so writes are serialized here.
func (s *Suite) logf(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.Log, format, args...)
	s.logMu.Unlock()
}

// seedFor derives the stream seed for a named component. Equal
// (Suite.Seed, key) pairs always yield the same seed, regardless of
// which experiments ran before or on how many workers.
func (s *Suite) seedFor(key string) uint64 { return xrand.SeedFor(s.Seed, key) }

// nodeFor builds a fresh paper-platform node whose stochastic streams
// are keyed by name, so repeated experiments never share streams yet
// the whole suite is reproducible from Suite.Seed alone.
func (s *Suite) nodeFor(key string) *node.Node {
	return node.New(node.SandyBridge(), s.seedFor(key))
}

// run returns the cached pipeline run, executing it exactly once on
// first use even when several figures request it concurrently.
func (s *Suite) run(p core.Pipeline, cs core.CaseStudy) *core.RunResult {
	key := fmt.Sprintf("%s/%s", p, cs.Name)
	s.mu.Lock()
	c, ok := s.runs[key]
	if !ok {
		c = &cell[*core.RunResult]{}
		s.runs[key] = c
	}
	s.mu.Unlock()
	return c.get(func() *core.RunResult {
		return core.Run(s.nodeFor("run/"+key), p, cs, s.Config)
	})
}

// comparison returns the post/in-situ pair for case study index i.
func (s *Suite) comparison(i int) core.Comparison {
	cs := core.CaseStudies()[i]
	return core.Compare(s.run(core.PostProcessing, cs), s.run(core.InSitu, cs))
}

// ComparisonFor returns the (cached) post/in-situ comparison for
// case-study index i, executing the runs on first use. The CLI uses it
// to export profiles without re-running pipelines.
func (s *Suite) ComparisonFor(i int) core.Comparison { return s.comparison(i) }

// comparisons returns all three case-study comparisons.
func (s *Suite) comparisons() []core.Comparison {
	out := make([]core.Comparison, 0, 3)
	for i := range core.CaseStudies() {
		out = append(out, s.comparison(i))
	}
	return out
}

// fioResults returns the cached Table III runs.
func (s *Suite) fioResults() []fio.Result {
	return s.fioOut.get(func() []fio.Result {
		return fio.RunAll(s.nodeFor("fio/table3"), s.Fio)
	})
}

// stages returns the cached Table II / Fig. 6 characterization.
func (s *Suite) stages() *core.StageCharacterization {
	return s.stageChar.get(func() *core.StageCharacterization {
		sc := core.CharacterizeStages(s.nodeFor("stages/characterization"), s.Config, 10)
		return &sc
	})
}

// Experiment pairs an ID with its driver.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Suite) Report
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Hardware specification (Table I)", (*Suite).Table1},
		{"fig4", "Stage time shares per case study (Fig. 4)", (*Suite).Fig4},
		{"fig5", "Power profiles of both pipelines, 3 case studies (Fig. 5)", (*Suite).Fig5},
		{"fig6", "nnread/nnwrite stage power profiles (Fig. 6)", (*Suite).Fig6},
		{"fig7", "Execution time comparison (Fig. 7)", (*Suite).Fig7},
		{"fig8", "Average power comparison (Fig. 8)", (*Suite).Fig8},
		{"fig9", "Peak power comparison (Fig. 9)", (*Suite).Fig9},
		{"fig10", "Energy comparison (Fig. 10)", (*Suite).Fig10},
		{"fig11", "Normalized energy efficiency (Fig. 11)", (*Suite).Fig11},
		{"table2", "nnread/nnwrite power properties (Table II)", (*Suite).Table2},
		{"breakdown", "Energy-savings breakdown, static vs dynamic (Sec. V-C)", (*Suite).BreakdownReport},
		{"table3", "fio sequential/random tests (Table III)", (*Suite).Table3},
		{"hypothetical", "Data-reorganization hypothetical (Sec. V-D)", (*Suite).Hypothetical},
		{"intransit", "Multi-node in-transit pipeline (Future Work)", (*Suite).InTransit},
		{"hybrid", "Hybrid in-situ + in-transit checkpoint offload (ours)", (*Suite).Hybrid},
		{"devices", "Device sweep: HDD/RAID/NVRAM/SSD (Future Work)", (*Suite).Devices},
		{"optimized", "Alternative post-processing optimizations (Conclusion)", (*Suite).Optimized},
		{"sampling", "In-situ data sampling: energy vs quality (refs 21, 25)", (*Suite).Sampling},
		{"pfs", "Post-processing on a parallel filesystem (Future Work)", (*Suite).PFS},
		{"powercap", "RAPL package power capping (Fig. 9 extension)", (*Suite).PowerCap},
		{"compression", "In-situ payload compression (ref 22)", (*Suite).Compression},
		{"cinema", "Image-database in-situ (ref 12)", (*Suite).Cinema},
		{"ablations", "Design-choice ablations (ours)", (*Suite).Ablations},
		{"reliability", "Storage-fault injection: recovery cost per pipeline (ours)", (*Suite).Reliability},
	}
}

// ByID returns the registered experiment, or an error listing valid IDs.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, ids)
}

// Timed is a regenerated artifact plus the wall-clock time its driver
// took (including any shared runs it was first to trigger).
type Timed struct {
	Report
	Wall time.Duration
}

// RunAll regenerates every registered experiment, running up to
// workers drivers concurrently (workers < 1 selects one per
// experiment), and returns the reports in registry order. The reports
// are independent of workers: shared runs are deduplicated and every
// seed is derived by key, so the bodies are byte-identical at any
// parallelism. Cancelling ctx stops scheduling new drivers; already
// running drivers finish, and the partial results are returned
// alongside ctx's error.
func (s *Suite) RunAll(ctx context.Context, workers int) ([]Timed, error) {
	reg := Registry()
	if workers < 1 || workers > len(reg) {
		workers = len(reg)
	}
	out := make([]Timed, len(reg))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				r := reg[i].Run(s)
				wall := time.Since(start)
				out[i] = Timed{Report: r, Wall: wall}
				s.logf("%-12s %8.2fs\n", r.ID, wall.Seconds())
			}
		}()
	}
	var err error
dispatch:
	for i := range reg {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out, err
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/node"
)

// InTransit runs the Future Work multi-node study: the in-transit
// pipeline (simulation node + network + staging node) against the
// paper's two single-node pipelines on case study 1.
func (s *Suite) InTransit() Report {
	cs := core.CaseStudies()[0]
	post := s.run(core.PostProcessing, cs)
	ins := s.run(core.InSitu, cs)

	cluster := core.NewCluster(node.SandyBridge(), netio.TenGigE(), s.seedFor("intransit/cluster"))
	it := core.RunInTransit(cluster, cs, s.Config)

	var b strings.Builder
	rows := [][]string{
		{"post-processing (1 node)", secs(post.ExecTime), kjoule(post.Energy), kjoule(post.Energy)},
		{"in-situ (1 node)", secs(ins.ExecTime), kjoule(ins.Energy), kjoule(ins.Energy)},
		{"in-transit (sim node)", secs(it.ExecTime), kjoule(it.SimEnergy), kjoule(it.Energy)},
	}
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Pipeline", "Makespan", "Energy (sim node)", "Energy (cluster)"}, rows))
	fmt.Fprintf(&b, "Network: %s over 10 GbE in %d transfers; staging rendered for %s\n",
		it.BytesSent, it.Frames, secs(it.StagingBusy))
	fmt.Fprintf(&b, "(%.0f%% of the staging node's time was idle floor).\n\n",
		(1-float64(it.StagingBusy)/float64(it.ExecTime))*100)
	fmt.Fprintf(&b, "In-transit offloads rendering, so the simulation node finishes fastest and\n")
	fmt.Fprintf(&b, "spends the least energy — but a dedicated staging node's static power makes\n")
	fmt.Fprintf(&b, "the cluster total exceed single-node in-situ unless staging is shared across\n")
	fmt.Fprintf(&b, "jobs (consistent with Gamell et al. [24] and Bennett et al. [10]).\n")
	return Report{
		ID:    "intransit",
		Title: "Future Work: multi-node in-transit pipeline vs. the paper's two",
		Body:  b.String(),
	}
}

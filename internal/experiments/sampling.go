package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/heat"
	"repro/internal/units"
	"repro/internal/viz"
)

// Sampling quantifies the energy-quality tradeoff of in-situ data
// sampling (Woodring et al. [21]; Haldeman et al. [25]): the in-situ
// pipeline ships a 1/k²-subsampled data product per event, trading
// image fidelity (PSNR against the full-resolution render) for
// less I/O energy.
func (s *Suite) Sampling() Report {
	cs := core.CaseStudies()[0]

	// Reference render from a warmed solver state (host-side quality
	// measurement; the energy comes from the pipeline runs).
	solver := heat.NewSolver(s.Config.Heat)
	solver.Step(maxInt(s.Config.RealSubsteps, 64))
	refOpts := s.Config.Render
	lo, hi := solver.Field().MinMax()
	refOpts.Lo, refOpts.Hi = lo, hi
	ref, _ := viz.Render(solver.Field(), refOpts)

	var rows [][]string
	for _, k := range []int{1, 2, 4, 8} {
		cfg := s.Config
		cfg.InsituPayload = cfg.InsituPayload / units.Bytes(k*k)
		r := core.Run(s.nodeFor(fmt.Sprintf("sampling/k=%d", k)), core.InSitu, cs, cfg)

		img, _ := viz.Render(viz.Downsample(solver.Field(), k), refOpts)
		psnr := viz.PSNR(ref, img)
		psnrStr := "inf (exact)"
		if !math.IsInf(psnr, 1) {
			psnrStr = fmt.Sprintf("%.1f dB", psnr)
		}
		rows = append(rows, []string{
			fmt.Sprintf("1/%d per axis", k),
			cfg.InsituPayload.String(),
			kjoule(r.Energy),
			psnrStr,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Sampling", "Payload/event", "In-situ energy", "Image PSNR vs full"}, rows))
	fmt.Fprintf(&b, "Sampling shrinks the in-situ flush — but Sec. V-C already showed the\n")
	fmt.Fprintf(&b, "dynamic (data-volume) component is the small share of the energy, so the\n")
	fmt.Fprintf(&b, "returns diminish quickly while image quality keeps falling: the paper's\n")
	fmt.Fprintf(&b, "argument against lossy reduction as the primary power lever, quantified.\n")
	return Report{
		ID:    "sampling",
		Title: "In-situ data sampling: energy vs. image quality (refs [21], [25])",
		Body:  b.String(),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	fmt.Fprintln(w, strings.Join(dashes(header), "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush() //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func dashes(header []string) []string {
	out := make([]string, len(header))
	for i, h := range header {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

func pct(v float64) string         { return fmt.Sprintf("%.1f%%", v) }
func secs(v units.Seconds) string  { return fmt.Sprintf("%.1f s", float64(v)) }
func watts(v units.Watts) string   { return fmt.Sprintf("%.1f W", float64(v)) }
func kjoule(v units.Joules) string { return fmt.Sprintf("%.1f KJ", v.KJ()) }

// Table1 echoes the platform specification.
func (s *Suite) Table1() Report {
	n := s.nodeFor("table1/spec")
	rows := make([][]string, 0, 8)
	for _, r := range n.Spec() {
		rows = append(rows, []string{r.Item, r.Value})
	}
	n.StopNoise()
	return Report{
		ID:    "table1",
		Title: "Table I: Hardware specification (simulated platform)",
		Body:  table([]string{"H/W Type", "H/W Detail"}, rows),
	}
}

// Fig4 prints the percentage of execution time per stage for the three
// case studies of the post-processing pipeline.
func (s *Suite) Fig4() Report {
	header := []string{"Case", core.StageSimulation, core.StageWrite, core.StageRead, core.StageViz}
	var rows [][]string
	for i, cs := range core.CaseStudies() {
		r := s.comparison(i).Post
		total := float64(r.ExecTime)
		row := []string{cs.Name}
		for _, st := range []string{core.StageSimulation, core.StageWrite, core.StageRead, core.StageViz} {
			row = append(row, pct(float64(r.StageTime[st])/total*100))
		}
		rows = append(rows, row)
	}
	return Report{
		ID:    "fig4",
		Title: "Fig. 4: Percentage of execution time per stage (post-processing)",
		Body: table(header, rows) +
			"\nPaper: 33/30/27/10, 50/22/21/7, 80/9/8/3 (%).\n",
	}
}

// profilePlot renders a run's system/PKG/DRAM series like one panel of
// Fig. 5.
func profilePlot(title string, p *trace.Profile) string {
	series := []*trace.Series{}
	for _, name := range []string{"system", "rapl.PKG", "rapl.DRAM"} {
		if sr := p.SeriesByName(name); sr != nil {
			series = append(series, sr)
		}
	}
	return trace.ASCIIPlot(title, 100, 14, series...)
}

// Fig5 renders the six power profiles.
func (s *Suite) Fig5() Report {
	var b strings.Builder
	for i, cs := range core.CaseStudies() {
		c := s.comparison(i)
		fmt.Fprintf(&b, "%s\n", profilePlot(
			fmt.Sprintf("(%c) post-processing, %s", 'a'+i*2, cs.Name), c.Post.Profile))
		fmt.Fprintf(&b, "%s\n", profilePlot(
			fmt.Sprintf("(%c) in-situ, %s", 'b'+i*2, cs.Name), c.InSitu.Profile))
	}
	return Report{
		ID:    "fig5",
		Title: "Fig. 5: Power profiles (system / processor / DRAM) over time",
		Body:  b.String(),
	}
}

// Fig6 renders the isolated nnread/nnwrite stage profiles.
func (s *Suite) Fig6() Report {
	sc := s.stages()
	sys := sc.Profile.SeriesByName("system")
	var b strings.Builder
	for _, stage := range []string{core.StageWrite, core.StageRead} {
		sub := trace.NewSeries(stage, "W")
		for _, ph := range sc.Profile.Phases {
			if ph.Name != stage {
				continue
			}
			for _, sm := range sys.Between(ph.Start, ph.End) {
				sub.Append(sm.T, sm.V)
			}
		}
		fmt.Fprintf(&b, "%s\n", trace.ASCIIPlot(stage+" stage, full-system power", 100, 10, sub))
	}
	return Report{
		ID:    "fig6",
		Title: "Fig. 6: Power profile of nnread and nnwrite stages",
		Body:  b.String(),
	}
}

// comparisonTable builds one Figs. 7-10 style table.
func (s *Suite) comparisonTable(id, title, paperNote string, metric func(*core.RunResult) string, delta func(core.Comparison) string, deltaName string) Report {
	header := []string{"Case", "In-situ", "Traditional", deltaName}
	var rows [][]string
	for i, cs := range core.CaseStudies() {
		c := s.comparison(i)
		rows = append(rows, []string{cs.Name, metric(c.InSitu), metric(c.Post), delta(c)})
	}
	return Report{ID: id, Title: title, Body: table(header, rows) + paperNote}
}

// Fig7 compares execution times.
func (s *Suite) Fig7() Report {
	return s.comparisonTable("fig7",
		"Fig. 7: Execution time of post-processing and in-situ pipelines",
		"\nPaper reports in-situ lower by 92/52/26% (inconsistent with Figs. 8+10; see EXPERIMENTS.md).\n",
		func(r *core.RunResult) string { return secs(r.ExecTime) },
		func(c core.Comparison) string { return pct(c.TimeReductionPct()) },
		"In-situ lower by")
}

// Fig8 compares average power.
func (s *Suite) Fig8() Report {
	return s.comparisonTable("fig8",
		"Fig. 8: Average power",
		"\nPaper: in-situ higher by 8/5/3%.\n",
		func(r *core.RunResult) string { return watts(r.AvgPower) },
		func(c core.Comparison) string { return pct(c.AvgPowerIncreasePct()) },
		"In-situ higher by")
}

// Fig9 compares peak power.
func (s *Suite) Fig9() Report {
	return s.comparisonTable("fig9",
		"Fig. 9: Peak power",
		"\nPaper: no significant difference.\n",
		func(r *core.RunResult) string { return watts(r.PeakPower) },
		func(c core.Comparison) string { return pct(c.PeakPowerDeltaPct()) },
		"In-situ delta")
}

// Fig10 compares energy.
func (s *Suite) Fig10() Report {
	return s.comparisonTable("fig10",
		"Fig. 10: Energy consumption",
		"\nPaper: in-situ lower by 43/30/18%.\n",
		func(r *core.RunResult) string { return kjoule(r.Energy) },
		func(c core.Comparison) string { return pct(c.EnergySavingsPct()) },
		"In-situ lower by")
}

// Fig11 compares normalized energy efficiency.
func (s *Suite) Fig11() Report {
	header := []string{"Case", "In-situ", "Traditional", "Improvement"}
	var rows [][]string
	for i, cs := range core.CaseStudies() {
		c := s.comparison(i)
		post, ins := c.NormalizedEfficiencies()
		rows = append(rows, []string{
			cs.Name,
			fmt.Sprintf("%.2f", ins),
			fmt.Sprintf("%.2f", post),
			pct(c.EfficiencyImprovementPct()),
		})
	}
	return Report{
		ID:    "fig11",
		Title: "Fig. 11: Energy efficiency (normalized)",
		Body:  table(header, rows) + "\nPaper: improvement ranges from 22% to 72%.\n",
	}
}

// Table2 prints the nnread/nnwrite power properties.
func (s *Suite) Table2() Report {
	sc := s.stages()
	rows := [][]string{
		{"Avg. Power (Total)", watts(sc.ReadAvgTotal), watts(sc.WriteAvgTotal)},
		{"Avg. Power (Dynamic)", watts(sc.ReadAvgDynamic), watts(sc.WriteAvgDynamic)},
	}
	return Report{
		ID:    "table2",
		Title: "Table II: Properties of nnread and nnwrite stages",
		Body: table([]string{"Metric", "nnread", "nnwrite"}, rows) +
			"\nPaper: 115.1/114.8 total, 10.3/10.0 dynamic (W).\n",
	}
}

// BreakdownReport decomposes case study 1's savings (Sec. V-C).
func (s *Suite) BreakdownReport() Report {
	sc := s.stages()
	c := s.comparison(0)
	b := c.Breakdown(sc.AvgIODynamic, sc.IdlePower)
	rows := [][]string{
		{"Total savings", kjoule(b.Total), ""},
		{"Saved by avoiding idling (static)", kjoule(b.PaperStatic), pct(b.StaticSharePct())},
		{"Saved by reducing data accesses (dynamic)", kjoule(b.PaperDynamic), pct(b.DynamicSharePct())},
		{"Ground truth static (simulator)", kjoule(b.TrueStatic), pct(float64(b.TrueStatic) / float64(b.Total) * 100)},
		{"Ground truth dynamic (simulator)", kjoule(b.TrueDynamic), pct(float64(b.TrueDynamic) / float64(b.Total) * 100)},
	}
	return Report{
		ID:    "breakdown",
		Title: "Sec. V-C: Energy-savings breakdown, case study 1",
		Body: table([]string{"Component", "Energy", "Share"}, rows) +
			"\nPaper: 12.8 KJ static (91%) vs 1.2 KJ dynamic (9%).\n",
	}
}

// Table3 prints the fio rows.
func (s *Suite) Table3() Report {
	header := []string{"Metric", "Sequential Read", "Random Read", "Sequential Write", "Random Write"}
	res := s.fioResults()
	get := func(f func(i int) string) []string {
		out := make([]string, 0, 4)
		for i := range res {
			out = append(out, f(i))
		}
		return out
	}
	rows := [][]string{
		append([]string{"Execution time (s)"}, get(func(i int) string { return fmt.Sprintf("%.1f", float64(res[i].ExecTime)) })...),
		append([]string{"Full-system power (W)"}, get(func(i int) string { return fmt.Sprintf("%.1f", float64(res[i].FullSystemPower)) })...),
		append([]string{"Disk dynamic power (W)"}, get(func(i int) string { return fmt.Sprintf("%.1f", float64(res[i].DiskDynPower)) })...),
		append([]string{"Disk dynamic energy (KJ)"}, get(func(i int) string { return fmt.Sprintf("%.2f", res[i].DiskDynEnergy.KJ()) })...),
		append([]string{"Full-system energy (KJ)"}, get(func(i int) string { return fmt.Sprintf("%.1f", res[i].FullSystemEnergy.KJ()) })...),
	}
	return Report{
		ID:    "table3",
		Title: "Table III: Performance, power, and energy for the fio tests",
		Body: table(header, rows) +
			"\nPaper: 35.9/2230/27/31 s; 118/107/115.4/117.9 W; energy 4.2/238.6/3.1/3.6 KJ.\n",
	}
}

// Hypothetical reproduces Sec. V-D's argument with the runtime advisor.
func (s *Suite) Hypothetical() Report {
	res := s.fioResults()
	randomTotal := res[1].FullSystemEnergy + res[3].FullSystemEnergy
	seqTotal := res[0].FullSystemEnergy + res[2].FullSystemEnergy

	n := s.nodeFor("hypothetical/advisor")
	w := core.WorkloadSpec{
		Name:           "random-I/O application",
		ReadBytes:      4 * units.GiB,
		WriteBytes:     4 * units.GiB,
		OpSize:         16 * units.KiB,
		RandomFraction: 1,
		SpanBytes:      4 * units.GiB,
	}
	a := core.Advise(n.Profile, w)
	n.StopNoise()

	var b strings.Builder
	fmt.Fprintf(&b, "Measured (fio): random-I/O app spends %s; after data reorganization %s.\n",
		kjoule(randomTotal), kjoule(seqTotal))
	fmt.Fprintf(&b, "Adopting in-situ saves %s but forfeits exploratory analysis;\n", kjoule(randomTotal))
	fmt.Fprintf(&b, "reorganization forfeits only %s while retaining it.\n\n", kjoule(seqTotal))
	rows := [][]string{}
	for _, p := range []core.Prediction{a.AsIs, a.Reorganized, a.InSitu} {
		rows = append(rows, []string{p.Strategy, secs(p.Time), kjoule(p.SystemEnergy), fmt.Sprintf("%v", p.Exploratory)})
	}
	fmt.Fprintf(&b, "%s\nAdvisor recommendation: %s\n  (%s)\n",
		table([]string{"Strategy", "Predicted time", "Predicted energy", "Exploratory"}, rows),
		a.Recommended, a.Reason)
	fmt.Fprintf(&b, "\nPaper: 242.2 KJ saved by in-situ vs 7.3 KJ forfeited with reorganization.\n")
	return Report{
		ID:    "hypothetical",
		Title: "Sec. V-D: An alternative to in-situ for random-I/O applications",
		Body:  b.String(),
	}
}

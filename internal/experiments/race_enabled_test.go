//go:build race

package experiments

// raceEnabled lets tests whose workload is infeasible under race
// instrumentation (full registry passes) hand off to cheaper
// concurrency tests.
const raceEnabled = true

package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

// syncBuffer lets the race detector verify Suite serializes its log
// writes across driver goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fastSuite is a cheap suite for logging tests: minimal real substeps
// and small fio files (logging is orthogonal to fidelity).
func fastSuite() *Suite {
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 1
	s := NewSuite(1, &cfg)
	s.Fio.FileSize = 64 * units.MiB
	return s
}

// TestSuiteQuietByDefault pins the daemon-facing contract: a suite
// with no Log attached emits nothing, anywhere.
func TestSuiteQuietByDefault(t *testing.T) {
	s := fastSuite()
	s.Fig4() // exercises shared runs
	// Nothing observable to assert beyond "no panic from a nil writer";
	// logf must tolerate the nil default on every path.
	s.logf("should be dropped %d\n", 1)
}

// TestSuiteLogsWallTimes verifies RunAll writes one line per
// experiment to an attached Log and that the report bodies are
// unaffected by logging.
func TestSuiteLogsWallTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	logged := fastSuite()
	var buf syncBuffer
	logged.Log = &buf
	withLog, err := logged.RunAll(context.Background(), 4)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(Registry()) {
		t.Fatalf("logged %d lines, want one per experiment (%d):\n%s", len(lines), len(Registry()), out)
	}
	for _, e := range Registry() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("no wall-time line for %s", e.ID)
		}
	}

	// Logging must not leak into report bodies: a quiet suite's fig4
	// matches the logged suite's byte for byte.
	quiet := fastSuite().Fig4()
	for _, r := range withLog {
		if r.ID == "fig4" && r.Body != quiet.Body {
			t.Error("fig4 body differs with logging attached")
		}
	}
}

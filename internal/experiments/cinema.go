package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Cinema evaluates the image-based in-situ approach of Ahrens et al.
// [12] (the paper's reference for restoring exploration to in-situ
// runs): each event renders a database of parameterized views
// (isoline sweeps, multiple colormaps) instead of a single frame.
// The scientist regains post-hoc exploration — over images — at the
// cost of extra render time, still far below the post-processing
// round trip.
func (s *Suite) Cinema() Report {
	cs := core.CaseStudies()[0]
	post := s.run(core.PostProcessing, cs)
	ins := s.run(core.InSitu, cs)

	cfg := s.Config
	cfg.CinemaVariants = 4
	cinema := core.Run(s.nodeFor("cinema/database"), core.InSitu, cs, cfg)

	rows := [][]string{
		{"post-processing (full exploration)", secs(post.ExecTime), kjoule(post.Energy), fmt.Sprintf("%d", post.Frames)},
		{"in-situ, single view", secs(ins.ExecTime), kjoule(ins.Energy), fmt.Sprintf("%d", ins.Frames)},
		{"in-situ + 4-view image database", secs(cinema.ExecTime), kjoule(cinema.Energy),
			fmt.Sprintf("%d", cinema.Frames+cinema.CinemaFrames)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Pipeline", "Time", "Energy", "Images"}, rows))
	extra := (float64(cinema.Energy)/float64(ins.Energy) - 1) * 100
	recovered := (1 - float64(cinema.Energy)/float64(post.Energy)) * 100
	fmt.Fprintf(&b, "Rendering a 5-view image database per event costs %.0f%% more energy than\n", extra)
	fmt.Fprintf(&b, "single-view in-situ but still undercuts post-processing by %.0f%% — image-\n", recovered)
	fmt.Fprintf(&b, "based exploration buys back most of what in-situ gives up, for render time\n")
	fmt.Fprintf(&b, "instead of data movement (Ahrens et al. [12]).\n")
	return Report{
		ID:    "cinema",
		Title: "Image-database in-situ (Ahrens et al. [12])",
		Body:  b.String(),
	}
}

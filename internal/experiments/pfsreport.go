package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/pfs"
)

// PFS runs the final Future Work item: case study 1's post-processing
// pipeline with its checkpoints on a 4-server striped parallel
// filesystem instead of the local disk, against the single-node
// pipelines. The client gets much faster; the cluster bill grows by
// four server floors.
func (s *Suite) PFS() Report {
	cs := core.CaseStudies()[0]
	localPost := s.run(core.PostProcessing, cs)
	ins := s.run(core.InSitu, cs)

	client := node.New(node.SandyBridge(), s.seedFor("pfs/client"))
	fsys := pfs.New(client, pfs.DefaultParams(), s.seedFor("pfs/servers"))
	cfg := s.Config
	store := pfs.NewStore(fsys)
	store.SetKernelWorkers(cfg.KernelWorkers)
	cfg.Store = store
	remote := core.Run(client, core.PostProcessing, cs, cfg)
	serversE := fsys.ServersEnergy()

	rows := [][]string{
		{"post-processing, local disk", secs(localPost.ExecTime), kjoule(localPost.Energy), kjoule(localPost.Energy)},
		{"post-processing, 4-server PFS", secs(remote.ExecTime), kjoule(remote.Energy), kjoule(remote.Energy + serversE)},
		{"in-situ, local", secs(ins.ExecTime), kjoule(ins.Energy), kjoule(ins.Energy)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Pipeline / storage", "Client time", "Client energy", "Total energy"}, rows))
	st := fsys.Stats()
	fmt.Fprintf(&b, "PFS moved %s written / %s read over the client uplink, striped across 4 servers.\n",
		st.BytesWritten, st.BytesRead)
	fmt.Fprintf(&b, "The parallel filesystem removes most of the client's serialized I/O time —\n")
	fmt.Fprintf(&b, "the post-processing pipeline approaches in-situ on the client's meter — but\n")
	fmt.Fprintf(&b, "the four storage servers' static power lands the *facility* bill far above\n")
	fmt.Fprintf(&b, "either single-node pipeline unless the servers are shared across many jobs.\n")
	return Report{
		ID:    "pfs",
		Title: "Future Work: post-processing on a striped parallel filesystem",
		Body:  b.String(),
	}
}

package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestGoldenKernelWorkers is the acceptance gate of the par engine:
// every registered experiment's stdout block must match the committed
// golden digest with the kernels forced serial (KernelWorkers=1) and
// forced wide (KernelWorkers=8). The digests were recorded by
// TestGoldenOutputs at the default setting, so a pass here proves the
// intra-step decomposition never changes an output byte at any worker
// count.
func TestGoldenKernelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice at CLI fidelity")
	}
	if raceEnabled {
		t.Skip("full registry passes are infeasible under race instrumentation")
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := core.DefaultAppConfig()
			cfg.RealSubsteps = 16
			cfg.KernelWorkers = workers
			suite := NewSuite(1, &cfg)
			reports, err := suite.RunAll(context.Background(), runtime.GOMAXPROCS(0))
			if err != nil {
				t.Fatalf("RunAll: %v", err)
			}
			for _, r := range reports {
				want, err := os.ReadFile(goldenPath(r.ID))
				if err != nil {
					t.Errorf("experiment %q has no golden digest: %v", r.ID, err)
					continue
				}
				wantSum, _, _ := strings.Cut(strings.TrimSpace(string(want)), "  ")
				got := fmt.Sprintf("%x", sha256.Sum256([]byte(goldenBlock(r.Report))))
				if got != wantSum {
					t.Errorf("experiment %q: stdout at kernel workers=%d diverged from golden digest\n  got  %s\n  want %s",
						r.ID, workers, got, wantSum)
				}
			}
		})
	}
}

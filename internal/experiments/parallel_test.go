package experiments

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

// tinySuite is an even lighter configuration than lightSuite for tests
// that execute the whole registry more than once.
func tinySuite() *Suite {
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 4
	s := NewSuite(11, &cfg)
	s.Fio.FileSize = 64 * units.MiB
	return s
}

// TestRunAllDeterministicAcrossWorkers is the parallelism regression
// test: the same seed must yield byte-identical report bodies whether
// the suite runs serially or on eight workers.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice")
	}
	if raceEnabled {
		t.Skip("full registry passes are infeasible under race instrumentation; TestConcurrentComparisonFigures covers the concurrent paths")
	}
	ctx := context.Background()
	serial, err := tinySuite().RunAll(ctx, 1)
	if err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	ps := tinySuite()
	parallel, err := ps.RunAll(ctx, 8)
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}
	// Singleflight under real concurrency: the comparison figures must
	// have produced exactly the six shared pipeline runs.
	if got := len(ps.runs); got != 6 {
		t.Errorf("shared run cache holds %d entries, want 6 (2 pipelines x 3 cases)", got)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(parallel))
	}
	reg := Registry()
	for i := range serial {
		if serial[i].ID != reg[i].ID || parallel[i].ID != reg[i].ID {
			t.Errorf("report %d out of registry order: %q / %q, want %q",
				i, serial[i].ID, parallel[i].ID, reg[i].ID)
		}
		if serial[i].Body != parallel[i].Body {
			t.Errorf("experiment %q: workers=1 and workers=8 bodies differ", serial[i].ID)
		}
		// The per-experiment timing the CLI footer prints is filled in.
		if parallel[i].Wall < 0 || parallel[i].Wall > time.Hour {
			t.Errorf("experiment %q wall time %v implausible", parallel[i].ID, parallel[i].Wall)
		}
	}
}

// TestRunAllCancellation verifies a cancelled context stops dispatch
// and is reported.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := tinySuite().RunAll(ctx, 2)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(reports) != len(Registry()) {
		t.Fatalf("partial results slice has %d slots, want %d", len(reports), len(Registry()))
	}
}

// TestSeedForStableAcrossOrder pins the order-independence property the
// suite relies on: the seed for a key must not depend on which other
// experiments ran first.
func TestSeedForStableAcrossOrder(t *testing.T) {
	a := lightSuite()
	a.Fig7() // populate caches in one order
	b := lightSuite()
	b.Table3() // ... and another
	for _, key := range []string{"run/post/cs1", "fio/table3", "sampling/k=2"} {
		if a.seedFor(key) != b.seedFor(key) {
			t.Errorf("seedFor(%q) depends on execution order", key)
		}
	}
}

// TestConcurrentComparisonFigures hammers the singleflight cache from
// eight goroutines requesting the figures that share pipeline runs,
// then checks each run executed exactly once and the bodies match a
// serial suite. This is the concurrency test that stays cheap enough
// for the race detector.
func TestConcurrentComparisonFigures(t *testing.T) {
	figures := []Experiment{}
	for _, e := range Registry() {
		switch e.ID {
		case "fig7", "fig8", "fig9", "fig10", "fig11":
			figures = append(figures, e)
		}
	}
	s := tinySuite()
	var wg sync.WaitGroup
	got := make([]Report, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = figures[i%len(figures)].Run(s)
		}(i)
	}
	wg.Wait()
	if len(s.runs) != 6 {
		t.Errorf("concurrent figures produced %d cached runs, want 6", len(s.runs))
	}
	serial := tinySuite()
	for i, r := range got {
		want := figures[i%len(figures)].Run(serial)
		if r.Body != want.Body {
			t.Errorf("%s: concurrent body differs from serial", r.ID)
		}
	}
}

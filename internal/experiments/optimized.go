package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/units"
)

// Optimized quantifies the paper's closing argument — that an
// "alternative set of optimization techniques" can make the
// post-processing pipeline nearly as green as in-situ without giving up
// exploratory analysis. Since §V-C shows 91 % of the in-situ savings
// are *static* (serialized idle time), the techniques that matter are
// the ones that remove serialized time or idle power:
//
//   - asynchronous checkpointing: buffer writes, overlap the drain with
//     the following simulation iterations;
//   - disk spindown: put the platters in standby during long compute
//     phases.
func (s *Suite) Optimized() Report {
	cs := core.CaseStudies()[0]
	base := s.comparison(0)

	variants := []struct {
		name string
		prof func() node.Profile
		cfg  func(core.AppConfig) core.AppConfig
	}{
		{
			"post + async checkpoints",
			node.SandyBridge,
			func(c core.AppConfig) core.AppConfig { c.AsyncCheckpoint = true; return c },
		},
		{
			"post + async + disk spindown",
			func() node.Profile {
				p := node.SandyBridge()
				p.Disk.StandbyAfter = 4
				p.Disk.StandbyPower = 0.8
				p.Disk.SpinupTime = 6
				return p
			},
			func(c core.AppConfig) core.AppConfig { c.AsyncCheckpoint = true; return c },
		},
	}

	rows := [][]string{
		{"post-processing (vanilla)", secs(base.Post.ExecTime), kjoule(base.Post.Energy), "-"},
	}
	for _, v := range variants {
		n := node.New(v.prof(), s.seedFor("optimized/"+v.name))
		r := core.Run(n, core.PostProcessing, cs, v.cfg(s.Config))
		saved := float64(base.Post.Energy-r.Energy) / float64(base.Post.Energy) * 100
		rows = append(rows, []string{v.name, secs(r.ExecTime), kjoule(r.Energy), pct(saved)})
	}
	rows = append(rows, []string{
		"in-situ (reference)", secs(base.InSitu.ExecTime), kjoule(base.InSitu.Energy),
		pct(base.EnergySavingsPct()),
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Variant", "Time", "Energy", "Saved vs vanilla post"}, rows))
	gap := func(e units.Joules) float64 {
		den := float64(base.Post.Energy - base.InSitu.Energy)
		if den == 0 {
			return 0
		}
		return (float64(base.Post.Energy) - float64(e)) / den * 100
	}
	_ = gap
	fmt.Fprintf(&b, "Because the savings are mostly static time (Sec. V-C), overlapping the\n")
	fmt.Fprintf(&b, "checkpoint drain with computation recovers a large share of the in-situ\n")
	fmt.Fprintf(&b, "advantage while keeping every checkpoint on disk for exploration.\n")
	fmt.Fprintf(&b, "Disk spindown, by contrast, is a negative result at this I/O intensity:\n")
	fmt.Fprintf(&b, "with the drain overlapped the disk never idles past the standby threshold,\n")
	fmt.Fprintf(&b, "so removing its ~4 W idle draw needs compute-dominated phases (case study 3)\n")
	fmt.Fprintf(&b, "or a deeper standby policy to matter.\n")
	return Report{
		ID:    "optimized",
		Title: "Conclusion: alternative optimizations for the post-processing pipeline",
		Body:  b.String(),
	}
}

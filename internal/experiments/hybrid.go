package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/node"
)

// Hybrid runs the fourth pipeline shape the stage-graph engine makes
// composable: in-situ rendering on the simulation node plus
// asynchronous in-transit checkpoint offload to a staging node
// (Catalyst-ADIOS2 style), against the paper's two single-node
// pipelines on case study 1.
func (s *Suite) Hybrid() Report {
	cs := core.CaseStudies()[0]
	post := s.run(core.PostProcessing, cs)
	ins := s.run(core.InSitu, cs)

	cluster := core.NewCluster(node.SandyBridge(), netio.TenGigE(), s.seedFor("hybrid/cluster"))
	hy := core.RunHybrid(cluster, cs, s.Config)

	var b strings.Builder
	rows := [][]string{
		{"post-processing (1 node)", secs(post.ExecTime), kjoule(post.Energy), kjoule(post.Energy)},
		{"in-situ (1 node)", secs(ins.ExecTime), kjoule(ins.Energy), kjoule(ins.Energy)},
		{"hybrid (sim node)", secs(hy.ExecTime), kjoule(hy.SimEnergy), kjoule(hy.Energy)},
	}
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Pipeline", "Makespan", "Energy (sim node)", "Energy (cluster)"}, rows))
	fmt.Fprintf(&b, "Offload: %s over 10 GbE in %d transfers; frames identical to in-situ: %v\n",
		hy.BytesSent, hy.Frames, hy.FrameChecksum == ins.FrameChecksum)
	fmt.Fprintf(&b, "Sim-node energy sits between in-situ (%s) and post-processing (%s):\n",
		kjoule(ins.Energy), kjoule(post.Energy))
	fmt.Fprintf(&b, "the node pays the in-situ render plus the serialized network sends, but\n")
	fmt.Fprintf(&b, "never the local %s checkpoint round trip — the staging disk absorbs the\n",
		s.Config.CheckpointPayload)
	fmt.Fprintf(&b, "writes asynchronously, restoring restart data that pure in-situ discards.\n")
	return Report{
		ID:    "hybrid",
		Title: "Hybrid in-situ + in-transit offload pipeline (stage-graph composition)",
		Body:  b.String(),
	}
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
)

// Devices runs the Future Work device sweep: the case-study-1
// comparison on the paper's HDD, a RAID-0 x4 array, an NVRAM
// burst-buffered HDD, and a SATA SSD. It shows how the paper's
// headline energy savings — rooted in serialized disk time — shrink as
// the storage gets faster, and how the burst buffer gets most of the
// way there while keeping spinning disks for capacity.
func (s *Suite) Devices() Report {
	cs := core.CaseStudies()[0]
	var rows [][]string
	for _, variant := range []struct {
		name    string
		profile node.Profile
	}{
		{"HDD (paper platform)", node.SandyBridge()},
		{"RAID-0 x4 HDD", node.SandyBridgeRAID(4)},
		{"NVRAM burst buffer + HDD", node.SandyBridgeNVRAM()},
		{"SSD", node.SandyBridgeSSD()},
	} {
		post := core.Run(node.New(variant.profile, s.seedFor("devices/"+variant.name+"/post")), core.PostProcessing, cs, s.Config)
		ins := core.Run(node.New(variant.profile, s.seedFor("devices/"+variant.name+"/insitu")), core.InSitu, cs, s.Config)
		c := core.Compare(post, ins)
		rows = append(rows, []string{
			variant.name,
			secs(post.ExecTime),
			kjoule(post.Energy),
			kjoule(ins.Energy),
			pct(c.EnergySavingsPct()),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Device", "Post time", "Post energy", "In-situ energy", "In-situ savings"}, rows))
	fmt.Fprintf(&b, "Faster storage shrinks post-processing's serialized I/O time, and with it\n")
	fmt.Fprintf(&b, "the in-situ advantage: the paper's 43%% is a spinning-disk number. The\n")
	fmt.Fprintf(&b, "burst buffer reaches most of the SSD's effect while the data still ends\n")
	fmt.Fprintf(&b, "up on disk (drained in the background).\n")
	return Report{
		ID:    "devices",
		Title: "Future Work: device sweep (HDD / RAID-0 / NVRAM buffer / SSD)",
		Body:  b.String(),
	}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

// lightSuite shrinks workloads so the structural tests stay fast; the
// calibration assertions live in internal/core and internal/fio.
func lightSuite() *Suite {
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 4
	s := NewSuite(5, &cfg)
	s.Fio.FileSize = 256 * units.MiB
	return s
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if len(seen) != 24 {
		t.Errorf("registry has %d experiments, want 24", len(seen))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("unknown id error = %v", err)
	}
}

func TestTable1Content(t *testing.T) {
	r := lightSuite().Table1()
	for _, want := range []string{"Xeon E5-2665", "64GiB", "7200rpm"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("Table I missing %q:\n%s", want, r.Body)
		}
	}
}

func TestComparisonFiguresShareRuns(t *testing.T) {
	s := lightSuite()
	s.Fig7()
	runsAfter7 := len(s.runs)
	s.Fig8()
	s.Fig10()
	s.Fig11()
	if len(s.runs) != runsAfter7 {
		t.Errorf("figures 8-11 re-ran pipelines: %d -> %d cached runs", runsAfter7, len(s.runs))
	}
	if runsAfter7 != 6 {
		t.Errorf("cached runs = %d, want 6 (2 pipelines x 3 cases)", runsAfter7)
	}
}

func TestFig4SharesSumToOneHundred(t *testing.T) {
	r := lightSuite().Fig4()
	if !strings.Contains(r.Body, "Case Study 1") || !strings.Contains(r.Body, "%") {
		t.Errorf("Fig4 body malformed:\n%s", r.Body)
	}
}

func TestFig5ContainsSixPanels(t *testing.T) {
	r := lightSuite().Fig5()
	if got := strings.Count(r.Body, "=system"); got != 6 {
		t.Errorf("Fig5 has %d system-series panels, want 6", got)
	}
	if !strings.Contains(r.Body, "=rapl.PKG") {
		t.Error("Fig5 lacks processor series")
	}
}

func TestFig10ReportsSavings(t *testing.T) {
	s := lightSuite()
	r := s.Fig10()
	if !strings.Contains(r.Body, "In-situ lower by") || !strings.Contains(r.Body, "KJ") {
		t.Errorf("Fig10 body:\n%s", r.Body)
	}
}

func TestTable2AndFig6ShareCharacterization(t *testing.T) {
	s := lightSuite()
	s.Table2()
	sc := s.stages()
	s.Fig6()
	if s.stages() != sc {
		t.Error("Fig6 re-ran the stage characterization")
	}
}

func TestBreakdownReportMentionsShares(t *testing.T) {
	r := lightSuite().BreakdownReport()
	for _, want := range []string{"static", "dynamic", "Ground truth"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("breakdown missing %q:\n%s", want, r.Body)
		}
	}
}

func TestTable3Rows(t *testing.T) {
	r := lightSuite().Table3()
	for _, want := range []string{"Execution time", "Disk dynamic power", "Random Read"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestHypotheticalRecommendsReorganization(t *testing.T) {
	r := lightSuite().Hypothetical()
	if !strings.Contains(r.Body, "reorganized post-processing") {
		t.Errorf("hypothetical body:\n%s", r.Body)
	}
}

func TestAblationsCoverAllThree(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run several full pipelines")
	}
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 4
	s := NewSuite(6, &cfg)
	s.Fio.FileSize = 256 * units.MiB
	r := s.Ablations()
	for _, want := range []string{"A1", "A2", "A3", "elevator", "fsync", "SSD"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}

func TestInTransitReport(t *testing.T) {
	r := lightSuite().InTransit()
	for _, want := range []string{"in-transit (sim node)", "10 GbE", "Energy (cluster)"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("intransit missing %q:\n%s", want, r.Body)
		}
	}
}

func TestDevicesReportSweepsFourDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("devices runs eight pipelines")
	}
	r := lightSuite().Devices()
	for _, want := range []string{"HDD", "RAID-0", "NVRAM", "SSD"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("devices missing %q", want)
		}
	}
}

func TestOptimizedReport(t *testing.T) {
	r := lightSuite().Optimized()
	for _, want := range []string{"async checkpoints", "spindown", "in-situ (reference)"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("optimized missing %q", want)
		}
	}
}

func TestSamplingReportHasPSNRColumn(t *testing.T) {
	r := lightSuite().Sampling()
	for _, want := range []string{"1/8 per axis", "dB", "inf (exact)"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("sampling missing %q:\n%s", want, r.Body)
		}
	}
}

func TestPFSReport(t *testing.T) {
	r := lightSuite().PFS()
	for _, want := range []string{"4-server PFS", "Total energy", "uplink"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("pfs missing %q", want)
		}
	}
}

func TestPowerCapReport(t *testing.T) {
	if testing.Short() {
		t.Skip("powercap runs eight pipelines")
	}
	r := lightSuite().PowerCap()
	for _, want := range []string{"uncapped", "PKG cap 52W", "In-situ peak"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("powercap missing %q", want)
		}
	}
}

func TestCompressionReport(t *testing.T) {
	r := lightSuite().Compression()
	for _, want := range []string{"compressed payload", "Measured ratio", "x"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("compression missing %q:\n%s", want, r.Body)
		}
	}
}

func TestCinemaReport(t *testing.T) {
	if testing.Short() {
		t.Skip("cinema renders 200 extra frames")
	}
	r := lightSuite().Cinema()
	for _, want := range []string{"image database", "Images", "single view"} {
		if !strings.Contains(r.Body, want) {
			t.Errorf("cinema missing %q:\n%s", want, r.Body)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := lightSuite().Fig10()
	b := lightSuite().Fig10()
	if a.Body != b.Body {
		t.Error("same-seed suites produced different Fig10 bodies")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Compression evaluates application-driven payload compression (Wang
// et al. [22]) on the in-situ pipeline: the reduced data product is
// DEFLATE-compressed at the measured per-event ratio (real field, real
// compressor) at the cost of a compression CPU pass.
func (s *Suite) Compression() Report {
	cs := core.CaseStudies()[0]
	base := s.run(core.InSitu, cs)

	cfg := s.Config
	cfg.CompressInsitu = true
	compressed := core.Run(s.nodeFor("compression/compressed"), core.InSitu, cs, cfg)

	rows := [][]string{
		{"in-situ, raw payload", secs(base.ExecTime), kjoule(base.Energy), "-"},
		{"in-situ, compressed payload", secs(compressed.ExecTime), kjoule(compressed.Energy),
			fmt.Sprintf("%.1fx", compressed.CompressionRatio)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", table(
		[]string{"Variant", "Time", "Energy", "Measured ratio"}, rows))
	saved := (1 - float64(compressed.Energy)/float64(base.Energy)) * 100
	fmt.Fprintf(&b, "Compression shrinks each flush by the measured ratio but buys back only\n")
	fmt.Fprintf(&b, "%.1f%% of the in-situ energy: the flush is already the small dynamic share,\n", saved)
	fmt.Fprintf(&b, "and the compression pass itself costs compute time — the same\n")
	fmt.Fprintf(&b, "static-dominance logic as Sec. V-C, now applied to data reduction.\n")
	return Report{
		ID:    "compression",
		Title: "In-situ payload compression (Wang et al. [22])",
		Body:  b.String(),
	}
}

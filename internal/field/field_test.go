package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccessors(t *testing.T) {
	g := New(4, 3)
	g.Set(2, 1, 7.5)
	if g.At(2, 1) != 7.5 {
		t.Errorf("At(2,1) = %v", g.At(2, 1))
	}
	if g.Bytes() != 4*3*8 {
		t.Errorf("Bytes = %d", g.Bytes())
	}
}

func TestRowMajorLayout(t *testing.T) {
	g := New(3, 2)
	g.Set(1, 0, 1)
	g.Set(0, 1, 2)
	if g.Data[1] != 1 || g.Data[3] != 2 {
		t.Errorf("layout not row-major: %v", g.Data)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3, 3)
	c := g.Clone()
	c.Set(1, 1, 9)
	if g.At(1, 1) != 0 {
		t.Error("clone shares storage")
	}
}

func TestFillMinMaxMean(t *testing.T) {
	g := New(3, 3)
	g.Fill(2)
	g.Set(0, 0, -1)
	g.Set(2, 2, 5)
	lo, hi := g.MinMax()
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v/%v", lo, hi)
	}
	want := (2*7 - 1 + 5) / 9.0
	if m := g.Mean(); math.Abs(m-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", m, want)
	}
}

func TestNewPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

// Property: At/Set round-trip for arbitrary in-bounds coordinates.
func TestAtSetRoundTripProperty(t *testing.T) {
	g := New(17, 13)
	f := func(x, y uint8, v float64) bool {
		px, py := int(x)%17, int(y)%13
		g.Set(px, py, v)
		return g.At(px, py) == v || (math.IsNaN(v) && math.IsNaN(g.At(px, py)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

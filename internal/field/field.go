// Package field provides the dense 2-D scalar field shared by every
// proxy application (heat, ocean) and consumed by the visualization and
// checkpoint layers.
package field

import (
	"fmt"
	"math"
)

// Grid is a row-major 2-D scalar field.
type Grid struct {
	NX, NY int // columns, rows
	Data   []float64
}

// New allocates a zeroed NX×NY grid.
func New(nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("field: grid dimensions %dx%d must be positive", nx, ny))
	}
	return &Grid{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
}

// At returns the value at column x, row y.
func (g *Grid) At(x, y int) float64 { return g.Data[y*g.NX+x] }

// Set stores v at column x, row y.
func (g *Grid) Set(x, y int, v float64) { g.Data[y*g.NX+x] = v }

// Fill sets every cell to v.
func (g *Grid) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Clone returns an independent copy.
func (g *Grid) Clone() *Grid {
	c := New(g.NX, g.NY)
	copy(c.Data, g.Data)
	return c
}

// MinMax returns the field extrema.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the field average.
func (g *Grid) Mean() float64 {
	var sum float64
	for _, v := range g.Data {
		sum += v
	}
	return sum / float64(len(g.Data))
}

// Bytes returns the size of the field data in bytes (8 per cell).
func (g *Grid) Bytes() int { return len(g.Data) * 8 }

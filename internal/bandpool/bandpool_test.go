package bandpool

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeExactlyOnce checks every index is visited once for
// assorted worker counts and range shapes, including degenerate ones.
func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, span := range []struct{ lo, hi int }{
			{0, 0}, {1, 2}, {1, 127}, {0, 128}, {3, 4}, {1, 17},
		} {
			p := New(workers)
			counts := make([]int64, span.hi)
			p.Run(span.lo, span.hi, func(y0, y1 int) {
				for y := y0; y < y1; y++ {
					atomic.AddInt64(&counts[y], 1)
				}
			})
			for y := span.lo; y < span.hi; y++ {
				if counts[y] != 1 {
					t.Fatalf("workers=%d range=[%d,%d): row %d visited %d times",
						workers, span.lo, span.hi, y, counts[y])
				}
			}
			p.Close()
		}
	}
}

// TestRunReusableAcrossSteps exercises many sequential Runs on one
// pool, the solver stepping pattern.
func TestRunReusableAcrossSteps(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total int64
	for step := 0; step < 1000; step++ {
		p.Run(1, 127, func(y0, y1 int) {
			atomic.AddInt64(&total, int64(y1-y0))
		})
	}
	if total != 1000*126 {
		t.Fatalf("total rows = %d, want %d", total, 1000*126)
	}
}

// TestCloseIdempotent verifies Close is safe to repeat and safe on a
// never-started pool.
func TestCloseIdempotent(t *testing.T) {
	p := New(3)
	p.Close() // never started
	p.Run(0, 8, func(y0, y1 int) {})
	p.Close()
	p.Close()
}

// TestDefaultWorkerCount checks the GOMAXPROCS fallback.
func TestDefaultWorkerCount(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("Workers() = %d, want >= 1", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Fatalf("Workers() = %d, want 5", w)
	}
}

// Package bandpool provides a persistent worker pool for row-band
// parallel grid sweeps. The solvers (internal/heat, internal/ocean)
// step hundreds of thousands of times per pipeline run; spawning
// GOMAXPROCS goroutines per step makes the scheduler the hot path.
// A Pool keeps its workers parked on a channel between steps, so a
// step costs one channel send per band instead of one goroutine spawn.
package bandpool

import (
	"runtime"
	"sync"
)

// job is one band of a Run dispatched to a parked worker.
type job struct {
	fn     func(y0, y1 int)
	y0, y1 int
	wg     *sync.WaitGroup
}

// Pool executes contiguous bands of an index range on a fixed set of
// persistent goroutines. The zero worker set is spawned lazily on the
// first parallel Run, so pools for solvers that are never stepped (or
// configured with one worker) cost nothing.
//
// A Pool is owned by a single solver and, like the solver itself, is
// not safe for concurrent Run calls; distinct solvers own distinct
// pools and may run concurrently. Workers park on an unexported
// channel and hold no reference to the Pool, so an abandoned Pool is
// garbage-collected: a finalizer closes the channel and the workers
// exit. Close may also be called explicitly.
type Pool struct {
	workers int
	jobs    chan job
	started bool
}

// New returns a pool that splits work across at most workers bands;
// workers < 1 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the band count the pool splits work into.
func (p *Pool) Workers() int { return p.workers }

// start spawns the parked workers (workers-1 of them; Run's caller
// executes the remaining band inline).
func (p *Pool) start() {
	p.jobs = make(chan job)
	for i := 0; i < p.workers-1; i++ {
		// The worker closes over the channel only — never the Pool —
		// so the finalizer can run once the owning solver is dropped.
		go func(jobs chan job) {
			for j := range jobs {
				j.fn(j.y0, j.y1)
				j.wg.Done()
			}
		}(p.jobs)
	}
	p.started = true
	runtime.SetFinalizer(p, (*Pool).Close)
}

// Close releases the worker goroutines. It is safe to call multiple
// times; the pool must not be Run afterwards.
func (p *Pool) Close() {
	if p.started {
		p.started = false
		runtime.SetFinalizer(p, nil)
		close(p.jobs)
	}
}

// Run partitions [lo, hi) into at most Workers contiguous bands and
// calls fn(y0, y1) for each, one band per worker, using the calling
// goroutine for the first band. It returns when every band has
// completed. With one worker (or a range smaller than two rows per
// band) fn runs inline with no synchronization at all.
func (p *Pool) Run(lo, hi int, fn func(y0, y1 int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		fn(lo, hi)
		return
	}
	if !p.started {
		p.start()
	}
	band := (n + w - 1) / w
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		y0 := lo + k*band
		y1 := y0 + band
		if y1 > hi {
			y1 = hi
		}
		if y0 >= y1 {
			break
		}
		wg.Add(1)
		p.jobs <- job{fn: fn, y0: y0, y1: y1, wg: &wg}
	}
	fn(lo, lo+band)
	wg.Wait()
}

package pfs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/heat"
	"repro/internal/node"
	"repro/internal/units"
)

func quietClient(seed uint64) *node.Node {
	p := node.SandyBridge()
	p.OSNoiseSigma = 0
	p.Disk.DeterministicRotation = true
	return node.New(p, seed)
}

func quietParams() Params {
	p := DefaultParams()
	p.ServerProfile.Disk.DeterministicRotation = true
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	client := quietClient(1)
	fs := New(client, quietParams(), 10)
	header := []byte("PFSHDR--real bytes that must survive")
	fs.WriteFile("f1", header, 32*units.MiB)
	got, err := fs.ReadFile("f1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, header) {
		t.Errorf("header round trip failed: %q", got)
	}
}

func TestStripesSpreadAcrossServers(t *testing.T) {
	client := quietClient(2)
	fs := New(client, quietParams(), 20)
	fs.WriteFile("f", nil, 16*units.MiB) // 16 stripes over 4 servers
	for i, s := range fs.servers {
		st := s.n.DiskStats()
		if st.BytesWritten != 4*units.MiB {
			t.Errorf("server %d got %v, want 4 MiB", i, st.BytesWritten)
		}
	}
}

func TestParallelWriteBeatsLocalDisk(t *testing.T) {
	// A 188 MiB checkpoint: the local disk streams at 159 MB/s
	// (~1.2 s); the PFS is uplink-bound at 1.1 GB/s with 4 disks
	// absorbing in parallel (~0.3 s).
	client := quietClient(3)
	fs := New(client, quietParams(), 30)
	start := client.Engine.Now()
	fs.WriteFile("ckpt", nil, 188*units.MiB)
	elapsed := float64(client.Engine.Now() - start)
	localTime := float64(188*units.MiB) / 159e6
	if elapsed >= localTime {
		t.Errorf("PFS write took %v, want below local-disk %v", elapsed, localTime)
	}
	if elapsed < float64(188*units.MiB)/1.1e9 {
		t.Errorf("PFS write %v beat the uplink itself — accounting bug", elapsed)
	}
}

func TestServersEnergyAccumulates(t *testing.T) {
	client := quietClient(4)
	fs := New(client, quietParams(), 40)
	client.Engine.Advance(10)
	e := fs.ServersEnergy()
	// Four idle servers at ~104.5 W (+NIC on server 0) for 10 s.
	if float64(e) < 4*104.5*10 || float64(e) > 4*115*10 {
		t.Errorf("servers energy after 10 idle seconds = %v", e)
	}
}

func TestReadUnknownFile(t *testing.T) {
	client := quietClient(5)
	fs := New(client, quietParams(), 50)
	if _, err := fs.ReadFile("nope"); err == nil {
		t.Error("unknown file did not error")
	}
}

func TestDuplicateWritePanics(t *testing.T) {
	client := quietClient(6)
	fs := New(client, quietParams(), 60)
	fs.WriteFile("x", nil, units.MiB)
	defer func() {
		if recover() == nil {
			t.Error("duplicate WriteFile did not panic")
		}
	}()
	fs.WriteFile("x", nil, units.MiB)
}

func TestStoreCheckpointRoundTrip(t *testing.T) {
	client := quietClient(7)
	fs := New(client, quietParams(), 70)
	store := NewStore(fs)

	cfg := core.DefaultAppConfig()
	solver := heat.NewSolver(cfg.Heat)
	solver.Step(4)
	store.WriteCheckpoint("ck-1", solver.Field(), solver.Steps(), solver.Time(), 32*units.MiB)
	store.Barrier()
	g, step, simTime, err := store.ReadCheckpoint("ck-1")
	if err != nil {
		t.Fatal(err)
	}
	if step != solver.Steps() || simTime != solver.Time() {
		t.Errorf("capture metadata = %d/%v, want %d/%v", step, simTime, solver.Steps(), solver.Time())
	}
	for i := range g.Data {
		if g.Data[i] != solver.Field().Data[i] {
			t.Fatalf("field differs at %d", i)
		}
	}
}

func TestPostProcessingOnPFS(t *testing.T) {
	client := quietClient(8)
	fs := New(client, quietParams(), 80)
	cfg := core.DefaultAppConfig()
	cfg.RealSubsteps = 4
	cfg.Store = NewStore(fs)
	cs := core.CaseStudy{Name: "pfs", Iterations: 6, IOInterval: 1}
	res := core.Run(client, core.PostProcessing, cs, cfg)

	local := core.Run(quietClient(9), core.PostProcessing, cs, func() core.AppConfig {
		c := core.DefaultAppConfig()
		c.RealSubsteps = 4
		return c
	}())

	if res.Frames != 6 {
		t.Errorf("frames = %d", res.Frames)
	}
	if res.FrameChecksum != local.FrameChecksum {
		t.Error("PFS-backed pipeline rendered different frames than local")
	}
	// The client finishes faster on the PFS (I/O stages shrink).
	if res.ExecTime >= local.ExecTime {
		t.Errorf("PFS run %v not faster than local %v", res.ExecTime, local.ExecTime)
	}
	// But the cluster (client + 4 servers) consumes more total energy.
	total := res.Energy + fs.ServersEnergy()
	if total <= local.Energy {
		t.Errorf("cluster energy %v not above single-node %v", total, local.Energy)
	}
}

package pfs

import (
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/field"
	"repro/internal/units"
)

// Store adapts the parallel filesystem to core.CheckpointStore, so the
// post-processing pipeline can be pointed at remote storage with
// cfg.Store = pfs.NewStore(fs). It reuses one encode buffer across
// checkpoint events (WriteFile copies the prefix it keeps); a mutex
// serializes store operations so concurrent runs — easy to construct
// since Suite.RunAll went parallel — cannot interleave encodes into the
// shared buffer. The simulated timeline is still the client node's one
// engine: the lock makes concurrent use safe, not meaningful, and runs
// sharing a store should still be serialized for sensible timing.
type Store struct {
	mu  sync.Mutex
	fs  *FileSystem
	enc checkpoint.Encoder
	buf []byte
}

// NewStore wraps a filesystem.
func NewStore(fs *FileSystem) *Store { return &Store{fs: fs} }

// SetKernelWorkers caps the encode parallelism of this store's encoder
// (0 means GOMAXPROCS); the written bytes are identical at any setting.
func (s *Store) SetKernelWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Workers = n
}

var _ core.CheckpointStore = (*Store)(nil)

// SetFaults attaches a fault injector to the underlying filesystem.
func (s *Store) SetFaults(inj *fault.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs.SetFaults(inj)
}

// WriteCheckpoint stripes one checkpoint across the servers: the real
// header+field prefix plus the sparse history payload. Any existing
// file of the same name is replaced, so a retry after a failed write
// starts clean.
func (s *Store) WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = s.enc.EncodeTo(s.buf[:0], g, step, simTime, payload)
	total := units.Bytes(len(s.buf)) + payload
	s.fs.Delete(name)
	return s.fs.WriteFile(name, s.buf, total)
}

// ReadCheckpoint fetches one back and validates its CRC.
func (s *Store) ReadCheckpoint(name string) (*field.Grid, uint64, float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefix, err := s.fs.ReadFile(name)
	if err != nil {
		return nil, 0, 0, err
	}
	h, g, err := checkpoint.DecodePrefix(prefix)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("pfs: %s: %w", name, err)
	}
	return g, h.Step, h.SimTime, nil
}

// Barrier waits out all server-side activity between phases.
func (s *Store) Barrier() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs.Barrier()
}

package pfs

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/units"
)

// Store adapts the parallel filesystem to core.CheckpointStore, so the
// post-processing pipeline can be pointed at remote storage with
// cfg.Store = pfs.NewStore(fs). It reuses one encode buffer across
// checkpoint events (WriteFile copies the prefix it keeps), so like
// the filesystem's client node it serves one run at a time.
type Store struct {
	fs  *FileSystem
	enc checkpoint.Encoder
	buf []byte
}

// NewStore wraps a filesystem.
func NewStore(fs *FileSystem) *Store { return &Store{fs: fs} }

var _ core.CheckpointStore = (*Store)(nil)

// WriteCheckpoint stripes one checkpoint across the servers: the real
// header+field prefix plus the sparse history payload.
func (s *Store) WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) {
	s.buf = s.enc.EncodeTo(s.buf[:0], g, step, simTime, payload)
	total := units.Bytes(len(s.buf)) + payload
	s.fs.WriteFile(name, s.buf, total)
}

// ReadCheckpoint fetches one back and validates its CRC.
func (s *Store) ReadCheckpoint(name string) (*field.Grid, uint64, float64, error) {
	prefix, err := s.fs.ReadFile(name)
	if err != nil {
		return nil, 0, 0, err
	}
	h, g, err := checkpoint.DecodePrefix(prefix)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("pfs: %s: %w", name, err)
	}
	return g, h.Step, h.SimTime, nil
}

// Barrier waits out all server-side activity between phases.
func (s *Store) Barrier() { s.fs.Barrier() }

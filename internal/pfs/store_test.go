package pfs

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/heat"
	"repro/internal/units"
)

func testGrid(fill float64) *heat.Grid {
	g := heat.NewGrid(16, 16)
	for i := range g.Data {
		g.Data[i] = fill + float64(i)
	}
	return g
}

// TestStoreConcurrentWrites exercises the encode-buffer sharing bug
// under -race: two runs writing through one Store used to interleave
// encodes into the same scratch buffer, shipping one run's field bytes
// under the other's name. The store mutex serializes them; each name
// must read back its own grid and header.
func TestStoreConcurrentWrites(t *testing.T) {
	client := quietClient(1)
	fs := New(client, quietParams(), 10)
	store := NewStore(fs)

	const perWriter = 8
	grids := [2]*heat.Grid{testGrid(100), testGrid(5000)}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := string(rune('a'+w)) + "-ckpt"
				if err := store.WriteCheckpoint(name, grids[w], uint64(w*1000+i), float64(w), units.MiB); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < 2; w++ {
		g, step, simTime, err := store.ReadCheckpoint(string(rune('a'+w)) + "-ckpt")
		if err != nil {
			t.Fatalf("writer %d read-back: %v", w, err)
		}
		if simTime != float64(w) || step != uint64(w*1000+perWriter-1) {
			t.Errorf("writer %d header swapped: step %d, time %v", w, step, simTime)
		}
		for i, v := range g.Data {
			if v != grids[w].Data[i] {
				t.Fatalf("writer %d cell %d = %v, want %v (cross-run corruption)", w, i, v, grids[w].Data[i])
			}
		}
	}
}

// TestReadCheckpointTruncatedPrefix feeds the store prefixes cut at
// every interesting boundary; each must come back as ErrCorrupt with
// zero values — never a panic, never a partial grid.
func TestReadCheckpointTruncatedPrefix(t *testing.T) {
	client := quietClient(2)
	fs := New(client, quietParams(), 11)
	store := NewStore(fs)

	full := checkpoint.EncodePrefix(testGrid(1), 42, 3.25, units.MiB)
	cuts := []int{0, 5, checkpoint.HeaderSize - 1, checkpoint.HeaderSize, checkpoint.HeaderSize + 3, len(full) - 1}
	for _, n := range cuts {
		name := "trunc"
		fs.Delete(name)
		if err := fs.WriteFile(name, full[:n], units.Bytes(len(full))+units.MiB); err != nil {
			t.Fatalf("cut %d: write: %v", n, err)
		}
		g, step, simTime, err := store.ReadCheckpoint(name)
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("cut %d: error = %v, want ErrCorrupt", n, err)
		}
		if g != nil || step != 0 || simTime != 0 {
			t.Errorf("cut %d: leaked values: grid %v, step %d, time %v", n, g, step, simTime)
		}
	}

	// The untruncated prefix still round-trips.
	fs.Delete("trunc")
	if err := fs.WriteFile("trunc", full, units.Bytes(len(full))+units.MiB); err != nil {
		t.Fatal(err)
	}
	if _, step, _, err := store.ReadCheckpoint("trunc"); err != nil || step != 42 {
		t.Errorf("full prefix: step %d, err %v; want 42, nil", step, err)
	}
}

// Package pfs models a striped parallel filesystem (Lustre/GPFS-style)
// for the paper's last Future Work item: "evaluation on multi-node
// systems running parallel file systems to understand the impact of
// [the] file system on energy consumption".
//
// A compute node (the client) stripes each file across N object storage
// servers. All traffic traverses the client's single network uplink —
// the realistic bottleneck — while server-side disk writes proceed in
// parallel: the throughput win. Every server's static power burns for
// the whole job: the energy cost.
package pfs

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netio"
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
)

// Params configures the parallel filesystem.
type Params struct {
	// Servers is the object-storage-server count.
	Servers int
	// StripeSize is the per-server chunk of a striped file.
	StripeSize units.Bytes
	// Link is the client's uplink model (all stripes serialize on it).
	Link netio.LinkParams
	// ServerProfile builds each storage server (typically the same
	// node hardware, dedicated to I/O).
	ServerProfile node.Profile
}

// DefaultParams returns a 4-server stripe over a single 10 GbE uplink
// with 1 MiB stripes on the paper's node hardware.
func DefaultParams() Params {
	p := node.SandyBridge()
	p.OSNoiseSigma = 0 // servers idle quietly between requests
	return Params{
		Servers:       4,
		StripeSize:    1 * units.MiB,
		Link:          netio.TenGigE(),
		ServerProfile: p,
	}
}

// server is one object storage server.
type server struct {
	n     *node.Node
	alloc units.Bytes
	ioCPU *sim.Resource
}

// FileSystem is the client-side handle. All servers share the client
// node's engine.
type FileSystem struct {
	params  Params
	client  *node.Node
	engine  *sim.Engine
	uplink  *netio.Link
	servers []*server

	files map[string]*fileMeta
	stats Stats

	// faults, when set, injects server drops on whole-file requests and
	// bit-rot on delivered headers.
	faults *fault.Injector
}

// fileMeta records a striped file's layout and retained content.
type fileMeta struct {
	size    units.Bytes
	extents []stripeExtent
	// header holds the retained real bytes (checkpoint header + field);
	// the bulk payload is sparse.
	header []byte
}

type stripeExtent struct {
	server int
	r      storage.Range
}

// Stats aggregates client-observed traffic.
type Stats struct {
	FilesWritten uint64
	BytesWritten units.Bytes
	BytesRead    units.Bytes
}

// New builds the parallel filesystem: Servers storage nodes on the
// client's engine, reached through one shared uplink (modeled as the
// link between the client and the first server's switch port).
func New(client *node.Node, params Params, seed uint64) *FileSystem {
	if params.Servers <= 0 || params.StripeSize <= 0 {
		panic("pfs: needs positive server count and stripe size")
	}
	fs := &FileSystem{
		params: params,
		client: client,
		engine: client.Engine,
		files:  map[string]*fileMeta{},
	}
	for i := 0; i < params.Servers; i++ {
		sn := node.NewOnEngine(client.Engine, params.ServerProfile, seed+uint64(i)*131)
		fs.servers = append(fs.servers, &server{
			n:     sn,
			alloc: params.ServerProfile.FS.DataStart,
			ioCPU: sim.NewResource(client.Engine),
		})
	}
	fs.uplink = netio.Connect(client, fs.servers[0].n, params.Link)
	return fs
}

// Servers returns the storage nodes (for energy accounting).
func (fs *FileSystem) Servers() []*node.Node {
	out := make([]*node.Node, 0, len(fs.servers))
	for _, s := range fs.servers {
		out = append(out, s.n)
	}
	return out
}

// ServersEnergy sums the storage nodes' cumulative energy.
func (fs *FileSystem) ServersEnergy() units.Joules {
	var sum units.Joules
	for _, s := range fs.servers {
		sum += s.n.SystemEnergy()
	}
	return sum
}

// Stats returns the client-observed counters.
func (fs *FileSystem) Stats() Stats { return fs.stats }

// Uplink returns the shared client link (for tests and reports).
func (fs *FileSystem) Uplink() *netio.Link { return fs.uplink }

// SetFaults attaches a fault injector; nil detaches it. The injector
// covers the RPC layer here (drops, header rot); the server disks keep
// their own timing model and are not individually faulted.
func (fs *FileSystem) SetFaults(inj *fault.Injector) { fs.faults = inj }

// dropStall models a server missing its RPC window: the client blocks
// out to the timeout, then the operation fails transiently.
func (fs *FileSystem) dropStall(op, name string) error {
	fs.engine.Advance(fs.faults.DropTimeout())
	return fmt.Errorf("pfs: %s %q: server timed out: %w", op, name, fault.ErrTransient)
}

// bracketCPU charges a short request-handling busy period on a server
// via events.
func (s *server) bracketCPU(d units.Seconds) {
	start, end := s.ioCPU.Submit(d, nil)
	at := func(t sim.Time, fn func()) {
		if t <= s.n.Engine.Now() {
			fn()
			return
		}
		s.n.Engine.At(t, fn)
	}
	at(start, func() { s.n.SetLoad(1, power.IntensityIO, 0.3) })
	s.n.Engine.At(end, func() {
		if s.ioCPU.FreeAt() <= end {
			s.n.SetIdle()
		}
	})
}

// WriteFile stripes a file across the servers and blocks until every
// stripe is durable on a server disk. header is retained verbatim; the
// remaining bytes are sparse. The client pays one serialization pass at
// memory speed plus the uplink transfer; server disks absorb stripes in
// parallel as they arrive.
//
// An injected server drop fails the write before any stripe ships: the
// client stalls out to the drop timeout and no partial file is
// registered, so a retry starts clean.
func (fs *FileSystem) WriteFile(name string, header []byte, total units.Bytes) error {
	if total < units.Bytes(len(header)) {
		panic("pfs: total smaller than header")
	}
	if _, ok := fs.files[name]; ok {
		panic(fmt.Sprintf("pfs: file %q already exists", name))
	}
	if fs.faults.ServerDrop() {
		return fs.dropStall("write", name)
	}
	meta := &fileMeta{size: total, header: append([]byte(nil), header...)}

	// Client-side serialization pass.
	fs.engine.Advance(units.TransferTime(total, 3e9))

	remaining := total
	stripeIdx := 0
	for remaining > 0 {
		chunk := fs.params.StripeSize
		if chunk > remaining {
			chunk = remaining
		}
		srvIdx := stripeIdx % len(fs.servers)
		srv := fs.servers[srvIdx]
		r := storage.Range{Start: srv.alloc, End: srv.alloc + chunk}
		srv.alloc += chunk
		meta.extents = append(meta.extents, stripeExtent{server: srvIdx, r: r})

		// Each stripe serializes on the shared uplink, then its server
		// writes it; different servers' disks overlap.
		fs.uplink.Send(chunk, func() {
			srv.bracketCPU(0.0002)
			srv.n.Device.Submit(storage.OpWrite, r.Start, r.Len(), nil)
		})
		stripeIdx++
		remaining -= chunk
	}
	fs.drain()
	fs.files[name] = meta
	fs.stats.FilesWritten++
	fs.stats.BytesWritten += total
	return nil
}

// ReadFile fetches a file back: server disks read stripes in parallel,
// the uplink ships them to the client. Returns the retained header.
//
// Injected faults: a server drop stalls the client out to the timeout
// and fails the read (nothing transferred); bit-rot flips bits in the
// delivered header copy only — the stored stripes are unharmed, so a
// re-read may come back clean.
func (fs *FileSystem) ReadFile(name string) ([]byte, error) {
	meta, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: file %q not found", name)
	}
	if fs.faults.ServerDrop() {
		return nil, fs.dropStall("read", name)
	}
	for _, ext := range meta.extents {
		srv := fs.servers[ext.server]
		r := ext.r
		srv.bracketCPU(0.0002)
		end := srv.n.Device.Submit(storage.OpRead, r.Start, r.Len(), nil)
		fs.engine.At(end, func() {
			fs.uplink.Send(r.Len(), nil)
		})
	}
	fs.drain()
	// Client-side delivery pass.
	fs.engine.Advance(units.TransferTime(meta.size, 3e9))
	fs.stats.BytesRead += meta.size
	out := append([]byte(nil), meta.header...)
	fs.faults.Rot(out)
	return out, nil
}

// Delete forgets a file (the experiments write each file once).
func (fs *FileSystem) Delete(name string) { delete(fs.files, name) }

// Barrier waits for all outstanding server activity — the distributed
// sync between pipeline phases. Server-side caching is not modeled
// (writes are direct), so there is nothing to drop.
func (fs *FileSystem) Barrier() { fs.drain() }

// drain advances the shared engine until the uplink and every server
// is idle — the client's foreground wait.
func (fs *FileSystem) drain() {
	for {
		next := fs.engine.Now()
		if t := fs.uplink.FreeAt(); t > next {
			next = t
		}
		for _, s := range fs.servers {
			if t := s.n.Device.FreeAt(); t > next {
				next = t
			}
			if t := s.ioCPU.FreeAt(); t > next {
				next = t
			}
		}
		if next <= fs.engine.Now() {
			return
		}
		fs.engine.AdvanceTo(next)
	}
}

// StopNoise silences every server's OS-noise ticker.
func (fs *FileSystem) StopNoise() {
	for _, s := range fs.servers {
		s.n.StopNoise()
	}
}

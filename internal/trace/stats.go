package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Percentile returns the p-th percentile (0..100) of the series values
// using linear interpolation between order statistics. It returns NaN
// for an empty series and panics on an out-of-range p.
func (s *Series) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("trace: percentile %v outside [0,100]", p))
	}
	vals := make([]float64, 0, len(s.samples))
	for _, sm := range s.samples {
		if finite(sm.V) {
			vals = append(vals, sm.V)
		}
	}
	n := len(vals)
	if n == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	if n == 1 {
		return vals[0]
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	if lo == n-1 {
		return vals[n-1]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// StdDev returns the population standard deviation of the finite
// values (non-finite samples are excluded, like Summarize).
func (s *Series) StdDev() float64 {
	var sum float64
	var n int
	for _, sm := range s.samples {
		if !finite(sm.V) {
			continue
		}
		sum += sm.V
		n++
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	var sq float64
	for _, sm := range s.samples {
		if !finite(sm.V) {
			continue
		}
		d := sm.V - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(n))
}

// HistogramBin is one bucket of a value histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets the series values into n equal-width bins spanning
// [min, max]. The top edge is inclusive.
func (s *Series) Histogram(n int) []HistogramBin {
	if n <= 0 {
		panic("trace: histogram needs positive bin count")
	}
	if len(s.samples) == 0 {
		return nil
	}
	st := s.Summarize()
	if st.N == 0 {
		return nil
	}
	lo, hi := st.Min, st.Max
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	bins := make([]HistogramBin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for _, sm := range s.samples {
		if !finite(sm.V) {
			continue
		}
		idx := int((sm.V - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		bins[idx].Count++
	}
	return bins
}

// MovingAverage returns a new series whose value at each sample is the
// mean of the trailing window (by sample count, matching the 1 Hz
// instruments). window must be positive.
func (s *Series) MovingAverage(window int) *Series {
	if window <= 0 {
		panic("trace: moving average needs a positive window")
	}
	out := NewSeries(s.Name+".ma", s.Unit)
	// Track the finite sum and count of the trailing window so one NaN
	// sample leaves a one-window dent, not a NaN tail.
	var sum float64
	var cnt int
	for i, sm := range s.samples {
		if finite(sm.V) {
			sum += sm.V
			cnt++
		}
		if i >= window && finite(s.samples[i-window].V) {
			sum -= s.samples[i-window].V
			cnt--
		}
		if cnt == 0 {
			out.Append(sm.T, math.NaN())
			continue
		}
		out.Append(sm.T, sum/float64(cnt))
	}
	return out
}

// Downsample returns a series keeping every k-th sample (for compact
// plotting of long runs).
func (s *Series) Downsample(k int) *Series {
	if k <= 0 {
		panic("trace: downsample needs a positive factor")
	}
	out := NewSeries(s.Name, s.Unit)
	for i := 0; i < len(s.samples); i += k {
		out.Append(s.samples[i].T, s.samples[i].V)
	}
	return out
}

// EnergyAbove integrates the portion of the series above a floor — the
// "dynamic energy above idle" attribution used in the experiments, as
// a meter would compute it.
func (s *Series) EnergyAbove(floor float64) units.Joules {
	var sum float64
	for i := 0; i+1 < len(s.samples); i++ {
		if !finite(s.samples[i].V) {
			continue
		}
		dt := float64(s.samples[i+1].T - s.samples[i].T)
		if v := s.samples[i].V - floor; v > 0 {
			sum += v * dt
		}
	}
	return units.Joules(sum)
}

package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

// mixedSeries interleaves finite readings with the NaN/Inf values a
// faulted power meter can emit.
func mixedSeries() *Series {
	s := NewSeries("meter", "W")
	vals := []float64{100, math.NaN(), 120, math.Inf(1), 140, math.Inf(-1), 160}
	for i, v := range vals {
		s.Append(units.Seconds(i), v)
	}
	return s
}

func TestSummarizeSkipsNonFinite(t *testing.T) {
	st := mixedSeries().Summarize()
	if st.N != 4 || st.NonFinite != 3 {
		t.Fatalf("stats = %+v; want N=4, NonFinite=3", st)
	}
	if st.Min != 100 || st.Max != 160 || st.Mean != 130 {
		t.Errorf("finite stats polluted: %+v", st)
	}
}

func TestSummarizeAllNonFinite(t *testing.T) {
	s := NewSeries("dead", "W")
	s.Append(0, math.NaN())
	s.Append(1, math.Inf(1))
	st := s.Summarize()
	if st.N != 0 || st.NonFinite != 2 {
		t.Errorf("stats = %+v; want N=0, NonFinite=2", st)
	}
	if st.Mean != 0 || math.IsNaN(st.Min) || math.IsInf(st.Max, 0) {
		t.Errorf("non-finite leaked into zero-sample stats: %+v", st)
	}
}

func TestStatsHelpersSkipNonFinite(t *testing.T) {
	s := mixedSeries()
	if p := s.Percentile(50); math.IsNaN(p) || math.IsInf(p, 0) || p < 100 || p > 160 {
		t.Errorf("Percentile(50) = %v", p)
	}
	if sd := s.StdDev(); math.IsNaN(sd) || math.IsInf(sd, 0) {
		t.Errorf("StdDev = %v", sd)
	}
	for _, b := range s.Histogram(4) {
		if b.Count < 0 || b.Count > 4 {
			t.Errorf("histogram bin %+v counts non-finite samples", b)
		}
	}
	if e := s.EnergyAbove(0); math.IsNaN(float64(e)) || math.IsInf(float64(e), 0) {
		t.Errorf("EnergyAbove = %v", e)
	}
	if in := s.Integral(); math.IsNaN(float64(in)) || math.IsInf(float64(in), 0) {
		t.Errorf("Integral = %v", in)
	}
}

func TestHistogramAllNonFinite(t *testing.T) {
	s := NewSeries("dead", "W")
	s.Append(0, math.NaN())
	if bins := s.Histogram(4); bins != nil {
		t.Errorf("Histogram of all-NaN series = %v, want nil", bins)
	}
}

func TestMovingAverageBridgesNonFinite(t *testing.T) {
	s := NewSeries("noisy", "W")
	for i := 0; i < 10; i++ {
		v := 100.0
		if i == 4 {
			v = math.NaN()
		}
		s.Append(units.Seconds(i), v)
	}
	ma := s.MovingAverage(3)
	for _, sm := range ma.Samples() {
		if math.IsNaN(sm.V) || math.IsInf(sm.V, 0) {
			t.Fatalf("moving average emitted non-finite at t=%v despite finite neighbors", sm.T)
		}
		if sm.V != 100 {
			t.Errorf("moving average at t=%v = %v, want 100", sm.T, sm.V)
		}
	}
}

func TestASCIIPlotDegradesOnNonFinite(t *testing.T) {
	out := ASCIIPlot("mixed", 20, 5, mixedSeries())
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("plot rendered non-finite axis labels:\n%s", out)
	}
	if !strings.Contains(out, "3 non-finite samples omitted") {
		t.Errorf("plot legend missing omission note:\n%s", out)
	}

	dead := NewSeries("dead", "W")
	dead.Append(0, math.NaN())
	out = ASCIIPlot("dead", 20, 5, dead)
	if !strings.Contains(out, "no samples; 1 non-finite omitted") {
		t.Errorf("all-non-finite plot = %q", out)
	}
}

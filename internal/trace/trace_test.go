package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestSeriesAppendAndStats(t *testing.T) {
	s := NewSeries("system", "W")
	for i := 0; i < 5; i++ {
		s.Append(units.Seconds(i), float64(100+i*10))
	}
	st := s.Summarize()
	if st.N != 5 || st.Min != 100 || st.Max != 140 || st.Mean != 120 {
		t.Errorf("stats = %+v", st)
	}
	if st.Start != 0 || st.End != 4 {
		t.Errorf("span = %v..%v", st.Start, st.End)
	}
}

func TestSeriesTimeMonotonicityEnforced(t *testing.T) {
	s := NewSeries("x", "W")
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards timestamp did not panic")
		}
	}()
	s.Append(4, 2)
}

func TestBetween(t *testing.T) {
	s := NewSeries("x", "W")
	for i := 0; i < 10; i++ {
		s.Append(units.Seconds(i), float64(i))
	}
	got := s.Between(3, 6)
	if len(got) != 4 || got[0].T != 3 || got[3].T != 6 {
		t.Errorf("Between(3,6) = %v", got)
	}
	if len(s.Between(20, 30)) != 0 {
		t.Error("out-of-range Between not empty")
	}
}

func TestIntegralRectangleRule(t *testing.T) {
	s := NewSeries("p", "W")
	s.Append(0, 100)
	s.Append(1, 100)
	s.Append(3, 50)
	// 100*1 + 100*2 = 300 (last sample has no width).
	if got := s.Integral(); math.Abs(got-300) > 1e-12 {
		t.Errorf("Integral = %v, want 300", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewSeries("e", "W")
	if st := s.Summarize(); st.N != 0 || st.Mean != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestProfilePhases(t *testing.T) {
	p := NewProfile("case1")
	p.MarkPhase("simulation", 0, 10)
	p.MarkPhase("write", 10, 15)
	p.MarkPhase("simulation", 15, 25)
	if got := p.PhaseTime("simulation"); got != 20 {
		t.Errorf("PhaseTime(simulation) = %v, want 20", got)
	}
	names := p.PhaseNames()
	if len(names) != 2 || names[0] != "simulation" || names[1] != "write" {
		t.Errorf("PhaseNames = %v", names)
	}
	shares := p.PhaseShares()
	if math.Abs(shares["simulation"]-0.8) > 1e-12 || math.Abs(shares["write"]-0.2) > 1e-12 {
		t.Errorf("shares = %v", shares)
	}
}

func TestPhaseBackwardsPanics(t *testing.T) {
	p := NewProfile("x")
	defer func() {
		if recover() == nil {
			t.Error("backwards phase did not panic")
		}
	}()
	p.MarkPhase("bad", 10, 5)
}

func TestPhaseMean(t *testing.T) {
	p := NewProfile("x")
	s := p.AddSeries("system", "W")
	for i := 0; i <= 10; i++ {
		v := 100.0
		if i >= 5 {
			v = 140
		}
		s.Append(units.Seconds(i), v)
	}
	p.MarkPhase("idle", 0, 4)
	p.MarkPhase("busy", 5, 10)
	if got := p.PhaseMean("system", "idle"); got != 100 {
		t.Errorf("idle mean = %v", got)
	}
	if got := p.PhaseMean("system", "busy"); got != 140 {
		t.Errorf("busy mean = %v", got)
	}
	if got := p.PhaseMean("nope", "busy"); got != 0 {
		t.Errorf("missing series mean = %v", got)
	}
}

func TestSeriesByName(t *testing.T) {
	p := NewProfile("x")
	p.AddSeries("a", "W")
	p.AddSeries("b", "W")
	if p.SeriesByName("b") == nil || p.SeriesByName("c") != nil {
		t.Error("SeriesByName lookup wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	p := NewProfile("x")
	a := p.AddSeries("sys", "W")
	b := p.AddSeries("pkg", "W")
	a.Append(0, 100)
	a.Append(1, 110)
	b.Append(0, 40)
	b.Append(1, 45)
	var sb strings.Builder
	if err := p.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "time_s,sys_W,pkg_W" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,100.000,40.000") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestASCIIPlotContainsGlyphsAndLegend(t *testing.T) {
	s := NewSeries("system", "W")
	for i := 0; i < 50; i++ {
		s.Append(units.Seconds(i), 100+20*math.Sin(float64(i)/5))
	}
	out := ASCIIPlot("Power profile", 60, 10, s)
	if !strings.Contains(out, "*") || !strings.Contains(out, "*=system") {
		t.Errorf("plot missing glyphs/legend:\n%s", out)
	}
	if !strings.Contains(out, "Power profile") {
		t.Error("plot missing title")
	}
}

func TestASCIIPlotEmptySeries(t *testing.T) {
	out := ASCIIPlot("empty", 40, 8, NewSeries("x", "W"))
	if !strings.Contains(out, "no samples") {
		t.Errorf("empty plot = %q", out)
	}
}

// Property: Integral is invariant under sample duplication (inserting a
// sample at an existing timestamp with the same value).
func TestIntegralStableUnderRedundantSamples(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 2 {
			return true
		}
		a := NewSeries("a", "W")
		b := NewSeries("b", "W")
		for i, v := range vals {
			a.Append(units.Seconds(i), float64(v))
			b.Append(units.Seconds(i), float64(v))
			b.Append(units.Seconds(i), float64(v)) // duplicate
		}
		return math.Abs(a.Integral()-b.Integral()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

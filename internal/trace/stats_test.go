package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func seq(vals ...float64) *Series {
	s := NewSeries("t", "W")
	for i, v := range vals {
		s.Append(units.Seconds(i), v)
	}
	return s
}

func TestPercentileBasics(t *testing.T) {
	s := seq(10, 20, 30, 40, 50)
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {90, 46},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	s := seq(50, 10, 40, 20, 30)
	if got := s.Percentile(50); got != 30 {
		t.Errorf("median of shuffled = %v, want 30", got)
	}
}

func TestPercentileEmptyAndValidation(t *testing.T) {
	if !math.IsNaN(seq().Percentile(50)) {
		t.Error("empty percentile not NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("percentile 101 did not panic")
		}
	}()
	seq(1).Percentile(101)
}

func TestStdDev(t *testing.T) {
	s := seq(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := seq().StdDev(); got != 0 {
		t.Errorf("empty StdDev = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	s := seq(0, 1, 2, 3, 4, 5, 6, 7, 8, 10)
	bins := s.Histogram(5)
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Errorf("histogram lost samples: %d/10", total)
	}
	if bins[0].Lo != 0 || bins[4].Hi != 10 {
		t.Errorf("edges = %v..%v", bins[0].Lo, bins[4].Hi)
	}
	// The max value lands in the last (inclusive-top) bin.
	if bins[4].Count == 0 {
		t.Error("max value not in last bin")
	}
}

func TestHistogramFlatSeries(t *testing.T) {
	bins := seq(5, 5, 5).Histogram(4)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("flat histogram total = %d", total)
	}
}

func TestMovingAverage(t *testing.T) {
	s := seq(10, 20, 30, 40)
	ma := s.MovingAverage(2)
	want := []float64{10, 15, 25, 35}
	for i, w := range want {
		if got := ma.At(i).V; math.Abs(got-w) > 1e-12 {
			t.Errorf("ma[%d] = %v, want %v", i, got, w)
		}
	}
	if ma.Len() != s.Len() {
		t.Error("moving average changed length")
	}
}

func TestMovingAverageSmoothsNoise(t *testing.T) {
	s := NewSeries("n", "W")
	for i := 0; i < 200; i++ {
		v := 100.0
		if i%2 == 0 {
			v = 110
		}
		s.Append(units.Seconds(i), v)
	}
	ma := s.MovingAverage(10)
	if ma.StdDev() >= s.StdDev()/2 {
		t.Errorf("smoothing ineffective: %v -> %v", s.StdDev(), ma.StdDev())
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := seq(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	d := s.Downsample(3)
	if d.Len() != 4 {
		t.Fatalf("downsampled len = %d, want 4", d.Len())
	}
	if d.At(1).V != 3 || d.At(3).V != 9 {
		t.Errorf("downsampled values wrong: %v", d.Samples())
	}
}

func TestEnergyAbove(t *testing.T) {
	s := seq(100, 110, 90, 120)
	// Rectangle rule, floor 100: 0*1 + 10*1 + 0*1 (last sample no width).
	if got := float64(s.EnergyAbove(100)); math.Abs(got-10) > 1e-12 {
		t.Errorf("EnergyAbove = %v, want 10", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, aRaw, bRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSeries("p", "W")
		for i, v := range vals {
			s.Append(units.Seconds(i), v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		st := s.Summarize()
		return pa <= pb+1e-9 && pa >= st.Min-1e-9 && pb <= st.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

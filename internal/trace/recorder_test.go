package trace

import (
	"testing"

	"repro/internal/telemetry"
)

func TestRecorderMaterializesStream(t *testing.T) {
	prof := NewProfile("run")
	rec := NewRecorder(prof)
	if rec.Profile() != prof {
		t.Fatal("Profile() does not return the materialized profile")
	}
	bus := telemetry.NewBus(rec)

	// Definitions materialize series in definition order (CSV columns).
	bus.Emit(telemetry.Event{Kind: telemetry.KindSeriesDefine, Source: "system", Unit: "W"})
	bus.Emit(telemetry.Event{Kind: telemetry.KindSeriesDefine, Source: "rapl.PKG", Unit: "W"})
	bus.Emit(telemetry.Event{Kind: telemetry.KindSeriesDefine, Source: "system", Unit: "W"}) // duplicate: ignored

	bus.Emit(telemetry.Event{Kind: telemetry.KindEnergySample, Source: "system", At: 1, Value: 104.5})
	bus.Emit(telemetry.Event{Kind: telemetry.KindEnergySample, Source: "rapl.PKG", At: 1, Value: 42})
	bus.Emit(telemetry.Event{Kind: telemetry.KindEnergySample, Source: "system", At: 2, Value: 143})
	// Samples from undeclared sources are dropped, not materialized.
	bus.Emit(telemetry.Event{Kind: telemetry.KindEnergySample, Source: "ghost", At: 2, Value: 1})

	bus.Emit(telemetry.Event{Kind: telemetry.KindStageDone, Stage: "simulation", Start: 0, End: 2})

	if n := len(prof.Series); n != 2 {
		t.Fatalf("profile has %d series, want 2 (duplicate define ignored, ghost dropped)", n)
	}
	if prof.Series[0].Name != "system" || prof.Series[1].Name != "rapl.PKG" {
		t.Errorf("series order = %q,%q, want definition order system,rapl.PKG",
			prof.Series[0].Name, prof.Series[1].Name)
	}
	sys := prof.SeriesByName("system")
	if sys.Len() != 2 || sys.At(1).V != 143 {
		t.Errorf("system series misrecorded: len=%d", sys.Len())
	}
	if prof.SeriesByName("ghost") != nil {
		t.Error("undeclared source materialized a series")
	}
	if got := prof.PhaseTime("simulation"); got != 2 {
		t.Errorf("phase time = %v, want 2", got)
	}
}

package trace

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIPlot renders one or more series as a fixed-size character chart
// for terminal output — the CLI's stand-in for the paper's figures.
// Each series gets its own glyph; the legend lists glyph = name.
func ASCIIPlot(title string, width, height int, series ...*Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}

	// Global extents over finite samples only: one NaN/Inf reading (a
	// faulted run can produce them) must not blow up the axes. Skipped
	// samples leave a gap in the canvas and a note in the legend.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	any := false
	nonFinite := 0
	for _, s := range series {
		for _, sm := range s.Samples() {
			if !finite(sm.V) {
				nonFinite++
				continue
			}
			any = true
			t, v := float64(sm.T), sm.V
			tMin, tMax = math.Min(tMin, t), math.Max(tMax, t)
			vMin, vMax = math.Min(vMin, v), math.Max(vMax, v)
		}
	}
	if !any {
		if nonFinite > 0 {
			return fmt.Sprintf("%s\n(no samples; %d non-finite omitted)\n", title, nonFinite)
		}
		return title + "\n(no samples)\n"
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	// A little headroom.
	pad := (vMax - vMin) * 0.05
	vMin -= pad
	vMax += pad

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, sm := range s.Samples() {
			if !finite(sm.V) {
				continue
			}
			x := int((float64(sm.T) - tMin) / (tMax - tMin) * float64(width-1))
			y := int((sm.V - vMin) / (vMax - vMin) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				canvas[row][x] = g
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range canvas {
		val := vMax - (vMax-vMin)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", val, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.1f%*.1f\n", "", width/2, tMin, width-width/2, tMax)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(legend, "  "))
	if nonFinite > 0 {
		fmt.Fprintf(&b, "%8s  (%d non-finite samples omitted)\n", "", nonFinite)
	}
	return b.String()
}

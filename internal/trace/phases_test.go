package trace

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

// syntheticSeries builds a 1 Hz series from (duration, level) pairs
// with Gaussian noise.
func syntheticSeries(rng *xrand.Rand, sigma float64, levels ...[2]float64) *Series {
	s := NewSeries("system", "W")
	t := 0.0
	for _, lv := range levels {
		for i := 0; i < int(lv[0]); i++ {
			noise := 0.0
			if sigma > 0 {
				noise = rng.NormFloat64() * sigma
			}
			s.Append(units.Seconds(t), lv[1]+noise)
			t++
		}
	}
	return s
}

func TestDetectTwoCleanPhases(t *testing.T) {
	s := syntheticSeries(nil, 0, [2]float64{150, 143}, [2]float64{120, 121})
	phases := DetectPhases(s, 5, 3, 10)
	if len(phases) != 2 {
		t.Fatalf("detected %d phases, want 2: %v", len(phases), phases)
	}
	if math.Abs(phases[0].Mean-143) > 0.5 || math.Abs(phases[1].Mean-121) > 0.5 {
		t.Errorf("phase means = %.1f/%.1f, want 143/121", phases[0].Mean, phases[1].Mean)
	}
	if phases[0].Duration() < 140 || phases[1].Duration() < 110 {
		t.Errorf("phase durations = %v/%v", phases[0].Duration(), phases[1].Duration())
	}
}

func TestDetectSurvivesMeterNoise(t *testing.T) {
	rng := xrand.New(5)
	s := syntheticSeries(rng, 1.0, [2]float64{150, 143}, [2]float64{120, 121})
	phases := DetectPhases(s, 6, 4, 15)
	if len(phases) != 2 {
		t.Fatalf("noisy detection found %d phases, want 2: %v", len(phases), phases)
	}
}

func TestDetectIgnoresSpikes(t *testing.T) {
	s := NewSeries("system", "W")
	for i := 0; i < 100; i++ {
		v := 120.0
		if i == 50 {
			v = 160 // one-sample OS spike
		}
		s.Append(units.Seconds(i), v)
	}
	phases := DetectPhases(s, 5, 3, 10)
	if len(phases) != 1 {
		t.Errorf("spike split the phase: %v", phases)
	}
}

func TestDetectFlatSeriesIsOnePhase(t *testing.T) {
	rng := xrand.New(9)
	s := syntheticSeries(rng, 0.8, [2]float64{200, 134})
	phases := DetectPhases(s, 6, 4, 15)
	if len(phases) != 1 {
		t.Fatalf("flat series produced %d phases: %v", len(phases), phases)
	}
	if math.Abs(phases[0].Mean-134) > 0.5 {
		t.Errorf("flat mean = %v", phases[0].Mean)
	}
}

func TestDetectThreePhases(t *testing.T) {
	s := syntheticSeries(nil, 0,
		[2]float64{60, 104}, [2]float64{80, 143}, [2]float64{70, 121})
	phases := DetectPhases(s, 5, 3, 10)
	if len(phases) != 3 {
		t.Fatalf("detected %d phases, want 3: %v", len(phases), phases)
	}
}

func TestDetectShortBlipMergedByMinDuration(t *testing.T) {
	s := syntheticSeries(nil, 0,
		[2]float64{100, 120}, [2]float64{6, 140}, [2]float64{100, 120})
	phases := DetectPhases(s, 5, 3, 20)
	if len(phases) != 1 {
		t.Errorf("short excursion not merged: %v", phases)
	}
}

func TestDetectEmptySeries(t *testing.T) {
	if got := DetectPhases(NewSeries("x", "W"), 5, 3, 10); got != nil {
		t.Errorf("empty series produced %v", got)
	}
}

func TestDetectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero threshold did not panic")
		}
	}()
	DetectPhases(NewSeries("x", "W"), 0, 3, 10)
}

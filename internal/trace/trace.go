// Package trace records and analyzes time series produced by the
// simulated instruments — the 1 Hz power profiles behind Figs. 5 and 6 —
// together with phase annotations (simulation / write / read /
// visualization) and the summary statistics the paper derives from them
// (average power, peak power, energy, time shares).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/units"
)

// Sample is one instrument reading.
type Sample struct {
	T units.Seconds
	V float64
}

// Series is an append-only time series with non-decreasing timestamps.
type Series struct {
	Name    string
	Unit    string
	samples []Sample
}

// NewSeries creates an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append adds a sample; timestamps must not decrease.
func (s *Series) Append(t units.Seconds, v float64) {
	if n := len(s.samples); n > 0 && t < s.samples[n-1].T {
		panic(fmt.Sprintf("trace: series %q time went backwards: %v < %v", s.Name, t, s.samples[n-1].T))
	}
	s.samples = append(s.samples, Sample{t, v})
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns the backing slice (callers must not modify).
func (s *Series) Samples() []Sample { return s.samples }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Between returns the samples with T in [t0, t1].
func (s *Series) Between(t0, t1 units.Seconds) []Sample {
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].T >= t0 })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].T > t1 })
	return s.samples[lo:hi]
}

// Stats summarizes a set of samples. Non-finite values (NaN/±Inf — a
// faulted run can produce them) are excluded from the moments and
// counted in NonFinite so summaries degrade to a labeled gap instead of
// poisoning every derived number.
type Stats struct {
	N        int
	Mean     float64
	Min, Max float64
	Start    units.Seconds
	End      units.Seconds
	// NonFinite counts NaN/±Inf samples excluded from N and the moments.
	NonFinite int
}

// finite reports whether v is a usable sample value.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Summarize computes stats over all samples.
func (s *Series) Summarize() Stats { return SummarizeSamples(s.samples) }

// SummarizeBetween computes stats over [t0, t1].
func (s *Series) SummarizeBetween(t0, t1 units.Seconds) Stats {
	return SummarizeSamples(s.Between(t0, t1))
}

// SummarizeSamples computes stats over an explicit sample slice,
// skipping non-finite values (counted in NonFinite).
func SummarizeSamples(samples []Sample) Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(samples) == 0 {
		return Stats{}
	}
	var sum float64
	for _, sm := range samples {
		if !finite(sm.V) {
			st.NonFinite++
			continue
		}
		st.N++
		sum += sm.V
		if sm.V < st.Min {
			st.Min = sm.V
		}
		if sm.V > st.Max {
			st.Max = sm.V
		}
	}
	if st.N == 0 {
		return Stats{NonFinite: st.NonFinite}
	}
	st.Mean = sum / float64(st.N)
	st.Start = samples[0].T
	st.End = samples[len(samples)-1].T
	return st
}

// Integral returns the left-rectangle integral of the series over its
// span assuming each sample holds until the next (the way a 1 Hz meter
// is integrated into energy). Non-finite samples contribute nothing —
// their interval is a gap, not a poisoned total.
func (s *Series) Integral() float64 {
	var sum float64
	for i := 0; i+1 < len(s.samples); i++ {
		if !finite(s.samples[i].V) {
			continue
		}
		dt := float64(s.samples[i+1].T - s.samples[i].T)
		sum += s.samples[i].V * dt
	}
	return sum
}

// Phase is a labeled interval of the run.
type Phase struct {
	Name       string
	Start, End units.Seconds
}

// Duration returns the phase length.
func (p Phase) Duration() units.Seconds { return p.End - p.Start }

// Profile groups the series and phases of one experiment run.
type Profile struct {
	Label  string
	Series []*Series
	Phases []Phase
}

// NewProfile creates an empty profile.
func NewProfile(label string) *Profile { return &Profile{Label: label} }

// AddSeries creates, attaches, and returns a new series.
func (p *Profile) AddSeries(name, unit string) *Series {
	s := NewSeries(name, unit)
	p.Series = append(p.Series, s)
	return s
}

// SeriesByName returns the named series, or nil.
func (p *Profile) SeriesByName(name string) *Series {
	for _, s := range p.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MarkPhase appends a phase annotation.
func (p *Profile) MarkPhase(name string, start, end units.Seconds) {
	if end < start {
		panic(fmt.Sprintf("trace: phase %q ends (%v) before it starts (%v)", name, end, start))
	}
	p.Phases = append(p.Phases, Phase{name, start, end})
}

// PhaseTime sums the duration of all phases with the given name.
func (p *Profile) PhaseTime(name string) units.Seconds {
	var total units.Seconds
	for _, ph := range p.Phases {
		if ph.Name == name {
			total += ph.Duration()
		}
	}
	return total
}

// PhaseNames returns the distinct phase names in first-seen order.
func (p *Profile) PhaseNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, ph := range p.Phases {
		if !seen[ph.Name] {
			seen[ph.Name] = true
			names = append(names, ph.Name)
		}
	}
	return names
}

// PhaseShares returns each phase name's fraction of total phase time.
func (p *Profile) PhaseShares() map[string]float64 {
	var total units.Seconds
	for _, ph := range p.Phases {
		total += ph.Duration()
	}
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for _, name := range p.PhaseNames() {
		out[name] = float64(p.PhaseTime(name)) / float64(total)
	}
	return out
}

// PhaseMean averages a series over every interval of the named phase.
func (p *Profile) PhaseMean(seriesName, phaseName string) float64 {
	s := p.SeriesByName(seriesName)
	if s == nil {
		return 0
	}
	var sum float64
	var n int
	for _, ph := range p.Phases {
		if ph.Name != phaseName {
			continue
		}
		for _, sm := range s.Between(ph.Start, ph.End) {
			sum += sm.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCSV emits "time,series1,series2,..." rows on the union of
// sample timestamps (values repeat their last reading).
func (p *Profile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s"); err != nil {
		return err
	}
	for _, s := range p.Series {
		if _, err := fmt.Fprintf(w, ",%s_%s", s.Name, s.Unit); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	// Union of timestamps.
	tsSet := map[units.Seconds]bool{}
	for _, s := range p.Series {
		for _, sm := range s.samples {
			tsSet[sm.T] = true
		}
	}
	ts := make([]float64, 0, len(tsSet))
	for t := range tsSet {
		ts = append(ts, float64(t))
	}
	sort.Float64s(ts)
	idx := make([]int, len(p.Series))
	last := make([]float64, len(p.Series))
	for _, t := range ts {
		if _, err := fmt.Fprintf(w, "%.3f", t); err != nil {
			return err
		}
		for i, s := range p.Series {
			for idx[i] < len(s.samples) && float64(s.samples[idx[i]].T) <= t {
				last[i] = s.samples[idx[i]].V
				idx[i]++
			}
			if _, err := fmt.Fprintf(w, ",%.3f", last[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

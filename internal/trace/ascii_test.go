package trace

import (
	"math"
	"strings"
	"testing"
)

func TestASCIIPlotEmptySeriesKeepsTitle(t *testing.T) {
	p := NewProfile("t")
	s := p.AddSeries("system", "W")
	got := ASCIIPlot("power", 40, 8, s)
	if !strings.HasPrefix(got, "power\n") {
		t.Errorf("plot missing title:\n%s", got)
	}
	if !strings.Contains(got, "(no samples)") {
		t.Errorf("empty plot = %q, want a labeled no-samples note", got)
	}
}

func TestASCIIPlotAllNonFinite(t *testing.T) {
	p := NewProfile("t")
	s := p.AddSeries("system", "W")
	s.Append(0, math.NaN())
	s.Append(1, math.Inf(1))
	s.Append(2, math.Inf(-1))
	got := ASCIIPlot("power", 40, 8, s)
	if !strings.Contains(got, "(no samples; 3 non-finite omitted)") {
		t.Errorf("all-non-finite plot = %q, want a labeled omission count", got)
	}
}

func TestASCIIPlotSingleSample(t *testing.T) {
	p := NewProfile("t")
	s := p.AddSeries("system", "W")
	s.Append(5, 104.5)
	got := ASCIIPlot("power", 40, 8, s)
	// Degenerate extents must not divide by zero; the one sample must
	// land on the canvas and the legend must name the series.
	if !strings.Contains(got, "*") {
		t.Errorf("single-sample plot has no glyph:\n%s", got)
	}
	if !strings.Contains(got, "*=system") {
		t.Errorf("plot legend missing series name:\n%s", got)
	}
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
			t.Errorf("plot axis contains non-finite label: %q", line)
		}
	}
}

func TestASCIIPlotMixedFiniteAndNot(t *testing.T) {
	p := NewProfile("t")
	s := p.AddSeries("system", "W")
	s.Append(0, 100)
	s.Append(1, math.NaN())
	s.Append(2, 110)
	got := ASCIIPlot("power", 40, 8, s)
	if !strings.Contains(got, "(1 non-finite samples omitted)") {
		t.Errorf("plot legend missing omission note:\n%s", got)
	}
	// Axes come from the finite samples alone: the top label must stay
	// near 110 (+5%% headroom), not blow up to Inf.
	if !strings.Contains(got, "110.5") {
		t.Errorf("plot axes not derived from finite extents:\n%s", got)
	}
}

func TestASCIIPlotMultiSeriesGlyphs(t *testing.T) {
	p := NewProfile("t")
	a := p.AddSeries("rapl.PKG", "W")
	b := p.AddSeries("rapl.DRAM", "W")
	a.Append(0, 40)
	a.Append(10, 45)
	b.Append(0, 10)
	b.Append(10, 12)
	got := ASCIIPlot("rapl", 40, 8, a, b)
	if !strings.Contains(got, "*=rapl.PKG") || !strings.Contains(got, "+=rapl.DRAM") {
		t.Errorf("legend glyphs wrong:\n%s", got)
	}
	if !strings.Contains(got, "+") {
		t.Errorf("second series not drawn:\n%s", got)
	}
}

func TestASCIIPlotClampsTinyDimensions(t *testing.T) {
	p := NewProfile("t")
	s := p.AddSeries("system", "W")
	s.Append(0, 1)
	s.Append(1, 2)
	got := ASCIIPlot("tiny", 1, 1, s)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// Title + >=4 canvas rows + axis + labels + legend.
	if len(lines) < 7 {
		t.Errorf("clamped plot has %d lines, want >= 7:\n%s", len(lines), got)
	}
}

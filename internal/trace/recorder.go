package trace

import "repro/internal/telemetry"

// Recorder materializes a telemetry stream into a Profile: series
// definitions become Profile series (in definition order — the CSV
// column order), energy samples append to their series, and stage
// completions become phase annotations. It is the bridge between the
// event core and the trace analyses (CSV export, ASCII plots, phase
// means) that predate it.
//
// Attach the recorder to the run's bus before constructing the
// instruments that define series, so no definition is missed.
type Recorder struct {
	profile *Profile
	series  map[string]*Series
}

// NewRecorder returns a recorder materializing into p.
func NewRecorder(p *Profile) *Recorder {
	return &Recorder{profile: p, series: map[string]*Series{}}
}

// Profile returns the profile being materialized.
func (r *Recorder) Profile() *Profile { return r.profile }

// Consume implements telemetry.Consumer.
func (r *Recorder) Consume(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindSeriesDefine:
		if _, ok := r.series[ev.Source]; !ok {
			r.series[ev.Source] = r.profile.AddSeries(ev.Source, ev.Unit)
		}
	case telemetry.KindEnergySample:
		// Samples from sources that never defined themselves are dropped:
		// the recorder materializes declared instruments, not ad-hoc data.
		if s := r.series[ev.Source]; s != nil {
			s.Append(ev.At, ev.Value)
		}
	case telemetry.KindStageDone:
		r.profile.MarkPhase(ev.Stage, ev.Start, ev.End)
	}
}

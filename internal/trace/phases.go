package trace

import (
	"fmt"

	"repro/internal/units"
)

// DetectedPhase is one approximately-constant-power segment of a
// profile.
type DetectedPhase struct {
	Start, End units.Seconds
	Mean       float64
}

// Duration returns the segment length.
func (p DetectedPhase) Duration() units.Seconds { return p.End - p.Start }

func (p DetectedPhase) String() string {
	return fmt.Sprintf("[%v..%v] @ %.1f", p.Start, p.End, p.Mean)
}

// DetectPhases segments a power series into sustained levels — the
// automated version of the paper's §V-A observation that the
// post-processing profile shows "distinct power phases" (simulate+write
// at ~143 W, read+visualize at ~121 W) while the in-situ profile shows
// none.
//
// threshold is the level change (in the series' unit) that counts as a
// new phase; hold is how many consecutive samples must sustain the
// change (rejects meter noise and single-sample spikes); minDuration
// merges short segments into their predecessor.
func DetectPhases(s *Series, threshold float64, hold int, minDuration units.Seconds) []DetectedPhase {
	if threshold <= 0 || hold < 1 {
		panic("trace: DetectPhases needs positive threshold and hold")
	}
	samples := s.Samples()
	if len(samples) == 0 {
		return nil
	}

	var segs []DetectedPhase
	segStart := 0
	mean := samples[0].V
	count := 1

	sustained := func(from int) bool {
		if from+hold > len(samples) {
			return false
		}
		for j := from; j < from+hold; j++ {
			if abs(samples[j].V-mean) <= threshold {
				return false
			}
		}
		return true
	}

	for i := 1; i < len(samples); i++ {
		if abs(samples[i].V-mean) > threshold && sustained(i) {
			segs = append(segs, DetectedPhase{
				Start: samples[segStart].T,
				End:   samples[i-1].T,
				Mean:  mean,
			})
			segStart = i
			mean = samples[i].V
			count = 1
			continue
		}
		count++
		mean += (samples[i].V - mean) / float64(count)
	}
	segs = append(segs, DetectedPhase{
		Start: samples[segStart].T,
		End:   samples[len(samples)-1].T,
		Mean:  mean,
	})

	// Merge short segments into their predecessor, then merge adjacent
	// segments whose means re-converged.
	segs = mergeShort(segs, minDuration)
	return mergeSimilar(segs, threshold)
}

func mergeShort(segs []DetectedPhase, minDuration units.Seconds) []DetectedPhase {
	var out []DetectedPhase
	for _, s := range segs {
		if len(out) > 0 && s.Duration() < minDuration {
			prev := &out[len(out)-1]
			prev.Mean = weightedMean(*prev, s)
			prev.End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

func mergeSimilar(segs []DetectedPhase, threshold float64) []DetectedPhase {
	var out []DetectedPhase
	for _, s := range segs {
		if len(out) > 0 && abs(out[len(out)-1].Mean-s.Mean) <= threshold {
			prev := &out[len(out)-1]
			prev.Mean = weightedMean(*prev, s)
			prev.End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

func weightedMean(a, b DetectedPhase) float64 {
	da, db := float64(a.Duration()), float64(b.Duration())
	if da+db == 0 {
		return (a.Mean + b.Mean) / 2
	}
	return (a.Mean*da + b.Mean*db) / (da + db)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

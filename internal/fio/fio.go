// Package fio reimplements the fio disk-benchmark tests of the paper's
// §V-D: sequential and random reads and writes of 4 GiB against the
// simulated disk, measuring execution time, full-system power, and the
// disk's dynamic power and energy (Table III).
//
// Random tests use a shuffled full-coverage block map, like fio's
// default randommap: every block is touched exactly once, in random
// order.
package fio

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/units"
)

// TestKind selects one of the four Table III workloads.
type TestKind int

// The fio tests of Table III.
const (
	SeqRead TestKind = iota
	RandRead
	SeqWrite
	RandWrite
)

func (k TestKind) String() string {
	switch k {
	case SeqRead:
		return "Sequential Read"
	case RandRead:
		return "Random Read"
	case SeqWrite:
		return "Sequential Write"
	case RandWrite:
		return "Random Write"
	default:
		return fmt.Sprintf("TestKind(%d)", int(k))
	}
}

// Config describes a run.
type Config struct {
	// FileSize is the total data moved (4 GiB in the paper).
	FileSize units.Bytes
	// SeqBlock is the request size of sequential tests (128 KiB).
	SeqBlock units.Bytes
	// RandBlock is the request size of random tests (16 KiB).
	RandBlock units.Bytes
	// IdleBaseline is the idle system power used to attribute the
	// "disk dynamic power" residual, as the paper does. Zero means
	// "use the node's own static floor".
	IdleBaseline units.Watts
}

// DefaultConfig returns the paper's 4 GiB test setup.
func DefaultConfig() Config {
	return Config{
		FileSize:     4 * units.GiB,
		SeqBlock:     128 * units.KiB,
		RandBlock:    16 * units.KiB,
		IdleBaseline: 104.5,
	}
}

// Result is one Table III row.
type Result struct {
	Kind TestKind

	ExecTime units.Seconds
	// FullSystemPower is the run's average wall power.
	FullSystemPower units.Watts
	// DiskDynPower is the residual above the idle baseline — the
	// paper's attribution of everything non-idle to the disk.
	DiskDynPower units.Watts
	// DiskDynEnergy = DiskDynPower × ExecTime.
	DiskDynEnergy units.Joules
	// FullSystemEnergy is the total wall energy of the run.
	FullSystemEnergy units.Joules
}

// Run executes one fio test on the node. The file is preallocated
// contiguously and dropped from the cache first, so reads are cold and
// writes trigger no allocation or journaling — matching fio on a
// preallocated test file.
func Run(n *node.Node, kind TestKind, cfg Config) Result {
	if cfg.FileSize <= 0 || cfg.SeqBlock <= 0 || cfg.RandBlock <= 0 {
		panic("fio: config sizes must be positive")
	}
	name := fmt.Sprintf("fio-%d.dat", kind)
	f := n.FS.Create(name, storage.AllocContiguous)
	n.WithIO(func() {
		f.AppendSparse(cfg.FileSize)
		f.Fsync()
		n.FS.DropCaches()
	})
	n.WaitDiskIdle()

	block := cfg.SeqBlock
	if kind == RandRead || kind == RandWrite {
		block = cfg.RandBlock
	}
	blocks := int(cfg.FileSize / block)
	order := make([]int, blocks)
	for i := range order {
		order[i] = i
	}
	if kind == RandRead || kind == RandWrite {
		rng := n.Rand()
		for i := blocks - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}

	startT := n.Now()
	startE := n.SystemEnergy()
	n.WithIO(func() {
		for _, b := range order {
			off := units.Bytes(b) * block
			switch kind {
			case SeqRead, RandRead:
				f.ReadSparseAt(off, block)
			case SeqWrite, RandWrite:
				f.WriteSparseAt(off, block)
			}
		}
		if kind == SeqWrite || kind == RandWrite {
			f.Fsync()
		}
	})
	n.WaitDiskIdle()

	elapsed := n.Now() - startT
	energy := n.SystemEnergy() - startE
	avg := units.AveragePower(energy, elapsed)
	baseline := cfg.IdleBaseline
	if baseline == 0 {
		baseline = n.IdleSystemPower()
	}
	dyn := avg - baseline
	if dyn < 0 {
		dyn = 0
	}
	n.FS.Delete(name)
	return Result{
		Kind:             kind,
		ExecTime:         elapsed,
		FullSystemPower:  avg,
		DiskDynPower:     dyn,
		DiskDynEnergy:    units.Energy(dyn, elapsed),
		FullSystemEnergy: energy,
	}
}

// RunAll executes the four tests in Table III order on fresh state.
func RunAll(n *node.Node, cfg Config) []Result {
	kinds := []TestKind{SeqRead, RandRead, SeqWrite, RandWrite}
	out := make([]Result, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, Run(n, k, cfg))
	}
	return out
}

package fio

import (
	"sync"
	"testing"

	"repro/internal/node"
	"repro/internal/units"
)

func newNode(seed uint64) *node.Node {
	return node.New(node.SandyBridge(), seed)
}

// results are shared across assertions: the random-read run simulates
// 2000+ virtual seconds and 260k requests.
var (
	resOnce sync.Once
	results map[TestKind]Result
)

func all(t *testing.T) map[TestKind]Result {
	t.Helper()
	resOnce.Do(func() {
		results = map[TestKind]Result{}
		for _, r := range RunAll(newNode(3), DefaultConfig()) {
			results[r.Kind] = r
		}
	})
	return results
}

func TestSeqReadMatchesTable3(t *testing.T) {
	r := all(t)[SeqRead]
	// Paper: 35.9 s, 118 W, 13.5 W disk dynamic, 0.4 KJ, 4.2 KJ.
	if r.ExecTime < 33 || r.ExecTime > 41 {
		t.Errorf("time = %v, want ~35.9 s", r.ExecTime)
	}
	if r.FullSystemPower < 115 || r.FullSystemPower > 120 {
		t.Errorf("system power = %v, want ~118 W", r.FullSystemPower)
	}
	if r.DiskDynPower < 11 || r.DiskDynPower > 15 {
		t.Errorf("disk dynamic = %v, want ~13.5 W", r.DiskDynPower)
	}
	if kj := r.FullSystemEnergy.KJ(); kj < 3.8 || kj > 5.0 {
		t.Errorf("system energy = %.1f KJ, want ~4.2", kj)
	}
}

func TestRandReadMatchesTable3(t *testing.T) {
	r := all(t)[RandRead]
	// Paper: 2230 s, 107 W, 2.5 W disk dynamic, 5.5 KJ, 238.6 KJ.
	if r.ExecTime < 1900 || r.ExecTime > 2500 {
		t.Errorf("time = %v, want ~2230 s", r.ExecTime)
	}
	if r.FullSystemPower < 106 || r.FullSystemPower > 111 {
		t.Errorf("system power = %v, want ~107 W", r.FullSystemPower)
	}
	if r.DiskDynPower < 1.5 || r.DiskDynPower > 5 {
		t.Errorf("disk dynamic = %v, want ~2.5 W", r.DiskDynPower)
	}
	if kj := r.FullSystemEnergy.KJ(); kj < 200 || kj > 270 {
		t.Errorf("system energy = %.1f KJ, want ~238.6", kj)
	}
}

func TestSeqWriteMatchesTable3(t *testing.T) {
	r := all(t)[SeqWrite]
	// Paper: 27 s, 115.4 W, 10.9 W disk dynamic, 3.1 KJ system.
	if r.ExecTime < 25 || r.ExecTime > 32 {
		t.Errorf("time = %v, want ~27 s", r.ExecTime)
	}
	if r.FullSystemPower < 112 || r.FullSystemPower > 118 {
		t.Errorf("system power = %v, want ~115.4 W", r.FullSystemPower)
	}
	if r.DiskDynPower < 8 || r.DiskDynPower > 13 {
		t.Errorf("disk dynamic = %v, want ~10.9 W", r.DiskDynPower)
	}
}

func TestRandWriteNearSequentialSpeed(t *testing.T) {
	// Paper: 31 s vs 27 s sequential — the page cache + elevator absorb
	// random writes almost entirely (the pivotal §V-D observation,
	// versus the 62x penalty for random reads).
	rw := all(t)[RandWrite]
	sw := all(t)[SeqWrite]
	rr := all(t)[RandRead]
	sr := all(t)[SeqRead]
	if ratio := float64(rw.ExecTime) / float64(sw.ExecTime); ratio > 1.3 {
		t.Errorf("random/sequential write ratio = %.2f, want ~1.1", ratio)
	}
	if ratio := float64(rr.ExecTime) / float64(sr.ExecTime); ratio < 30 {
		t.Errorf("random/sequential read ratio = %.1f, want ~62", ratio)
	}
	if kj := rw.FullSystemEnergy.KJ(); kj < 2.5 || kj > 5.5 {
		t.Errorf("random-write energy = %.1f KJ, want ~3.6", kj)
	}
}

func TestHypotheticalSavingsOfSectionVD(t *testing.T) {
	// §V-D: a random-I/O app adopting in-situ saves ~242.2 KJ
	// (238.6 + 3.6); with data reorganization instead, the same app
	// spends only ~7.3 KJ (4.2 + 3.1) and keeps exploratory analysis.
	r := all(t)
	randomTotal := r[RandRead].FullSystemEnergy + r[RandWrite].FullSystemEnergy
	seqTotal := r[SeqRead].FullSystemEnergy + r[SeqWrite].FullSystemEnergy
	if kj := randomTotal.KJ(); kj < 200 || kj > 280 {
		t.Errorf("random total = %.1f KJ, want ~242.2", kj)
	}
	if kj := seqTotal.KJ(); kj < 6 || kj > 10 {
		t.Errorf("sequential total = %.1f KJ, want ~7.3", kj)
	}
	if float64(seqTotal) > 0.05*float64(randomTotal) {
		t.Error("reorganization does not recover ~97% of the random-I/O energy")
	}
}

func TestDiskDynEnergyConsistent(t *testing.T) {
	for kind, r := range all(t) {
		want := float64(r.DiskDynPower) * float64(r.ExecTime)
		if got := float64(r.DiskDynEnergy); got < want*0.999 || got > want*1.001 {
			t.Errorf("%v: DiskDynEnergy %v != power x time %v", kind, got, want)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FileSize = 64 * units.MiB
	a := Run(newNode(9), RandWrite, cfg)
	b := Run(newNode(9), RandWrite, cfg)
	if a.ExecTime != b.ExecTime || a.FullSystemEnergy != b.FullSystemEnergy {
		t.Error("same seed produced different fio results")
	}
}

func TestRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero file size did not panic")
		}
	}()
	Run(newNode(1), SeqRead, Config{})
}

func TestRunCleansUpFile(t *testing.T) {
	n := newNode(5)
	cfg := DefaultConfig()
	cfg.FileSize = 64 * units.MiB
	Run(n, SeqWrite, cfg)
	if n.FS.Open("fio-2.dat") != nil {
		t.Error("fio left its test file behind")
	}
}

// Package rapl emulates Intel's Running Average Power Limit interface
// as the paper used it on Sandy Bridge: model-specific registers (MSRs)
// holding 32-bit cumulative energy counters in 15.3 µJ units, read by a
// 1 Hz software monitor that differences consecutive counter values —
// handling wraparound — to produce per-domain power. Reading the MSRs
// costs a small, configurable monitoring overhead on the package domain
// (the paper measured 0.2 W at 1 Hz).
package rapl

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Domain identifies a RAPL power plane.
type Domain int

// RAPL domains available on Sandy Bridge server parts.
const (
	PKG  Domain = iota // whole processor package
	PP0                // cores only
	DRAM               // memory
)

func (d Domain) String() string {
	switch d {
	case PKG:
		return "PKG"
	case PP0:
		return "PP0"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// EnergyUnit is the Sandy Bridge RAPL energy resolution: 2^-16 J.
const EnergyUnit = 1.0 / 65536

// CounterBits is the width of the energy-status MSR field.
const CounterBits = 32

// EnergySource yields cumulative joules for a domain. PKG and DRAM wrap
// power.Domain energies; PP0 subtracts the modeled uncore floor.
type EnergySource func() units.Joules

// MSR emulates the energy-status registers.
type MSR struct {
	sources map[Domain]EnergySource
}

// NewMSR builds the register file from per-domain energy sources.
func NewMSR(sources map[Domain]EnergySource) *MSR {
	if len(sources) == 0 {
		panic("rapl: no energy sources")
	}
	return &MSR{sources: sources}
}

// ReadEnergyStatus returns the 32-bit wrapped counter for a domain, in
// EnergyUnit increments, exactly as MSR_PKG_ENERGY_STATUS does.
func (m *MSR) ReadEnergyStatus(d Domain) (uint32, error) {
	src, ok := m.sources[d]
	if !ok {
		return 0, fmt.Errorf("rapl: domain %v not supported on this package", d)
	}
	ticks := uint64(float64(src()) / EnergyUnit)
	return uint32(ticks), nil // wraparound by truncation
}

// CounterDelta returns the energy between two counter reads, handling a
// single wraparound (the monitor samples far faster than the ~9-minute
// wrap period at node power levels).
func CounterDelta(prev, cur uint32) units.Joules {
	delta := cur - prev // uint32 arithmetic wraps correctly
	return units.Joules(float64(delta) * EnergyUnit)
}

// Sources builds the standard source map from the node's power bus:
// PKG = package domain, DRAM = dram domain, PP0 = package minus the
// fixed uncore floor.
func Sources(bus *power.Bus, uncoreFloor units.Watts, engine *sim.Engine) map[Domain]EnergySource {
	pkg := bus.Domain("package")
	dram := bus.Domain("dram")
	if pkg == nil || dram == nil {
		panic("rapl: bus lacks package/dram domains")
	}
	start := engine.Now()
	return map[Domain]EnergySource{
		PKG:  func() units.Joules { return pkg.Energy() },
		DRAM: func() units.Joules { return dram.Energy() },
		PP0: func() units.Joules {
			elapsed := engine.Now() - start
			e := pkg.Energy() - units.Energy(uncoreFloor, elapsed)
			if e < 0 {
				e = 0
			}
			return e
		},
	}
}

// MonitorConfig configures the sampling loop.
type MonitorConfig struct {
	// Period between reads (the paper used 1 Hz).
	Period units.Seconds
	// Overhead is added to the package domain while monitoring
	// (0.2 W at 1 Hz in the paper).
	Overhead units.Watts
	// Domains to record; nil means PKG+DRAM (the paper's choice).
	Domains []Domain
}

// DefaultMonitorConfig returns the paper's 1 Hz, 0.2 W setup.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{Period: 1, Overhead: 0.2}
}

// Monitor periodically reads the MSRs and emits per-domain average
// power as telemetry energy-sample events.
type Monitor struct {
	msr     *MSR
	ticker  *sim.Ticker
	pkgDom  *power.Domain
	cfg     MonitorConfig
	tel     *telemetry.Bus
	doms    []Domain
	names   []string
	prev    map[Domain]uint32
	running bool
}

// SourceName returns the telemetry source a domain samples under
// ("rapl.PKG", "rapl.DRAM", ...).
func SourceName(d Domain) string { return "rapl." + d.String() }

// NewMonitor attaches a monitor to the MSRs, emitting readings into tel
// with one source per domain (defined on construction, in domain order,
// so recorders materialize series columns in a stable order). pkgDomain
// receives the monitoring overhead and may be nil.
func NewMonitor(engine *sim.Engine, msr *MSR, tel *telemetry.Bus, pkgDomain *power.Domain, cfg MonitorConfig) *Monitor {
	if cfg.Period <= 0 {
		panic("rapl: monitor period must be positive")
	}
	doms := cfg.Domains
	if doms == nil {
		doms = []Domain{PKG, DRAM}
	}
	if tel == nil {
		tel = telemetry.NewBus()
	}
	m := &Monitor{
		msr:    msr,
		pkgDom: pkgDomain,
		cfg:    cfg,
		tel:    tel,
		doms:   doms,
		names:  make([]string, len(doms)),
		prev:   make(map[Domain]uint32),
	}
	for i, d := range doms {
		m.names[i] = SourceName(d)
		tel.Emit(telemetry.Event{Kind: telemetry.KindSeriesDefine, Source: m.names[i], Unit: "W"})
	}
	m.ticker = sim.NewTicker(engine, cfg.Period, m.sample)
	return m
}

// Start begins sampling (and applies the monitoring overhead).
func (m *Monitor) Start() {
	if m.running {
		return
	}
	m.running = true
	for _, d := range m.doms {
		if v, err := m.msr.ReadEnergyStatus(d); err == nil {
			m.prev[d] = v
		}
	}
	if m.pkgDom != nil {
		m.pkgDom.Add(m.cfg.Overhead)
	}
	m.ticker.Start()
}

// Stop halts sampling and removes the overhead.
func (m *Monitor) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.ticker.Stop()
	if m.pkgDom != nil {
		m.pkgDom.Add(-m.cfg.Overhead)
	}
}

func (m *Monitor) sample(now sim.Time) {
	for i, d := range m.doms {
		cur, err := m.msr.ReadEnergyStatus(d)
		if err != nil {
			continue
		}
		e := CounterDelta(m.prev[d], cur)
		m.prev[d] = cur
		m.tel.Emit(telemetry.Event{
			Kind:   telemetry.KindEnergySample,
			Source: m.names[i],
			At:     now,
			Value:  float64(e) / float64(m.cfg.Period),
		})
	}
}

package rapl

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

// monitorProfile pairs a telemetry bus with a recorder-backed profile,
// the production arrangement for reading a monitor's series.
func monitorProfile() (*telemetry.Bus, *trace.Profile) {
	prof := trace.NewProfile("t")
	return telemetry.NewBus(trace.NewRecorder(prof)), prof
}

func TestCounterDeltaSimple(t *testing.T) {
	if got := CounterDelta(1000, 66536); math.Abs(float64(got)-65536*EnergyUnit) > 1e-9 {
		t.Errorf("delta = %v, want 1 J worth", got)
	}
}

func TestCounterDeltaWraparound(t *testing.T) {
	prev := uint32(0xFFFFFF00)
	cur := uint32(0x00000100)
	want := float64(0x200) * EnergyUnit
	if got := CounterDelta(prev, cur); math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("wrap delta = %v, want %v", got, want)
	}
}

func TestReadEnergyStatusTracksDomain(t *testing.T) {
	e := sim.NewEngine()
	d := power.NewDomain(e, "package", 100)
	msr := NewMSR(map[Domain]EnergySource{PKG: func() units.Joules { return d.Energy() }})
	e.Advance(10) // 1000 J
	c, err := msr.ReadEnergyStatus(PKG)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(uint64(1000 / EnergyUnit))
	if c != want {
		t.Errorf("counter = %d, want %d", c, want)
	}
}

func TestReadUnsupportedDomain(t *testing.T) {
	msr := NewMSR(map[Domain]EnergySource{PKG: func() units.Joules { return 0 }})
	if _, err := msr.ReadEnergyStatus(DRAM); err == nil {
		t.Error("unsupported domain read did not error")
	}
}

func TestCounterWrapsAt32Bits(t *testing.T) {
	// 2^32 units = 65536 J; feed slightly more and expect a wrapped value.
	total := units.Joules(65536 + 1)
	msr := NewMSR(map[Domain]EnergySource{PKG: func() units.Joules { return total }})
	c, _ := msr.ReadEnergyStatus(PKG)
	if c != uint32(1/EnergyUnit) {
		t.Errorf("wrapped counter = %d, want %d", c, uint32(1/EnergyUnit))
	}
}

func TestMonitorRecordsAveragePower(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	pkg := bus.NewDomain("package", 42)
	bus.NewDomain("dram", 10)
	msr := NewMSR(Sources(bus, 42, e))
	tel, prof := monitorProfile()
	cfg := DefaultMonitorConfig()
	cfg.Overhead = 0 // keep power exact for the assertion
	mon := NewMonitor(e, msr, tel, pkg, cfg)
	mon.Start()
	e.Advance(5)
	pkg.SetLevel(72)
	e.Advance(5)
	mon.Stop()

	s := prof.SeriesByName(SourceName(PKG))
	if s.Len() != 10 {
		t.Fatalf("PKG samples = %d, want 10", s.Len())
	}
	early := s.At(2).V
	late := s.At(8).V
	if math.Abs(early-42) > 0.01 || math.Abs(late-72) > 0.01 {
		t.Errorf("PKG power early/late = %v/%v, want 42/72", early, late)
	}
	d := prof.SeriesByName(SourceName(DRAM))
	if math.Abs(d.At(3).V-10) > 0.01 {
		t.Errorf("DRAM power = %v, want 10", d.At(3).V)
	}
}

func TestMonitorOverheadAppliedAndRemoved(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	pkg := bus.NewDomain("package", 42)
	bus.NewDomain("dram", 10)
	msr := NewMSR(Sources(bus, 42, e))
	mon := NewMonitor(e, msr, nil, pkg, DefaultMonitorConfig())
	mon.Start()
	if math.Abs(float64(pkg.Level())-42.2) > 1e-9 {
		t.Errorf("package with monitor = %v, want 42.2", pkg.Level())
	}
	mon.Stop()
	if math.Abs(float64(pkg.Level())-42) > 1e-9 {
		t.Errorf("package after stop = %v, want 42", pkg.Level())
	}
	mon.Stop() // idempotent
}

func TestPP0SubtractsUncore(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	pkg := bus.NewDomain("package", 42)
	bus.NewDomain("dram", 10)
	srcs := Sources(bus, 30, e) // 30 W uncore floor
	pkg.SetLevel(72)
	e.Advance(10)
	got := float64(srcs[PP0]())
	want := (72.0 - 30.0) * 10
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("PP0 energy = %v, want %v", got, want)
	}
}

func TestMonitorLongRunSurvivesCounterWrap(t *testing.T) {
	// At 150 W the 32-bit counter wraps every ~437 s; run 1200 s and
	// check no sample goes wild.
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	pkg := bus.NewDomain("package", 150)
	bus.NewDomain("dram", 10)
	msr := NewMSR(Sources(bus, 42, e))
	tel, prof := monitorProfile()
	cfg := MonitorConfig{Period: 1, Overhead: 0}
	mon := NewMonitor(e, msr, tel, pkg, cfg)
	mon.Start()
	e.Advance(1200)
	mon.Stop()
	for _, s := range prof.SeriesByName(SourceName(PKG)).Samples() {
		if math.Abs(s.V-150) > 0.01 {
			t.Fatalf("sample at %v = %v, want 150 (wraparound mishandled)", s.T, s.V)
		}
	}
}

package storage

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// CacheParams configures the page cache. The defaults (LinuxPageCache)
// follow the 3.2-kernel defaults on the paper's 64 GB node.
type CacheParams struct {
	// MemBW is the copy bandwidth between user buffers and the cache,
	// bytes/s (effective single-stream memcpy, not peak DDR3).
	MemBW float64
	// BackgroundDirty starts the write-back daemon (dirty_background_ratio).
	BackgroundDirty units.Bytes
	// DirtyLimit throttles foreground writers (dirty_ratio).
	DirtyLimit units.Bytes
	// LowWater is where background write-back stops draining.
	LowWater units.Bytes
	// BatchBytes is how much one elevator sweep batch submits at once.
	BatchBytes units.Bytes
	// FIFOWriteback disables the elevator: dirty data drains in
	// insertion order instead of LBA order (ablation knob — random
	// writes become seek-bound).
	FIFOWriteback bool
	// WriteThrough disables write buffering entirely: every Write goes
	// straight to the media and blocks (ablation knob).
	WriteThrough bool
}

// LinuxPageCache returns cache parameters for a 64 GB node:
// background write-back at 10 % of RAM, foreground throttle at 20 %,
// 3 GB/s effective copy bandwidth.
func LinuxPageCache() CacheParams {
	ram := 64 * units.GiB
	return CacheParams{
		MemBW:           3e9,
		BackgroundDirty: ram / 10,
		DirtyLimit:      ram / 5,
		LowWater:        ram / 20,
		BatchBytes:      16 * units.MiB,
	}
}

// CacheStats aggregates cache behaviour for attribution and tests.
type CacheStats struct {
	ReadHits, ReadMisses units.Bytes // bytes served from RAM vs media
	BytesWritten         units.Bytes // bytes buffered by callers
	WritebackBytes       units.Bytes // dirty bytes drained to media
	Throttles            uint64      // foreground writes that hit DirtyLimit
	Syncs                uint64
}

// PageCache is the write-back cache between callers and the disk. It is
// a pure timing model: it tracks which disk-offset ranges are RAM
// resident and which are dirty, charges memcpy time for hits and media
// time for misses, and runs an elevator write-back daemon. File *data*
// lives in the filesystem layer; the cache never stores bytes.
//
// Read, Write, Sync and SyncRanges are foreground (blocking) calls:
// they advance the virtual clock until the operation completes. The
// write-back daemon runs in the background via scheduled events.
type PageCache struct {
	params CacheParams
	engine *sim.Engine
	disk   Device

	cached RangeSet // RAM-resident (clean + dirty)
	dirty  RangeSet // not yet on media
	fifo   []Range  // insertion order, used when FIFOWriteback is set

	sweepPos units.Bytes // elevator position
	inflight bool        // a write-back batch is on the media

	stats CacheStats
}

// NewPageCache creates a cache over a block device.
func NewPageCache(engine *sim.Engine, disk Device, params CacheParams) *PageCache {
	if params.MemBW <= 0 {
		panic("storage: cache needs positive memory bandwidth")
	}
	if params.DirtyLimit < params.BackgroundDirty {
		panic("storage: DirtyLimit below BackgroundDirty")
	}
	if params.BatchBytes <= 0 {
		panic("storage: cache needs a positive write-back batch size")
	}
	return &PageCache{params: params, engine: engine, disk: disk}
}

// Stats returns a copy of the accumulated statistics.
func (c *PageCache) Stats() CacheStats { return c.stats }

// DirtyBytes returns the current amount of un-flushed data.
func (c *PageCache) DirtyBytes() units.Bytes { return c.dirty.Bytes() }

// CachedBytes returns the current amount of RAM-resident data.
func (c *PageCache) CachedBytes() units.Bytes { return c.cached.Bytes() }

// Write buffers [off, off+n) through the cache: memcpy time now,
// media time later via write-back (or fsync). It blocks (advances the
// clock) for the copy and for dirty-limit throttling.
func (c *PageCache) Write(off, n units.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative write length %d", n))
	}
	if c.params.WriteThrough {
		c.engine.Advance(units.TransferTime(n, c.params.MemBW))
		end := c.disk.Submit(OpWrite, off, n, nil)
		c.engine.AdvanceTo(end)
		c.cached.Add(Range{off, off + n})
		c.stats.BytesWritten += n
		c.stats.WritebackBytes += n
		return
	}
	// Buffer in batch-sized chunks so dirty-limit throttling interleaves
	// with the copy, as the kernel's per-page balance_dirty_pages does.
	for n > 0 {
		take := min64(n, c.params.BatchBytes)
		c.throttle(take)
		c.engine.Advance(units.TransferTime(take, c.params.MemBW))
		r := Range{off, off + take}
		c.cached.Add(r)
		c.dirty.Add(r)
		if c.params.FIFOWriteback {
			c.fifo = append(c.fifo, r)
		}
		c.stats.BytesWritten += take
		c.maybeStartWriteback()
		off += take
		n -= take
	}
}

// throttle blocks the writer while the dirty set exceeds DirtyLimit,
// mirroring balance_dirty_pages.
func (c *PageCache) throttle(incoming units.Bytes) {
	throttled := false
	for c.dirty.Bytes()+incoming > c.params.DirtyLimit {
		throttled = true
		c.startWriteback()
		free := c.disk.FreeAt()
		if free <= c.engine.Now() {
			break // nothing in flight and nothing to drain
		}
		c.engine.AdvanceTo(free)
	}
	if throttled {
		c.stats.Throttles++
	}
}

// Read fetches [off, off+n): RAM-resident portions cost memcpy time,
// the rest is read from media (and becomes resident). Blocks until the
// data is available.
func (c *PageCache) Read(off, n units.Bytes) {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative read length %d", n))
	}
	if n == 0 {
		return
	}
	r := Range{off, off + n}
	gaps := c.dirtyAwareGaps(r)
	var missBytes units.Bytes
	var last sim.Time
	for _, g := range gaps {
		missBytes += g.Len()
		last = c.disk.Submit(OpRead, g.Start, g.Len(), nil)
	}
	if last > c.engine.Now() {
		c.engine.AdvanceTo(last)
	}
	c.cached.Add(r)
	hit := n - missBytes
	c.stats.ReadHits += hit
	c.stats.ReadMisses += missBytes
	// Delivering to the caller's buffer costs one pass at memory speed.
	c.engine.Advance(units.TransferTime(n, c.params.MemBW))
}

// dirtyAwareGaps returns the sub-ranges of r that must come from media.
func (c *PageCache) dirtyAwareGaps(r Range) []Range {
	return c.cached.Gaps(r)
}

// Sync drains the entire dirty set to media and blocks until the media
// is quiet — the fsync/sync(2) the proxy app issues per checkpoint and
// between phases.
func (c *PageCache) Sync() {
	c.stats.Syncs++
	for !c.dirty.Empty() || c.inflight {
		c.startWriteback()
		free := c.disk.FreeAt()
		if free <= c.engine.Now() {
			break
		}
		c.engine.AdvanceTo(free)
	}
}

// SyncRanges drains only the given ranges (file-level fsync). Other
// dirty data stays buffered.
func (c *PageCache) SyncRanges(ranges []Range) {
	c.stats.Syncs++
	for {
		var pending units.Bytes
		for _, r := range ranges {
			for _, seg := range c.dirty.Intersect(r) {
				pending += seg.Len()
			}
		}
		if pending == 0 && !c.inflight {
			return
		}
		if pending > 0 && !c.inflight {
			// Drain the requested ranges directly, elevator order.
			var batch []Range
			for _, r := range ranges {
				batch = append(batch, c.dirty.Intersect(r)...)
			}
			c.submitBatch(batch)
		}
		free := c.disk.FreeAt()
		if free <= c.engine.Now() {
			return
		}
		c.engine.AdvanceTo(free)
	}
}

// DropCaches evicts clean pages (echo 1 > drop_caches). Dirty pages
// stay resident, as on Linux; call Sync first to empty the cache fully.
func (c *PageCache) DropCaches() {
	clean := c.cached.Clone()
	for _, d := range c.dirty.Ranges() {
		clean.Remove(d)
	}
	for _, r := range clean.Ranges() {
		c.cached.Remove(r)
	}
}

// Invalidate drops a range from the cache entirely (file deletion).
// Dirty data in the range is discarded without reaching media.
func (c *PageCache) Invalidate(r Range) {
	c.cached.Remove(r)
	c.dirty.Remove(r)
}

// maybeStartWriteback kicks the daemon when dirty exceeds the
// background threshold.
func (c *PageCache) maybeStartWriteback() {
	if c.dirty.Bytes() > c.params.BackgroundDirty {
		c.startWriteback()
	}
}

// startWriteback submits one write-back batch if none is in flight:
// an elevator sweep by default, insertion order under FIFOWriteback.
func (c *PageCache) startWriteback() {
	if c.inflight || c.dirty.Empty() {
		return
	}
	var batch []Range
	if c.params.FIFOWriteback {
		batch = c.takeFIFO(c.params.BatchBytes)
	}
	if len(batch) == 0 {
		// Elevator sweep; also the FIFO fallback when the insertion
		// queue has been consumed but dirty data remains (e.g. after a
		// partial SyncRanges), so Sync always terminates.
		batch = c.dirty.TakeFrom(c.sweepPos, c.params.BatchBytes)
	}
	if len(batch) == 0 {
		return
	}
	c.submitBatchTaken(batch)
}

// takeFIFO pops still-dirty segments from the insertion queue up to
// the budget and removes them from the dirty set.
func (c *PageCache) takeFIFO(budget units.Bytes) []Range {
	var batch []Range
	for budget > 0 && len(c.fifo) > 0 {
		head := c.fifo[0]
		c.fifo = c.fifo[1:]
		segs := c.dirty.Intersect(head)
		for i, seg := range segs {
			if seg.Len() > budget {
				// Split: keep the remainder at the queue head.
				rest := Range{seg.Start + budget, seg.End}
				seg = Range{seg.Start, seg.Start + budget}
				c.fifo = append([]Range{rest}, c.fifo...)
			}
			c.dirty.Remove(seg)
			batch = append(batch, seg)
			budget -= seg.Len()
			if budget <= 0 {
				// Re-queue any untouched sibling segments.
				if i+1 < len(segs) {
					c.fifo = append(append([]Range(nil), segs[i+1:]...), c.fifo...)
				}
				break
			}
		}
	}
	return batch
}

// submitBatch removes the given ranges from the dirty set and writes
// them out.
func (c *PageCache) submitBatch(batch []Range) {
	for _, r := range batch {
		c.dirty.Remove(r)
	}
	c.submitBatchTaken(batch)
}

// submitBatchTaken writes ranges (already removed from dirty) to media
// in ascending offset order and arms the completion callback.
func (c *PageCache) submitBatchTaken(batch []Range) {
	c.inflight = true
	var end sim.Time
	for _, r := range batch {
		c.stats.WritebackBytes += r.Len()
		end = c.disk.Submit(OpWrite, r.Start, r.Len(), nil)
		c.sweepPos = r.End
	}
	c.engine.At(end, func() {
		c.inflight = false
		// Keep draining while above the low-water mark.
		if c.dirty.Bytes() > c.params.LowWater {
			c.startWriteback()
		}
	})
}

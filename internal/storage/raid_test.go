package storage

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

func testRAID(t *testing.T, n int) (*sim.Engine, *StripedDisk) {
	t.Helper()
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	return e, NewStripedDisk(e, n, p, 256*units.KiB, nil, xrand.New(1))
}

func TestRAIDCapacity(t *testing.T) {
	_, r := testRAID(t, 4)
	if r.Capacity() != 4*SeagateHDD().Capacity {
		t.Errorf("Capacity = %v", r.Capacity())
	}
}

func TestRAIDStripesAcrossMembers(t *testing.T) {
	e, r := testRAID(t, 4)
	// 1 MiB spans exactly 4 stripes of 256 KiB: one per member.
	end := r.Submit(OpWrite, 0, units.MiB, nil)
	e.AdvanceTo(end)
	for i, m := range r.Members() {
		if m.Stats().Writes != 1 {
			t.Errorf("member %d got %d writes, want 1", i, m.Stats().Writes)
		}
		if m.Stats().BytesWritten != 256*units.KiB {
			t.Errorf("member %d wrote %v, want 256 KiB", i, m.Stats().BytesWritten)
		}
	}
}

func TestRAIDParallelSpeedupOnStreams(t *testing.T) {
	// A long stream over 4 members should take ~1/4 the single-disk
	// transfer time (positioning amortized away).
	const size = 256 * units.MiB
	e1, r1 := testRAID(t, 1)
	end := r1.Submit(OpRead, 0, size, nil)
	e1.AdvanceTo(end)
	single := float64(end)

	e4, r4 := testRAID(t, 4)
	end = r4.Submit(OpRead, 0, size, nil)
	e4.AdvanceTo(end)
	quad := float64(end)

	ratio := single / quad
	if ratio < 3.0 || ratio > 4.5 {
		t.Errorf("RAID-0 x4 stream speedup = %.2fx, want ~4x", ratio)
	}
}

func TestRAIDCompletionIsSlowestMember(t *testing.T) {
	e, r := testRAID(t, 2)
	// Pre-busy member 0 with a long transfer, then submit a striped
	// request: its completion must wait for member 0.
	m0End := r.Members()[0].Submit(OpWrite, 0, 64*units.MiB, nil)
	end := r.Submit(OpWrite, 0, 512*units.KiB, nil)
	if end < m0End {
		t.Errorf("striped completion %v before busy member frees at %v", end, m0End)
	}
	e.AdvanceTo(end)
	if !r.Idle() {
		t.Error("array not idle after completion")
	}
}

func TestRAIDDoneCallback(t *testing.T) {
	e, r := testRAID(t, 3)
	var doneAt sim.Time = -1
	end := r.Submit(OpWrite, 0, 2*units.MiB, func() { doneAt = e.Now() })
	e.AdvanceTo(end + 1)
	if doneAt != end {
		t.Errorf("done at %v, want %v", doneAt, end)
	}
}

func TestRAIDOutOfBoundsPanics(t *testing.T) {
	_, r := testRAID(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("oversized request did not panic")
		}
	}()
	r.Submit(OpRead, r.Capacity()-units.KiB, units.MiB, nil)
}

func TestRAIDValidation(t *testing.T) {
	e := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero members did not panic")
		}
	}()
	NewStripedDisk(e, 0, SeagateHDD(), units.MiB, nil, xrand.New(1))
}

func TestRAIDPowerDomains(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	p := SeagateHDD()
	p.DeterministicRotation = true
	r := NewStripedDisk(e, 4, p, 256*units.KiB, bus, xrand.New(1))
	// Four spinning members: 4x idle power on the bus.
	want := 4 * float64(p.IdlePower)
	if got := float64(bus.SystemPower()); math.Abs(got-want) > 1e-9 {
		t.Errorf("array idle power = %v, want %v", got, want)
	}
	end := r.Submit(OpRead, 0, 4*units.MiB, nil)
	e.AdvanceTo(end - 0.001)
	if got := float64(bus.SystemPower()); got <= want {
		t.Error("array power did not rise during striped transfer")
	}
}

func TestRAIDWorksUnderFilesystem(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	arr := NewStripedDisk(e, 4, p, 256*units.KiB, nil, xrand.New(1))
	cache := NewPageCache(e, arr, smallCacheParams())
	fs := NewFileSystem(e, arr, cache, DefaultFS(), xrand.New(2))
	f := fs.Create("striped", AllocContiguous)
	data := []byte("stripe me please, across four spindles")
	f.WriteAt(data, 0)
	f.Fsync()
	fs.DropCaches()
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if string(got) != string(data) {
		t.Error("round trip through RAID-backed fs failed")
	}
	if arr.Stats().Writes == 0 {
		t.Error("no member writes recorded")
	}
}

package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/units"
)

// TestFaultLatencySpike checks that an armed injector stretches disk
// service time by its spike and counts it, while the stored bytes stay
// untouched.
func TestFaultLatencySpike(t *testing.T) {
	e, _, _, fs := testFS(t)
	clean := fs.Create("clean", AllocContiguous)
	data := make([]byte, 256*units.KiB)
	for i := range data {
		data[i] = byte(i)
	}
	if err := clean.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	clean.Fsync()
	fs.DropCaches()
	baseline := e.Now()
	buf := make([]byte, len(data))
	if err := clean.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cleanRead := e.Now() - baseline

	// Second, identical filesystem with every disk access spiking.
	e2, d2, _, fs2 := testFS(t)
	inj := fault.New(fault.Config{Seed: 7, Latency: 1, Spike: 5})
	d2.SetFaults(inj)
	f2 := fs2.Create("spiky", AllocContiguous)
	if err := f2.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	f2.Fsync()
	fs2.DropCaches()
	start := e2.Now()
	if err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	spiky := e2.Now() - start
	if spiky <= cleanRead {
		t.Errorf("spiked read took %v, clean read %v; want slower", spiky, cleanRead)
	}
	st := inj.Stats()
	if st.LatencySpikes == 0 || st.SpikeTime <= 0 {
		t.Errorf("spike stats not recorded: %+v", st)
	}
	if !bytes.Equal(buf, data) {
		t.Error("latency faults must not alter data")
	}
}

// TestFaultReadWriteErrors checks that transient errors surface as
// fault.ErrTransient, that a failed write leaves the file unmodified,
// and that a failed read leaves the destination unfilled.
func TestFaultReadWriteErrors(t *testing.T) {
	_, _, _, fs := testFS(t)
	inj := fault.New(fault.Config{Seed: 3, ReadErr: 1, WriteErr: 1})
	data := []byte("payload under test")

	// Write the file before arming the injector so reads have content.
	f := fs.Create("victim", AllocContiguous)
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(inj)

	if err := f.WriteAt([]byte("overwrite"), 0); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("WriteAt error = %v, want ErrTransient", err)
	}
	if err := f.AppendSparse(units.KiB); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("AppendSparse error = %v, want ErrTransient", err)
	}
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("ReadAt error = %v, want ErrTransient", err)
	}
	if !bytes.Equal(got, make([]byte, len(data))) {
		t.Error("failed read must not fill the destination buffer")
	}

	// Disarm and verify the failed write mutated nothing.
	fs.SetFaults(nil)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("after failed write, contents = %q, want %q", got, data)
	}
	st := inj.Stats()
	if st.ReadErrors == 0 || st.WriteErrors == 0 {
		t.Errorf("error stats not recorded: %+v", st)
	}
}

// TestFaultBitRotDeliveredOnly checks that bit-rot corrupts only the
// delivered buffer: the stored copy stays pristine, so a retry without
// rot returns the original bytes — the property core's read-retry
// recovery depends on.
func TestFaultBitRotDeliveredOnly(t *testing.T) {
	_, _, _, fs := testFS(t)
	data := make([]byte, 8*units.KiB)
	for i := range data {
		data[i] = byte(i * 13)
	}
	f := fs.Create("rotting", AllocContiguous)
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	fs.SetFaults(fault.New(fault.Config{Seed: 11, BitRot: 1}))
	got := make([]byte, len(data))
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("certain bit-rot delivered clean bytes")
	}

	fs.SetFaults(nil)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("stored data was corrupted; rot must hit the delivered copy only")
	}
}

// TestFaultDisabledIdentical checks the determinism guarantee: a nil
// injector and no injector produce bit-identical filesystem behavior.
func TestFaultDisabledIdentical(t *testing.T) {
	run := func(install bool) (units.Seconds, []byte) {
		e, _, _, fs := testFS(t)
		if install {
			fs.SetFaults(nil)
		}
		f := fs.Create("same", AllocContiguous)
		data := make([]byte, 64*units.KiB)
		for i := range data {
			data[i] = byte(i * 3)
		}
		if err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		f.Fsync()
		fs.DropCaches()
		out := make([]byte, len(data))
		if err := f.ReadAt(out, 0); err != nil {
			t.Fatal(err)
		}
		return e.Now(), out
	}
	t1, b1 := run(false)
	t2, b2 := run(true)
	if t1 != t2 || !bytes.Equal(b1, b2) {
		t.Errorf("nil injector changed behavior: %v vs %v", t1, t2)
	}
}

package storage

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Op distinguishes media reads from media writes.
type Op int

// Disk operations.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// DiskParams describes a rotating disk. The defaults (SeagateHDD)
// reproduce the paper's Seagate 500 GB 7200 rpm drive as calibrated
// against Table III.
type DiskParams struct {
	Capacity units.Bytes
	RPM      float64
	// MinSeek is the track-to-track seek; MaxSeek the full-stroke seek.
	// Seek time grows with the square root of the fractional distance,
	// the standard first-order HDD seek curve. SettleTime is the fixed
	// head-settle cost paid on every repositioning regardless of
	// distance — it dominates short random hops (a 16 KiB random read
	// inside a 4 GiB file costs ~8.5 ms, Table III).
	MinSeek, MaxSeek, SettleTime units.Seconds
	// SeqReadBW / SeqWriteBW are streaming media bandwidths in bytes/s.
	SeqReadBW, SeqWriteBW float64
	// SequentialWindow is how close a request must start to the previous
	// request's end to count as sequential (no seek, no rotational miss).
	SequentialWindow units.Bytes

	// IdlePower is drawn whenever the disk spins (watts).
	IdlePower units.Watts
	// ReadXferDyn / WriteXferDyn are added while the head streams data.
	ReadXferDyn, WriteXferDyn units.Watts
	// SeekDyn is added while the arm moves / waits for rotation.
	SeekDyn units.Watts

	// DeterministicRotation replaces the sampled rotational latency with
	// its mean (half a revolution), for exactly reproducible unit tests.
	DeterministicRotation bool

	// StandbyAfter spins the platters down after that much idle time
	// (0 disables spindown). StandbyPower is drawn while spun down;
	// SpinupTime is added to the next request's positioning.
	StandbyAfter units.Seconds
	StandbyPower units.Watts
	SpinupTime   units.Seconds
}

// SeagateHDD returns parameters calibrated to the paper's drive:
// 500 GB, 7200 rpm, ~4.2 ms average seek, 120/159 MB/s streaming
// read/write, and dynamic power levels that regenerate Table III's
// full-system rows above the 104.5 W node idle.
func SeagateHDD() DiskParams {
	return DiskParams{
		Capacity:         500 * 1000 * units.MiB, // marketing 500 GB
		RPM:              7200,
		MinSeek:          0.5 * units.Millisecond,
		MaxSeek:          8.1 * units.Millisecond,
		SettleTime:       3.0 * units.Millisecond,
		SeqReadBW:        120e6,
		SeqWriteBW:       159e6,
		SequentialWindow: 256 * units.KiB,
		IdlePower:        5.0,
		ReadXferDyn:      12.5,
		WriteXferDyn:     10.2,
		SeekDyn:          2.5,
	}
}

// SamsungSSD returns parameters for a SATA consumer SSD of the era —
// the paper's Future Work asks how the conclusions shift on
// flash-based devices. "Seek" collapses to a fixed ~60 µs lookup, there
// is no rotational latency to speak of, and dynamic power is a few
// watts.
func SamsungSSD() DiskParams {
	return DiskParams{
		Capacity:         512 * 1000 * units.MiB,
		RPM:              6_000_000, // 10 µs "revolution": negligible rotational wait
		MinSeek:          0.01 * units.Millisecond,
		MaxSeek:          0.02 * units.Millisecond,
		SettleTime:       0.05 * units.Millisecond,
		SeqReadBW:        500e6,
		SeqWriteBW:       450e6,
		SequentialWindow: 256 * units.KiB,
		IdlePower:        1.2,
		ReadXferDyn:      2.8,
		WriteXferDyn:     3.8,
		SeekDyn:          0.5,
	}
}

// DiskStats aggregates what the disk has done, for attribution and
// the Table III "disk dynamic energy" row.
type DiskStats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten units.Bytes
	Seeks                   uint64
	SeekTime                units.Seconds
	TransferTime            units.Seconds
	Spinups                 uint64
	// SeqBytes / RandBytes classify traffic by access pattern (a
	// request is random when it required a seek) — the observation the
	// Future Work runtime advisor consumes.
	SeqBytes, RandBytes units.Bytes
	// MinOffset/MaxOffset bound the touched region (the advisor's span).
	MinOffset, MaxOffset units.Bytes
}

// RandomFraction returns the fraction of bytes moved by seeking
// requests.
func (s DiskStats) RandomFraction() float64 {
	total := s.SeqBytes + s.RandBytes
	if total == 0 {
		return 0
	}
	return float64(s.RandBytes) / float64(total)
}

// MeanOpSize returns the average request size.
func (s DiskStats) MeanOpSize() units.Bytes {
	ops := s.Reads + s.Writes
	if ops == 0 {
		return 0
	}
	return (s.BytesRead + s.BytesWritten) / units.Bytes(ops)
}

// Device is a block store the page cache and filesystem can run on: a
// raw disk, a striped array (RAID-0), or an NVRAM burst buffer over a
// disk.
type Device interface {
	// Submit enqueues a request and returns its completion time; done
	// (optional) runs then. Submit never advances the clock.
	Submit(op Op, offset, n units.Bytes, done func()) sim.Time
	// FreeAt returns when the device next becomes idle.
	FreeAt() sim.Time
	// Idle reports whether no work is queued or in flight.
	Idle() bool
	// Capacity returns the addressable size.
	Capacity() units.Bytes
}

// Disk is the mechanical disk model. All requests are serialized FCFS
// on the media resource; the head position advances with each request,
// and seek + rotational latency are charged when a request does not
// continue where the previous one ended.
type Disk struct {
	params DiskParams
	engine *sim.Engine
	media  *sim.Resource
	domain *power.Domain
	rng    *xrand.Rand

	// head is the byte offset the head will be at after the last
	// *submitted* request completes (valid because FCFS preserves
	// submission order).
	head units.Bytes

	// faults, when set, adds latency spikes to request positioning.
	faults *fault.Injector

	standby   bool
	standbyEv *sim.Event

	stats DiskStats
}

// NewDisk creates a disk on engine. domain is the disk's power domain
// (may be nil in pure-timing tests); rng drives rotational latency
// sampling and may be nil when DeterministicRotation is set.
func NewDisk(engine *sim.Engine, params DiskParams, domain *power.Domain, rng *xrand.Rand) *Disk {
	if params.Capacity <= 0 || params.RPM <= 0 {
		panic("storage: disk needs positive capacity and RPM")
	}
	if params.SeqReadBW <= 0 || params.SeqWriteBW <= 0 {
		panic("storage: disk needs positive bandwidths")
	}
	if rng == nil && !params.DeterministicRotation {
		panic("storage: sampled rotation needs an rng")
	}
	d := &Disk{
		params: params,
		engine: engine,
		media:  sim.NewResource(engine),
		domain: domain,
		rng:    rng,
	}
	if domain != nil {
		domain.SetLevel(params.IdlePower)
	}
	return d
}

// Params returns the disk's configuration.
func (d *Disk) Params() DiskParams { return d.params }

// SetFaults attaches a fault injector; nil detaches it.
func (d *Disk) SetFaults(inj *fault.Injector) { d.faults = inj }

// Capacity returns the addressable size (Device interface).
func (d *Disk) Capacity() units.Bytes { return d.params.Capacity }

var _ Device = (*Disk)(nil)

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() DiskStats { return d.stats }

// RevolutionTime returns the time of one platter revolution.
func (d *Disk) RevolutionTime() units.Seconds {
	return units.Seconds(60 / d.params.RPM)
}

// seekTime returns the arm travel time for a byte-distance move:
// MinSeek + (MaxSeek-MinSeek) * sqrt(distance/capacity).
func (d *Disk) seekTime(distance units.Bytes) units.Seconds {
	if distance < 0 {
		distance = -distance
	}
	if distance == 0 {
		return 0
	}
	frac := float64(distance) / float64(d.params.Capacity)
	return d.params.SettleTime + d.params.MinSeek +
		units.Seconds(float64(d.params.MaxSeek-d.params.MinSeek)*math.Sqrt(frac))
}

// rotationalLatency returns the wait for the target sector to come
// under the head: uniform in [0, revolution), or exactly half a
// revolution in deterministic mode.
func (d *Disk) rotationalLatency() units.Seconds {
	rev := d.RevolutionTime()
	if d.params.DeterministicRotation {
		return rev / 2
	}
	return units.Seconds(d.rng.Float64()) * rev
}

// bandwidth returns the streaming rate for the operation.
func (d *Disk) bandwidth(op Op) float64 {
	if op == OpRead {
		return d.params.SeqReadBW
	}
	return d.params.SeqWriteBW
}

// ServiceTime previews the positioning + transfer cost of a request
// given the current head position, without submitting it.
//
// Three regimes:
//   - exactly sequential (offset == head): pure transfer;
//   - a short forward gap (<= SequentialWindow): the platter must still
//     rotate past the gap, so the gap is charged at media rate — this is
//     what makes hole-y elevator write-back slower than truly sequential
//     streaming (the paper's 31 s vs 27 s for random vs sequential
//     writes);
//   - anything else: arm seek plus rotational latency.
func (d *Disk) ServiceTime(op Op, offset, n units.Bytes) (positioning, transfer units.Seconds) {
	positioning, transfer, _ = d.serviceTimeClassified(op, offset, n)
	return positioning, transfer
}

// serviceTimeClassified additionally reports whether the request is
// seek-dominated — positioning cost exceeding transfer cost — which is
// the access-pattern classification the Future Work advisor observes.
// A long stream that merely begins with one seek stays "sequential".
func (d *Disk) serviceTimeClassified(op Op, offset, n units.Bytes) (positioning, transfer units.Seconds, seeked bool) {
	gap := offset - d.head
	arm := false
	switch {
	case gap == 0:
		// sequential, no positioning
	case gap > 0 && gap <= d.params.SequentialWindow:
		positioning = units.TransferTime(gap, d.bandwidth(op))
	default:
		if gap < 0 {
			gap = -gap
		}
		positioning = d.seekTime(gap) + d.rotationalLatency()
		arm = true
	}
	transfer = units.TransferTime(n, d.bandwidth(op))
	seeked = arm && positioning > transfer
	return positioning, transfer, seeked
}

// Submit enqueues a media request FCFS and returns its completion time.
// Power transitions (seek level, transfer level, back to idle) are
// scheduled on the disk's domain. If done is non-nil it runs at
// completion. Submit never advances the clock; callers that must wait
// pass the returned end time to Engine.AdvanceTo.
func (d *Disk) Submit(op Op, offset, n units.Bytes, done func()) (end sim.Time) {
	if offset < 0 || n < 0 || offset+n > d.params.Capacity {
		panic(fmt.Sprintf("storage: request [%d,+%d) outside disk capacity %d", offset, n, d.params.Capacity))
	}
	positioning, transfer, seeked := d.serviceTimeClassified(op, offset, n)
	if spike := d.faults.LatencySpike(); spike > 0 {
		// A recalibration pass / remapped-sector retry train: pure extra
		// head-positioning time, charged at seek power like any other
		// repositioning.
		positioning += spike
	}
	if d.standby {
		positioning += d.params.SpinupTime
		d.standby = false
		d.stats.Spinups++
	}
	if d.standbyEv != nil {
		d.standbyEv.Cancel()
		d.standbyEv = nil
	}
	d.head = offset + n

	start, end := d.media.Submit(positioning+transfer, done)

	if positioning > 0 {
		d.stats.Seeks++
		d.stats.SeekTime += positioning
	}
	d.stats.TransferTime += transfer
	if op == OpRead {
		d.stats.Reads++
		d.stats.BytesRead += n
	} else {
		d.stats.Writes++
		d.stats.BytesWritten += n
	}
	if seeked {
		d.stats.RandBytes += n
	} else {
		d.stats.SeqBytes += n
	}
	if d.stats.MaxOffset == 0 || offset < d.stats.MinOffset {
		d.stats.MinOffset = offset
	}
	if offset+n > d.stats.MaxOffset {
		d.stats.MaxOffset = offset + n
	}

	if d.domain != nil {
		d.schedulePower(op, start, positioning, transfer)
	}
	if d.params.StandbyAfter > 0 {
		d.armStandby(end)
	}
	return end
}

// armStandby schedules the spindown check after the request completes.
func (d *Disk) armStandby(end sim.Time) {
	at := end + d.params.StandbyAfter
	d.standbyEv = d.engine.At(at, func() {
		if d.media.FreeAt() > end {
			return // more work arrived
		}
		d.standby = true
		if d.domain != nil {
			d.domain.SetLevel(d.params.StandbyPower)
		}
	})
}

// Standby reports whether the platters are spun down.
func (d *Disk) Standby() bool { return d.standby }

// schedulePower sets the disk domain through seek -> transfer -> idle.
// FCFS serialization guarantees the phases of queued requests do not
// overlap, so absolute SetLevel calls are safe.
func (d *Disk) schedulePower(op Op, start sim.Time, positioning, transfer units.Seconds) {
	xfer := d.params.ReadXferDyn
	if op == OpWrite {
		xfer = d.params.WriteXferDyn
	}
	idle := d.params.IdlePower
	at := func(t sim.Time, level units.Watts) {
		if t <= d.engine.Now() {
			d.domain.SetLevel(level)
			return
		}
		d.engine.At(t, func() { d.domain.SetLevel(level) })
	}
	if positioning > 0 {
		at(start, idle+d.params.SeekDyn)
	}
	at(start+positioning, idle+xfer)
	end := start + positioning + transfer
	d.engine.At(end, func() {
		// Only drop to idle if no later request has queued behind us.
		if d.media.FreeAt() <= end {
			d.domain.SetLevel(idle)
		}
	})
}

// Idle reports whether the media has no pending work.
func (d *Disk) Idle() bool { return d.media.Idle() }

// FreeAt returns when the media next becomes idle.
func (d *Disk) FreeAt() sim.Time { return d.media.FreeAt() }

// BusyTime returns cumulative media busy time.
func (d *Disk) BusyTime() units.Seconds { return d.media.BusyTime() }

// Utilization returns media busy time divided by elapsed time.
func (d *Disk) Utilization() float64 {
	now := d.engine.Now()
	if now <= 0 {
		return 0
	}
	return float64(d.media.BusyTime()) / float64(now)
}

package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func rs(pairs ...units.Bytes) *RangeSet {
	s := &RangeSet{}
	for i := 0; i < len(pairs); i += 2 {
		s.Add(Range{pairs[i], pairs[i+1]})
	}
	return s
}

func equalRanges(a []Range, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangeBasics(t *testing.T) {
	r := Range{10, 20}
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Empty() {
		t.Error("non-empty range reported Empty")
	}
	if !(Range{20, 20}).Empty() {
		t.Error("zero-length range not Empty")
	}
	if !r.Overlaps(Range{19, 25}) || r.Overlaps(Range{20, 25}) {
		t.Error("Overlaps boundary wrong (half-open)")
	}
	if !r.Contains(Range{10, 20}) || r.Contains(Range{10, 21}) {
		t.Error("Contains wrong")
	}
}

func TestAddDisjoint(t *testing.T) {
	s := rs(10, 20, 40, 50)
	if s.Len() != 2 || s.Bytes() != 20 {
		t.Errorf("Len=%d Bytes=%d, want 2/20", s.Len(), s.Bytes())
	}
}

func TestAddMergesOverlap(t *testing.T) {
	s := rs(10, 20, 15, 30)
	if !equalRanges(s.Ranges(), []Range{{10, 30}}) {
		t.Errorf("ranges = %v, want [10,30)", s.Ranges())
	}
}

func TestAddMergesAdjacent(t *testing.T) {
	s := rs(10, 20, 20, 30)
	if !equalRanges(s.Ranges(), []Range{{10, 30}}) {
		t.Errorf("adjacent ranges not merged: %v", s.Ranges())
	}
}

func TestAddBridgesMany(t *testing.T) {
	s := rs(0, 10, 20, 30, 40, 50)
	s.Add(Range{5, 45})
	if !equalRanges(s.Ranges(), []Range{{0, 50}}) {
		t.Errorf("bridge merge = %v, want [0,50)", s.Ranges())
	}
}

func TestAddEmptyIgnored(t *testing.T) {
	s := rs()
	s.Add(Range{10, 10})
	s.Add(Range{10, 5})
	if !s.Empty() {
		t.Errorf("empty adds produced %v", s.Ranges())
	}
}

func TestAddInsertInMiddle(t *testing.T) {
	s := rs(0, 10, 100, 110)
	s.Add(Range{50, 60})
	if !equalRanges(s.Ranges(), []Range{{0, 10}, {50, 60}, {100, 110}}) {
		t.Errorf("middle insert = %v", s.Ranges())
	}
}

func TestRemoveSplits(t *testing.T) {
	s := rs(0, 100)
	s.Remove(Range{40, 60})
	if !equalRanges(s.Ranges(), []Range{{0, 40}, {60, 100}}) {
		t.Errorf("split remove = %v", s.Ranges())
	}
}

func TestRemoveEdges(t *testing.T) {
	s := rs(10, 30)
	s.Remove(Range{0, 15})
	s.Remove(Range{25, 40})
	if !equalRanges(s.Ranges(), []Range{{15, 25}}) {
		t.Errorf("edge remove = %v", s.Ranges())
	}
}

func TestRemoveWhole(t *testing.T) {
	s := rs(10, 30, 50, 60)
	s.Remove(Range{0, 100})
	if !s.Empty() {
		t.Errorf("remove-all left %v", s.Ranges())
	}
}

func TestRemoveNoOverlap(t *testing.T) {
	s := rs(10, 20)
	s.Remove(Range{30, 40})
	if !equalRanges(s.Ranges(), []Range{{10, 20}}) {
		t.Errorf("no-op remove changed set: %v", s.Ranges())
	}
}

func TestContains(t *testing.T) {
	s := rs(10, 20, 30, 40)
	cases := []struct {
		r    Range
		want bool
	}{
		{Range{10, 20}, true},
		{Range{12, 18}, true},
		{Range{10, 21}, false},
		{Range{15, 35}, false},
		{Range{25, 26}, false},
		{Range{5, 5}, true}, // empty range trivially contained
	}
	for _, c := range cases {
		if got := s.Contains(c.r); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	s := rs(10, 20, 30, 40)
	got := s.Intersect(Range{15, 35})
	if !equalRanges(got, []Range{{15, 20}, {30, 35}}) {
		t.Errorf("Intersect = %v", got)
	}
	if out := s.Intersect(Range{21, 29}); len(out) != 0 {
		t.Errorf("Intersect of gap = %v", out)
	}
}

func TestGaps(t *testing.T) {
	s := rs(10, 20, 30, 40)
	got := s.Gaps(Range{0, 50})
	if !equalRanges(got, []Range{{0, 10}, {20, 30}, {40, 50}}) {
		t.Errorf("Gaps = %v", got)
	}
	if out := s.Gaps(Range{12, 18}); len(out) != 0 {
		t.Errorf("Gaps inside covered = %v", out)
	}
	full := rs()
	if out := full.Gaps(Range{5, 10}); !equalRanges(out, []Range{{5, 10}}) {
		t.Errorf("Gaps of empty set = %v", out)
	}
}

func TestTakeFromBudget(t *testing.T) {
	s := rs(0, 100, 200, 300, 400, 500)
	taken := s.TakeFrom(150, 150)
	// Sweep starts at 200, takes [200,300) then 50 bytes of [400,450).
	if !equalRanges(taken, []Range{{200, 300}, {400, 450}}) {
		t.Errorf("TakeFrom = %v", taken)
	}
	if !equalRanges(s.Ranges(), []Range{{0, 100}, {450, 500}}) {
		t.Errorf("remaining = %v", s.Ranges())
	}
}

func TestTakeFromWrapsAround(t *testing.T) {
	s := rs(0, 50, 900, 950)
	taken := s.TakeFrom(800, 100)
	if !equalRanges(taken, []Range{{900, 950}, {0, 50}}) {
		t.Errorf("wrap TakeFrom = %v", taken)
	}
	if !s.Empty() {
		t.Errorf("remaining after wrap = %v", s.Ranges())
	}
}

func TestTakeFromZeroBudget(t *testing.T) {
	s := rs(0, 10)
	if taken := s.TakeFrom(0, 0); taken != nil {
		t.Errorf("zero budget took %v", taken)
	}
}

func TestClone(t *testing.T) {
	s := rs(0, 10)
	c := s.Clone()
	c.Add(Range{20, 30})
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: s=%v c=%v", s.Ranges(), c.Ranges())
	}
}

// invariant checks sortedness, non-overlap, non-adjacency, non-emptiness.
func invariant(s *RangeSet) bool {
	rs := s.Ranges()
	for i, r := range rs {
		if r.Empty() {
			return false
		}
		if i > 0 && rs[i-1].End >= r.Start {
			return false
		}
	}
	return true
}

// Property: after arbitrary interleaved Add/Remove operations the set
// invariant holds and membership matches a brute-force bitmap model.
func TestRangeSetModelProperty(t *testing.T) {
	const universe = 256
	f := func(ops []struct {
		Add        bool
		Start, Len uint8
	}) bool {
		s := &RangeSet{}
		var model [universe]bool
		for _, op := range ops {
			start := units.Bytes(op.Start)
			end := start + units.Bytes(op.Len%32)
			if end > universe {
				end = universe
			}
			r := Range{start, end}
			if op.Add {
				s.Add(r)
				for b := start; b < end; b++ {
					model[b] = true
				}
			} else {
				s.Remove(r)
				for b := start; b < end; b++ {
					model[b] = false
				}
			}
			if !invariant(s) {
				return false
			}
		}
		// Compare byte-level membership.
		var want units.Bytes
		for b := 0; b < universe; b++ {
			if model[b] {
				want++
				if !s.Contains(Range{units.Bytes(b), units.Bytes(b + 1)}) {
					return false
				}
			} else if s.Contains(Range{units.Bytes(b), units.Bytes(b + 1)}) {
				return false
			}
		}
		return s.Bytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: TakeFrom removes exactly what it returns, never exceeds the
// budget unless a single range bounds it, and preserves the invariant.
func TestTakeFromProperty(t *testing.T) {
	f := func(seeds []uint8, from, budget uint8) bool {
		s := &RangeSet{}
		for _, v := range seeds {
			start := units.Bytes(v) * 3
			s.Add(Range{start, start + 2})
		}
		before := s.Bytes()
		taken := s.TakeFrom(units.Bytes(from), units.Bytes(budget))
		var takenBytes units.Bytes
		for _, r := range taken {
			takenBytes += r.Len()
			if s.Intersect(r) != nil {
				return false // taken ranges must be gone from the set
			}
		}
		if takenBytes > units.Bytes(budget) {
			return false
		}
		return invariant(s) && s.Bytes() == before-takenBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

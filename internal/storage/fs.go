package storage

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// AllocPolicy controls where a file's extents land on the platter.
type AllocPolicy int

// Allocation policies.
const (
	// AllocContiguous packs extents back-to-back (a fresh filesystem,
	// or one that has been reorganized by the §V-D technique).
	AllocContiguous AllocPolicy = iota
	// AllocScattered places each extent at a random free location — an
	// aged, fragmented filesystem, the "random I/O" regime of Table III.
	AllocScattered
)

func (p AllocPolicy) String() string {
	if p == AllocContiguous {
		return "contiguous"
	}
	return "scattered"
}

// FSParams configures the filesystem model.
type FSParams struct {
	// ExtentSize is the allocation granularity.
	ExtentSize units.Bytes
	// JournalStart / JournalSize locate the metadata journal region.
	// Each fsync of freshly-allocated extents commits one journal
	// record per extent, seeking between the data and journal regions
	// exactly like ext3/4 in ordered mode under chunked checkpointing.
	JournalStart, JournalSize units.Bytes
	// JournalRecord is the size of one journal commit record.
	JournalRecord units.Bytes
	// DataStart is where file extents begin.
	DataStart units.Bytes
}

// DefaultFS returns filesystem parameters for the 500 GB drive:
// 4 MiB extents, journal at 1 GiB, data from 2 GiB.
func DefaultFS() FSParams {
	return FSParams{
		ExtentSize:    4 * units.MiB,
		JournalStart:  1 * units.GiB,
		JournalSize:   128 * units.MiB,
		JournalRecord: 4 * units.KiB,
		DataStart:     2 * units.GiB,
	}
}

// FileSystem is an extent-based filesystem on one disk + page cache.
type FileSystem struct {
	params FSParams
	engine *sim.Engine
	disk   Device
	cache  *PageCache
	rng    *xrand.Rand

	files      map[string]*File
	allocated  RangeSet
	nextFree   units.Bytes
	journalPos units.Bytes
	fileSeq    uint64

	// faults, when set, injects transient I/O errors and bit-rot on the
	// file read/write paths.
	faults *fault.Injector
}

// NewFileSystem creates an empty filesystem.
func NewFileSystem(engine *sim.Engine, disk Device, cache *PageCache, params FSParams, rng *xrand.Rand) *FileSystem {
	if params.ExtentSize <= 0 {
		panic("storage: filesystem needs a positive extent size")
	}
	if rng == nil {
		panic("storage: filesystem needs an rng for scattered allocation")
	}
	fs := &FileSystem{
		params:     params,
		engine:     engine,
		disk:       disk,
		cache:      cache,
		rng:        rng,
		files:      make(map[string]*File),
		nextFree:   params.DataStart,
		journalPos: params.JournalStart,
	}
	fs.allocated.Add(Range{0, params.DataStart}) // reserve metadata+journal
	return fs
}

// Cache returns the page cache backing the filesystem.
func (fs *FileSystem) Cache() *PageCache { return fs.cache }

// Device returns the block store backing the filesystem.
func (fs *FileSystem) Device() Device { return fs.disk }

// SetFaults attaches a fault injector to the file I/O paths; nil
// detaches it.
func (fs *FileSystem) SetFaults(inj *fault.Injector) { fs.faults = inj }

// File is a named sequence of extents. Files hold real bytes for the
// logical ranges written with data (WriteAt); ranges written sparsely
// read back as a deterministic per-file pattern.
type File struct {
	fs     *FileSystem
	name   string
	seed   uint64
	policy AllocPolicy

	extents []Range     // logical order; all ExtentSize except maybe last
	size    units.Bytes // logical length

	retained []segment // sorted by Off, non-overlapping

	unjournaled int // extents allocated since the last fsync
}

type segment struct {
	Off  units.Bytes
	Data []byte
}

// Create makes an empty file with the given allocation policy. It
// panics if the name exists.
func (fs *FileSystem) Create(name string, policy AllocPolicy) *File {
	if _, ok := fs.files[name]; ok {
		panic(fmt.Sprintf("storage: file %q already exists", name))
	}
	fs.fileSeq++
	f := &File{fs: fs, name: name, seed: fs.fileSeq, policy: policy}
	fs.files[name] = f
	return f
}

// Open returns the named file, or nil.
func (fs *FileSystem) Open(name string) *File { return fs.files[name] }

// Delete removes a file, frees its extents, and invalidates its cached
// pages (dirty data is discarded).
func (fs *FileSystem) Delete(name string) {
	f, ok := fs.files[name]
	if !ok {
		return
	}
	for _, e := range f.extents {
		fs.allocated.Remove(e)
		fs.cache.Invalidate(e)
	}
	delete(fs.files, name)
	f.extents = nil
	f.size = 0
}

// Sync flushes all dirty data on the node (sync(2)).
func (fs *FileSystem) Sync() { fs.cache.Sync() }

// DropCaches evicts clean pages (used between pipeline phases).
func (fs *FileSystem) DropCaches() { fs.cache.DropCaches() }

// allocExtent claims one extent according to policy.
func (fs *FileSystem) allocExtent(policy AllocPolicy) Range {
	size := fs.params.ExtentSize
	switch policy {
	case AllocContiguous:
		r := Range{fs.nextFree, fs.nextFree + size}
		fs.nextFree += size
		fs.allocated.Add(r)
		return r
	case AllocScattered:
		span := fs.disk.Capacity() - fs.params.DataStart - size
		for tries := 0; tries < 64; tries++ {
			off := fs.params.DataStart + units.Bytes(fs.rng.Int64n(int64(span/size)))*size
			r := Range{off, off + size}
			if len(fs.allocated.Intersect(r)) == 0 {
				fs.allocated.Add(r)
				return r
			}
		}
		// Disk effectively full of scatter targets; fall back.
		return fs.allocExtent(AllocContiguous)
	default:
		panic(fmt.Sprintf("storage: unknown allocation policy %d", policy))
	}
}

// ensureAllocated grows the file's extent list to cover logical offset
// end, counting new extents for journaling.
func (f *File) ensureAllocated(end units.Bytes) {
	for units.Bytes(len(f.extents))*f.fs.params.ExtentSize < end {
		f.extents = append(f.extents, f.fs.allocExtent(f.policy))
		f.unjournaled++
	}
}

// diskRanges maps the logical range [off, off+n) to media ranges in
// logical order.
func (f *File) diskRanges(off, n units.Bytes) []Range {
	var out []Range
	es := f.fs.params.ExtentSize
	for n > 0 {
		idx := int(off / es)
		within := off % es
		take := min64(n, es-within)
		e := f.extents[idx]
		out = append(out, Range{e.Start + within, e.Start + within + take})
		off += take
		n -= take
	}
	return out
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the logical length.
func (f *File) Size() units.Bytes { return f.size }

// Extents returns the file's media extents in logical order. The slice
// is owned by the file.
func (f *File) Extents() []Range { return f.extents }

// FragmentRuns returns how many physically-contiguous runs the file
// occupies: 1 means perfectly sequential on media.
func (f *File) FragmentRuns() int {
	if len(f.extents) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(f.extents); i++ {
		if f.extents[i].Start != f.extents[i-1].End {
			runs++
		}
	}
	return runs
}

// WriteAt writes real bytes at the logical offset, growing the file as
// needed. Blocks for buffering time; media time is deferred to
// write-back or Fsync. An injected transient fault fails the write with
// fault.ErrTransient before any state changes: the file is exactly as
// it was, and a retry draws a fresh fault decision.
func (f *File) WriteAt(p []byte, off units.Bytes) error {
	n := units.Bytes(len(p))
	if n == 0 {
		return nil
	}
	if f.fs.faults.WriteError() {
		return fmt.Errorf("storage: write %q at %d: %w", f.name, off, fault.ErrTransient)
	}
	f.writeCommon(off, n)
	f.retain(off, p)
	return nil
}

// WriteSparseAt is WriteAt without retaining content: the same
// allocation, cache, and timing behaviour, but reads of the range
// return a deterministic pattern. Used for bulk payloads (fio files,
// checkpoint history) whose bytes never matter.
func (f *File) WriteSparseAt(off, n units.Bytes) error {
	if n <= 0 {
		return nil
	}
	if f.fs.faults.WriteError() {
		return fmt.Errorf("storage: write %q at %d: %w", f.name, off, fault.ErrTransient)
	}
	f.writeCommon(off, n)
	f.dropRetained(Range{off, off + n})
	return nil
}

// Append writes real bytes at the end of the file.
func (f *File) Append(p []byte) error { return f.WriteAt(p, f.size) }

// AppendSparse extends the file by n pattern bytes.
func (f *File) AppendSparse(n units.Bytes) error { return f.WriteSparseAt(f.size, n) }

func (f *File) writeCommon(off, n units.Bytes) {
	if off < 0 {
		panic("storage: negative file offset")
	}
	f.ensureAllocated(off + n)
	for _, r := range f.diskRanges(off, n) {
		f.fs.cache.Write(r.Start, r.Len())
	}
	if off+n > f.size {
		f.size = off + n
	}
}

// ReadAt fills p from the logical offset, charging cache/media time.
// Ranges never written with real data are filled with the file's
// deterministic pattern. Reading past EOF panics: the workloads always
// know their file sizes.
//
// Injected faults surface two ways: a transient read error (time is
// charged — the device did the work — but p is not filled and
// fault.ErrTransient returns), or silent bit-rot flipping bits in the
// delivered copy only. The stored bytes are never harmed; a re-read
// draws fresh decisions and may come back clean.
func (f *File) ReadAt(p []byte, off units.Bytes) error {
	n := units.Bytes(len(p))
	if n == 0 {
		return nil
	}
	f.readTiming(off, n)
	if f.fs.faults.ReadError() {
		return fmt.Errorf("storage: read %q at %d: %w", f.name, off, fault.ErrTransient)
	}
	f.fill(p, off)
	f.fs.faults.Rot(p)
	return nil
}

// ReadSparseAt charges the timing of a read without materializing data.
func (f *File) ReadSparseAt(off, n units.Bytes) error {
	if n <= 0 {
		return nil
	}
	f.readTiming(off, n)
	if f.fs.faults.ReadError() {
		return fmt.Errorf("storage: read %q at %d: %w", f.name, off, fault.ErrTransient)
	}
	return nil
}

func (f *File) readTiming(off, n units.Bytes) {
	if off < 0 || off+n > f.size {
		panic(fmt.Sprintf("storage: read [%d,+%d) past EOF %d of %q", off, n, f.size, f.name))
	}
	for _, r := range f.diskRanges(off, n) {
		f.fs.cache.Read(r.Start, r.Len())
	}
}

// Fsync commits the file: drains its dirty pages extent by extent,
// committing one journal record per freshly-allocated extent in
// between. The data↔journal alternation is what makes chunked
// checkpoint writes seek-bound rather than bandwidth-bound.
func (f *File) Fsync() {
	newExtents := f.unjournaled
	f.unjournaled = 0
	for i, e := range f.extents {
		f.fs.cache.SyncRanges([]Range{e})
		if i >= len(f.extents)-newExtents {
			f.fs.journalCommit()
		}
	}
	// Cover dirty data beyond the per-extent sweep (none in practice,
	// but keeps Fsync a true barrier).
	f.fs.cache.SyncRanges(f.extents)
}

// journalCommit writes one record to the journal region and waits for
// it (a write barrier).
func (fs *FileSystem) journalCommit() {
	if fs.journalPos+fs.params.JournalRecord > fs.params.JournalStart+fs.params.JournalSize {
		fs.journalPos = fs.params.JournalStart // circular log
	}
	end := fs.disk.Submit(OpWrite, fs.journalPos, fs.params.JournalRecord, nil)
	fs.journalPos += fs.params.JournalRecord
	fs.engine.AdvanceTo(end)
}

// Reorganize rewrites the file into a single contiguous run — the
// software-directed data reorganization of the paper's §V-D [30], [31].
// It reads every extent, writes the data contiguously, frees the old
// extents, and syncs. Timing flows through the normal cache/disk path.
func (f *File) Reorganize() {
	if len(f.extents) == 0 {
		return
	}
	old := f.extents
	// Read the whole file (through the cache, real media time).
	for _, e := range old {
		f.fs.cache.Read(e.Start, e.Len())
	}
	// Allocate a fresh contiguous region and write it back.
	var fresh []Range
	for range old {
		fresh = append(fresh, f.fs.allocExtent(AllocContiguous))
	}
	f.extents = fresh
	f.unjournaled = len(fresh)
	for _, e := range fresh {
		f.fs.cache.Write(e.Start, e.Len())
	}
	f.Fsync()
	for _, e := range old {
		f.fs.allocated.Remove(e)
		f.fs.cache.Invalidate(e)
	}
}

// retain stores real bytes for [off, off+len(p)).
func (f *File) retain(off units.Bytes, p []byte) {
	data := make([]byte, len(p))
	copy(data, p)
	f.dropRetained(Range{off, off + units.Bytes(len(p))})
	f.retained = append(f.retained, segment{off, data})
	sort.Slice(f.retained, func(i, j int) bool { return f.retained[i].Off < f.retained[j].Off })
}

// dropRetained removes retained coverage of r (trimming partial
// overlaps).
func (f *File) dropRetained(r Range) {
	var out []segment
	for _, s := range f.retained {
		sr := Range{s.Off, s.Off + units.Bytes(len(s.Data))}
		if !sr.Overlaps(r) {
			out = append(out, s)
			continue
		}
		if sr.Start < r.Start {
			out = append(out, segment{sr.Start, s.Data[:r.Start-sr.Start]})
		}
		if sr.End > r.End {
			out = append(out, segment{r.End, s.Data[r.End-sr.Start:]})
		}
	}
	f.retained = out
}

// fill copies retained bytes into p, patterning unwritten gaps.
func (f *File) fill(p []byte, off units.Bytes) {
	end := off + units.Bytes(len(p))
	for i := range p {
		p[i] = patternByte(f.seed, off+units.Bytes(i))
	}
	for _, s := range f.retained {
		sr := Range{s.Off, s.Off + units.Bytes(len(s.Data))}
		seg := Range{max64(sr.Start, off), min64(sr.End, end)}
		if seg.Empty() {
			continue
		}
		copy(p[seg.Start-off:seg.End-off], s.Data[seg.Start-sr.Start:seg.End-sr.Start])
	}
}

// patternByte is the deterministic content of sparse file ranges.
func patternByte(seed uint64, off units.Bytes) byte {
	x := seed*0x9E3779B97F4A7C15 + uint64(off)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	return byte(x)
}

package storage

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// NVRAMParams describes a byte-addressable persistent buffer tier.
type NVRAMParams struct {
	Capacity units.Bytes
	// ReadBW / WriteBW are streaming bandwidths in bytes/s.
	ReadBW, WriteBW float64
	// AccessLatency is the fixed per-request cost.
	AccessLatency units.Seconds
	// IdlePower / ActiveDyn are the tier's power levels.
	IdlePower, ActiveDyn units.Watts
	// DrainDelay is how long data rests in the buffer before the
	// background drain ships it to the backing store.
	DrainDelay units.Seconds
}

// DefaultNVRAM returns a PCIe NVRAM card of the era: 16 GiB, 2.2/1.8
// GB/s, 20 µs access, draining after 2 s of rest.
func DefaultNVRAM() NVRAMParams {
	return NVRAMParams{
		Capacity:      16 * units.GiB,
		ReadBW:        2.2e9,
		WriteBW:       1.8e9,
		AccessLatency: 20 * units.Microsecond,
		IdlePower:     2.0,
		ActiveDyn:     6.0,
		DrainDelay:    2,
	}
}

// BurstBuffer is an NVRAM tier in front of a backing device — the deep
// memory hierarchy of Gamell et al. [26] and the paper's Future Work
// ("flash-based devices such as NVRAM"). Writes land in NVRAM at NVRAM
// speed and drain to the backing store in the background; reads are
// served from NVRAM while resident, from the backing store after.
type BurstBuffer struct {
	params  NVRAMParams
	engine  *sim.Engine
	backing Device
	tier    *sim.Resource
	domain  *power.Domain

	resident RangeSet
	draining bool

	stats BurstBufferStats
}

// BurstBufferStats aggregates tier behaviour.
type BurstBufferStats struct {
	HitBytes, MissBytes units.Bytes
	AbsorbedWrites      units.Bytes
	DrainedBytes        units.Bytes
}

// NewBurstBuffer builds the tier over a backing device. domain (may be
// nil) carries the NVRAM power.
func NewBurstBuffer(engine *sim.Engine, backing Device, params NVRAMParams, domain *power.Domain) *BurstBuffer {
	if params.Capacity <= 0 || params.ReadBW <= 0 || params.WriteBW <= 0 {
		panic("storage: burst buffer needs positive capacity and bandwidths")
	}
	b := &BurstBuffer{
		params:  params,
		engine:  engine,
		backing: backing,
		tier:    sim.NewResource(engine),
		domain:  domain,
	}
	if domain != nil {
		domain.SetLevel(params.IdlePower)
	}
	return b
}

// Stats returns a copy of the tier counters.
func (b *BurstBuffer) Stats() BurstBufferStats { return b.stats }

// Backing returns the device under the tier.
func (b *BurstBuffer) Backing() Device { return b.backing }

// SetFaults forwards the injector to the backing device (the NVRAM tier
// itself is assumed fault-free; the spinning media under it is not).
func (b *BurstBuffer) SetFaults(inj *fault.Injector) {
	switch dev := b.backing.(type) {
	case *Disk:
		dev.SetFaults(inj)
	case *StripedDisk:
		dev.SetFaults(inj)
	case *BurstBuffer:
		dev.SetFaults(inj)
	}
}

// ResidentBytes returns how much data currently lives in the tier.
func (b *BurstBuffer) ResidentBytes() units.Bytes { return b.resident.Bytes() }

// Capacity returns the backing store's capacity (the tier is
// transparent).
func (b *BurstBuffer) Capacity() units.Bytes { return b.backing.Capacity() }

// nvramService returns the tier cost of moving n bytes.
func (b *BurstBuffer) nvramService(op Op, n units.Bytes) units.Seconds {
	bw := b.params.ReadBW
	if op == OpWrite {
		bw = b.params.WriteBW
	}
	return b.params.AccessLatency + units.TransferTime(n, bw)
}

// submitTier runs one request on the NVRAM resource with power
// bracketing.
func (b *BurstBuffer) submitTier(op Op, n units.Bytes, done func()) sim.Time {
	start, end := b.tier.Submit(b.nvramService(op, n), done)
	if b.domain != nil {
		at := func(t sim.Time, level units.Watts) {
			if t <= b.engine.Now() {
				b.domain.SetLevel(level)
				return
			}
			b.engine.At(t, func() { b.domain.SetLevel(level) })
		}
		at(start, b.params.IdlePower+b.params.ActiveDyn)
		b.engine.At(end, func() {
			if b.tier.FreeAt() <= end {
				b.domain.SetLevel(b.params.IdlePower)
			}
		})
	}
	return end
}

// Submit implements Device. Writes are absorbed by the tier (up to its
// capacity; overflow spills straight to backing) and drained later;
// reads split between the tier and the backing store.
func (b *BurstBuffer) Submit(op Op, offset, n units.Bytes, done func()) sim.Time {
	if offset < 0 || n < 0 || offset+n > b.Capacity() {
		panic(fmt.Sprintf("storage: burst-buffer request [%d,+%d) outside capacity %d", offset, n, b.Capacity()))
	}
	r := Range{offset, offset + n}
	switch op {
	case OpWrite:
		if b.resident.Bytes()+n > b.params.Capacity {
			// Tier full: spill synchronously to the backing store.
			return b.backing.Submit(op, offset, n, done)
		}
		b.resident.Add(r)
		b.stats.AbsorbedWrites += n
		end := b.submitTier(OpWrite, n, done)
		b.scheduleDrain()
		return end
	case OpRead:
		hits := b.resident.Intersect(r)
		var hitBytes units.Bytes
		for _, h := range hits {
			hitBytes += h.Len()
		}
		missRanges := b.resident.Gaps(r)
		var latest sim.Time = b.engine.Now()
		if hitBytes > 0 {
			b.stats.HitBytes += hitBytes
			if end := b.submitTier(OpRead, hitBytes, nil); end > latest {
				latest = end
			}
		}
		for _, m := range missRanges {
			b.stats.MissBytes += m.Len()
			if end := b.backing.Submit(OpRead, m.Start, m.Len(), nil); end > latest {
				latest = end
			}
		}
		if done != nil {
			b.engine.At(latest, done)
		}
		return latest
	default:
		panic(fmt.Sprintf("storage: unknown op %d", op))
	}
}

// scheduleDrain arms the background drain after the rest delay.
func (b *BurstBuffer) scheduleDrain() {
	if b.draining {
		return
	}
	b.draining = true
	b.engine.After(b.params.DrainDelay, b.drainStep)
}

// drainStep ships one resident range to the backing store and
// reschedules until the tier is empty.
func (b *BurstBuffer) drainStep() {
	if b.resident.Empty() {
		b.draining = false
		return
	}
	r := b.resident.Ranges()[0]
	b.resident.Remove(r)
	b.stats.DrainedBytes += r.Len()
	b.backing.Submit(OpWrite, r.Start, r.Len(), func() {
		b.drainStep()
	})
}

// FreeAt returns when both the tier and the backing store go idle.
func (b *BurstBuffer) FreeAt() sim.Time {
	t := b.tier.FreeAt()
	if bt := b.backing.FreeAt(); bt > t {
		t = bt
	}
	return t
}

// Idle reports whether the tier, the drain, and the backing store are
// all quiet.
func (b *BurstBuffer) Idle() bool {
	return b.tier.Idle() && b.backing.Idle() && !b.draining
}

var _ Device = (*BurstBuffer)(nil)

package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// opKind enumerates the cache operations the fuzz harness exercises.
type opKind uint8

const (
	opWrite opKind = iota
	opRead
	opSync
	opDrop
	opInvalidate
	opAdvance
	opKindCount
)

// cacheInvariants checks the structural invariants after every step.
func cacheInvariants(t *testing.T, c *PageCache) bool {
	t.Helper()
	// Dirty must be a subset of cached.
	for _, d := range c.dirty.Ranges() {
		if !c.cached.Contains(d) {
			t.Logf("dirty range %v not cached", d)
			return false
		}
	}
	return true
}

// TestCacheInvariantsUnderRandomOps drives the full cache state machine
// with arbitrary operation sequences and checks invariants after every
// operation, plus terminal guarantees after a final Sync.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		e := sim.NewEngine()
		p := SeagateHDD()
		p.DeterministicRotation = true
		d := NewDisk(e, p, nil, xrand.New(seed))
		c := NewPageCache(e, d, smallCacheParams())
		rng := xrand.New(seed + 1)

		const span = 256 * units.MiB
		for _, raw := range ops {
			kind := opKind(raw) % opKindCount
			off := units.Bytes(rng.Int64n(int64(span)))
			n := units.Bytes(rng.Int64n(int64(4*units.MiB))) + 1
			switch kind {
			case opWrite:
				c.Write(off, n)
			case opRead:
				c.Read(off, n)
			case opSync:
				c.Sync()
			case opDrop:
				c.DropCaches()
			case opInvalidate:
				c.Invalidate(Range{off, off + n})
			case opAdvance:
				e.Advance(units.Seconds(rng.Float64()) * 2)
			}
			if !cacheInvariants(t, c) {
				return false
			}
		}
		// Terminal: a full sync leaves nothing dirty and the media quiet.
		c.Sync()
		if c.DirtyBytes() != 0 {
			t.Logf("dirty after final sync: %v", c.DirtyBytes())
			return false
		}
		e.Advance(60)
		return d.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCacheDeterministicUnderRandomOps replays the same op sequence on
// two caches and expects identical timing and media traffic.
func TestCacheDeterministicUnderRandomOps(t *testing.T) {
	run := func() (units.Seconds, units.Bytes) {
		e := sim.NewEngine()
		p := SeagateHDD()
		d := NewDisk(e, p, nil, xrand.New(77))
		c := NewPageCache(e, d, smallCacheParams())
		rng := xrand.New(78)
		for i := 0; i < 300; i++ {
			off := units.Bytes(rng.Int64n(int64(128 * units.MiB)))
			n := units.Bytes(rng.Int64n(int64(units.MiB))) + 1
			switch rng.Intn(3) {
			case 0:
				c.Write(off, n)
			case 1:
				c.Read(off, n)
			case 2:
				c.Sync()
			}
		}
		c.Sync()
		return e.Now(), d.Stats().BytesWritten + d.Stats().BytesRead
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Errorf("replay diverged: %v/%v vs %v/%v", t1, b1, t2, b2)
	}
}

// TestFIFOCacheInvariants runs the same fuzz under the FIFO-writeback
// ablation configuration.
func TestFIFOCacheInvariants(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(3))
	params := smallCacheParams()
	params.FIFOWriteback = true
	c := NewPageCache(e, d, params)
	rng := xrand.New(4)
	for i := 0; i < 400; i++ {
		off := units.Bytes(rng.Int64n(int64(64 * units.MiB)))
		n := units.Bytes(rng.Int64n(int64(512*units.KiB))) + 1
		switch rng.Intn(4) {
		case 0, 1:
			c.Write(off, n)
		case 2:
			c.Read(off, n)
		case 3:
			c.Sync()
		}
		if !cacheInvariants(t, c) {
			t.Fatalf("invariant broken at op %d", i)
		}
	}
	c.Sync()
	if c.DirtyBytes() != 0 {
		t.Error("FIFO cache left dirty data after sync")
	}
}

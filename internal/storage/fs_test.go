package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// testFS assembles a deterministic disk + small-threshold cache + fs.
func testFS(t *testing.T) (*sim.Engine, *Disk, *PageCache, *FileSystem) {
	t.Helper()
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(1))
	c := NewPageCache(e, d, smallCacheParams())
	fs := NewFileSystem(e, d, c, DefaultFS(), xrand.New(2))
	return e, d, c, fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("ckpt", AllocContiguous)
	data := []byte("the quick brown fox jumps over the lazy dog")
	f.WriteAt(data, 0)
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestRoundTripSurvivesSyncAndDrop(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("ckpt", AllocContiguous)
	data := make([]byte, 64*units.KiB)
	for i := range data {
		data[i] = byte(i * 7)
	}
	f.WriteAt(data, 0)
	f.Fsync()
	fs.DropCaches()
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Error("data corrupted across fsync + drop_caches")
	}
}

func TestSparseReadsAreDeterministic(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("bulk", AllocContiguous)
	f.AppendSparse(units.MiB)
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	f.ReadAt(a, 1000)
	f.ReadAt(b, 1000)
	if !bytes.Equal(a, b) {
		t.Error("sparse pattern not deterministic")
	}
	var zero int
	for _, v := range a {
		if v == 0 {
			zero++
		}
	}
	if zero > len(a)/16 {
		t.Errorf("sparse pattern suspiciously zero-heavy: %d/%d", zero, len(a))
	}
}

func TestMixedRealAndSparseContent(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("mixed", AllocContiguous)
	header := []byte("HEADERv1")
	f.WriteAt(header, 0)
	f.AppendSparse(units.MiB)
	got := make([]byte, 16)
	f.ReadAt(got, 0)
	if !bytes.Equal(got[:8], header) {
		t.Errorf("header = %q, want %q", got[:8], header)
	}
}

func TestOverwriteRetainedData(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("f", AllocContiguous)
	f.WriteAt([]byte("aaaaaaaaaa"), 0)
	f.WriteAt([]byte("BBBB"), 3)
	got := make([]byte, 10)
	f.ReadAt(got, 0)
	if string(got) != "aaaBBBBaaa" {
		t.Errorf("overwrite = %q, want aaaBBBBaaa", got)
	}
}

func TestContiguousAllocationIsOneRun(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("big", AllocContiguous)
	f.AppendSparse(64 * units.MiB)
	if runs := f.FragmentRuns(); runs != 1 {
		t.Errorf("contiguous file has %d runs, want 1", runs)
	}
}

func TestScatteredAllocationFragments(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("frag", AllocScattered)
	f.AppendSparse(64 * units.MiB) // 16 extents
	if runs := f.FragmentRuns(); runs < 8 {
		t.Errorf("scattered file has only %d runs, expected heavy fragmentation", runs)
	}
}

// testFragFS uses 256 KiB extents so per-extent seeks dominate the
// transfer time and fragmentation effects are unmistakable.
func testFragFS(t *testing.T) (*sim.Engine, *Disk, *PageCache, *FileSystem) {
	t.Helper()
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(1))
	c := NewPageCache(e, d, smallCacheParams())
	params := DefaultFS()
	params.ExtentSize = 256 * units.KiB
	fs := NewFileSystem(e, d, c, params, xrand.New(2))
	return e, d, c, fs
}

func TestScatteredReadSlowerThanContiguous(t *testing.T) {
	e, _, _, fs := testFragFS(t)
	const size = 64 * units.MiB
	cf := fs.Create("c", AllocContiguous)
	cf.AppendSparse(size)
	cf.Fsync()
	sf := fs.Create("s", AllocScattered)
	sf.AppendSparse(size)
	sf.Fsync()
	fs.DropCaches()

	start := e.Now()
	cf.ReadSparseAt(0, size)
	contigTime := e.Now() - start

	fs.DropCaches()
	start = e.Now()
	sf.ReadSparseAt(0, size)
	scatTime := e.Now() - start

	if float64(scatTime) < 1.5*float64(contigTime) {
		t.Errorf("scattered read %v not clearly slower than contiguous %v", scatTime, contigTime)
	}
}

func TestFsyncCommitsJournalPerNewExtent(t *testing.T) {
	_, d, _, fs := testFS(t)
	f := fs.Create("j", AllocContiguous)
	f.AppendSparse(6 * units.MiB) // 2 extents, below background dirty
	writesBefore := d.Stats().Writes
	f.Fsync()
	// Expect 2 extent drains + 2 journal records hitting media.
	if got := d.Stats().Writes - writesBefore; got < 4 {
		t.Errorf("fsync produced %d media writes, want >= 4 (data + journal)", got)
	}
	// Second fsync with nothing new: no journal commits, no data.
	writesBefore = d.Stats().Writes
	f.Fsync()
	if got := d.Stats().Writes - writesBefore; got != 0 {
		t.Errorf("idempotent fsync produced %d media writes", got)
	}
}

func TestFsyncDurableAndDirtyFree(t *testing.T) {
	_, _, c, fs := testFS(t)
	f := fs.Create("f", AllocContiguous)
	f.AppendSparse(10 * units.MiB)
	f.Fsync()
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty after fsync = %v, want 0", c.DirtyBytes())
	}
}

func TestDeleteFreesSpaceAndInvalidates(t *testing.T) {
	_, d, _, fs := testFS(t)
	f := fs.Create("tmp", AllocContiguous)
	f.AppendSparse(8 * units.MiB)
	fs.Delete("tmp")
	if fs.Open("tmp") != nil {
		t.Error("deleted file still opens")
	}
	// Dirty data must not reach media after delete.
	fs.Sync()
	if d.Stats().BytesWritten != 0 {
		t.Errorf("deleted file's data reached media: %v", d.Stats().BytesWritten)
	}
	// Space is reusable: a contiguous file can land on the freed run.
	g := fs.Create("next", AllocContiguous)
	g.AppendSparse(8 * units.MiB)
	if g.Size() != 8*units.MiB {
		t.Errorf("Size = %v", g.Size())
	}
}

func TestCreateDuplicatePanics(t *testing.T) {
	_, _, _, fs := testFS(t)
	fs.Create("x", AllocContiguous)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Create did not panic")
		}
	}()
	fs.Create("x", AllocContiguous)
}

func TestReadPastEOFPanics(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("f", AllocContiguous)
	f.AppendSparse(100)
	defer func() {
		if recover() == nil {
			t.Error("read past EOF did not panic")
		}
	}()
	f.ReadSparseAt(50, 100)
}

func TestReorganizeMakesFileContiguous(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("frag", AllocScattered)
	f.AppendSparse(32 * units.MiB)
	f.Fsync()
	if f.FragmentRuns() < 2 {
		t.Skip("scatter produced a contiguous file by chance")
	}
	f.Reorganize()
	if runs := f.FragmentRuns(); runs != 1 {
		t.Errorf("reorganized file has %d runs, want 1", runs)
	}
}

func TestReorganizePreservesContent(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("frag", AllocScattered)
	data := make([]byte, 128*units.KiB)
	for i := range data {
		data[i] = byte(i * 13)
	}
	f.WriteAt(data, 0)
	f.AppendSparse(16 * units.MiB)
	f.Fsync()
	f.Reorganize()
	fs.DropCaches()
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Error("reorganize corrupted retained content")
	}
}

func TestReorganizeSpeedsUpColdReads(t *testing.T) {
	e, _, _, fs := testFragFS(t)
	const size = 64 * units.MiB
	f := fs.Create("frag", AllocScattered)
	f.AppendSparse(size)
	f.Fsync()
	if f.FragmentRuns() < 8 {
		t.Skip("not fragmented enough to measure")
	}
	fs.DropCaches()
	start := e.Now()
	f.ReadSparseAt(0, size)
	fragTime := e.Now() - start

	f.Reorganize()
	fs.DropCaches()
	start = e.Now()
	f.ReadSparseAt(0, size)
	contigTime := e.Now() - start

	if float64(contigTime) >= 0.8*float64(fragTime) {
		t.Errorf("reorganize did not speed up cold reads: %v -> %v", fragTime, contigTime)
	}
}

func TestFileSizeTracksAppends(t *testing.T) {
	_, _, _, fs := testFS(t)
	f := fs.Create("f", AllocContiguous)
	f.Append([]byte("abc"))
	f.AppendSparse(100)
	if f.Size() != 103 {
		t.Errorf("Size = %d, want 103", f.Size())
	}
}

// Property: any interleaving of real writes at random offsets reads
// back exactly, matching an in-memory model buffer.
func TestFileContentModelProperty(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		_, _, _, fs := testFS(t)
		file := fs.Create("p", AllocContiguous)
		const span = 1 << 16
		model := make([]byte, span+256)
		var size units.Bytes
		// Pre-fill with the file's sparse pattern so gaps compare equal.
		file.AppendSparse(units.Bytes(len(model)))
		size = units.Bytes(len(model))
		file.ReadAt(model, 0)
		for _, w := range writes {
			if len(w.Data) == 0 {
				continue
			}
			data := w.Data
			if len(data) > 200 {
				data = data[:200]
			}
			file.WriteAt(data, units.Bytes(w.Off))
			copy(model[w.Off:], data)
		}
		got := make([]byte, size)
		file.ReadAt(got, 0)
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package storage models the node's I/O stack from scratch: a 7200 rpm
// hard disk with seek and rotational mechanics, a write-back page cache
// with an elevator (LBA-sorting) write-back daemon, and an extent-based
// filesystem with pluggable allocation policies. The paper's Table III
// (fio), its read/write stage powers (Fig 6, Table II), and its §V-D
// data-reorganization hypothetical all fall out of this stack.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Range is a half-open interval [Start, End) of disk byte offsets.
type Range struct {
	Start, End units.Bytes
}

// Len returns the range length.
func (r Range) Len() units.Bytes { return r.End - r.Start }

// Empty reports whether the range covers no bytes.
func (r Range) Empty() bool { return r.End <= r.Start }

// Overlaps reports whether r and s share any byte.
func (r Range) Overlaps(s Range) bool { return r.Start < s.End && s.Start < r.End }

// Contains reports whether r fully covers s.
func (r Range) Contains(s Range) bool { return r.Start <= s.Start && s.End <= r.End }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// RangeSet is a set of byte offsets stored as sorted, non-overlapping,
// non-adjacent ranges. It backs the page cache's cached/dirty tracking.
// The zero value is an empty, ready-to-use set.
type RangeSet struct {
	ranges []Range
}

// Len returns the number of maximal ranges in the set.
func (s *RangeSet) Len() int { return len(s.ranges) }

// Bytes returns the total number of bytes covered.
func (s *RangeSet) Bytes() units.Bytes {
	var n units.Bytes
	for _, r := range s.ranges {
		n += r.Len()
	}
	return n
}

// Ranges returns the maximal ranges in ascending order. The slice is
// owned by the set; callers must not modify it.
func (s *RangeSet) Ranges() []Range { return s.ranges }

// Empty reports whether the set covers no bytes.
func (s *RangeSet) Empty() bool { return len(s.ranges) == 0 }

// Clear removes all ranges.
func (s *RangeSet) Clear() { s.ranges = s.ranges[:0] }

// Clone returns an independent copy of the set.
func (s *RangeSet) Clone() *RangeSet {
	c := &RangeSet{ranges: make([]Range, len(s.ranges))}
	copy(c.ranges, s.ranges)
	return c
}

// firstAtOrAfter returns the index of the first range whose End is
// greater than off (the first range that could overlap or follow off).
func (s *RangeSet) firstAtOrAfter(off units.Bytes) int {
	return sort.Search(len(s.ranges), func(i int) bool {
		return s.ranges[i].End > off
	})
}

// Add inserts [r.Start, r.End), merging with overlapping or adjacent
// ranges. Empty ranges are ignored.
func (s *RangeSet) Add(r Range) {
	if r.Empty() {
		return
	}
	// Find the window of existing ranges that touch [Start-0, End+0]
	// (adjacency merges too, hence <=).
	i := sort.Search(len(s.ranges), func(i int) bool {
		return s.ranges[i].End >= r.Start
	})
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= r.End {
		if s.ranges[j].Start < r.Start {
			r.Start = s.ranges[j].Start
		}
		if s.ranges[j].End > r.End {
			r.End = s.ranges[j].End
		}
		j++
	}
	if i == j {
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = r
		return
	}
	s.ranges[i] = r
	s.ranges = append(s.ranges[:i+1], s.ranges[j:]...)
}

// Remove deletes [r.Start, r.End) from the set, splitting ranges that
// straddle the boundary. It edits the range slice in place: only the
// first and last overlapped ranges can leave fragments behind, so a
// removal is a bounded window rewrite plus one tail move, never a copy
// of the whole set (this sits under every page-cache write-back).
func (s *RangeSet) Remove(r Range) {
	if r.Empty() {
		return
	}
	i := s.firstAtOrAfter(r.Start)
	j := i
	for j < len(s.ranges) && s.ranges[j].Start < r.End {
		j++
	}
	if i == j {
		return // nothing overlaps
	}
	// Every range in [i, j) overlaps r. Fragments survive only at the
	// window edges.
	left := Range{s.ranges[i].Start, r.Start}
	right := Range{r.End, s.ranges[j-1].End}
	frags := 0
	if !left.Empty() {
		frags++
	}
	if !right.Empty() {
		frags++
	}
	switch d := (j - i) - frags; {
	case d < 0:
		// One range splits into two: open one slot at j.
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[j+1:], s.ranges[j:])
	case d > 0:
		s.ranges = append(s.ranges[:i+frags], s.ranges[j:]...)
	}
	k := i
	if !left.Empty() {
		s.ranges[k] = left
		k++
	}
	if !right.Empty() {
		s.ranges[k] = right
	}
}

// Contains reports whether every byte of r is in the set.
func (s *RangeSet) Contains(r Range) bool {
	if r.Empty() {
		return true
	}
	i := s.firstAtOrAfter(r.Start)
	return i < len(s.ranges) && s.ranges[i].Contains(r)
}

// Intersect returns the portions of r covered by the set, in order.
func (s *RangeSet) Intersect(r Range) []Range {
	var out []Range
	if r.Empty() {
		return out
	}
	for i := s.firstAtOrAfter(r.Start); i < len(s.ranges); i++ {
		cur := s.ranges[i]
		if cur.Start >= r.End {
			break
		}
		seg := Range{max64(cur.Start, r.Start), min64(cur.End, r.End)}
		if !seg.Empty() {
			out = append(out, seg)
		}
	}
	return out
}

// Gaps returns the portions of r NOT covered by the set, in order.
func (s *RangeSet) Gaps(r Range) []Range {
	var out []Range
	if r.Empty() {
		return out
	}
	pos := r.Start
	for _, seg := range s.Intersect(r) {
		if seg.Start > pos {
			out = append(out, Range{pos, seg.Start})
		}
		pos = seg.End
	}
	if pos < r.End {
		out = append(out, Range{pos, r.End})
	}
	return out
}

// TakeFrom removes and returns up to budget bytes of ranges from the
// set, scanning upward from offset 'from' and wrapping around — the
// elevator sweep order used by the write-back daemon. The final range
// may be split to honor the budget exactly.
func (s *RangeSet) TakeFrom(from units.Bytes, budget units.Bytes) []Range {
	if budget <= 0 || len(s.ranges) == 0 {
		return nil
	}
	var taken []Range
	start := s.firstAtOrAfter(from)
	n := len(s.ranges)
	for k := 0; k < n && budget > 0; k++ {
		r := s.ranges[(start+k)%n]
		if r.Len() > budget {
			r = Range{r.Start, r.Start + budget}
		}
		taken = append(taken, r)
		budget -= r.Len()
	}
	for _, r := range taken {
		s.Remove(r)
	}
	// Keep the sweep order ascending-from-'from' even after wrap.
	sort.Slice(taken, func(i, j int) bool {
		ai, aj := taken[i].Start >= from, taken[j].Start >= from
		if ai != aj {
			return ai
		}
		return taken[i].Start < taken[j].Start
	})
	return taken
}

func max64(a, b units.Bytes) units.Bytes {
	if a > b {
		return a
	}
	return b
}

func min64(a, b units.Bytes) units.Bytes {
	if a < b {
		return a
	}
	return b
}

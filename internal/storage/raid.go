package storage

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// StripedDisk is a software RAID-0 array: N member disks with a fixed
// stripe unit. A request is split into per-member fragments that
// proceed in parallel; the request completes when the slowest member
// finishes — the Future Work "evaluation on systems using RAID disks".
type StripedDisk struct {
	members []*Disk
	stripe  units.Bytes
	engine  *sim.Engine
}

// NewStripedDisk builds a RAID-0 array of n identical disks. Each
// member gets its own power domain on the bus when bus is non-nil
// (named "disk0", "disk1", ...).
func NewStripedDisk(engine *sim.Engine, n int, params DiskParams, stripe units.Bytes, bus *power.Bus, rng *xrand.Rand) *StripedDisk {
	if n <= 0 {
		panic("storage: RAID needs at least one member")
	}
	if stripe <= 0 {
		panic("storage: RAID needs a positive stripe unit")
	}
	s := &StripedDisk{stripe: stripe, engine: engine}
	for i := 0; i < n; i++ {
		var dom *power.Domain
		if bus != nil {
			dom = bus.NewDomain(fmt.Sprintf("disk%d", i), 0)
		}
		var memberRng *xrand.Rand
		if rng != nil {
			memberRng = rng.Split()
		}
		s.members = append(s.members, NewDisk(engine, params, dom, memberRng))
	}
	return s
}

// Members returns the underlying disks.
func (s *StripedDisk) Members() []*Disk { return s.members }

// SetFaults attaches a fault injector to every member disk. The members
// share one injector (and thus one decision stream), keeping the fault
// schedule a function of request submission order alone.
func (s *StripedDisk) SetFaults(inj *fault.Injector) {
	for _, m := range s.members {
		m.SetFaults(inj)
	}
}

// StripeUnit returns the stripe size.
func (s *StripedDisk) StripeUnit() units.Bytes { return s.stripe }

// Capacity returns the array capacity (sum of members).
func (s *StripedDisk) Capacity() units.Bytes {
	return units.Bytes(len(s.members)) * s.members[0].Capacity()
}

// Submit splits the request across members stripe by stripe and
// completes when every fragment has. done (optional) fires then.
func (s *StripedDisk) Submit(op Op, offset, n units.Bytes, done func()) sim.Time {
	if offset < 0 || n < 0 || offset+n > s.Capacity() {
		panic(fmt.Sprintf("storage: RAID request [%d,+%d) outside capacity %d", offset, n, s.Capacity()))
	}
	var latest sim.Time = s.engine.Now()
	for n > 0 {
		stripeIdx := offset / s.stripe
		within := offset % s.stripe
		take := min64(n, s.stripe-within)
		member := int(stripeIdx) % len(s.members)
		memberOff := (stripeIdx/units.Bytes(len(s.members)))*s.stripe + within
		end := s.members[member].Submit(op, memberOff, take, nil)
		if end > latest {
			latest = end
		}
		offset += take
		n -= take
	}
	if done != nil {
		s.engine.At(latest, done)
	}
	return latest
}

// FreeAt returns when the slowest member becomes idle.
func (s *StripedDisk) FreeAt() sim.Time {
	var latest sim.Time
	for _, m := range s.members {
		if t := m.FreeAt(); t > latest {
			latest = t
		}
	}
	return latest
}

// Idle reports whether every member is idle.
func (s *StripedDisk) Idle() bool {
	for _, m := range s.members {
		if !m.Idle() {
			return false
		}
	}
	return true
}

// Stats sums member statistics.
func (s *StripedDisk) Stats() DiskStats {
	var out DiskStats
	for i, m := range s.members {
		st := m.Stats()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.BytesRead += st.BytesRead
		out.BytesWritten += st.BytesWritten
		out.Seeks += st.Seeks
		out.SeekTime += st.SeekTime
		out.TransferTime += st.TransferTime
		out.Spinups += st.Spinups
		out.SeqBytes += st.SeqBytes
		out.RandBytes += st.RandBytes
		if i == 0 || st.MinOffset < out.MinOffset {
			out.MinOffset = st.MinOffset
		}
		if st.MaxOffset > out.MaxOffset {
			out.MaxOffset = st.MaxOffset
		}
	}
	return out
}

var _ Device = (*StripedDisk)(nil)

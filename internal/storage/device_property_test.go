package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// deviceUnderTest builds each Device implementation over deterministic
// disks for cross-implementation property checks.
func devicesUnderTest(e *sim.Engine, seed uint64) map[string]Device {
	p := SeagateHDD()
	p.DeterministicRotation = true
	rng := xrand.New(seed)
	return map[string]Device{
		"disk": NewDisk(e, p, nil, rng.Split()),
		"raid": NewStripedDisk(e, 4, p, 256*units.KiB, nil, rng.Split()),
		"bb":   NewBurstBuffer(e, NewDisk(e, p, nil, rng.Split()), DefaultNVRAM(), nil),
	}
}

// Property: for every Device implementation, completion times are
// never before now, and after advancing past the last completion plus
// drain slack the device is idle. The plain disk additionally
// guarantees FCFS (non-decreasing completions); RAID and the burst
// buffer schedule across independent resources, so a later request on
// an idle member/tier may legitimately finish earlier.
func TestDeviceContractProperty(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		for name, dev := range devicesUnderTest(sim.NewEngine(), seed) {
			_ = name
			e := sim.NewEngine()
			// Rebuild on a fresh engine per device so clocks don't mix.
			devs := devicesUnderTest(e, seed)
			dev = devs[name]
			rng := xrand.New(seed + 99)
			var last sim.Time
			for _, raw := range ops {
				op := OpRead
				if raw%2 == 1 {
					op = OpWrite
				}
				off := units.Bytes(rng.Int64n(int64(4 * units.GiB)))
				n := units.Bytes(rng.Int64n(int64(2*units.MiB))) + 1
				end := dev.Submit(op, off, n, nil)
				if end < e.Now() {
					t.Logf("%s: completion %v before now %v", name, end, e.Now())
					return false
				}
				if name == "disk" && end < last {
					t.Logf("%s: completion %v before previous %v (FCFS broken)", name, end, last)
					return false
				}
				if end > last {
					last = end
				}
			}
			e.AdvanceTo(last)
			e.Advance(30) // burst-buffer drain slack
			if !dev.Idle() {
				t.Logf("%s: not idle after drain", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: done callbacks fire exactly once per request, at the
// returned completion time, for every Device implementation.
func TestDeviceDoneCallbackProperty(t *testing.T) {
	for name, _ := range devicesUnderTest(sim.NewEngine(), 1) {
		e := sim.NewEngine()
		dev := devicesUnderTest(e, 7)[name]
		rng := xrand.New(8)
		type rec struct {
			want sim.Time
			got  sim.Time
			hits int
		}
		var recs []*rec
		for i := 0; i < 50; i++ {
			r := &rec{got: -1}
			recs = append(recs, r)
			off := units.Bytes(rng.Int64n(int64(units.GiB)))
			n := units.Bytes(rng.Int64n(int64(units.MiB))) + 1
			r.want = dev.Submit(OpWrite, off, n, func() {
				r.got = e.Now()
				r.hits++
			})
		}
		e.Advance(3600)
		for i, r := range recs {
			if r.hits != 1 {
				t.Fatalf("%s: request %d done fired %d times", name, i, r.hits)
			}
			if r.got != r.want {
				t.Fatalf("%s: request %d done at %v, want %v", name, i, r.got, r.want)
			}
		}
	}
}

package storage

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// testDisk returns a deterministic-rotation disk for exact assertions.
func testDisk(t *testing.T) (*sim.Engine, *Disk, *power.Domain) {
	t.Helper()
	e := sim.NewEngine()
	d := power.NewDomain(e, "disk", 0)
	p := SeagateHDD()
	p.DeterministicRotation = true
	return e, NewDisk(e, p, d, xrand.New(1)), d
}

func TestRevolutionTime(t *testing.T) {
	_, d, _ := testDisk(t)
	want := 60.0 / 7200
	if got := float64(d.RevolutionTime()); math.Abs(got-want) > 1e-12 {
		t.Errorf("RevolutionTime = %v, want %v", got, want)
	}
}

func TestSequentialReadIsBandwidthBound(t *testing.T) {
	e, d, _ := testDisk(t)
	// First request seeks; follow-ups at the head position stream.
	end := d.Submit(OpRead, 0, units.MiB, nil)
	e.AdvanceTo(end)
	start := e.Now()
	const chunks = 8
	for i := 0; i < chunks; i++ {
		end = d.Submit(OpRead, units.MiB+units.Bytes(i)*units.MiB, units.MiB, nil)
	}
	e.AdvanceTo(end)
	got := float64(e.Now() - start)
	want := float64(chunks) * float64(units.MiB) / d.Params().SeqReadBW
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sequential stream took %v, want %v (pure transfer)", got, want)
	}
}

func TestRandomReadPaysSeekAndRotation(t *testing.T) {
	e, d, _ := testDisk(t)
	end := d.Submit(OpRead, 0, 16*units.KiB, nil)
	e.AdvanceTo(end)
	start := e.Now()
	end = d.Submit(OpRead, 100*units.GiB, 16*units.KiB, nil)
	e.AdvanceTo(end)
	elapsed := float64(e.Now() - start)
	xfer := float64(16*units.KiB) / d.Params().SeqReadBW
	rot := float64(d.RevolutionTime()) / 2
	if elapsed <= xfer+rot {
		t.Errorf("random read took %v, expected seek + rotation on top of %v", elapsed, xfer+rot)
	}
	minSeek := float64(d.Params().MinSeek)
	if elapsed < xfer+rot+minSeek {
		t.Errorf("random read took %v, below minimum positioning cost", elapsed)
	}
}

func TestSmallForwardGapChargedAtMediaRate(t *testing.T) {
	e, d, _ := testDisk(t)
	end := d.Submit(OpWrite, 0, 16*units.KiB, nil)
	e.AdvanceTo(end)
	start := e.Now()
	// 64 KiB hole, within the 256 KiB sequential window.
	end = d.Submit(OpWrite, 16*units.KiB+64*units.KiB, 16*units.KiB, nil)
	e.AdvanceTo(end)
	got := float64(e.Now() - start)
	want := float64(64*units.KiB+16*units.KiB) / d.Params().SeqWriteBW
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("hole-y write took %v, want %v (gap at media rate)", got, want)
	}
	if d.Stats().Seeks != 1 { // only the initial positioning
		t.Errorf("Seeks = %d, want 1 (gap pass-over is not a seek)", d.Stats().Seeks)
	}
}

func TestBackwardGapSeeks(t *testing.T) {
	_, d, _ := testDisk(t)
	d.Submit(OpRead, units.MiB, 16*units.KiB, nil)
	pos, _ := d.ServiceTime(OpRead, units.MiB-32*units.KiB, 16*units.KiB)
	if pos <= 0 {
		t.Error("backward gap did not pay positioning")
	}
}

func TestSeekTimeMonotonicInDistance(t *testing.T) {
	_, d, _ := testDisk(t)
	prev := units.Seconds(0)
	for _, dist := range []units.Bytes{units.MiB, units.GiB, 10 * units.GiB, 100 * units.GiB} {
		s := d.seekTime(dist)
		if s <= prev {
			t.Errorf("seekTime(%v) = %v not greater than %v", dist, s, prev)
		}
		prev = s
	}
	if d.seekTime(0) != 0 {
		t.Error("seekTime(0) != 0")
	}
}

func TestAverageRandomSeekNearCalibration(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(2))
	rng := xrand.New(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		a := units.Bytes(rng.Int64n(int64(p.Capacity)))
		b := units.Bytes(rng.Int64n(int64(p.Capacity)))
		dist := a - b
		if dist < 0 {
			dist = -dist
		}
		sum += float64(d.seekTime(dist))
	}
	avg := sum / n
	// Calibrated to ~7.2 ms average random seek (3.5 ms settle+min plus
	// the sqrt curve), a typical 7200 rpm desktop figure.
	if avg < 6.4e-3 || avg > 8.0e-3 {
		t.Errorf("average random seek = %.2f ms, want ~7.2 ms", avg*1000)
	}
}

func TestDiskPowerTransitions(t *testing.T) {
	e, d, dom := testDisk(t)
	idle := d.Params().IdlePower
	if dom.Level() != idle {
		t.Fatalf("initial disk power = %v, want %v", dom.Level(), idle)
	}
	end := d.Submit(OpRead, 10*units.GiB, 10*units.MiB, nil)
	// Mid-positioning: seek power.
	e.Advance(1 * units.Millisecond)
	if got := dom.Level(); got != idle+d.Params().SeekDyn {
		t.Errorf("power during seek = %v, want %v", got, idle+d.Params().SeekDyn)
	}
	// Mid-transfer: read transfer power.
	e.AdvanceTo(end - 0.001)
	if got := dom.Level(); got != idle+d.Params().ReadXferDyn {
		t.Errorf("power during transfer = %v, want %v", got, idle+d.Params().ReadXferDyn)
	}
	e.AdvanceTo(end + 0.001)
	if got := dom.Level(); got != idle {
		t.Errorf("power after completion = %v, want idle %v", got, idle)
	}
}

func TestDiskPowerStaysBusyAcrossQueuedRequests(t *testing.T) {
	e, d, dom := testDisk(t)
	d.Submit(OpWrite, 0, 50*units.MiB, nil)
	end2 := d.Submit(OpWrite, 50*units.MiB, 50*units.MiB, nil)
	// Between the two queued transfers the disk must not dip to idle.
	mid := end2 - units.Seconds(float64(25*units.MiB)/d.Params().SeqWriteBW)
	e.AdvanceTo(mid)
	if got := dom.Level(); got != d.Params().IdlePower+d.Params().WriteXferDyn {
		t.Errorf("power between queued requests = %v, want busy write level", got)
	}
	e.AdvanceTo(end2)
	if got := dom.Level(); got != d.Params().IdlePower {
		t.Errorf("power after queue drains = %v, want idle", got)
	}
}

func TestDiskEnergyIntegral(t *testing.T) {
	e, d, dom := testDisk(t)
	end := d.Submit(OpRead, 0, 120*units.MiB, nil)
	e.AdvanceTo(end)
	// One seek+rot then pure transfer at 120 MB/s for ~1.05 s.
	pos, xfer := units.Seconds(0), units.Seconds(float64(120*units.MiB)/d.Params().SeqReadBW)
	pos = d.Params().MinSeek + d.RevolutionTime()/2 // offset 0: distance 0 from head 0 -> actually sequential
	_ = pos
	gotE := float64(dom.Energy())
	// The first request from head 0 to offset 0 is sequential: no seek.
	wantE := float64(d.Params().IdlePower+d.Params().ReadXferDyn) * float64(xfer)
	if math.Abs(gotE-wantE) > 1e-6 {
		t.Errorf("disk energy = %v, want %v", gotE, wantE)
	}
}

func TestDiskStats(t *testing.T) {
	e, d, _ := testDisk(t)
	end := d.Submit(OpRead, 0, units.MiB, nil)
	end = d.Submit(OpWrite, 10*units.GiB, 2*units.MiB, nil)
	e.AdvanceTo(end)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.BytesRead != units.MiB || st.BytesWritten != 2*units.MiB {
		t.Errorf("bytes = %d/%d", st.BytesRead, st.BytesWritten)
	}
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1 (write jumped)", st.Seeks)
	}
}

func TestDiskRequestOutOfBoundsPanics(t *testing.T) {
	_, d, _ := testDisk(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-capacity request did not panic")
		}
	}()
	d.Submit(OpRead, d.Params().Capacity-units.KiB, units.MiB, nil)
}

func TestDiskUtilization(t *testing.T) {
	e, d, _ := testDisk(t)
	end := d.Submit(OpRead, 0, 120*units.MiB, nil) // ~1.05 s busy
	e.AdvanceTo(end * 2)                           // equal idle tail
	u := d.Utilization()
	if math.Abs(u-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
}

func TestSampledRotationBounds(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	d := NewDisk(e, p, nil, xrand.New(9))
	rev := float64(d.RevolutionTime())
	for i := 0; i < 1000; i++ {
		r := float64(d.rotationalLatency())
		if r < 0 || r >= rev {
			t.Fatalf("rotational latency %v outside [0, %v)", r, rev)
		}
	}
}

func TestFullStrokeSeekNearMaxSeek(t *testing.T) {
	_, d, _ := testDisk(t)
	got := float64(d.seekTime(d.Params().Capacity))
	p := d.Params()
	want := float64(p.SettleTime + p.MaxSeek)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("full-stroke seek = %v, want %v (settle + max stroke)", got, want)
	}
}

func TestDiskSpindown(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	p.StandbyAfter = 5
	p.StandbyPower = 0.8
	p.SpinupTime = 6
	dom := power.NewDomain(e, "disk", 0)
	d := NewDisk(e, p, dom, xrand.New(1))

	end := d.Submit(OpRead, 0, units.MiB, nil)
	e.AdvanceTo(end + 4) // not yet idle long enough
	if d.Standby() {
		t.Fatal("spun down before StandbyAfter elapsed")
	}
	e.Advance(2) // now past the threshold
	if !d.Standby() {
		t.Fatal("did not spin down after idle threshold")
	}
	if dom.Level() != 0.8 {
		t.Errorf("standby power = %v, want 0.8", dom.Level())
	}

	// The next request pays the spinup.
	start := e.Now()
	end = d.Submit(OpRead, units.MiB, units.MiB, nil)
	e.AdvanceTo(end)
	if elapsed := float64(e.Now() - start); elapsed < 6 {
		t.Errorf("post-standby request took %v, want >= 6 s spinup", elapsed)
	}
	if d.Standby() {
		t.Error("still standby after serving a request")
	}
	if d.Stats().Spinups != 1 {
		t.Errorf("Spinups = %d, want 1", d.Stats().Spinups)
	}
	if dom.Level() != p.IdlePower {
		t.Errorf("power after request = %v, want idle", dom.Level())
	}
}

func TestDiskSpindownCancelledByNewWork(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	p.StandbyAfter = 5
	p.SpinupTime = 6
	d := NewDisk(e, p, nil, xrand.New(1))
	end := d.Submit(OpRead, 0, units.MiB, nil)
	e.AdvanceTo(end + 3)
	d.Submit(OpRead, units.MiB, units.MiB, nil) // resets the idle window
	e.Advance(4)                                // old threshold passes mid-activity
	if d.Standby() {
		t.Error("spun down despite intervening work")
	}
}

func TestRandom16KiBInsideFileNearPaperLatency(t *testing.T) {
	// Table III: 4 GiB of 16 KiB random reads in 2230 s => ~8.5 ms/op.
	e, d, _ := testDisk(t)
	rng := xrand.New(11)
	const ops = 2000
	base := 10 * units.GiB
	span := int64(4 * units.GiB / (16 * units.KiB))
	start := e.Now()
	var end sim.Time
	for i := 0; i < ops; i++ {
		off := base + units.Bytes(rng.Int64n(span))*16*units.KiB
		end = d.Submit(OpRead, off, 16*units.KiB, nil)
	}
	e.AdvanceTo(end)
	perOp := float64(e.Now()-start) / ops * 1000
	if perOp < 7.0 || perOp > 10.0 {
		t.Errorf("random 16 KiB read = %.2f ms/op, want ~8.5 ms", perOp)
	}
}

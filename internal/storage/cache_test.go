package storage

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

// testCache builds an engine + deterministic disk + cache with small
// thresholds so tests can exercise write-back without gigabytes.
func testCache(t *testing.T, params CacheParams) (*sim.Engine, *Disk, *PageCache) {
	t.Helper()
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(1))
	return e, d, NewPageCache(e, d, params)
}

func smallCacheParams() CacheParams {
	return CacheParams{
		MemBW:           3e9,
		BackgroundDirty: 8 * units.MiB,
		DirtyLimit:      16 * units.MiB,
		LowWater:        2 * units.MiB,
		BatchBytes:      4 * units.MiB,
	}
}

func TestWriteBuffersAtMemorySpeed(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	start := e.Now()
	c.Write(0, 3*units.MiB)
	elapsed := float64(e.Now() - start)
	want := float64(3*units.MiB) / 3e9
	if math.Abs(elapsed-want) > 1e-9 {
		t.Errorf("buffered write took %v, want %v (memcpy only)", elapsed, want)
	}
	if d.Stats().Writes != 0 {
		t.Error("buffered write below background threshold hit the media")
	}
	if c.DirtyBytes() != 3*units.MiB {
		t.Errorf("DirtyBytes = %v, want 3 MiB", c.DirtyBytes())
	}
}

func TestBackgroundWritebackKicksIn(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	c.Write(0, 10*units.MiB) // above BackgroundDirty=8 MiB
	// Let the daemon run.
	e.Advance(10)
	if d.Stats().BytesWritten == 0 {
		t.Fatal("background write-back never touched the media")
	}
	if c.DirtyBytes() > 2*units.MiB {
		t.Errorf("dirty after background drain = %v, want <= LowWater", c.DirtyBytes())
	}
}

func TestSyncDrainsEverything(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	c.Write(0, 5*units.MiB)
	c.Sync()
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty after Sync = %v, want 0", c.DirtyBytes())
	}
	if d.Stats().BytesWritten != 5*units.MiB {
		t.Errorf("media writes = %v, want 5 MiB", d.Stats().BytesWritten)
	}
	if !d.Idle() {
		t.Error("disk still busy after Sync returned")
	}
	_ = e
}

func TestSyncIsBandwidthBoundForSequentialData(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	c.Write(0, 32*units.MiB)
	// Drain whatever background started plus the rest.
	start := e.Now()
	c.Sync()
	elapsed := float64(e.Now() - start)
	// All 32 MiB (modulo what background already drained) at write BW.
	maxWant := float64(32*units.MiB)/d.Params().SeqWriteBW + 0.05
	if elapsed > maxWant {
		t.Errorf("Sync of sequential data took %v, want <= %v", elapsed, maxWant)
	}
}

func TestReadMissGoesToMedia(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	start := e.Now()
	c.Read(units.GiB, units.MiB)
	if d.Stats().Reads == 0 {
		t.Fatal("cold read did not hit the media")
	}
	elapsed := float64(e.Now() - start)
	xfer := float64(units.MiB) / d.Params().SeqReadBW
	if elapsed <= xfer {
		t.Errorf("cold read took %v, expected positioning on top of %v", elapsed, xfer)
	}
	st := c.Stats()
	if st.ReadMisses != units.MiB || st.ReadHits != 0 {
		t.Errorf("hits/misses = %v/%v, want 0/1MiB", st.ReadHits, st.ReadMisses)
	}
}

func TestReadHitIsMemorySpeed(t *testing.T) {
	e, _, c := testCache(t, smallCacheParams())
	c.Read(units.GiB, units.MiB) // populate
	start := e.Now()
	c.Read(units.GiB, units.MiB) // hit
	elapsed := float64(e.Now() - start)
	want := float64(units.MiB) / 3e9
	if math.Abs(elapsed-want) > 1e-9 {
		t.Errorf("warm read took %v, want %v", elapsed, want)
	}
	if got := c.Stats().ReadHits; got != units.MiB {
		t.Errorf("ReadHits = %v, want 1 MiB", got)
	}
}

func TestReadOfDirtyDataIsServedFromRAM(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	c.Write(units.GiB, units.MiB)
	reads := d.Stats().Reads
	c.Read(units.GiB, units.MiB)
	if d.Stats().Reads != reads {
		t.Error("read of dirty data hit the media")
	}
}

func TestPartialHitReadsOnlyGaps(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	c.Read(units.GiB, units.MiB) // cache the first MiB
	c.Read(units.GiB, 2*units.MiB)
	if got := d.Stats().BytesRead; got != 2*units.MiB {
		t.Errorf("media bytes read = %v, want 2 MiB (1 cold + 1 gap)", got)
	}
}

func TestDropCachesEvictsCleanKeepsDirty(t *testing.T) {
	_, _, c := testCache(t, smallCacheParams())
	c.Read(units.GiB, units.MiB) // clean
	c.Write(0, units.MiB)        // dirty
	c.DropCaches()
	if c.CachedBytes() != units.MiB {
		t.Errorf("cached after drop = %v, want 1 MiB (dirty only)", c.CachedBytes())
	}
	if c.DirtyBytes() != units.MiB {
		t.Errorf("dirty after drop = %v, want 1 MiB", c.DirtyBytes())
	}
}

func TestDropCachesMakesReadsColdAgain(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	c.Read(units.GiB, units.MiB)
	c.DropCaches()
	before := d.Stats().BytesRead
	c.Read(units.GiB, units.MiB)
	if got := d.Stats().BytesRead - before; got != units.MiB {
		t.Errorf("re-read after drop hit media for %v, want 1 MiB", got)
	}
}

func TestDirtyLimitThrottles(t *testing.T) {
	e, _, c := testCache(t, smallCacheParams())
	// Write 3x the dirty limit in one call: the writer must block while
	// the media drains.
	c.Write(0, 48*units.MiB)
	if c.Stats().Throttles == 0 {
		t.Error("write far above DirtyLimit did not throttle")
	}
	elapsed := float64(e.Now())
	memOnly := float64(48*units.MiB) / 3e9
	if elapsed <= memOnly*2 {
		t.Errorf("throttled write took %v, barely more than memcpy %v", elapsed, memOnly)
	}
}

func TestSyncRangesOnlyDrainsRequested(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	c.Write(0, units.MiB)
	c.Write(units.GiB, units.MiB)
	c.SyncRanges([]Range{{0, units.MiB}})
	if c.DirtyBytes() != units.MiB {
		t.Errorf("dirty after range sync = %v, want 1 MiB left", c.DirtyBytes())
	}
	if d.Stats().BytesWritten != units.MiB {
		t.Errorf("media writes = %v, want 1 MiB", d.Stats().BytesWritten)
	}
}

func TestInvalidateDiscardsDirty(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	c.Write(0, units.MiB)
	c.Invalidate(Range{0, units.MiB})
	c.Sync()
	if d.Stats().BytesWritten != 0 {
		t.Error("invalidated dirty data still reached media")
	}
}

func TestOverwriteDirtyDoesNotGrowDirty(t *testing.T) {
	_, _, c := testCache(t, smallCacheParams())
	c.Write(0, units.MiB)
	c.Write(0, units.MiB)
	if c.DirtyBytes() != units.MiB {
		t.Errorf("dirty after overwrite = %v, want 1 MiB", c.DirtyBytes())
	}
}

func TestZeroLengthOpsAreNoops(t *testing.T) {
	e, d, c := testCache(t, smallCacheParams())
	before := e.Now()
	c.Write(0, 0)
	c.Read(0, 0)
	if e.Now() != before || d.Stats().Reads+d.Stats().Writes != 0 {
		t.Error("zero-length ops had effects")
	}
}

func TestCacheParamValidation(t *testing.T) {
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(1))
	bad := smallCacheParams()
	bad.DirtyLimit = bad.BackgroundDirty - 1
	defer func() {
		if recover() == nil {
			t.Error("DirtyLimit < BackgroundDirty did not panic")
		}
	}()
	NewPageCache(e, d, bad)
}

// Write-back conservation: every dirty byte either reaches the media or
// is invalidated; after Sync, media writes == total buffered writes for
// non-overlapping writes.
func TestWritebackConservation(t *testing.T) {
	_, d, c := testCache(t, smallCacheParams())
	rng := xrand.New(42)
	var total units.Bytes
	for i := 0; i < 50; i++ {
		off := units.Bytes(i) * 10 * units.MiB
		n := units.Bytes(rng.Int64n(int64(units.MiB))) + 4*units.KiB
		c.Write(off, n)
		total += n
	}
	c.Sync()
	if got := d.Stats().BytesWritten; got != total {
		t.Errorf("media bytes written = %v, want %v", got, total)
	}
	if c.DirtyBytes() != 0 {
		t.Errorf("dirty after sync = %v", c.DirtyBytes())
	}
}

package storage

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/xrand"
)

func testBB(t *testing.T, params NVRAMParams) (*sim.Engine, *Disk, *BurstBuffer, *power.Domain) {
	t.Helper()
	e := sim.NewEngine()
	p := SeagateHDD()
	p.DeterministicRotation = true
	d := NewDisk(e, p, nil, xrand.New(1))
	dom := power.NewDomain(e, "nvram", 0)
	return e, d, NewBurstBuffer(e, d, params, dom), dom
}

func TestBurstBufferAbsorbsWritesAtNVRAMSpeed(t *testing.T) {
	e, d, b, _ := testBB(t, DefaultNVRAM())
	start := e.Now()
	end := b.Submit(OpWrite, 0, 180*units.MiB, nil)
	e.AdvanceTo(end)
	elapsed := float64(e.Now() - start)
	want := 20e-6 + float64(180*units.MiB)/1.8e9
	if math.Abs(elapsed-want) > 1e-9 {
		t.Errorf("buffered write took %v, want %v (NVRAM speed)", elapsed, want)
	}
	if d.Stats().Writes != 0 {
		t.Error("write hit the backing disk synchronously")
	}
	if b.ResidentBytes() != 180*units.MiB {
		t.Errorf("resident = %v", b.ResidentBytes())
	}
}

func TestBurstBufferDrainsToBackingStore(t *testing.T) {
	e, d, b, _ := testBB(t, DefaultNVRAM())
	b.Submit(OpWrite, 0, 64*units.MiB, nil)
	// After the drain delay plus transfer time, data must be on disk.
	e.Advance(10)
	if d.Stats().BytesWritten != 64*units.MiB {
		t.Errorf("backing store got %v, want 64 MiB", d.Stats().BytesWritten)
	}
	if b.ResidentBytes() != 0 {
		t.Errorf("resident after drain = %v", b.ResidentBytes())
	}
	if !b.Idle() {
		t.Error("buffer not idle after drain")
	}
	if got := b.Stats().DrainedBytes; got != 64*units.MiB {
		t.Errorf("DrainedBytes = %v", got)
	}
}

func TestBurstBufferReadHitWhileResident(t *testing.T) {
	params := DefaultNVRAM()
	params.DrainDelay = 1000 // keep data resident
	e, d, b, _ := testBB(t, params)
	end := b.Submit(OpWrite, 0, 32*units.MiB, nil)
	e.AdvanceTo(end)
	start := e.Now()
	end = b.Submit(OpRead, 0, 32*units.MiB, nil)
	e.AdvanceTo(end)
	elapsed := float64(e.Now() - start)
	want := 20e-6 + float64(32*units.MiB)/2.2e9
	if math.Abs(elapsed-want) > 1e-9 {
		t.Errorf("resident read took %v, want %v", elapsed, want)
	}
	if d.Stats().Reads != 0 {
		t.Error("resident read hit the backing disk")
	}
	if b.Stats().HitBytes != 32*units.MiB {
		t.Errorf("HitBytes = %v", b.Stats().HitBytes)
	}
}

func TestBurstBufferReadMissGoesToBacking(t *testing.T) {
	e, d, b, _ := testBB(t, DefaultNVRAM())
	end := b.Submit(OpRead, units.GiB, units.MiB, nil)
	e.AdvanceTo(end)
	if d.Stats().Reads != 1 {
		t.Errorf("backing reads = %d, want 1", d.Stats().Reads)
	}
	if b.Stats().MissBytes != units.MiB {
		t.Errorf("MissBytes = %v", b.Stats().MissBytes)
	}
}

func TestBurstBufferMixedReadSplits(t *testing.T) {
	params := DefaultNVRAM()
	params.DrainDelay = 1000
	e, d, b, _ := testBB(t, params)
	b.Submit(OpWrite, 0, units.MiB, nil) // first MiB resident
	end := b.Submit(OpRead, 0, 2*units.MiB, nil)
	e.AdvanceTo(end)
	if d.Stats().BytesRead != units.MiB {
		t.Errorf("backing read %v, want exactly the non-resident MiB", d.Stats().BytesRead)
	}
}

func TestBurstBufferOverflowSpills(t *testing.T) {
	params := DefaultNVRAM()
	params.Capacity = 8 * units.MiB
	params.DrainDelay = 1000
	e, d, b, _ := testBB(t, params)
	b.Submit(OpWrite, 0, 6*units.MiB, nil)
	end := b.Submit(OpWrite, 100*units.MiB, 6*units.MiB, nil) // would exceed 8 MiB
	e.AdvanceTo(end)
	if d.Stats().BytesWritten != 6*units.MiB {
		t.Errorf("spill wrote %v to backing, want 6 MiB", d.Stats().BytesWritten)
	}
}

func TestBurstBufferPowerBracketing(t *testing.T) {
	params := DefaultNVRAM()
	e, _, b, dom := testBB(t, params)
	if dom.Level() != params.IdlePower {
		t.Fatalf("idle NVRAM power = %v", dom.Level())
	}
	end := b.Submit(OpWrite, 0, 512*units.MiB, nil)
	e.AdvanceTo(end - 0.001)
	if dom.Level() != params.IdlePower+params.ActiveDyn {
		t.Errorf("active NVRAM power = %v", dom.Level())
	}
	e.AdvanceTo(end + 0.001)
	if dom.Level() != params.IdlePower {
		t.Errorf("post-transfer NVRAM power = %v", dom.Level())
	}
}

func TestBurstBufferUnderFilesystemSpeedsUpFsync(t *testing.T) {
	// The checkpoint fsync path should get dramatically cheaper with an
	// NVRAM tier absorbing the sync... but note the drain still happens
	// in the background.
	run := func(withBB bool) (units.Seconds, units.Bytes) {
		e := sim.NewEngine()
		p := SeagateHDD()
		p.DeterministicRotation = true
		d := NewDisk(e, p, nil, xrand.New(1))
		var dev Device = d
		if withBB {
			dev = NewBurstBuffer(e, d, DefaultNVRAM(), nil)
		}
		cache := NewPageCache(e, dev, smallCacheParams())
		fs := NewFileSystem(e, dev, cache, DefaultFS(), xrand.New(2))
		f := fs.Create("ckpt", AllocContiguous)
		f.AppendSparse(64 * units.MiB)
		start := e.Now()
		f.Fsync()
		fsyncTime := e.Now() - start
		// Let any background drain finish.
		e.Advance(60)
		return fsyncTime, d.Stats().BytesWritten
	}
	plain, plainBytes := run(false)
	buffered, bufferedBytes := run(true)
	if float64(buffered) > 0.25*float64(plain) {
		t.Errorf("fsync with burst buffer %v, want <25%% of plain %v", buffered, plain)
	}
	// Durability: the data reaches the spinning disk either way.
	if plainBytes < 64*units.MiB || bufferedBytes < 64*units.MiB {
		t.Errorf("backing bytes plain/buffered = %v/%v, want >= 64 MiB both", plainBytes, bufferedBytes)
	}
}

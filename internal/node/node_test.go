package node

import (
	"math"
	"testing"

	"repro/internal/units"
)

// quiet returns a SandyBridge node with stochastic parts disabled so
// power levels are exact.
func quiet(seed uint64) *Node {
	p := SandyBridge()
	p.OSNoiseSigma = 0
	p.Disk.DeterministicRotation = true
	return New(p, seed)
}

func TestIdleSystemPowerCalibration(t *testing.T) {
	n := quiet(1)
	// DESIGN.md §3: idle = 42 pkg + 10 dram + 5 disk + 47.5 rest = 104.5 W.
	if got := float64(n.SystemPower()); math.Abs(got-104.5) > 0.01 {
		t.Errorf("idle system power = %v, want 104.5", got)
	}
}

func TestSimulationPhasePowerCalibration(t *testing.T) {
	n := quiet(1)
	n.setLoad(n.Profile.SimCores, 1.0, n.Profile.SimDRAMGBs)
	got := float64(n.SystemPower())
	// Paper §V-A: the simulation phase draws ~143 W.
	if got < 141 || got > 145 {
		t.Errorf("simulation-phase power = %v, want ~143", got)
	}
}

func TestVisualizationPhasePowerCalibration(t *testing.T) {
	n := quiet(1)
	n.setLoad(n.Profile.VizCores, 0.85, n.Profile.VizDRAMGBs)
	got := float64(n.SystemPower())
	// Paper §V-A: the visualization phase draws ~121 W.
	if got < 118.5 || got > 123.5 {
		t.Errorf("visualization-phase power = %v, want ~121", got)
	}
}

func TestComputeAdvancesCalibratedTime(t *testing.T) {
	n := quiet(1)
	start := n.Now()
	updates := uint64(n.Profile.CellUpdateRate * 2.18) // one paper iteration
	n.Compute(updates)
	elapsed := float64(n.Now() - start)
	if math.Abs(elapsed-2.18) > 1e-9 {
		t.Errorf("Compute took %v, want 2.18 s", elapsed)
	}
	if got := float64(n.SystemPower()); math.Abs(got-104.5) > 0.01 {
		t.Errorf("power after Compute = %v, want idle", got)
	}
}

func TestComputeEnergyMatchesPowerTimesTime(t *testing.T) {
	n := quiet(1)
	e0 := n.SystemEnergy()
	n.setLoad(n.Profile.SimCores, 1.0, n.Profile.SimDRAMGBs)
	p := n.SystemPower()
	n.idleLoad()
	e0 = n.SystemEnergy()
	n.Compute(uint64(n.Profile.CellUpdateRate)) // exactly 1 s of compute
	got := float64(n.SystemEnergy() - e0)
	if math.Abs(got-float64(p)) > 0.01 {
		t.Errorf("1 s of compute consumed %v J, want %v", got, p)
	}
}

func TestRenderCost(t *testing.T) {
	n := quiet(1)
	// 512x512 pixels + 3 isolines over 127x127 cells + ~1 MiB PNG
	// must land near the paper's ~0.65 s per-frame visualization cost
	// (10 % of case study 1's execution time over 50 events).
	cost := float64(n.RenderCost(512*512, 3*127*127, units.MiB))
	if cost < 0.55 || cost > 0.8 {
		t.Errorf("render cost = %v s, want ~0.65", cost)
	}
}

func TestWithIORestoresIdle(t *testing.T) {
	n := quiet(1)
	n.WithIO(func() {
		if got := float64(n.SystemPower()); math.Abs(got-104.5) < 0.1 {
			t.Error("I/O operating point identical to idle")
		}
		n.Engine.Advance(1)
	})
	if got := float64(n.SystemPower()); math.Abs(got-104.5) > 0.01 {
		t.Errorf("power after WithIO = %v, want idle", got)
	}
}

func TestIOPhasePowerWithWriteStream(t *testing.T) {
	n := quiet(1)
	// Stream a write through cache + media: during the drain the system
	// should sit near the paper's ~115 W write-stage level.
	f := n.FS.Create("w", 0)
	var during float64
	n.WithIO(func() {
		f.AppendSparse(256 * units.MiB)
		n.Engine.After(0.7, func() { during = float64(n.SystemPower()) })
		f.Fsync()
	})
	if during < 112 || during > 118.5 {
		t.Errorf("write-stage system power = %v, want ~115", during)
	}
}

func TestDeterminismAcrossNodes(t *testing.T) {
	run := func() (units.Seconds, units.Joules) {
		p := SandyBridge()
		p.Disk.DeterministicRotation = false // exercise the rng path
		n := New(p, 42)
		f := n.FS.Create("x", 1)
		n.WithIO(func() {
			f.AppendSparse(64 * units.MiB)
			f.Fsync()
		})
		n.StopNoise()
		return n.Now(), n.SystemEnergy()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", t1, e1, t2, e2)
	}
}

func TestOSNoisePerturbsPackage(t *testing.T) {
	p := SandyBridge()
	p.Disk.DeterministicRotation = true
	n := New(p, 7)
	inst := n.NewInstruments("noise", nil)
	inst.Start()
	n.Idle(60)
	inst.Stop()
	n.StopNoise()
	st := inst.Profile.SeriesByName("system").Summarize()
	if st.Max-st.Min < 0.5 {
		t.Error("OS noise produced flat profile")
	}
	if math.Abs(st.Mean-104.7) > 1.0 { // +0.2 W RAPL overhead
		t.Errorf("noisy idle mean = %v, want ~104.7", st.Mean)
	}
}

func TestStopNoiseRestoresBaseline(t *testing.T) {
	p := SandyBridge()
	p.Disk.DeterministicRotation = true
	n := New(p, 7)
	n.Idle(10)
	n.StopNoise()
	if got := float64(n.SystemPower()); math.Abs(got-104.5) > 0.01 {
		t.Errorf("power after StopNoise = %v, want 104.5", got)
	}
}

func TestInstrumentsRecordBothMeters(t *testing.T) {
	n := quiet(3)
	inst := n.NewInstruments("run", nil)
	inst.Start()
	n.Idle(10)
	inst.Stop()
	sys := inst.Profile.SeriesByName("system")
	pkg := inst.Profile.SeriesByName("rapl.PKG")
	dram := inst.Profile.SeriesByName("rapl.DRAM")
	if sys.Len() != 10 || pkg.Len() != 10 || dram.Len() != 10 {
		t.Fatalf("sample counts = %d/%d/%d, want 10 each", sys.Len(), pkg.Len(), dram.Len())
	}
	if math.Abs(pkg.At(5).V-42.2) > 0.3 {
		t.Errorf("RAPL PKG idle = %v, want ~42.2 (incl. monitor overhead)", pkg.At(5).V)
	}
	if math.Abs(dram.At(5).V-10) > 0.2 {
		t.Errorf("RAPL DRAM idle = %v, want ~10", dram.At(5).V)
	}
}

func TestSpecTable(t *testing.T) {
	n := quiet(1)
	rows := n.Spec()
	if len(rows) != 8 {
		t.Fatalf("Table I rows = %d, want 8", len(rows))
	}
	if rows[0].Value != "2x Intel Xeon E5-2665" {
		t.Errorf("CPU row = %q", rows[0].Value)
	}
	if rows[4].Value != "64GiB" {
		t.Errorf("memory row = %q", rows[4].Value)
	}
}

func TestRAIDNodeVariant(t *testing.T) {
	p := SandyBridgeRAID(4)
	p.OSNoiseSigma = 0
	p.Disk.DeterministicRotation = true
	n := New(p, 1)
	// Four spinning disks raise the idle floor by 3 extra disks' 5 W.
	want := 104.5 + 3*5
	if got := float64(n.SystemPower()); math.Abs(got-want) > 0.01 {
		t.Errorf("RAID idle power = %v, want %v", got, want)
	}
	f := n.FS.Create("x", 0)
	n.WithIO(func() {
		f.AppendSparse(64 * units.MiB)
		f.Fsync()
	})
	if n.DiskStats().BytesWritten < 64*units.MiB {
		t.Errorf("RAID media writes = %v", n.DiskStats().BytesWritten)
	}
}

func TestNVRAMNodeVariant(t *testing.T) {
	p := SandyBridgeNVRAM()
	p.OSNoiseSigma = 0
	p.Disk.DeterministicRotation = true
	n := New(p, 1)
	// Idle floor gains the NVRAM tier's 2 W.
	if got := float64(n.SystemPower()); math.Abs(got-106.5) > 0.01 {
		t.Errorf("NVRAM node idle power = %v, want 106.5", got)
	}
	f := n.FS.Create("ck", 0)
	start := n.Now()
	n.WithIO(func() {
		f.AppendSparse(64 * units.MiB)
		f.Fsync()
	})
	fsyncTime := float64(n.Now() - start)
	if fsyncTime > 0.3 {
		t.Errorf("NVRAM-buffered fsync took %v, want well under disk time", fsyncTime)
	}
	n.WaitDiskIdle() // background drain to the spinning disk
	if n.DiskStats().BytesWritten < 64*units.MiB {
		t.Errorf("drain incomplete: %v on backing disk", n.DiskStats().BytesWritten)
	}
}

func TestPowerCappedNodeStretchesCompute(t *testing.T) {
	base := quiet(1)
	capped := func() *Node {
		p := SandyBridge()
		p.OSNoiseSigma = 0
		p.Disk.DeterministicRotation = true
		p.PackagePowerCap = 60
		return New(p, 1)
	}()

	work := uint64(base.Profile.CellUpdateRate * 10)
	t0 := base.Now()
	base.Compute(work)
	baseTime := float64(base.Now() - t0)

	t0 = capped.Now()
	capped.Compute(work)
	cappedTime := float64(capped.Now() - t0)

	if cappedTime <= baseTime {
		t.Errorf("capped compute %v not slower than uncapped %v", cappedTime, baseTime)
	}
	// Peak package power respected the cap during the busy window.
	if pk := float64(capped.Bus.Domain("package").Peak()); pk > 60.3 { // +0.2 monitor-free
		t.Errorf("package peak under cap = %v, want <= 60", pk)
	}
}

func TestWaitDiskIdle(t *testing.T) {
	n := quiet(5)
	f := n.FS.Create("bg", 0)
	n.WithIO(func() {
		f.AppendSparse(n.Profile.Cache.BackgroundDirty + 32*units.MiB)
	})
	n.WaitDiskIdle()
	if !n.Device.Idle() {
		t.Error("disk not idle after WaitDiskIdle")
	}
}

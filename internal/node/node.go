// Package node assembles the substrates into the paper's system under
// test (Table I): a dual-socket Sandy Bridge Xeon E5-2665 node with
// 64 GB DDR3, a Seagate 500 GB 7200 rpm disk, a RAPL-instrumented CPU,
// and a Wattsup wall meter. It exposes the activity API the workloads
// drive — Compute, Render, WithIO, Idle — converting real work counts
// (cell updates, pixels, bytes) into virtual time and subsystem power.
//
// Every constant in Profile is calibrated against numbers the paper
// itself publishes; see DESIGN.md §3 for the derivation.
package node

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/rapl"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/wattsup"
	"repro/internal/xrand"
)

// Profile holds every hardware and calibration constant of a platform.
type Profile struct {
	Name string

	// CPU (Table I: 2x Intel Xeon E5-2665, 2.4 GHz, 16 cores).
	Sockets, CoresPerSocket int
	NominalGHz              float64
	PkgStaticPerSocket      units.Watts
	DynamicPerCore          units.Watts
	// PackagePowerCap, when positive, applies a RAPL PL1-style limit:
	// the CPU throttles frequency (stretching compute time) to keep
	// package power at or under the cap.
	PackagePowerCap units.Watts

	// Memory (Table I: 4x 16 GB DDR3-1333).
	MemoryBytes units.Bytes
	DRAMStatic  units.Watts
	DRAMPerGBs  float64

	// Rest of system (motherboard, fans, NIC, PSU overhead).
	RestBase units.Watts
	FanCoeff float64
	FanRef   units.Watts
	PSULoss  float64

	// Storage stack.
	Disk  storage.DiskParams
	Cache storage.CacheParams
	FS    storage.FSParams
	// RAIDMembers > 1 replaces the single disk with a RAID-0 array of
	// that many members (stripe unit RAIDStripe) — Future Work.
	RAIDMembers int
	RAIDStripe  units.Bytes
	// NVRAM, when non-nil, inserts a burst-buffer tier in front of the
	// disk — the Future Work deep-memory-hierarchy study.
	NVRAM *storage.NVRAMParams

	// Workload cost calibration: how fast this node performs each kind
	// of work, in virtual time. Derived from the paper's measured stage
	// times (DESIGN.md §3).
	CellUpdateRate  float64 // heat-solver cell updates per second
	PixelRate       float64 // colormapped pixels per second
	ContourCellRate float64 // marching-squares cells per second
	EncodeRate      float64 // PNG encode bytes per second
	CompressRate    float64 // DEFLATE field-compression bytes per second

	// Subsystem activity levels per workload kind.
	SimCores   int
	SimDRAMGBs float64
	VizCores   int
	VizDRAMGBs float64
	IOCores    int
	IODRAMGBs  float64

	// OSNoiseSigma perturbs package power around its level at ~3 Hz to
	// reproduce the jitter visible in the paper's profiles (0 = off).
	OSNoiseSigma units.Watts
}

// SandyBridge returns the paper's platform, fully calibrated.
func SandyBridge() Profile {
	return Profile{
		Name:               "2x Intel Xeon E5-2665 (Sandy Bridge), 64 GB DDR3, Seagate 500 GB 7200 rpm",
		Sockets:            2,
		CoresPerSocket:     8,
		NominalGHz:         2.4,
		PkgStaticPerSocket: 21,
		DynamicPerCore:     1.875,

		MemoryBytes: 64 * units.GiB,
		DRAMStatic:  10,
		DRAMPerGBs:  0.5,

		RestBase: 47.5,
		FanCoeff: 0.07,
		FanRef:   52,
		PSULoss:  0,

		Disk:  storage.SeagateHDD(),
		Cache: storage.LinuxPageCache(),
		FS:    storage.DefaultFS(),

		CellUpdateRate:  1.12e7,
		PixelRate:       4.6e5,
		ContourCellRate: 1.0e6,
		EncodeRate:      2.0e7,
		CompressRate:    2.5e8,

		SimCores:   16,
		SimDRAMGBs: 12,
		VizCores:   8,
		VizDRAMGBs: 6,
		IOCores:    1,
		IODRAMGBs:  0.6,

		OSNoiseSigma: 0.6,
	}
}

// SandyBridgeSSD returns the same node with the HDD swapped for a SATA
// SSD — the Future Work device study.
func SandyBridgeSSD() Profile {
	p := SandyBridge()
	p.Name = "2x Intel Xeon E5-2665 (Sandy Bridge), 64 GB DDR3, SATA SSD"
	p.Disk = storage.SamsungSSD()
	// The SSD draws less at idle; keep the wall floor comparable by
	// folding the difference into nothing — the floor legitimately
	// drops by ~3.8 W versus the HDD node.
	return p
}

// SandyBridgeRAID returns the node with its single disk replaced by a
// RAID-0 array of n identical members — the Future Work RAID study.
func SandyBridgeRAID(n int) Profile {
	p := SandyBridge()
	p.Name = fmt.Sprintf("2x Intel Xeon E5-2665 (Sandy Bridge), 64 GB DDR3, RAID-0 x%d 7200 rpm", n)
	p.RAIDMembers = n
	p.RAIDStripe = 256 * units.KiB
	return p
}

// SandyBridgeNVRAM returns the node with an NVRAM burst-buffer tier in
// front of the disk — the Future Work deep-memory-hierarchy study
// (Gamell et al. [26]).
func SandyBridgeNVRAM() Profile {
	p := SandyBridge()
	p.Name = "2x Intel Xeon E5-2665 (Sandy Bridge), 64 GB DDR3, NVRAM burst buffer + 7200 rpm"
	nv := storage.DefaultNVRAM()
	p.NVRAM = &nv
	return p
}

// Node is one simulated machine.
type Node struct {
	Profile Profile
	Engine  *sim.Engine
	Bus     *power.Bus

	CPU  *power.CPUModel
	DRAM *power.DRAMModel
	Rest *power.RestModel

	// Device is the block store under the cache/filesystem: a Disk, a
	// StripedDisk, or a BurstBuffer, per the profile.
	Device storage.Device
	Cache  *storage.PageCache
	FS     *storage.FileSystem

	MSR *rapl.MSR

	rng      *xrand.Rand
	noise    *sim.Ticker
	noiseCur units.Watts
}

// New builds a node from a profile. seed drives all stochastic parts
// (disk rotation, meter noise, OS noise, scattered allocation); equal
// seeds give bit-identical runs.
func New(profile Profile, seed uint64) *Node {
	return NewOnEngine(sim.NewEngine(), profile, seed)
}

// NewOnEngine builds a node on an existing engine, so several nodes can
// share one virtual clock — the multi-node (in-transit) experiments.
func NewOnEngine(engine *sim.Engine, profile Profile, seed uint64) *Node {
	rng := xrand.New(seed)
	bus := power.NewBus(engine, profile.PSULoss)

	n := &Node{Profile: profile, Engine: engine, Bus: bus, rng: rng}

	pkgDom := bus.NewDomain("package", 0)
	n.CPU = &power.CPUModel{
		Sockets:         profile.Sockets,
		CoresPerSocket:  profile.CoresPerSocket,
		StaticPerSocket: profile.PkgStaticPerSocket,
		DynamicPerCore:  profile.DynamicPerCore,
		NominalGHz:      profile.NominalGHz,
		PowerCap:        profile.PackagePowerCap,
	}
	n.CPU.Bind(pkgDom)

	dramDom := bus.NewDomain("dram", 0)
	n.DRAM = &power.DRAMModel{Static: profile.DRAMStatic, PerGBs: profile.DRAMPerGBs}
	n.DRAM.Bind(dramDom)

	if profile.RAIDMembers > 1 {
		stripe := profile.RAIDStripe
		if stripe <= 0 {
			stripe = 256 * units.KiB
		}
		n.Device = storage.NewStripedDisk(engine, profile.RAIDMembers, profile.Disk, stripe, bus, rng.Split())
	} else {
		diskDom := bus.NewDomain("disk", 0)
		n.Device = storage.NewDisk(engine, profile.Disk, diskDom, rng.Split())
	}
	if profile.NVRAM != nil {
		nvDom := bus.NewDomain("nvram", 0)
		n.Device = storage.NewBurstBuffer(engine, n.Device, *profile.NVRAM, nvDom)
	}
	n.Cache = storage.NewPageCache(engine, n.Device, profile.Cache)
	n.FS = storage.NewFileSystem(engine, n.Device, n.Cache, profile.FS, rng.Split())

	restDom := bus.NewDomain("rest", 0)
	n.Rest = &power.RestModel{Base: profile.RestBase, FanCoeff: profile.FanCoeff, FanRef: profile.FanRef}
	n.Rest.Bind(restDom)
	n.observeRest()

	n.MSR = rapl.NewMSR(rapl.Sources(bus, units.Watts(float64(profile.Sockets))*profile.PkgStaticPerSocket, engine))

	if profile.OSNoiseSigma > 0 {
		noiseRng := rng.Split()
		n.noise = sim.NewTicker(engine, 0.31, func(sim.Time) {
			// Replace the previous perturbation with a fresh one.
			delta := units.Watts(noiseRng.NormFloat64()) * profile.OSNoiseSigma
			pkg := n.Bus.Domain("package")
			pkg.Add(delta - n.noiseCur)
			n.noiseCur = delta
			n.observeRest()
		})
		n.noise.Start()
	}
	return n
}

// observeRest feeds the fan model the CPU+DRAM draw.
func (n *Node) observeRest() {
	pkg := n.Bus.Domain("package").Level()
	dram := n.Bus.Domain("dram").Level()
	n.Rest.ObserveOtherPower(pkg + dram)
}

// setLoad applies a CPU/DRAM operating point and updates the fans.
func (n *Node) setLoad(cores int, intensity power.Intensity, dramGBs float64) {
	n.CPU.SetLoad(cores, intensity)
	n.DRAM.SetBandwidth(dramGBs)
	n.observeRest()
}

// idleLoad restores the idle operating point.
func (n *Node) idleLoad() { n.setLoad(0, power.IntensityCompute, 0) }

// SetLoad applies a CPU/DRAM operating point directly. Foreground
// workloads should prefer Compute/Render/WithIO, which restore idle on
// return; event-driven consumers (e.g. the in-transit staging node)
// call SetLoad from engine callbacks to bracket their busy periods.
func (n *Node) SetLoad(cores int, intensity power.Intensity, dramGBs float64) {
	n.setLoad(cores, intensity, dramGBs)
}

// SetIdle restores the idle operating point (the inverse of SetLoad).
func (n *Node) SetIdle() { n.idleLoad() }

// Now returns the node's virtual time.
func (n *Node) Now() sim.Time { return n.Engine.Now() }

// Idle advances virtual time with all subsystems quiescent.
func (n *Node) Idle(d units.Seconds) {
	n.idleLoad()
	n.Engine.Advance(d)
}

// Compute charges the simulation phase: the full solver core count at
// compute intensity for cellUpdates of stencil work. Under a package
// power cap the CPU throttles and the phase stretches accordingly.
func (n *Node) Compute(cellUpdates uint64) {
	n.setLoad(n.Profile.SimCores, power.IntensityCompute, n.Profile.SimDRAMGBs)
	d := units.Seconds(float64(cellUpdates) / n.Profile.CellUpdateRate)
	n.Engine.Advance(d * units.Seconds(n.CPU.SlowdownFactor()))
	n.idleLoad()
}

// RenderCost returns the virtual duration of a render with the given
// work counts (pixels colormapped, contour cells visited, PNG bytes
// encoded).
func (n *Node) RenderCost(pixels, contourCells int, encodedBytes units.Bytes) units.Seconds {
	return units.Seconds(float64(pixels)/n.Profile.PixelRate +
		float64(contourCells)/n.Profile.ContourCellRate +
		float64(encodedBytes)/n.Profile.EncodeRate)
}

// Render charges a visualization: the render core count at render
// intensity for the given work (stretched under a power cap).
func (n *Node) Render(pixels, contourCells int, encodedBytes units.Bytes) {
	n.setLoad(n.Profile.VizCores, power.IntensityRender, n.Profile.VizDRAMGBs)
	d := n.RenderCost(pixels, contourCells, encodedBytes)
	n.Engine.Advance(d * units.Seconds(n.CPU.SlowdownFactor()))
	n.idleLoad()
}

// Compress charges a data-compression pass over n bytes: four cores at
// memory-bound intensity at the profile's DEFLATE rate (stretched
// under a power cap).
func (n *Node) Compress(bytes units.Bytes) {
	if bytes <= 0 || n.Profile.CompressRate <= 0 {
		return
	}
	n.setLoad(4, power.IntensityMemory, 4)
	d := units.TransferTime(bytes, n.Profile.CompressRate)
	n.Engine.Advance(d * units.Seconds(n.CPU.SlowdownFactor()))
	n.idleLoad()
}

// WithIO runs fn under the I/O operating point: one core submitting
// syscalls, light memory traffic, CPU otherwise idle (iowait) while the
// disk works. All filesystem calls that advance the clock should happen
// inside a WithIO region.
func (n *Node) WithIO(fn func()) {
	n.setLoad(n.Profile.IOCores, power.IntensityIO, n.Profile.IODRAMGBs)
	defer n.idleLoad()
	fn()
}

// WaitDiskIdle advances until the storage device has no queued work
// (e.g. after background write-back or a burst-buffer drain).
func (n *Node) WaitDiskIdle() {
	for !n.Device.Idle() {
		free := n.Device.FreeAt()
		if free <= n.Engine.Now() {
			// Idle-state transitions (e.g. burst-buffer drain delay)
			// may be pending without queued media work.
			n.Engine.Advance(0.1)
			continue
		}
		n.Engine.AdvanceTo(free)
	}
}

// InstallFaults attaches a fault injector to the node's whole storage
// stack — the block device (latency spikes) and the filesystem
// (transient errors, bit-rot). Pass nil to detach. One injector per
// node: its decision stream is part of the node's deterministic state.
func (n *Node) InstallFaults(inj *fault.Injector) {
	switch d := n.Device.(type) {
	case *storage.Disk:
		d.SetFaults(inj)
	case *storage.StripedDisk:
		d.SetFaults(inj)
	case *storage.BurstBuffer:
		d.SetFaults(inj)
	}
	n.FS.SetFaults(inj)
}

// DiskStats aggregates media statistics across whatever device the
// profile configured.
func (n *Node) DiskStats() storage.DiskStats {
	switch d := n.Device.(type) {
	case *storage.Disk:
		return d.Stats()
	case *storage.StripedDisk:
		return d.Stats()
	case *storage.BurstBuffer:
		return n.backingStats(d)
	default:
		return storage.DiskStats{}
	}
}

// backingStats digs the media stats out from under a burst buffer.
func (n *Node) backingStats(b *storage.BurstBuffer) storage.DiskStats {
	switch d := b.Backing().(type) {
	case *storage.Disk:
		return d.Stats()
	case *storage.StripedDisk:
		return d.Stats()
	default:
		return storage.DiskStats{}
	}
}

// IdleSystemPower returns the node's static floor: the wall power with
// every subsystem quiescent.
func (n *Node) IdleSystemPower() units.Watts {
	p := n.Profile
	return units.Watts(float64(p.Sockets))*p.PkgStaticPerSocket +
		p.DRAMStatic + p.Disk.IdlePower + p.RestBase
}

// SystemPower returns the instantaneous wall power.
func (n *Node) SystemPower() units.Watts { return n.Bus.SystemPower() }

// SystemEnergy returns cumulative wall energy.
func (n *Node) SystemEnergy() units.Joules { return n.Bus.SystemEnergy() }

// StopNoise halts the OS-noise ticker (for deterministic sections and
// to let Engine.Drain terminate).
func (n *Node) StopNoise() {
	if n.noise != nil {
		n.noise.Stop()
		pkg := n.Bus.Domain("package")
		pkg.Add(-n.noiseCur)
		n.noiseCur = 0
		n.observeRest()
	}
}

// Rand returns a generator derived from the node's seed for workloads
// that need their own randomness.
func (n *Node) Rand() *xrand.Rand { return n.rng.Split() }

// Instruments bundles the paper's measurement setup for one run: the
// samplers emit onto the run's telemetry bus, and a trace.Recorder
// consumer materializes their readings into Profile.
type Instruments struct {
	Profile  *trace.Profile
	Recorder *trace.Recorder
	Meter    *wattsup.Meter
	RAPL     *rapl.Monitor
}

// NewInstruments attaches a Wattsup meter and a RAPL monitor emitting
// onto tel (nil means a fresh private bus), with a trace recorder
// materializing their samples — and the engine's stage annotations —
// into a fresh profile, mirroring the paper's Figure 3 setup. The
// recorder is attached before the samplers are built so it sees their
// series definitions; series order (system, rapl.PKG, rapl.DRAM) is
// therefore stable, which fixes the trace CSV column order.
func (n *Node) NewInstruments(label string, tel *telemetry.Bus) *Instruments {
	if tel == nil {
		tel = telemetry.NewBus()
	}
	prof := trace.NewProfile(label)
	rec := trace.NewRecorder(prof)
	tel.Attach(rec)
	meter := wattsup.NewMeter(n.Engine, n.Bus, tel, wattsup.DefaultConfig(), n.rng.Split())
	mon := rapl.NewMonitor(n.Engine, n.MSR, tel, n.Bus.Domain("package"), rapl.DefaultMonitorConfig())
	return &Instruments{Profile: prof, Recorder: rec, Meter: meter, RAPL: mon}
}

// Start begins sampling on both instruments.
func (i *Instruments) Start() {
	i.Meter.Start()
	i.RAPL.Start()
}

// Stop halts sampling.
func (i *Instruments) Stop() {
	i.Meter.Stop()
	i.RAPL.Stop()
}

// SpecRow is one Table I line.
type SpecRow struct{ Item, Value string }

// Spec returns the hardware specification table (Table I).
func (n *Node) Spec() []SpecRow {
	p := n.Profile
	return []SpecRow{
		{"CPU", "2x Intel Xeon E5-2665"},
		{"CPU frequency", "2.4 GHz"},
		{"Last-level cache", "20 MB"},
		{"Memory", "4x 16GB DDR3-1333"},
		{"Memory size", p.MemoryBytes.String()},
		{"Hard disk", "Seagate 7200rpm disk"},
		{"Storage size", p.Disk.Capacity.String()},
		{"Disk bandwidth", "6.0 Gbps (SATA)"},
	}
}

package ocean

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

// referenceMomentum and referenceContinuity are the shallow-water
// passes as written before the bounds-check-elimination
// restructuring: flat-index loads with the naive neighbor arithmetic.
// The rewritten passes must reproduce their output bit for bit.
func referenceMomentum(s *Solver, lo, hi int) (nu, nv *field.Grid) {
	p := s.params
	nx := p.NX
	gdtx := p.Gravity * p.DT / p.DX
	gdty := p.Gravity * p.DT / p.DY
	f := p.Coriolis * p.DT
	nu = field.New(nx, p.NY)
	nv = field.New(nx, p.NY)
	h, u, v := s.h, s.u, s.v
	for y := lo + 1; y < hi+1; y++ {
		row := y * nx
		up, down := row-nx, row+nx
		for x := 1; x < nx-1; x++ {
			i := row + x
			nu.Data[i] = u.Data[i] - gdtx*(h.Data[i+1]-h.Data[i-1])/2 + f*v.Data[i]
			nv.Data[i] = v.Data[i] - gdty*(h.Data[down+x]-h.Data[up+x])/2 - f*u.Data[i]
		}
	}
	return nu, nv
}

func referenceContinuity(s *Solver, lo, hi int) *field.Grid {
	p := s.params
	nx := p.NX
	hdtx := p.Depth * p.DT / p.DX
	hdty := p.Depth * p.DT / p.DY
	nh := field.New(nx, p.NY)
	h, u, v := s.h, s.u, s.v
	for y := lo + 1; y < hi+1; y++ {
		row := y * nx
		up, down := row-nx, row+nx
		for x := 1; x < nx-1; x++ {
			i := row + x
			nh.Data[i] = h.Data[i] -
				hdtx*(u.Data[i+1]-u.Data[i-1])/2 -
				hdty*(v.Data[down+x]-v.Data[up+x])/2
		}
	}
	return nh
}

// TestPassesMatchReference drives the restructured momentum and
// continuity passes and their pre-restructuring references over
// randomized fields, asserting bit-identical interiors. Coriolis is
// nonzero so every term in the momentum update participates.
func TestPassesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nx := 3 + rng.Intn(40)
		ny := 3 + rng.Intn(40)
		s := NewSolver(Params{
			NX: nx, NY: ny, Depth: 100, Gravity: 9.81,
			DX: 1000, DY: 1000, Coriolis: 1e-4, Workers: 1,
		})
		for _, g := range []*field.Grid{s.h, s.u, s.v} {
			for i := range g.Data {
				g.Data[i] = (rng.Float64() - 0.5) * float64(int(1)<<uint(rng.Intn(20)))
			}
		}
		wantU, wantV := referenceMomentum(s, 0, ny-2)
		s.momentumPass(0, ny-2)
		wantH := referenceContinuity(s, 0, ny-2)
		s.continuityPass(0, ny-2)
		for y := 1; y < ny-1; y++ {
			for x := 1; x < nx-1; x++ {
				i := y*nx + x
				if s.nu.Data[i] != wantU.Data[i] || s.nv.Data[i] != wantV.Data[i] {
					t.Fatalf("trial %d (%dx%d): momentum (%d,%d) = (%v,%v), reference (%v,%v)",
						trial, nx, ny, x, y, s.nu.Data[i], s.nv.Data[i], wantU.Data[i], wantV.Data[i])
				}
				if s.nh.Data[i] != wantH.Data[i] {
					t.Fatalf("trial %d (%dx%d): continuity (%d,%d) = %v, reference %v",
						trial, nx, ny, x, y, s.nh.Data[i], wantH.Data[i])
				}
			}
		}
	}
}

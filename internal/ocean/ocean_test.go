package ocean

import (
	"math"
	"testing"
)

func smallParams() Params {
	return Params{
		NX: 48, NY: 48,
		Depth: 100, Gravity: 9.81,
		DX: 1000, DY: 1000,
		Drops: []Drop{{CX: 24, CY: 24, Amplitude: 1.5, Sigma: 4}},
	}
}

func TestCFLLimit(t *testing.T) {
	p := smallParams()
	want := 1000 / (math.Sqrt(9.81*100) * math.Sqrt2)
	if got := CFLLimit(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("CFLLimit = %v, want %v", got, want)
	}
}

func TestUnstableDTPanics(t *testing.T) {
	p := smallParams()
	p.DT = CFLLimit(p) * 1.1
	defer func() {
		if recover() == nil {
			t.Error("unstable DT did not panic")
		}
	}()
	NewSolver(p)
}

func TestInitialDropApplied(t *testing.T) {
	s := NewSolver(smallParams())
	if s.Field().At(24, 24) < 1.4 {
		t.Errorf("drop center = %v, want ~1.5", s.Field().At(24, 24))
	}
	if math.Abs(s.Field().At(2, 2)) > 1e-6 {
		t.Errorf("far corner = %v, want ~0", s.Field().At(2, 2))
	}
}

func TestWavePropagatesOutward(t *testing.T) {
	s := NewSolver(smallParams())
	probe := func() float64 { return math.Abs(s.Field().At(40, 24)) }
	before := probe()
	// Wave speed ~31 m/s; 16 km to the probe needs ~512 s ≈ 51 steps at
	// dt≈10 s.
	s.Step(80)
	if probe() <= before+1e-6 {
		t.Errorf("wave did not reach probe: %v -> %v", before, probe())
	}
}

func TestVolumeConserved(t *testing.T) {
	s := NewSolver(smallParams())
	v0 := s.TotalVolume()
	s.Step(500)
	v1 := s.TotalVolume()
	if math.Abs(v1-v0) > 1e-6*math.Abs(v0)+1e-3 {
		t.Errorf("volume drifted: %v -> %v", v0, v1)
	}
}

func TestEnergyBounded(t *testing.T) {
	// The forward-backward scheme is stable but not energy-conserving:
	// total energy oscillates as potential and kinetic forms exchange
	// against the reflective walls. It must stay bounded — a blow-up is
	// the signature of the unstable naive update.
	s := NewSolver(smallParams())
	e0 := s.Energy()
	for i := 0; i < 20; i++ {
		s.Step(100)
		e := s.Energy()
		if e > 1.5*e0 || e < 0.3*e0 {
			t.Fatalf("energy left its band: %v -> %v after %d steps", e0, e, s.Steps())
		}
	}
}

func TestSolverStaysFinite(t *testing.T) {
	s := NewSolver(smallParams())
	s.Step(2000)
	lo, hi := s.Field().MinMax()
	if math.IsNaN(lo) || math.IsInf(hi, 0) {
		t.Fatalf("field went non-finite: [%v, %v]", lo, hi)
	}
	if math.Abs(lo) > 100 || math.Abs(hi) > 100 {
		t.Errorf("field implausibly large: [%v, %v]", lo, hi)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	p := smallParams()
	p.Workers = 1
	serial := NewSolver(p)
	p.Workers = 5
	parallel := NewSolver(p)
	serial.Step(60)
	parallel.Step(60)
	for i := range serial.Field().Data {
		if serial.Field().Data[i] != parallel.Field().Data[i] {
			t.Fatalf("worker counts diverge at cell %d", i)
		}
	}
}

func TestCenteredDropStaysSymmetric(t *testing.T) {
	p := Params{
		NX: 33, NY: 33, Depth: 50, Gravity: 9.81, DX: 500, DY: 500,
		Drops: []Drop{{CX: 16, CY: 16, Amplitude: 1, Sigma: 3}},
	}
	s := NewSolver(p)
	s.Step(150)
	g := s.Field()
	for y := 0; y < 33; y++ {
		for x := 0; x < 33; x++ {
			if math.Abs(g.At(x, y)-g.At(32-x, y)) > 1e-9 {
				t.Fatalf("x-mirror broken at (%d,%d)", x, y)
			}
			if math.Abs(g.At(x, y)-g.At(x, 32-y)) > 1e-9 {
				t.Fatalf("y-mirror broken at (%d,%d)", x, y)
			}
		}
	}
}

func TestCoriolisDeflectsFlow(t *testing.T) {
	p := smallParams()
	base := NewSolver(p)
	p.Coriolis = 1e-4
	rot := NewSolver(p)
	base.Step(200)
	rot.Step(200)
	// With rotation on, the fields must differ measurably.
	var diff float64
	for i := range base.Field().Data {
		diff += math.Abs(base.Field().Data[i] - rot.Field().Data[i])
	}
	if diff < 1e-6 {
		t.Error("Coriolis term had no effect")
	}
}

func TestCellUpdates(t *testing.T) {
	s := NewSolver(smallParams())
	if got := s.CellUpdates(10); got != 10*46*46*3 {
		t.Errorf("CellUpdates = %d, want %d", got, 10*46*46*3)
	}
}

func TestValidation(t *testing.T) {
	bad := smallParams()
	bad.Depth = -1
	defer func() {
		if recover() == nil {
			t.Error("negative depth did not panic")
		}
	}()
	NewSolver(bad)
}

func BenchmarkStep128(b *testing.B) {
	s := NewSolver(DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(1)
	}
}

// Package ocean is a second proxy application — a 2-D shallow-water
// solver in the spirit of the ocean models the paper's Future Work
// targets (MPAS-Ocean [32], visualized in-situ by Ahrens et al. [12]).
// The paper's own limitations section notes its findings rest on a
// single proxy app; this solver lets the pipelines be evaluated on a
// second, wave-dominated workload.
//
// The scheme is the classic collocated explicit shallow-water update
// (linearized gravity waves plus advection-free momentum, with Coriolis
// optional) under a CFL-checked time step, parallelized across row
// bands like the heat solver.
package ocean

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/par"
)

// Params configures the solver.
type Params struct {
	NX, NY int
	// Depth is the resting water depth (m); Gravity in m/s².
	Depth, Gravity float64
	// DX, DY are cell sizes (m); DT the time step (0 = 45 % of CFL).
	DX, DY, DT float64
	// Coriolis is the f-plane parameter (1/s); 0 disables rotation.
	Coriolis float64
	// Drops are initial Gaussian height perturbations.
	Drops []Drop
	// Workers caps how many par workers a step may use; 0 means
	// GOMAXPROCS. The output fields are byte-identical at any setting.
	Workers int
}

// Drop is a Gaussian bump in the initial height field.
type Drop struct {
	CX, CY    int
	Amplitude float64
	Sigma     float64
}

// DefaultParams returns a 128×128 basin with two interfering drops —
// the same field footprint as the heat proxy (128 KiB).
func DefaultParams() Params {
	return Params{
		NX: 128, NY: 128,
		Depth: 100, Gravity: 9.81,
		DX: 1000, DY: 1000,
		Drops: []Drop{
			{CX: 40, CY: 40, Amplitude: 2.0, Sigma: 6},
			{CX: 90, CY: 80, Amplitude: -1.5, Sigma: 9},
		},
	}
}

// CFLLimit returns the maximum stable time step for the gravity-wave
// speed sqrt(g·H).
func CFLLimit(p Params) float64 {
	c := math.Sqrt(p.Gravity * p.Depth)
	h := math.Min(p.DX, p.DY)
	return h / (c * math.Sqrt2)
}

// sweepGrain is the minimum interior rows per band, matching the heat
// solver's decomposition granularity.
const sweepGrain = 8

// Solver advances the shallow-water equations. Like the heat solver it
// runs its interior sweeps as row bands on the shared par engine, so
// stepping never spawns goroutines; distinct solvers may step
// concurrently.
type Solver struct {
	params     Params
	h, u, v    *field.Grid // height anomaly and velocities
	nh, nu, nv *field.Grid
	steps      uint64
	// The two cached pass kernels read the buffers through the receiver,
	// so the per-step swaps need no fresh closures (stepping stays
	// allocation-free).
	momentumPass   func(lo, hi int)
	continuityPass func(lo, hi int)
}

// NewSolver validates parameters and applies the initial condition.
func NewSolver(p Params) *Solver {
	if p.NX < 3 || p.NY < 3 {
		panic(fmt.Sprintf("ocean: grid %dx%d too small", p.NX, p.NY))
	}
	if p.Depth <= 0 || p.Gravity <= 0 || p.DX <= 0 || p.DY <= 0 {
		panic("ocean: depth, gravity, dx, dy must be positive")
	}
	limit := CFLLimit(p)
	if p.DT == 0 {
		p.DT = 0.45 * limit
	}
	if p.DT > limit {
		panic(fmt.Sprintf("ocean: dt %g exceeds CFL limit %g", p.DT, limit))
	}
	s := &Solver{
		params: p,
		h:      field.New(p.NX, p.NY), u: field.New(p.NX, p.NY), v: field.New(p.NX, p.NY),
		nh: field.New(p.NX, p.NY), nu: field.New(p.NX, p.NY), nv: field.New(p.NX, p.NY),
	}
	nx := p.NX
	gdtx := p.Gravity * p.DT / p.DX
	gdty := p.Gravity * p.DT / p.DY
	hdtx := p.Depth * p.DT / p.DX
	hdty := p.Depth * p.DT / p.DY
	f := p.Coriolis * p.DT
	// Bands cover interior rows: band index i is grid row i+1.
	// Both passes hoist equal-length row slices so the prove pass drops
	// the per-cell bounds checks, and roll the gradient row through
	// registers: the writes to the next-step buffers could alias the
	// current-step fields for all the compiler knows, so without the
	// rolling window every neighbor is reloaded each cell. The arithmetic
	// is the exact expression of the naive form — output bits unchanged.
	s.momentumPass = func(lo, hi int) {
		for y := lo + 1; y < hi+1; y++ {
			row := y * nx
			h := s.h.Data[row : row+nx]
			hup := s.h.Data[row-nx : row]
			hdn := s.h.Data[row+nx : row+2*nx]
			u := s.u.Data[row : row+nx]
			v := s.v.Data[row : row+nx]
			nu := s.nu.Data[row : row+nx]
			nv := s.nv.Data[row : row+nx]
			// Interior-aligned equal-length views: ranging over the nu view
			// bounds every index, so the loop body carries no bounds checks
			// (verified with -d=ssa/check_bce).
			no := nu[1 : nx-1]
			nvo := nv[1 : 1+len(no)]
			hn := h[2 : 2+len(no)]
			ui := u[1 : 1+len(no)]
			vi := v[1 : 1+len(no)]
			upi := hup[1 : 1+len(no)]
			dni := hdn[1 : 1+len(no)]
			hl, hc := h[0], h[1]
			for k := range no {
				hr := hn[k]
				ux, vx := ui[k], vi[k]
				no[k] = ux - gdtx*(hr-hl)/2 + f*vx
				nvo[k] = vx - gdty*(dni[k]-upi[k])/2 - f*ux
				hl, hc = hc, hr
			}
		}
	}
	s.continuityPass = func(lo, hi int) {
		for y := lo + 1; y < hi+1; y++ {
			row := y * nx
			h := s.h.Data[row : row+nx]
			u := s.u.Data[row : row+nx]
			vup := s.v.Data[row-nx : row]
			vdn := s.v.Data[row+nx : row+2*nx]
			nh := s.nh.Data[row : row+nx]
			no := nh[1 : nx-1]
			hm := h[1 : 1+len(no)]
			un := u[2 : 2+len(no)]
			upi := vup[1 : 1+len(no)]
			dni := vdn[1 : 1+len(no)]
			ul, uc := u[0], u[1]
			for k := range no {
				ur := un[k]
				no[k] = hm[k] -
					hdtx*(ur-ul)/2 -
					hdty*(dni[k]-upi[k])/2
				ul, uc = uc, ur
			}
		}
	}
	for _, d := range p.Drops {
		s.applyDrop(d)
	}
	return s
}

func (s *Solver) applyDrop(d Drop) {
	if d.Sigma <= 0 {
		panic("ocean: drop needs positive sigma")
	}
	inv := 1 / (2 * d.Sigma * d.Sigma)
	for y := 0; y < s.params.NY; y++ {
		for x := 0; x < s.params.NX; x++ {
			dx, dy := float64(x-d.CX), float64(y-d.CY)
			s.h.Data[y*s.params.NX+x] += d.Amplitude * math.Exp(-(dx*dx+dy*dy)*inv)
		}
	}
}

// Params returns the configuration (DT resolved).
func (s *Solver) Params() Params { return s.params }

// Field returns the height-anomaly field (the visualized quantity).
func (s *Solver) Field() *field.Grid { return s.h }

// Velocity returns the velocity component fields.
func (s *Solver) Velocity() (u, v *field.Grid) { return s.u, s.v }

// Steps returns the sub-steps taken.
func (s *Solver) Steps() uint64 { return s.steps }

// Time returns the simulated physical time in seconds.
func (s *Solver) Time() float64 { return float64(s.steps) * s.params.DT }

// CellUpdates returns the work of n steps: three field updates per
// interior cell.
func (s *Solver) CellUpdates(n int) uint64 {
	return uint64(n) * uint64(s.params.NX-2) * uint64(s.params.NY-2) * 3
}

// TotalVolume returns the integral of the height anomaly over the
// interior cells (ghost/boundary cells excluded) — an exact invariant
// of the scheme thanks to the mirrored wall velocities.
func (s *Solver) TotalVolume() float64 {
	var sum float64
	nx := s.params.NX
	for y := 1; y < s.params.NY-1; y++ {
		row := s.h.Data[y*nx : (y+1)*nx]
		for x := 1; x < nx-1; x++ {
			sum += row[x]
		}
	}
	return sum * s.params.DX * s.params.DY
}

// Energy returns the discrete total energy: potential ½g·h² plus
// kinetic ½H·(u²+v²), integrated over the basin.
func (s *Solver) Energy() float64 {
	p := s.params
	var e float64
	for i := range s.h.Data {
		hh := s.h.Data[i]
		uu := s.u.Data[i]
		vv := s.v.Data[i]
		e += 0.5*p.Gravity*hh*hh + 0.5*p.Depth*(uu*uu+vv*vv)
	}
	return e * p.DX * p.DY
}

// Step advances n sub-steps.
func (s *Solver) Step(n int) {
	for i := 0; i < n; i++ {
		s.stepOnce()
	}
}

func (s *Solver) stepOnce() {
	// Forward-backward (symplectic Euler) scheme: update momentum from
	// the old height, then update height from the *new* momentum. The
	// naive simultaneous update is unconditionally unstable for wave
	// systems; this variant is stable under the CFL limit.
	interior := s.params.NY - 2
	workers := s.params.Workers

	// Pass 1: momentum from the height gradient (+ Coriolis).
	par.ForLimit(workers, interior, sweepGrain, s.momentumPass)
	s.u, s.nu = s.nu, s.u
	s.v, s.nv = s.nv, s.v
	s.reflectVelocityBoundaries()

	// Pass 2: continuity from the divergence of the new momentum.
	par.ForLimit(workers, interior, sweepGrain, s.continuityPass)
	s.h, s.nh = s.nh, s.h
	s.reflectHeightBoundaries()
	s.steps++
}

// reflectVelocityBoundaries implements closed basin walls by mirroring
// the normal velocity (u(wall) = -u(adjacent)), which makes the
// wall-face flux (u₀+u₁)/2 exactly zero and the interior volume an
// exact invariant of the centered divergence; tangential velocity is
// zero-gradient.
func (s *Solver) reflectVelocityBoundaries() {
	nx, ny := s.params.NX, s.params.NY
	for x := 0; x < nx; x++ {
		s.v.Set(x, 0, -s.v.At(x, 1))
		s.v.Set(x, ny-1, -s.v.At(x, ny-2))
		s.u.Set(x, 0, s.u.At(x, 1))
		s.u.Set(x, ny-1, s.u.At(x, ny-2))
	}
	for y := 0; y < ny; y++ {
		s.u.Set(0, y, -s.u.At(1, y))
		s.u.Set(nx-1, y, -s.u.At(nx-2, y))
		s.v.Set(0, y, s.v.At(1, y))
		s.v.Set(nx-1, y, s.v.At(nx-2, y))
	}
}

// reflectHeightBoundaries applies zero-gradient height at the walls.
func (s *Solver) reflectHeightBoundaries() {
	nx, ny := s.params.NX, s.params.NY
	for x := 0; x < nx; x++ {
		s.h.Set(x, 0, s.h.At(x, 1))
		s.h.Set(x, ny-1, s.h.At(x, ny-2))
	}
	for y := 0; y < ny; y++ {
		s.h.Set(0, y, s.h.At(1, y))
		s.h.Set(nx-1, y, s.h.At(nx-2, y))
	}
}

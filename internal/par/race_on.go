//go:build race

package par

// raceEnabled reports whether the race detector is compiled in; the
// steady-state allocation test skips under it because race-mode
// sync.Pool intentionally drops Puts.
const raceEnabled = true

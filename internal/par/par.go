// Package par is the shared data-parallel engine under every hot
// kernel: the solver stencil sweeps (internal/heat, internal/ocean),
// the renderer's colormap fill and marching-squares pass
// (internal/viz), and the checkpoint encode/CRC (internal/checkpoint).
// It decomposes an index range into contiguous bands — row bands for
// grid sweeps, byte tiles for encoders — and executes them on one
// process-wide pool of persistent workers, the way in-situ frameworks
// get intra-timestep throughput from domain decomposition.
//
// The engine makes three promises the kernels build on:
//
//   - Determinism: band boundaries are a pure function of (workers, n,
//     grain); bands write disjoint output regions, and Reduce merges
//     per-band partial results in ascending band order on the calling
//     goroutine — so kernel output bytes are identical at any worker
//     count, including 1.
//   - No spawning on the hot path: workers are spawned once (lazily,
//     growing with GOMAXPROCS) and park on a channel between calls; a
//     parallel call costs channel sends, never goroutine creation, and
//     job descriptors are recycled through a sync.Pool so steady-state
//     calls do not allocate.
//   - No deadlock under contention: helpers are recruited with
//     non-blocking sends, and the caller always executes bands itself.
//     If every worker is busy serving other pipelines, the call simply
//     degrades toward serial — it never waits for a free worker.
//
// For and Reduce are safe for concurrent use from any number of
// goroutines; concurrent pipelines share the worker pool.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one parallel call: an index range split into count bands of
// size band, executed by the caller plus any recruited helpers, each
// pulling the next unclaimed band from the atomic cursor.
type job struct {
	fn    func(lo, hi int)       // set by For/ForLimit
	mapFn func(band, lo, hi int) // set by Reduce (exactly one of the two)
	n     int
	band  int
	count int32
	next  atomic.Int32
	// work tracks unfinished bands (the caller waits on it); holders
	// tracks helpers that still reference the descriptor, so recycling
	// never races with a helper draining the cursor.
	work    sync.WaitGroup
	holders sync.WaitGroup
}

// run drains the band cursor, executing each claimed band.
func (j *job) run() {
	for {
		b := j.next.Add(1) - 1
		if b >= j.count {
			return
		}
		lo := int(b) * j.band
		hi := lo + j.band
		if hi > j.n {
			hi = j.n
		}
		if j.mapFn != nil {
			j.mapFn(int(b), lo, hi)
		} else {
			j.fn(lo, hi)
		}
		j.work.Done()
	}
}

var (
	jobPool sync.Pool // recycled *job descriptors

	// jobs is the shared parking channel. Workers hold only the channel,
	// never a job beyond the call they are helping with.
	jobs = make(chan *job)

	// spawned is how many persistent workers exist; the pool grows
	// toward GOMAXPROCS-1 (the caller is the remaining lane) and never
	// shrinks — surplus parked workers cost nothing, and the per-call
	// worker limit is what bounds actual parallelism.
	spawned atomic.Int32
	spawnMu sync.Mutex
)

// ensureWorkers grows the parked-worker set to want (at most).
func ensureWorkers(want int32) {
	if spawned.Load() >= want {
		return
	}
	spawnMu.Lock()
	defer spawnMu.Unlock()
	for spawned.Load() < want {
		go func() {
			for j := range jobs {
				j.run()
				j.holders.Done()
			}
		}()
		spawned.Add(1)
	}
}

// Workers returns the default per-call worker limit: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Bands returns the number of bands ForLimit(workers, n, grain, ...)
// decomposes [0, n) into — callers sizing per-band scratch (Reduce
// merges) use it. Boundaries depend only on (workers, n, grain).
func Bands(workers, n, grain int) int {
	if n <= 0 {
		return 0
	}
	w := workers
	if w <= 0 {
		w = Workers()
	}
	if grain < 1 {
		grain = 1
	}
	if byGrain := n / grain; w > byGrain {
		w = byGrain
	}
	if w < 1 {
		w = 1
	}
	// Recompute the count from the band size so the last band is never
	// empty: with bs = ceil(n/w), count = ceil(n/bs) ≤ w bands of size
	// ceil(n/count) ≤ bs always end strictly inside [0, n).
	bs := bandSize(n, w)
	return (n + bs - 1) / bs
}

// bandSize returns the per-band length for count bands over n.
func bandSize(n, count int) int { return (n + count - 1) / count }

// For splits [0, n) into contiguous bands of at least grain indices
// and calls fn(lo, hi) once per band, using up to GOMAXPROCS workers
// (the caller included). It returns when every band has completed.
// fn must treat [lo, hi) as its exclusive output region.
func For(n, grain int, fn func(lo, hi int)) { ForLimit(0, n, grain, fn) }

// ForLimit is For with an explicit per-call worker limit; workers <= 0
// selects GOMAXPROCS. With one band the call runs inline with no
// synchronization, so workers == 1 is exactly the serial kernel.
func ForLimit(workers, n, grain int, fn func(lo, hi int)) {
	count := Bands(workers, n, grain)
	if count <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	j := newJob(n, count)
	j.fn = fn
	publish(j, count-1)
	j.run()
	j.work.Wait()
	recycle(j)
}

// newJob readies a recycled (or fresh) descriptor for count bands; the
// caller sets exactly one of fn / mapFn before publishing.
func newJob(n, count int) *job {
	j, _ := jobPool.Get().(*job)
	if j == nil {
		j = &job{}
	}
	j.n = n
	j.band = bandSize(n, count)
	j.count = int32(count)
	j.next.Store(0)
	j.work.Add(count)
	return j
}

// publish recruits up to helpers parked workers with non-blocking
// sends; each successful send registers the worker as a holder.
func publish(j *job, helpers int) {
	ensureWorkers(int32(runtime.GOMAXPROCS(0) - 1))
	for k := 0; k < helpers; k++ {
		j.holders.Add(1)
		select {
		case jobs <- j:
		default:
			// No worker parked right now: run the band ourselves later
			// rather than wait — progress never depends on a free worker.
			j.holders.Done()
			return
		}
	}
}

// recycle returns a descriptor to the pool once no helper references
// it. Helpers release their hold as soon as the band cursor is
// exhausted, so this wait is at most one band behind work completion.
func recycle(j *job) {
	j.holders.Wait()
	j.fn = nil
	j.mapFn = nil
	jobPool.Put(j)
}

// Reduce is the deterministic map/merge primitive: it decomposes
// [0, n) exactly like ForLimit, calls mapFn(band, lo, hi) for every
// band on the pool, and — after all bands complete — calls merge(band)
// for each band in ascending band order on the calling goroutine.
// Kernels with order-sensitive output (marching-squares segment lists,
// chunked CRCs) write per-band partials in mapFn and concatenate or
// combine them in merge; the result is byte-identical to a serial
// left-to-right pass at any worker count.
func Reduce(workers, n, grain int, mapFn func(band, lo, hi int), merge func(band int)) {
	count := Bands(workers, n, grain)
	if count == 0 {
		return
	}
	if count == 1 {
		mapFn(0, 0, n)
		merge(0)
		return
	}
	j := newJob(n, count)
	j.mapFn = mapFn
	publish(j, count-1)
	j.run()
	j.work.Wait()
	recycle(j)
	for b := 0; b < count; b++ {
		merge(b)
	}
}

package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRangeOnce checks every index in [0, n) is visited
// exactly once, for ranges and grains that do and don't divide evenly,
// at worker limits below, at, and above GOMAXPROCS.
func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 126, 127, 128, 1000} {
		for _, grain := range []int{1, 2, 16, 1000} {
			for _, workers := range []int{0, 1, 2, 3, 8, 64} {
				visits := make([]int32, n)
				ForLimit(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("band [%d,%d) outside [0,%d)", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times", n, grain, workers, i, v)
					}
				}
			}
		}
	}
}

// TestBandsRespectsGrain checks no decomposition produces bands
// smaller than the grain (except the sole band of a short range).
func TestBandsRespectsGrain(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 511} {
		for _, grain := range []int{1, 8, 32} {
			for _, workers := range []int{1, 2, 7, 16} {
				count := Bands(workers, n, grain)
				if count < 1 {
					t.Fatalf("Bands(%d,%d,%d) = %d", workers, n, grain, count)
				}
				if count > 1 && bandSize(n, count) < grain {
					t.Errorf("Bands(%d,%d,%d) = %d gives band %d < grain %d",
						workers, n, grain, count, bandSize(n, count), grain)
				}
				if count > workers {
					t.Errorf("Bands(%d,%d,%d) = %d exceeds worker limit", workers, n, grain, count)
				}
			}
		}
	}
	if Bands(4, 0, 1) != 0 {
		t.Error("Bands of an empty range != 0")
	}
}

// TestBandsDeterministic pins the decomposition to its inputs alone:
// equal (workers, n, grain) must give equal boundaries every call —
// the foundation of the byte-identical-output contract.
func TestBandsDeterministic(t *testing.T) {
	boundaries := func() [][2]int {
		var out [][2]int
		var mu sync.Mutex
		ForLimit(8, 1000, 4, func(lo, hi int) {
			mu.Lock()
			out = append(out, [2]int{lo, hi})
			mu.Unlock()
		})
		return out
	}
	a, b := boundaries(), boundaries()
	if len(a) != len(b) {
		t.Fatalf("band count varies: %d vs %d", len(a), len(b))
	}
	seen := map[[2]int]bool{}
	for _, bd := range a {
		seen[bd] = true
	}
	for _, bd := range b {
		if !seen[bd] {
			t.Fatalf("band %v not produced by the first call", bd)
		}
	}
}

// TestReduceMergesInOrder checks merge runs per band, in ascending
// band order, on the calling goroutine, after that band's map.
func TestReduceMergesInOrder(t *testing.T) {
	caller := make(chan int, 64)
	const n, grain, workers = 97, 4, 8
	count := Bands(workers, n, grain)
	mapped := make([]int, count)
	Reduce(workers, n, grain,
		func(band, lo, hi int) { mapped[band] = hi - lo },
		func(band int) {
			if mapped[band] == 0 {
				t.Errorf("merge(%d) ran before its map", band)
			}
			caller <- band
		})
	close(caller)
	want, total := 0, 0
	for band := range caller {
		if band != want {
			t.Fatalf("merge order: got band %d, want %d", band, want)
		}
		total += mapped[band]
		want++
	}
	if want != count || total != n {
		t.Fatalf("merged %d bands covering %d indices, want %d bands covering %d", want, total, count, n)
	}
}

// TestReduceSerialLimit checks workers=1 degrades to the exact serial
// map-then-merge pass.
func TestReduceSerialLimit(t *testing.T) {
	var trace []string
	Reduce(1, 10, 1,
		func(band, lo, hi int) {
			if band != 0 || lo != 0 || hi != 10 {
				t.Errorf("serial map got band=%d [%d,%d)", band, lo, hi)
			}
			trace = append(trace, "map")
		},
		func(band int) { trace = append(trace, "merge") })
	if len(trace) != 2 || trace[0] != "map" || trace[1] != "merge" {
		t.Fatalf("serial Reduce trace %v", trace)
	}
}

// TestConcurrentForFromManyPipelines exercises the shared pool the way
// the experiment suite does: many goroutines (several per core) each
// running many parallel sweeps over private state, under -race in
// `make check`. Each pipeline's output must be exactly its serial
// result despite all of them recruiting from one worker pool.
func TestConcurrentForFromManyPipelines(t *testing.T) {
	const pipelines = 8
	const sweeps = 200
	const n = 257
	var wg sync.WaitGroup
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			data := make([]int, n)
			for s := 0; s < sweeps; s++ {
				ForLimit(4, n, 8, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						data[i] += p + 1
					}
				})
			}
			for i, v := range data {
				if v != sweeps*(p+1) {
					t.Errorf("pipeline %d: cell %d = %d, want %d", p, i, v, sweeps*(p+1))
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

// TestNestedForDoesNotDeadlock checks a kernel running on the pool may
// itself issue parallel calls: recruitment is non-blocking, so nesting
// degrades to inline execution instead of waiting for free workers.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	ForLimit(8, 64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ForLimit(8, 16, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 64*16 {
		t.Fatalf("nested sweeps covered %d indices, want %d", got, 64*16)
	}
}

// TestForSteadyStateAllocs pins the descriptor recycling: once the
// job pool is warm, a parallel call with a cached kernel closure must
// not allocate. This is the engine-level half of the render/step/encode
// 0 allocs/op contract.
func TestForSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so steady-state allocation counts don't hold")
	}
	data := make([]float64, 512)
	kernel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < 4; i++ { // warm the job pool and spawn the workers
		ForLimit(workers, len(data), 8, kernel)
	}
	avg := testing.AllocsPerRun(100, func() {
		ForLimit(workers, len(data), 8, kernel)
	})
	if avg > 0 {
		t.Errorf("steady-state ForLimit allocates %.1f objects/call, want 0", avg)
	}
}

// BenchmarkFor measures one 126-row band sweep (the solvers' shape) at
// the current GOMAXPROCS; run with -cpu 1,2,4 to see scaling.
func BenchmarkFor(b *testing.B) {
	data := make([]float64, 126*128)
	kernel := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := data[r*128 : (r+1)*128]
			for i := range row {
				row[i] += 1.5
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(126, 8, kernel)
	}
}

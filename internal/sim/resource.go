package sim

import "repro/internal/units"

// Resource is a single FCFS server: jobs submitted while the server is
// busy queue behind it. The disk uses one to serialize media access
// between foreground reads and background write-back.
type Resource struct {
	engine *Engine
	// freeAt is the virtual time the server next becomes idle.
	freeAt Time
	// busy accumulates total busy time, for utilization accounting.
	busy units.Seconds
	jobs uint64
}

// NewResource returns an idle FCFS server on engine.
func NewResource(engine *Engine) *Resource {
	return &Resource{engine: engine}
}

// Submit enqueues a job of the given service duration and returns the
// virtual times at which the job starts and completes. If done is not
// nil it is scheduled as an event at the completion time.
//
// Submit does not advance the clock; foreground callers that must wait
// for completion pass the returned end time to Engine.AdvanceTo.
func (r *Resource) Submit(service units.Seconds, done func()) (start, end Time) {
	if service < 0 {
		panic("sim: negative service time")
	}
	start = r.engine.Now()
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.busy += service
	r.jobs++
	if done != nil {
		r.engine.At(end, done)
	}
	return start, end
}

// FreeAt returns the time the server next becomes idle (<= now when idle).
func (r *Resource) FreeAt() Time { return r.freeAt }

// Idle reports whether the server has no queued or running work.
func (r *Resource) Idle() bool { return r.freeAt <= r.engine.Now() }

// BusyTime returns the cumulative service time performed.
func (r *Resource) BusyTime() units.Seconds { return r.busy }

// Jobs returns the number of jobs submitted.
func (r *Resource) Jobs() uint64 { return r.jobs }

package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestAdvanceFiresEventsInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3, func() { order = append(order, 3) })
	e.After(1, func() { order = append(order, 1) })
	e.After(2, func() { order = append(order, 2) })
	e.Advance(5)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(1, func() { order = append(order, i) })
	}
	e.Advance(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of submission order: %v", order)
		}
	}
}

func TestEventsBeyondAdvanceDoNotFire(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(10, func() { fired = true })
	e.Advance(9.999)
	if fired {
		t.Error("event at t=10 fired during Advance(9.999)")
	}
	e.Advance(0.001)
	if !fired {
		t.Error("event at t=10 did not fire by t=10")
	}
}

func TestEventAtExactBoundaryFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(5, func() { fired = true })
	e.Advance(5)
	if !fired {
		t.Error("event exactly at the advance boundary did not fire")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(1, func() { fired = true })
	ev.Cancel()
	e.Advance(2)
	if fired {
		t.Error("cancelled event fired")
	}
	ev.Cancel() // cancelling again must be a no-op
}

func TestClockIsSetDuringCallback(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(2.5, func() { at = e.Now() })
	e.Advance(10)
	if at != 2.5 {
		t.Errorf("Now() inside callback = %v, want 2.5", at)
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	e := NewEngine()
	var times []Time
	var chain func()
	chain = func() {
		times = append(times, e.Now())
		if len(times) < 4 {
			e.After(1, chain)
		}
	}
	e.After(1, chain)
	e.Advance(10)
	want := []Time{1, 2, 3, 4}
	if len(times) != len(want) {
		t.Fatalf("chain fired %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("chain[%d] at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestAdvanceInsideCallbackPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.After(1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Advance(1)
	})
	e.Advance(2)
	if !panicked {
		t.Error("Advance inside a callback did not panic")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Advance(10)
	defer func() {
		if recover() == nil {
			t.Error("At(5) with now=10 did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestAdvanceToBackwardsIsNoop(t *testing.T) {
	e := NewEngine()
	e.Advance(10)
	e.AdvanceTo(5)
	if e.Now() != 10 {
		t.Errorf("AdvanceTo backwards moved the clock to %v", e.Now())
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(1, func() { count++ })
	e.After(100, func() { count++ })
	e.Drain()
	if count != 2 {
		t.Errorf("Drain fired %d events, want 2", count)
	}
	if e.Now() != 100 {
		t.Errorf("Now() after Drain = %v, want 100", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.After(units.Seconds(i+1), func() {})
	}
	ev := e.After(3.5, func() {})
	ev.Cancel()
	e.Advance(10)
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5 (cancelled events don't count)", e.Fired())
	}
}

// Property: events always fire in non-decreasing timestamp order no
// matter the submission order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fireTimes []Time
		for _, d := range delays {
			e.After(units.Seconds(d)/100, func() {
				fireTimes = append(fireTimes, e.Now())
			})
		}
		e.Advance(1000)
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTickerBasic(t *testing.T) {
	e := NewEngine()
	var times []Time
	tk := NewTicker(e, 1, func(now Time) { times = append(times, now) })
	tk.Start()
	e.Advance(5)
	tk.Stop()
	e.Advance(5)
	if len(times) != 5 {
		t.Fatalf("ticker fired %d times, want 5 (ticks at 1..5): %v", len(times), times)
	}
	for i, at := range times {
		if at != Time(i+1) {
			t.Errorf("tick %d at %v, want %d", i, at, i+1)
		}
	}
	if tk.Ticks() != 5 {
		t.Errorf("Ticks() = %d, want 5", tk.Ticks())
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	var tk *Ticker
	count := 0
	tk = NewTicker(e, 1, func(now Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	e.Advance(10)
	if count != 3 {
		t.Errorf("ticker fired %d times after self-stop at 3", count)
	}
}

func TestTickerDoubleStart(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := NewTicker(e, 1, func(Time) { count++ })
	tk.Start()
	tk.Start()
	e.Advance(3)
	if count != 3 {
		t.Errorf("double-started ticker fired %d times in 3s, want 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTicker with period 0 did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, func(Time) {})
}

func TestResourceFCFS(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	s1, e1 := r.Submit(10, nil)
	s2, e2 := r.Submit(5, nil)
	if s1 != 0 || e1 != 10 {
		t.Errorf("job1 start/end = %v/%v, want 0/10", s1, e1)
	}
	if s2 != 10 || e2 != 15 {
		t.Errorf("job2 queued start/end = %v/%v, want 10/15", s2, e2)
	}
	if r.BusyTime() != 15 {
		t.Errorf("BusyTime = %v, want 15", r.BusyTime())
	}
	if r.Jobs() != 2 {
		t.Errorf("Jobs = %d, want 2", r.Jobs())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Submit(2, nil)
	e.Advance(10)
	if !r.Idle() {
		t.Error("resource not idle after its work completed")
	}
	s, end := r.Submit(3, nil)
	if s != 10 || end != 13 {
		t.Errorf("post-gap job start/end = %v/%v, want 10/13", s, end)
	}
}

func TestResourceDoneCallback(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var doneAt Time = -1
	r.Submit(4, func() { doneAt = e.Now() })
	e.Advance(10)
	if doneAt != 4 {
		t.Errorf("done callback at %v, want 4", doneAt)
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	defer func() {
		if recover() == nil {
			t.Error("Submit(-1) did not panic")
		}
	}()
	r.Submit(-1, nil)
}

// Property: with FCFS, total completion time equals the sum of service
// times when jobs are submitted back-to-back at t=0.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(services []uint16) bool {
		e := NewEngine()
		r := NewResource(e)
		var total units.Seconds
		var lastEnd Time
		for _, s := range services {
			d := units.Seconds(s) / 1000
			total += d
			_, lastEnd = r.Submit(d, nil)
		}
		return lastEnd == total || len(services) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Advance(1)
	}
}

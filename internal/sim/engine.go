// Package sim is the discrete-event simulation kernel: a virtual clock,
// an event queue, FCFS resources, and periodic samplers.
//
// The kernel is deliberately callback-based (no goroutine-per-process):
// every state change in the simulated node happens inside an event
// callback on a single goroutine, so models never need locks and runs are
// exactly reproducible. Sequential workloads (the pipelines) are written
// as plain Go code that calls Engine.Advance to spend virtual time, with
// background activity (disk write-back, power samplers) expressed as
// scheduled events that the advance loop drains in timestamp order.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Time is an absolute point on the virtual clock, in seconds since the
// start of the run.
type Time = units.Seconds

// Event is a scheduled callback. Cancel it by calling Cancel; the kernel
// guarantees a cancelled event's callback never runs.
type Event struct {
	when      Time
	seq       uint64 // tie-break so equal-time events run FIFO
	fn        func()
	index     int // heap index, -1 when popped/cancelled
	cancelled bool
}

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents the event's callback from running. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue. The zero value is
// not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	inside bool // true while dispatching an event callback
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many event callbacks have run, for diagnostics.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled (including cancelled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. It panics if t is
// in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now. It panics if d is negative.
func (e *Engine) After(d units.Seconds, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Advance moves the clock forward by d, firing every event that falls
// inside the interval in timestamp order. Workload code calls this to
// "spend" virtual time; background models keep running via their events.
//
// Advance must not be called from inside an event callback — callbacks
// are instantaneous; they schedule follow-up events instead.
func (e *Engine) Advance(d units.Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance with negative duration %v", d))
	}
	if e.inside {
		panic("sim: Advance called from inside an event callback")
	}
	e.runUntil(e.now + d)
}

// AdvanceTo moves the clock to absolute time t (no-op if t <= now),
// firing intervening events.
func (e *Engine) AdvanceTo(t Time) {
	if e.inside {
		panic("sim: AdvanceTo called from inside an event callback")
	}
	if t > e.now {
		e.runUntil(t)
	}
}

// Drain fires all remaining events, advancing the clock as needed, until
// the queue is empty. Periodic samplers must be stopped first or Drain
// will never terminate; use DrainUntil to bound it.
func (e *Engine) Drain() {
	for len(e.queue) > 0 {
		e.step()
	}
}

// DrainUntil fires events up to and including time t, then sets the
// clock to t.
func (e *Engine) DrainUntil(t Time) { e.AdvanceTo(t) }

// runUntil fires all events with when <= target, then sets now = target.
func (e *Engine) runUntil(target Time) {
	for len(e.queue) > 0 && e.queue[0].when <= target {
		e.step()
	}
	e.now = target
}

// step pops and fires the earliest event.
func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	if ev.cancelled {
		return
	}
	if ev.when > e.now {
		e.now = ev.when
	}
	e.fired++
	e.inside = true
	ev.fn()
	e.inside = false
}

package sim

import (
	"fmt"

	"repro/internal/units"
)

// Ticker invokes a callback at a fixed virtual-time period, like the
// 1 Hz samplers of the Wattsup meter and the RAPL monitor. The first
// tick fires one period after Start.
type Ticker struct {
	engine  *Engine
	period  units.Seconds
	fn      func(now Time)
	event   *Event
	running bool
	ticks   uint64
}

// NewTicker creates a stopped ticker on engine with the given period.
// It panics if period is not positive.
func NewTicker(engine *Engine, period units.Seconds, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	return &Ticker{engine: engine, period: period, fn: fn}
}

// Start begins ticking. Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.running = true
	t.schedule()
}

// Stop halts the ticker; the pending tick is cancelled.
func (t *Ticker) Stop() {
	if !t.running {
		return
	}
	t.running = false
	if t.event != nil {
		t.event.Cancel()
		t.event = nil
	}
}

// Ticks reports how many times the callback has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }

func (t *Ticker) schedule() {
	t.event = t.engine.After(t.period, func() {
		if !t.running {
			return
		}
		t.ticks++
		t.fn(t.engine.Now())
		t.schedule()
	})
}

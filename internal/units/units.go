// Package units defines the physical quantities used throughout the
// simulator — virtual time, power, energy, and data sizes — together with
// parsing and SI formatting helpers.
//
// All quantities are float64 wrappers rather than integer ticks: the
// simulator integrates piecewise-constant power over arbitrary-length
// intervals, and float64 seconds keep that exact for the magnitudes we
// care about (runs are minutes long, resolutions are microseconds).
package units

import (
	"fmt"
	"math"
)

// Seconds is a span of virtual time. Negative durations are invalid
// everywhere in the simulator.
type Seconds float64

// Watts is instantaneous power.
type Watts float64

// Joules is energy: the integral of Watts over Seconds.
type Joules float64

// Bytes is a data size or offset.
type Bytes int64

// Common data sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// Common time spans.
const (
	Microsecond Seconds = 1e-6
	Millisecond Seconds = 1e-3
	Second      Seconds = 1
	Minute      Seconds = 60
	Hour        Seconds = 3600
)

// KJ converts energy to kilojoules.
func (j Joules) KJ() float64 { return float64(j) / 1000 }

// Energy returns the energy dissipated at power w over duration d.
func Energy(w Watts, d Seconds) Joules {
	return Joules(float64(w) * float64(d))
}

// AveragePower returns the mean power that dissipates j over d.
// It returns 0 for non-positive durations.
func AveragePower(j Joules, d Seconds) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(j) / float64(d))
}

// TransferTime returns the time to move n bytes at rate bytesPerSecond.
// It returns 0 when either argument is non-positive.
func TransferTime(n Bytes, bytesPerSecond float64) Seconds {
	if n <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return Seconds(float64(n) / bytesPerSecond)
}

// String formats the duration with a unit that keeps 3-4 significant
// digits: "35.9s", "8.50ms", "1.2us".
func (s Seconds) String() string {
	v := float64(s)
	av := math.Abs(v)
	switch {
	case av >= 1 || av == 0:
		return trimUnit(v, "s")
	case av >= 1e-3:
		return trimUnit(v*1e3, "ms")
	case av >= 1e-6:
		return trimUnit(v*1e6, "us")
	default:
		return trimUnit(v*1e9, "ns")
	}
}

// String formats power as watts with up to one decimal: "114.8W".
func (w Watts) String() string { return trimUnit(float64(w), "W") }

// String formats energy, switching to KJ above 10 kJ to match the
// paper's tables: "238.6KJ", "482J".
func (j Joules) String() string {
	v := float64(j)
	if math.Abs(v) >= 10_000 {
		return trimUnit(v/1000, "KJ")
	}
	return trimUnit(v, "J")
}

// String formats sizes in binary units: "16KiB", "4GiB", "512B".
func (b Bytes) String() string {
	switch {
	case b >= GiB:
		return trimUnit(float64(b)/float64(GiB), "GiB")
	case b >= MiB:
		return trimUnit(float64(b)/float64(MiB), "MiB")
	case b >= KiB:
		return trimUnit(float64(b)/float64(KiB), "KiB")
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// trimUnit prints v with one decimal place, dropping a trailing ".0".
func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.1f", v)
	if len(s) > 2 && s[len(s)-2:] == ".0" {
		s = s[:len(s)-2]
	}
	return s + unit
}

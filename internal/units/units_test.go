package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergy(t *testing.T) {
	tests := []struct {
		w    Watts
		d    Seconds
		want Joules
	}{
		{0, 10, 0},
		{100, 0, 0},
		{115, 2, 230},
		{107, 2230, 238610},
		{1.5, 0.5, 0.75},
	}
	for _, tt := range tests {
		if got := Energy(tt.w, tt.d); math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("Energy(%v, %v) = %v, want %v", tt.w, tt.d, got, tt.want)
		}
	}
}

func TestAveragePower(t *testing.T) {
	if got := AveragePower(230, 2); got != 115 {
		t.Errorf("AveragePower(230, 2) = %v, want 115", got)
	}
	if got := AveragePower(100, 0); got != 0 {
		t.Errorf("AveragePower over zero duration = %v, want 0", got)
	}
	if got := AveragePower(100, -1); got != 0 {
		t.Errorf("AveragePower over negative duration = %v, want 0", got)
	}
}

func TestEnergyAveragePowerRoundTrip(t *testing.T) {
	f := func(w uint16, dMilli uint32) bool {
		power := Watts(float64(w) / 16)
		dur := Seconds(float64(dMilli)/1000) + Millisecond
		back := AveragePower(Energy(power, dur), dur)
		return math.Abs(float64(back-power)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTime(t *testing.T) {
	tests := []struct {
		n    Bytes
		rate float64
		want Seconds
	}{
		{4 * GiB, 114e6, Seconds(float64(4*GiB) / 114e6)},
		{0, 100, 0},
		{-5, 100, 0},
		{100, 0, 0},
		{1000, 1000, 1},
	}
	for _, tt := range tests {
		if got := TransferTime(tt.n, tt.rate); math.Abs(float64(got-tt.want)) > 1e-12 {
			t.Errorf("TransferTime(%d, %v) = %v, want %v", tt.n, tt.rate, got, tt.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	tests := []struct {
		s    Seconds
		want string
	}{
		{35.9, "35.9s"},
		{0, "0s"},
		{1, "1s"},
		{8.5e-3, "8.5ms"},
		{0.0042, "4.2ms"},
		{2e-6, "2us"},
		{3e-9, "3ns"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Seconds(%g).String() = %q, want %q", float64(tt.s), got, tt.want)
		}
	}
}

func TestWattsString(t *testing.T) {
	if got := Watts(114.8).String(); got != "114.8W" {
		t.Errorf("got %q", got)
	}
	if got := Watts(115).String(); got != "115W" {
		t.Errorf("got %q", got)
	}
}

func TestJoulesString(t *testing.T) {
	tests := []struct {
		j    Joules
		want string
	}{
		{482, "482J"},
		{238600, "238.6KJ"},
		{9999, "9999J"},
		{10000, "10KJ"},
	}
	for _, tt := range tests {
		if got := tt.j.String(); got != tt.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(tt.j), got, tt.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	tests := []struct {
		b    Bytes
		want string
	}{
		{512, "512B"},
		{16 * KiB, "16KiB"},
		{4 * GiB, "4GiB"},
		{128 * KiB, "128KiB"},
		{3 * MiB, "3MiB"},
		{MiB + 512*KiB, "1.5MiB"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(tt.b), got, tt.want)
		}
	}
}

func TestKJ(t *testing.T) {
	if got := Joules(238600).KJ(); math.Abs(got-238.6) > 1e-9 {
		t.Errorf("KJ() = %v, want 238.6", got)
	}
}

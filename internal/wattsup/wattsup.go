// Package wattsup emulates the external Wattsup Pro wall meter of the
// paper's measurement setup: a 1 Hz sampler of full-system power with
// coarse quantization and a little measurement noise, logged by a
// separate monitoring host (so it adds no load to the system under
// test). Readings are emitted as telemetry energy-sample events; a
// trace.Recorder (or any other consumer) turns them into a series.
package wattsup

import (
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/xrand"
)

// SeriesName is the telemetry source the meter samples under.
const SeriesName = "system"

// Config describes the meter.
type Config struct {
	// Period between readings (1 s for the Wattsup Pro).
	Period units.Seconds
	// Quantum is the reading resolution in watts (0.1 W).
	Quantum float64
	// NoiseSigma is the standard deviation of per-reading noise in
	// watts; 0 disables noise.
	NoiseSigma float64
}

// DefaultConfig returns the paper's meter: 1 Hz, 0.1 W resolution,
// ±0.5 W jitter.
func DefaultConfig() Config {
	return Config{Period: 1, Quantum: 0.1, NoiseSigma: 0.5}
}

// Meter samples a power bus into telemetry events. Each reading is the
// true average wall power over the elapsed period (the meter integrates
// internally), plus noise, quantized.
type Meter struct {
	bus     *power.Bus
	cfg     Config
	rng     *xrand.Rand
	tel     *telemetry.Bus
	ticker  *sim.Ticker
	prevE   units.Joules
	running bool
}

// NewMeter attaches a meter to bus, emitting readings into tel under
// the source SeriesName (the series is defined on construction, so
// recorders attached before this call materialize it even if no sample
// ever fires). rng may be nil when NoiseSigma is 0.
func NewMeter(engine *sim.Engine, bus *power.Bus, tel *telemetry.Bus, cfg Config, rng *xrand.Rand) *Meter {
	if cfg.Period <= 0 {
		panic("wattsup: period must be positive")
	}
	if cfg.NoiseSigma > 0 && rng == nil {
		panic("wattsup: noise needs an rng")
	}
	if tel == nil {
		tel = telemetry.NewBus()
	}
	m := &Meter{bus: bus, cfg: cfg, rng: rng, tel: tel}
	tel.Emit(telemetry.Event{Kind: telemetry.KindSeriesDefine, Source: SeriesName, Unit: "W"})
	m.ticker = sim.NewTicker(engine, cfg.Period, m.sample)
	return m
}

// Start begins sampling.
func (m *Meter) Start() {
	if m.running {
		return
	}
	m.running = true
	m.prevE = m.bus.SystemEnergy()
	m.ticker.Start()
}

// Stop halts sampling.
func (m *Meter) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.ticker.Stop()
}

func (m *Meter) sample(now sim.Time) {
	cur := m.bus.SystemEnergy()
	w := float64(cur-m.prevE) / float64(m.cfg.Period)
	m.prevE = cur
	if m.cfg.NoiseSigma > 0 {
		w += m.rng.NormFloat64() * m.cfg.NoiseSigma
	}
	if m.cfg.Quantum > 0 {
		w = float64(int64(w/m.cfg.Quantum+0.5)) * m.cfg.Quantum
	}
	if w < 0 {
		w = 0
	}
	m.tel.Emit(telemetry.Event{
		Kind:   telemetry.KindEnergySample,
		Source: SeriesName,
		At:     now,
		Value:  w,
	})
}

package wattsup

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func setup(cfg Config) (*sim.Engine, *power.Domain, *Meter) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	d := bus.NewDomain("package", 104.5)
	prof := trace.NewProfile("t")
	m := NewMeter(e, bus, prof, cfg, xrand.New(7))
	return e, d, m
}

func TestMeterSamplesAveragePower(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0}
	e, d, m := setup(cfg)
	m.Start()
	e.Advance(3)
	d.SetLevel(143)
	e.Advance(3)
	m.Stop()
	s := m.Series()
	if s.Len() != 6 {
		t.Fatalf("samples = %d, want 6", s.Len())
	}
	if math.Abs(s.At(1).V-104.5) > 1e-9 {
		t.Errorf("idle sample = %v", s.At(1).V)
	}
	if math.Abs(s.At(5).V-143) > 1e-9 {
		t.Errorf("busy sample = %v", s.At(5).V)
	}
}

func TestMeterIntervalAverageNotInstantaneous(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0}
	e, d, m := setup(cfg)
	m.Start()
	// Spike to 200 W for half of the first second.
	e.Advance(0.5)
	d.SetLevel(200)
	e.Advance(0.5)
	d.SetLevel(104.5)
	e.Advance(0.0) // sample at t=1 fires during the advance above
	s := m.Series()
	if s.Len() != 1 {
		t.Fatalf("samples = %d, want 1", s.Len())
	}
	want := (104.5 + 200) / 2
	if math.Abs(s.At(0).V-want) > 1e-9 {
		t.Errorf("sample = %v, want interval average %v", s.At(0).V, want)
	}
}

func TestMeterQuantization(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0.1, NoiseSigma: 0}
	e, d, m := setup(cfg)
	d.SetLevel(104.567)
	m.Start()
	e.Advance(2)
	for _, sm := range m.Series().Samples() {
		frac := math.Mod(sm.V*10, 1)
		if frac > 1e-9 && frac < 1-1e-9 {
			t.Fatalf("sample %v not quantized to 0.1 W", sm.V)
		}
	}
}

func TestMeterNoiseIsBoundedAndCentered(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0.5}
	e, _, m := setup(cfg)
	m.Start()
	e.Advance(2000)
	st := m.Series().Summarize()
	if math.Abs(st.Mean-104.5) > 0.2 {
		t.Errorf("noisy mean = %v, want ~104.5", st.Mean)
	}
	if st.Max-st.Min < 0.5 {
		t.Error("noise produced suspiciously flat readings")
	}
	if st.Max-st.Min > 6 {
		t.Errorf("noise spread %v too wide for sigma 0.5", st.Max-st.Min)
	}
}

func TestMeterStartStopIdempotent(t *testing.T) {
	cfg := Config{Period: 1}
	e, _, m := setup(cfg)
	m.Start()
	m.Start()
	e.Advance(3)
	m.Stop()
	m.Stop()
	e.Advance(3)
	if m.Series().Len() != 3 {
		t.Errorf("samples = %d, want 3", m.Series().Len())
	}
}

func TestMeterValidation(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	prof := trace.NewProfile("t")
	defer func() {
		if recover() == nil {
			t.Error("noise without rng did not panic")
		}
	}()
	NewMeter(e, bus, prof, Config{Period: 1, NoiseSigma: 1}, nil)
}

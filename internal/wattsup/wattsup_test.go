package wattsup

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// setup wires a meter to a recorder-backed profile, the production
// arrangement: samples flow as telemetry events and the recorder folds
// them into the "system" series.
func setup(cfg Config) (*sim.Engine, *power.Domain, *Meter, *trace.Profile) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	d := bus.NewDomain("package", 104.5)
	prof := trace.NewProfile("t")
	tel := telemetry.NewBus(trace.NewRecorder(prof))
	m := NewMeter(e, bus, tel, cfg, xrand.New(7))
	return e, d, m, prof
}

func TestMeterSamplesAveragePower(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0}
	e, d, m, prof := setup(cfg)
	m.Start()
	e.Advance(3)
	d.SetLevel(143)
	e.Advance(3)
	m.Stop()
	s := prof.SeriesByName(SeriesName)
	if s.Len() != 6 {
		t.Fatalf("samples = %d, want 6", s.Len())
	}
	if math.Abs(s.At(1).V-104.5) > 1e-9 {
		t.Errorf("idle sample = %v", s.At(1).V)
	}
	if math.Abs(s.At(5).V-143) > 1e-9 {
		t.Errorf("busy sample = %v", s.At(5).V)
	}
}

func TestMeterIntervalAverageNotInstantaneous(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0}
	e, d, m, prof := setup(cfg)
	m.Start()
	// Spike to 200 W for half of the first second.
	e.Advance(0.5)
	d.SetLevel(200)
	e.Advance(0.5)
	d.SetLevel(104.5)
	e.Advance(0.0) // sample at t=1 fires during the advance above
	s := prof.SeriesByName(SeriesName)
	if s.Len() != 1 {
		t.Fatalf("samples = %d, want 1", s.Len())
	}
	want := (104.5 + 200) / 2
	if math.Abs(s.At(0).V-want) > 1e-9 {
		t.Errorf("sample = %v, want interval average %v", s.At(0).V, want)
	}
}

func TestMeterQuantization(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0.1, NoiseSigma: 0}
	e, d, m, prof := setup(cfg)
	d.SetLevel(104.567)
	m.Start()
	e.Advance(2)
	for _, sm := range prof.SeriesByName(SeriesName).Samples() {
		frac := math.Mod(sm.V*10, 1)
		if frac > 1e-9 && frac < 1-1e-9 {
			t.Fatalf("sample %v not quantized to 0.1 W", sm.V)
		}
	}
}

func TestMeterNoiseIsBoundedAndCentered(t *testing.T) {
	cfg := Config{Period: 1, Quantum: 0, NoiseSigma: 0.5}
	e, _, m, prof := setup(cfg)
	m.Start()
	e.Advance(2000)
	st := prof.SeriesByName(SeriesName).Summarize()
	if math.Abs(st.Mean-104.5) > 0.2 {
		t.Errorf("noisy mean = %v, want ~104.5", st.Mean)
	}
	if st.Max-st.Min < 0.5 {
		t.Error("noise produced suspiciously flat readings")
	}
	if st.Max-st.Min > 6 {
		t.Errorf("noise spread %v too wide for sigma 0.5", st.Max-st.Min)
	}
}

func TestMeterStartStopIdempotent(t *testing.T) {
	cfg := Config{Period: 1}
	e, _, m, prof := setup(cfg)
	m.Start()
	m.Start()
	e.Advance(3)
	m.Stop()
	m.Stop()
	e.Advance(3)
	if prof.SeriesByName(SeriesName).Len() != 3 {
		t.Errorf("samples = %d, want 3", prof.SeriesByName(SeriesName).Len())
	}
}

// TestMeterEmitsOnInertBus pins the no-consumer contract: sampling on
// a bus nobody subscribed to must still draw noise (the RNG stream is
// part of the golden contract) and must not panic.
func TestMeterEmitsOnInertBus(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	bus.NewDomain("package", 104.5)
	m := NewMeter(e, bus, nil, Config{Period: 1, NoiseSigma: 0.5}, xrand.New(7))
	m.Start()
	e.Advance(10)
	m.Stop()
}

func TestMeterValidation(t *testing.T) {
	e := sim.NewEngine()
	bus := power.NewBus(e, 0)
	defer func() {
		if recover() == nil {
			t.Error("noise without rng did not panic")
		}
	}()
	NewMeter(e, bus, nil, Config{Period: 1, NoiseSigma: 1}, nil)
}

// Package heat implements the proxy application of the paper: a 2-D
// explicit finite-difference (FTCS) heat-conduction simulation. The
// solver does real numerical work on real buffers — the checkpoints the
// pipelines write and the frames the visualizer renders are genuine
// data products of this solver — while the platform model separately
// charges virtual time for the work performed.
package heat

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/par"
)

// Grid is the shared 2-D scalar field type (see package field).
type Grid = field.Grid

// NewGrid allocates a zeroed NX×NY grid.
func NewGrid(nx, ny int) *Grid { return field.New(nx, ny) }

// Source holds a rectangular region at a fixed temperature — the
// "heating element" driving the simulation. A source with
// PeriodSteps > 0 cycles: it holds its temperature for
// PeriodSteps*Duty steps, then releases the region for the rest of the
// period (a pulsed heater).
type Source struct {
	X0, Y0, X1, Y1 int // half-open cell rectangle
	Temp           float64
	// PeriodSteps is the duty cycle length in sub-steps (0 = always on).
	PeriodSteps uint64
	// Duty is the active fraction of the period (0 < Duty <= 1).
	Duty float64
}

// activeAt reports whether the source is clamping at a given sub-step.
func (s Source) activeAt(step uint64) bool {
	if s.PeriodSteps == 0 {
		return true
	}
	return float64(step%s.PeriodSteps) < s.Duty*float64(s.PeriodSteps)
}

// BoundaryKind selects the edge condition.
type BoundaryKind int

// Boundary conditions.
const (
	// BoundaryDirichlet clamps the edges to BoundaryTemp (a cold bath).
	BoundaryDirichlet BoundaryKind = iota
	// BoundaryNeumann insulates the edges (zero flux): edge cells copy
	// their interior neighbor, so no heat leaves the domain.
	BoundaryNeumann
)

// Params configures the solver.
type Params struct {
	NX, NY int
	// Alpha is the thermal diffusivity; DX/DY the cell spacing.
	Alpha, DX, DY float64
	// DT is the time step; 0 selects 90 % of the FTCS stability limit.
	DT float64
	// Boundary selects the edge condition (default Dirichlet).
	Boundary BoundaryKind
	// BoundaryTemp is the fixed edge temperature under Dirichlet.
	BoundaryTemp float64
	// InitialTemp fills the interior at start.
	InitialTemp float64
	// Workers caps how many par workers a step may use; 0 means
	// GOMAXPROCS. The output field is byte-identical at any setting.
	Workers int
	Sources []Source
}

// DefaultParams returns the paper's configuration: a 128×128 grid
// (128 KiB of float64), one hot source, cold boundaries.
func DefaultParams() Params {
	return Params{
		NX: 128, NY: 128,
		Alpha: 1.0, DX: 1.0, DY: 1.0,
		BoundaryTemp: 0,
		InitialTemp:  20,
		Sources: []Source{
			{X0: 56, Y0: 56, X1: 72, Y1: 72, Temp: 1000},
		},
	}
}

// StabilityLimit returns the largest stable FTCS time step for the
// given diffusivity and spacing.
func StabilityLimit(alpha, dx, dy float64) float64 {
	return (dx * dx * dy * dy) / (2 * alpha * (dx*dx + dy*dy))
}

// sweepGrain is the minimum rows per band: small enough that a 128-row
// grid still splits across several workers, large enough that a band is
// real work relative to the engine's scheduling cost.
const sweepGrain = 8

// Solver advances the heat equation. Interior sweeps run as row bands
// on the shared par engine, so stepping never spawns goroutines and
// distinct solvers may step concurrently.
type Solver struct {
	params    Params
	cur, next *Grid
	steps     uint64
	rx, ry    float64
	// sweep is the cached stencil kernel handed to par each step; it
	// reads cur/next through the receiver so the per-step buffer swap
	// needs no fresh closure (stepping stays allocation-free).
	sweep func(lo, hi int)
}

// NewSolver builds a solver, validating parameters and applying the
// initial condition. It panics on unstable DT or invalid geometry.
func NewSolver(p Params) *Solver {
	if p.NX < 3 || p.NY < 3 {
		panic(fmt.Sprintf("heat: grid %dx%d too small for a stencil", p.NX, p.NY))
	}
	if p.Alpha <= 0 || p.DX <= 0 || p.DY <= 0 {
		panic("heat: alpha, dx, dy must be positive")
	}
	limit := StabilityLimit(p.Alpha, p.DX, p.DY)
	if p.DT == 0 {
		p.DT = 0.9 * limit
	}
	if p.DT > limit {
		panic(fmt.Sprintf("heat: dt %g exceeds FTCS stability limit %g", p.DT, limit))
	}
	for _, s := range p.Sources {
		if s.X0 < 0 || s.Y0 < 0 || s.X1 > p.NX || s.Y1 > p.NY || s.X0 >= s.X1 || s.Y0 >= s.Y1 {
			panic(fmt.Sprintf("heat: source %+v outside %dx%d grid", s, p.NX, p.NY))
		}
		if s.PeriodSteps > 0 && (s.Duty <= 0 || s.Duty > 1) {
			panic(fmt.Sprintf("heat: pulsed source duty %v outside (0,1]", s.Duty))
		}
	}
	s := &Solver{params: p, cur: NewGrid(p.NX, p.NY), next: NewGrid(p.NX, p.NY)}
	s.rx = p.Alpha * p.DT / (p.DX * p.DX)
	s.ry = p.Alpha * p.DT / (p.DY * p.DY)
	s.sweep = func(lo, hi int) {
		cur, next := s.cur, s.next
		nx := s.params.NX
		rx, ry := s.rx, s.ry
		// Bands cover interior rows: band index i is grid row i+1.
		for y := lo + 1; y < hi+1; y++ {
			row := y * nx
			// Equal-length row slices let the prove pass drop the five
			// per-cell bounds checks: x < nx-1 bounds every index below.
			c := cur.Data[row : row+nx]
			up := cur.Data[row-nx : row]
			down := cur.Data[row+nx : row+2*nx]
			out := next.Data[row : row+nx]
			// Interior-aligned equal-length views: ranging over the output
			// view bounds every index, so the loop body carries no bounds
			// checks at all (verified with -d=ssa/check_bce).
			o := out[1 : nx-1]
			cn := c[2 : 2+len(o)]
			upi := up[1 : 1+len(o)]
			dni := down[1 : 1+len(o)]
			// Roll the center row through registers: the store to out
			// could alias cur for all the compiler knows, so without the
			// rolling window it reloads c[x-1], c[x], c[x+1] every cell.
			cl, cc := c[0], c[1]
			for k := range o {
				cr := cn[k]
				o[k] = cc +
					rx*(cl-2*cc+cr) +
					ry*(upi[k]-2*cc+dni[k])
				cl, cc = cc, cr
			}
		}
	}
	s.cur.Fill(p.InitialTemp)
	s.applyBoundary(s.cur)
	s.applySources(s.cur)
	return s
}

// Params returns the solver configuration (DT resolved).
func (s *Solver) Params() Params { return s.params }

// Field returns the current temperature field. Callers must not write
// to it while stepping.
func (s *Solver) Field() *Grid { return s.cur }

// Steps returns how many sub-steps have been taken.
func (s *Solver) Steps() uint64 { return s.steps }

// Time returns the simulated physical time.
func (s *Solver) Time() float64 { return float64(s.steps) * s.params.DT }

// CellUpdates returns the interior cell-update count of n steps, the
// work unit the platform model charges for.
func (s *Solver) CellUpdates(n int) uint64 {
	return uint64(n) * uint64(s.params.NX-2) * uint64(s.params.NY-2)
}

func (s *Solver) applyBoundary(g *Grid) {
	switch s.params.Boundary {
	case BoundaryDirichlet:
		for x := 0; x < g.NX; x++ {
			g.Set(x, 0, s.params.BoundaryTemp)
			g.Set(x, g.NY-1, s.params.BoundaryTemp)
		}
		for y := 0; y < g.NY; y++ {
			g.Set(0, y, s.params.BoundaryTemp)
			g.Set(g.NX-1, y, s.params.BoundaryTemp)
		}
	case BoundaryNeumann:
		for x := 0; x < g.NX; x++ {
			g.Set(x, 0, g.At(x, 1))
			g.Set(x, g.NY-1, g.At(x, g.NY-2))
		}
		for y := 0; y < g.NY; y++ {
			g.Set(0, y, g.At(1, y))
			g.Set(g.NX-1, y, g.At(g.NX-2, y))
		}
	default:
		panic(fmt.Sprintf("heat: unknown boundary kind %d", s.params.Boundary))
	}
}

func (s *Solver) applySources(g *Grid) {
	for _, src := range s.params.Sources {
		if !src.activeAt(s.steps) {
			continue
		}
		for y := src.Y0; y < src.Y1; y++ {
			row := g.Data[y*g.NX:]
			for x := src.X0; x < src.X1; x++ {
				row[x] = src.Temp
			}
		}
	}
}

// Step advances n FTCS sub-steps, parallelized across row bands.
func (s *Solver) Step(n int) {
	for i := 0; i < n; i++ {
		s.stepOnce()
	}
}

func (s *Solver) stepOnce() {
	par.ForLimit(s.params.Workers, s.params.NY-2, sweepGrain, s.sweep)
	s.cur, s.next = s.next, s.cur
	s.applyBoundary(s.cur)
	s.applySources(s.cur)
	s.steps++
}

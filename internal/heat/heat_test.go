package heat

import (
	"math"
	"testing"
	"testing/quick"
)

func smallParams() Params {
	return Params{
		NX: 32, NY: 32,
		Alpha: 1, DX: 1, DY: 1,
		BoundaryTemp: 0, InitialTemp: 20,
		Sources: []Source{{X0: 14, Y0: 14, X1: 18, Y1: 18, Temp: 100}},
	}
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(4, 3)
	g.Set(2, 1, 7.5)
	if g.At(2, 1) != 7.5 {
		t.Errorf("At(2,1) = %v", g.At(2, 1))
	}
	if g.Bytes() != 4*3*8 {
		t.Errorf("Bytes = %d", g.Bytes())
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid(3, 3)
	c := g.Clone()
	c.Set(1, 1, 9)
	if g.At(1, 1) != 0 {
		t.Error("clone shares storage")
	}
}

func TestGridMinMaxMean(t *testing.T) {
	g := NewGrid(3, 3)
	g.Fill(2)
	g.Set(0, 0, -1)
	g.Set(2, 2, 5)
	lo, hi := g.MinMax()
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v/%v", lo, hi)
	}
	want := (2*7 - 1 + 5) / 9.0
	if m := g.Mean(); math.Abs(m-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", m, want)
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0, 5) did not panic")
		}
	}()
	NewGrid(0, 5)
}

func TestStabilityLimit(t *testing.T) {
	// alpha=1, dx=dy=1: limit = 1/4.
	if got := StabilityLimit(1, 1, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("StabilityLimit = %v, want 0.25", got)
	}
}

func TestUnstableDTPanics(t *testing.T) {
	p := smallParams()
	p.DT = 0.3 // above the 0.25 limit
	defer func() {
		if recover() == nil {
			t.Error("unstable DT did not panic")
		}
	}()
	NewSolver(p)
}

func TestSourceOutsideGridPanics(t *testing.T) {
	p := smallParams()
	p.Sources = []Source{{X0: 30, Y0: 30, X1: 40, Y1: 40, Temp: 1}}
	defer func() {
		if recover() == nil {
			t.Error("out-of-grid source did not panic")
		}
	}()
	NewSolver(p)
}

func TestSourceAndBoundaryHeld(t *testing.T) {
	s := NewSolver(smallParams())
	s.Step(50)
	g := s.Field()
	if g.At(15, 15) != 100 {
		t.Errorf("source cell = %v, want 100", g.At(15, 15))
	}
	if g.At(0, 10) != 0 || g.At(10, 0) != 0 || g.At(31, 10) != 0 || g.At(10, 31) != 0 {
		t.Error("boundary not held at 0")
	}
}

func TestHeatDiffusesOutward(t *testing.T) {
	p := smallParams()
	p.InitialTemp = 0
	s := NewSolver(p)
	before := s.Field().At(10, 16) // off-source cell
	s.Step(200)
	after := s.Field().At(10, 16)
	if after <= before {
		t.Errorf("heat did not reach (10,16): %v -> %v", before, after)
	}
	// Closer cells are hotter than farther cells (monotone decay from source).
	near := s.Field().At(12, 16)
	far := s.Field().At(4, 16)
	if near <= far {
		t.Errorf("temperature not decaying with distance: near %v, far %v", near, far)
	}
}

func TestMaximumPrinciple(t *testing.T) {
	// FTCS under the stability limit obeys a discrete maximum principle:
	// values stay within [min(boundary,initial,source), max(...)].
	s := NewSolver(smallParams())
	s.Step(500)
	lo, hi := s.Field().MinMax()
	if lo < 0-1e-9 || hi > 100+1e-9 {
		t.Errorf("field escaped [0,100]: [%v, %v]", lo, hi)
	}
}

func TestConvergesToSteadyState(t *testing.T) {
	s := NewSolver(smallParams())
	s.Step(20000)
	a := s.Field().Clone()
	s.Step(1000)
	b := s.Field()
	var maxDelta float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > maxDelta {
			maxDelta = d
		}
	}
	if maxDelta > 1e-6 {
		t.Errorf("not converged: max delta %v after 20k steps", maxDelta)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	p := smallParams()
	p.Workers = 1
	serial := NewSolver(p)
	p.Workers = 7 // deliberately not dividing NY-2
	parallel := NewSolver(p)
	serial.Step(100)
	parallel.Step(100)
	for i := range serial.Field().Data {
		if serial.Field().Data[i] != parallel.Field().Data[i] {
			t.Fatalf("serial and 7-worker solvers diverge at cell %d", i)
		}
	}
}

func TestSymmetryPreserved(t *testing.T) {
	// A centered square source on a square grid must stay 4-fold symmetric.
	p := Params{
		NX: 33, NY: 33, Alpha: 1, DX: 1, DY: 1,
		InitialTemp: 0,
		Sources:     []Source{{X0: 15, Y0: 15, X1: 18, Y1: 18, Temp: 50}},
	}
	s := NewSolver(p)
	s.Step(300)
	g := s.Field()
	for y := 0; y < 33; y++ {
		for x := 0; x < 33; x++ {
			if math.Abs(g.At(x, y)-g.At(32-x, y)) > 1e-9 {
				t.Fatalf("x-mirror broken at (%d,%d)", x, y)
			}
			if math.Abs(g.At(x, y)-g.At(x, 32-y)) > 1e-9 {
				t.Fatalf("y-mirror broken at (%d,%d)", x, y)
			}
			if math.Abs(g.At(x, y)-g.At(y, x)) > 1e-9 {
				t.Fatalf("transpose symmetry broken at (%d,%d)", x, y)
			}
		}
	}
}

func TestCellUpdates(t *testing.T) {
	s := NewSolver(smallParams())
	if got := s.CellUpdates(10); got != 10*30*30 {
		t.Errorf("CellUpdates(10) = %d, want %d", got, 10*30*30)
	}
}

func TestStepsAndTime(t *testing.T) {
	s := NewSolver(smallParams())
	s.Step(7)
	if s.Steps() != 7 {
		t.Errorf("Steps = %d", s.Steps())
	}
	want := 7 * s.Params().DT
	if math.Abs(s.Time()-want) > 1e-12 {
		t.Errorf("Time = %v, want %v", s.Time(), want)
	}
}

// Property: without sources, with uniform initial == boundary temp, the
// field is a fixed point of the solver for any stable dt.
func TestUniformFieldIsFixedPoint(t *testing.T) {
	f := func(temp uint8, dtFrac uint8) bool {
		p := Params{
			NX: 16, NY: 16, Alpha: 1, DX: 1, DY: 1,
			BoundaryTemp: float64(temp), InitialTemp: float64(temp),
			DT: 0.25 * (float64(dtFrac%100) + 1) / 101,
		}
		s := NewSolver(p)
		s.Step(20)
		lo, hi := s.Field().MinMax()
		return math.Abs(lo-float64(temp)) < 1e-12 && math.Abs(hi-float64(temp)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeumannBoundaryConservesHeat(t *testing.T) {
	// An insulated box with no sources keeps its total heat constant.
	p := Params{
		NX: 32, NY: 32, Alpha: 1, DX: 1, DY: 1,
		Boundary:    BoundaryNeumann,
		InitialTemp: 0,
	}
	s := NewSolver(p)
	// Seed an off-center blob directly.
	for y := 10; y < 14; y++ {
		for x := 8; x < 12; x++ {
			s.Field().Set(x, y, 100)
		}
	}
	sum := func() float64 {
		var total float64
		// Interior sum: the ghost edges mirror interior cells.
		for y := 1; y < 31; y++ {
			for x := 1; x < 31; x++ {
				total += s.Field().At(x, y)
			}
		}
		return total
	}
	before := sum()
	s.Step(300)
	after := sum()
	if math.Abs(after-before) > 0.02*before {
		t.Errorf("insulated box lost heat: %v -> %v", before, after)
	}
	// And it homogenizes: extremes shrink toward the mean.
	lo, hi := s.Field().MinMax()
	if hi-lo > 30 {
		t.Errorf("field not homogenizing: spread %v", hi-lo)
	}
}

func TestDirichletLosesHeatNeumannDoesNot(t *testing.T) {
	mk := func(b BoundaryKind) *Solver {
		p := smallParams()
		p.Boundary = b
		p.Sources = nil
		p.InitialTemp = 50
		return NewSolver(p)
	}
	d := mk(BoundaryDirichlet)
	n := mk(BoundaryNeumann)
	d.Step(500)
	n.Step(500)
	if d.Field().Mean() >= 45 {
		t.Errorf("Dirichlet box kept its heat: mean %v", d.Field().Mean())
	}
	if n.Field().Mean() < 49.9 {
		t.Errorf("Neumann box lost heat: mean %v", n.Field().Mean())
	}
}

func TestPulsedSourceCycles(t *testing.T) {
	p := smallParams()
	p.Sources = []Source{{
		X0: 14, Y0: 14, X1: 18, Y1: 18, Temp: 100,
		PeriodSteps: 100, Duty: 0.5,
	}}
	s := NewSolver(p)
	s.Step(30) // mid active half: clamped
	if s.Field().At(15, 15) != 100 {
		t.Errorf("source inactive during duty window: %v", s.Field().At(15, 15))
	}
	s.Step(40) // step 70: inactive half -> region cools below clamp
	if s.Field().At(15, 15) >= 100 {
		t.Error("source still clamped during off window")
	}
	s.Step(40) // step 110: active again
	if s.Field().At(15, 15) != 100 {
		t.Error("source did not re-engage on the next period")
	}
}

func TestPulsedSourceValidation(t *testing.T) {
	p := smallParams()
	p.Sources = []Source{{X0: 1, Y0: 1, X1: 2, Y1: 2, Temp: 1, PeriodSteps: 10, Duty: 1.5}}
	defer func() {
		if recover() == nil {
			t.Error("bad duty did not panic")
		}
	}()
	NewSolver(p)
}

func BenchmarkStep128(b *testing.B) {
	p := DefaultParams()
	s := NewSolver(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(1)
	}
}

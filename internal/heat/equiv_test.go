package heat

import (
	"math/rand"
	"testing"
)

// referenceSweep is the stencil kernel as written before the
// bounds-check-elimination restructuring: straight indexed loads off
// three row slices. The rewritten sweep must reproduce its output
// bit for bit — same FP operation order, just a shape the compiler
// can prove in-bounds.
func referenceSweep(cur, next *Grid, rx, ry float64, lo, hi int) {
	nx := cur.NX
	for y := lo + 1; y < hi+1; y++ {
		c := cur.Data[y*nx : (y+1)*nx]
		up := cur.Data[(y-1)*nx : y*nx]
		down := cur.Data[(y+1)*nx : (y+2)*nx]
		out := next.Data[y*nx : (y+1)*nx]
		for x := 1; x < nx-1; x++ {
			out[x] = c[x] +
				rx*(c[x-1]-2*c[x]+c[x+1]) +
				ry*(up[x]-2*c[x]+down[x])
		}
	}
}

// TestSweepMatchesReference drives the solver's restructured sweep and
// the pre-restructuring reference over randomized fields and asserts
// every interior cell is bit-identical. Any FP reassociation in the
// rewrite — even one that is mathematically equal — fails here.
func TestSweepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nx := 3 + rng.Intn(40)
		ny := 3 + rng.Intn(40)
		s := NewSolver(Params{NX: nx, NY: ny, Alpha: 1, DX: 1, DY: 1, Workers: 1})
		for i := range s.cur.Data {
			// Wide magnitude spread so rounding differences can't hide.
			s.cur.Data[i] = (rng.Float64() - 0.5) * float64(int(1)<<uint(rng.Intn(30)))
		}
		want := NewGrid(nx, ny)
		referenceSweep(s.cur, want, s.rx, s.ry, 0, ny-2)

		s.sweep(0, ny-2)
		for y := 1; y < ny-1; y++ {
			for x := 1; x < nx-1; x++ {
				got := s.next.Data[y*nx+x]
				if got != want.Data[y*nx+x] {
					t.Fatalf("trial %d (%dx%d): cell (%d,%d) = %v, reference %v",
						trial, nx, ny, x, y, got, want.Data[y*nx+x])
				}
			}
		}
	}
}

// Package checkpoint defines the binary on-disk format the proxy
// application writes each I/O event and the post-processing pipeline
// reads back: a fixed header, the raw temperature field (CRC-protected),
// and a bulk time-history payload.
//
// The header and field are real bytes that round-trip through the
// simulated filesystem; the history payload — the bulk of a checkpoint,
// whose values the visualizer never consumes — is written sparsely so a
// 200 MiB checkpoint costs 200 MiB of simulated I/O without 200 MiB of
// host RAM.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/heat"
	"repro/internal/par"
	"repro/internal/storage"
	"repro/internal/units"
)

// Magic identifies a checkpoint file.
const Magic = "GVCKPT01"

// HeaderSize is the fixed encoded header length in bytes.
const HeaderSize = 8 + 4 + 8 + 8 + 4 + 4 + 8 + 4

// Header describes one checkpoint.
type Header struct {
	Version      uint32
	Step         uint64  // solver sub-steps at capture time
	SimTime      float64 // simulated physical time
	NX, NY       uint32
	PayloadBytes uint64 // bulk history payload length
	// GridCRC is the CRC-32 (IEEE) of the encoded header fields (all
	// bytes before this one) followed by the encoded field, so a bit
	// flip anywhere in the retained prefix — Step and SimTime included,
	// which annotate the rendered frames — is detected, not rendered.
	GridCRC uint32
}

// crcOffset is where GridCRC sits in the encoded header; the CRC
// covers everything before it plus the grid bytes.
const crcOffset = HeaderSize - 4

// prefixCRC computes the checksum of an encoded header (minus its CRC
// field) and grid.
func prefixCRC(header, grid []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(header[:crcOffset]), crc32.IEEETable, grid)
}

// ErrCorrupt reports a failed magic, bounds, or CRC check.
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// putHeader serializes h (little-endian, fixed layout) into dst, which
// must hold at least HeaderSize bytes.
func putHeader(dst []byte, h Header) {
	copy(dst[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(dst[8:], h.Version)
	le.PutUint64(dst[12:], h.Step)
	le.PutUint64(dst[20:], math.Float64bits(h.SimTime))
	le.PutUint32(dst[28:], h.NX)
	le.PutUint32(dst[32:], h.NY)
	le.PutUint64(dst[36:], h.PayloadBytes)
	le.PutUint32(dst[44:], h.GridCRC)
}

// encodeHeader serializes h into a fresh buffer.
func encodeHeader(h Header) []byte {
	out := make([]byte, HeaderSize)
	putHeader(out, h)
	return out
}

// decodeHeader parses and validates a header.
func decodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:8]) != Magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	le := binary.LittleEndian
	return Header{
		Version:      le.Uint32(b[8:]),
		Step:         le.Uint64(b[12:]),
		SimTime:      math.Float64frombits(le.Uint64(b[20:])),
		NX:           le.Uint32(b[28:]),
		NY:           le.Uint32(b[32:]),
		PayloadBytes: le.Uint64(b[36:]),
		GridCRC:      le.Uint32(b[44:]),
	}, nil
}

// decodeGrid reconstructs a field from encoded bytes.
func decodeGrid(b []byte, nx, ny int) *heat.Grid {
	g := heat.NewGrid(nx, ny)
	for i := range g.Data {
		g.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return g
}

// encodeGrain is the minimum cells per parallel encode chunk (2048
// cells = 16 KiB of output), so a 128×128 grid splits into at most 8
// chunks.
const encodeGrain = 2048

// Encoder serializes checkpoints while reusing one header+grid scratch
// buffer across events, so a pipeline writing hundreds of ~128 KiB
// field snapshots allocates the encode buffer once instead of per
// event. The grid encode and its CRC run as parallel chunks on the par
// engine; per-chunk CRCs are combined left-to-right (crc32Combine), so
// the written bytes — checksum included — are identical at any worker
// count. The zero value is ready to use. An Encoder is not safe for
// concurrent use; give each writer (each pipeline run) its own.
type Encoder struct {
	// Workers caps how many par workers an encode may use; 0 means
	// GOMAXPROCS.
	Workers int

	prefix []byte // header + encoded grid scratch, reused across events

	// Per-encode state read by the cached chunk kernel: the grid bytes
	// being filled, the source cells, per-chunk CRCs and cell counts,
	// and the running combined CRC.
	grid  []byte
	data  []float64
	crcs  []uint32
	cells []int32
	crc   uint32

	// combine is the cached zero-extension operator for merging chunk
	// CRCs. Chunk sizes repeat across events (same grid, same worker
	// count), so the ~log2(len) matrix build happens once, not per merge.
	combine crc32Op

	encodeChunk func(chunk, lo, hi int)
	mergeChunk  func(chunk int)
}

// encodePrefixInto rebuilds e.prefix for the given event and returns
// it. The returned slice is owned by e and valid until the next call.
func (e *Encoder) encodePrefixInto(g *heat.Grid, step uint64, simTime float64, payload units.Bytes) []byte {
	if payload < 0 {
		panic("checkpoint: negative payload size")
	}
	gridBytes := g.NX * g.NY * 8
	need := HeaderSize + gridBytes
	if cap(e.prefix) < need {
		e.prefix = make([]byte, need)
	}
	e.prefix = e.prefix[:need]
	if e.encodeChunk == nil {
		e.encodeChunk = func(chunk, lo, hi int) {
			// Advancing equal-stride windows instead of indexing grid[i*8:]
			// keeps the stores bounds-check-free, and the 4-wide unroll
			// with constant offsets amortizes the slice advance; the byte
			// layout is exactly the per-cell PutUint64 loop's.
			out := e.grid[lo*8 : hi*8]
			vals := e.data[lo:hi]
			le := binary.LittleEndian
			for len(vals) >= 4 {
				le.PutUint64(out[0:8], math.Float64bits(vals[0]))
				le.PutUint64(out[8:16], math.Float64bits(vals[1]))
				le.PutUint64(out[16:24], math.Float64bits(vals[2]))
				le.PutUint64(out[24:32], math.Float64bits(vals[3]))
				out = out[32:]
				vals = vals[4:]
			}
			for i, v := range vals {
				le.PutUint64(out[i*8:], math.Float64bits(v))
			}
			grid := e.grid
			if chunk == 0 {
				// Chunk 0 continues straight from the header CRC (set
				// before the Reduce), so a single-chunk encode needs no
				// combine at all — the serial fast path.
				e.crcs[0] = crc32.Update(e.crc, crc32.IEEETable, grid[:hi*8])
			} else {
				e.crcs[chunk] = crc32.ChecksumIEEE(grid[lo*8 : hi*8])
			}
			e.cells[chunk] = int32(hi - lo)
		}
		e.mergeChunk = func(chunk int) {
			if chunk == 0 {
				e.crc = e.crcs[0]
				return
			}
			n := int64(e.cells[chunk]) * 8
			if e.combine.len2 != n {
				e.combine.init(n)
			}
			e.crc = e.combine.apply(e.crc) ^ e.crcs[chunk]
		}
	}
	e.grid = e.prefix[HeaderSize:]
	e.data = g.Data
	count := par.Bands(e.Workers, len(g.Data), encodeGrain)
	for len(e.crcs) < count {
		e.crcs = append(e.crcs, 0)
		e.cells = append(e.cells, 0)
	}
	putHeader(e.prefix, Header{
		Version:      1,
		Step:         step,
		SimTime:      simTime,
		NX:           uint32(g.NX),
		NY:           uint32(g.NY),
		PayloadBytes: uint64(payload),
	})
	// Combining chunk CRCs in ascending chunk order reproduces exactly
	// the serial header-then-grid checksum (see prefixCRC).
	e.crc = crc32.ChecksumIEEE(e.prefix[:crcOffset])
	par.Reduce(e.Workers, len(g.Data), encodeGrain, e.encodeChunk, e.mergeChunk)
	binary.LittleEndian.PutUint32(e.prefix[crcOffset:], e.crc)
	e.data = nil
	return e.prefix
}

// Write serializes a checkpoint into f: header + field (real bytes) +
// payload (sparse), reusing e's scratch buffer. It does not fsync; the
// pipeline controls syncing. A transient write fault aborts the write
// mid-file; the caller should delete and rewrite the whole file rather
// than trust a partially-written checkpoint.
func (e *Encoder) Write(f *storage.File, g *heat.Grid, step uint64, simTime float64, payload units.Bytes) error {
	prefix := e.encodePrefixInto(g, step, simTime, payload)
	if err := f.WriteAt(prefix[:HeaderSize], 0); err != nil {
		return err
	}
	if err := f.WriteAt(prefix[HeaderSize:], HeaderSize); err != nil {
		return err
	}
	if payload > 0 {
		if err := f.WriteSparseAt(units.Bytes(len(prefix)), payload); err != nil {
			return err
		}
	}
	return nil
}

// EncodeTo appends the retained prefix of a checkpoint — header plus
// field bytes — to dst and returns the extended slice. The encode
// scratch is e's and is reused; the appended bytes are the caller's.
// Stores that keep content themselves (the parallel filesystem ships
// this blob) pass a fresh or recycled dst per event.
func (e *Encoder) EncodeTo(dst []byte, g *heat.Grid, step uint64, simTime float64, payload units.Bytes) []byte {
	return append(dst, e.encodePrefixInto(g, step, simTime, payload)...)
}

// Write serializes a checkpoint into f with a one-shot Encoder; loops
// over many events should hold an Encoder and use its Write instead.
func Write(f *storage.File, g *heat.Grid, step uint64, simTime float64, payload units.Bytes) error {
	var e Encoder
	return e.Write(f, g, step, simTime, payload)
}

// TotalSize returns the on-disk size of a checkpoint of the given grid
// and payload.
func TotalSize(nx, ny int, payload units.Bytes) units.Bytes {
	return HeaderSize + units.Bytes(nx*ny*8) + payload
}

// EncodePrefix serializes the retained prefix of a checkpoint — header
// plus field bytes — into a fresh buffer with a one-shot Encoder.
func EncodePrefix(g *heat.Grid, step uint64, simTime float64, payload units.Bytes) []byte {
	var e Encoder
	return e.EncodeTo(nil, g, step, simTime, payload)
}

// DecodePrefix parses an EncodePrefix blob, verifying magic and CRC.
func DecodePrefix(b []byte) (Header, *heat.Grid, error) {
	h, err := decodeHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	const maxDim = 1 << 16
	if h.NX == 0 || h.NY == 0 || h.NX > maxDim || h.NY > maxDim {
		return Header{}, nil, fmt.Errorf("%w: implausible grid %dx%d", ErrCorrupt, h.NX, h.NY)
	}
	gridBytes := int(h.NX) * int(h.NY) * 8
	if len(b) < HeaderSize+gridBytes {
		return Header{}, nil, fmt.Errorf("%w: prefix truncated", ErrCorrupt)
	}
	gb := b[HeaderSize : HeaderSize+gridBytes]
	if crc := prefixCRC(b, gb); crc != h.GridCRC {
		return Header{}, nil, fmt.Errorf("%w: prefix CRC %08x != header %08x", ErrCorrupt, crc, h.GridCRC)
	}
	return h, decodeGrid(gb, int(h.NX), int(h.NY)), nil
}

// Read deserializes a checkpoint from f, charging full read timing for
// header, field, and payload, and verifying magic and CRC.
func Read(f *storage.File) (Header, *heat.Grid, error) {
	hb := make([]byte, HeaderSize)
	if err := f.ReadAt(hb, 0); err != nil {
		return Header{}, nil, err
	}
	h, err := decodeHeader(hb)
	if err != nil {
		return Header{}, nil, err
	}
	const maxDim = 1 << 16
	if h.NX == 0 || h.NY == 0 || h.NX > maxDim || h.NY > maxDim {
		return Header{}, nil, fmt.Errorf("%w: implausible grid %dx%d", ErrCorrupt, h.NX, h.NY)
	}
	gridBytes := units.Bytes(h.NX) * units.Bytes(h.NY) * 8
	if HeaderSize+gridBytes+units.Bytes(h.PayloadBytes) > f.Size() {
		return Header{}, nil, fmt.Errorf("%w: sizes exceed file length", ErrCorrupt)
	}
	gb := make([]byte, gridBytes)
	if err := f.ReadAt(gb, HeaderSize); err != nil {
		return Header{}, nil, err
	}
	if crc := prefixCRC(hb, gb); crc != h.GridCRC {
		return Header{}, nil, fmt.Errorf("%w: prefix CRC %08x != header %08x", ErrCorrupt, crc, h.GridCRC)
	}
	// Stream the history payload (timing only; contents unused).
	if h.PayloadBytes > 0 {
		if err := f.ReadSparseAt(HeaderSize+gridBytes, units.Bytes(h.PayloadBytes)); err != nil {
			return Header{}, nil, err
		}
	}
	return h, decodeGrid(gb, int(h.NX), int(h.NY)), nil
}

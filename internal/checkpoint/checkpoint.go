// Package checkpoint defines the binary on-disk format the proxy
// application writes each I/O event and the post-processing pipeline
// reads back: a fixed header, the raw temperature field (CRC-protected),
// and a bulk time-history payload.
//
// The header and field are real bytes that round-trip through the
// simulated filesystem; the history payload — the bulk of a checkpoint,
// whose values the visualizer never consumes — is written sparsely so a
// 200 MiB checkpoint costs 200 MiB of simulated I/O without 200 MiB of
// host RAM.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/heat"
	"repro/internal/storage"
	"repro/internal/units"
)

// Magic identifies a checkpoint file.
const Magic = "GVCKPT01"

// HeaderSize is the fixed encoded header length in bytes.
const HeaderSize = 8 + 4 + 8 + 8 + 4 + 4 + 8 + 4

// Header describes one checkpoint.
type Header struct {
	Version      uint32
	Step         uint64  // solver sub-steps at capture time
	SimTime      float64 // simulated physical time
	NX, NY       uint32
	PayloadBytes uint64 // bulk history payload length
	GridCRC      uint32 // CRC-32 (IEEE) of the encoded field
}

// ErrCorrupt reports a failed magic, bounds, or CRC check.
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// encodeHeader serializes h (little-endian, fixed layout).
func encodeHeader(h Header) []byte {
	buf := bytes.NewBuffer(make([]byte, 0, HeaderSize))
	buf.WriteString(Magic)
	for _, v := range []any{h.Version, h.Step, math.Float64bits(h.SimTime), h.NX, h.NY, h.PayloadBytes, h.GridCRC} {
		binary.Write(buf, binary.LittleEndian, v) //nolint:errcheck // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// decodeHeader parses and validates a header.
func decodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:8]) != Magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	var h Header
	r := bytes.NewReader(b[8:])
	var simBits uint64
	for _, v := range []any{&h.Version, &h.Step, &simBits, &h.NX, &h.NY, &h.PayloadBytes, &h.GridCRC} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return Header{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	h.SimTime = math.Float64frombits(simBits)
	return h, nil
}

// encodeGrid serializes the field data little-endian.
func encodeGrid(g *heat.Grid) []byte {
	out := make([]byte, g.NX*g.NY*8)
	for i, v := range g.Data {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// decodeGrid reconstructs a field from encoded bytes.
func decodeGrid(b []byte, nx, ny int) *heat.Grid {
	g := heat.NewGrid(nx, ny)
	for i := range g.Data {
		g.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return g
}

// Write serializes a checkpoint into f: header + field (real bytes) +
// payload (sparse). It does not fsync; the pipeline controls syncing.
func Write(f *storage.File, g *heat.Grid, step uint64, simTime float64, payload units.Bytes) {
	if payload < 0 {
		panic("checkpoint: negative payload size")
	}
	grid := encodeGrid(g)
	h := Header{
		Version:      1,
		Step:         step,
		SimTime:      simTime,
		NX:           uint32(g.NX),
		NY:           uint32(g.NY),
		PayloadBytes: uint64(payload),
		GridCRC:      crc32.ChecksumIEEE(grid),
	}
	f.WriteAt(encodeHeader(h), 0)
	f.WriteAt(grid, HeaderSize)
	if payload > 0 {
		f.WriteSparseAt(HeaderSize+units.Bytes(len(grid)), payload)
	}
}

// TotalSize returns the on-disk size of a checkpoint of the given grid
// and payload.
func TotalSize(nx, ny int, payload units.Bytes) units.Bytes {
	return HeaderSize + units.Bytes(nx*ny*8) + payload
}

// EncodePrefix serializes the retained prefix of a checkpoint — header
// plus field bytes — for stores that keep content themselves (the
// parallel filesystem ships this blob; the bulk payload is sparse).
func EncodePrefix(g *heat.Grid, step uint64, simTime float64, payload units.Bytes) []byte {
	grid := encodeGrid(g)
	h := Header{
		Version:      1,
		Step:         step,
		SimTime:      simTime,
		NX:           uint32(g.NX),
		NY:           uint32(g.NY),
		PayloadBytes: uint64(payload),
		GridCRC:      crc32.ChecksumIEEE(grid),
	}
	return append(encodeHeader(h), grid...)
}

// DecodePrefix parses an EncodePrefix blob, verifying magic and CRC.
func DecodePrefix(b []byte) (Header, *heat.Grid, error) {
	h, err := decodeHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	const maxDim = 1 << 16
	if h.NX == 0 || h.NY == 0 || h.NX > maxDim || h.NY > maxDim {
		return Header{}, nil, fmt.Errorf("%w: implausible grid %dx%d", ErrCorrupt, h.NX, h.NY)
	}
	gridBytes := int(h.NX) * int(h.NY) * 8
	if len(b) < HeaderSize+gridBytes {
		return Header{}, nil, fmt.Errorf("%w: prefix truncated", ErrCorrupt)
	}
	gb := b[HeaderSize : HeaderSize+gridBytes]
	if crc := crc32.ChecksumIEEE(gb); crc != h.GridCRC {
		return Header{}, nil, fmt.Errorf("%w: grid CRC %08x != header %08x", ErrCorrupt, crc, h.GridCRC)
	}
	return h, decodeGrid(gb, int(h.NX), int(h.NY)), nil
}

// Read deserializes a checkpoint from f, charging full read timing for
// header, field, and payload, and verifying magic and CRC.
func Read(f *storage.File) (Header, *heat.Grid, error) {
	hb := make([]byte, HeaderSize)
	f.ReadAt(hb, 0)
	h, err := decodeHeader(hb)
	if err != nil {
		return Header{}, nil, err
	}
	const maxDim = 1 << 16
	if h.NX == 0 || h.NY == 0 || h.NX > maxDim || h.NY > maxDim {
		return Header{}, nil, fmt.Errorf("%w: implausible grid %dx%d", ErrCorrupt, h.NX, h.NY)
	}
	gridBytes := units.Bytes(h.NX) * units.Bytes(h.NY) * 8
	if HeaderSize+gridBytes+units.Bytes(h.PayloadBytes) > f.Size() {
		return Header{}, nil, fmt.Errorf("%w: sizes exceed file length", ErrCorrupt)
	}
	gb := make([]byte, gridBytes)
	f.ReadAt(gb, HeaderSize)
	if crc := crc32.ChecksumIEEE(gb); crc != h.GridCRC {
		return Header{}, nil, fmt.Errorf("%w: grid CRC %08x != header %08x", ErrCorrupt, crc, h.GridCRC)
	}
	// Stream the history payload (timing only; contents unused).
	if h.PayloadBytes > 0 {
		f.ReadSparseAt(HeaderSize+gridBytes, units.Bytes(h.PayloadBytes))
	}
	return h, decodeGrid(gb, int(h.NX), int(h.NY)), nil
}

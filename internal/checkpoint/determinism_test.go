package checkpoint

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/heat"
)

// TestCRC32CombineMatchesSerial is the property the parallel encoder's
// correctness rests on: combine(CRC(a), CRC(b), len(b)) == CRC(a||b)
// for arbitrary splits, including empty halves.
func TestCRC32CombineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, total := range []int{0, 1, 7, 64, 1000, 131072} {
		buf := make([]byte, total)
		rng.Read(buf)
		want := crc32.ChecksumIEEE(buf)
		for _, split := range []int{0, 1, total / 3, total / 2, total} {
			if split > total {
				continue
			}
			a, b := buf[:split], buf[split:]
			got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
			if got != want {
				t.Errorf("len=%d split=%d: combine %08x, serial %08x", total, split, got, want)
			}
		}
	}
}

// TestCRC32CombineManyChunks folds chunk CRCs left-to-right the way the
// encoder's ordered merge does.
func TestCRC32CombineManyChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 50000)
	rng.Read(buf)
	want := crc32.ChecksumIEEE(buf)
	for _, chunk := range []int{1, 13, 4096, 16384} {
		var crc uint32
		for lo := 0; lo < len(buf); lo += chunk {
			hi := lo + chunk
			if hi > len(buf) {
				hi = len(buf)
			}
			crc = crc32Combine(crc, crc32.ChecksumIEEE(buf[lo:hi]), int64(hi-lo))
		}
		if crc != want {
			t.Errorf("chunk=%d: folded %08x, serial %08x", chunk, crc, want)
		}
	}
}

// TestEncodeWorkerCountInvariant pins the tentpole contract on the
// encoder: header, grid bytes, and CRC must be identical at any worker
// count.
func TestEncodeWorkerCountInvariant(t *testing.T) {
	s := heat.NewSolver(heat.DefaultParams())
	s.Step(25)
	g := s.Field()

	ref := func() []byte {
		e := Encoder{Workers: 1}
		return append([]byte(nil), e.EncodeTo(nil, g, s.Steps(), s.Time(), 4096)...)
	}()
	for _, workers := range []int{2, 8} {
		e := Encoder{Workers: workers}
		got := e.EncodeTo(nil, g, s.Steps(), s.Time(), 4096)
		if !bytes.Equal(got, ref) {
			t.Errorf("encoded bytes differ between workers=1 and workers=%d", workers)
		}
	}
	// The parallel CRC must still round-trip through the validating
	// decoder.
	if _, _, err := DecodePrefix(ref); err != nil {
		t.Fatalf("DecodePrefix rejected a parallel-encoded prefix: %v", err)
	}
}

package checkpoint

import (
	"errors"
	"math"
	"testing"

	"repro/internal/heat"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/xrand"
)

func testFS(t *testing.T) (*sim.Engine, *storage.FileSystem) {
	t.Helper()
	e := sim.NewEngine()
	p := storage.SeagateHDD()
	p.DeterministicRotation = true
	d := storage.NewDisk(e, p, nil, xrand.New(1))
	c := storage.NewPageCache(e, d, storage.LinuxPageCache())
	return e, storage.NewFileSystem(e, d, c, storage.DefaultFS(), xrand.New(2))
}

func sampleGrid() *heat.Grid {
	g := heat.NewGrid(16, 12)
	for i := range g.Data {
		g.Data[i] = math.Sin(float64(i) * 0.1)
	}
	return g
}

func TestRoundTrip(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("ckpt-000", storage.AllocContiguous)
	g := sampleGrid()
	Write(f, g, 42, 3.5, 4096)

	h, got, err := Read(f)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.Step != 42 || h.SimTime != 3.5 || h.NX != 16 || h.NY != 12 || h.PayloadBytes != 4096 {
		t.Errorf("header = %+v", h)
	}
	for i := range g.Data {
		if got.Data[i] != g.Data[i] {
			t.Fatalf("field differs at cell %d: %v != %v", i, got.Data[i], g.Data[i])
		}
	}
}

func TestRoundTripSurvivesColdRead(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("ckpt", storage.AllocContiguous)
	g := sampleGrid()
	Write(f, g, 1, 0.5, units.MiB)
	f.Fsync()
	fs.DropCaches()
	_, got, err := Read(f)
	if err != nil {
		t.Fatalf("cold Read: %v", err)
	}
	if got.At(3, 3) != g.At(3, 3) {
		t.Error("cold read returned different data")
	}
}

func TestTotalSize(t *testing.T) {
	want := units.Bytes(HeaderSize) + 16*12*8 + 4096
	if got := TotalSize(16, 12, 4096); got != want {
		t.Errorf("TotalSize = %d, want %d", got, want)
	}
	_, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	Write(f, heat.NewGrid(16, 12), 0, 0, 4096)
	if f.Size() != want {
		t.Errorf("file size = %d, want %d", f.Size(), want)
	}
}

func TestCorruptMagicDetected(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	Write(f, sampleGrid(), 0, 0, 0)
	f.WriteAt([]byte("XXXXXXXX"), 0) // clobber magic
	if _, _, err := Read(f); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt magic not detected: %v", err)
	}
}

func TestCorruptFieldDetectedByCRC(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	Write(f, sampleGrid(), 0, 0, 0)
	f.WriteAt([]byte{0xDE, 0xAD}, HeaderSize+100) // flip field bytes
	if _, _, err := Read(f); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt field not detected: %v", err)
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	// Header claims a big payload the file doesn't have.
	g := heat.NewGrid(8, 8)
	Write(f, g, 0, 0, 0)
	// Rewrite header with a huge payload claim.
	h := Header{Version: 1, NX: 8, NY: 8, PayloadBytes: 1 << 30, GridCRC: 0}
	f.WriteAt(encodeHeader(h), 0)
	if _, _, err := Read(f); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated file not detected: %v", err)
	}
}

func TestImplausibleDimensionsDetected(t *testing.T) {
	_, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	Write(f, sampleGrid(), 0, 0, 0)
	h := Header{Version: 1, NX: 0, NY: 12}
	f.WriteAt(encodeHeader(h), 0)
	if _, _, err := Read(f); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero-dim grid not detected: %v", err)
	}
}

func TestHeaderEncodeDecode(t *testing.T) {
	h := Header{Version: 3, Step: 123456, SimTime: -2.25, NX: 7, NY: 9, PayloadBytes: 77, GridCRC: 0xCAFEBABE}
	got, err := decodeHeader(encodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("decode(encode(h)) = %+v, want %+v", got, h)
	}
}

func TestReadChargesPayloadTime(t *testing.T) {
	e, fs := testFS(t)
	f := fs.Create("c", storage.AllocContiguous)
	Write(f, sampleGrid(), 0, 0, 64*units.MiB)
	f.Fsync()
	fs.DropCaches()
	start := e.Now()
	if _, _, err := Read(f); err != nil {
		t.Fatal(err)
	}
	elapsed := float64(e.Now() - start)
	// At least the media transfer time of 64 MiB.
	minWant := float64(64*units.MiB) / 130e6
	if elapsed < minWant {
		t.Errorf("cold checkpoint read took %v, want >= %v (payload must be charged)", elapsed, minWant)
	}
}

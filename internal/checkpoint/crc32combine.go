package checkpoint

// CRC-32 combination: given crc(A), crc(B), and len(B), compute
// crc(A||B) without touching the bytes again. This is what lets the
// encoder checksum grid chunks in parallel and still write the exact
// CRC a serial left-to-right pass produces.
//
// The algorithm is zlib's crc32_combine: appending len2 zero bytes to A
// multiplies crc(A) by x^(8·len2) in GF(2)[x]/P(x), and that linear map
// is applied as ~log2(len2) squarings of a 32×32 bit matrix.

// ieeePoly is the reversed (bit-reflected) CRC-32/IEEE polynomial,
// matching hash/crc32's table ordering.
const ieeePoly = 0xedb88320

// gf2MatrixTimes multiplies the 32×32 GF(2) matrix mat by the bit
// vector vec.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square = mat·mat.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// crc32Op is the precomputed linear operator that advances a CRC past
// len2 bytes: op.apply(crc(A)) ^ crc(B) = crc(A||B) when len(B) = len2.
// Building the operator costs ~log2(len2) matrix squarings — the
// expensive part of a combine — so callers merging many same-length
// chunks build it once and apply it per chunk (one 32×32 bit-matrix
// multiply, ~100 ns).
type crc32Op struct {
	mat  [32]uint32
	len2 int64
}

// init computes the operator for appending len2 zero bytes.
func (op *crc32Op) init(len2 int64) {
	op.len2 = len2
	if len2 <= 0 {
		// Identity: appending nothing leaves the CRC unchanged.
		for n := 0; n < 32; n++ {
			op.mat[n] = 1 << n
		}
		return
	}
	// odd  = the operator for one zero bit; even = scratch. Both live on
	// the stack, so building the operator allocates nothing.
	var even, odd [32]uint32
	odd[0] = ieeePoly
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	// Square to the one-zero-byte operator (8 bits = 2³ squarings).
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)
	// Build x^(8·len2) by binary decomposition of len2, squaring as we
	// walk the bits and folding the factor in for each set bit.
	acc := &op.mat
	first := true
	cur, next := &even, &odd
	for {
		gf2MatrixSquare(cur, next)
		if len2&1 != 0 {
			if first {
				*acc = *cur
				first = false
			} else {
				for n := 0; n < 32; n++ {
					acc[n] = gf2MatrixTimes(cur, acc[n])
				}
			}
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		cur, next = next, cur
	}
}

// apply advances crc across the operator's len2 zero bytes.
func (op *crc32Op) apply(crc uint32) uint32 {
	return gf2MatrixTimes(&op.mat, crc)
}

// crc32Combine returns the CRC-32/IEEE of the concatenation A||B given
// crc1 = CRC(A), crc2 = CRC(B), and len2 = len(B) in bytes.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var op crc32Op
	op.init(len2)
	return op.apply(crc1) ^ crc2
}

package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// TestEncodeToSteadyStateAllocs is the allocation-regression guard for
// the checkpoint hot path: an Encoder appending into a recycled dst
// must not allocate once its scratch has grown to the grid size.
func TestEncodeToSteadyStateAllocs(t *testing.T) {
	g := sampleGrid()
	var e Encoder
	buf := e.EncodeTo(nil, g, 0, 0, 4096) // grow scratch and dst once
	avg := testing.AllocsPerRun(100, func() {
		buf = e.EncodeTo(buf[:0], g, 7, 1.25, 4096)
	})
	if avg > 0 {
		t.Errorf("steady-state EncodeTo allocates %.1f objects/event, want 0", avg)
	}
}

// TestEncoderMatchesOneShot pins the reuse refactor to the original
// format: a reused Encoder must emit byte-identical prefixes to the
// one-shot EncodePrefix, including after encoding other events.
func TestEncoderMatchesOneShot(t *testing.T) {
	g := sampleGrid()
	var e Encoder
	e.EncodeTo(nil, g, 1, 0.5, 64) // dirty the scratch
	got := e.EncodeTo(nil, g, 42, 3.5, 4096)
	want := EncodePrefix(g, 42, 3.5, 4096)
	if !bytes.Equal(got, want) {
		t.Error("reused Encoder prefix differs from one-shot EncodePrefix")
	}
}

// TestEncoderWriteRoundTrip checks a reused Encoder's file writes still
// decode, event after event.
func TestEncoderWriteRoundTrip(t *testing.T) {
	_, fs := testFS(t)
	g := sampleGrid()
	var e Encoder
	for i := uint64(0); i < 3; i++ {
		f := fs.Create(fmt.Sprintf("enc-ckpt-%d", i), storage.AllocContiguous)
		e.Write(f, g, i, float64(i)*0.5, 2048)
		h, got, err := Read(f)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if h.Step != i || got.NX != g.NX || got.NY != g.NY {
			t.Errorf("event %d: header step %d grid %dx%d", i, h.Step, got.NX, got.NY)
		}
	}
}

package checkpoint

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/heat"
)

// fuzzSeedPrefix builds the valid prefix the in-code seeds mutate.
func fuzzSeedPrefix() []byte {
	g := heat.NewGrid(4, 4)
	for i := range g.Data {
		g.Data[i] = float64(i) * 0.5
	}
	return EncodePrefix(g, 7, 1.25, 64)
}

// FuzzDecodePrefix asserts the decoder's safety contract on arbitrary
// bytes — the same contract the recovery path depends on when bit-rot
// reaches a delivered checkpoint prefix: DecodePrefix never panics, and
// on any malformed input it returns an ErrCorrupt-wrapped error with a
// nil grid, never a partially-decoded one.
func FuzzDecodePrefix(f *testing.F) {
	valid := fuzzSeedPrefix()
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid)
	f.Add(valid[:HeaderSize-1])
	f.Add(valid[:HeaderSize+5])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[HeaderSize+3] ^= 0x40 // grid bit-rot: CRC must catch it
	f.Add(flipped)
	rotHeader := append([]byte(nil), valid...)
	rotHeader[20] ^= 0x01 // SimTime bit-rot: header is CRC-covered too
	f.Add(rotHeader)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[28:], 1<<20) // implausible NX
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		h, g, err := DecodePrefix(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt error: %v", err)
			}
			if g != nil {
				t.Fatal("grid returned alongside an error")
			}
			return
		}
		if g == nil {
			t.Fatal("nil grid without error")
		}
		if len(g.Data) != int(h.NX)*int(h.NY) {
			t.Fatalf("grid size %d != header %dx%d", len(g.Data), h.NX, h.NY)
		}
	})
}

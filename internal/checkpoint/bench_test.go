package checkpoint

import (
	"testing"

	"repro/internal/heat"
)

// BenchmarkCheckpointEncode is the kernel-scaling benchmark for the
// chunked parallel encode (run by scripts/bench.sh at -cpu 1,2,4):
// header + 256×256 field (512 KiB) through a reused Encoder with
// Workers = GOMAXPROCS. Steady state is 0 allocs/op at any -cpu.
func BenchmarkCheckpointEncode(b *testing.B) {
	g := heat.NewGrid(256, 256)
	for i := range g.Data {
		g.Data[i] = float64(i%97) * 0.25
	}
	var e Encoder
	buf := e.EncodeTo(nil, g, 0, 0, 4096) // grow scratch and dst once
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.EncodeTo(buf[:0], g, uint64(i), float64(i), 4096)
	}
}

package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// digestOf derives a well-formed store key for test bodies.
func digestOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRoundTrip pins the basic contract: Put then Get returns the
// exact bytes, counters move, and the record survives a reopen.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})

	digest := digestOf("job-a")
	body := []byte("== fig4 ==\nreport body\n")
	if err := s.Put(digest, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(digest)
	if !ok || string(got) != string(body) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(digestOf("missing")); ok {
		t.Fatal("Get of an unknown digest hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes != recordSize(len(body)) {
		t.Errorf("Bytes = %d, want %d", st.Bytes, recordSize(len(body)))
	}

	// Warm start: a fresh Open over the same directory serves the
	// same bytes without any Put.
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir})
	got2, ok := s2.Get(digest)
	if !ok || string(got2) != string(body) {
		t.Fatalf("reopened Get = %q, %v", got2, ok)
	}
	if s2.Stats().Corruptions != 0 {
		t.Errorf("clean reopen counted corruptions: %+v", s2.Stats())
	}
}

// TestCorruptionDetected flips one byte of a record on disk: the next
// Get must miss, count a corruption, and delete the bad file instead
// of serving damaged report bytes.
func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	digest := digestOf("job-corrupt")
	if err := s.Put(digest, []byte("pristine report bytes")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	path := filepath.Join(dir, digest+recSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+3] ^= 0x40 // flip a bit mid-body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if body, ok := s.Get(digest); ok {
		t.Fatalf("corrupt record served: %q", body)
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Errorf("stats after corruption = %+v", st)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt record left on disk: %v", err)
	}

	// A re-Put repairs the slot.
	if err := s.Put(digest, []byte("fresh")); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if body, ok := s.Get(digest); !ok || string(body) != "fresh" {
		t.Errorf("repaired Get = %q, %v", body, ok)
	}
}

// TestOpenEvictsCorrupt: corruption present at boot is swept by the
// warm-start scan, not discovered later by an unlucky Get.
func TestOpenEvictsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	good, bad := digestOf("good"), digestOf("bad")
	if err := s.Put(good, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, []byte("break me")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	badPath := filepath.Join(dir, bad+recSuffix)
	raw, _ := os.ReadFile(badPath)
	raw[len(raw)-1] ^= 0xff // corrupt the CRC footer itself
	os.WriteFile(badPath, raw, 0o644)
	// A stray temp file and a garbage-named record are also swept.
	os.WriteFile(filepath.Join(dir, "put-123"+tmpSuffix), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "nothex"+recSuffix), []byte("junk"), 0o644)

	s2 := mustOpen(t, Options{Dir: dir})
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (corrupt evicted)", s2.Len())
	}
	if got := s2.Stats().Corruptions; got != 2 {
		t.Errorf("Corruptions = %d, want 2 (bad CRC + bad name)", got)
	}
	if body, ok := s2.Get(good); !ok || string(body) != "keep me" {
		t.Errorf("good record lost: %q, %v", body, ok)
	}
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			t.Errorf("temp file survived the sweep: %s", de.Name())
		}
	}
}

// TestEvictionByBytes fills past MaxBytes and expects the cold end to
// go first, files included.
func TestEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	body := make([]byte, 1000)
	// Three records fit, the fourth forces one eviction.
	s := mustOpen(t, Options{Dir: dir, MaxBytes: 3 * recordSize(len(body))})

	var digests []string
	for i := 0; i < 4; i++ {
		d := digestOf(fmt.Sprintf("job-%d", i))
		digests = append(digests, d)
		if err := s.Put(d, body); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get(digests[0]); ok {
		t.Error("coldest record survived a byte-budget overflow")
	}
	if _, err := os.Stat(filepath.Join(dir, digests[0]+recSuffix)); !errors.Is(err, os.ErrNotExist) {
		t.Error("evicted record's file survived")
	}
	for _, d := range digests[1:] {
		if _, ok := s.Get(d); !ok {
			t.Errorf("hot record %s evicted", d[:8])
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*recordSize(len(body)) {
		t.Errorf("Bytes = %d over budget", st.Bytes)
	}

	// A Get refreshes LRU position: the loop above left digests[1]
	// coldest, so re-read it, insert one more, and digests[2] (now
	// coldest) must fall out instead.
	if _, ok := s.Get(digests[1]); !ok {
		t.Fatal("touch Get missed")
	}
	if err := s.Put(digestOf("job-5"), body); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digests[1]); !ok {
		t.Error("recently-read record evicted before colder one")
	}
	if s.Contains(digests[2]) {
		t.Error("cold record survived; LRU order not refreshed by Get")
	}
}

// TestEvictionByEntries: the count budget works independently of bytes.
func TestEvictionByEntries(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxEntries: 2})
	for i := 0; i < 5; i++ {
		if err := s.Put(digestOf(fmt.Sprintf("e-%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if got := s.Stats().Evictions; got != 3 {
		t.Errorf("Evictions = %d, want 3", got)
	}
	for _, want := range []string{"e-3", "e-4"} {
		if !s.Contains(digestOf(want)) {
			t.Errorf("hot entry %s missing", want)
		}
	}
}

// TestOversizedBodySkipped: a record that alone exceeds MaxBytes is
// not stored and does not wipe the rest of the cache to make room.
func TestOversizedBodySkipped(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 2048})
	small := digestOf("small")
	if err := s.Put(small, []byte("fits")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestOf("huge"), make([]byte, 4096)); err != nil {
		t.Fatalf("oversized Put errored: %v", err)
	}
	if !s.Contains(small) {
		t.Error("oversized Put evicted the resident record")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (oversized body skipped)", s.Len())
	}
}

// TestWarmStartBudgets: reopening with tighter budgets trims the
// directory down, oldest records first.
func TestWarmStartBudgets(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 4; i++ {
		if err := s.Put(digestOf(fmt.Sprintf("w-%d", i)), []byte("body")); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make the scan's recovered LRU order exact.
		path := filepath.Join(dir, digestOf(fmt.Sprintf("w-%d", i))+recSuffix)
		mt := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(path, mt, mt)
	}
	s.Close()

	s2 := mustOpen(t, Options{Dir: dir, MaxEntries: 2})
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after budgeted reopen", s2.Len())
	}
	for _, want := range []string{"w-2", "w-3"} {
		if !s2.Contains(digestOf(want)) {
			t.Errorf("newest record %s evicted by warm-start trim", want)
		}
	}
	if got := s2.Stats().Evictions; got != 2 {
		t.Errorf("Evictions = %d, want 2", got)
	}
}

// TestClosedStore: Close fences Get and Put without deleting records.
func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	d := digestOf("closing")
	if err := s.Put(d, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, ok := s.Get(d); ok {
		t.Error("Get succeeded after Close")
	}
	if err := s.Put(digestOf("late"), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	s2 := mustOpen(t, Options{Dir: dir})
	if body, ok := s2.Get(d); !ok || string(body) != "durable" {
		t.Errorf("record lost across Close/Open: %q, %v", body, ok)
	}
}

// TestBadDigestRejected: Put validates its key so a malformed digest
// can never alias a path outside the naming scheme.
func TestBadDigestRejected(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	for _, bad := range []string{"", "short", "../../etc/passwd", strings.Repeat("zz", 32)} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", bad)
		}
	}
}

// TestConcurrentAccess hammers Put/Get/Stats from many goroutines
// under -race; correctness here is "no race, no panic, budgets hold".
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := digestOf(fmt.Sprintf("c-%d", (g+i)%16))
				if i%3 == 0 {
					if err := s.Put(d, []byte("concurrent body")); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else {
					s.Get(d)
				}
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n > 8 {
		t.Errorf("Len = %d exceeds MaxEntries", n)
	}
}

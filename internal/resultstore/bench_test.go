package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// benchDigest derives distinct well-formed keys from a counter.
func benchDigest(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("bench-%d", i)))
	return hex.EncodeToString(sum[:])
}

// benchBody approximates one experiment report (~4 KiB of text).
var benchBody = make([]byte, 4096)

// BenchmarkStoreGetHit is the serving-side number scripts/bench.sh
// tracks: the cost of one warm hit — index lookup, record read, CRC
// verification, LRU touch — versus re-running the pipeline (hundreds
// of milliseconds). This is the latency a restarted daemon pays per
// previously-computed report.
func BenchmarkStoreGetHit(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	d := benchDigest(0)
	if err := s.Put(d, benchBody); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(d); !ok {
			b.Fatal("warm record missed")
		}
	}
}

// BenchmarkStorePutCold measures the durable write path — record
// assembly, temp write, fsync, rename, index insert — with budgets
// never exceeded, i.e. the per-completion cost finish() adds.
func BenchmarkStorePutCold(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(benchDigest(i), benchBody); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreEvict measures steady-state eviction throughput: a
// full count-budgeted store where every Put displaces the coldest
// record (write + unlink per op).
func BenchmarkStoreEvict(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), MaxEntries: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 64; i++ {
		if err := s.Put(benchDigest(i), benchBody); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(benchDigest(64+i), benchBody); err != nil {
			b.Fatal(err)
		}
	}
}

// Package resultstore is greenvizd's durable result layer: a
// disk-backed, content-addressed store for finished report bytes,
// keyed by the service's SHA-256 job digest. It exists because the
// in-memory execution cache — the thing that makes N identical
// submits cost one run — used to vanish on every restart, re-burning
// the energy the cache saves (the paper's greenness argument applied
// to the serving layer: fewer redundant executions = lower dynamic
// energy).
//
// The design goals, in order:
//
//   - Durability without torn reads: a record is written to a
//     temporary file in the store directory, fsynced, and renamed
//     into place, so a crash mid-write leaves either the old record
//     or none — never a half-written one that parses.
//   - Integrity over trust: every record carries a CRC-32 (IEEE)
//     footer over its header and body — the same checksum convention
//     internal/checkpoint uses for its on-disk prefix — verified on
//     every read. A corrupt record is deleted and counted, never
//     served; the caller sees a miss and re-runs, which is exactly
//     the fallback the deterministic core makes cheap.
//   - Bounded growth: the index is an LRU with independent byte and
//     entry budgets. Inserting past either budget evicts from the
//     cold end, deleting the backing files.
//   - Warm starts: Open scans the directory, validates every record,
//     rebuilds the LRU in file-modification order (oldest coldest),
//     and applies the budgets — so a restarted daemon serves
//     previously-computed reports byte-identically without
//     re-executing anything.
//
// All methods are safe for concurrent use.
package resultstore

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Magic identifies a result record file.
const Magic = "GVRSLT01"

// recVersion is the on-disk record format version.
const recVersion = 1

// headerSize is the fixed record header: magic, version, the raw
// 32-byte digest the filename claims, and the body length.
const headerSize = 8 + 4 + 32 + 8

// footerSize is the trailing CRC-32.
const footerSize = 4

// recSuffix names record files: <64-hex-digest>.rec.
const recSuffix = ".rec"

// tmpSuffix marks in-flight writes; leftovers are swept on Open.
const tmpSuffix = ".tmp"

// ErrClosed rejects operations after Close.
var ErrClosed = errors.New("resultstore: closed")

// ErrCorrupt reports a failed magic, bounds, digest, or CRC check.
// Callers never see it from Get — corrupt records surface as misses —
// but tests and the scanner use it to classify failures.
var ErrCorrupt = errors.New("resultstore: corrupt record")

// Options configures a Store. The zero value of either budget means
// "unbounded" on that axis.
type Options struct {
	// Dir is the store directory; created if missing.
	Dir string
	// MaxBytes bounds the summed record sizes (headers and footers
	// included, matching bytes-on-disk). 0 = unbounded.
	MaxBytes int64
	// MaxEntries bounds the record count. 0 = unbounded.
	MaxEntries int
}

// Stats is a point-in-time counter snapshot for /metrics.
type Stats struct {
	Entries     int
	Bytes       int64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Corruptions uint64
}

// entry is one LRU index node. The list is intrusive (prev/next
// pointers) rather than container/list so eviction sweeps allocate
// nothing.
type entry struct {
	digest     string
	size       int64 // full record size on disk
	prev, next *entry
}

// Store is the disk-backed LRU. The in-memory index holds only
// digests and sizes; report bytes live on disk and are re-read (and
// re-verified) on every Get.
type Store struct {
	opts Options

	mu      sync.Mutex
	closed  bool
	index   map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	scratch []byte // record assembly buffer, reused across Puts

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	corruptions atomic.Uint64
}

// Open creates or reopens a store rooted at opts.Dir: it sweeps
// leftover temporary files, validates every record (corrupt ones are
// deleted and counted), rebuilds the LRU index in file-modification
// order, and applies the budgets by evicting from the cold end.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("resultstore: Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{opts: opts, index: map[string]*entry{}}

	ents, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	type found struct {
		digest string
		size   int64
		mtime  int64
	}
	var records []found
	for _, de := range ents {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			os.Remove(filepath.Join(opts.Dir, name))
		case strings.HasSuffix(name, recSuffix):
			digest := strings.TrimSuffix(name, recSuffix)
			path := filepath.Join(opts.Dir, name)
			if !validDigest(digest) {
				s.discardCorrupt(path)
				continue
			}
			body, err := readRecord(path, digest)
			if err != nil {
				s.discardCorrupt(path)
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			records = append(records, found{digest, recordSize(len(body)), info.ModTime().UnixNano()})
		}
	}
	// Oldest first, so the insertion loop below leaves the newest
	// record hottest. Name breaks mtime ties deterministically.
	sort.Slice(records, func(i, j int) bool {
		if records[i].mtime != records[j].mtime {
			return records[i].mtime < records[j].mtime
		}
		return records[i].digest < records[j].digest
	})
	s.mu.Lock()
	for _, r := range records {
		s.insertLocked(r.digest, r.size)
	}
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// validDigest accepts exactly the hex SHA-256 form the service emits.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	_, err := hex.DecodeString(d)
	return err == nil
}

// recordSize is the on-disk size of a record holding a body of n bytes.
func recordSize(n int) int64 { return int64(headerSize + n + footerSize) }

func (s *Store) path(digest string) string {
	return filepath.Join(s.opts.Dir, digest+recSuffix)
}

// discardCorrupt deletes an unreadable record and counts it.
func (s *Store) discardCorrupt(path string) {
	os.Remove(path)
	s.corruptions.Add(1)
}

// Get returns the stored report for digest, verifying the record's
// CRC footer on the way in. Corrupt or missing records report a miss
// (corrupt ones are also deleted and counted); hits refresh the
// entry's LRU position.
func (s *Store) Get(digest string) ([]byte, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	e, ok := s.index[digest]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	// Re-reading under the lock keeps Get linearizable with eviction
	// and Put; record bodies are small (report text), so the I/O held
	// under the lock is a few microseconds.
	body, err := readRecord(s.path(digest), digest)
	if err != nil {
		s.removeLocked(e)
		s.mu.Unlock()
		s.discardCorrupt(s.path(digest))
		s.misses.Add(1)
		return nil, false
	}
	s.touchLocked(e)
	s.mu.Unlock()
	s.hits.Add(1)
	return body, true
}

// Contains reports whether digest is indexed, without touching LRU
// order or counters.
func (s *Store) Contains(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[digest]
	return ok
}

// Put stores body under digest: the record is assembled with its CRC
// footer, written to a temp file, fsynced, renamed into place, and
// indexed hottest; anything past the budgets is then evicted coldest
// first. A body too large to ever fit MaxBytes is skipped (nil
// error): storing it would only evict everything else to make room
// for an entry the next Put displaces. Re-putting an existing digest
// refreshes its LRU position and rewrites the record.
func (s *Store) Put(digest string, body []byte) error {
	if !validDigest(digest) {
		return fmt.Errorf("resultstore: bad digest %q", digest)
	}
	size := recordSize(len(body))
	if s.opts.MaxBytes > 0 && size > s.opts.MaxBytes {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := s.assembleLocked(digest, body)
	if err := writeAtomic(s.opts.Dir, s.path(digest), rec); err != nil {
		return err
	}
	if e, ok := s.index[digest]; ok {
		s.bytes += size - e.size
		e.size = size
		s.touchLocked(e)
	} else {
		s.insertLocked(digest, size)
	}
	s.evictLocked()
	return nil
}

// assembleLocked builds the record bytes in the store's reusable
// scratch buffer: header, body, CRC-32 footer over both.
func (s *Store) assembleLocked(digest string, body []byte) []byte {
	n := int(recordSize(len(body)))
	if cap(s.scratch) < n {
		s.scratch = make([]byte, n)
	}
	rec := s.scratch[:n]
	copy(rec[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(rec[8:], recVersion)
	raw, _ := hex.DecodeString(digest) // validated by the caller
	copy(rec[12:44], raw)
	le.PutUint64(rec[44:], uint64(len(body)))
	copy(rec[headerSize:], body)
	le.PutUint32(rec[headerSize+len(body):], crc32.ChecksumIEEE(rec[:headerSize+len(body)]))
	return rec
}

// writeAtomic writes data to path via a temp file in dir: the temp is
// synced before the rename so the record's bytes are on the platter
// (or in the device cache) before the name points at them.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "put-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// readRecord loads and fully validates one record, returning its body.
func readRecord(path, digest string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(b[8:]); v != recVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, v)
	}
	if got := hex.EncodeToString(b[12:44]); got != digest {
		return nil, fmt.Errorf("%w: digest %s under name %s", ErrCorrupt, got, digest)
	}
	bodyLen := le.Uint64(b[44:])
	if recordSize(int(bodyLen)) != int64(len(b)) {
		return nil, fmt.Errorf("%w: body length %d in a %d-byte record", ErrCorrupt, bodyLen, len(b))
	}
	payloadEnd := headerSize + int(bodyLen)
	want := le.Uint32(b[payloadEnd:])
	if got := crc32.ChecksumIEEE(b[:payloadEnd]); got != want {
		return nil, fmt.Errorf("%w: CRC %08x != footer %08x", ErrCorrupt, got, want)
	}
	// Copy the body out so the caller never aliases the read buffer's
	// header/footer regions.
	body := make([]byte, bodyLen)
	copy(body, b[headerSize:payloadEnd])
	return body, nil
}

// insertLocked indexes a digest at the hot end.
func (s *Store) insertLocked(digest string, size int64) {
	e := &entry{digest: digest, size: size}
	s.index[digest] = e
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	s.bytes += size
}

// touchLocked moves an entry to the hot end.
func (s *Store) touchLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	e.next = s.head
	e.prev = nil
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// removeLocked drops an entry from the index without touching disk.
func (s *Store) removeLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.index, e.digest)
	s.bytes -= e.size
}

func (s *Store) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLocked deletes cold records until both budgets hold.
func (s *Store) evictLocked() {
	for s.tail != nil && s.overBudgetLocked() {
		victim := s.tail
		s.removeLocked(victim)
		os.Remove(s.path(victim.digest))
		s.evictions.Add(1)
	}
}

func (s *Store) overBudgetLocked() bool {
	if s.opts.MaxBytes > 0 && s.bytes > s.opts.MaxBytes {
		return true
	}
	if s.opts.MaxEntries > 0 && len(s.index) > s.opts.MaxEntries {
		return true
	}
	return false
}

// Len reports the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes reports the summed on-disk record sizes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:     entries,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Corruptions: s.corruptions.Load(),
	}
}

// Close marks the store closed: Get reports misses-without-counting
// and Put returns ErrClosed. Records already on disk stay for the
// next Open — Close is a fence for shutdown ordering, not a flush
// (every Put is already durable when it returns). Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

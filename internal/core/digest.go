package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// digest.go canonicalizes an AppConfig into a content address. The
// service daemon keys its result cache on this digest (combined with
// the job's own fields — pipeline, case study, seed), so two submits
// describing the same run collapse onto one execution.
//
// The canonical form covers exactly the serializable surface that
// determines a run's output: solver parameters, compute and payload
// sizing, render options, the checkpoint policy and knobs, fault
// injection, and the retry policy. Behavioral extension points that
// cannot be canonicalized — NewSimulator, Store, Telemetry — contribute
// only their presence: callers substituting custom behavior must fold
// its identity into their own cache key (the service includes the app
// name it wired, for example). Telemetry consumers are excluded
// entirely: they are side-effect-free by contract and never change run
// output.

// CanonicalDigest returns a stable hex-encoded SHA-256 fingerprint of
// the configuration. Equal digests mean the configs drive
// byte-identical runs for the same (pipeline, case study, seed) —
// field order is fixed, defaults are applied before hashing, and every
// value is written in an unambiguous textual form.
func (cfg AppConfig) CanonicalDigest() string {
	h := sha256.New()
	writeCanonical(h, cfg)
	return hex.EncodeToString(h.Sum(nil))
}

// WriteCanonical writes the canonical form CanonicalDigest hashes to w.
// Callers composing larger cache keys (the service's job digest) append
// it to their own buffer instead of paying for a nested hex digest.
func (cfg AppConfig) WriteCanonical(w io.Writer) { writeCanonical(w, cfg) }

// writeCanonical writes the canonical one-field-per-line form. It is
// separate from CanonicalDigest so tests can inspect the exact bytes
// being fingerprinted.
func writeCanonical(w io.Writer, cfg AppConfig) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("v1\n")
	// heat.Params is a flat value struct (Sources are values too), so
	// %+v is deterministic. Workers (like KernelWorkers, and
	// Render.Workers below) only partitions the kernels' work — output
	// bytes are identical at any setting — so it is zeroed out of the
	// content address.
	hp := cfg.Heat
	hp.Workers = 0
	p("heat:%+v\n", hp)
	p("substeps:%d real:%d\n", cfg.SubstepsPerIteration, cfg.RealSubsteps)
	p("payload ckpt:%d insitu:%d\n", cfg.CheckpointPayload, cfg.InsituPayload)
	// Render holds a *Colormap; hash the remaining fields explicitly so
	// no pointer address leaks into the digest.
	p("render:%dx%d lo:%g hi:%g iso:%v isocolor:%v colormap:%t\n",
		cfg.Render.Width, cfg.Render.Height, cfg.Render.Lo, cfg.Render.Hi,
		cfg.Render.Isolines, cfg.Render.IsolineColor, cfg.Render.Colormap != nil)
	p("ckptpolicy:%d\n", cfg.CheckpointPolicy)
	p("knobs nosync:%t compress:%t cinema:%d async:%t retain:%t\n",
		cfg.InsituNoSync, cfg.CompressInsitu, cfg.CinemaVariants,
		cfg.AsyncCheckpoint, cfg.RetainFrames)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		p("faults:%+v\n", *cfg.Faults)
	} else {
		p("faults:off\n")
	}
	p("retry:%+v\n", cfg.Retry.WithDefaults())
	// Extension points: presence only (see package comment above).
	p("custom sim:%t store:%t\n", cfg.NewSimulator != nil, cfg.Store != nil)
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sync"
)

// digest.go canonicalizes an AppConfig into a content address. The
// service daemon keys its result cache on this digest (combined with
// the job's own fields — pipeline, case study, seed), so two submits
// describing the same run collapse onto one execution.
//
// The canonical form covers exactly the serializable surface that
// determines a run's output: solver parameters, compute and payload
// sizing, render options, the checkpoint policy and knobs, fault
// injection, and the retry policy. Behavioral extension points that
// cannot be canonicalized — NewSimulator, Store, Telemetry — contribute
// only their presence: callers substituting custom behavior must fold
// its identity into their own cache key (the service includes the app
// name it wired, for example). Telemetry consumers are excluded
// entirely: they are side-effect-free by contract and never change run
// output.

// CanonicalDigest returns a stable hex-encoded SHA-256 fingerprint of
// the configuration. Equal digests mean the configs drive
// byte-identical runs for the same (pipeline, case study, seed) —
// field order is fixed, defaults are applied before hashing, and every
// value is written in an unambiguous textual form.
func (cfg AppConfig) CanonicalDigest() string {
	bp := canonicalBufPool.Get().(*[]byte)
	b := cfg.AppendCanonical((*bp)[:0])
	sum := sha256.Sum256(b)
	*bp = b
	canonicalBufPool.Put(bp)
	return hex.EncodeToString(sum[:])
}

// WriteCanonical writes the canonical form CanonicalDigest hashes to w.
// Callers composing larger cache keys (the service's job digest) append
// it to their own buffer instead of paying for a nested hex digest —
// or call AppendCanonical directly to skip the io.Writer boundary too.
func (cfg AppConfig) WriteCanonical(w io.Writer) {
	bp := canonicalBufPool.Get().(*[]byte)
	b := cfg.AppendCanonical((*bp)[:0])
	w.Write(b)
	*bp = b
	canonicalBufPool.Put(bp)
}

// canonicalBufPool recycles canonical-form scratch buffers: every
// submit, cache probe, and campaign point digests a config.
var canonicalBufPool = sync.Pool{New: func() any { return new([]byte) }}

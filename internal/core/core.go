// Package core implements the paper's primary contribution: the
// instrumented visualization pipelines — post-processing (simulate →
// write → read → visualize), in-situ (visualize alongside the
// simulation), the multi-node in-transit variant, and a hybrid of the
// last two — their case-study configurations, and the greenness
// analysis the paper performs on them: performance, average and peak
// power, energy, energy efficiency, the dynamic-vs-static breakdown of
// the in-situ savings (§V-C), and the data-reorganization advisor of
// §V-D and the Future Work section.
//
// Pipelines are not monolithic functions: each is a declarative spec
// over the shared stage vocabulary of internal/core/stagegraph
// (Simulate, WriteCheckpoint, Barrier, ReadCheckpoint, Render,
// FrameFlush, NetTransfer, Recover, Encode), executed by one engine
// that owns stage timing, trace-phase annotation, and the
// retry/recovery policy uniformly. See specs.go for the four specs
// and stages.go for the vocabulary.
package core

import (
	"fmt"

	"repro/internal/core/stagegraph"
	"repro/internal/fault"
	"repro/internal/field"
	"repro/internal/heat"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/viz"
)

// Pipeline identifies which visualization pipeline a run uses.
type Pipeline int

// The pipelines: the paper's two (Fig. 2), the Future Work in-transit
// variant, and the hybrid shape the stage-graph engine enables
// (in-situ rendering + asynchronous in-transit checkpoint offload, à
// la Catalyst-ADIOS2).
const (
	PostProcessing Pipeline = iota
	InSitu
	InTransit
	Hybrid
)

func (p Pipeline) String() string {
	switch p {
	case InSitu:
		return "in-situ"
	case InTransit:
		return "in-transit"
	case Hybrid:
		return "hybrid"
	default:
		return "post-processing"
	}
}

// Flag returns the pipeline's short CLI name (greenviz -pipeline).
func (p Pipeline) Flag() string {
	switch p {
	case InSitu:
		return "insitu"
	case InTransit:
		return "intransit"
	case Hybrid:
		return "hybrid"
	default:
		return "post"
	}
}

// Pipelines lists every pipeline, in declaration order. The CLI
// derives its -pipeline help and dispatch from this list so new
// pipelines cannot be forgotten.
func Pipelines() []Pipeline {
	return []Pipeline{PostProcessing, InSitu, InTransit, Hybrid}
}

// PipelineByFlag resolves a CLI short name; the error lists the valid
// names in declaration order.
func PipelineByFlag(name string) (Pipeline, error) {
	var flags []string
	for _, p := range Pipelines() {
		if p.Flag() == name {
			return p, nil
		}
		flags = append(flags, p.Flag())
	}
	return 0, fmt.Errorf("core: unknown pipeline %q (valid: %v)", name, flags)
}

// Clustered reports whether the pipeline needs a two-node Cluster
// (RunOnCluster) rather than a single node (Run).
func (p Pipeline) Clustered() bool { return p == InTransit || p == Hybrid }

// Stage names used in phase annotations (Fig. 4's legend).
// StageRecovery covers fault handling beyond plain retries: the
// re-simulation of a checkpoint that could not be recovered from
// storage. StageNet is the network-transfer stage of the in-transit
// and hybrid pipelines.
const (
	StageSimulation = "simulation"
	StageWrite      = "nnwrite"
	StageRead       = "nnread"
	StageViz        = "visualization"
	StageRecovery   = "recovery"
	StageNet        = "nettransfer"
)

// StageNames returns the canonical reporting order of the stage
// phases — consumers printing per-stage times should iterate this
// instead of hard-coding names, so new stages appear automatically.
func StageNames() []string {
	return []string{StageSimulation, StageWrite, StageRead, StageViz, StageNet, StageRecovery}
}

// Simulator is the proxy-application interface the pipelines drive.
// internal/heat (the paper's app) and internal/ocean (a shallow-water
// second proxy) both implement it.
type Simulator interface {
	// Step advances n solver sub-steps of real computation.
	Step(n int)
	// Field returns the scalar field the visualizer renders.
	Field() *field.Grid
	// Steps returns cumulative sub-steps taken.
	Steps() uint64
	// Time returns simulated physical time.
	Time() float64
	// CellUpdates converts n sub-steps into the work unit the platform
	// charges for.
	CellUpdates(n int) uint64
}

// newSimulator builds the configured application (default: the paper's
// heat proxy).
func newSimulator(cfg AppConfig) Simulator {
	if cfg.NewSimulator != nil {
		return cfg.NewSimulator()
	}
	return heat.NewSolver(cfg.Heat)
}

// CaseStudy is one application configuration of §IV-C: fifty timesteps
// with I/O + visualization every IOInterval iterations.
type CaseStudy struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	IOInterval int    `json:"io_interval"`
}

// CaseStudies returns the paper's three configurations: I/O every
// iteration, every other iteration, every eighth iteration.
func CaseStudies() []CaseStudy {
	return []CaseStudy{
		{Name: "Case Study 1", Iterations: 50, IOInterval: 1},
		{Name: "Case Study 2", Iterations: 50, IOInterval: 2},
		{Name: "Case Study 3", Iterations: 50, IOInterval: 8},
	}
}

// AppConfig configures the proxy application and its visualization.
type AppConfig struct {
	// Heat is the solver configuration (grid, sources, boundary) used
	// when NewSimulator is nil.
	Heat heat.Params
	// NewSimulator, when set, supplies a different proxy application
	// (e.g. the ocean shallow-water solver).
	NewSimulator func() Simulator
	// SubstepsPerIteration is the number of solver sub-steps one output
	// iteration represents; it fixes the virtual compute cost of an
	// iteration (2.18 s on the calibrated node).
	SubstepsPerIteration int
	// RealSubsteps is how many of those sub-steps are actually computed
	// per iteration (the rest are charged but not executed). Lower
	// values speed up host execution without changing virtual timing;
	// set equal to SubstepsPerIteration for full fidelity.
	RealSubsteps int
	// CheckpointPayload is the bulk time-history payload written per
	// checkpoint on top of the field snapshot (~188 MiB reproduces the
	// paper's 30 %/27 % write/read shares for case study 1).
	CheckpointPayload units.Bytes
	// InsituPayload is the reduced data product the in-situ pipeline
	// flushes with each frame for provenance.
	InsituPayload units.Bytes
	// Render configures the per-event visualization.
	Render viz.RenderOptions
	// KernelWorkers caps the intra-step data parallelism of every hot
	// kernel (solver sweeps, render fill/contour, checkpoint encode):
	// validate propagates it into Heat.Workers, Render.Workers, and the
	// checkpoint encoder unless those are already set. 0 means
	// GOMAXPROCS. Output bytes are identical at any setting, so it is
	// excluded from CanonicalDigest.
	KernelWorkers int
	// CheckpointPolicy controls on-disk layout of checkpoint files.
	CheckpointPolicy storage.AllocPolicy
	// InsituNoSync skips the per-frame fsync of the in-situ pipeline
	// (ablation knob: live monitoring without durability).
	InsituNoSync bool
	// CompressInsitu DEFLATE-compresses the in-situ reduced data
	// product before flushing it (Wang et al. [22]): the achieved ratio
	// is measured on the real field each event, and the compression CPU
	// time is charged.
	CompressInsitu bool
	// CinemaVariants, when positive, makes the in-situ pipeline render
	// that many extra parameterized views per event (different isoline
	// sets and colormaps) into an image database — the image-based
	// approach of Ahrens et al. [12], which restores post-hoc
	// exploration from an in-situ run.
	CinemaVariants int
	// AsyncCheckpoint makes the post-processing pipeline buffer its
	// checkpoints instead of fsyncing each one: the page cache drains
	// them in the background, overlapped with subsequent simulation
	// iterations, and only the phase barrier syncs. An "alternative
	// optimization" in the spirit of the paper's conclusion.
	AsyncCheckpoint bool
	// RetainFrames keeps encoded PNG frames in the result for
	// inspection; timing is unaffected.
	RetainFrames bool
	// Store, when set, redirects the post-processing pipeline's
	// checkpoints to an alternative backend (e.g. a parallel
	// filesystem); nil uses the node's local filesystem.
	Store CheckpointStore
	// Faults, when set and enabled, injects storage faults for this run:
	// Run builds one deterministic injector from it and installs it on
	// the node's storage stack (and, via FaultSink, on a custom Store).
	// Nil or all-zero rates leave every output byte-identical to a
	// fault-free run.
	Faults *fault.Config
	// Retry bounds the recovery from injected (or real) transient
	// storage errors; the zero value gets sensible defaults.
	Retry RetryPolicy
	// Telemetry, when set, is attached to every run's telemetry bus —
	// after the stock accountants — and receives the full event stream:
	// run and stage boundaries, energy samples, fault injections, and
	// retry attempts (the service daemon streams these as per-stage job
	// events and metrics). Nil — the default — is zero-cost and
	// side-effect-free; like NewSimulator and Store it is excluded from
	// CanonicalDigest.
	Telemetry telemetry.Consumer
}

// RetryPolicy bounds the recovery from recoverable storage errors;
// the stage-graph engine enforces it uniformly across all pipelines.
// The zero value means 3 attempts with a 0.5 s initial backoff.
type RetryPolicy = stagegraph.RetryPolicy

// RecoveryStats accounts the fault handling one run performed; the
// stage-graph engine's ledger accumulates it.
type RecoveryStats = stagegraph.RecoveryStats

// FaultSink is implemented by checkpoint stores that can route an
// injected-fault stream into their own storage stack (the pfs store
// forwards it to its servers). Run installs the run's injector on the
// node directly and on a custom Store through this interface.
type FaultSink interface {
	SetFaults(*fault.Injector)
}

// DefaultAppConfig returns the paper's configuration, calibrated per
// DESIGN.md §3.
func DefaultAppConfig() AppConfig {
	return AppConfig{
		Heat:                 heat.DefaultParams(),
		SubstepsPerIteration: 1536,
		RealSubsteps:         128,
		CheckpointPayload:    188 * units.MiB,
		InsituPayload:        64 * units.MiB,
		Render: viz.RenderOptions{
			Width: 512, Height: 512,
			Isolines: []float64{250, 500, 750},
		},
		CheckpointPolicy: storage.AllocContiguous,
	}
}

func validate(cs CaseStudy, cfg *AppConfig) {
	if cs.Iterations <= 0 || cs.IOInterval <= 0 {
		panic(fmt.Sprintf("core: case study %+v needs positive iterations and interval", cs))
	}
	if cfg.SubstepsPerIteration <= 0 {
		panic("core: SubstepsPerIteration must be positive")
	}
	if cfg.RealSubsteps <= 0 || cfg.RealSubsteps > cfg.SubstepsPerIteration {
		panic("core: RealSubsteps must be in [1, SubstepsPerIteration]")
	}
	if cfg.CheckpointPayload < 0 || cfg.InsituPayload < 0 {
		panic("core: negative payload")
	}
	if cfg.KernelWorkers < 0 {
		panic("core: KernelWorkers must be >= 0")
	}
	if cfg.Heat.Workers == 0 {
		cfg.Heat.Workers = cfg.KernelWorkers
	}
	if cfg.Render.Workers == 0 {
		cfg.Render.Workers = cfg.KernelWorkers
	}
}

// Package core implements the paper's primary contribution: the two
// instrumented visualization pipelines — post-processing (simulate →
// write → read → visualize) and in-situ (visualize alongside the
// simulation) — their case-study configurations, and the greenness
// analysis the paper performs on them: performance, average and peak
// power, energy, energy efficiency, the dynamic-vs-static breakdown of
// the in-situ savings (§V-C), and the data-reorganization advisor of
// §V-D and the Future Work section.
package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/field"
	"repro/internal/heat"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/viz"
)

// Pipeline identifies which visualization pipeline a run uses.
type Pipeline int

// The two pipelines of the paper (Fig. 2).
const (
	PostProcessing Pipeline = iota
	InSitu
)

func (p Pipeline) String() string {
	if p == InSitu {
		return "in-situ"
	}
	return "post-processing"
}

// Stage names used in phase annotations (Fig. 4's legend).
// StageRecovery covers fault handling beyond plain retries: the
// re-simulation of a checkpoint that could not be recovered from
// storage.
const (
	StageSimulation = "simulation"
	StageWrite      = "nnwrite"
	StageRead       = "nnread"
	StageViz        = "visualization"
	StageRecovery   = "recovery"
)

// Simulator is the proxy-application interface the pipelines drive.
// internal/heat (the paper's app) and internal/ocean (a shallow-water
// second proxy) both implement it.
type Simulator interface {
	// Step advances n solver sub-steps of real computation.
	Step(n int)
	// Field returns the scalar field the visualizer renders.
	Field() *field.Grid
	// Steps returns cumulative sub-steps taken.
	Steps() uint64
	// Time returns simulated physical time.
	Time() float64
	// CellUpdates converts n sub-steps into the work unit the platform
	// charges for.
	CellUpdates(n int) uint64
}

// newSimulator builds the configured application (default: the paper's
// heat proxy).
func newSimulator(cfg AppConfig) Simulator {
	if cfg.NewSimulator != nil {
		return cfg.NewSimulator()
	}
	return heat.NewSolver(cfg.Heat)
}

// CaseStudy is one application configuration of §IV-C: fifty timesteps
// with I/O + visualization every IOInterval iterations.
type CaseStudy struct {
	Name       string
	Iterations int
	IOInterval int
}

// CaseStudies returns the paper's three configurations: I/O every
// iteration, every other iteration, every eighth iteration.
func CaseStudies() []CaseStudy {
	return []CaseStudy{
		{Name: "Case Study 1", Iterations: 50, IOInterval: 1},
		{Name: "Case Study 2", Iterations: 50, IOInterval: 2},
		{Name: "Case Study 3", Iterations: 50, IOInterval: 8},
	}
}

// AppConfig configures the proxy application and its visualization.
type AppConfig struct {
	// Heat is the solver configuration (grid, sources, boundary) used
	// when NewSimulator is nil.
	Heat heat.Params
	// NewSimulator, when set, supplies a different proxy application
	// (e.g. the ocean shallow-water solver).
	NewSimulator func() Simulator
	// SubstepsPerIteration is the number of solver sub-steps one output
	// iteration represents; it fixes the virtual compute cost of an
	// iteration (2.18 s on the calibrated node).
	SubstepsPerIteration int
	// RealSubsteps is how many of those sub-steps are actually computed
	// per iteration (the rest are charged but not executed). Lower
	// values speed up host execution without changing virtual timing;
	// set equal to SubstepsPerIteration for full fidelity.
	RealSubsteps int
	// CheckpointPayload is the bulk time-history payload written per
	// checkpoint on top of the field snapshot (~188 MiB reproduces the
	// paper's 30 %/27 % write/read shares for case study 1).
	CheckpointPayload units.Bytes
	// InsituPayload is the reduced data product the in-situ pipeline
	// flushes with each frame for provenance.
	InsituPayload units.Bytes
	// Render configures the per-event visualization.
	Render viz.RenderOptions
	// CheckpointPolicy controls on-disk layout of checkpoint files.
	CheckpointPolicy storage.AllocPolicy
	// InsituNoSync skips the per-frame fsync of the in-situ pipeline
	// (ablation knob: live monitoring without durability).
	InsituNoSync bool
	// CompressInsitu DEFLATE-compresses the in-situ reduced data
	// product before flushing it (Wang et al. [22]): the achieved ratio
	// is measured on the real field each event, and the compression CPU
	// time is charged.
	CompressInsitu bool
	// CinemaVariants, when positive, makes the in-situ pipeline render
	// that many extra parameterized views per event (different isoline
	// sets and colormaps) into an image database — the image-based
	// approach of Ahrens et al. [12], which restores post-hoc
	// exploration from an in-situ run.
	CinemaVariants int
	// AsyncCheckpoint makes the post-processing pipeline buffer its
	// checkpoints instead of fsyncing each one: the page cache drains
	// them in the background, overlapped with subsequent simulation
	// iterations, and only the phase barrier syncs. An "alternative
	// optimization" in the spirit of the paper's conclusion.
	AsyncCheckpoint bool
	// RetainFrames keeps encoded PNG frames in the result for
	// inspection; timing is unaffected.
	RetainFrames bool
	// Store, when set, redirects the post-processing pipeline's
	// checkpoints to an alternative backend (e.g. a parallel
	// filesystem); nil uses the node's local filesystem.
	Store CheckpointStore
	// Faults, when set and enabled, injects storage faults for this run:
	// Run builds one deterministic injector from it and installs it on
	// the node's storage stack (and, via FaultSink, on a custom Store).
	// Nil or all-zero rates leave every output byte-identical to a
	// fault-free run.
	Faults *fault.Config
	// Retry bounds the recovery from injected (or real) transient
	// storage errors; the zero value gets sensible defaults.
	Retry RetryPolicy
}

// RetryPolicy bounds how a run responds to recoverable storage errors:
// up to MaxAttempts tries per operation, with an exponential
// simulated-time backoff starting at Backoff between attempts, all
// charged to the run's time and energy ledgers. The zero value means
// 3 attempts with a 0.5 s initial backoff.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     units.Seconds
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 0.5
	}
	return p
}

// FaultSink is implemented by checkpoint stores that can route an
// injected-fault stream into their own storage stack (the pfs store
// forwards it to its servers). Run installs the run's injector on the
// node directly and on a custom Store through this interface.
type FaultSink interface {
	SetFaults(*fault.Injector)
}

// RecoveryStats accounts the fault handling one run performed.
type RecoveryStats struct {
	// WriteRetries / ReadRetries count repeated attempts after a
	// transient failure (the initial attempt is not counted).
	WriteRetries, ReadRetries uint64
	// LostWrites counts writes abandoned after the retry budget: a lost
	// checkpoint is recovered later by re-simulation; a lost frame or
	// reduced data product is simply absent from disk.
	LostWrites uint64
	// Resimulations counts checkpoints recomputed from initial
	// conditions because storage could not produce an intact copy.
	Resimulations uint64
	// BackoffTime is the simulated time spent waiting between retries.
	BackoffTime units.Seconds
}

// Total returns the number of recovery actions taken.
func (s RecoveryStats) Total() uint64 {
	return s.WriteRetries + s.ReadRetries + s.LostWrites + s.Resimulations
}

// CheckpointStore is where the post-processing pipeline keeps its
// checkpoints: the node-local filesystem by default, or a remote
// parallel filesystem (internal/pfs) in the Future Work experiments.
// All calls block (advance virtual time) including durability.
type CheckpointStore interface {
	// WriteCheckpoint durably stores one checkpoint, replacing any
	// earlier file of the same name (so a retry starts clean). A
	// transient error leaves no usable checkpoint behind.
	WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) error
	// ReadCheckpoint fetches a checkpoint back, cold, returning the
	// field and the solver step/time recorded at capture.
	ReadCheckpoint(name string) (*field.Grid, uint64, float64, error)
	// Barrier separates the write and read phases (sync + drop caches
	// or the distributed equivalent).
	Barrier()
}

// localStore is the default CheckpointStore: the node's own disk
// through its page cache and filesystem, fsync per checkpoint. It
// carries a checkpoint.Encoder so the ~128 KiB encode buffer is reused
// across the run's events; a store therefore serves one run at a time,
// like the node it wraps.
type localStore struct {
	n      *node.Node
	policy storage.AllocPolicy
	async  bool
	enc    *checkpoint.Encoder
}

func (s localStore) WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) error {
	// Replace any partial file a failed earlier attempt left behind.
	s.n.FS.Delete(name)
	f := s.n.FS.Create(name, s.policy)
	var err error
	s.n.WithIO(func() {
		if err = s.enc.Write(f, g, step, simTime, payload); err != nil {
			return
		}
		if !s.async {
			f.Fsync()
		}
	})
	return err
}

func (s localStore) ReadCheckpoint(name string) (*field.Grid, uint64, float64, error) {
	f := s.n.FS.Open(name)
	if f == nil {
		return nil, 0, 0, fmt.Errorf("core: checkpoint %q not found", name)
	}
	var g *field.Grid
	var h checkpoint.Header
	var err error
	s.n.WithIO(func() {
		h, g, err = checkpoint.Read(f)
	})
	if err != nil {
		// Never hand out fields of a partially-decoded header.
		return nil, 0, 0, err
	}
	return g, h.Step, h.SimTime, nil
}

func (s localStore) Barrier() {
	s.n.WithIO(func() {
		s.n.FS.Sync()
		s.n.FS.DropCaches()
	})
}

// DefaultAppConfig returns the paper's configuration, calibrated per
// DESIGN.md §3.
func DefaultAppConfig() AppConfig {
	return AppConfig{
		Heat:                 heat.DefaultParams(),
		SubstepsPerIteration: 1536,
		RealSubsteps:         128,
		CheckpointPayload:    188 * units.MiB,
		InsituPayload:        64 * units.MiB,
		Render: viz.RenderOptions{
			Width: 512, Height: 512,
			Isolines: []float64{250, 500, 750},
		},
		CheckpointPolicy: storage.AllocContiguous,
	}
}

// RunResult captures everything the paper measures for one run.
type RunResult struct {
	Pipeline Pipeline
	Case     CaseStudy

	// Profile holds the instrument series (system, rapl.PKG,
	// rapl.DRAM) and stage phase annotations.
	Profile *trace.Profile

	// ExecTime is the wall (virtual) duration of the run (Fig. 7).
	ExecTime units.Seconds
	// Energy is the exact full-system energy from the power bus
	// (Fig. 10); MeasuredEnergy integrates the 1 Hz meter.
	Energy         units.Joules
	MeasuredEnergy units.Joules
	// AvgPower and PeakPower come from the meter series (Figs. 8-9).
	AvgPower, PeakPower units.Watts

	// StageTime sums phase durations per stage (Fig. 4).
	StageTime map[string]units.Seconds

	// Frames is the number of visualization events performed;
	// FrameChecksum fingerprints the rendered PNGs so tests can verify
	// the two pipelines produce identical imagery.
	Frames        int
	FrameChecksum uint64
	// FramePNGs holds the encoded frames when RetainFrames is set.
	FramePNGs [][]byte

	// BytesToDisk is total media traffic (for attribution).
	BytesWritten, BytesRead units.Bytes

	// CompressionRatio is the last measured payload compression ratio
	// when CompressInsitu is enabled (0 otherwise).
	CompressionRatio float64
	// CinemaFrames counts extra image-database views rendered when
	// CinemaVariants is set (not part of FrameChecksum).
	CinemaFrames int

	// Faults counts the injected storage faults this run absorbed (all
	// zero when injection is off); Recovery accounts the retries,
	// re-simulations, and backoff spent absorbing them.
	Faults   fault.Stats
	Recovery RecoveryStats
}

// EnergyEfficiency returns frames per kilojoule — the work/energy
// metric behind Fig. 11.
func (r *RunResult) EnergyEfficiency() float64 {
	if r.Energy <= 0 {
		return 0
	}
	return float64(r.Frames) / r.Energy.KJ()
}

// runner carries shared state for one pipeline execution.
type runner struct {
	n      *node.Node
	cfg    AppConfig
	cs     CaseStudy
	solver Simulator
	inst   *node.Instruments
	res    *RunResult
	hash   interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
	frame int

	faults *fault.Injector
	retry  RetryPolicy
}

// Run executes one pipeline on a node and returns its measurements.
// The node should be freshly created (or at least disk-quiet); a run
// leaves its checkpoint and frame files on the node's filesystem.
func Run(n *node.Node, p Pipeline, cs CaseStudy, cfg AppConfig) *RunResult {
	validate(cs, &cfg)
	r := &runner{
		n:      n,
		cfg:    cfg,
		cs:     cs,
		solver: newSimulator(cfg),
		hash:   fnv.New64a(),
		retry:  cfg.Retry.withDefaults(),
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		r.faults = fault.New(*cfg.Faults)
		n.InstallFaults(r.faults)
		if sink, ok := cfg.Store.(FaultSink); ok {
			sink.SetFaults(r.faults)
		}
	}
	r.inst = n.NewInstruments(fmt.Sprintf("%s/%s", p, cs.Name))
	r.res = &RunResult{
		Pipeline:  p,
		Case:      cs,
		Profile:   r.inst.Profile,
		StageTime: map[string]units.Seconds{},
	}

	startT := n.Now()
	startE := n.SystemEnergy()
	d0 := n.DiskStats()
	r.inst.Start()

	switch p {
	case PostProcessing:
		r.runPostProcessing()
	case InSitu:
		r.runInSitu()
	default:
		panic(fmt.Sprintf("core: unknown pipeline %d", p))
	}

	n.WaitDiskIdle()
	r.inst.Stop()

	res := r.res
	res.ExecTime = n.Now() - startT
	res.Energy = n.SystemEnergy() - startE
	sys := r.inst.Profile.SeriesByName("system")
	res.MeasuredEnergy = units.Joules(sys.Integral())
	st := sys.Summarize()
	res.AvgPower = units.Watts(st.Mean)
	res.PeakPower = units.Watts(st.Max)
	res.FrameChecksum = r.hash.Sum64()
	d1 := n.DiskStats()
	res.BytesWritten = d1.BytesWritten - d0.BytesWritten
	res.BytesRead = d1.BytesRead - d0.BytesRead
	res.Faults = r.faults.Stats()
	return res
}

func validate(cs CaseStudy, cfg *AppConfig) {
	if cs.Iterations <= 0 || cs.IOInterval <= 0 {
		panic(fmt.Sprintf("core: case study %+v needs positive iterations and interval", cs))
	}
	if cfg.SubstepsPerIteration <= 0 {
		panic("core: SubstepsPerIteration must be positive")
	}
	if cfg.RealSubsteps <= 0 || cfg.RealSubsteps > cfg.SubstepsPerIteration {
		panic("core: RealSubsteps must be in [1, SubstepsPerIteration]")
	}
	if cfg.CheckpointPayload < 0 || cfg.InsituPayload < 0 {
		panic("core: negative payload")
	}
}

// stage runs fn and annotates its interval with the stage name.
func (r *runner) stage(name string, fn func()) {
	start := r.n.Now()
	fn()
	end := r.n.Now()
	r.res.Profile.MarkPhase(name, start, end)
	r.res.StageTime[name] += end - start
}

// simulateIteration advances one output iteration: RealSubsteps of real
// physics, the full SubstepsPerIteration of charged compute.
func (r *runner) simulateIteration() {
	r.stage(StageSimulation, func() {
		r.solver.Step(r.cfg.RealSubsteps)
		r.n.Compute(r.solver.CellUpdates(r.cfg.SubstepsPerIteration))
	})
}

// renderAnnotatedFrame renders a field and stamps the frame footer
// (capture step/time) and colorbar — the frame a scientist monitors.
// Both pipelines and the in-transit staging path use it, so identical
// solver states yield byte-identical frames.
func renderAnnotatedFrame(cfg AppConfig, g *field.Grid, step uint64, simTime float64) ([]byte, viz.RenderStats) {
	img, stats := viz.Render(g, cfg.Render)
	cm := cfg.Render.Colormap
	if cm == nil {
		cm = viz.Inferno()
	}
	lo, hi := cfg.Render.Lo, cfg.Render.Hi
	if lo == hi {
		lo, hi = g.MinMax()
	}
	viz.Annotate(img, viz.AnnotateOptions{
		Step: step, SimTime: simTime, Colormap: cm, Lo: lo, Hi: hi,
	})
	png, err := viz.EncodePNG(img)
	viz.ReleaseFrame(img)
	if err != nil {
		panic(fmt.Sprintf("core: PNG encode failed: %v", err))
	}
	return png, stats
}

// renderFrame renders + annotates, charges the render cost, and
// returns the encoded PNG.
func (r *runner) renderFrame(g *field.Grid, step uint64, simTime float64) []byte {
	png, stats := renderAnnotatedFrame(r.cfg, g, step, simTime)
	r.n.Render(stats.Pixels, stats.ContourCells, units.Bytes(len(png)))
	r.hash.Write(png) //nolint:errcheck // fnv cannot fail
	r.res.Frames++
	if r.cfg.RetainFrames {
		r.res.FramePNGs = append(r.res.FramePNGs, png)
	}
	return png
}

// backoff charges the exponential simulated-time wait before retry
// attempt number attempt (1-based): Backoff, 2*Backoff, 4*Backoff, ...
// The node sits idle — the time and its static energy land on the
// run's ledgers like any other stall.
func (r *runner) backoff(attempt int) {
	d := r.retry.Backoff * units.Seconds(int64(1)<<uint(attempt-1))
	r.n.Idle(d)
	r.res.Recovery.BackoffTime += d
}

// writeRetry runs write under the retry budget and reports whether it
// ever succeeded; a final failure counts as a lost write.
func (r *runner) writeRetry(write func() error) bool {
	err := write()
	for attempt := 1; err != nil && attempt < r.retry.MaxAttempts; attempt++ {
		r.backoff(attempt)
		r.res.Recovery.WriteRetries++
		err = write()
	}
	if err != nil {
		r.res.Recovery.LostWrites++
		return false
	}
	return true
}

// readRetry runs read under the retry budget and reports whether it
// ever succeeded. Both transient errors and corruption (a tripped CRC)
// are retried: bit-rot hits the delivered copy, not the media, so a
// re-read can come back intact.
func (r *runner) readRetry(read func() error) bool {
	err := read()
	for attempt := 1; err != nil && attempt < r.retry.MaxAttempts; attempt++ {
		r.backoff(attempt)
		r.res.Recovery.ReadRetries++
		err = read()
	}
	return err == nil
}

// writeFrameFile stores an encoded frame on the filesystem. A write
// that exhausts the retry budget leaves the frame absent from disk (it
// still counts toward Frames and the checksum: the render happened).
func (r *runner) writeFrameFile(png []byte) *storage.File {
	f := r.n.FS.Create(fmt.Sprintf("frame-%04d.png", r.frame), storage.AllocContiguous)
	r.frame++
	r.writeRetry(func() error { return f.WriteAt(png, 0) })
	return f
}

// ckptRef tracks one checkpoint through the pipeline: its store name,
// the output iteration it captured, and whether the write phase gave
// up on it (so the read phase goes straight to re-simulation).
type ckptRef struct {
	name string
	iter int
	lost bool
}

// runPostProcessing is the traditional pipeline: phase one simulates
// and writes checkpoints (fsync each for durability); a sync +
// drop_caches barrier separates the phases (§IV-C); phase two reads
// every checkpoint back cold and visualizes it.
//
// Storage errors are recoverable, never fatal: writes and reads retry
// under the run's RetryPolicy, and a checkpoint storage cannot produce
// intact is re-simulated from the initial conditions — the solver is
// deterministic, so the recomputed field (and thus the rendered frame)
// is identical to the lost one. Every recovery path is charged to the
// virtual time and energy ledgers.
func (r *runner) runPostProcessing() {
	n, cfg, cs := r.n, r.cfg, r.cs
	store := cfg.Store
	if store == nil {
		store = localStore{n: n, policy: cfg.CheckpointPolicy, async: cfg.AsyncCheckpoint, enc: &checkpoint.Encoder{}}
	}
	var ckpts []ckptRef
	for i := 1; i <= cs.Iterations; i++ {
		r.simulateIteration()
		if i%cs.IOInterval != 0 {
			continue
		}
		c := ckptRef{name: fmt.Sprintf("ckpt-%04d", i), iter: i}
		r.stage(StageWrite, func() {
			c.lost = !r.writeRetry(func() error {
				return store.WriteCheckpoint(c.name, r.solver.Field(), r.solver.Steps(), r.solver.Time(), cfg.CheckpointPayload)
			})
		})
		ckpts = append(ckpts, c)
	}

	// Phase barrier: sync and drop caches so reads hit the media.
	store.Barrier()

	for _, c := range ckpts {
		var g *field.Grid
		var step uint64
		var simTime float64
		ok := false
		if !c.lost {
			r.stage(StageRead, func() {
				ok = r.readRetry(func() error {
					var err error
					g, step, simTime, err = store.ReadCheckpoint(c.name)
					return err
				})
			})
		}
		if !ok {
			// The checkpoint is gone (write gave up) or unreadable after
			// the retry budget: recompute its field from the initial
			// conditions.
			r.stage(StageRecovery, func() {
				g, step, simTime = r.resimulate(c.iter)
				r.res.Recovery.Resimulations++
			})
		}
		r.stage(StageViz, func() {
			png := r.renderFrame(g, step, simTime)
			n.WithIO(func() { r.writeFrameFile(png) })
		})
	}
	n.WithIO(func() { n.FS.Sync() })
}

// resimulate recomputes the field of output iteration iter by stepping
// a fresh solver from the initial conditions, charging the same compute
// cost per iteration as the original pass. Determinism makes the
// recovered field bit-identical to the one the lost checkpoint held.
func (r *runner) resimulate(iter int) (*field.Grid, uint64, float64) {
	solver := newSimulator(r.cfg)
	for i := 1; i <= iter; i++ {
		solver.Step(r.cfg.RealSubsteps)
		r.n.Compute(solver.CellUpdates(r.cfg.SubstepsPerIteration))
	}
	return solver.Field(), solver.Steps(), solver.Time()
}

// runInSitu is the coupled pipeline: each I/O event renders directly
// from the live field and synchronously flushes the frame plus a
// reduced data product so the scientist can monitor the run.
func (r *runner) runInSitu() {
	n, cfg, cs := r.n, r.cfg, r.cs
	for i := 1; i <= cs.Iterations; i++ {
		r.simulateIteration()
		if i%cs.IOInterval != 0 {
			continue
		}
		r.stage(StageViz, func() {
			png := r.renderFrame(r.solver.Field(), r.solver.Steps(), r.solver.Time())
			r.renderCinemaVariants(i)
			payload := cfg.InsituPayload
			if cfg.CompressInsitu {
				// Measure the real compression ratio on this event's
				// field and charge the compression pass.
				ratio, err := viz.CompressionRatio(r.solver.Field())
				if err != nil {
					panic(fmt.Sprintf("core: compression failed: %v", err))
				}
				if ratio > 1 {
					payload = units.Bytes(float64(payload) / ratio)
				}
				n.Compress(cfg.InsituPayload)
				r.res.CompressionRatio = ratio
			}
			n.WithIO(func() {
				f := r.writeFrameFile(png)
				reduced := n.FS.Create(fmt.Sprintf("reduced-%04d", i), storage.AllocContiguous)
				r.writeRetry(func() error { return reduced.AppendSparse(payload) })
				if !cfg.InsituNoSync {
					f.Fsync()
					reduced.Fsync()
				}
			})
		})
	}
	n.WithIO(func() { n.FS.Sync() })
}

// renderCinemaVariants renders the image-database views of one event
// (Ahrens et al. [12]): real renders under varied visualization
// parameters, stored alongside the primary frame. They restore post-hoc
// exploration without shipping the raw data.
func (r *runner) renderCinemaVariants(event int) {
	cfg := r.cfg
	if cfg.CinemaVariants <= 0 {
		return
	}
	g := r.solver.Field()
	lo, hi := g.MinMax()
	if lo == hi {
		hi = lo + 1
	}
	maps := []*viz.Colormap{viz.Inferno(), viz.CoolWarm(), viz.Grayscale()}
	for k := 0; k < cfg.CinemaVariants; k++ {
		opts := cfg.Render
		opts.Colormap = maps[k%len(maps)]
		// Sweep the isoline level across the field range per variant.
		level := lo + (hi-lo)*float64(k+1)/float64(cfg.CinemaVariants+1)
		opts.Isolines = []float64{level}
		img, stats := viz.Render(g, opts)
		viz.Annotate(img, viz.AnnotateOptions{
			Step: r.solver.Steps(), SimTime: r.solver.Time(),
			Colormap: opts.Colormap, Lo: lo, Hi: hi,
		})
		png, err := viz.EncodePNG(img)
		viz.ReleaseFrame(img)
		if err != nil {
			panic(fmt.Sprintf("core: cinema encode failed: %v", err))
		}
		r.n.Render(stats.Pixels, stats.ContourCells, units.Bytes(len(png)))
		r.res.CinemaFrames++
		r.n.WithIO(func() {
			f := r.n.FS.Create(fmt.Sprintf("cinema-%04d-%02d.png", event, k), storage.AllocContiguous)
			r.writeRetry(func() error { return f.WriteAt(png, 0) })
		})
	}
}

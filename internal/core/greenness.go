package core

import (
	"repro/internal/trace"
	"repro/internal/units"
)

// greenness.go is the single implementation of the paper's greenness
// metrics. Every pipeline — single-node or clustered — derives its
// average/peak power, measured energy, and energy efficiency from
// these helpers; no pipeline computes them privately.

// summarizeMeter extracts the meter-derived metrics from a run's
// instrument profile: the integrated 1 Hz meter energy (Fig. 10's
// measured companion) and the average and peak wall power (Figs. 8-9).
func summarizeMeter(p *trace.Profile) (measured units.Joules, avg, peak units.Watts) {
	sys := p.SeriesByName("system")
	st := sys.Summarize()
	return units.Joules(sys.Integral()), units.Watts(st.Mean), units.Watts(st.Max)
}

// efficiency returns work units per kilojoule (Fig. 11's metric);
// non-positive energy yields 0.
func efficiency(work int, e units.Joules) float64 {
	if e <= 0 {
		return 0
	}
	return float64(work) / e.KJ()
}

// pctLower returns how much lower b is than a, in percent.
func pctLower(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

package core

import (
	"math"

	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/wattsup"
)

// greenness.go is the single implementation of the paper's greenness
// metrics. Every pipeline — single-node or clustered — derives its
// average/peak power, measured energy, and energy efficiency from
// these helpers; no pipeline computes them privately.

// meterSummary folds the wall meter's telemetry samples into the
// meter-derived metrics as they stream: the integrated 1 Hz meter
// energy (Fig. 10's measured companion) and the average and peak wall
// power (Figs. 8-9). The folds replicate trace.Series.Integral and
// Summarize term for term — left-rectangle integration where a
// non-finite sample's interval is a gap (prev still advances), and
// moments over finite samples only — so a run summarized incrementally
// is bit-identical to one summarized from the recorded series.
type meterSummary struct {
	integral   float64
	prevT      units.Seconds
	prevV      float64
	prev       bool
	prevFinite bool

	n   int
	sum float64
	max float64
}

func meterFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Consume implements telemetry.Consumer.
func (m *meterSummary) Consume(ev telemetry.Event) {
	if ev.Kind != telemetry.KindEnergySample || ev.Source != wattsup.SeriesName {
		return
	}
	if m.prev && m.prevFinite {
		m.integral += m.prevV * float64(ev.At-m.prevT)
	}
	m.prevT, m.prevV, m.prev = ev.At, ev.Value, true
	m.prevFinite = meterFinite(ev.Value)
	if m.prevFinite {
		m.n++
		m.sum += ev.Value
		if m.n == 1 || ev.Value > m.max {
			m.max = ev.Value
		}
	}
}

// summary returns the accumulated metrics (zeros for a sample-less or
// all-non-finite run, like an empty series summary).
func (m *meterSummary) summary() (measured units.Joules, avg, peak units.Watts) {
	if m.n == 0 {
		return units.Joules(m.integral), 0, 0
	}
	return units.Joules(m.integral), units.Watts(m.sum / float64(m.n)), units.Watts(m.max)
}

// efficiency returns work units per kilojoule (Fig. 11's metric);
// non-positive energy yields 0.
func efficiency(work int, e units.Joules) float64 {
	if e <= 0 {
		return 0
	}
	return float64(work) / e.KJ()
}

// pctLower returns how much lower b is than a, in percent.
func pctLower(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

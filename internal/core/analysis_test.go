package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestCharacterizeStagesTable2(t *testing.T) {
	n := testNode(11)
	sc := CharacterizeStages(n, testConfig(), 8)

	// Table II: nnread 115.1 W / nnwrite 114.8 W total; ~10 W dynamic.
	if sc.WriteAvgTotal < 111 || sc.WriteAvgTotal > 119 {
		t.Errorf("nnwrite avg total = %v, want ~114.8", sc.WriteAvgTotal)
	}
	if sc.ReadAvgTotal < 111 || sc.ReadAvgTotal > 120 {
		t.Errorf("nnread avg total = %v, want ~115.1", sc.ReadAvgTotal)
	}
	if sc.WriteAvgDynamic < 5.5 || sc.WriteAvgDynamic > 14 {
		t.Errorf("nnwrite dynamic = %v, want ~10", sc.WriteAvgDynamic)
	}
	if sc.ReadAvgDynamic < 7 || sc.ReadAvgDynamic > 15 {
		t.Errorf("nnread dynamic = %v, want ~10.3", sc.ReadAvgDynamic)
	}
	if math.Abs(float64(sc.IdlePower)-104.7) > 1.0 {
		t.Errorf("idle baseline = %v, want ~104.7", sc.IdlePower)
	}
	if sc.AvgIODynamic <= 0 {
		t.Error("AvgIODynamic not positive")
	}
	// Fig. 6's profile must contain both stage phases with samples.
	for _, stage := range []string{StageWrite, StageRead} {
		if sc.Profile.PhaseTime(stage) <= 0 {
			t.Errorf("profile lacks %s phase", stage)
		}
	}
}

func TestAdvisorRandomWorkloadPrefersReorganization(t *testing.T) {
	// §V-D: for the fio-style random workload, reorganization saves
	// nearly as much as in-situ while keeping exploratory analysis.
	p := node.SandyBridge()
	w := WorkloadSpec{
		Name:           "random-io-app",
		ReadBytes:      4 * units.GiB,
		WriteBytes:     4 * units.GiB,
		OpSize:         16 * units.KiB,
		RandomFraction: 1,
		SpanBytes:      4 * units.GiB,
	}
	a := Advise(p, w)
	if a.Recommended != a.Reorganized.Strategy {
		t.Errorf("recommendation = %q (%s), want reorganization", a.Recommended, a.Reason)
	}
	if !a.Reorganized.Exploratory || a.InSitu.Exploratory {
		t.Error("exploratory flags wrong")
	}
	// Magnitudes: as-is ~242 KJ (238.6 + 3.6 in Table III);
	// reorganized ~7.3 KJ (4.2 + 3.1).
	if kj := a.AsIs.SystemEnergy.KJ(); kj < 200 || kj > 280 {
		t.Errorf("as-is energy = %.1f KJ, want ~242", kj)
	}
	if kj := a.Reorganized.SystemEnergy.KJ(); kj < 5 || kj > 12 {
		t.Errorf("reorganized energy = %.1f KJ, want ~7.3", kj)
	}
	if a.Reorganized.SystemEnergy >= a.AsIs.SystemEnergy/10 {
		t.Error("reorganization saved less than 10x")
	}
}

func TestAdvisorSequentialWorkloadPrefersInSitu(t *testing.T) {
	p := node.SandyBridge()
	w := WorkloadSpec{
		Name:           "sequential-app",
		ReadBytes:      4 * units.GiB,
		WriteBytes:     4 * units.GiB,
		OpSize:         128 * units.KiB,
		RandomFraction: 0,
		SpanBytes:      4 * units.GiB,
	}
	a := Advise(p, w)
	if a.Recommended != a.InSitu.Strategy {
		t.Errorf("recommendation = %q, want in-situ for already-sequential I/O", a.Recommended)
	}
	// Sequential as-is should sit near Table III's 4.2 + 3.1 KJ.
	if kj := a.AsIs.SystemEnergy.KJ(); kj < 5 || kj > 12 {
		t.Errorf("sequential as-is energy = %.1f KJ, want ~7.3", kj)
	}
}

func TestAdvisorNoIOWorkload(t *testing.T) {
	p := node.SandyBridge()
	a := Advise(p, WorkloadSpec{Name: "cpu-only", OpSize: units.KiB, SpanBytes: units.MiB})
	if !strings.Contains(a.Reason, "no significant I/O") {
		t.Errorf("reason = %q", a.Reason)
	}
}

func TestAdvisorValidation(t *testing.T) {
	p := node.SandyBridge()
	defer func() {
		if recover() == nil {
			t.Error("bad random fraction did not panic")
		}
	}()
	Advise(p, WorkloadSpec{OpSize: 1, SpanBytes: 1, RandomFraction: 2})
}

func TestPredictRandomVsSequentialReads(t *testing.T) {
	p := node.SandyBridge()
	w := WorkloadSpec{ReadBytes: 4 * units.GiB, OpSize: 16 * units.KiB, RandomFraction: 1, SpanBytes: 4 * units.GiB}
	rand := Predict(p, w, "rand", 1, true)
	seq := Predict(p, w, "seq", 0, true)
	// Table III: 2230 s vs 35.9 s.
	if rand.Time < 1800 || rand.Time > 2600 {
		t.Errorf("random-read prediction = %v, want ~2230 s", rand.Time)
	}
	if seq.Time < 30 || seq.Time > 45 {
		t.Errorf("sequential-read prediction = %v, want ~36 s", seq.Time)
	}
	if rand.DiskDynamic <= 0 || seq.DiskDynamic <= 0 {
		t.Error("disk dynamic energies must be positive")
	}
	// Random reads are seek-bound: disk dynamic power is low (~2.5 W),
	// so dynamic energy per byte is higher but average power lower.
	randAvgDyn := float64(rand.DiskDynamic) / float64(rand.Time)
	seqAvgDyn := float64(seq.DiskDynamic) / float64(seq.Time)
	if randAvgDyn >= seqAvgDyn {
		t.Errorf("random avg disk dyn %v >= sequential %v", randAvgDyn, seqAvgDyn)
	}
}

func TestPostProcessingShowsDistinctPowerPhases(t *testing.T) {
	// §V-A: the post-processing profile has two major phases
	// (simulate+write ~143 W, read+visualize ~121 W); the in-situ
	// profile has none.
	c := comparisons(t)[0]
	postSys := c.Post.Profile.SeriesByName("system")
	phases := trace.DetectPhases(postSys, 8, 4, 20)
	if len(phases) < 2 {
		t.Fatalf("post-processing profile yielded %d phases, want >= 2: %v", len(phases), phases)
	}
	// The detected extremes should bracket the paper's two phase levels.
	lo, hi := phases[0].Mean, phases[0].Mean
	for _, p := range phases {
		if p.Mean < lo {
			lo = p.Mean
		}
		if p.Mean > hi {
			hi = p.Mean
		}
	}
	// Phase 1 interleaves simulation (143 W) and write (115 W) events at
	// ~2 s cadence, so its 1 Hz mean is the ~129 W mixture; phase 2
	// (read ~115 W + viz ~121 W) averages ~117 W. See EXPERIMENTS.md.
	if hi < 125 || hi > 148 {
		t.Errorf("high phase mean = %.1f, want ~129 (mixture) to ~143", hi)
	}
	if lo < 110 || lo > 125 {
		t.Errorf("low phase mean = %.1f, want ~115-121", lo)
	}
	if hi-lo < 8 {
		t.Errorf("phases not distinct: %.1f vs %.1f", hi, lo)
	}

	insSys := c.InSitu.Profile.SeriesByName("system")
	insPhases := trace.DetectPhases(insSys, 8, 4, 20)
	if len(insPhases) >= len(phases) {
		t.Errorf("in-situ has %d phases vs post's %d; paper: no distinct phases in-situ",
			len(insPhases), len(phases))
	}
}

func TestObserveWorkloadClosesTheAdvisorLoop(t *testing.T) {
	// The Future Work runtime, end to end: run the post-processing
	// pipeline, observe its disk traffic, derive a WorkloadSpec, and ask
	// the advisor. Checkpoint traffic is streaming, so it should report
	// a low random fraction and prefer in-situ over reorganization.
	n := testNode(61)
	cs := CaseStudy{Name: "obs", Iterations: 8, IOInterval: 1}
	Run(n, PostProcessing, cs, testConfig())
	st := n.DiskStats()
	w := ObserveWorkload("proxy-app", st)

	if w.ReadBytes == 0 || w.WriteBytes == 0 {
		t.Fatalf("observation empty: %+v", w)
	}
	if w.RandomFraction > 0.3 {
		t.Errorf("streaming checkpoints observed as %.0f%% random", w.RandomFraction*100)
	}
	if w.SpanBytes <= 0 || w.OpSize <= 0 {
		t.Errorf("degenerate observation: %+v", w)
	}
	a := Advise(n.Profile, w)
	if a.Recommended != a.InSitu.Strategy {
		t.Errorf("advisor on sequential traffic recommended %q, want in-situ", a.Recommended)
	}
}

func TestObserveWorkloadDetectsRandomTraffic(t *testing.T) {
	// Drive a random-read pattern directly and confirm the observation
	// classifies it as random and the advisor flips to reorganization.
	n := testNode(62)
	f := n.FS.Create("rnd", 0)
	n.WithIO(func() {
		f.AppendSparse(256 * units.MiB)
		f.Fsync()
		n.FS.DropCaches()
	})
	base := n.DiskStats()
	rng := n.Rand()
	n.WithIO(func() {
		for i := 0; i < 400; i++ {
			off := units.Bytes(rng.Int64n(int64(256*units.MiB - 16*units.KiB)))
			f.ReadSparseAt(off, 16*units.KiB)
		}
	})
	st := n.DiskStats()
	st.BytesRead -= base.BytesRead
	st.BytesWritten -= base.BytesWritten
	st.SeqBytes -= base.SeqBytes
	st.RandBytes -= base.RandBytes
	st.Reads -= base.Reads
	st.Writes -= base.Writes
	w := ObserveWorkload("random-reader", st)
	if w.RandomFraction < 0.7 {
		t.Errorf("random reads observed as only %.0f%% random", w.RandomFraction*100)
	}
	a := Advise(n.Profile, w)
	if a.Recommended != a.Reorganized.Strategy {
		t.Errorf("advisor on random traffic recommended %q, want reorganization", a.Recommended)
	}
}

func TestBreakdownZeroTotal(t *testing.T) {
	b := SavingsBreakdown{}
	if b.StaticSharePct() != 0 || b.DynamicSharePct() != 0 {
		t.Error("zero-total breakdown shares not zero")
	}
}

func TestRunResultEfficiency(t *testing.T) {
	r := &RunResult{Frames: 50, Energy: 25000}
	if got := r.EnergyEfficiency(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("efficiency = %v, want 2 frames/KJ", got)
	}
	zero := &RunResult{Frames: 10}
	if zero.EnergyEfficiency() != 0 {
		t.Error("zero-energy efficiency not zero")
	}
}

package core

import (
	"testing"

	"repro/internal/netio"
	"repro/internal/node"
)

func testCluster(seed uint64) *Cluster {
	return NewCluster(node.SandyBridge(), netio.TenGigE(), seed)
}

func TestInTransitRendersEveryEvent(t *testing.T) {
	cs := CaseStudies()[0]
	r := RunInTransit(testCluster(21), cs, testConfig())
	if r.Frames != 50 {
		t.Errorf("frames = %d, want 50", r.Frames)
	}
	if r.BytesSent < 50*TotalSizeForGrid(testConfig()) {
		t.Errorf("BytesSent = %v, too low", r.BytesSent)
	}
	if r.StagingBusy <= 0 {
		t.Error("staging node never rendered")
	}
}

func TestInTransitFramesMatchInSitu(t *testing.T) {
	cs := CaseStudies()[1]
	it := RunInTransit(testCluster(22), cs, testConfig())
	ins := Run(testNode(23), InSitu, cs, testConfig())
	if it.FrameChecksum != ins.FrameChecksum {
		t.Error("in-transit and in-situ rendered different frames")
	}
}

func TestInTransitFasterThanInSituButCostsSecondNode(t *testing.T) {
	cs := CaseStudies()[0]
	it := RunInTransit(testCluster(24), cs, testConfig())
	ins := Run(testNode(25), InSitu, cs, testConfig())
	post := Run(testNode(26), PostProcessing, cs, testConfig())

	// The simulation node offloads rendering and only pays the network
	// transfer, so the in-transit makespan beats in-situ.
	if it.ExecTime >= ins.ExecTime {
		t.Errorf("in-transit makespan %v not below in-situ %v", it.ExecTime, ins.ExecTime)
	}
	// And far beats post-processing.
	if float64(it.ExecTime) > 0.6*float64(post.ExecTime) {
		t.Errorf("in-transit %v not well below post-processing %v", it.ExecTime, post.ExecTime)
	}
	// But the second node's static floor makes the *cluster* energy
	// worse than in-situ — the deployment caveat Gamell et al. observe.
	if it.Energy <= ins.Energy {
		t.Errorf("two-node total %v unexpectedly below one-node in-situ %v", it.Energy, ins.Energy)
	}
	// Charged to the simulation node alone, in-transit is the greenest.
	if it.SimEnergy >= ins.Energy {
		t.Errorf("sim-node energy %v not below in-situ %v", it.SimEnergy, ins.Energy)
	}
}

func TestInTransitEnergyComponentsSum(t *testing.T) {
	cs := CaseStudies()[2]
	r := RunInTransit(testCluster(27), cs, testConfig())
	if r.Energy != r.SimEnergy+r.StagingEnergy {
		t.Error("energy components do not sum")
	}
	if r.SimEnergy <= 0 || r.StagingEnergy <= 0 {
		t.Error("non-positive node energies")
	}
}

func TestInTransitStagingOverlapsSimulation(t *testing.T) {
	// Staging renders while the simulation continues: the makespan must
	// be much closer to the simulation time than to the serialized sum.
	cs := CaseStudies()[0]
	cfg := testConfig()
	r := RunInTransit(testCluster(28), cs, cfg)
	simOnly := 2.18 * 50 // calibrated seconds of pure simulation
	serialized := simOnly + float64(r.StagingBusy)
	overlapSlack := float64(r.ExecTime) - simOnly
	if overlapSlack > 0.5*(serialized-simOnly) {
		t.Errorf("makespan %v suggests little overlap (sim %v, staging busy %v)",
			r.ExecTime, simOnly, r.StagingBusy)
	}
}

func TestClusterDeterminism(t *testing.T) {
	cs := CaseStudy{Name: "tiny", Iterations: 3, IOInterval: 1}
	a := RunInTransit(testCluster(31), cs, testConfig())
	b := RunInTransit(testCluster(31), cs, testConfig())
	if a.ExecTime != b.ExecTime || a.Energy != b.Energy {
		t.Error("same-seed clusters diverged")
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// resultjson.go is the one RunResult JSON serializer: the CLI's
// -format json mode and the service daemon's report endpoint both call
// EncodeJSON, so a run reported over HTTP is byte-identical to the
// same run reported at the terminal. The encoding is deterministic —
// struct fields in declaration order, map keys sorted by
// encoding/json — which lets the service content-address report
// bodies and tests diff them byte for byte.

// MarshalJSON encodes a pipeline as its canonical name ("in-situ",
// "post-processing", ...), not its internal enum value.
func (p Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts either the canonical name or the CLI flag
// form ("insitu", "post", ...).
func (p *Pipeline) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, cand := range Pipelines() {
		if cand.String() == s || cand.Flag() == s {
			*p = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown pipeline %q", s)
}

// EncodeJSON writes the result as deterministic, indented JSON with a
// trailing newline. Identical results produce identical bytes.
func (r *RunResult) EncodeJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/units"
)

// StageCharacterization is the isolated nnread/nnwrite study behind
// Fig. 6 and Table II: each stage is run alone for a window while the
// meters record, and its average total and dynamic (above idle) power
// are extracted.
type StageCharacterization struct {
	// Profile holds the "nnwrite"/"nnread" phases and the instrument
	// series for Fig. 6.
	Profile *trace.Profile

	IdlePower units.Watts

	WriteAvgTotal   units.Watts
	WriteAvgDynamic units.Watts
	ReadAvgTotal    units.Watts
	ReadAvgDynamic  units.Watts

	// AvgIODynamic averages the two stages' dynamic power — the input
	// to the paper's savings-breakdown method.
	AvgIODynamic units.Watts
}

// CharacterizeStages measures the I/O stages on a fresh node. events
// controls how many checkpoint write/read events each stage performs
// (the paper profiled ~50 s windows; 12 events ≈ 24 s each).
func CharacterizeStages(n *node.Node, cfg AppConfig, events int) StageCharacterization {
	if events <= 0 {
		panic("core: CharacterizeStages needs at least one event")
	}
	solver := newWarmSolver(cfg)
	inst := n.NewInstruments("stage-characterization", nil)
	out := StageCharacterization{Profile: inst.Profile}

	// Idle baseline first: a quiet window with only the instruments on.
	inst.Start()
	idleStart := n.Now()
	n.Idle(10)
	inst.Profile.MarkPhase("idle", idleStart, n.Now())

	// nnwrite: repeatedly create + write + fsync checkpoints, one
	// encoder (and so one encode buffer) for the whole stage.
	writeStart := n.Now()
	var names []string
	var enc checkpoint.Encoder
	for i := 0; i < events; i++ {
		name := fmt.Sprintf("stage-ckpt-%04d", i)
		names = append(names, name)
		f := n.FS.Create(name, cfg.CheckpointPolicy)
		n.WithIO(func() {
			// The characterization node carries no fault injector, so the
			// write cannot fail transiently.
			if err := enc.Write(f, solver.Field(), solver.Steps(), solver.Time(), cfg.CheckpointPayload); err != nil {
				panic(fmt.Sprintf("core: stage checkpoint write failed: %v", err))
			}
			f.Fsync()
		})
	}
	n.WaitDiskIdle()
	inst.Profile.MarkPhase(StageWrite, writeStart, n.Now())

	// Barrier, then nnread: cold reads of the same checkpoints.
	n.WithIO(func() {
		n.FS.Sync()
		n.FS.DropCaches()
	})
	readStart := n.Now()
	for _, name := range names {
		f := n.FS.Open(name)
		n.WithIO(func() {
			if _, _, err := checkpoint.Read(f); err != nil {
				panic(fmt.Sprintf("core: stage checkpoint corrupt: %v", err))
			}
		})
	}
	n.WaitDiskIdle()
	inst.Profile.MarkPhase(StageRead, readStart, n.Now())
	inst.Stop()

	out.IdlePower = units.Watts(inst.Profile.PhaseMean("system", "idle"))
	out.WriteAvgTotal = units.Watts(inst.Profile.PhaseMean("system", StageWrite))
	out.ReadAvgTotal = units.Watts(inst.Profile.PhaseMean("system", StageRead))
	out.WriteAvgDynamic = out.WriteAvgTotal - out.IdlePower
	out.ReadAvgDynamic = out.ReadAvgTotal - out.IdlePower
	out.AvgIODynamic = (out.WriteAvgDynamic + out.ReadAvgDynamic) / 2
	return out
}

// newWarmSolver builds the configured application and advances it a
// little so the checkpoints carry a non-trivial field.
func newWarmSolver(cfg AppConfig) Simulator {
	s := newSimulator(cfg)
	s.Step(cfg.RealSubsteps)
	return s
}

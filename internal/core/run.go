package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core/stagegraph"
	"repro/internal/fault"
	"repro/internal/field"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/viz"
)

// runner carries shared state for one pipeline execution. The
// cross-cutting concerns the old monolithic runners hand-rolled —
// stage timing, phase annotation, retry/backoff — live in the
// stagegraph engine now; the runner holds only the application state
// the stage bodies close over.
type runner struct {
	n      *node.Node
	cfg    AppConfig
	cs     CaseStudy
	solver Simulator
	res    *RunResult
	hash   interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
	frame int

	faults *fault.Injector
}

// Run executes one single-node pipeline on a node and returns its
// measurements. The node should be freshly created (or at least
// disk-quiet); a run leaves its checkpoint and frame files on the
// node's filesystem. Clustered pipelines (in-transit, hybrid) need a
// Cluster — use RunOnCluster.
func Run(n *node.Node, p Pipeline, cs CaseStudy, cfg AppConfig) *RunResult {
	if p.Clustered() {
		panic(fmt.Sprintf("core: pipeline %s runs on a cluster; use RunOnCluster", p))
	}
	validate(cs, &cfg)
	r := &runner{
		n:      n,
		cfg:    cfg,
		cs:     cs,
		solver: newSimulator(cfg),
		hash:   fnv.New64a(),
	}
	// One telemetry bus carries the whole run: the engine's stage
	// boundaries and retries, the fault injector's firings, and the
	// instrument samples all fan out to the accountants attached below.
	tel := telemetry.NewBus()
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		r.faults = fault.New(*cfg.Faults)
		r.faults.AttachTelemetry(tel)
		n.InstallFaults(r.faults)
		if sink, ok := cfg.Store.(FaultSink); ok {
			sink.SetFaults(r.faults)
		}
	}
	// NewInstruments attaches the trace recorder (series + phases).
	inst := n.NewInstruments(fmt.Sprintf("%s/%s", p, cs.Name), tel)
	ledger := stagegraph.NewLedger()
	tel.Attach(ledger)
	meter := &meterSummary{}
	tel.Attach(meter)
	// The caller's consumer (progress streaming, cancellation) attaches
	// last so the stock accountants have already seen each event when it
	// fires — and a cancellation panic never leaves them half-updated.
	if cfg.Telemetry != nil {
		tel.Attach(cfg.Telemetry)
	}
	r.res = &RunResult{
		Pipeline:    p,
		Case:        cs,
		Profile:     inst.Profile,
		StageTime:   ledger.StageTime,
		StageEnergy: ledger.StageEnergy,
	}
	eng := stagegraph.New(n, tel, cfg.Retry)

	startT := n.Now()
	startE := n.SystemEnergy()
	d0 := n.DiskStats()
	inst.Start()

	if err := eng.Run(r.spec(p)); err != nil {
		panic(fmt.Sprintf("core: invalid %s spec: %v", p, err))
	}

	n.WaitDiskIdle()
	inst.Stop()

	res := r.res
	res.ExecTime = n.Now() - startT
	res.Energy = n.SystemEnergy() - startE
	res.MeasuredEnergy, res.AvgPower, res.PeakPower = meter.summary()
	res.FrameChecksum = r.hash.Sum64()
	d1 := n.DiskStats()
	res.BytesWritten = d1.BytesWritten - d0.BytesWritten
	res.BytesRead = d1.BytesRead - d0.BytesRead
	res.Faults = r.faults.Stats()
	res.Recovery = ledger.Recovery
	return res
}

// simulateIteration advances one output iteration: RealSubsteps of real
// physics, the full SubstepsPerIteration of charged compute. sim is the
// spec's Simulate stage (bound to the node, or to a cluster's sim
// node).
func (r *runner) simulateIteration(x *stagegraph.Exec, sim stagegraph.Stage) {
	x.Do(sim, func() {
		r.solver.Step(r.cfg.RealSubsteps)
		r.n.Compute(r.solver.CellUpdates(r.cfg.SubstepsPerIteration))
	})
}

// renderAnnotatedFrame renders a field and stamps the frame footer
// (capture step/time) and colorbar — the frame a scientist monitors.
// Every pipeline and the in-transit staging path use it, so identical
// solver states yield byte-identical frames.
func renderAnnotatedFrame(cfg AppConfig, g *field.Grid, step uint64, simTime float64) ([]byte, viz.RenderStats) {
	img, stats := viz.Render(g, cfg.Render)
	cm := cfg.Render.Colormap
	if cm == nil {
		cm = viz.Inferno()
	}
	lo, hi := cfg.Render.Lo, cfg.Render.Hi
	if lo == hi {
		lo, hi = g.MinMax()
	}
	viz.Annotate(img, viz.AnnotateOptions{
		Step: step, SimTime: simTime, Colormap: cm, Lo: lo, Hi: hi,
	})
	png, err := viz.EncodePNG(img)
	viz.ReleaseFrame(img)
	if err != nil {
		panic(fmt.Sprintf("core: PNG encode failed: %v", err))
	}
	return png, stats
}

// renderFrame renders + annotates, charges the render cost, and
// returns the encoded PNG.
func (r *runner) renderFrame(g *field.Grid, step uint64, simTime float64) []byte {
	png, stats := renderAnnotatedFrame(r.cfg, g, step, simTime)
	r.n.Render(stats.Pixels, stats.ContourCells, units.Bytes(len(png)))
	r.hash.Write(png) //nolint:errcheck // fnv cannot fail
	r.res.Frames++
	if r.cfg.RetainFrames {
		r.res.FramePNGs = append(r.res.FramePNGs, png)
	}
	return png
}

// writeFrameFile stores an encoded frame on the filesystem. A write
// that exhausts the retry budget leaves the frame absent from disk (it
// still counts toward Frames and the checksum: the render happened).
func (r *runner) writeFrameFile(x *stagegraph.Exec, png []byte) *storage.File {
	f := r.n.FS.Create(fmt.Sprintf("frame-%04d.png", r.frame), storage.AllocContiguous)
	r.frame++
	x.WriteRetry(func() error { return f.WriteAt(png, 0) })
	return f
}

// resimulate recomputes the field of output iteration iter by stepping
// a fresh solver from the initial conditions, charging the same compute
// cost per iteration as the original pass. Determinism makes the
// recovered field bit-identical to the one the lost checkpoint held.
func (r *runner) resimulate(iter int) (*field.Grid, uint64, float64) {
	solver := newSimulator(r.cfg)
	for i := 1; i <= iter; i++ {
		solver.Step(r.cfg.RealSubsteps)
		r.n.Compute(solver.CellUpdates(r.cfg.SubstepsPerIteration))
	}
	return solver.Field(), solver.Steps(), solver.Time()
}

// renderCinemaVariants renders the image-database views of one event
// (Ahrens et al. [12]): real renders under varied visualization
// parameters, stored alongside the primary frame. They restore post-hoc
// exploration without shipping the raw data. variants is the spec's
// (untimed) variant-render stage; it nests inside the visualization
// stage like the renders themselves do.
func (r *runner) renderCinemaVariants(x *stagegraph.Exec, variants stagegraph.Stage, event int) {
	cfg := r.cfg
	if cfg.CinemaVariants <= 0 {
		return
	}
	x.Do(variants, func() {
		g := r.solver.Field()
		lo, hi := g.MinMax()
		if lo == hi {
			hi = lo + 1
		}
		maps := []*viz.Colormap{viz.Inferno(), viz.CoolWarm(), viz.Grayscale()}
		for k := 0; k < cfg.CinemaVariants; k++ {
			opts := cfg.Render
			opts.Colormap = maps[k%len(maps)]
			// Sweep the isoline level across the field range per variant.
			level := lo + (hi-lo)*float64(k+1)/float64(cfg.CinemaVariants+1)
			opts.Isolines = []float64{level}
			img, stats := viz.Render(g, opts)
			viz.Annotate(img, viz.AnnotateOptions{
				Step: r.solver.Steps(), SimTime: r.solver.Time(),
				Colormap: opts.Colormap, Lo: lo, Hi: hi,
			})
			png, err := viz.EncodePNG(img)
			viz.ReleaseFrame(img)
			if err != nil {
				panic(fmt.Sprintf("core: cinema encode failed: %v", err))
			}
			r.n.Render(stats.Pixels, stats.ContourCells, units.Bytes(len(png)))
			r.res.CinemaFrames++
			r.n.WithIO(func() {
				f := r.n.FS.Create(fmt.Sprintf("cinema-%04d-%02d.png", event, k), storage.AllocContiguous)
				x.WriteRetry(func() error { return f.WriteAt(png, 0) })
			})
		}
	})
}

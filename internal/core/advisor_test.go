package core

import (
	"strings"
	"testing"

	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/units"
)

// advisorWorkload returns a baseline post-processing-like workload:
// a few GiB each way in 16 KiB requests over a 4 GiB span.
func advisorWorkload(randomFrac float64) WorkloadSpec {
	return WorkloadSpec{
		Name:           "test",
		ReadBytes:      2 * units.GiB,
		WriteBytes:     2 * units.GiB,
		OpSize:         16 * units.KiB,
		RandomFraction: randomFrac,
		SpanBytes:      4 * units.GiB,
	}
}

func TestAdviseRandomHeavyRecommendsReorganization(t *testing.T) {
	a := Advise(node.SandyBridge(), advisorWorkload(0.9))
	if a.Recommended != a.Reorganized.Strategy {
		t.Fatalf("random-heavy workload recommended %q, want %q (reason %q)",
			a.Recommended, a.Reorganized.Strategy, a.Reason)
	}
	if !a.Reorganized.Exploratory {
		t.Error("reorganized strategy should preserve exploratory analysis")
	}
	if a.Reorganized.SystemEnergy >= a.AsIs.SystemEnergy {
		t.Errorf("reorganization should save energy: %v >= %v",
			a.Reorganized.SystemEnergy, a.AsIs.SystemEnergy)
	}
	if !strings.Contains(a.Reason, "reorganization") {
		t.Errorf("reason %q does not mention reorganization", a.Reason)
	}
}

func TestAdviseSequentialRecommendsInSitu(t *testing.T) {
	a := Advise(node.SandyBridge(), advisorWorkload(0))
	if a.Recommended != a.InSitu.Strategy {
		t.Fatalf("sequential workload recommended %q, want %q (reason %q)",
			a.Recommended, a.InSitu.Strategy, a.Reason)
	}
	// With nothing to reorganize, both post-processing predictions
	// coincide and only eliminating the round trip helps.
	if a.Reorganized.SystemEnergy != a.AsIs.SystemEnergy {
		t.Errorf("sequential workload: reorganized %v != as-is %v",
			a.Reorganized.SystemEnergy, a.AsIs.SystemEnergy)
	}
	if a.InSitu.Exploratory {
		t.Error("in-situ strategy should not claim exploratory analysis")
	}
}

func TestAdviseNoIORecommendsAsIs(t *testing.T) {
	w := advisorWorkload(0.5)
	w.ReadBytes, w.WriteBytes = 0, 0
	a := Advise(node.SandyBridge(), w)
	if a.Recommended != a.AsIs.Strategy {
		t.Fatalf("I/O-free workload recommended %q, want %q", a.Recommended, a.AsIs.Strategy)
	}
	if a.AsIs.Time != 0 || a.AsIs.SystemEnergy != 0 {
		t.Errorf("I/O-free prediction should be zero, got %v / %v", a.AsIs.Time, a.AsIs.SystemEnergy)
	}
}

func TestPredictRandomnessPenalizesReadsOnly(t *testing.T) {
	p := node.SandyBridge()
	w := advisorWorkload(0)

	seq := Predict(p, w, "seq", 0, true)
	rnd := Predict(p, w, "rnd", 1, true)
	if rnd.Time <= seq.Time {
		t.Errorf("fully random prediction %v s not slower than sequential %v s", rnd.Time, seq.Time)
	}
	if rnd.SystemEnergy <= seq.SystemEnergy {
		t.Errorf("fully random prediction %v not costlier than sequential %v",
			rnd.SystemEnergy, seq.SystemEnergy)
	}

	// Writes drain through the elevator near-sequentially, so a
	// write-only workload pays no positioning penalty.
	wo := w
	wo.ReadBytes = 0
	woSeq := Predict(p, wo, "seq", 0, true)
	woRnd := Predict(p, wo, "rnd", 1, true)
	if woRnd.Time != woSeq.Time {
		t.Errorf("write-only random %v s != sequential %v s", woRnd.Time, woSeq.Time)
	}
}

func TestPredictDiskDynamicWithinSystemEnergy(t *testing.T) {
	p := node.SandyBridge()
	pr := Predict(p, advisorWorkload(0.5), "as-is", 0.5, true)
	if pr.DiskDynamic <= 0 || pr.DiskDynamic >= pr.SystemEnergy {
		t.Errorf("disk dynamic %v should be positive and below system %v",
			pr.DiskDynamic, pr.SystemEnergy)
	}
}

func TestObserveWorkload(t *testing.T) {
	st := storage.DiskStats{
		Reads:        100,
		Writes:       28,
		BytesRead:    100 * units.MiB,
		BytesWritten: 28 * units.MiB,
		SeqBytes:     96 * units.MiB,
		RandBytes:    32 * units.MiB,
		MinOffset:    1 * units.GiB,
		MaxOffset:    3 * units.GiB,
	}
	w := ObserveWorkload("observed", st)
	if w.Name != "observed" {
		t.Errorf("name %q", w.Name)
	}
	if w.ReadBytes != st.BytesRead || w.WriteBytes != st.BytesWritten {
		t.Errorf("bytes %v/%v, want %v/%v", w.ReadBytes, w.WriteBytes, st.BytesRead, st.BytesWritten)
	}
	if want := units.Bytes(1 * units.MiB); w.OpSize != want {
		t.Errorf("op size %v, want %v", w.OpSize, want)
	}
	if want := 0.25; w.RandomFraction != want {
		t.Errorf("random fraction %v, want %v", w.RandomFraction, want)
	}
	if want := units.Bytes(2 * units.GiB); w.SpanBytes != want {
		t.Errorf("span %v, want %v", w.SpanBytes, want)
	}

	// Idle stats degrade to safe positive defaults, never zeros that
	// would panic Advise.
	empty := ObserveWorkload("idle", storage.DiskStats{})
	if empty.OpSize <= 0 || empty.SpanBytes <= 0 {
		t.Errorf("idle observation yields op size %v span %v", empty.OpSize, empty.SpanBytes)
	}
	Advise(node.SandyBridge(), empty) // must not panic
}

func TestAdvisePanicsOnInvalidWorkload(t *testing.T) {
	expectPanic := func(name string, w WorkloadSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Advise did not panic", name)
			}
		}()
		Advise(node.SandyBridge(), w)
	}

	w := advisorWorkload(0)
	w.OpSize = 0
	expectPanic("zero op size", w)

	w = advisorWorkload(0)
	w.SpanBytes = 0
	expectPanic("zero span", w)

	w = advisorWorkload(1.5)
	expectPanic("random fraction above 1", w)

	w = advisorWorkload(-0.1)
	expectPanic("negative random fraction", w)
}

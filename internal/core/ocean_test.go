package core

import (
	"testing"

	"repro/internal/ocean"
	"repro/internal/viz"
)

// oceanConfig plugs the shallow-water proxy into the pipelines.
func oceanConfig() AppConfig {
	cfg := testConfig()
	cfg.NewSimulator = func() Simulator {
		p := ocean.DefaultParams()
		return ocean.NewSolver(p)
	}
	// Height anomalies are signed: use the diverging map, auto-scaled.
	cfg.Render = viz.RenderOptions{
		Width: 512, Height: 512,
		Colormap: viz.CoolWarm(),
		Isolines: []float64{0},
	}
	return cfg
}

func TestOceanRunsThroughBothPipelines(t *testing.T) {
	cs := CaseStudy{Name: "ocean", Iterations: 10, IOInterval: 1}
	post := Run(testNode(41), PostProcessing, cs, oceanConfig())
	ins := Run(testNode(42), InSitu, cs, oceanConfig())
	c := Compare(post, ins)
	if post.FrameChecksum != ins.FrameChecksum {
		t.Error("ocean pipelines rendered different frames")
	}
	if s := c.EnergySavingsPct(); s <= 10 {
		t.Errorf("ocean in-situ savings = %.1f%%, want the same qualitative win", s)
	}
	if post.Frames != 10 {
		t.Errorf("frames = %d", post.Frames)
	}
}

func TestOceanFramesDifferFromHeatFrames(t *testing.T) {
	// Sanity: the second proxy produces genuinely different imagery.
	cs := CaseStudy{Name: "x", Iterations: 2, IOInterval: 1}
	h := Run(testNode(43), InSitu, cs, testConfig())
	o := Run(testNode(44), InSitu, cs, oceanConfig())
	if h.FrameChecksum == o.FrameChecksum {
		t.Error("heat and ocean produced identical frames")
	}
}

func TestOceanInTransit(t *testing.T) {
	cs := CaseStudy{Name: "ocean-it", Iterations: 5, IOInterval: 1}
	r := RunInTransit(testCluster(45), cs, oceanConfig())
	if r.Frames != 5 || r.StagingBusy <= 0 {
		t.Errorf("ocean in-transit: frames=%d busy=%v", r.Frames, r.StagingBusy)
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

func TestCanonicalDigestStable(t *testing.T) {
	a := DefaultAppConfig()
	b := DefaultAppConfig()
	if a.CanonicalDigest() != b.CanonicalDigest() {
		t.Fatal("equal configs produced different digests")
	}
	if got := a.CanonicalDigest(); len(got) != 64 {
		t.Fatalf("digest %q is not hex sha256", got)
	}
}

func TestCanonicalDigestSensitivity(t *testing.T) {
	base := DefaultAppConfig()
	mutate := map[string]func(*AppConfig){
		"real substeps": func(c *AppConfig) { c.RealSubsteps = 32 },
		"payload":       func(c *AppConfig) { c.CheckpointPayload++ },
		"render size":   func(c *AppConfig) { c.Render.Width = 256 },
		"isolines":      func(c *AppConfig) { c.Render.Isolines = []float64{1} },
		"nosync":        func(c *AppConfig) { c.InsituNoSync = true },
		"compress":      func(c *AppConfig) { c.CompressInsitu = true },
		"cinema":        func(c *AppConfig) { c.CinemaVariants = 2 },
		"faults":        func(c *AppConfig) { c.Faults = &fault.Config{ReadErr: 0.1} },
		"retry":         func(c *AppConfig) { c.Retry.MaxAttempts = 5 },
		"heat grid":     func(c *AppConfig) { c.Heat.NX = 64 },
		"custom sim":    func(c *AppConfig) { c.NewSimulator = func() Simulator { return nil } },
	}
	want := base.CanonicalDigest()
	for name, mut := range mutate {
		c := DefaultAppConfig()
		mut(&c)
		if c.CanonicalDigest() == want {
			t.Errorf("mutation %q did not change the digest", name)
		}
	}
}

// TestCanonicalDigestIgnoresTelemetry pins the exclusion contract:
// attaching a telemetry consumer (or disabled faults) must not move a
// config to a different cache slot — the run output is identical.
func TestCanonicalDigestIgnoresTelemetry(t *testing.T) {
	base := DefaultAppConfig()
	withTel := DefaultAppConfig()
	withTel.Telemetry = telemetry.ConsumerFunc(func(telemetry.Event) {})
	if base.CanonicalDigest() != withTel.CanonicalDigest() {
		t.Error("telemetry consumer changed the digest; it must be excluded")
	}
	withOff := DefaultAppConfig()
	withOff.Faults = &fault.Config{} // all-zero rates: injection off
	if base.CanonicalDigest() != withOff.CanonicalDigest() {
		t.Error("disabled fault config changed the digest")
	}
}

// TestCanonicalFormNoAddresses guards against pointer addresses
// leaking into the canonical form (they would break determinism across
// processes).
func TestCanonicalFormNoAddresses(t *testing.T) {
	cfg := DefaultAppConfig()
	cfg.Render.Colormap = nil // exercised via the %t presence bit
	var sb strings.Builder
	cfg.WriteCanonical(&sb)
	if strings.Contains(sb.String(), "0x") {
		t.Fatalf("canonical form contains a pointer address:\n%s", sb.String())
	}
}

package core

import (
	"bytes"
	"testing"
)

// TestRunKernelWorkersInvariant is the race-compatible half of the
// determinism gate (the full-registry golden pass skips under -race):
// complete pipeline runs — frames, checkpoints, timings, the whole
// canonical JSON encoding — must be byte-identical at kernel workers
// 1, 2, and 8, for the heat default and the ocean proxy alike.
func TestRunKernelWorkersInvariant(t *testing.T) {
	cs := CaseStudy{Name: "kw", Iterations: 6, IOInterval: 2}
	for _, app := range []string{"heat", "ocean"} {
		for _, p := range []Pipeline{PostProcessing, InSitu} {
			encode := func(workers int) []byte {
				cfg := testConfig()
				cfg.KernelWorkers = workers
				if err := ConfigureApp(&cfg, app); err != nil {
					t.Fatalf("ConfigureApp(%s): %v", app, err)
				}
				r := Run(testNode(1), p, cs, cfg)
				var buf bytes.Buffer
				if err := r.EncodeJSON(&buf); err != nil {
					t.Fatalf("EncodeJSON: %v", err)
				}
				return buf.Bytes()
			}
			ref := encode(1)
			for _, workers := range []int{2, 8} {
				if got := encode(workers); !bytes.Equal(got, ref) {
					t.Errorf("%s/%s: run output differs between kernel workers 1 and %d", app, p, workers)
				}
			}
		}
	}
}

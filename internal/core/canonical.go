package core

import (
	"math"
	"strconv"

	"repro/internal/fault"
	"repro/internal/heat"
	"repro/internal/units"
)

// canonical.go is the allocation-free body of the canonical form: a
// strconv-based appender producing byte-for-byte the output of the
// fmt.Fprintf formulation it replaced (digest_test.go keeps the fmt
// version as a reference and asserts equality over varied configs).
// Campaign expansion digests thousands of specs per submit, and each
// fmt verb boxes its operands; appending into one reused buffer makes
// the canonical form cost no allocations at all.

// AppendCanonical appends cfg's canonical form — the exact bytes
// CanonicalDigest hashes — to dst and returns the extended slice.
func (cfg AppConfig) AppendCanonical(dst []byte) []byte {
	b := append(dst, "v1\n"...)
	// heat.Params is a flat value struct (Sources are values too), so
	// its %+v form is deterministic and spelled out field by field
	// below. Workers (like KernelWorkers, and Render.Workers) only
	// partitions the kernels' work — output bytes are identical at any
	// setting — so it is zeroed out of the content address.
	hp := cfg.Heat
	hp.Workers = 0
	b = append(b, "heat:"...)
	b = appendHeatParams(b, hp)
	b = append(b, "\nsubsteps:"...)
	b = strconv.AppendInt(b, int64(cfg.SubstepsPerIteration), 10)
	b = append(b, " real:"...)
	b = strconv.AppendInt(b, int64(cfg.RealSubsteps), 10)
	b = append(b, "\npayload ckpt:"...)
	b = strconv.AppendInt(b, int64(cfg.CheckpointPayload), 10)
	b = append(b, " insitu:"...)
	b = strconv.AppendInt(b, int64(cfg.InsituPayload), 10)
	// Render holds a *Colormap; hash the remaining fields explicitly so
	// no pointer address leaks into the digest.
	b = append(b, "\nrender:"...)
	b = strconv.AppendInt(b, int64(cfg.Render.Width), 10)
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(cfg.Render.Height), 10)
	b = append(b, " lo:"...)
	b = appendG(b, cfg.Render.Lo)
	b = append(b, " hi:"...)
	b = appendG(b, cfg.Render.Hi)
	b = append(b, " iso:["...)
	for i, v := range cfg.Render.Isolines {
		if i > 0 {
			b = append(b, ' ')
		}
		b = appendG(b, v)
	}
	b = append(b, "] isocolor:{"...)
	c := cfg.Render.IsolineColor
	b = strconv.AppendUint(b, uint64(c.R), 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(c.G), 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(c.B), 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(c.A), 10)
	b = append(b, "} colormap:"...)
	b = strconv.AppendBool(b, cfg.Render.Colormap != nil)
	b = append(b, "\nckptpolicy:"...)
	b = strconv.AppendInt(b, int64(cfg.CheckpointPolicy), 10)
	b = append(b, "\nknobs nosync:"...)
	b = strconv.AppendBool(b, cfg.InsituNoSync)
	b = append(b, " compress:"...)
	b = strconv.AppendBool(b, cfg.CompressInsitu)
	b = append(b, " cinema:"...)
	b = strconv.AppendInt(b, int64(cfg.CinemaVariants), 10)
	b = append(b, " async:"...)
	b = strconv.AppendBool(b, cfg.AsyncCheckpoint)
	b = append(b, " retain:"...)
	b = strconv.AppendBool(b, cfg.RetainFrames)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		b = append(b, "\nfaults:"...)
		b = appendFaultConfig(b, *cfg.Faults)
	} else {
		b = append(b, "\nfaults:off"...)
	}
	r := cfg.Retry.WithDefaults()
	b = append(b, "\nretry:{MaxAttempts:"...)
	b = strconv.AppendInt(b, int64(r.MaxAttempts), 10)
	b = append(b, " Backoff:"...)
	b = appendSeconds(b, r.Backoff)
	// Extension points: presence only (see package comment above).
	b = append(b, "}\ncustom sim:"...)
	b = strconv.AppendBool(b, cfg.NewSimulator != nil)
	b = append(b, " store:"...)
	b = strconv.AppendBool(b, cfg.Store != nil)
	return append(b, '\n')
}

// appendG appends f the way fmt's %g (and %v for float64) prints it:
// shortest round-trip representation.
func appendG(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendSeconds appends s the way fmt's %v prints a units.Seconds —
// via its String method (auto-scaled unit, one decimal, trailing ".0"
// trimmed) — without materializing the string.
func appendSeconds(b []byte, s units.Seconds) []byte {
	v := float64(s)
	av := math.Abs(v)
	switch {
	case av >= 1 || av == 0:
		return appendTrimUnit(b, v, "s")
	case av >= 1e-3:
		return appendTrimUnit(b, v*1e3, "ms")
	case av >= 1e-6:
		return appendTrimUnit(b, v*1e6, "us")
	default:
		return appendTrimUnit(b, v*1e9, "ns")
	}
}

func appendTrimUnit(b []byte, v float64, unit string) []byte {
	b = strconv.AppendFloat(b, v, 'f', 1, 64)
	if n := len(b); n > 2 && b[n-2] == '.' && b[n-1] == '0' {
		b = b[:n-2]
	}
	return append(b, unit...)
}

// appendHeatParams appends the %+v form of a heat.Params value.
func appendHeatParams(b []byte, p heat.Params) []byte {
	b = append(b, "{NX:"...)
	b = strconv.AppendInt(b, int64(p.NX), 10)
	b = append(b, " NY:"...)
	b = strconv.AppendInt(b, int64(p.NY), 10)
	b = append(b, " Alpha:"...)
	b = appendG(b, p.Alpha)
	b = append(b, " DX:"...)
	b = appendG(b, p.DX)
	b = append(b, " DY:"...)
	b = appendG(b, p.DY)
	b = append(b, " DT:"...)
	b = appendG(b, p.DT)
	b = append(b, " Boundary:"...)
	b = strconv.AppendInt(b, int64(p.Boundary), 10)
	b = append(b, " BoundaryTemp:"...)
	b = appendG(b, p.BoundaryTemp)
	b = append(b, " InitialTemp:"...)
	b = appendG(b, p.InitialTemp)
	b = append(b, " Workers:"...)
	b = strconv.AppendInt(b, int64(p.Workers), 10)
	b = append(b, " Sources:["...)
	for i, s := range p.Sources {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, "{X0:"...)
		b = strconv.AppendInt(b, int64(s.X0), 10)
		b = append(b, " Y0:"...)
		b = strconv.AppendInt(b, int64(s.Y0), 10)
		b = append(b, " X1:"...)
		b = strconv.AppendInt(b, int64(s.X1), 10)
		b = append(b, " Y1:"...)
		b = strconv.AppendInt(b, int64(s.Y1), 10)
		b = append(b, " Temp:"...)
		b = appendG(b, s.Temp)
		b = append(b, " PeriodSteps:"...)
		b = strconv.AppendUint(b, s.PeriodSteps, 10)
		b = append(b, " Duty:"...)
		b = appendG(b, s.Duty)
		b = append(b, '}')
	}
	return append(b, "]}"...)
}

// appendFaultConfig appends the %+v form of a fault.Config value.
func appendFaultConfig(b []byte, f fault.Config) []byte {
	b = append(b, "{Seed:"...)
	b = strconv.AppendUint(b, f.Seed, 10)
	b = append(b, " BitRot:"...)
	b = appendG(b, f.BitRot)
	b = append(b, " ReadErr:"...)
	b = appendG(b, f.ReadErr)
	b = append(b, " WriteErr:"...)
	b = appendG(b, f.WriteErr)
	b = append(b, " Latency:"...)
	b = appendG(b, f.Latency)
	b = append(b, " Spike:"...)
	b = appendSeconds(b, f.Spike)
	b = append(b, " Drop:"...)
	b = appendG(b, f.Drop)
	b = append(b, " DropTimeout:"...)
	b = appendSeconds(b, f.DropTimeout)
	return append(b, '}')
}

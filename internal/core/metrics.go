package core

import (
	"fmt"

	"repro/internal/units"
)

// Comparison pairs the two pipelines' runs of one case study and
// derives the paper's head-to-head metrics (Figs. 7-11).
type Comparison struct {
	Case   CaseStudy
	Post   *RunResult
	InSitu *RunResult
}

// Compare validates that the runs are comparable (same case study,
// same number of frames) and pairs them.
func Compare(post, insitu *RunResult) Comparison {
	if post.Pipeline != PostProcessing || insitu.Pipeline != InSitu {
		panic("core: Compare needs (post-processing, in-situ) in that order")
	}
	if post.Case != insitu.Case {
		panic(fmt.Sprintf("core: mismatched case studies %q vs %q", post.Case.Name, insitu.Case.Name))
	}
	if post.Frames != insitu.Frames {
		panic(fmt.Sprintf("core: pipelines rendered different frame counts %d vs %d", post.Frames, insitu.Frames))
	}
	return Comparison{Case: post.Case, Post: post, InSitu: insitu}
}

// TimeReductionPct is how much lower the in-situ execution time is (Fig. 7).
func (c Comparison) TimeReductionPct() float64 {
	return pctLower(float64(c.Post.ExecTime), float64(c.InSitu.ExecTime))
}

// EnergySavingsPct is how much lower the in-situ energy is (Fig. 10).
func (c Comparison) EnergySavingsPct() float64 {
	return pctLower(float64(c.Post.Energy), float64(c.InSitu.Energy))
}

// AvgPowerIncreasePct is how much higher the in-situ average power is (Fig. 8).
func (c Comparison) AvgPowerIncreasePct() float64 {
	return -pctLower(float64(c.Post.AvgPower), float64(c.InSitu.AvgPower))
}

// PeakPowerDeltaPct is the in-situ peak relative to post-processing (Fig. 9).
func (c Comparison) PeakPowerDeltaPct() float64 {
	return -pctLower(float64(c.Post.PeakPower), float64(c.InSitu.PeakPower))
}

// EfficiencyImprovementPct is the in-situ gain in frames/kJ (Fig. 11).
func (c Comparison) EfficiencyImprovementPct() float64 {
	pe := c.Post.EnergyEfficiency()
	if pe == 0 {
		return 0
	}
	return (c.InSitu.EnergyEfficiency() - pe) / pe * 100
}

// NormalizedEfficiencies returns both pipelines' efficiencies scaled so
// the better one is 1.0, matching Fig. 11's y-axis.
func (c Comparison) NormalizedEfficiencies() (post, insitu float64) {
	pe, ie := c.Post.EnergyEfficiency(), c.InSitu.EnergyEfficiency()
	best := pe
	if ie > best {
		best = ie
	}
	if best == 0 {
		return 0, 0
	}
	return pe / best, ie / best
}

// SavingsBreakdown decomposes the in-situ energy savings into a dynamic
// component (fewer data transfers) and a static component (less
// serialized/idle time) — the paper's §V-C analysis, performed two ways:
//
//   - PaperMethod multiplies the measured average *dynamic* power of the
//     I/O stages (Table II) by the execution-time difference, exactly as
//     the paper computes it;
//   - GroundTruth uses the simulator's knowledge of the node's true
//     static floor.
type SavingsBreakdown struct {
	Total units.Joules

	PaperDynamic units.Joules
	PaperStatic  units.Joules

	TrueStatic  units.Joules
	TrueDynamic units.Joules
}

// StaticSharePct returns the paper-method static share of the savings
// (the headline "91 % of the energy is saved by avoiding idling").
func (b SavingsBreakdown) StaticSharePct() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.PaperStatic) / float64(b.Total) * 100
}

// DynamicSharePct returns the paper-method dynamic share ("only 9 %").
func (b SavingsBreakdown) DynamicSharePct() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.PaperDynamic) / float64(b.Total) * 100
}

// Breakdown computes the savings decomposition. avgIODynamic is the
// measured average dynamic power of the nnread/nnwrite stages (Table
// II, ~10.15 W); staticFloor is the node's idle system power (for the
// ground-truth variant).
func (c Comparison) Breakdown(avgIODynamic, staticFloor units.Watts) SavingsBreakdown {
	dt := c.Post.ExecTime - c.InSitu.ExecTime
	total := c.Post.Energy - c.InSitu.Energy
	b := SavingsBreakdown{Total: total}
	b.PaperDynamic = units.Energy(avgIODynamic, dt)
	b.PaperStatic = total - b.PaperDynamic
	b.TrueStatic = units.Energy(staticFloor, dt)
	b.TrueDynamic = total - b.TrueStatic
	return b
}

package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core/stagegraph"
	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/viz"
)

// specs.go expresses each pipeline as a declarative stagegraph.Spec
// over the shared stage vocabulary of stages.go. The spec's Stages
// list is the pipeline's dataflow graph (validated before execution);
// its Program closes over the runner and emits stage executions to the
// engine, which owns timing, annotation, and recovery uniformly.
//
// To define a new pipeline: pick (or add) stages in stages.go, list
// them in dataflow order in a Spec, and write a Program that emits
// them via Exec.Do — the engine supplies everything else.

// spec returns pipeline p's declarative spec bound to this runner.
func (r *runner) spec(p Pipeline) stagegraph.Spec {
	switch p {
	case PostProcessing:
		return r.postSpec()
	case InSitu:
		return r.insituSpec()
	default:
		panic(fmt.Sprintf("core: unknown single-node pipeline %d", p))
	}
}

// ckptRef tracks one checkpoint through the pipeline: its store name,
// the output iteration it captured, and whether the write phase gave
// up on it (so the read phase goes straight to re-simulation).
type ckptRef struct {
	name string
	iter int
	lost bool
}

// postSpec is the traditional pipeline: phase one simulates and writes
// checkpoints (fsync each for durability); a sync + drop_caches
// barrier separates the phases (§IV-C); phase two reads every
// checkpoint back cold and visualizes it.
//
// Storage errors are recoverable, never fatal: writes and reads retry
// under the engine's RetryPolicy, and a checkpoint storage cannot
// produce intact is re-simulated from the initial conditions — the
// solver is deterministic, so the recomputed field (and thus the
// rendered frame) is identical to the lost one. Every recovery path is
// charged to the virtual time and energy ledgers.
func (r *runner) postSpec() stagegraph.Spec {
	return stagegraph.Spec{
		Name:   "post-processing",
		Inputs: []string{"solver", "config"},
		Stages: []stagegraph.Stage{
			stgSimulate, stgWriteCkpt, stgBarrier,
			stgReadCkpt, stgRecover, stgRenderRestored, stgFrameFlush,
		},
		Program: r.postProgram,
	}
}

func (r *runner) postProgram(x *stagegraph.Exec) {
	n, cfg, cs := r.n, r.cfg, r.cs
	store := cfg.Store
	if store == nil {
		store = localStore{n: n, policy: cfg.CheckpointPolicy, async: cfg.AsyncCheckpoint, enc: &checkpoint.Encoder{Workers: cfg.KernelWorkers}}
	}
	var ckpts []ckptRef
	for i := 1; i <= cs.Iterations; i++ {
		r.simulateIteration(x, stgSimulate)
		if i%cs.IOInterval != 0 {
			continue
		}
		c := ckptRef{name: fmt.Sprintf("ckpt-%04d", i), iter: i}
		x.Do(stgWriteCkpt, func() {
			c.lost = !x.WriteRetry(func() error {
				return store.WriteCheckpoint(c.name, r.solver.Field(), r.solver.Steps(), r.solver.Time(), cfg.CheckpointPayload)
			})
		})
		ckpts = append(ckpts, c)
	}

	// Phase barrier: sync and drop caches so reads hit the media.
	x.Do(stgBarrier, func() { store.Barrier() })

	for _, c := range ckpts {
		var g *field.Grid
		var step uint64
		var simTime float64
		ok := false
		if !c.lost {
			x.Do(stgReadCkpt, func() {
				ok = x.ReadRetry(func() error {
					var err error
					g, step, simTime, err = store.ReadCheckpoint(c.name)
					return err
				})
			})
		}
		if !ok {
			// The checkpoint is gone (write gave up) or unreadable after
			// the retry budget: recompute its field from the initial
			// conditions.
			x.Do(stgRecover, func() {
				g, step, simTime = r.resimulate(c.iter)
				x.Resimulated()
			})
		}
		x.Do(stgRenderRestored, func() {
			png := r.renderFrame(g, step, simTime)
			x.Do(stgFrameFlush, func() {
				n.WithIO(func() { r.writeFrameFile(x, png) })
			})
		})
	}
	x.Do(stgBarrier, func() { n.WithIO(func() { n.FS.Sync() }) })
}

// insituStages names the stages one in-situ visualization event
// executes, so the event body is shared verbatim between the in-situ
// spec (stages bound to the single node) and the hybrid spec (the same
// stages rebound to the cluster's simulation node).
type insituStages struct {
	render, variants, compress, flush stagegraph.Stage
}

func nodeInsituStages() insituStages {
	return insituStages{
		render:   stgRenderLive,
		variants: stgRenderVariants,
		compress: stgCompress,
		flush:    stgFrameFlush,
	}
}

// insituSpec is the coupled pipeline: each I/O event renders directly
// from the live field and synchronously flushes the frame plus a
// reduced data product so the scientist can monitor the run.
func (r *runner) insituSpec() stagegraph.Spec {
	return stagegraph.Spec{
		Name:   "in-situ",
		Inputs: []string{"solver", "config"},
		Stages: []stagegraph.Stage{
			stgSimulate, stgRenderLive, stgRenderVariants,
			stgCompress, stgFrameFlush, stgBarrier,
		},
		Program: r.insituProgram,
	}
}

func (r *runner) insituProgram(x *stagegraph.Exec) {
	n, cs := r.n, r.cs
	st := nodeInsituStages()
	for i := 1; i <= cs.Iterations; i++ {
		r.simulateIteration(x, stgSimulate)
		if i%cs.IOInterval != 0 {
			continue
		}
		r.insituVizEvent(x, st, i)
	}
	x.Do(stgBarrier, func() { n.WithIO(func() { n.FS.Sync() }) })
}

// insituVizEvent is one in-situ visualization event: render from the
// live field, optional cinema variants and compression, then
// synchronously flush the frame plus the reduced data product.
func (r *runner) insituVizEvent(x *stagegraph.Exec, st insituStages, i int) {
	n, cfg := r.n, r.cfg
	x.Do(st.render, func() {
		png := r.renderFrame(r.solver.Field(), r.solver.Steps(), r.solver.Time())
		r.renderCinemaVariants(x, st.variants, i)
		payload := cfg.InsituPayload
		if cfg.CompressInsitu {
			// Measure the real compression ratio on this event's
			// field and charge the compression pass.
			x.Do(st.compress, func() {
				ratio, err := viz.CompressionRatio(r.solver.Field())
				if err != nil {
					panic(fmt.Sprintf("core: compression failed: %v", err))
				}
				if ratio > 1 {
					payload = units.Bytes(float64(payload) / ratio)
				}
				n.Compress(cfg.InsituPayload)
				r.res.CompressionRatio = ratio
			})
		}
		x.Do(st.flush, func() {
			n.WithIO(func() {
				f := r.writeFrameFile(x, png)
				reduced := n.FS.Create(fmt.Sprintf("reduced-%04d", i), storage.AllocContiguous)
				x.WriteRetry(func() error { return reduced.AppendSparse(payload) })
				if !cfg.InsituNoSync {
					f.Fsync()
					reduced.Fsync()
				}
			})
		})
	})
}

package core

import "repro/internal/core/stagegraph"

// stages.go defines the stage vocabulary every pipeline spec composes
// from: first-class stagegraph.Stage values with declared dataflow
// (what each consumes and produces) and resource bindings. A stage
// with a phase name is timed and trace-annotated by the engine; a
// stage with an empty phase is untimed glue nested inside a timed one
// (it documents the graph without splitting the paper's Fig. 4 phase
// structure).
//
// The dataflow value names: "solver" and "config" are spec inputs;
// "field" is the live solver field; "checkpoint" a stored checkpoint;
// "restored" a field read back (or re-simulated); "frame" an encoded
// PNG; "reduced" the in-situ reduced data product; "shipped" an event
// payload delivered over the link.

// Resource bindings. Single-node pipelines run on "node"; cluster
// pipelines distinguish the "sim" and "staging" nodes and the "link".
var (
	bindNode        = stagegraph.Binding{Kind: stagegraph.ResNode, On: "node"}
	bindDisk        = stagegraph.Binding{Kind: stagegraph.ResDisk, On: "node"}
	bindSim         = stagegraph.Binding{Kind: stagegraph.ResNode, On: "sim"}
	bindSimDisk     = stagegraph.Binding{Kind: stagegraph.ResDisk, On: "sim"}
	bindStaging     = stagegraph.Binding{Kind: stagegraph.ResNode, On: "staging"}
	bindStagingDisk = stagegraph.Binding{Kind: stagegraph.ResDisk, On: "staging"}
	bindLink        = stagegraph.Binding{Kind: stagegraph.ResLink, On: "link"}
)

// onNode rebinds a node-bound stage to another logical node, so the
// single-node vocabulary reuses verbatim on the cluster's sim node.
func onNode(st stagegraph.Stage, node, disk stagegraph.Binding) stagegraph.Stage {
	switch st.Binding.Kind {
	case stagegraph.ResDisk:
		st.Binding = disk
	case stagegraph.ResNode:
		st.Binding = node
	}
	return st
}

// The single-node stage vocabulary.
var (
	// stgSimulate advances one output iteration of the solver and
	// charges the full virtual compute cost.
	stgSimulate = stagegraph.Stage{
		Kind: stagegraph.Simulate, Phase: StageSimulation,
		Uses: []string{"solver"}, Yields: []string{"field"},
		Binding: bindNode,
	}
	// stgWriteCkpt encodes and durably stores one checkpoint
	// (the nnwrite stage of Fig. 4).
	stgWriteCkpt = stagegraph.Stage{
		Kind: stagegraph.WriteCheckpoint, Phase: StageWrite,
		Uses: []string{"field"}, Yields: []string{"checkpoint"},
		Binding: bindDisk,
	}
	// stgBarrier separates pipeline phases: sync + drop caches (or the
	// distributed equivalent), untimed like the paper's methodology.
	stgBarrier = stagegraph.Stage{
		Kind:    stagegraph.Barrier,
		Binding: bindDisk,
	}
	// stgReadCkpt reads a checkpoint back cold (the nnread stage).
	stgReadCkpt = stagegraph.Stage{
		Kind: stagegraph.ReadCheckpoint, Phase: StageRead,
		Uses: []string{"checkpoint"}, Yields: []string{"restored"},
		Binding: bindDisk,
	}
	// stgRecover recomputes a lost checkpoint's field from the initial
	// conditions (deterministic re-simulation).
	stgRecover = stagegraph.Stage{
		Kind: stagegraph.Recover, Phase: StageRecovery,
		Uses: []string{"config"}, Yields: []string{"restored"},
		Binding: bindNode,
	}
	// stgRenderRestored renders a field recovered from storage — the
	// post-processing visualization event (frame flush nested within).
	stgRenderRestored = stagegraph.Stage{
		Kind: stagegraph.Render, Phase: StageViz,
		Uses: []string{"restored"}, Yields: []string{"frame"},
		Binding: bindNode,
	}
	// stgRenderLive renders the live solver field — the in-situ
	// visualization event (cinema variants, compression, and the
	// frame/reduced-product flush nest within).
	stgRenderLive = stagegraph.Stage{
		Kind: stagegraph.Render, Phase: StageViz,
		Uses: []string{"field"}, Yields: []string{"frame"},
		Binding: bindNode,
	}
	// stgRenderVariants renders the extra cinema image-database views
	// of one event (untimed glue inside the visualization stage).
	stgRenderVariants = stagegraph.Stage{
		Kind:    stagegraph.Render,
		Uses:    []string{"field"},
		Binding: bindNode,
	}
	// stgCompress DEFLATE-compresses the reduced data product before
	// flushing (untimed glue inside the visualization stage).
	stgCompress = stagegraph.Stage{
		Kind: stagegraph.Encode,
		Uses: []string{"field"}, Yields: []string{"reduced"},
		Binding: bindNode,
	}
	// stgFrameFlush stores the rendered frame (and, in-situ, the
	// reduced data product) on the filesystem.
	stgFrameFlush = stagegraph.Stage{
		Kind:    stagegraph.FrameFlush,
		Uses:    []string{"frame"},
		Binding: bindDisk,
	}
)

// The cluster stage vocabulary (in-transit and hybrid).
var (
	// stgEncodeHost renders and PNG-encodes the frame on the
	// simulation host; its virtual render cost is charged on the
	// staging node when the shipped data arrives (in-transit only).
	stgEncodeHost = stagegraph.Stage{
		Kind: stagegraph.Encode,
		Uses: []string{"field"}, Yields: []string{"frame"},
		Binding: bindSim,
	}
	// stgNetTransfer ships one event's payload over the link; the
	// simulation blocks only for the serialized transfer.
	stgNetTransfer = stagegraph.Stage{
		Kind: stagegraph.NetTransfer, Phase: StageNet,
		Uses: []string{"field"}, Yields: []string{"shipped"},
		Binding: bindLink,
	}
	// stgStageRender renders a delivered event on the staging node,
	// asynchronously with the next simulation iterations (executed by
	// engine callbacks, not inline — declared here for the graph).
	stgStageRender = stagegraph.Stage{
		Kind: stagegraph.Render,
		Uses: []string{"shipped"}, Yields: []string{"stagedframe"},
		Binding: bindStaging,
	}
	// stgStageFlush streams a staged frame to the staging disk (async).
	stgStageFlush = stagegraph.Stage{
		Kind:    stagegraph.FrameFlush,
		Uses:    []string{"stagedframe"},
		Binding: bindStagingDisk,
	}
	// stgStageCkpt persists a shipped checkpoint payload on the staging
	// disk — the hybrid pipeline's asynchronous offload target.
	stgStageCkpt = stagegraph.Stage{
		Kind:    stagegraph.WriteCheckpoint,
		Uses:    []string{"shipped"},
		Binding: bindStagingDisk,
	}
)

package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/node"
)

// TestEncodeJSONDeterministic runs the same fast pipeline twice and
// requires byte-identical JSON — the property the service's
// content-addressed report cache depends on.
func TestEncodeJSONDeterministic(t *testing.T) {
	cfg := DefaultAppConfig()
	cfg.RealSubsteps = 1
	cs := CaseStudies()[2]
	encode := func() string {
		res := Run(node.New(node.SandyBridge(), 1), InSitu, cs, cfg)
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatalf("EncodeJSON: %v", err)
		}
		return buf.String()
	}
	a, b := encode(), encode()
	if a != b {
		t.Fatalf("identical runs encoded differently:\n%s\n---\n%s", a, b)
	}
	if !strings.HasSuffix(a, "\n") {
		t.Error("encoding misses the trailing newline")
	}

	// Round-trip the scalar surface.
	var m map[string]any
	if err := json.Unmarshal([]byte(a), &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if m["pipeline"] != "in-situ" {
		t.Errorf("pipeline encoded as %v, want \"in-situ\"", m["pipeline"])
	}
	if _, ok := m["stage_seconds"].(map[string]any); !ok {
		t.Errorf("stage_seconds missing or mistyped: %v", m["stage_seconds"])
	}
	for _, excluded := range []string{"Profile", "FramePNGs"} {
		if _, ok := m[excluded]; ok {
			t.Errorf("bulk field %s leaked into the JSON encoding", excluded)
		}
	}
}

func TestPipelineJSONRoundTrip(t *testing.T) {
	for _, p := range Pipelines() {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var back Pipeline
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != p {
			t.Errorf("round trip %v -> %s -> %v", p, b, back)
		}
		// The flag form is accepted too.
		var fromFlag Pipeline
		if err := json.Unmarshal([]byte(`"`+p.Flag()+`"`), &fromFlag); err != nil || fromFlag != p {
			t.Errorf("flag form %q: %v %v", p.Flag(), fromFlag, err)
		}
	}
	var bad Pipeline
	if err := json.Unmarshal([]byte(`"warp-drive"`), &bad); err == nil {
		t.Error("unknown pipeline name unmarshalled without error")
	}
}

func TestPresets(t *testing.T) {
	for _, d := range DeviceFlags() {
		if _, err := PlatformByFlag(d); err != nil {
			t.Errorf("device %q: %v", d, err)
		}
	}
	if _, err := PlatformByFlag("floppy"); err == nil {
		t.Error("unknown device resolved")
	}
	for _, a := range AppFlags() {
		cfg := DefaultAppConfig()
		if err := ConfigureApp(&cfg, a); err != nil {
			t.Errorf("app %q: %v", a, err)
		}
	}
	cfg := DefaultAppConfig()
	if err := ConfigureApp(&cfg, "weather"); err == nil {
		t.Error("unknown app configured")
	}
	ocean := DefaultAppConfig()
	if err := ConfigureApp(&ocean, "ocean"); err != nil {
		t.Fatal(err)
	}
	if ocean.NewSimulator == nil {
		t.Error("ocean app did not install a simulator")
	}
	if ocean.CanonicalDigest() == DefaultAppConfig().CanonicalDigest() {
		t.Error("ocean config digests equal to heat config")
	}
}

package core

import (
	"bytes"
	"fmt"
	"image/color"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/heat"
	"repro/internal/units"
)

// writeCanonicalReference is the fmt.Fprintf formulation AppendCanonical
// replaced, kept verbatim as the specification of the canonical bytes:
// the property test below asserts the strconv appender reproduces it
// byte-for-byte over randomized configs.
func writeCanonicalReference(w *bytes.Buffer, cfg AppConfig) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("v1\n")
	hp := cfg.Heat
	hp.Workers = 0
	p("heat:%+v\n", hp)
	p("substeps:%d real:%d\n", cfg.SubstepsPerIteration, cfg.RealSubsteps)
	p("payload ckpt:%d insitu:%d\n", cfg.CheckpointPayload, cfg.InsituPayload)
	p("render:%dx%d lo:%g hi:%g iso:%v isocolor:%v colormap:%t\n",
		cfg.Render.Width, cfg.Render.Height, cfg.Render.Lo, cfg.Render.Hi,
		cfg.Render.Isolines, cfg.Render.IsolineColor, cfg.Render.Colormap != nil)
	p("ckptpolicy:%d\n", cfg.CheckpointPolicy)
	p("knobs nosync:%t compress:%t cinema:%d async:%t retain:%t\n",
		cfg.InsituNoSync, cfg.CompressInsitu, cfg.CinemaVariants,
		cfg.AsyncCheckpoint, cfg.RetainFrames)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		p("faults:%+v\n", *cfg.Faults)
	} else {
		p("faults:off\n")
	}
	p("retry:%+v\n", cfg.Retry.WithDefaults())
	p("custom sim:%t store:%t\n", cfg.NewSimulator != nil, cfg.Store != nil)
}

// randomConfig perturbs the default config with randomized values that
// exercise every formatting path: negative, fractional, and large
// floats, empty and multi-element slices, pulsed sources, enabled and
// disabled faults, custom retry, and set/unset extension points.
func randomConfig(rng *rand.Rand) AppConfig {
	cfg := DefaultAppConfig()
	cfg.Heat.Alpha = rng.Float64() * 10
	cfg.Heat.DX = rng.Float64()*2 + 0.001
	cfg.Heat.DY = rng.Float64()*2 + 0.001
	cfg.Heat.DT = rng.Float64() * 1e-3
	cfg.Heat.BoundaryTemp = (rng.Float64() - 0.5) * 1e6
	cfg.Heat.InitialTemp = rng.NormFloat64() * 100
	cfg.Heat.Boundary = heat.BoundaryKind(rng.Intn(2))
	cfg.Heat.Workers = rng.Intn(8)
	cfg.Heat.Sources = cfg.Heat.Sources[:0]
	for i, n := 0, rng.Intn(3); i < n; i++ {
		cfg.Heat.Sources = append(cfg.Heat.Sources, heat.Source{
			X0: rng.Intn(64), Y0: rng.Intn(64),
			X1: 64 + rng.Intn(64), Y1: 64 + rng.Intn(64),
			Temp:        rng.Float64() * 1e4,
			PeriodSteps: uint64(rng.Intn(100)),
			Duty:        rng.Float64(),
		})
	}
	cfg.SubstepsPerIteration = rng.Intn(4096) + 1
	cfg.RealSubsteps = rng.Intn(cfg.SubstepsPerIteration) + 1
	cfg.CheckpointPayload = units.Bytes(rng.Int63n(1 << 40))
	cfg.InsituPayload = units.Bytes(rng.Int63n(1 << 30))
	cfg.Render.Width = rng.Intn(2048) + 1
	cfg.Render.Height = rng.Intn(2048) + 1
	cfg.Render.Lo = rng.NormFloat64() * 1e3
	cfg.Render.Hi = cfg.Render.Lo + rng.Float64()*1e3
	cfg.Render.Isolines = cfg.Render.Isolines[:0]
	for i, n := 0, rng.Intn(4); i < n; i++ {
		cfg.Render.Isolines = append(cfg.Render.Isolines, rng.NormFloat64()*750)
	}
	if rng.Intn(2) == 0 {
		cfg.Render.Isolines = nil
	}
	cfg.Render.IsolineColor = color.RGBA{
		R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)),
		B: uint8(rng.Intn(256)), A: uint8(rng.Intn(256)),
	}
	cfg.InsituNoSync = rng.Intn(2) == 0
	cfg.CompressInsitu = rng.Intn(2) == 0
	cfg.AsyncCheckpoint = rng.Intn(2) == 0
	cfg.RetainFrames = rng.Intn(2) == 0
	cfg.CinemaVariants = rng.Intn(64)
	switch rng.Intn(3) {
	case 0:
		cfg.Faults = nil
	case 1:
		cfg.Faults = &fault.Config{} // disabled: prints as off
	default:
		cfg.Faults = &fault.Config{
			Seed:        rng.Uint64(),
			BitRot:      rng.Float64() * 0.01,
			ReadErr:     rng.Float64() * 0.01,
			WriteErr:    rng.Float64() * 0.01,
			Latency:     rng.Float64() * 0.01,
			Spike:       units.Seconds(rng.Float64()),
			Drop:        rng.Float64() * 0.01,
			DropTimeout: units.Seconds(rng.Float64() * 2),
		}
	}
	if rng.Intn(2) == 0 {
		cfg.Retry = RetryPolicy{MaxAttempts: rng.Intn(10), Backoff: units.Seconds(rng.Float64())}
	}
	if rng.Intn(2) == 0 {
		cfg.NewSimulator = func() Simulator { return nil }
	}
	return cfg
}

// TestAppendCanonicalMatchesFmt asserts the strconv-based canonical
// appender is byte-identical to the fmt reference — the property the
// job-digest cache keys depend on.
func TestAppendCanonicalMatchesFmt(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		cfg := randomConfig(rng)
		var want bytes.Buffer
		writeCanonicalReference(&want, cfg)
		got := cfg.AppendCanonical(nil)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("config %d: canonical form diverged\n got: %q\nwant: %q", i, got, want.Bytes())
		}
		var viaWriter bytes.Buffer
		cfg.WriteCanonical(&viaWriter)
		if !bytes.Equal(viaWriter.Bytes(), want.Bytes()) {
			t.Fatalf("config %d: WriteCanonical diverged from reference", i)
		}
	}
}

func BenchmarkAppendCanonical(b *testing.B) {
	cfg := DefaultAppConfig()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cfg.AppendCanonical(buf[:0])
	}
}

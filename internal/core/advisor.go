package core

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/units"
)

// WorkloadSpec describes an application's I/O behaviour in the terms
// the paper's proposed runtime uses: number and size of accesses and
// their access pattern (§VI-A: "power models that estimate the hard
// disk power based on the number of disk accesses, size of each access,
// and the corresponding access pattern").
type WorkloadSpec struct {
	Name       string
	ReadBytes  units.Bytes
	WriteBytes units.Bytes
	// OpSize is the request size (16 KiB in the paper's random fio tests).
	OpSize units.Bytes
	// RandomFraction is the fraction of operations that are random
	// (1 = fully random, 0 = fully sequential).
	RandomFraction float64
	// SpanBytes is the size of the on-disk region the random accesses
	// cover (the fio file size); it bounds seek distances.
	SpanBytes units.Bytes
}

// Prediction is the analytic time/energy estimate for one strategy.
type Prediction struct {
	Strategy     string
	Time         units.Seconds
	SystemEnergy units.Joules
	DiskDynamic  units.Joules
	// Exploratory reports whether the strategy preserves post-hoc
	// exploratory analysis capability.
	Exploratory bool
}

// Advice is the runtime's recommendation for a workload: the predicted
// cost of running it as-is, after software-directed data reorganization
// ([30], [31]), and after adopting an in-situ pipeline (which eliminates
// the simulation-data round trip entirely).
type Advice struct {
	Workload    WorkloadSpec
	AsIs        Prediction
	Reorganized Prediction
	InSitu      Prediction
	Recommended string
	Reason      string
}

// predictPhase estimates one direction (read or write) analytically
// from the disk parameters.
func predictPhase(p node.Profile, bytes units.Bytes, write bool, opSize units.Bytes, randomFrac float64, span units.Bytes) (units.Seconds, units.Watts) {
	if bytes == 0 {
		return 0, 0
	}
	d := p.Disk
	bw := d.SeqReadBW
	xferDyn := d.ReadXferDyn
	if write {
		bw = d.SeqWriteBW
		xferDyn = d.WriteXferDyn
	}
	xferTime := units.TransferTime(bytes, bw)

	var posTime units.Seconds
	if randomFrac > 0 && opSize > 0 {
		ops := float64(bytes / opSize)
		// Average seek within the span: settle + min + curve at the
		// mean random distance (~1/3 of the span).
		frac := float64(span) / 3 / float64(d.Capacity)
		if frac > 1 {
			frac = 1
		}
		seek := float64(d.SettleTime+d.MinSeek) + float64(d.MaxSeek-d.MinSeek)*sqrt(frac)
		rot := 0.5 * 60 / d.RPM
		posTime = units.Seconds(ops * randomFrac * (seek + rot))
	}
	// Writes are absorbed by the page cache and drained by the elevator,
	// which converts random writes back into near-sequential passes; the
	// positioning penalty applies to reads only.
	if write {
		posTime = 0
	}
	total := xferTime + posTime
	// Average disk dynamic power over the phase: transfer power while
	// streaming, seek power while positioning.
	var avgDyn units.Watts
	if total > 0 {
		avgDyn = units.Watts((float64(xferDyn)*float64(xferTime) +
			float64(d.SeekDyn)*float64(posTime)) / float64(total))
	}
	return total, avgDyn
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for advisory accuracy.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// idleSystemPower returns the node's static floor from the profile.
func idleSystemPower(p node.Profile) units.Watts {
	return units.Watts(float64(p.Sockets))*p.PkgStaticPerSocket +
		p.DRAMStatic + p.Disk.IdlePower + p.RestBase
}

// Predict estimates the workload's I/O time and energy on the platform.
func Predict(p node.Profile, w WorkloadSpec, strategy string, randomFrac float64, exploratory bool) Prediction {
	rt, rDyn := predictPhase(p, w.ReadBytes, false, w.OpSize, randomFrac, w.SpanBytes)
	wt, wDyn := predictPhase(p, w.WriteBytes, true, w.OpSize, randomFrac, w.SpanBytes)
	t := rt + wt
	// System power: static floor + small I/O CPU/DRAM + disk dynamic.
	ioCPU := units.Watts(float64(p.IOCores) * 0.10 * float64(p.DynamicPerCore))
	ioDRAM := units.Watts(p.IODRAMGBs * p.DRAMPerGBs)
	diskDyn := units.Energy(rDyn, rt) + units.Energy(wDyn, wt)
	sys := units.Energy(idleSystemPower(p)+ioCPU+ioDRAM, t) + diskDyn
	return Prediction{
		Strategy:     strategy,
		Time:         t,
		SystemEnergy: sys,
		DiskDynamic:  diskDyn,
		Exploratory:  exploratory,
	}
}

// ObserveWorkload derives a WorkloadSpec from a device's accumulated
// statistics — the observation half of the Future Work runtime: the
// node watches its own disk traffic (counts, sizes, pattern) and feeds
// the result to Advise.
func ObserveWorkload(name string, st storage.DiskStats) WorkloadSpec {
	span := st.MaxOffset - st.MinOffset
	if span <= 0 {
		span = 1
	}
	op := st.MeanOpSize()
	if op <= 0 {
		op = 1
	}
	return WorkloadSpec{
		Name:           name,
		ReadBytes:      st.BytesRead,
		WriteBytes:     st.BytesWritten,
		OpSize:         op,
		RandomFraction: st.RandomFraction(),
		SpanBytes:      span,
	}
}

// Advise compares the three strategies for a workload and recommends
// one: in-situ when the I/O is already sequential (reorganization can't
// help and the round trip is pure cost), data reorganization when the
// workload is random-heavy (it recovers nearly all of the energy gap
// while preserving exploratory analysis — the paper's §V-D argument).
func Advise(p node.Profile, w WorkloadSpec) Advice {
	if w.OpSize <= 0 || w.SpanBytes <= 0 {
		panic("core: workload needs positive op size and span")
	}
	if w.RandomFraction < 0 || w.RandomFraction > 1 {
		panic(fmt.Sprintf("core: random fraction %v outside [0,1]", w.RandomFraction))
	}
	a := Advice{Workload: w}
	a.AsIs = Predict(p, w, "as-is post-processing", w.RandomFraction, true)
	a.Reorganized = Predict(p, w, "reorganized post-processing", 0, true)
	// In-situ eliminates the simulation-data round trip entirely; only
	// a negligible frame/reduced-product flush remains, which we fold
	// to zero for the advisory comparison (as the paper does).
	a.InSitu = Prediction{Strategy: "in-situ", Exploratory: false}

	reorgSavings := a.AsIs.SystemEnergy - a.Reorganized.SystemEnergy
	insituSavings := a.AsIs.SystemEnergy - a.InSitu.SystemEnergy
	switch {
	case insituSavings <= 0:
		a.Recommended = a.AsIs.Strategy
		a.Reason = "workload performs no significant I/O"
	case reorgSavings >= 0.9*insituSavings:
		a.Recommended = a.Reorganized.Strategy
		a.Reason = fmt.Sprintf(
			"reorganization recovers %.0f%% of the in-situ savings while retaining exploratory analysis",
			float64(reorgSavings)/float64(insituSavings)*100)
	default:
		a.Recommended = a.InSitu.Strategy
		a.Reason = fmt.Sprintf(
			"I/O is already mostly sequential; only eliminating the round trip saves the remaining %s",
			a.Reorganized.SystemEnergy)
	}
	return a
}

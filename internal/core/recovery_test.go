package core

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
)

// faultyConfig arms the injector at rates high enough that a case-1
// post-processing run is guaranteed to absorb faults.
func faultyConfig(seed uint64) AppConfig {
	cfg := testConfig()
	cfg.Faults = &fault.Config{Seed: seed, BitRot: 0.2, ReadErr: 0.2, WriteErr: 0.05, Latency: 0.1}
	return cfg
}

// TestRecoveryPreservesFrames is the headline recoverability property:
// under bit-rot and transient errors the post-processing pipeline still
// renders exactly the frames of a fault-free run — every corrupted or
// failed read is retried or the frame re-simulated — while the recovery
// work lands on the time and energy ledgers.
func TestRecoveryPreservesFrames(t *testing.T) {
	cs := CaseStudies()[0]
	clean := Run(testNode(1), PostProcessing, cs, testConfig())
	faulty := Run(testNode(1), PostProcessing, cs, faultyConfig(42))

	if faulty.FrameChecksum != clean.FrameChecksum {
		t.Errorf("faulty run rendered different frames: %x vs %x",
			faulty.FrameChecksum, clean.FrameChecksum)
	}
	if faulty.Faults.Total() == 0 {
		t.Fatal("fault injector armed but no faults recorded")
	}
	if faulty.Recovery.Total() == 0 {
		t.Error("faults recorded but no recovery performed")
	}
	if faulty.Recovery.ReadRetries > 0 && faulty.Recovery.BackoffTime <= 0 {
		t.Error("retries performed without charging backoff time")
	}
	if faulty.ExecTime <= clean.ExecTime {
		t.Errorf("recovery cost no time: faulty %v <= clean %v", faulty.ExecTime, clean.ExecTime)
	}
	if faulty.Energy <= clean.Energy {
		t.Errorf("recovery cost no energy: faulty %v <= clean %v", faulty.Energy, clean.Energy)
	}
}

// TestFaultScheduleDeterministic: equal (node seed, fault config) must
// reproduce the identical fault schedule and recovery, bit for bit.
func TestFaultScheduleDeterministic(t *testing.T) {
	cs := CaseStudies()[0]
	a := Run(testNode(1), PostProcessing, cs, faultyConfig(42))
	b := Run(testNode(1), PostProcessing, cs, faultyConfig(42))
	if a.Faults != b.Faults {
		t.Errorf("fault stats differ: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Recovery != b.Recovery {
		t.Errorf("recovery stats differ: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.ExecTime != b.ExecTime || a.Energy != b.Energy || a.FrameChecksum != b.FrameChecksum {
		t.Errorf("run results differ: time %v/%v energy %v/%v checksum %x/%x",
			a.ExecTime, b.ExecTime, a.Energy, b.Energy, a.FrameChecksum, b.FrameChecksum)
	}
}

// TestUnrecoverableWritesResimulate: with every write failing, each
// checkpoint is lost and each visualization frame must come from a
// cold re-simulation — and still match the fault-free frames.
func TestUnrecoverableWritesResimulate(t *testing.T) {
	cs := CaseStudies()[2] // I/O every 8th iteration: few, cheap re-simulations
	clean := Run(testNode(3), PostProcessing, cs, testConfig())

	cfg := testConfig()
	cfg.Faults = &fault.Config{Seed: 7, WriteErr: 1}
	broken := Run(testNode(3), PostProcessing, cs, cfg)

	if broken.Recovery.LostWrites == 0 {
		t.Fatal("certain write errors lost no writes")
	}
	if broken.Recovery.Resimulations == 0 {
		t.Fatal("lost checkpoints triggered no re-simulations")
	}
	if broken.FrameChecksum != clean.FrameChecksum {
		t.Errorf("re-simulated frames differ from clean frames: %x vs %x",
			broken.FrameChecksum, clean.FrameChecksum)
	}
	if d, ok := broken.StageTime[StageRecovery]; !ok || d <= 0 {
		t.Errorf("recovery stage time missing: %v (present %v)", d, ok)
	}
}

// TestDisabledFaultsAreFree: a zero-rate fault config and a nil one
// must produce bit-identical runs — the injection hooks may not perturb
// timing, energy, or output when disabled.
func TestDisabledFaultsAreFree(t *testing.T) {
	cs := CaseStudies()[2]
	nilCfg := testConfig()
	zeroCfg := testConfig()
	zeroCfg.Faults = &fault.Config{}

	a := Run(testNode(5), PostProcessing, cs, nilCfg)
	b := Run(testNode(5), PostProcessing, cs, zeroCfg)
	if a.ExecTime != b.ExecTime || a.Energy != b.Energy || a.FrameChecksum != b.FrameChecksum {
		t.Errorf("zero-rate faults changed the run: time %v/%v energy %v/%v checksum %x/%x",
			a.ExecTime, b.ExecTime, a.Energy, b.Energy, a.FrameChecksum, b.FrameChecksum)
	}
	if b.Faults.Total() != 0 || b.Recovery.Total() != 0 {
		t.Errorf("disabled run reported activity: faults %+v recovery %+v", b.Faults, b.Recovery)
	}
}

// TestLocalStoreReadErrorReturnsZeroValues pins the contract callers
// rely on: a failed ReadCheckpoint hands back zero values alongside the
// error, never a partially-decoded grid or header fields.
func TestLocalStoreReadErrorReturnsZeroValues(t *testing.T) {
	n := testNode(9)
	cfg := testConfig()
	store := localStore{n: n, policy: cfg.CheckpointPolicy, enc: &checkpoint.Encoder{}}

	g := newSimulator(cfg).Field()
	if err := store.WriteCheckpoint("ck", g, 10, 1.5, cfg.CheckpointPayload); err != nil {
		t.Fatal(err)
	}

	n.FS.SetFaults(fault.New(fault.Config{Seed: 1, ReadErr: 1}))
	got, step, simTime, err := store.ReadCheckpoint("ck")
	if err == nil {
		t.Fatal("read with certain errors succeeded")
	}
	if got != nil || step != 0 || simTime != 0 {
		t.Errorf("error path leaked values: grid %v, step %d, time %v", got, step, simTime)
	}

	n.FS.SetFaults(nil)
	got, step, simTime, err = store.ReadCheckpoint("ck")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || step != 10 || simTime != 1.5 {
		t.Errorf("clean re-read = grid %v, step %d, time %v; want original values", got, step, simTime)
	}
}

package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/field"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/units"
)

// CheckpointStore is where the post-processing pipeline keeps its
// checkpoints: the node-local filesystem by default, or a remote
// parallel filesystem (internal/pfs) in the Future Work experiments.
// All calls block (advance virtual time) including durability.
type CheckpointStore interface {
	// WriteCheckpoint durably stores one checkpoint, replacing any
	// earlier file of the same name (so a retry starts clean). A
	// transient error leaves no usable checkpoint behind.
	WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) error
	// ReadCheckpoint fetches a checkpoint back, cold, returning the
	// field and the solver step/time recorded at capture.
	ReadCheckpoint(name string) (*field.Grid, uint64, float64, error)
	// Barrier separates the write and read phases (sync + drop caches
	// or the distributed equivalent).
	Barrier()
}

// localStore is the default CheckpointStore: the node's own disk
// through its page cache and filesystem, fsync per checkpoint. It
// carries a checkpoint.Encoder so the ~128 KiB encode buffer is reused
// across the run's events; a store therefore serves one run at a time,
// like the node it wraps.
type localStore struct {
	n      *node.Node
	policy storage.AllocPolicy
	async  bool
	enc    *checkpoint.Encoder
}

func (s localStore) WriteCheckpoint(name string, g *field.Grid, step uint64, simTime float64, payload units.Bytes) error {
	// Replace any partial file a failed earlier attempt left behind.
	s.n.FS.Delete(name)
	f := s.n.FS.Create(name, s.policy)
	var err error
	s.n.WithIO(func() {
		if err = s.enc.Write(f, g, step, simTime, payload); err != nil {
			return
		}
		if !s.async {
			f.Fsync()
		}
	})
	return err
}

func (s localStore) ReadCheckpoint(name string) (*field.Grid, uint64, float64, error) {
	f := s.n.FS.Open(name)
	if f == nil {
		return nil, 0, 0, fmt.Errorf("core: checkpoint %q not found", name)
	}
	var g *field.Grid
	var h checkpoint.Header
	var err error
	s.n.WithIO(func() {
		h, g, err = checkpoint.Read(f)
	})
	if err != nil {
		// Never hand out fields of a partially-decoded header.
		return nil, 0, 0, err
	}
	return g, h.Step, h.SimTime, nil
}

func (s localStore) Barrier() {
	s.n.WithIO(func() {
		s.n.FS.Sync()
		s.n.FS.DropCaches()
	})
}

package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core/stagegraph"
	"repro/internal/netio"
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/viz"
)

// Cluster is the two-node platform of the Future Work multi-node
// study: a simulation node and a visualization staging node sharing
// one virtual clock, connected by a network link. The in-transit
// pipeline ships each I/O event's data over the link; the staging node
// renders and stores frames *concurrently* with the next simulation
// iterations (Bennett et al. [10]; Gamell et al. [24]). The hybrid
// pipeline renders in situ on the simulation node and uses the link
// only to offload checkpoints to the staging disk asynchronously
// (Catalyst-ADIOS2 style).
type Cluster struct {
	Engine  *sim.Engine
	Sim     *node.Node
	Staging *node.Node
	Link    *netio.Link

	stagingCPU *sim.Resource
	frameOff   units.Bytes
}

// NewCluster builds two nodes of the given profile on one engine and
// connects them.
func NewCluster(p node.Profile, link netio.LinkParams, seed uint64) *Cluster {
	engine := sim.NewEngine()
	c := &Cluster{
		Engine:  engine,
		Sim:     node.NewOnEngine(engine, p, seed),
		Staging: node.NewOnEngine(engine, p, seed+1),
	}
	c.Link = netio.Connect(c.Sim, c.Staging, link)
	c.stagingCPU = sim.NewResource(engine)
	c.frameOff = p.FS.DataStart
	return c
}

// StopNoise halts both nodes' OS-noise tickers.
func (c *Cluster) StopNoise() {
	c.Sim.StopNoise()
	c.Staging.StopNoise()
}

// clusterRunner extends the single-node runner with the cluster
// substrate; the shared stage bodies (simulate, the in-situ viz event)
// run unchanged with r.n bound to the cluster's simulation node.
type clusterRunner struct {
	runner
	c *Cluster
}

// RunOnCluster executes one clustered pipeline (in-transit or hybrid)
// and returns its measurements. Cluster runs are uninstrumented — no
// meter is attached, so Profile stays nil and the meter-derived fields
// (MeasuredEnergy, AvgPower, PeakPower) are zero — but the exact
// power-bus energy is split per node in SimEnergy/StagingEnergy.
func RunOnCluster(c *Cluster, p Pipeline, cs CaseStudy, cfg AppConfig) *RunResult {
	if !p.Clustered() {
		panic(fmt.Sprintf("core: pipeline %s runs on a single node; use Run", p))
	}
	validate(cs, &cfg)
	r := &clusterRunner{
		runner: runner{
			n:      c.Sim,
			cfg:    cfg,
			cs:     cs,
			solver: newSimulator(cfg),
			hash:   fnv.New64a(),
		},
		c: c,
	}
	// Cluster runs carry a telemetry bus too, but with no instruments
	// attached: the ledger accounts stage time (and sim-node stage
	// energy — the engine's clock is the sim node) and the caller's
	// consumer streams progress; there is no recorder, so Profile stays
	// nil as before.
	tel := telemetry.NewBus()
	ledger := stagegraph.NewLedger()
	tel.Attach(ledger)
	if cfg.Telemetry != nil {
		tel.Attach(cfg.Telemetry)
	}
	r.res = &RunResult{
		Pipeline:    p,
		Case:        cs,
		StageTime:   ledger.StageTime,
		StageEnergy: ledger.StageEnergy,
	}
	eng := stagegraph.New(c.Sim, tel, cfg.Retry)

	startT := c.Engine.Now()
	simE0 := c.Sim.SystemEnergy()
	stgE0 := c.Staging.SystemEnergy()

	if err := eng.Run(r.spec(p)); err != nil {
		panic(fmt.Sprintf("core: invalid %s spec: %v", p, err))
	}

	// Drain the staging side.
	c.drain()

	res := r.res
	res.ExecTime = c.Engine.Now() - startT
	res.SimEnergy = c.Sim.SystemEnergy() - simE0
	res.StagingEnergy = c.Staging.SystemEnergy() - stgE0
	res.Energy = res.SimEnergy + res.StagingEnergy
	res.FrameChecksum = r.hash.Sum64()
	res.StagingBusy = c.stagingCPU.BusyTime()
	res.Faults = r.faults.Stats()
	res.Recovery = ledger.Recovery
	return res
}

// RunInTransit executes the in-transit pipeline on a cluster: simulate
// on the sim node; per I/O event ship the full checkpoint payload to
// the staging node, which renders and stores the frame asynchronously.
// The simulation blocks only for the network transfer.
func RunInTransit(c *Cluster, cs CaseStudy, cfg AppConfig) *RunResult {
	return RunOnCluster(c, InTransit, cs, cfg)
}

// RunHybrid executes the hybrid pipeline on a cluster: render in situ
// on the simulation node (the full in-situ visualization event,
// unchanged), and additionally offload each event's checkpoint payload
// over the link to the staging node's disk, asynchronously — in-situ
// monitoring with post-hoc restart data, without the local ~188 MiB
// round trip the post-processing pipeline pays.
func RunHybrid(c *Cluster, cs CaseStudy, cfg AppConfig) *RunResult {
	return RunOnCluster(c, Hybrid, cs, cfg)
}

// spec returns clustered pipeline p's declarative spec bound to this
// runner.
func (r *clusterRunner) spec(p Pipeline) stagegraph.Spec {
	switch p {
	case InTransit:
		return r.intransitSpec()
	case Hybrid:
		return r.hybridSpec()
	default:
		panic(fmt.Sprintf("core: unknown clustered pipeline %d", p))
	}
}

// intransitSpec ships every event's data to the staging node, which
// renders asynchronously.
func (r *clusterRunner) intransitSpec() stagegraph.Spec {
	return stagegraph.Spec{
		Name:   "in-transit",
		Inputs: []string{"solver", "config"},
		Stages: []stagegraph.Stage{
			onNode(stgSimulate, bindSim, bindSimDisk),
			stgEncodeHost, stgNetTransfer, stgStageRender, stgStageFlush,
		},
		Program: r.intransitProgram,
	}
}

func (r *clusterRunner) intransitProgram(x *stagegraph.Exec) {
	c, cfg, cs := r.c, r.cfg, r.cs
	payload := TotalSizeForGrid(cfg)
	simStage := onNode(stgSimulate, bindSim, bindSimDisk)
	for i := 1; i <= cs.Iterations; i++ {
		// Simulate on the sim node (foreground; staging events fire
		// underneath).
		r.simulateIteration(x, simStage)
		if i%cs.IOInterval != 0 {
			continue
		}

		// Render the real frame now (host-side); its virtual cost is
		// charged on the staging node when the data arrives.
		var png []byte
		var stats viz.RenderStats
		x.Do(stgEncodeHost, func() {
			png, stats = renderAnnotatedFrame(cfg, r.solver.Field(), r.solver.Steps(), r.solver.Time())
			r.hash.Write(png) //nolint:errcheck // fnv cannot fail
			r.res.Frames++
		})

		// Ship the event's data; the simulation blocks only for the
		// serialized transfer.
		x.Do(stgNetTransfer, func() {
			c.Sim.SetLoad(c.Sim.Profile.IOCores, power.IntensityIO, c.Sim.Profile.IODRAMGBs)
			end := c.Link.Send(payload, func() {
				c.stageRender(stats, units.Bytes(len(png)))
			})
			c.Engine.AdvanceTo(end)
			c.Sim.SetIdle()
			r.res.BytesSent += payload
		})
	}
}

// simInsituStages is the in-situ event vocabulary rebound to the
// cluster's simulation node, so the hybrid pipeline runs the exact
// single-node visualization event there.
func simInsituStages() insituStages {
	return insituStages{
		render:   onNode(stgRenderLive, bindSim, bindSimDisk),
		variants: onNode(stgRenderVariants, bindSim, bindSimDisk),
		compress: onNode(stgCompress, bindSim, bindSimDisk),
		flush:    onNode(stgFrameFlush, bindSim, bindSimDisk),
	}
}

// hybridSpec renders in situ on the simulation node and offloads each
// event's checkpoint payload to the staging disk over the link.
func (r *clusterRunner) hybridSpec() stagegraph.Spec {
	st := simInsituStages()
	return stagegraph.Spec{
		Name:   "hybrid",
		Inputs: []string{"solver", "config"},
		Stages: []stagegraph.Stage{
			onNode(stgSimulate, bindSim, bindSimDisk),
			st.render, st.variants, st.compress, st.flush,
			stgNetTransfer, stgStageCkpt,
			onNode(stgBarrier, bindSim, bindSimDisk),
		},
		Program: r.hybridProgram,
	}
}

func (r *clusterRunner) hybridProgram(x *stagegraph.Exec) {
	c, cs := r.c, r.cs
	payload := TotalSizeForGrid(r.cfg)
	simStage := onNode(stgSimulate, bindSim, bindSimDisk)
	st := simInsituStages()
	for i := 1; i <= cs.Iterations; i++ {
		r.simulateIteration(x, simStage)
		if i%cs.IOInterval != 0 {
			continue
		}
		// The unchanged in-situ visualization event, on the sim node.
		r.insituVizEvent(x, st, i)
		// Offload the checkpoint payload; the simulation blocks only
		// for the serialized transfer, the staging disk absorbs the
		// write asynchronously.
		x.Do(stgNetTransfer, func() {
			c.Sim.SetLoad(c.Sim.Profile.IOCores, power.IntensityIO, c.Sim.Profile.IODRAMGBs)
			end := c.Link.Send(payload, func() {
				c.offloadCheckpoint(payload)
			})
			c.Engine.AdvanceTo(end)
			c.Sim.SetIdle()
			r.res.BytesSent += payload
		})
	}
	x.Do(onNode(stgBarrier, bindSim, bindSimDisk), func() {
		c.Sim.WithIO(func() { c.Sim.FS.Sync() })
	})
}

// TotalSizeForGrid returns the per-event payload the clustered
// pipelines ship: the checkpoint-equivalent data product.
func TotalSizeForGrid(cfg AppConfig) units.Bytes {
	return units.Bytes(cfg.Heat.NX*cfg.Heat.NY*8) + cfg.CheckpointPayload
}

// stageRender queues one render on the staging node's CPU (FCFS) and
// brackets its busy period with power transitions; the rendered frame
// is then streamed to the staging disk.
func (c *Cluster) stageRender(stats viz.RenderStats, pngBytes units.Bytes) {
	cost := c.Staging.RenderCost(stats.Pixels, stats.ContourCells, pngBytes)
	start, end := c.stagingCPU.Submit(cost, nil)
	p := c.Staging.Profile
	at := func(t sim.Time, fn func()) {
		if t <= c.Engine.Now() {
			fn()
			return
		}
		c.Engine.At(t, fn)
	}
	at(start, func() {
		c.Staging.SetLoad(p.VizCores, power.IntensityRender, p.VizDRAMGBs)
	})
	c.Engine.At(end, func() {
		if c.stagingCPU.FreeAt() <= end {
			c.Staging.SetIdle()
		}
		// Stream the frame to the staging node's disk (direct I/O).
		off := c.frameOff
		c.frameOff += pngBytes
		c.Staging.Device.Submit(storage.OpWrite, off, pngBytes, nil)
	})
}

// offloadCheckpoint lands one shipped checkpoint payload on the
// staging node's disk (direct I/O), bracketing the write with the
// staging node's I/O operating point. It fires from the link's
// delivery callback, concurrent with the next simulation iterations.
func (c *Cluster) offloadCheckpoint(payload units.Bytes) {
	p := c.Staging.Profile
	c.Staging.SetLoad(p.IOCores, power.IntensityIO, p.IODRAMGBs)
	off := c.frameOff
	c.frameOff += payload
	end := c.Staging.Device.Submit(storage.OpWrite, off, payload, nil)
	c.Engine.At(end, func() {
		if c.Staging.Device.FreeAt() <= end {
			c.Staging.SetIdle()
		}
	})
}

// drain advances until the link, staging CPU, and staging disk are all
// quiet.
func (c *Cluster) drain() {
	for {
		next := c.Engine.Now()
		if t := c.Link.FreeAt(); t > next {
			next = t
		}
		if t := c.stagingCPU.FreeAt(); t > next {
			next = t
		}
		if t := c.Staging.Device.FreeAt(); t > next {
			next = t
		}
		if next <= c.Engine.Now() {
			return
		}
		c.Engine.AdvanceTo(next)
	}
}

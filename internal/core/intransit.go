package core

import (
	"hash/fnv"

	"repro/internal/netio"
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/viz"
)

// Cluster is the two-node in-transit platform of the Future Work
// multi-node study: a simulation node and a visualization staging node
// sharing one virtual clock, connected by a network link. The
// simulation ships each I/O event's data over the link; the staging
// node renders and stores frames *concurrently* with the next
// simulation iterations (Bennett et al. [10]; Gamell et al. [24]).
type Cluster struct {
	Engine  *sim.Engine
	Sim     *node.Node
	Staging *node.Node
	Link    *netio.Link

	stagingCPU *sim.Resource
	frameOff   units.Bytes
}

// NewCluster builds two nodes of the given profile on one engine and
// connects them.
func NewCluster(p node.Profile, link netio.LinkParams, seed uint64) *Cluster {
	engine := sim.NewEngine()
	c := &Cluster{
		Engine:  engine,
		Sim:     node.NewOnEngine(engine, p, seed),
		Staging: node.NewOnEngine(engine, p, seed+1),
	}
	c.Link = netio.Connect(c.Sim, c.Staging, link)
	c.stagingCPU = sim.NewResource(engine)
	c.frameOff = p.FS.DataStart
	return c
}

// StopNoise halts both nodes' OS-noise tickers.
func (c *Cluster) StopNoise() {
	c.Sim.StopNoise()
	c.Staging.StopNoise()
}

// InTransitResult captures a two-node run. Energy is reported three
// ways because the right accounting depends on the deployment: the
// simulation node alone (staging shared/amortized across jobs), the
// staging node alone, and the whole cluster.
type InTransitResult struct {
	Case     CaseStudy
	ExecTime units.Seconds

	SimEnergy     units.Joules
	StagingEnergy units.Joules
	TotalEnergy   units.Joules

	Frames        int
	FrameChecksum uint64
	BytesSent     units.Bytes
	// StagingBusy is how long the staging node actually rendered; its
	// idle remainder is the cost of dedicating a node to visualization.
	StagingBusy units.Seconds
}

// RunInTransit executes the in-transit pipeline on a cluster: simulate
// on the sim node; per I/O event ship the full checkpoint payload to
// the staging node, which renders and stores the frame asynchronously.
// The simulation blocks only for the network transfer.
func RunInTransit(c *Cluster, cs CaseStudy, cfg AppConfig) *InTransitResult {
	validate(cs, &cfg)
	solver := newSimulator(cfg)
	hash := fnv.New64a()
	res := &InTransitResult{Case: cs}

	startT := c.Engine.Now()
	simE0 := c.Sim.SystemEnergy()
	stgE0 := c.Staging.SystemEnergy()
	payload := TotalSizeForGrid(cfg)

	for i := 1; i <= cs.Iterations; i++ {
		// Simulate on the sim node (foreground; staging events fire
		// underneath).
		solver.Step(cfg.RealSubsteps)
		c.Sim.Compute(solver.CellUpdates(cfg.SubstepsPerIteration))
		if i%cs.IOInterval != 0 {
			continue
		}

		// Render the real frame now (host-side); its virtual cost is
		// charged on the staging node when the data arrives.
		png, stats := renderAnnotatedFrame(cfg, solver.Field(), solver.Steps(), solver.Time())
		hash.Write(png) //nolint:errcheck // fnv cannot fail
		res.Frames++

		// Ship the event's data; the simulation blocks only for the
		// serialized transfer.
		c.Sim.SetLoad(c.Sim.Profile.IOCores, power.IntensityIO, c.Sim.Profile.IODRAMGBs)
		end := c.Link.Send(payload, func() {
			c.stageRender(stats, units.Bytes(len(png)))
		})
		c.Engine.AdvanceTo(end)
		c.Sim.SetIdle()
		res.BytesSent += payload
	}

	// Drain the staging side.
	c.drain()

	res.ExecTime = c.Engine.Now() - startT
	res.SimEnergy = c.Sim.SystemEnergy() - simE0
	res.StagingEnergy = c.Staging.SystemEnergy() - stgE0
	res.TotalEnergy = res.SimEnergy + res.StagingEnergy
	res.FrameChecksum = hash.Sum64()
	res.StagingBusy = c.stagingCPU.BusyTime()
	return res
}

// TotalSizeForGrid returns the per-event payload the in-transit
// pipeline ships: the checkpoint-equivalent data product.
func TotalSizeForGrid(cfg AppConfig) units.Bytes {
	return units.Bytes(cfg.Heat.NX*cfg.Heat.NY*8) + cfg.CheckpointPayload
}

// stageRender queues one render on the staging node's CPU (FCFS) and
// brackets its busy period with power transitions; the rendered frame
// is then streamed to the staging disk.
func (c *Cluster) stageRender(stats viz.RenderStats, pngBytes units.Bytes) {
	cost := c.Staging.RenderCost(stats.Pixels, stats.ContourCells, pngBytes)
	start, end := c.stagingCPU.Submit(cost, nil)
	p := c.Staging.Profile
	at := func(t sim.Time, fn func()) {
		if t <= c.Engine.Now() {
			fn()
			return
		}
		c.Engine.At(t, fn)
	}
	at(start, func() {
		c.Staging.SetLoad(p.VizCores, power.IntensityRender, p.VizDRAMGBs)
	})
	c.Engine.At(end, func() {
		if c.stagingCPU.FreeAt() <= end {
			c.Staging.SetIdle()
		}
		// Stream the frame to the staging node's disk (direct I/O).
		off := c.frameOff
		c.frameOff += pngBytes
		c.Staging.Device.Submit(storage.OpWrite, off, pngBytes, nil)
	})
}

// drain advances until the link, staging CPU, and staging disk are all
// quiet.
func (c *Cluster) drain() {
	for {
		next := c.Engine.Now()
		if t := c.Link.FreeAt(); t > next {
			next = t
		}
		if t := c.stagingCPU.FreeAt(); t > next {
			next = t
		}
		if t := c.Staging.Device.FreeAt(); t > next {
			next = t
		}
		if next <= c.Engine.Now() {
			return
		}
		c.Engine.AdvanceTo(next)
	}
}

package core

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/ocean"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/viz"
)

// presets.go resolves the short device and application names the CLI
// and the service daemon both accept into concrete platforms and
// configs. Keeping the resolution here means a pipeline submitted as
// {"pipeline":"insitu","device":"ssd","app":"ocean"} over HTTP runs
// the exact machine a `greenviz -pipeline insitu -device ssd -app
// ocean` invocation runs.

// DeviceFlags lists the storage-device short names PlatformByFlag
// resolves, in menu order.
func DeviceFlags() []string { return []string{"hdd", "ssd", "raid4", "nvram"} }

// PlatformByFlag resolves a device short name to the paper's platform
// with that storage stack: the calibrated Sandy Bridge node with its
// HDD (the default), a SATA SSD, a 4-member RAID-4 array, or a PCIe
// NVRAM burst buffer. An empty name selects the default HDD.
func PlatformByFlag(device string) (node.Profile, error) {
	switch device {
	case "", "hdd":
		return node.SandyBridge(), nil
	case "ssd":
		return node.SandyBridgeSSD(), nil
	case "raid4":
		p := node.SandyBridge()
		p.RAIDMembers = 4
		p.RAIDStripe = 256 * units.KiB
		return p, nil
	case "nvram":
		p := node.SandyBridge()
		nv := storage.DefaultNVRAM()
		p.NVRAM = &nv
		return p, nil
	}
	return node.Profile{}, fmt.Errorf("core: unknown device %q (valid: %v)", device, DeviceFlags())
}

// AppFlags lists the proxy-application short names ConfigureApp
// accepts, in menu order.
func AppFlags() []string { return []string{"heat", "ocean"} }

// ConfigureApp wires the named proxy application into cfg: "heat" (or
// empty) keeps the paper's heat-transfer solver; "ocean" installs the
// shallow-water solver with its diverging colormap and zero-level
// isoline. The ocean solver captures cfg.KernelWorkers at this call,
// so set KernelWorkers before ConfigureApp (the CLI and service do).
func ConfigureApp(cfg *AppConfig, app string) error {
	switch app {
	case "", "heat":
		return nil
	case "ocean":
		workers := cfg.KernelWorkers
		cfg.NewSimulator = func() Simulator {
			p := ocean.DefaultParams()
			p.Workers = workers
			return ocean.NewSolver(p)
		}
		cfg.Render.Colormap = viz.CoolWarm()
		cfg.Render.Isolines = []float64{0}
		return nil
	}
	return fmt.Errorf("core: unknown app %q (valid: %v)", app, AppFlags())
}

package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/node"
	"repro/internal/units"
)

// testConfig keeps host runtime low: few real sub-steps, full virtual
// charging. Virtual timing (the thing under test) is unaffected.
func testConfig() AppConfig {
	cfg := DefaultAppConfig()
	cfg.RealSubsteps = 4
	return cfg
}

func testNode(seed uint64) *node.Node {
	return node.New(node.SandyBridge(), seed)
}

// comparisons are expensive to produce (six full pipeline runs), so
// they are computed once and shared across assertions.
var (
	cmpOnce  sync.Once
	cmpCases []Comparison
)

func comparisons(t *testing.T) []Comparison {
	t.Helper()
	cmpOnce.Do(func() {
		for _, cs := range CaseStudies() {
			post := Run(testNode(1), PostProcessing, cs, testConfig())
			ins := Run(testNode(2), InSitu, cs, testConfig())
			cmpCases = append(cmpCases, Compare(post, ins))
		}
	})
	return cmpCases
}

func TestPipelinesProduceIdenticalFrames(t *testing.T) {
	for _, c := range comparisons(t) {
		if c.Post.FrameChecksum != c.InSitu.FrameChecksum {
			t.Errorf("%s: frame checksums differ: post %x, in-situ %x",
				c.Case.Name, c.Post.FrameChecksum, c.InSitu.FrameChecksum)
		}
		if c.Post.Frames == 0 {
			t.Errorf("%s: no frames rendered", c.Case.Name)
		}
	}
}

func TestCaseStudy1StageShares(t *testing.T) {
	// Paper Fig. 4: simulation 33 %, write 30 %, read 27 %, viz 10 %.
	post := comparisons(t)[0].Post
	total := float64(post.ExecTime)
	want := map[string]float64{
		StageSimulation: 33,
		StageWrite:      30,
		StageRead:       27,
		StageViz:        10,
	}
	for stage, pct := range want {
		got := float64(post.StageTime[stage]) / total * 100
		if math.Abs(got-pct) > 5 {
			t.Errorf("case 1 %s share = %.1f%%, want %v%% ± 5", stage, got, pct)
		}
	}
}

func TestCaseStudy1ExecutionTimeNearPaper(t *testing.T) {
	// Fig. 5a's x-axis runs past 300 s for the case 1 post-processing run.
	post := comparisons(t)[0].Post
	if post.ExecTime < 300 || post.ExecTime > 365 {
		t.Errorf("case 1 post-processing time = %v, want ~330 s", post.ExecTime)
	}
}

func TestEnergySavingsMatchPaperBands(t *testing.T) {
	// Fig. 10: in-situ saves 43 %, 30 %, 18 %. Case 3 lands lower here
	// because we hold the simulation time constant across case studies
	// (see EXPERIMENTS.md).
	bands := [][2]float64{{38, 48}, {26, 37}, {6, 20}}
	for i, c := range comparisons(t) {
		got := c.EnergySavingsPct()
		if got < bands[i][0] || got > bands[i][1] {
			t.Errorf("%s: energy savings = %.1f%%, want within %v", c.Case.Name, got, bands[i])
		}
	}
}

func TestEnergySavingsDecreaseWithLessIO(t *testing.T) {
	cs := comparisons(t)
	s1, s2, s3 := cs[0].EnergySavingsPct(), cs[1].EnergySavingsPct(), cs[2].EnergySavingsPct()
	if !(s1 > s2 && s2 > s3 && s3 > 0) {
		t.Errorf("savings not monotone in I/O share: %.1f, %.1f, %.1f", s1, s2, s3)
	}
}

func TestInSituAvgPowerSlightlyHigher(t *testing.T) {
	// Fig. 8: in-situ draws 8 %, 5 %, 3 % more on average; the deltas
	// shrink as I/O thins out.
	deltas := make([]float64, 0, 3)
	for _, c := range comparisons(t) {
		d := c.AvgPowerIncreasePct()
		if d < 1 || d > 11 {
			t.Errorf("%s: avg-power increase = %.1f%%, want small positive", c.Case.Name, d)
		}
		deltas = append(deltas, d)
	}
	if !(deltas[0] > deltas[2]) {
		t.Errorf("avg-power delta did not shrink with less I/O: %v", deltas)
	}
}

func TestPeakPowerEquivalent(t *testing.T) {
	// Fig. 9: no significant difference in peak power.
	for _, c := range comparisons(t) {
		if d := math.Abs(c.PeakPowerDeltaPct()); d > 3 {
			t.Errorf("%s: peak power differs by %.1f%%, want < 3%%", c.Case.Name, d)
		}
	}
}

func TestEfficiencyImprovementBands(t *testing.T) {
	// Fig. 11: 22 % to 72 % improvement depending on I/O share.
	cs := comparisons(t)
	if got := cs[0].EfficiencyImprovementPct(); got < 60 || got > 95 {
		t.Errorf("case 1 efficiency improvement = %.1f%%, want ~72%%", got)
	}
	if got := cs[2].EfficiencyImprovementPct(); got < 5 || got > 30 {
		t.Errorf("case 3 efficiency improvement = %.1f%%, want ~22%% (we land lower, see EXPERIMENTS.md)", got)
	}
	post, ins := cs[0].NormalizedEfficiencies()
	if ins != 1 || post >= 1 {
		t.Errorf("normalized efficiencies = %v/%v, want in-situ 1.0 and post < 1", post, ins)
	}
}

func TestBreakdownStaticDominates(t *testing.T) {
	// §V-C: 91 % of the savings come from reduced idling; only 9 % from
	// reduced data movement.
	c := comparisons(t)[0]
	b := c.Breakdown(10.15, 104.5)
	if share := b.StaticSharePct(); share < 85 || share > 95 {
		t.Errorf("static share = %.1f%%, want ~91%%", share)
	}
	if share := b.DynamicSharePct(); share < 5 || share > 15 {
		t.Errorf("dynamic share = %.1f%%, want ~9%%", share)
	}
	if math.Abs(float64(b.PaperDynamic+b.PaperStatic-b.Total)) > 1e-6 {
		t.Error("paper-method components do not sum to the total")
	}
	if math.Abs(float64(b.TrueDynamic+b.TrueStatic-b.Total)) > 1e-6 {
		t.Error("ground-truth components do not sum to the total")
	}
	// The two decompositions should broadly agree that static dominates.
	if float64(b.TrueStatic)/float64(b.Total) < 0.8 {
		t.Errorf("ground-truth static share = %.1f%%, want dominant",
			float64(b.TrueStatic)/float64(b.Total)*100)
	}
}

func TestMeasuredEnergyTracksGroundTruth(t *testing.T) {
	for _, c := range comparisons(t) {
		for _, r := range []*RunResult{c.Post, c.InSitu} {
			ratio := float64(r.MeasuredEnergy) / float64(r.Energy)
			if ratio < 0.97 || ratio > 1.03 {
				t.Errorf("%s %s: meter-integrated energy off by %.1f%%",
					c.Case.Name, r.Pipeline, (ratio-1)*100)
			}
		}
	}
}

func TestPostProcessingMovesFarMoreData(t *testing.T) {
	c := comparisons(t)[0]
	// Post writes ~188 MiB and reads it back per event; in-situ flushes
	// ~64 MiB once per event.
	if c.Post.BytesRead < 50*180*units.MiB {
		t.Errorf("post-processing media reads = %v, implausibly low", c.Post.BytesRead)
	}
	if c.InSitu.BytesRead > c.Post.BytesRead/10 {
		t.Errorf("in-situ media reads = %v, want far below post's %v", c.InSitu.BytesRead, c.Post.BytesRead)
	}
	if c.InSitu.BytesWritten >= c.Post.BytesWritten {
		t.Error("in-situ wrote at least as much as post-processing")
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		cs   CaseStudy
		mut  func(*AppConfig)
	}{
		{"zero iterations", CaseStudy{Name: "x", Iterations: 0, IOInterval: 1}, func(*AppConfig) {}},
		{"zero interval", CaseStudy{Name: "x", Iterations: 1, IOInterval: 0}, func(*AppConfig) {}},
		{"bad substeps", CaseStudy{Name: "x", Iterations: 1, IOInterval: 1}, func(c *AppConfig) { c.SubstepsPerIteration = 0 }},
		{"real > virtual", CaseStudy{Name: "x", Iterations: 1, IOInterval: 1}, func(c *AppConfig) { c.RealSubsteps = c.SubstepsPerIteration + 1 }},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			Run(testNode(1), PostProcessing, tc.cs, cfg)
		}()
	}
}

func TestCompareValidation(t *testing.T) {
	cs := CaseStudies()
	cfg := testConfig()
	cfg.Heat.NX, cfg.Heat.NY = 16, 16 // tiny: this test only checks plumbing
	cfg.Heat.Sources = nil
	small := CaseStudy{Name: "tiny", Iterations: 2, IOInterval: 1}
	post := Run(testNode(1), PostProcessing, small, cfg)
	ins := Run(testNode(2), InSitu, small, cfg)
	Compare(post, ins) // must not panic

	func() {
		defer func() {
			if recover() == nil {
				t.Error("swapped Compare args did not panic")
			}
		}()
		Compare(ins, post)
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched case studies did not panic")
			}
		}()
		other := Run(testNode(3), InSitu, CaseStudy{Name: cs[0].Name, Iterations: 2, IOInterval: 2}, cfg)
		Compare(post, other)
	}()
}

func TestRetainFrames(t *testing.T) {
	cfg := testConfig()
	cfg.RetainFrames = true
	small := CaseStudy{Name: "tiny", Iterations: 2, IOInterval: 1}
	res := Run(testNode(1), InSitu, small, cfg)
	if len(res.FramePNGs) != 2 {
		t.Fatalf("retained %d frames, want 2", len(res.FramePNGs))
	}
	if len(res.FramePNGs[0]) < 100 {
		t.Error("retained frame suspiciously small")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	small := CaseStudy{Name: "tiny", Iterations: 3, IOInterval: 1}
	a := Run(testNode(7), InSitu, small, testConfig())
	b := Run(testNode(7), InSitu, small, testConfig())
	if a.ExecTime != b.ExecTime || a.Energy != b.Energy || a.FrameChecksum != b.FrameChecksum {
		t.Error("identical seeds produced different runs")
	}
}

package core

import (
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/units"
)

// RunResult captures everything the paper measures for one run — of
// any pipeline. Single-node runs (post-processing, in-situ) fill the
// instrumented fields; cluster runs (in-transit, hybrid) additionally
// split Energy across the two nodes and account the network.
type RunResult struct {
	Pipeline Pipeline
	Case     CaseStudy

	// Profile holds the instrument series (system, rapl.PKG,
	// rapl.DRAM) and stage phase annotations. Cluster runs are
	// uninstrumented (no meter attached) and leave it nil.
	Profile *trace.Profile

	// ExecTime is the wall (virtual) duration of the run (Fig. 7).
	ExecTime units.Seconds
	// Energy is the exact full-system energy from the power bus
	// (Fig. 10) — for cluster runs, summed over both nodes;
	// MeasuredEnergy integrates the 1 Hz meter.
	Energy         units.Joules
	MeasuredEnergy units.Joules
	// AvgPower and PeakPower come from the meter series (Figs. 8-9).
	AvgPower, PeakPower units.Watts

	// StageTime sums phase durations per stage (Fig. 4); it is the
	// stage-graph engine's time ledger.
	StageTime map[string]units.Seconds

	// Frames is the number of visualization events performed;
	// FrameChecksum fingerprints the rendered PNGs so tests can verify
	// the pipelines produce identical imagery.
	Frames        int
	FrameChecksum uint64
	// FramePNGs holds the encoded frames when RetainFrames is set.
	FramePNGs [][]byte

	// BytesToDisk is total media traffic (for attribution).
	BytesWritten, BytesRead units.Bytes

	// CompressionRatio is the last measured payload compression ratio
	// when CompressInsitu is enabled (0 otherwise).
	CompressionRatio float64
	// CinemaFrames counts extra image-database views rendered when
	// CinemaVariants is set (not part of FrameChecksum).
	CinemaFrames int

	// Faults counts the injected storage faults this run absorbed (all
	// zero when injection is off); Recovery accounts the retries,
	// re-simulations, and backoff spent absorbing them.
	Faults   fault.Stats
	Recovery RecoveryStats

	// SimEnergy and StagingEnergy split Energy between the simulation
	// and staging nodes of a cluster run. Energy is reported both ways
	// because the right accounting depends on the deployment: the
	// simulation node alone (staging shared/amortized across jobs) or
	// the whole cluster. Zero for single-node runs.
	SimEnergy, StagingEnergy units.Joules
	// BytesSent is the network traffic a cluster run shipped over the
	// link (zero for single-node runs).
	BytesSent units.Bytes
	// StagingBusy is how long the staging node actually worked; its
	// idle remainder is the cost of dedicating a node to the pipeline.
	StagingBusy units.Seconds
}

// EnergyEfficiency returns frames per kilojoule — the work/energy
// metric behind Fig. 11.
func (r *RunResult) EnergyEfficiency() float64 {
	return efficiency(r.Frames, r.Energy)
}

package core

import (
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/units"
)

// RunResult captures everything the paper measures for one run — of
// any pipeline. Single-node runs (post-processing, in-situ) fill the
// instrumented fields; cluster runs (in-transit, hybrid) additionally
// split Energy across the two nodes and account the network.
//
// The struct is JSON-serializable (EncodeJSON): the CLI's -format
// json mode and the service daemon's report endpoint share this one
// encoding. The raw instrument series and retained frames are excluded
// — they are bulk inspection data, exported via -csv and -frames.
type RunResult struct {
	Pipeline Pipeline  `json:"pipeline"`
	Case     CaseStudy `json:"case"`

	// Profile holds the instrument series (system, rapl.PKG,
	// rapl.DRAM) and stage phase annotations. Cluster runs are
	// uninstrumented (no meter attached) and leave it nil.
	Profile *trace.Profile `json:"-"`

	// ExecTime is the wall (virtual) duration of the run (Fig. 7).
	ExecTime units.Seconds `json:"exec_seconds"`
	// Energy is the exact full-system energy from the power bus
	// (Fig. 10) — for cluster runs, summed over both nodes;
	// MeasuredEnergy integrates the 1 Hz meter.
	Energy         units.Joules `json:"energy_joules"`
	MeasuredEnergy units.Joules `json:"measured_energy_joules"`
	// AvgPower and PeakPower come from the meter series (Figs. 8-9).
	AvgPower  units.Watts `json:"avg_power_watts"`
	PeakPower units.Watts `json:"peak_power_watts"`

	// StageTime sums phase durations per stage (Fig. 4); it is the
	// stage-graph engine's time ledger, folded from StageDone telemetry.
	StageTime map[string]units.Seconds `json:"stage_seconds"`
	// StageEnergy sums metered full-system energy per stage, from the
	// energy brackets on the same StageDone events — the per-phase
	// attribution behind the paper's dynamic-vs-static argument. For
	// cluster runs the engine's clock is the simulation node, so the
	// attribution covers that node only.
	StageEnergy map[string]units.Joules `json:"stage_energy_joules"`

	// Frames is the number of visualization events performed;
	// FrameChecksum fingerprints the rendered PNGs so tests can verify
	// the pipelines produce identical imagery.
	Frames        int    `json:"frames"`
	FrameChecksum uint64 `json:"frame_checksum"`
	// FramePNGs holds the encoded frames when RetainFrames is set.
	FramePNGs [][]byte `json:"-"`

	// BytesToDisk is total media traffic (for attribution).
	BytesWritten units.Bytes `json:"bytes_written"`
	BytesRead    units.Bytes `json:"bytes_read"`

	// CompressionRatio is the last measured payload compression ratio
	// when CompressInsitu is enabled (0 otherwise).
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	// CinemaFrames counts extra image-database views rendered when
	// CinemaVariants is set (not part of FrameChecksum).
	CinemaFrames int `json:"cinema_frames,omitempty"`

	// Faults counts the injected storage faults this run absorbed (all
	// zero when injection is off); Recovery accounts the retries,
	// re-simulations, and backoff spent absorbing them.
	Faults   fault.Stats   `json:"faults"`
	Recovery RecoveryStats `json:"recovery"`

	// SimEnergy and StagingEnergy split Energy between the simulation
	// and staging nodes of a cluster run. Energy is reported both ways
	// because the right accounting depends on the deployment: the
	// simulation node alone (staging shared/amortized across jobs) or
	// the whole cluster. Zero for single-node runs.
	SimEnergy     units.Joules `json:"sim_energy_joules,omitempty"`
	StagingEnergy units.Joules `json:"staging_energy_joules,omitempty"`
	// BytesSent is the network traffic a cluster run shipped over the
	// link (zero for single-node runs).
	BytesSent units.Bytes `json:"bytes_sent,omitempty"`
	// StagingBusy is how long the staging node actually worked; its
	// idle remainder is the cost of dedicating a node to the pipeline.
	StagingBusy units.Seconds `json:"staging_busy_seconds,omitempty"`
}

// EnergyEfficiency returns frames per kilojoule — the work/energy
// metric behind Fig. 11.
func (r *RunResult) EnergyEfficiency() float64 {
	return efficiency(r.Frames, r.Energy)
}

package stagegraph

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// obsClock is a minimal virtual clock: Do brackets advance it so
// stage intervals are non-degenerate.
type obsClock struct{ t units.Seconds }

func (c *obsClock) Now() units.Seconds   { c.t += 0.5; return c.t }
func (c *obsClock) Idle(d units.Seconds) { c.t += d }

// recObserver records every callback in order.
type recObserver struct {
	events []string
}

func (o *recObserver) RunStart(s Spec) { o.events = append(o.events, "start:"+s.Name) }
func (o *recObserver) StageDone(st Stage, start, end units.Seconds) {
	o.events = append(o.events, fmt.Sprintf("stage:%s[%v,%v]", st.Phase, start < end, st.Kind))
}
func (o *recObserver) RunEnd(s Spec) { o.events = append(o.events, "end:"+s.Name) }

func obsSpec(program func(*Exec)) Spec {
	return Spec{
		Name:   "observed",
		Inputs: []string{"in"},
		Stages: []Stage{
			{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}},
			{Kind: Render, Phase: "visualization", Uses: []string{"field"}, Yields: []string{"frame"}},
			{Kind: Barrier, Uses: []string{"frame"}},
		},
		Program: program,
	}
}

// TestObserverOrder verifies the callback contract: RunStart, one
// StageDone per timed execution in execution order (untimed glue
// invisible), RunEnd.
func TestObserverOrder(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	viz := Stage{Kind: Render, Phase: "visualization", Uses: []string{"field"}, Yields: []string{"frame"}}
	barrier := Stage{Kind: Barrier, Uses: []string{"frame"}}
	spec := obsSpec(func(x *Exec) {
		x.Do(sim, func() {})
		x.Do(viz, func() {})
		x.Do(sim, func() {})
		x.Do(barrier, func() {}) // untimed: no callback
	})
	obs := &recObserver{}
	eng := New(&obsClock{}, NewLedger(nil), RetryPolicy{})
	eng.Observer = obs
	if err := eng.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{
		"start:observed",
		"stage:simulation[true,Simulate]",
		"stage:visualization[true,Render]",
		"stage:simulation[true,Simulate]",
		"end:observed",
	}
	if len(obs.events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(obs.events), obs.events, len(want))
	}
	for i := range want {
		if obs.events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, obs.events[i], want[i])
		}
	}
}

// panicObserver aborts the run on the nth StageDone — the cancellation
// mechanism the service daemon uses.
type panicObserver struct {
	n     int
	calls int
}

func (o *panicObserver) RunStart(Spec) {}
func (o *panicObserver) StageDone(Stage, units.Seconds, units.Seconds) {
	o.calls++
	if o.calls >= o.n {
		panic(errAbortForTest)
	}
}
func (o *panicObserver) RunEnd(Spec) {}

var errAbortForTest = fmt.Errorf("abort")

// TestObserverPanicAborts verifies an observer panic propagates
// unwrapped through Engine.Run and leaves the engine reusable.
func TestObserverPanicAborts(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	spec := obsSpec(func(x *Exec) {
		for i := 0; i < 10; i++ {
			x.Do(sim, func() {})
		}
	})
	obs := &panicObserver{n: 3}
	eng := New(&obsClock{}, NewLedger(nil), RetryPolicy{})
	eng.Observer = obs

	func() {
		defer func() {
			if r := recover(); r != errAbortForTest {
				t.Fatalf("recovered %v, want errAbortForTest", r)
			}
		}()
		eng.Run(spec) //nolint:errcheck // aborts by panic
		t.Fatal("run completed despite aborting observer")
	}()
	if obs.calls != 3 {
		t.Fatalf("observer called %d times, want 3", obs.calls)
	}

	// The engine must be reusable after an aborted run.
	eng.Observer = nil
	ok := obsSpec(func(x *Exec) { x.Do(sim, func() {}) })
	if err := eng.Run(ok); err != nil {
		t.Fatalf("Run after abort: %v", err)
	}
}

// TestNilObserverZeroAllocs pins the cost of the hook when nobody
// subscribes: a timed stage execution with a nil observer (and nil
// profile) must not allocate — the hook is one nil check on the hot
// path. This guards the golden-digest harness' performance contract.
func TestNilObserverZeroAllocs(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	var allocs float64
	spec := obsSpec(func(x *Exec) {
		x.Do(sim, func() {}) // warm the StageTime map entry
		allocs = testing.AllocsPerRun(1000, func() {
			x.Do(sim, func() {})
		})
	})
	eng := New(&obsClock{}, NewLedger(nil), RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("nil-observer Do allocates %v allocs/op, want 0", allocs)
	}
}

// TestDoNilObserverBenchZeroAllocs runs the actual benchmark loop and
// asserts its allocs/op is exactly 0. AllocsPerRun alone missed the
// per-call heap copies of the Stage argument (they were attributed
// outside its measurement window), so this pins the same number
// BenchmarkDoNilObserver reports.
func TestDoNilObserverBenchZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion")
	}
	res := testing.Benchmark(BenchmarkDoNilObserver)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkDoNilObserver allocates %d allocs/op (%d B/op), want 0", a, res.AllocedBytesPerOp())
	}
}

// BenchmarkDoNilObserver measures the per-execution engine overhead
// with no subscriber attached (the default for every CLI run).
func BenchmarkDoNilObserver(b *testing.B) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	spec := obsSpec(func(x *Exec) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.Do(sim, func() {})
		}
	})
	eng := New(&obsClock{}, NewLedger(nil), RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

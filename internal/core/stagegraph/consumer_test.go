package stagegraph

import (
	"fmt"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// obsClock is a minimal virtual clock: Do brackets advance it so
// stage intervals are non-degenerate.
type obsClock struct{ t units.Seconds }

func (c *obsClock) Now() units.Seconds   { c.t += 0.5; return c.t }
func (c *obsClock) Idle(d units.Seconds) { c.t += d }

// recConsumer records every telemetry event in order.
type recConsumer struct {
	events []string
}

func (c *recConsumer) Consume(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindRunStart:
		c.events = append(c.events, "start:"+ev.Run)
	case telemetry.KindStageStart:
		c.events = append(c.events, "begin:"+ev.Stage)
	case telemetry.KindStageDone:
		c.events = append(c.events, fmt.Sprintf("stage:%s[%v,%s]", ev.Stage, ev.Start < ev.End, ev.StageKind))
	case telemetry.KindRunEnd:
		c.events = append(c.events, "end:"+ev.Run)
	}
}

func obsSpec(program func(*Exec)) Spec {
	return Spec{
		Name:   "observed",
		Inputs: []string{"in"},
		Stages: []Stage{
			{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}},
			{Kind: Render, Phase: "visualization", Uses: []string{"field"}, Yields: []string{"frame"}},
			{Kind: Barrier, Uses: []string{"frame"}},
		},
		Program: program,
	}
}

// TestTelemetryEventOrder verifies the event contract: RunStart, a
// StageStart/StageDone pair per timed execution in execution order
// (untimed glue invisible), RunEnd.
func TestTelemetryEventOrder(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	viz := Stage{Kind: Render, Phase: "visualization", Uses: []string{"field"}, Yields: []string{"frame"}}
	barrier := Stage{Kind: Barrier, Uses: []string{"frame"}}
	spec := obsSpec(func(x *Exec) {
		x.Do(sim, func() {})
		x.Do(viz, func() {})
		x.Do(sim, func() {})
		x.Do(barrier, func() {}) // untimed: no events
	})
	rec := &recConsumer{}
	eng := New(&obsClock{}, telemetry.NewBus(rec), RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{
		"start:observed",
		"begin:simulation",
		"stage:simulation[true,Simulate]",
		"begin:visualization",
		"stage:visualization[true,Render]",
		"begin:simulation",
		"stage:simulation[true,Simulate]",
		"end:observed",
	}
	if len(rec.events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(rec.events), rec.events, len(want))
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, rec.events[i], want[i])
		}
	}
}

// meterClock is an obsClock that also reads cumulative energy, like
// node.Node: energy is 10 J per virtual second.
type meterClock struct{ obsClock }

func (c *meterClock) SystemEnergy() units.Joules { return units.Joules(10 * c.t) }

// TestStageDoneCarriesEnergyBracket verifies that a metering clock
// gives every StageDone an energy bracket, and that the Ledger folds
// the brackets into per-stage energy totals.
func TestStageDoneCarriesEnergyBracket(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	spec := obsSpec(func(x *Exec) {
		x.Do(sim, func() {})
	})
	var got telemetry.Event
	led := NewLedger()
	bus := telemetry.NewBus(telemetry.ConsumerFunc(func(ev telemetry.Event) {
		if ev.Kind == telemetry.KindStageDone {
			got = ev
		}
	}), led)
	eng := New(&meterClock{}, bus, RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !got.HasEnergy {
		t.Fatal("StageDone from a metering clock has no energy bracket")
	}
	// obsClock.Now advances 0.5 per read: start=0.5, end=1.0 → 5 J.
	if got.Energy() != 5 {
		t.Errorf("stage energy = %v J, want 5", got.Energy())
	}
	if led.StageEnergy["simulation"] != 5 {
		t.Errorf("ledger energy = %v J, want 5", led.StageEnergy["simulation"])
	}
	if got.Duration() != 0.5 {
		t.Errorf("stage duration = %v, want 0.5", got.Duration())
	}
}

// panicConsumer aborts the run on the nth StageDone — the cancellation
// mechanism the service daemon uses.
type panicConsumer struct {
	n     int
	calls int
}

func (c *panicConsumer) Consume(ev telemetry.Event) {
	if ev.Kind != telemetry.KindStageDone {
		return
	}
	c.calls++
	if c.calls >= c.n {
		panic(errAbortForTest)
	}
}

var errAbortForTest = fmt.Errorf("abort")

// TestConsumerPanicAborts verifies a consumer panic propagates
// unwrapped through Engine.Run and leaves the engine reusable.
func TestConsumerPanicAborts(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	spec := obsSpec(func(x *Exec) {
		for i := 0; i < 10; i++ {
			x.Do(sim, func() {})
		}
	})
	abort := &panicConsumer{n: 3}
	eng := New(&obsClock{}, telemetry.NewBus(abort), RetryPolicy{})

	func() {
		defer func() {
			if r := recover(); r != errAbortForTest {
				t.Fatalf("recovered %v, want errAbortForTest", r)
			}
		}()
		eng.Run(spec) //nolint:errcheck // aborts by panic
		t.Fatal("run completed despite aborting consumer")
	}()
	if abort.calls != 3 {
		t.Fatalf("consumer called %d times, want 3", abort.calls)
	}

	// The engine must be reusable after an aborted run.
	eng.Bus = telemetry.NewBus()
	ok := obsSpec(func(x *Exec) { x.Do(sim, func() {}) })
	if err := eng.Run(ok); err != nil {
		t.Fatalf("Run after abort: %v", err)
	}
}

// TestNoConsumerZeroAllocs pins the cost of the hook when nobody
// subscribes: a timed stage execution on a consumer-less bus must not
// allocate — the hot path is one branch. This guards the golden-digest
// harness' performance contract.
func TestNoConsumerZeroAllocs(t *testing.T) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	var allocs float64
	spec := obsSpec(func(x *Exec) {
		x.Do(sim, func() {}) // warm path
		allocs = testing.AllocsPerRun(1000, func() {
			x.Do(sim, func() {})
		})
	})
	eng := New(&obsClock{}, nil, RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("no-consumer Do allocates %v allocs/op, want 0", allocs)
	}
}

// TestDoNoConsumerBenchZeroAllocs runs the actual benchmark loop and
// asserts its allocs/op is exactly 0. AllocsPerRun alone missed the
// per-call heap copies of the Stage argument once (they were attributed
// outside its measurement window), so this pins the same number
// BenchmarkDoNoConsumer reports.
func TestDoNoConsumerBenchZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion")
	}
	res := testing.Benchmark(BenchmarkDoNoConsumer)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkDoNoConsumer allocates %d allocs/op (%d B/op), want 0", a, res.AllocedBytesPerOp())
	}
}

// BenchmarkDoNoConsumer measures the per-execution engine overhead
// with no subscriber attached (the default for every CLI run).
func BenchmarkDoNoConsumer(b *testing.B) {
	sim := Stage{Kind: Simulate, Phase: "simulation", Uses: []string{"in"}, Yields: []string{"field"}}
	spec := obsSpec(func(x *Exec) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.Do(sim, func() {})
		}
	})
	eng := New(&obsClock{}, nil, RetryPolicy{})
	if err := eng.Run(spec); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// Package stagegraph is the composable pipeline engine underneath
// internal/core. A visualization pipeline is not a monolithic
// function here but a declarative Spec: an ordered graph of
// first-class Stage values — Simulate, Encode, WriteCheckpoint,
// Barrier, ReadCheckpoint, Render, FrameFlush, NetTransfer, Recover —
// each declaring the values it consumes and produces and the resource
// (node, disk, link) it occupies. One Engine executes every spec and
// emits every cross-cutting concern — stage boundaries with their
// virtual-time and metered-energy brackets, and the bounded
// retry/backoff recovery actions — as telemetry events; accountants
// (the per-stage Ledger in this package, trace annotation, progress
// streams, metrics) subscribe to the run's telemetry.Bus instead of
// being wired into the engine.
//
// The design follows the task-graph workflow modeling of faithful
// in-situ simulation frameworks (SIM-SITU, arXiv:2112.15067) and
// exists so hybrid shapes — in-situ rendering with in-transit data
// offload, à la Catalyst-ADIOS2 (arXiv:2406.18112) — compose from the
// same stage vocabulary as the paper's two pipelines instead of
// requiring a third monolith.
package stagegraph

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// Kind identifies a canonical stage in the pipeline vocabulary.
type Kind string

// The stage vocabulary every pipeline composes from.
const (
	Simulate        Kind = "Simulate"
	Encode          Kind = "Encode"
	WriteCheckpoint Kind = "WriteCheckpoint"
	Barrier         Kind = "Barrier"
	ReadCheckpoint  Kind = "ReadCheckpoint"
	Render          Kind = "Render"
	FrameFlush      Kind = "FrameFlush"
	NetTransfer     Kind = "NetTransfer"
	Recover         Kind = "Recover"
)

// ResourceKind classifies what a stage occupies while it runs.
type ResourceKind int

// The resource classes a Binding can name.
const (
	ResNode ResourceKind = iota // a node's CPU/DRAM operating point
	ResDisk                     // a node's storage stack
	ResLink                     // the cluster interconnect
)

func (k ResourceKind) String() string {
	switch k {
	case ResDisk:
		return "disk"
	case ResLink:
		return "link"
	default:
		return "node"
	}
}

// Binding names the resource a stage runs against: the kind of
// resource and the logical instance ("node" for single-node runs,
// "sim"/"staging" on a cluster, "link" for the interconnect).
type Binding struct {
	Kind ResourceKind
	On   string
}

func (b Binding) String() string { return fmt.Sprintf("%s:%s", b.Kind, b.On) }

// Stage is a first-class pipeline building block: its kind, the trace
// phase the engine annotates its executions with ("" leaves the
// execution untimed glue), the value names it consumes and produces
// (checked by Spec.Validate), and the resource it occupies.
//
// A Stage carries no behaviour of its own — bodies are supplied per
// execution via Exec.Do — so the same value can appear in every spec
// that uses the stage, and a spec is data, inspectable before it runs.
type Stage struct {
	Kind    Kind
	Phase   string
	Uses    []string
	Yields  []string
	Binding Binding
}

// Spec is a declarative pipeline: a name, the external values the
// caller provides (solver state, configuration), the dataflow-ordered
// stage graph, and the program that emits stage executions to the
// engine. Stages lists each distinct stage once, in an order
// consistent with its dataflow; Program may execute them any number
// of times (iterations, conditional recovery) but only stages listed
// in Stages.
type Spec struct {
	Name    string
	Inputs  []string
	Stages  []Stage
	Program func(*Exec)
}

// Validate checks the declared dataflow: every value a stage Uses
// must be a spec Input or Yielded by an earlier stage in Stages. This
// is the graph well-formedness check — it catches specs wired to
// consume values nothing produces before anything executes.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("stagegraph: spec needs a name")
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("stagegraph: spec %q has no stages", s.Name)
	}
	if s.Program == nil {
		return fmt.Errorf("stagegraph: spec %q has no program", s.Name)
	}
	avail := map[string]bool{}
	for _, in := range s.Inputs {
		avail[in] = true
	}
	for i, st := range s.Stages {
		for _, u := range st.Uses {
			if !avail[u] {
				return fmt.Errorf("stagegraph: spec %q stage %d (%s) uses %q, which no earlier stage yields and no input provides",
					s.Name, i, st.Kind, u)
			}
		}
		for _, y := range st.Yields {
			avail[y] = true
		}
	}
	return nil
}

// stageByKindPhase reports whether the spec declares st (same kind and
// phase), so Exec.Do can reject executions of undeclared stages.
func (s Spec) declares(st Stage) bool {
	for _, d := range s.Stages {
		if d.Kind == st.Kind && d.Phase == st.Phase && d.Binding == st.Binding {
			return true
		}
	}
	return false
}

// RetryPolicy bounds how a run responds to recoverable storage errors:
// up to MaxAttempts tries per operation, with an exponential
// simulated-time backoff starting at Backoff between attempts, all
// charged to the run's time and energy ledgers. The zero value means
// 3 attempts with a 0.5 s initial backoff.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     units.Seconds
}

// WithDefaults fills the zero value's defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 0.5
	}
	return p
}

// RecoveryStats accounts the fault handling one run performed.
type RecoveryStats struct {
	// WriteRetries / ReadRetries count repeated attempts after a
	// transient failure (the initial attempt is not counted).
	WriteRetries uint64 `json:"write_retries"`
	ReadRetries  uint64 `json:"read_retries"`
	// LostWrites counts writes abandoned after the retry budget: a lost
	// checkpoint is recovered later by re-simulation; a lost frame or
	// reduced data product is simply absent from disk.
	LostWrites uint64 `json:"lost_writes"`
	// Resimulations counts checkpoints recomputed from initial
	// conditions because storage could not produce an intact copy.
	Resimulations uint64 `json:"resimulations"`
	// BackoffTime is the simulated time spent waiting between retries.
	BackoffTime units.Seconds `json:"backoff_seconds"`
}

// Total returns the number of recovery actions taken.
func (s RecoveryStats) Total() uint64 {
	return s.WriteRetries + s.ReadRetries + s.LostWrites + s.Resimulations
}

// Clock is the virtual clock the engine times stages against, plus
// the idle primitive backoff charges its waits to.
type Clock interface {
	Now() units.Seconds
	Idle(units.Seconds)
}

// EnergyReader is the optional meter a clock can expose. When the
// engine's clock also reads cumulative system energy (node.Node does),
// every StageDone event carries the stage's energy bracket, giving
// consumers per-stage energy attribution for free.
type EnergyReader interface {
	SystemEnergy() units.Joules
}

// Ledger is the engine's stock accountant: a telemetry consumer that
// folds StageDone events into per-stage time and energy totals and
// RetryAttempt events into recovery counters. It holds no reference to
// the engine — attach it to the run's bus like any other consumer.
type Ledger struct {
	// StageTime accumulates execution time per phase name.
	StageTime map[string]units.Seconds
	// StageEnergy accumulates metered energy per phase name; it stays
	// empty when the run's clock exposes no meter.
	StageEnergy map[string]units.Joules
	// Recovery accounts the retries, losses, and backoff the engine's
	// recovery policy performed.
	Recovery RecoveryStats
}

// NewLedger returns an empty ledger ready to attach to a bus.
func NewLedger() *Ledger {
	return &Ledger{
		StageTime:   map[string]units.Seconds{},
		StageEnergy: map[string]units.Joules{},
	}
}

// Consume implements telemetry.Consumer.
func (l *Ledger) Consume(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindStageDone:
		l.StageTime[ev.Stage] += ev.End - ev.Start
		if ev.HasEnergy {
			l.StageEnergy[ev.Stage] += ev.EndEnergy - ev.StartEnergy
		}
	case telemetry.KindRetryAttempt:
		switch ev.Op {
		case telemetry.RetryWrite:
			l.Recovery.WriteRetries++
		case telemetry.RetryRead:
			l.Recovery.ReadRetries++
		case telemetry.RetryLostWrite:
			l.Recovery.LostWrites++
		case telemetry.RetryResimulate:
			l.Recovery.Resimulations++
		}
		l.Recovery.BackoffTime += ev.Backoff
	}
}

// Engine executes pipeline specs on one virtual clock and narrates
// them onto one telemetry bus: run boundaries, timed stage executions
// (with energy brackets when the clock meters energy), and every
// recovery action under the bounded retry/backoff policy.
type Engine struct {
	Clock Clock
	// Bus receives the engine's events. With no consumers attached the
	// hot path pays one branch and nothing else (guarded by a
	// 0 allocs/op regression test).
	Bus   *telemetry.Bus
	Retry RetryPolicy

	meter EnergyReader // Clock's meter view, nil if it has none
	spec  *Spec
}

// New builds an engine emitting into bus (nil means an inert private
// bus). The retry policy is defaulted. If clock also implements
// EnergyReader, stage events carry energy brackets.
func New(clock Clock, bus *telemetry.Bus, retry RetryPolicy) *Engine {
	if clock == nil {
		panic("stagegraph: engine needs a clock")
	}
	if bus == nil {
		bus = telemetry.NewBus()
	}
	meter, _ := clock.(EnergyReader)
	return &Engine{Clock: clock, Bus: bus, Retry: retry.WithDefaults(), meter: meter}
}

// Run validates the spec and executes its program. The program emits
// stage executions through the Exec it receives. A consumer panic
// (e.g. job cancellation) propagates unwrapped to the caller.
func (e *Engine) Run(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e.spec = &s
	defer func() { e.spec = nil }()
	if e.Bus.Active() {
		now := e.Clock.Now()
		e.Bus.Emit(telemetry.Event{Kind: telemetry.KindRunStart, Run: s.Name, Start: now, End: now})
	}
	s.Program(&Exec{eng: e})
	if e.Bus.Active() {
		now := e.Clock.Now()
		e.Bus.Emit(telemetry.Event{Kind: telemetry.KindRunEnd, Run: s.Name, Start: now, End: now})
	}
	return nil
}

// Exec is the execution context a spec's program runs under: it emits
// stage executions and reaches the engine's recovery policy.
type Exec struct {
	eng *Engine
}

// Do executes one instance of stage st: body runs on the virtual
// clock, and the engine brackets the interval in a StageStart/StageDone
// event pair carrying the stage's phase, kind, binding, virtual times,
// and — when the clock meters energy — its energy bracket. Executing a
// stage the current spec does not declare panics — the declared graph
// is the contract.
func (x *Exec) Do(st Stage, body func()) {
	e := x.eng
	if e.spec != nil && !e.spec.declares(st) {
		// The branch-local copy keeps st itself from escaping: handing st
		// straight to fmt makes every Do call heap-copy the Stage even
		// when the cold branch never runs.
		bad := st
		panic(fmt.Sprintf("stagegraph: spec %q executed undeclared stage %s/%s (%s)",
			e.spec.Name, bad.Kind, bad.Phase, bad.Binding))
	}
	if st.Phase == "" || !e.Bus.Active() {
		// Untimed glue, or nobody listening: the clock reads would be
		// discarded (Now is a pure read on every production clock), so
		// skip them and the event construction entirely. This is the
		// 0 allocs/op no-consumer path.
		body()
		return
	}
	start := e.Clock.Now()
	var startE units.Joules
	if e.meter != nil {
		startE = e.meter.SystemEnergy()
	}
	e.Bus.Emit(telemetry.Event{
		Kind:      telemetry.KindStageStart,
		Stage:     st.Phase,
		StageKind: string(st.Kind),
		On:        st.Binding.On,
		Start:     start,
	})
	body()
	end := e.Clock.Now()
	done := telemetry.Event{
		Kind:      telemetry.KindStageDone,
		Stage:     st.Phase,
		StageKind: string(st.Kind),
		On:        st.Binding.On,
		Start:     start,
		End:       end,
	}
	if e.meter != nil {
		done.StartEnergy = startE
		done.EndEnergy = e.meter.SystemEnergy()
		done.HasEnergy = true
	}
	e.Bus.Emit(done)
}

// backoff charges the exponential simulated-time wait before retry
// attempt number attempt (1-based): Backoff, 2*Backoff, 4*Backoff...
// The clock sits idle — the time and its static energy land on the
// run's ledgers like any other stall. Returns the charged wait so the
// retry event can carry it.
func (x *Exec) backoff(attempt int) units.Seconds {
	e := x.eng
	d := e.Retry.Backoff * units.Seconds(int64(1)<<uint(attempt-1))
	e.Clock.Idle(d)
	return d
}

// WriteRetry runs write under the retry budget and reports whether it
// ever succeeded; a final failure counts as a lost write.
func (x *Exec) WriteRetry(write func() error) bool {
	e := x.eng
	err := write()
	for attempt := 1; err != nil && attempt < e.Retry.MaxAttempts; attempt++ {
		d := x.backoff(attempt)
		e.Bus.Emit(telemetry.Event{
			Kind:    telemetry.KindRetryAttempt,
			Op:      telemetry.RetryWrite,
			Attempt: attempt,
			Backoff: d,
		})
		err = write()
	}
	if err != nil {
		e.Bus.Emit(telemetry.Event{Kind: telemetry.KindRetryAttempt, Op: telemetry.RetryLostWrite})
		return false
	}
	return true
}

// ReadRetry runs read under the retry budget and reports whether it
// ever succeeded. Both transient errors and corruption (a tripped CRC)
// are retried: bit-rot hits the delivered copy, not the media, so a
// re-read can come back intact.
func (x *Exec) ReadRetry(read func() error) bool {
	e := x.eng
	err := read()
	for attempt := 1; err != nil && attempt < e.Retry.MaxAttempts; attempt++ {
		d := x.backoff(attempt)
		e.Bus.Emit(telemetry.Event{
			Kind:    telemetry.KindRetryAttempt,
			Op:      telemetry.RetryRead,
			Attempt: attempt,
			Backoff: d,
		})
		err = read()
	}
	return err == nil
}

// Resimulated records one checkpoint recomputed from initial
// conditions, for stage bodies that perform the recovery themselves
// (the Recover stage).
func (x *Exec) Resimulated() {
	x.eng.Bus.Emit(telemetry.Event{Kind: telemetry.KindRetryAttempt, Op: telemetry.RetryResimulate})
}

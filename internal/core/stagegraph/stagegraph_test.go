package stagegraph

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

// fakeClock advances only when a body or a backoff asks it to.
type fakeClock struct {
	now  units.Seconds
	idle units.Seconds
}

func (c *fakeClock) Now() units.Seconds { return c.now }
func (c *fakeClock) Idle(d units.Seconds) {
	c.now += d
	c.idle += d
}

var (
	stSim = Stage{Kind: Simulate, Phase: "simulation", Yields: []string{"field"},
		Binding: Binding{Kind: ResNode, On: "node"}}
	stWrite = Stage{Kind: WriteCheckpoint, Phase: "nnwrite", Uses: []string{"field"},
		Yields: []string{"checkpoint"}, Binding: Binding{Kind: ResDisk, On: "node"}}
	stRead = Stage{Kind: ReadCheckpoint, Phase: "nnread", Uses: []string{"checkpoint"},
		Yields: []string{"restored"}, Binding: Binding{Kind: ResDisk, On: "node"}}
)

func testSpec(program func(*Exec)) Spec {
	return Spec{
		Name:    "test",
		Stages:  []Stage{stSim, stWrite, stRead},
		Program: program,
	}
}

func TestValidateCatchesUnproducedInput(t *testing.T) {
	s := Spec{
		Name:    "broken",
		Stages:  []Stage{stWrite}, // uses "field" with no producer
		Program: func(*Exec) {},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), `"field"`) {
		t.Fatalf("Validate() = %v, want unproduced-input error naming field", err)
	}
	// Declaring it as an external input fixes the graph.
	s.Inputs = []string{"field"}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate() with input = %v, want nil", err)
	}
}

func TestValidateRejectsEmptySpecs(t *testing.T) {
	for _, s := range []Spec{
		{},
		{Name: "x"},
		{Name: "x", Stages: []Stage{stSim}},
	} {
		if s.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestEngineTimesAndAnnotatesStages(t *testing.T) {
	clock := &fakeClock{}
	prof := trace.NewProfile("test")
	led := NewLedger()
	eng := New(clock, telemetry.NewBus(trace.NewRecorder(prof), led), RetryPolicy{})

	err := eng.Run(testSpec(func(x *Exec) {
		for i := 0; i < 3; i++ {
			x.Do(stSim, func() { clock.now += 2 })
			x.Do(stWrite, func() { clock.now += 1 })
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := led.StageTime["simulation"]; got != 6 {
		t.Errorf("simulation stage time = %v, want 6", got)
	}
	if got := led.StageTime["nnwrite"]; got != 3 {
		t.Errorf("nnwrite stage time = %v, want 3", got)
	}
	if got := prof.PhaseTime("simulation"); got != 6 {
		t.Errorf("annotated simulation phase time = %v, want 6", got)
	}
	if names := prof.PhaseNames(); len(names) != 2 {
		t.Errorf("phase names = %v, want simulation + nnwrite", names)
	}
}

func TestEngineToleratesBareLedger(t *testing.T) {
	clock := &fakeClock{}
	led := NewLedger()
	eng := New(clock, telemetry.NewBus(led), RetryPolicy{})
	err := eng.Run(testSpec(func(x *Exec) {
		x.Do(stSim, func() { clock.now += 5 })
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := led.StageTime["simulation"]; got != 5 {
		t.Errorf("stage time = %v, want 5 (uninstrumented runs still keep the ledger)", got)
	}
}

func TestEngineRejectsUndeclaredStage(t *testing.T) {
	clock := &fakeClock{}
	eng := New(clock, nil, RetryPolicy{})
	defer func() {
		if recover() == nil {
			t.Fatal("executing an undeclared stage did not panic")
		}
	}()
	eng.Run(testSpec(func(x *Exec) { //nolint:errcheck // panics first
		x.Do(Stage{Kind: Render, Phase: "visualization"}, func() {})
	}))
}

func TestWriteRetrySucceedsWithinBudget(t *testing.T) {
	clock := &fakeClock{}
	led := NewLedger()
	eng := New(clock, telemetry.NewBus(led), RetryPolicy{MaxAttempts: 3, Backoff: 0.5})
	failures := 2
	var ok bool
	eng.Run(testSpec(func(x *Exec) { //nolint:errcheck // spec is valid
		ok = x.WriteRetry(func() error {
			if failures > 0 {
				failures--
				return errors.New("transient")
			}
			return nil
		})
	}))
	if !ok {
		t.Fatal("write failed despite budget covering the failures")
	}
	rec := led.Recovery
	if rec.WriteRetries != 2 || rec.LostWrites != 0 {
		t.Errorf("recovery = %+v, want 2 retries, 0 lost", rec)
	}
	// Exponential backoff: 0.5 + 1.0 seconds of charged idle time.
	if clock.idle != 1.5 || rec.BackoffTime != 1.5 {
		t.Errorf("backoff charged %v (ledger %v), want 1.5", clock.idle, rec.BackoffTime)
	}
}

func TestWriteRetryExhaustionCountsLostWrite(t *testing.T) {
	led := NewLedger()
	eng := New(&fakeClock{}, telemetry.NewBus(led), RetryPolicy{MaxAttempts: 3, Backoff: 0.5})
	var ok bool
	eng.Run(testSpec(func(x *Exec) { //nolint:errcheck // spec is valid
		ok = x.WriteRetry(func() error { return errors.New("permanent") })
	}))
	if ok {
		t.Fatal("write reported success despite permanent failure")
	}
	rec := led.Recovery
	if rec.WriteRetries != 2 || rec.LostWrites != 1 {
		t.Errorf("recovery = %+v, want 2 retries then 1 lost write", rec)
	}
	if rec.Total() != 3 {
		t.Errorf("Total() = %d, want 3", rec.Total())
	}
}

func TestReadRetryNeverCountsLostWrites(t *testing.T) {
	led := NewLedger()
	eng := New(&fakeClock{}, telemetry.NewBus(led), RetryPolicy{MaxAttempts: 2, Backoff: 0.25})
	eng.Run(testSpec(func(x *Exec) { //nolint:errcheck // spec is valid
		if x.ReadRetry(func() error { return errors.New("corrupt") }) {
			t.Error("read reported success despite permanent corruption")
		}
	}))
	rec := led.Recovery
	if rec.ReadRetries != 1 || rec.LostWrites != 0 {
		t.Errorf("recovery = %+v, want 1 read retry and no lost writes", rec)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.MaxAttempts != 3 || p.Backoff != 0.5 {
		t.Errorf("defaults = %+v, want 3 attempts / 0.5 s", p)
	}
	q := RetryPolicy{MaxAttempts: 7, Backoff: 2}.WithDefaults()
	if q.MaxAttempts != 7 || q.Backoff != 2 {
		t.Errorf("explicit policy clobbered: %+v", q)
	}
}

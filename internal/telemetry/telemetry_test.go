package telemetry

import (
	"testing"
)

func TestNilAndEmptyBusAreInert(t *testing.T) {
	var nilBus *Bus
	if nilBus.Active() {
		t.Error("nil bus reports active")
	}
	nilBus.Emit(Event{Kind: KindRunStart}) // must not panic

	empty := NewBus()
	if empty.Active() {
		t.Error("consumer-less bus reports active")
	}
	empty.Emit(Event{Kind: KindRunStart})
}

func TestFanOutOrderAndValueSemantics(t *testing.T) {
	var order []string
	first := ConsumerFunc(func(ev Event) {
		order = append(order, "first:"+ev.Kind.String())
		ev.Stage = "mutated" // local copy: second must not see this
	})
	var seen Event
	second := ConsumerFunc(func(ev Event) {
		order = append(order, "second:"+ev.Kind.String())
		seen = ev
	})
	b := NewBus(first)
	b.Attach(second)
	if !b.Active() {
		t.Fatal("bus with consumers reports inactive")
	}
	b.Emit(Event{Kind: KindStageDone, Stage: "simulation", Start: 1, End: 3})
	want := []string{"first:stage-done", "second:stage-done"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("fan-out order = %v, want %v", order, want)
	}
	if seen.Stage != "simulation" {
		t.Errorf("consumer saw mutated event %q; events must fan out by value", seen.Stage)
	}
	if seen.Duration() != 2 {
		t.Errorf("Duration() = %v, want 2", seen.Duration())
	}
}

func TestAttachNilConsumerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("attaching a nil consumer did not panic")
		}
	}()
	NewBus().Attach(nil)
}

func TestEnergyHelper(t *testing.T) {
	ev := Event{Kind: KindStageDone, StartEnergy: 10, EndEnergy: 25}
	if ev.Energy() != 0 {
		t.Errorf("Energy() without HasEnergy = %v, want 0", ev.Energy())
	}
	ev.HasEnergy = true
	if ev.Energy() != 15 {
		t.Errorf("Energy() = %v, want 15", ev.Energy())
	}
}

func TestKindAndOpStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindRunStart:      "run-start",
		KindStageStart:    "stage-start",
		KindStageDone:     "stage-done",
		KindEnergySample:  "energy-sample",
		KindFaultInjected: "fault-injected",
		KindRetryAttempt:  "retry-attempt",
		KindRunEnd:        "run-end",
		KindSeriesDefine:  "series-define",
		Kind(250):         "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	ops := map[RetryOp]string{
		RetryWrite:      "write-retry",
		RetryRead:       "read-retry",
		RetryLostWrite:  "lost-write",
		RetryResimulate: "resimulate",
	}
	for o, want := range ops {
		if o.String() != want {
			t.Errorf("RetryOp(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

// TestEmitNoConsumerZeroAllocs pins the zero-cost contract the whole
// refactor rests on: emitting into a consumer-less (or nil) bus must
// not allocate. The benchmark-backed variant below guards the same
// number against measurement-window artifacts.
func TestEmitNoConsumerZeroAllocs(t *testing.T) {
	b := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit(Event{Kind: KindStageDone, Stage: "simulation", Start: 1, End: 2})
	})
	if allocs != 0 {
		t.Fatalf("no-consumer Emit allocates %v allocs/op, want 0", allocs)
	}
}

func TestBenchmarkTelemetryNoConsumerZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion")
	}
	res := testing.Benchmark(BenchmarkTelemetryNoConsumer)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkTelemetryNoConsumer allocates %d allocs/op (%d B/op), want 0",
			a, res.AllocedBytesPerOp())
	}
}

// BenchmarkTelemetryNoConsumer measures the uninstrumented emit path:
// the cost every CLI run pays per would-be event.
func BenchmarkTelemetryNoConsumer(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{Kind: KindStageDone, Stage: "simulation", Start: 1, End: 2})
	}
}

// BenchmarkTelemetryFanout measures delivery to a realistic consumer
// count (recorder, ledger, meter summary, user consumer = 4).
func BenchmarkTelemetryFanout(b *testing.B) {
	var sink float64
	count := ConsumerFunc(func(ev Event) { sink += float64(ev.End - ev.Start) })
	bus := NewBus(count, count, count, count)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{Kind: KindStageDone, Stage: "simulation", Start: 1, End: 2})
	}
	_ = sink
}

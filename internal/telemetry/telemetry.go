// Package telemetry is the single event stream every instrumented
// subsystem speaks. Producers — the stage-graph engine, the retry and
// recovery machinery, the fault injector, the RAPL and Wattsup
// samplers — emit typed Events into one Bus per run; accountants — the
// per-stage time and energy ledgers, the trace phase annotator, the
// greenness meter summary, the service daemon's SSE progress log and
// Prometheus counters — subscribe as Consumers and derive their view
// from the same stream. Faithful in-situ simulation frameworks
// converge on exactly this shape (SIM-SITU, arXiv:2112.15067; the
// in-situ survey arXiv:2212.14817): one instrumented event stream all
// analyses consume, instead of one bespoke hook per analysis.
//
// The hot-path contract mirrors the nil-observer discipline this
// stream replaces: with no consumers attached, emitting costs a nil
// check and a length test — zero allocations, zero side effects — so
// uninstrumented runs (and the golden-digest harness that pins their
// bytes) pay nothing. Events are flat value structs; fan-out passes
// them by value, so a consumer can never mutate another's view.
//
// Delivery is synchronous and in attachment order, on the emitting
// goroutine. Determinism follows: a deterministic run produces a
// deterministic event sequence, which is what lets the service daemon
// replay progress streams and content-address reports.
package telemetry

import "repro/internal/units"

// Kind discriminates the event vocabulary.
type Kind uint8

// The event vocabulary. Every instrumented moment of a run is one of
// these; consumers switch on Kind and ignore what they don't account.
const (
	// KindRunStart opens one pipeline-spec execution (Run is set).
	KindRunStart Kind = iota
	// KindStageStart opens one timed stage execution (Stage, StageKind,
	// On, Start).
	KindStageStart
	// KindStageDone closes one timed stage execution (Stage, StageKind,
	// On, Start, End; StartEnergy/EndEnergy when the engine's clock
	// meters energy — HasEnergy says so).
	KindStageDone
	// KindEnergySample is one instrument reading: Source names the
	// series ("system", "rapl.PKG", ...), At is the reading time, Value
	// the reading (watts for the power instruments).
	KindEnergySample
	// KindFaultInjected fires once per injected storage fault; Source
	// carries the fault class ("bitrot", "readerr", "writeerr",
	// "latency", "drop") and Value the charged stall in seconds for the
	// classes that stall (latency spikes).
	KindFaultInjected
	// KindRetryAttempt is one recovery action under the engine's retry
	// policy: Op says which (write/read retry, an abandoned write, a
	// re-simulation), Attempt numbers retries from 1, Backoff is the
	// simulated wait charged before the retry.
	KindRetryAttempt
	// KindRunEnd closes one pipeline-spec execution (Run is set).
	KindRunEnd
	// KindSeriesDefine declares an instrument series (Source, Unit)
	// before its first sample, so recording consumers can materialize
	// series — in definition order — even for instruments that end up
	// producing no samples.
	KindSeriesDefine
)

func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindStageStart:
		return "stage-start"
	case KindStageDone:
		return "stage-done"
	case KindEnergySample:
		return "energy-sample"
	case KindFaultInjected:
		return "fault-injected"
	case KindRetryAttempt:
		return "retry-attempt"
	case KindRunEnd:
		return "run-end"
	case KindSeriesDefine:
		return "series-define"
	default:
		return "unknown"
	}
}

// RetryOp classifies a KindRetryAttempt event.
type RetryOp uint8

// The recovery actions the retry policy performs.
const (
	// RetryWrite is a repeated write attempt after a transient failure.
	RetryWrite RetryOp = iota
	// RetryRead is a repeated read attempt after a transient failure or
	// a tripped CRC.
	RetryRead
	// RetryLostWrite marks a write abandoned after the retry budget.
	RetryLostWrite
	// RetryResimulate marks a checkpoint recomputed from initial
	// conditions because storage could not produce an intact copy.
	RetryResimulate
)

func (o RetryOp) String() string {
	switch o {
	case RetryRead:
		return "read-retry"
	case RetryLostWrite:
		return "lost-write"
	case RetryResimulate:
		return "resimulate"
	default:
		return "write-retry"
	}
}

// Event is one telemetry record: a flat value struct whose populated
// fields depend on Kind (see the Kind constants). Flat-by-value is
// deliberate — emitting one allocates nothing, and each consumer gets
// its own copy.
type Event struct {
	Kind Kind

	// Run is the pipeline spec name (KindRunStart / KindRunEnd).
	Run string
	// Stage is the stage's phase name; StageKind its vocabulary kind
	// ("Simulate", "Render", ...); On the resource instance it ran
	// against ("node", "sim", "staging", "link").
	Stage     string
	StageKind string
	On        string
	// Start and End bracket a stage execution in virtual time.
	Start, End units.Seconds
	// At timestamps point events (energy samples).
	At units.Seconds
	// Source names an instrument series (samples, definitions) or a
	// fault class; Unit is the series unit on KindSeriesDefine.
	Source string
	Unit   string
	// Value is the sample reading, or a fault's charged stall.
	Value float64
	// StartEnergy and EndEnergy bracket a stage execution in cumulative
	// system energy when HasEnergy is set (the engine's clock exposes a
	// meter) — the per-stage energy attribution the paper's greenness
	// argument rests on.
	StartEnergy, EndEnergy units.Joules
	HasEnergy              bool
	// Op, Attempt, and Backoff describe one KindRetryAttempt.
	Op      RetryOp
	Attempt int
	Backoff units.Seconds
}

// Duration returns the stage execution's virtual length.
func (e Event) Duration() units.Seconds { return e.End - e.Start }

// Energy returns the stage execution's metered energy (0 when the run
// was not energy-metered).
func (e Event) Energy() units.Joules {
	if !e.HasEnergy {
		return 0
	}
	return e.EndEnergy - e.StartEnergy
}

// Consumer receives events. Consume runs synchronously on the
// producing goroutine, in attachment order; it must not block. A
// consumer may panic to abort the producing run from the outside (the
// service daemon cancels jobs this way); the panic propagates
// unwrapped to the run's caller.
type Consumer interface {
	Consume(Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(Event)

// Consume implements Consumer.
func (f ConsumerFunc) Consume(ev Event) { f(ev) }

// Bus fans events out to its consumers. The zero value and nil are
// both valid, inert buses: Emit on them is a nil check and nothing
// else, so producers never guard their instrumentation points.
type Bus struct {
	consumers []Consumer
}

// NewBus returns a bus with the given consumers attached in order.
func NewBus(consumers ...Consumer) *Bus {
	return &Bus{consumers: consumers}
}

// Attach subscribes c (appended after existing consumers). Attach is
// not safe concurrently with Emit; wire the bus before the run starts.
func (b *Bus) Attach(c Consumer) {
	if c == nil {
		panic("telemetry: nil consumer")
	}
	b.consumers = append(b.consumers, c)
}

// Active reports whether any consumer is attached. Producers use it to
// skip building events nobody will see — the zero-cost contract for
// uninstrumented runs.
func (b *Bus) Active() bool { return b != nil && len(b.consumers) > 0 }

// Emit fans ev out to every consumer, synchronously, in attachment
// order. On a nil or consumer-less bus it is free: no allocation, no
// side effect.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	for _, c := range b.consumers {
		c.Consume(ev)
	}
}

package netio

import (
	"math"
	"testing"

	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/units"
)

func pair(t *testing.T) (*sim.Engine, *node.Node, *node.Node, *Link) {
	t.Helper()
	e := sim.NewEngine()
	p := node.SandyBridge()
	p.OSNoiseSigma = 0
	p.Disk.DeterministicRotation = true
	a := node.NewOnEngine(e, p, 1)
	b := node.NewOnEngine(e, p, 2)
	return e, a, b, Connect(a, b, TenGigE())
}

func TestTransferTime(t *testing.T) {
	_, _, _, l := pair(t)
	got := float64(l.TransferTime(1100 * units.MiB))
	want := 50e-6 + float64(1100*units.MiB)/1.1e9
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestSendCompletesAndCounts(t *testing.T) {
	e, _, _, l := pair(t)
	doneAt := sim.Time(-1)
	end := l.Send(110*units.MiB, func() { doneAt = e.Now() })
	e.AdvanceTo(end)
	if doneAt != end {
		t.Errorf("done at %v, want %v", doneAt, end)
	}
	st := l.Stats()
	if st.Messages != 1 || st.BytesSent != 110*units.MiB {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendsSerializeFCFS(t *testing.T) {
	e, _, _, l := pair(t)
	end1 := l.Send(110*units.MiB, nil)
	end2 := l.Send(110*units.MiB, nil)
	if end2 <= end1 {
		t.Errorf("second transfer finished at %v, not after first at %v", end2, end1)
	}
	per := float64(l.TransferTime(110 * units.MiB))
	if math.Abs(float64(end2)-2*per) > 1e-9 {
		t.Errorf("two transfers took %v, want %v", end2, 2*per)
	}
	e.AdvanceTo(end2)
	if !l.Idle() {
		t.Error("link not idle after both transfers")
	}
}

func TestNICPowerRaisedOnBothEnds(t *testing.T) {
	e, a, b, l := pair(t)
	base := a.SystemPower() + b.SystemPower()
	end := l.Send(units.GiB, nil)
	e.Advance(0.1)
	during := a.SystemPower() + b.SystemPower()
	wantDelta := 2 * (l.Params().NICActive - l.Params().NICIdle)
	if math.Abs(float64(during-base-wantDelta)) > 0.01 {
		t.Errorf("power delta during transfer = %v, want %v", during-base, wantDelta)
	}
	e.AdvanceTo(end + 0.001)
	after := a.SystemPower() + b.SystemPower()
	if math.Abs(float64(after-base)) > 0.01 {
		t.Errorf("power after transfer = %v, want baseline %v", after, base)
	}
}

func TestNICIdleAddsToSystemFloor(t *testing.T) {
	_, a, _, l := pair(t)
	// The nic domain adds its idle draw to the bus.
	want := float64(a.IdleSystemPower() + l.Params().NICIdle)
	if got := float64(a.SystemPower()); math.Abs(got-want) > 0.01 {
		t.Errorf("system power with NIC = %v, want %v", got, want)
	}
}

func TestConnectRequiresSharedEngine(t *testing.T) {
	p := node.SandyBridge()
	a := node.New(p, 1)
	b := node.New(p, 2)
	defer func() {
		if recover() == nil {
			t.Error("Connect across engines did not panic")
		}
	}()
	Connect(a, b, TenGigE())
}

func TestSendValidation(t *testing.T) {
	_, _, _, l := pair(t)
	defer func() {
		if recover() == nil {
			t.Error("negative send did not panic")
		}
	}()
	l.Send(-1, nil)
}

package netio

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestLinkSaturation drives the link with a deep back-to-back queue and
// checks that the TX resource serializes perfectly: total busy time is
// the sum of per-transfer service times, the link frees exactly at that
// instant, and the NICs never drop to idle between queued transfers.
func TestLinkSaturation(t *testing.T) {
	e, a, b, l := pair(t)
	const transfers = 32
	size := 11 * units.MiB
	per := float64(l.TransferTime(size))

	ends := make([]sim.Time, transfers)
	for i := range ends {
		ends[i] = l.Send(size, nil)
	}
	for i, end := range ends {
		want := float64(i+1) * per
		if math.Abs(float64(end)-want) > 1e-9 {
			t.Fatalf("transfer %d ends at %v, want %v", i, end, want)
		}
	}

	// While saturated, the NIC delta must hold on both endpoints at
	// every inter-transfer boundary — the idle reset at each transfer
	// end is suppressed while more work is queued.
	idle := a.SystemPower() + b.SystemPower() - 2*(l.Params().NICActive-l.Params().NICIdle)
	for i := 0; i < transfers-1; i++ {
		e.AdvanceTo(ends[i] + sim.Time(per/2))
		during := a.SystemPower() + b.SystemPower()
		wantDelta := 2 * (l.Params().NICActive - l.Params().NICIdle)
		if math.Abs(float64(during-idle-wantDelta)) > 0.01 {
			t.Fatalf("after transfer %d: power delta = %v, want %v (NIC dropped to idle mid-queue)", i, during-idle, wantDelta)
		}
	}

	e.AdvanceTo(ends[transfers-1])
	st := l.Stats()
	if st.Messages != transfers {
		t.Errorf("Messages = %d, want %d", st.Messages, transfers)
	}
	if st.BytesSent != units.Bytes(transfers)*size {
		t.Errorf("BytesSent = %d, want %d", st.BytesSent, units.Bytes(transfers)*size)
	}
	if got, want := float64(st.BusyTime), float64(transfers)*per; math.Abs(got-want) > 1e-9 {
		t.Errorf("BusyTime = %v, want %v", got, want)
	}
	if got := l.FreeAt(); float64(got) != float64(ends[transfers-1]) {
		t.Errorf("FreeAt = %v, want %v", got, ends[transfers-1])
	}
	if !l.Idle() {
		t.Error("link not idle at last completion time")
	}
	// Saturated utilization: busy the whole span, to float precision.
	if util := float64(st.BusyTime) / float64(e.Now()); math.Abs(util-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", util)
	}
}

// TestZeroByteTransfer sends an empty message: it still costs one link
// latency, counts as a message, and moves no bytes.
func TestZeroByteTransfer(t *testing.T) {
	e, _, _, l := pair(t)
	fired := false
	end := l.Send(0, func() { fired = true })
	if got, want := float64(end), float64(l.Params().Latency); math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-byte transfer ends at %v, want latency %v", got, want)
	}
	e.AdvanceTo(end)
	if !fired {
		t.Error("done callback did not fire")
	}
	st := l.Stats()
	if st.Messages != 1 || st.BytesSent != 0 {
		t.Errorf("stats = %+v, want one message, zero bytes", st)
	}
	if !l.Idle() {
		t.Error("link not idle after zero-byte transfer")
	}
}

// runScriptedWorkload builds a fresh node pair and pushes a fixed
// mixed-size transfer script through the link, returning a summary
// string of every observable (completion times, stats, endpoint
// energy). Used to prove concurrent simulations do not share state.
func runScriptedWorkload(t *testing.T) string {
	t.Helper()
	e, a, b, l := pair(t)
	sizes := []units.Bytes{0, units.KiB, 11 * units.MiB, 512, 110 * units.MiB, 0, units.GiB}
	var ends []sim.Time
	for _, n := range sizes {
		ends = append(ends, l.Send(n, nil))
	}
	e.AdvanceTo(ends[len(ends)-1] + 1)
	st := l.Stats()
	return fmt.Sprintf("ends=%v stats=%+v energyA=%.6f energyB=%.6f",
		ends, st, float64(a.Bus.SystemEnergy()), float64(b.Bus.SystemEnergy()))
}

// TestConcurrentSimulationsDeterministic runs the same scripted
// workload on many engines in parallel goroutines and requires every
// run to observe identical results — under -race this also proves the
// netio/node/sim/power stack keeps no shared mutable globals.
func TestConcurrentSimulationsDeterministic(t *testing.T) {
	const runs = 8
	results := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runScriptedWorkload(t)
		}(i)
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if results[i] != results[0] {
			t.Errorf("run %d diverged:\n  got  %s\n  want %s", i, results[i], results[0])
		}
	}
}

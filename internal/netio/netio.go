// Package netio models the cluster interconnect for the paper's
// Future Work multi-node study ("evaluation on a multi-node system to
// study the effect of network I/O in addition to disk I/O"): a
// point-to-point link with bandwidth, latency, and NIC power on both
// endpoints, serialized FCFS like a real TX queue.
package netio

import (
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// LinkParams describes one link.
type LinkParams struct {
	// Bandwidth in bytes/s (effective, after protocol overhead).
	Bandwidth float64
	// Latency is the one-way propagation + stack latency per message.
	Latency units.Seconds
	// NICIdle is each endpoint NIC's idle draw; NICActive is its draw
	// while a transfer is in flight.
	NICIdle, NICActive units.Watts
}

// TenGigE returns an effective 10 GbE link: ~1.1 GB/s, 50 µs, NICs at
// 4 W idle / 9 W active.
func TenGigE() LinkParams {
	return LinkParams{
		Bandwidth: 1.1e9,
		Latency:   50 * units.Microsecond,
		NICIdle:   4,
		NICActive: 9,
	}
}

// LinkStats aggregates traffic.
type LinkStats struct {
	Messages  uint64
	BytesSent units.Bytes
	BusyTime  units.Seconds
}

// Link is a serialized point-to-point connection between two nodes on
// the same engine. Each node gets a "nic" power domain on its bus.
type Link struct {
	params LinkParams
	engine *sim.Engine
	tx     *sim.Resource
	nicA   *power.Domain
	nicB   *power.Domain
	stats  LinkStats
}

// Connect attaches a link between two nodes. Both nodes must share one
// engine (node.NewOnEngine); Connect panics otherwise.
func Connect(a, b *node.Node, params LinkParams) *Link {
	if a.Engine != b.Engine {
		panic("netio: linked nodes must share an engine")
	}
	if params.Bandwidth <= 0 || params.Latency < 0 {
		panic("netio: link needs positive bandwidth and non-negative latency")
	}
	l := &Link{
		params: params,
		engine: a.Engine,
		tx:     sim.NewResource(a.Engine),
		nicA:   a.Bus.NewDomain("nic", params.NICIdle),
		nicB:   b.Bus.NewDomain("nic", params.NICIdle),
	}
	return l
}

// Params returns the link configuration.
func (l *Link) Params() LinkParams { return l.params }

// Stats returns a copy of the traffic counters.
func (l *Link) Stats() LinkStats { return l.stats }

// TransferTime returns the serialized cost of moving n bytes.
func (l *Link) TransferTime(n units.Bytes) units.Seconds {
	return l.params.Latency + units.TransferTime(n, l.params.Bandwidth)
}

// Send enqueues a transfer of n bytes and returns its completion time;
// done (optional) fires then. NIC power on both ends is raised for the
// busy interval. Send never advances the clock; a sender that blocks on
// delivery passes the returned time to Engine.AdvanceTo.
func (l *Link) Send(n units.Bytes, done func()) sim.Time {
	if n < 0 {
		panic("netio: negative transfer size")
	}
	service := l.TransferTime(n)
	start, end := l.tx.Submit(service, done)
	l.stats.Messages++
	l.stats.BytesSent += n
	l.stats.BusyTime += service

	at := func(t sim.Time, level units.Watts) {
		set := func() {
			l.nicA.SetLevel(level)
			l.nicB.SetLevel(level)
		}
		if t <= l.engine.Now() {
			set()
			return
		}
		l.engine.At(t, set)
	}
	at(start, l.params.NICActive)
	l.engine.At(end, func() {
		if l.tx.FreeAt() <= end {
			l.nicA.SetLevel(l.params.NICIdle)
			l.nicB.SetLevel(l.params.NICIdle)
		}
	})
	return end
}

// Idle reports whether no transfer is queued or in flight.
func (l *Link) Idle() bool { return l.tx.Idle() }

// FreeAt returns when the link next becomes idle.
func (l *Link) FreeAt() sim.Time { return l.tx.FreeAt() }

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastPipelineSpec is a real run cheap enough for tests: the in-situ
// pipeline at minimal host fidelity (~0.2 s wall).
func fastPipelineSpec() JobSpec {
	return JobSpec{Pipeline: "insitu", Case: 3, RealSubsteps: 1}
}

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(opts)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return srv, m
}

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (jobView, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var view jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode job view: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return view, resp
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func waitJobState(t *testing.T, srv *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var view jobView
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/v1/jobs/"+id, &view)
		if view.State == want {
			return
		}
		if view.State.Terminal() {
			t.Fatalf("job %s terminal in %s (error %q), want %s", id, view.State, view.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", id, view.State, want)
}

// TestAPIConcurrentIdenticalSubmits is the headline acceptance
// criterion: 8 concurrent identical submits cost exactly one pipeline
// execution and serve 8 byte-identical report bodies.
func TestAPIConcurrentIdenticalSubmits(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 4})

	ids := make([]string, 8)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			view, resp := postJob(t, srv, fastPipelineSpec())
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()

	var bodies [][]byte
	for _, id := range ids {
		waitJobState(t, srv, id, StateDone)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatalf("GET report: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %s: status %d: %s", id, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("pipeline report content-type %q", ct)
		}
		bodies = append(bodies, body)
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("report %d differs from report 0", i+1)
		}
	}
	if got := m.Metrics.Executions.Load(); got != 1 {
		t.Errorf("Executions = %d, want exactly 1 for 8 identical submits", got)
	}
	if got := m.Metrics.Submitted.Load(); got != 8 {
		t.Errorf("Submitted = %d, want 8", got)
	}

	// The report round-trips as a RunResult.
	var decoded map[string]any
	if err := json.Unmarshal(bodies[0], &decoded); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if decoded["pipeline"] != "in-situ" {
		t.Errorf("report pipeline = %v, want in-situ", decoded["pipeline"])
	}
}

// TestAPIEventsSSE pins the live-progress contract: the SSE stream
// replays and follows the job's deterministic event sequence — one
// "stage" event per engine stage, in execution order, between the
// lifecycle events.
func TestAPIEventsSSE(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	view, resp := postJob(t, srv, fastPipelineSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	stream, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	var events []Event
	scanner := bufio.NewScanner(stream.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Terminal() {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}

	var got []string
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		switch ev.Type {
		case "run":
			got = append(got, "run:"+ev.Run)
		case "stage":
			got = append(got, "stage:"+ev.Stage)
		default:
			got = append(got, ev.Type)
		}
	}
	want := []string{"queued", "running", "run:in-situ", "stage:simulation", "stage:visualization", "done"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("event sequence:\n got %v\nwant %v", got, want)
	}

	// Replay: a subscriber arriving after completion sees the same
	// sequence from the log.
	replay, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("GET events replay: %v", err)
	}
	body, _ := io.ReadAll(replay.Body) // closed log: stream ends at terminal event
	replay.Body.Close()
	if n := strings.Count(string(body), "data: "); n != len(events) {
		t.Errorf("replay streamed %d events, want %d", n, len(events))
	}
}

// TestAPIErrors covers the error-path status codes.
func TestAPIErrors(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 1})

	// Bad spec: 400.
	_, resp := postJob(t, srv, JobSpec{Experiment: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", resp.StatusCode)
	}
	// Malformed body: 400.
	r2, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", r2.StatusCode)
	}
	// Unknown fields: 400 (catches typos like "experimnt").
	r3, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"experimnt":"fig4"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", r3.StatusCode)
	}

	// Unknown job: 404 on status, report, events, cancel.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/report", "/v1/jobs/job-999999/events"} {
		if resp := getJSON(t, srv.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Report before done: 409. Use a stub runner that blocks.
	stub := &stubRunner{block: make(chan struct{}), report: []byte("r")}
	m.run = stub.run
	view, resp := postJob(t, srv, JobSpec{Experiment: "fig4"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+view.ID+"/report", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("report before done: status %d, want 409", resp.StatusCode)
	}

	// Cancel over HTTP: DELETE, then the job reports canceled.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("DELETE: status %d, want 200", dresp.StatusCode)
	}
	waitJobState(t, srv, view.ID, StateCanceled)
	close(stub.block)
}

// TestAPIRegistriesAndMetrics covers the listing and metrics endpoints.
func TestAPIRegistriesAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})

	var exps []struct{ ID, Description string }
	getJSON(t, srv.URL+"/v1/experiments", &exps)
	if len(exps) == 0 || exps[1].ID != "fig4" {
		t.Errorf("experiments listing: %+v", exps)
	}
	var pipes []struct {
		Flag      string
		Clustered bool
	}
	getJSON(t, srv.URL+"/v1/pipelines", &pipes)
	if len(pipes) != 4 || pipes[1].Flag != "insitu" || !pipes[3].Clustered {
		t.Errorf("pipelines listing: %+v", pipes)
	}

	view, _ := postJob(t, srv, fastPipelineSpec())
	waitJobState(t, srv, view.ID, StateDone)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"greenvizd_jobs_submitted_total 1",
		"greenvizd_executions_total 1",
		"greenvizd_jobs_completed_total 1",
		"greenvizd_cache_entries 1",
		fmt.Sprintf("greenvizd_stage_virtual_seconds_total{stage=%q}", "simulation"),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Job listing shows the job in submission order, wrapped in the
	// pagination envelope.
	var page jobsPage
	getJSON(t, srv.URL+"/v1/jobs", &page)
	if len(page.Jobs) != 1 || page.Jobs[0].ID != view.ID || page.Jobs[0].State != StateDone {
		t.Errorf("jobs listing: %+v", page)
	}
	if page.Next != "" {
		t.Errorf("single-page listing has next cursor %q", page.Next)
	}

	// pprof is mounted.
	if resp := getJSON(t, srv.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof: status %d", resp.StatusCode)
	}
}

// TestAPIExperimentReportMatchesCLI: an experiment job's report bytes
// are the exact CLI stdout block — the golden-gated Report.Block().
func TestAPIExperimentReportMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig4 at reduced fidelity")
	}
	srv, _ := newTestServer(t, Options{Workers: 1})

	// Reduced fidelity keeps the test fast; determinism still holds at
	// any fidelity, so equal specs yield equal bytes.
	spec := JobSpec{Experiment: "fig4", RealSubsteps: 1}
	view, resp := postJob(t, srv, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitJobState(t, srv, view.ID, StateDone)

	rresp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if ct := rresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("experiment report content-type %q", ct)
	}
	if !strings.HasPrefix(string(body), "== fig4 ==\n") {
		t.Errorf("report does not open with the CLI block header:\n%.80s", body)
	}
	if rresp.Header.Get("X-Job-Digest") != view.Digest {
		t.Errorf("report digest header mismatch")
	}
}

// TestPprofEndpoints smoke-tests the mounted /debug/pprof handlers the
// profiling harness (scripts/profile.sh, make profile) relies on for
// live daemons: the index page lists the standard profiles, and the
// heap and allocs profiles serve readable text in debug mode. The CPU
// profile endpoint is skipped — it blocks for its sampling window.
func TestPprofEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index: status %d", code)
	} else {
		for _, profile := range []string{"heap", "goroutine", "allocs"} {
			if !strings.Contains(body, profile) {
				t.Errorf("pprof index does not list %q", profile)
			}
		}
	}
	for _, path := range []string{
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/allocs?debug=1",
		"/debug/pprof/goroutine?debug=1",
	} {
		code, body := get(path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d", path, code)
			continue
		}
		if !strings.Contains(body, "profile") && !strings.Contains(body, "goroutine") {
			t.Errorf("%s: unrecognized body prefix %.60q", path, body)
		}
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", code)
	}
}

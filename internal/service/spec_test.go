package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

func TestNormalizedDefaults(t *testing.T) {
	n, err := JobSpec{Experiment: "fig4"}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if n.Kind != KindExperiment {
		t.Errorf("kind = %q, want experiment", n.Kind)
	}
	if n.Seed != 1 || n.RealSubsteps != 16 || n.FioGiB != 4 {
		t.Errorf("defaults = seed %d substeps %d fio %d, want 1/16/4", n.Seed, n.RealSubsteps, n.FioGiB)
	}

	p, err := JobSpec{Pipeline: "insitu"}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if p.Kind != KindPipeline || p.App != "heat" || p.Device != "hdd" || p.Case != 1 {
		t.Errorf("pipeline defaults = %+v", p)
	}
}

func TestNormalizedRejects(t *testing.T) {
	bad := []JobSpec{
		{},                                       // neither kind
		{Experiment: "fig4", Pipeline: "insitu"}, // both
		{Experiment: "nope"},                     // unknown id
		{Experiment: "all"},                      // not submittable
		{Pipeline: "warp"},                       // unknown pipeline
		{Pipeline: "insitu", Case: 99},           // case out of range
		{Pipeline: "insitu", App: "doom"},        // unknown app
		{Pipeline: "insitu", Device: "floppy"},   // unknown device
		{Experiment: "fig4", Device: "ssd"},      // cross-kind field
		{Experiment: "fig4", RealSubsteps: -1},   // bad substeps
		{Experiment: "fig4", Faults: "bogus"},    // bad fault spec
		{Kind: "party", Experiment: "fig4"},      // unknown kind
		{Kind: KindPipeline, Experiment: "fig4"}, // kind/field mismatch
		{Experiment: "table3", FioGiB: -2},       // bad fio size
		{Experiment: "fig4", PowerCapWatts: 50},  // pipeline knob on experiment
		{Experiment: "fig4", InsituNoSync: true}, // pipeline knob on experiment
		{Pipeline: "post", PowerCapWatts: -1},    // negative cap
		{Pipeline: "post", PowerCapWatts: 2e4},   // absurd cap
		{Pipeline: "insitu", CinemaVariants: 65}, // over variant cap
	}
	for _, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("Normalized(%+v) accepted, want error", s)
		}
	}
}

// TestDigestCanonical pins the content-address contract: explicit
// defaults and elided defaults are the same job.
func TestDigestCanonical(t *testing.T) {
	zero, err := JobSpec{Experiment: "fig4"}.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	full, err := JobSpec{
		Kind: KindExperiment, Experiment: "fig4",
		Seed: 1, RealSubsteps: 16, FioGiB: 4,
	}.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	if zero != full {
		t.Errorf("elided defaults digest %s != explicit defaults digest %s", zero, full)
	}
	if len(zero) != 64 || strings.Trim(zero, "0123456789abcdef") != "" {
		t.Errorf("digest %q is not hex sha256", zero)
	}
}

// TestDigestSensitivity: every spec knob that changes the run must
// change the address.
func TestDigestSensitivity(t *testing.T) {
	base := JobSpec{Pipeline: "insitu", Case: 3}
	baseDigest, err := base.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	variants := map[string]JobSpec{
		"pipeline": {Pipeline: "post", Case: 3},
		"case":     {Pipeline: "insitu", Case: 2},
		"app":      {Pipeline: "insitu", Case: 3, App: "ocean"},
		"device":   {Pipeline: "insitu", Case: 3, Device: "ssd"},
		"seed":     {Pipeline: "insitu", Case: 3, Seed: 7},
		"substeps": {Pipeline: "insitu", Case: 3, RealSubsteps: 2},
		"faults":   {Pipeline: "insitu", Case: 3, Faults: "bitrot=1e-9"},
		"kind":     {Experiment: "fig4"},
		// The campaign sweep knobs are all digest-affecting: the power
		// cap via its explicit canonical line, the ablation knobs via the
		// config's canonical "knobs" form.
		"power_cap":        {Pipeline: "insitu", Case: 3, PowerCapWatts: 80},
		"insitu_nosync":    {Pipeline: "insitu", Case: 3, InsituNoSync: true},
		"compress_insitu":  {Pipeline: "insitu", Case: 3, CompressInsitu: true},
		"async_checkpoint": {Pipeline: "insitu", Case: 3, AsyncCheckpoint: true},
		"cinema_variants":  {Pipeline: "insitu", Case: 3, CinemaVariants: 2},
	}
	for name, v := range variants {
		d, err := v.Digest()
		if err != nil {
			t.Fatalf("%s: Digest: %v", name, err)
		}
		if d == baseDigest {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

// TestDigestKernelWorkersInvariant pins the cache-key normalization of
// the tentpole knob: worker count never changes output bytes, so
// submits differing only in kernel_workers must collapse onto one
// content address — for pipeline and experiment jobs alike.
func TestDigestKernelWorkersInvariant(t *testing.T) {
	for name, base := range map[string]JobSpec{
		"pipeline":   {Pipeline: "insitu", Case: 3},
		"ocean":      {Pipeline: "post", App: "ocean"},
		"experiment": {Experiment: "fig4"},
	} {
		ref, err := base.Digest()
		if err != nil {
			t.Fatalf("%s: Digest: %v", name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			v := base
			v.KernelWorkers = workers
			d, err := v.Digest()
			if err != nil {
				t.Fatalf("%s workers=%d: Digest: %v", name, workers, err)
			}
			if d != ref {
				t.Errorf("%s: kernel_workers=%d changed the digest", name, workers)
			}
		}
	}
	if _, err := (JobSpec{Pipeline: "post", KernelWorkers: -1}).Digest(); err == nil {
		t.Error("negative kernel_workers passed validation")
	}
}

// TestDigestMatchesFmtReference pins the digest preimage to the
// fmt.Fprintf formulation the strconv appender replaced: any textual
// drift in the header or canonical form would silently re-key the
// whole result cache.
func TestDigestMatchesFmtReference(t *testing.T) {
	specs := []JobSpec{
		{Pipeline: "insitu", Case: 3},
		{Pipeline: "post", App: "ocean", Device: "ssd", Seed: 7, PowerCapWatts: 42.5},
		{Pipeline: "hybrid", Faults: "bitrot=0.01,readerr=0.001", CinemaVariants: 3},
		{Experiment: "fig4"},
		{Pipeline: "intransit", InsituNoSync: true, CompressInsitu: true, AsyncCheckpoint: true},
	}
	for _, s := range specs {
		n, err := s.Normalized()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		cfg, err := n.Config()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "v1 kind:%s exp:%s pipe:%s app:%s dev:%s case:%d seed:%d real:%d fio:%d faults:%q pcap:%g\n",
			n.Kind, n.Experiment, n.Pipeline, n.App, n.Device, n.Case, n.Seed, n.RealSubsteps, n.FioGiB, n.Faults, n.PowerCapWatts)
		buf.WriteString("cfg:")
		cfg.WriteCanonical(&buf)
		sum := sha256.Sum256(buf.Bytes())
		want := hex.EncodeToString(sum[:])

		got, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec %+v: digest %s != fmt reference %s", s, got, want)
		}
		gotN, err := n.DigestNormalized()
		if err != nil {
			t.Fatal(err)
		}
		if gotN != want {
			t.Errorf("spec %+v: DigestNormalized %s != fmt reference %s", s, gotN, want)
		}
	}
}

package service

import (
	"context"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// events.go is the live progress side of the service: every execution
// owns an append-only event log that SSE subscribers replay and then
// follow. Events come from two sources — the manager's lifecycle
// transitions (queued, running, done/failed/canceled) and the run's
// telemetry stream, which the execution's consumer coalesces to one
// "stage" event per distinct engine stage, in first execution order.
// Because runs are deterministic, so is the event sequence a job
// emits.

// Event is one SSE payload.
type Event struct {
	// Seq numbers events from 1 within one execution.
	Seq int `json:"seq"`
	// Type is "queued", "running", "run", "stage", "done", "failed",
	// or "canceled".
	Type string `json:"type"`
	// Run is the pipeline spec name ("post-processing", "in-situ", ...)
	// on "run" events: one per underlying engine run, so experiment
	// jobs show each shared run they trigger.
	Run string `json:"run,omitempty"`
	// Stage is the engine stage's phase name on "stage" events
	// ("simulation", "nnwrite", ...), emitted once per distinct stage.
	Stage string `json:"stage,omitempty"`
	// At is the virtual time of the stage's first completion.
	At units.Seconds `json:"at,omitempty"`
	// Error carries the failure reason on "failed" events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether this event closes the stream.
func (e Event) Terminal() bool {
	switch e.Type {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// eventLog is an append-only, closable event sequence supporting
// replay-then-follow subscribers. The zero value is not usable; use
// newEventLog.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	closed bool
	wake   chan struct{} // closed and replaced on every append
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// emit appends one event, assigning its sequence number. Terminal
// events close the log; emits after close are dropped (a canceled
// execution may race its own completion).
func (l *eventLog) emit(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = len(l.events) + 1
	l.events = append(l.events, ev)
	if ev.Terminal() {
		l.closed = true
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// after returns the events past idx, whether the log is closed, and a
// channel that is closed on the next append — the subscriber's wait
// primitive.
func (l *eventLog) after(idx int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if idx > len(l.events) {
		idx = len(l.events)
	}
	return l.events[idx:], l.closed, l.wake
}

// snapshot returns a copy of all events so far.
func (l *eventLog) snapshot() []Event {
	evs, _, _ := l.after(0)
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

// len returns the number of events emitted so far.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// jobCanceled is the sentinel the execution's telemetry consumer
// panics with to abort a run mid-flight; the manager's worker recovers
// it and finalizes the job as canceled. It deliberately never escapes
// the package: safeRun translates it to context.Canceled.
type jobCanceled struct{}

// jobTelemetry is the execution's telemetry consumer: it streams
// coalesced progress into the event log, accumulates per-stage virtual
// seconds and metered joules (and fault-injection counts) into the
// service metrics, and aborts the run (by panicking with jobCanceled)
// once the execution's context is canceled — every telemetry event is
// a cancellation point, the only way to stop a pipeline mid-run
// without threading a context through the deterministic core.
type jobTelemetry struct {
	ctx context.Context
	log *eventLog
	met *Metrics

	mu   sync.Mutex
	seen map[string]bool
}

func newJobTelemetry(ctx context.Context, log *eventLog, met *Metrics) *jobTelemetry {
	return &jobTelemetry{ctx: ctx, log: log, met: met, seen: map[string]bool{}}
}

// Consume implements telemetry.Consumer.
func (o *jobTelemetry) Consume(ev telemetry.Event) {
	if o.ctx.Err() != nil {
		panic(jobCanceled{})
	}
	switch ev.Kind {
	case telemetry.KindRunStart:
		o.log.emit(Event{Type: "run", Run: ev.Run})
	case telemetry.KindStageDone:
		o.met.addStageTime(ev.Stage, ev.End-ev.Start)
		if ev.HasEnergy {
			o.met.addStageEnergy(ev.Stage, ev.EndEnergy-ev.StartEnergy)
		}
		o.mu.Lock()
		first := !o.seen[ev.Stage]
		o.seen[ev.Stage] = true
		o.mu.Unlock()
		if first {
			o.log.emit(Event{Type: "stage", Stage: ev.Stage, At: ev.End})
		}
	case telemetry.KindFaultInjected:
		o.met.FaultsInjected.Add(1)
	}
}

// Package service is greenviz as a long-running system: a job manager
// with a bounded worker pool and a backpressured submit queue, a
// content-addressed result cache with singleflight dedup (N identical
// concurrent submits cost one underlying run), and an HTTP API on the
// standard library — job submission, status, deterministic report
// bytes, live per-stage progress over SSE, registry listings, plain
// text metrics, and pprof. cmd/greenvizd wraps it in a daemon with
// graceful drain.
//
// The serving model follows the live, steerable endpoints that make
// in-situ pipelines useful at scale (ISAAC, arXiv:1611.09048;
// Kageyama & Yamada's interactive exascale viewing): results and
// progress are exposed while jobs run, not dumped in batch at exit.
//
// Determinism is the load-bearing property end to end: a job spec
// normalizes to a canonical form, the canonical form digests to the
// cache key, and equal keys serve byte-identical report bodies — an
// experiment job's report is the exact stdout block the CLI prints
// (golden-digest gated), a pipeline job's report the CLI's -format
// json encoding.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
)

// JobSpec is the JSON body of POST /v1/jobs: either an experiment job
// (regenerate one registered artifact) or a pipeline job (run one
// pipeline configuration). Zero fields take the CLI's defaults, so
// {"experiment":"fig4"} reproduces `greenviz -experiment fig4`
// exactly — including its golden digest.
type JobSpec struct {
	// Kind is "experiment" or "pipeline"; empty infers it from which
	// of Experiment/Pipeline is set.
	Kind string `json:"kind,omitempty"`

	// Experiment is a registry ID ("fig4", "table3", ...); see
	// GET /v1/experiments.
	Experiment string `json:"experiment,omitempty"`

	// Pipeline is a pipeline flag name ("post", "insitu", "intransit",
	// "hybrid"); see GET /v1/pipelines.
	Pipeline string `json:"pipeline,omitempty"`
	// App selects the proxy application ("heat", "ocean").
	App string `json:"app,omitempty"`
	// Device selects the storage stack ("hdd", "ssd", "raid4", "nvram").
	Device string `json:"device,omitempty"`
	// Case is the case-study number (1..3).
	Case int `json:"case,omitempty"`

	// Seed is the master seed (default 1, like the CLI).
	Seed uint64 `json:"seed,omitempty"`
	// RealSubsteps bounds host fidelity (default 16, like the CLI).
	RealSubsteps int `json:"real_substeps,omitempty"`
	// FioGiB sizes the Table III fio files (default 4).
	FioGiB int `json:"fio_gib,omitempty"`
	// Faults is the CLI's -faults spec string (empty: injection off).
	Faults string `json:"faults,omitempty"`
	// KernelWorkers caps the intra-step data parallelism of the hot
	// kernels (0 = GOMAXPROCS), like the CLI's -kernel-workers. Output
	// bytes are identical at any setting, so it is excluded from the
	// job's content address: submits differing only here share one
	// cached result.
	KernelWorkers int `json:"kernel_workers,omitempty"`

	// PowerCapWatts, when positive, applies a RAPL PL1-style package
	// power limit to the platform (pipeline jobs only): the CPU model
	// throttles its DVFS operating point to hold package power at the
	// cap, stretching compute phases. This is the frequency axis of a
	// campaign sweep; it changes run output, so it is part of the
	// content address.
	PowerCapWatts float64 `json:"power_cap_watts,omitempty"`

	// The ablation knobs below map one-to-one onto AppConfig fields
	// (pipeline jobs only) so campaigns can sweep them; all are part of
	// the content address via the config's canonical form.
	//
	// InsituNoSync skips the in-situ pipeline's per-frame fsync.
	InsituNoSync bool `json:"insitu_nosync,omitempty"`
	// CompressInsitu DEFLATE-compresses the in-situ reduced product.
	CompressInsitu bool `json:"compress_insitu,omitempty"`
	// AsyncCheckpoint lets post-processing checkpoints drain in the
	// background instead of fsyncing each one.
	AsyncCheckpoint bool `json:"async_checkpoint,omitempty"`
	// CinemaVariants renders that many extra parameterized views per
	// in-situ event (0 = off; max 64).
	CinemaVariants int `json:"cinema_variants,omitempty"`
}

// Job kinds.
const (
	KindExperiment = "experiment"
	KindPipeline   = "pipeline"
)

// Normalized returns the spec with defaults applied and every field
// validated, or an error describing the first problem. Two specs that
// normalize equal are the same job: Digest hashes the normalized form.
func (s JobSpec) Normalized() (JobSpec, error) {
	n := s
	if n.Kind == "" {
		switch {
		case n.Experiment != "" && n.Pipeline == "":
			n.Kind = KindExperiment
		case n.Pipeline != "" && n.Experiment == "":
			n.Kind = KindPipeline
		default:
			return n, fmt.Errorf("spec needs exactly one of experiment or pipeline")
		}
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.RealSubsteps == 0 {
		n.RealSubsteps = 16
	}
	if n.RealSubsteps < 0 || n.RealSubsteps > core.DefaultAppConfig().SubstepsPerIteration {
		return n, fmt.Errorf("real_substeps %d out of range", n.RealSubsteps)
	}
	if n.FioGiB == 0 {
		n.FioGiB = 4
	}
	if n.FioGiB < 0 || n.FioGiB > 1024 {
		return n, fmt.Errorf("fio_gib %d out of range", n.FioGiB)
	}
	if _, err := fault.ParseSpec(n.Faults); err != nil {
		return n, fmt.Errorf("faults: %w", err)
	}
	if n.KernelWorkers < 0 || n.KernelWorkers > 1024 {
		return n, fmt.Errorf("kernel_workers %d out of range 0..1024", n.KernelWorkers)
	}
	if n.PowerCapWatts < 0 || n.PowerCapWatts > 1e4 {
		return n, fmt.Errorf("power_cap_watts %g out of range 0..10000", n.PowerCapWatts)
	}
	if n.CinemaVariants < 0 || n.CinemaVariants > 64 {
		return n, fmt.Errorf("cinema_variants %d out of range 0..64", n.CinemaVariants)
	}

	switch n.Kind {
	case KindExperiment:
		if n.Pipeline != "" || n.App != "" || n.Device != "" || n.Case != 0 {
			return n, fmt.Errorf("experiment jobs take no pipeline fields")
		}
		if n.PowerCapWatts != 0 || n.InsituNoSync || n.CompressInsitu || n.AsyncCheckpoint || n.CinemaVariants != 0 {
			return n, fmt.Errorf("experiment jobs take no pipeline knobs (power cap, nosync, compress, async, cinema)")
		}
		if n.Experiment == "all" {
			return n, fmt.Errorf("submit experiments individually (see GET /v1/experiments)")
		}
		if _, err := experiments.ByID(n.Experiment); err != nil {
			return n, err
		}
	case KindPipeline:
		if n.Experiment != "" {
			return n, fmt.Errorf("pipeline jobs take no experiment field")
		}
		if _, err := core.PipelineByFlag(n.Pipeline); err != nil {
			return n, err
		}
		if n.App == "" {
			n.App = "heat"
		}
		if n.Device == "" {
			n.Device = "hdd"
		}
		if n.Case == 0 {
			n.Case = 1
		}
		if n.Case < 1 || n.Case > len(core.CaseStudies()) {
			return n, fmt.Errorf("case %d out of range 1..%d", n.Case, len(core.CaseStudies()))
		}
		cfg := core.DefaultAppConfig()
		if err := core.ConfigureApp(&cfg, n.App); err != nil {
			return n, err
		}
		if _, err := core.PlatformByFlag(n.Device); err != nil {
			return n, err
		}
	default:
		return n, fmt.Errorf("unknown kind %q", n.Kind)
	}
	return n, nil
}

// Config derives the run configuration a normalized spec describes —
// the same derivation the CLI performs from its flags.
func (s JobSpec) Config() (core.AppConfig, error) {
	cfg := core.DefaultAppConfig()
	if s.RealSubsteps > 0 {
		cfg.RealSubsteps = s.RealSubsteps
	}
	// KernelWorkers must land before ConfigureApp: the ocean preset
	// captures it when wiring its solver constructor.
	cfg.KernelWorkers = s.KernelWorkers
	cfg.InsituNoSync = s.InsituNoSync
	cfg.CompressInsitu = s.CompressInsitu
	cfg.AsyncCheckpoint = s.AsyncCheckpoint
	cfg.CinemaVariants = s.CinemaVariants
	if err := core.ConfigureApp(&cfg, s.App); err != nil {
		return cfg, err
	}
	fc, err := fault.ParseSpec(s.Faults)
	if err != nil {
		return cfg, err
	}
	cfg.Faults = fc
	return cfg, nil
}

// digestBufPool recycles the canonical-form buffer across Digest
// calls: every submit, cache probe, and dedup check digests a spec, so
// the normalization scratch should not be rebuilt per call.
var digestBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Digest returns the job's content address: a hex SHA-256 over the
// normalized spec's canonical form plus the canonical form of the
// config it derives. Identical digests mean identical report bytes, so
// the manager serves N equal submits from one execution. KernelWorkers
// is deliberately absent — it never changes output bytes.
func (s JobSpec) Digest() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	return n.DigestNormalized()
}

// DigestNormalized is Digest for a spec that is already in normalized
// form, skipping the re-validation pass. Callers that hold the output
// of Normalized — the campaign expander digests thousands of points
// per submit — use this; anyone else wants Digest.
func (s JobSpec) DigestNormalized() (string, error) {
	cfg, err := s.Config()
	if err != nil {
		return "", err
	}
	bp := digestBufPool.Get().(*[]byte)
	// The header is built with strconv appends producing byte-for-byte
	// the fmt form it replaced (spec_test.go pins the exact bytes):
	//   v1 kind:%s exp:%s pipe:%s app:%s dev:%s case:%d seed:%d real:%d fio:%d faults:%q pcap:%g\n
	// The ablation knobs (nosync, compress, async, cinema) reach the
	// digest through cfg's canonical form below; PowerCapWatts modifies
	// the platform rather than the config, so it is written explicitly.
	b := append((*bp)[:0], "v1 kind:"...)
	b = append(b, s.Kind...)
	b = append(b, " exp:"...)
	b = append(b, s.Experiment...)
	b = append(b, " pipe:"...)
	b = append(b, s.Pipeline...)
	b = append(b, " app:"...)
	b = append(b, s.App...)
	b = append(b, " dev:"...)
	b = append(b, s.Device...)
	b = append(b, " case:"...)
	b = strconv.AppendInt(b, int64(s.Case), 10)
	b = append(b, " seed:"...)
	b = strconv.AppendUint(b, s.Seed, 10)
	b = append(b, " real:"...)
	b = strconv.AppendInt(b, int64(s.RealSubsteps), 10)
	b = append(b, " fio:"...)
	b = strconv.AppendInt(b, int64(s.FioGiB), 10)
	b = append(b, " faults:"...)
	b = strconv.AppendQuote(b, s.Faults)
	b = append(b, " pcap:"...)
	b = strconv.AppendFloat(b, s.PowerCapWatts, 'g', -1, 64)
	b = append(b, "\ncfg:"...)
	b = cfg.AppendCanonical(b)
	sum := sha256.Sum256(b)
	*bp = b
	digestBufPool.Put(bp)
	return hex.EncodeToString(sum[:]), nil
}

// Describe returns a short human label for logs and listings.
func (s JobSpec) Describe() string {
	if s.Kind == KindPipeline {
		return fmt.Sprintf("pipeline %s app=%s device=%s case=%d seed=%d", s.Pipeline, s.App, s.Device, s.Case, s.Seed)
	}
	return fmt.Sprintf("experiment %s seed=%d", s.Experiment, s.Seed)
}

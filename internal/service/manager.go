package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resultstore"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is backpressure: the submit queue is at capacity.
	ErrQueueFull = errors.New("service: submit queue full")
	// ErrDraining rejects submits during graceful shutdown.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNoSuchJob is returned for unknown job IDs.
	ErrNoSuchJob = errors.New("service: no such job")
)

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// State is a job's lifecycle position.
type State string

// The job states. A job is terminal in StateDone, StateFailed, and
// StateCanceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// execution is one underlying run: the unit the cache content-
// addresses and the worker pool executes. Any number of jobs attach to
// one execution (singleflight); they share its event log and report
// bytes.
type execution struct {
	digest string
	spec   JobSpec // normalized
	log    *eventLog
	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	report     []byte
	err        error
	refs       int       // attached, un-canceled jobs
	finishedAt time.Time // when the execution went terminal
}

func (e *execution) getState() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Job is one accepted submission. Deduped jobs point at a shared
// execution; a job canceled while others remain attached detaches
// without stopping the run.
type Job struct {
	ID   string
	Spec JobSpec // normalized
	exec *execution

	// deduped records that Submit attached this job to an execution
	// that already existed (in-flight singleflight, memory cache, or
	// durable store) instead of starting a fresh run. The campaign
	// engine reads it to count run-vs-deduped points.
	deduped bool

	canceled   atomic.Bool
	canceledAt atomic.Int64 // unix nanos, set before canceled flips
}

// Deduped reports whether this submission was served by an existing
// execution (singleflight attach, cache hit, or store hit) rather than
// starting a run of its own.
func (j *Job) Deduped() bool { return j.deduped }

// State returns the job's effective state: its execution's, unless
// this job was individually canceled.
func (j *Job) State() State {
	if j.canceled.Load() {
		return StateCanceled
	}
	return j.exec.getState()
}

// Digest returns the job's content address.
func (j *Job) Digest() string { return j.exec.digest }

// Err returns the execution error for failed jobs ("" otherwise).
func (j *Job) Err() string {
	j.exec.mu.Lock()
	defer j.exec.mu.Unlock()
	if j.exec.err != nil {
		return j.exec.err.Error()
	}
	return ""
}

// Report returns the report bytes and true once the job is done.
func (j *Job) Report() ([]byte, bool) {
	j.exec.mu.Lock()
	defer j.exec.mu.Unlock()
	if j.exec.state != StateDone {
		return nil, false
	}
	return j.exec.report, true
}

// Events exposes the job's event log for SSE streaming.
func (j *Job) Events() *eventLog { return j.exec.log }

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the job's state either way. It rides the event log's wake
// channel, so waiting costs no polling; a job whose execution was
// already terminal (cache or store hit) returns immediately.
func (j *Job) Wait(ctx context.Context) State {
	idx := 0
	for {
		if st := j.State(); st.Terminal() {
			return st
		}
		events, closed, wake := j.exec.log.after(idx)
		idx += len(events)
		if closed {
			return j.State()
		}
		if len(events) == 0 {
			select {
			case <-wake:
			case <-ctx.Done():
				return j.State()
			}
		}
	}
}

// terminalAt returns when the job reached a terminal state, and
// whether it has: a job canceled individually uses its cancel time,
// otherwise its execution's finish time. Retention GC prunes on this.
func (j *Job) terminalAt() (time.Time, bool) {
	if j.canceled.Load() {
		return time.Unix(0, j.canceledAt.Load()), true
	}
	e := j.exec
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.state.Terminal() {
		return time.Time{}, false
	}
	return e.finishedAt, true
}

// Options sizes a Manager.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submit queue; a full queue rejects with
	// ErrQueueFull (default 64).
	QueueDepth int
	// MaxBodyBytes caps POST /v1/jobs request bodies; oversized
	// submissions are rejected with 413 (default 1 MiB).
	MaxBodyBytes int64
	// Store, when non-nil, persists finished reports to disk: submits
	// whose digest the store holds are served without re-executing
	// (surviving restarts), and Shutdown closes the store after the
	// pool drains. The manager owns the store once handed over.
	Store *resultstore.Store
	// JobRetention bounds the job table: terminal jobs older than
	// this are pruned by a background sweep (their executions stay
	// cached, or on disk via Store). 0 keeps every job forever —
	// the pre-retention behavior. Queued and running jobs are never
	// touched regardless of age.
	JobRetention time.Duration
	// SSEHeartbeat, when positive, makes idle SSE streams (/events on
	// jobs and campaigns) emit a `: heartbeat` comment at this interval
	// so proxies and load balancers don't drop long-lived watches. 0
	// disables heartbeats.
	SSEHeartbeat time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// runFunc executes one normalized spec and returns its report bytes.
// It is a field (not a call) so tests can substitute a controllable
// runner; the default is runSpec.
type runFunc func(ctx context.Context, spec JobSpec, tel *jobTelemetry) ([]byte, error)

// Manager owns the service state: the job table, the content-
// addressed execution cache, the bounded submit queue, and the worker
// pool. All methods are safe for concurrent use.
type Manager struct {
	opts    Options
	run     runFunc
	Metrics Metrics

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	cache    map[string]*execution
	nextID   int

	queue  chan *execution
	wg     sync.WaitGroup
	gcStop chan struct{} // non-nil iff the retention sweeper runs
}

// NewManager starts a manager, its worker pool, and — when a
// retention horizon is configured — the background job-table sweeper.
func NewManager(opts Options) *Manager {
	m := &Manager{
		opts:  opts.withDefaults(),
		run:   runSpec,
		jobs:  map[string]*Job{},
		cache: map[string]*execution{},
	}
	m.Metrics.startedAt = time.Now()
	m.queue = make(chan *execution, m.opts.QueueDepth)
	for i := 0; i < m.opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.opts.JobRetention > 0 {
		m.gcStop = make(chan struct{})
		m.wg.Add(1)
		go m.gcLoop()
	}
	return m
}

// Submit accepts a job spec: it normalizes and content-addresses it,
// then either attaches the new job to an existing execution (cache
// hit or in-flight singleflight) or enqueues a fresh execution.
// Returns ErrDraining during shutdown, a BadSpecError for invalid
// specs, and ErrQueueFull when backpressure applies.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.Normalized()
	if err != nil {
		m.Metrics.Rejected.Add(1)
		return nil, &BadSpecError{err}
	}
	digest, err := norm.Digest()
	if err != nil {
		m.Metrics.Rejected.Add(1)
		return nil, &BadSpecError{err}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.Metrics.Rejected.Add(1)
		return nil, ErrDraining
	}

	if e, ok := m.cache[digest]; ok {
		// Re-check the execution's state under its lock before
		// attaching: finish() marks an execution failed/canceled under
		// e.mu and only then takes m.mu to evict the digest, so a
		// submit landing in that window would otherwise attach to the
		// doomed execution and observe its stale error even though an
		// identical resubmit is supposed to retry. A terminal non-done
		// entry here is exactly that window — drop it and fall through
		// to a fresh execution (finish's own eviction is guarded by an
		// identity check, so it won't delete the replacement).
		e.mu.Lock()
		stale := e.state == StateFailed || e.state == StateCanceled
		if !stale {
			e.refs++
			done := e.state == StateDone
			e.mu.Unlock()
			job := m.newJobLocked(norm, e)
			job.deduped = true
			if done {
				m.Metrics.CacheHits.Add(1)
			} else {
				m.Metrics.Deduped.Add(1)
			}
			m.Metrics.Submitted.Add(1)
			return job, nil
		}
		e.mu.Unlock()
		delete(m.cache, digest)
	}

	// Not in memory: the durable store may hold the report from an
	// earlier run (possibly a previous process). A hit synthesizes an
	// already-done execution, so restarts serve warm results without
	// re-executing. The store read happens under m.mu — record bodies
	// are small report text, and holding the lock keeps the probe
	// atomic with cache insertion (no duplicate executions).
	if m.opts.Store != nil {
		if body, ok := m.opts.Store.Get(digest); ok {
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // nothing will run; the execution is born terminal
			e := &execution{
				digest:     digest,
				spec:       norm,
				log:        newEventLog(),
				ctx:        ctx,
				cancel:     cancel,
				state:      StateDone,
				report:     body,
				refs:       1,
				finishedAt: time.Now(),
			}
			e.log.emit(Event{Type: "done"})
			m.cache[digest] = e
			job := m.newJobLocked(norm, e)
			job.deduped = true
			m.Metrics.CacheHits.Add(1)
			m.Metrics.Submitted.Add(1)
			return job, nil
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	e := &execution{
		digest: digest,
		spec:   norm,
		log:    newEventLog(),
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
		refs:   1,
	}
	select {
	case m.queue <- e:
	default:
		cancel()
		m.Metrics.Rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.cache[digest] = e
	job := m.newJobLocked(norm, e)
	e.log.emit(Event{Type: "queued"})
	m.Metrics.Submitted.Add(1)
	return job, nil
}

// newJobLocked allocates the next job ID; m.mu must be held.
func (m *Manager) newJobLocked(spec JobSpec, e *execution) *Job {
	m.nextID++
	job := &Job{ID: fmt.Sprintf("job-%06d", m.nextID), Spec: spec, exec: e}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	return job
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// JobsPage returns up to limit jobs in submission order, starting
// after the job with ID after ("" starts at the beginning), plus the
// cursor to pass as after for the following page ("" when this page
// exhausts the table). Job IDs are monotonic and the order slice is
// sorted, so the cursor is stable even as retention GC prunes old
// entries. limit <= 0 means no limit.
func (m *Manager) JobsPage(after string, limit int) ([]*Job, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := 0
	if after != "" {
		start = sort.SearchStrings(m.order, after)
		if start < len(m.order) && m.order[start] == after {
			start++
		}
	}
	end := len(m.order)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	out := make([]*Job, 0, end-start)
	for _, id := range m.order[start:end] {
		out = append(out, m.jobs[id])
	}
	next := ""
	if end < len(m.order) && end > start {
		next = m.order[end-1]
	}
	return out, next
}

// Cancel cancels one job. If other jobs share its execution the run
// continues for them and only this job reports canceled; the last
// attached job aborts the execution (queued executions are skipped by
// the worker, running ones stop at their next stage boundary via the
// observer). Canceling a terminal job is a no-op returning its state.
func (m *Manager) Cancel(id string) (State, error) {
	job, err := m.Job(id)
	if err != nil {
		return "", err
	}
	if st := job.State(); st.Terminal() {
		return st, nil
	}
	job.canceledAt.Store(time.Now().UnixNano()) // before the flag flips, so GC never reads zero
	if job.canceled.CompareAndSwap(false, true) {
		e := job.exec
		e.mu.Lock()
		e.refs--
		last := e.refs <= 0
		e.mu.Unlock()
		if last {
			e.cancel()
		}
	}
	return StateCanceled, nil
}

// QueueDepth reports the submit queue's current length.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// CacheEntries reports the number of content-addressed executions.
func (m *Manager) CacheEntries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// JobCount reports the number of tracked (un-retired) jobs.
func (m *Manager) JobCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Store exposes the durable result store, or nil when persistence is
// disabled. The campaign engine persists its own state records (point
// statuses + aggregate) in the same store, keyed under the campaign's
// content address, so campaigns survive daemon restarts alongside the
// job reports they depend on. The manager still owns the store's
// lifecycle; callers must tolerate ErrClosed after Shutdown.
func (m *Manager) Store() *resultstore.Store { return m.opts.Store }

// SSEHeartbeat reports the configured idle-stream heartbeat interval
// (0 = disabled), so secondary APIs (campaigns) serve SSE with the
// same liveness contract as the job endpoints.
func (m *Manager) SSEHeartbeat() time.Duration { return m.opts.SSEHeartbeat }

// StoreStats snapshots the durable store's counters (zero without a
// store).
func (m *Manager) StoreStats() resultstore.Stats {
	if m.opts.Store == nil {
		return resultstore.Stats{}
	}
	return m.opts.Store.Stats()
}

// gcLoop periodically prunes terminal jobs past the retention
// horizon. The sweep interval tracks the horizon (a quarter of it,
// clamped) so eviction lag is proportional to the configured window.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	interval := m.opts.JobRetention / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			m.gc(now)
		case <-m.gcStop:
			return
		}
	}
}

// gc prunes jobs that have been terminal longer than the retention
// horizon, keeping the job table bounded on a long-lived daemon.
// Queued and running jobs are never pruned, whatever their age. Done
// executions left unreferenced by the pruning are dropped from the
// in-memory cache only when the durable store still holds their
// report (so a later identical submit is a store hit, not a re-run);
// without a store the execution cache keeps them, preserving the
// original dedup behavior. Returns the number of jobs retired.
func (m *Manager) gc(now time.Time) int {
	if m.opts.JobRetention <= 0 {
		return 0
	}
	cutoff := now.Add(-m.opts.JobRetention)
	m.mu.Lock()
	defer m.mu.Unlock()
	retired := 0
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if at, terminal := j.terminalAt(); terminal && at.Before(cutoff) {
			delete(m.jobs, id)
			retired++
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
	if retired == 0 {
		return 0
	}
	m.Metrics.Retired.Add(uint64(retired))
	if m.opts.Store != nil {
		referenced := make(map[*execution]bool, len(m.jobs))
		for _, j := range m.jobs {
			referenced[j.exec] = true
		}
		for d, e := range m.cache {
			if !referenced[e] && e.getState() == StateDone && m.opts.Store.Contains(d) {
				delete(m.cache, d)
			}
		}
	}
	return retired
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown drains the manager: new submits are rejected with
// ErrDraining immediately, queued and running executions finish, the
// retention sweeper stops, and Shutdown returns when the pool is
// idle. If ctx expires first the remaining executions are canceled
// (they stop at their next stage boundary) and ctx's error is
// returned after the pool exits. The durable store is closed last —
// after every in-flight finish() has had its chance to persist — so
// drained work survives to the next boot.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
		if m.gcStop != nil {
			close(m.gcStop)
		}
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		m.mu.Lock()
		for _, e := range m.cache {
			if !e.getState().Terminal() {
				e.cancel()
			}
		}
		m.mu.Unlock()
		<-idle
		err = ctx.Err()
	}
	if m.opts.Store != nil {
		m.opts.Store.Close()
	}
	return err
}

// worker drains the submit queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for e := range m.queue {
		m.execute(e)
	}
}

// execute runs one execution to a terminal state.
func (m *Manager) execute(e *execution) {
	if e.ctx.Err() != nil {
		m.finish(e, nil, context.Canceled)
		return
	}
	e.mu.Lock()
	e.state = StateRunning
	e.mu.Unlock()
	e.log.emit(Event{Type: "running"})
	m.Metrics.Running.Add(1)
	m.Metrics.Executions.Add(1)

	report, err := m.safeRun(e)
	m.Metrics.Running.Add(-1)
	m.finish(e, report, err)
}

// safeRun invokes the runner, translating the cancellation sentinel
// (and any runner panic — a misconfigured run must not take the
// daemon down) into an error.
func (m *Manager) safeRun(e *execution) (report []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(jobCanceled); ok || e.ctx.Err() != nil {
				err = context.Canceled
				return
			}
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	tel := newJobTelemetry(e.ctx, e.log, &m.Metrics)
	return m.run(e.ctx, e.spec, tel)
}

// finish moves an execution to its terminal state, emits the terminal
// event, updates counters, persists successful reports to the durable
// store, and — for anything but success — evicts the digest from the
// cache so a later identical submit retries instead of inheriting the
// failure.
func (m *Manager) finish(e *execution, report []byte, err error) {
	e.mu.Lock()
	switch {
	case errors.Is(err, context.Canceled):
		e.state = StateCanceled
		e.err = err
	case err != nil:
		e.state = StateFailed
		e.err = err
	default:
		e.state = StateDone
		e.report = report
	}
	e.finishedAt = time.Now()
	state := e.state
	e.mu.Unlock()

	if state == StateDone && m.opts.Store != nil {
		// Best-effort durability: a failed Put (disk full, permissions)
		// only costs a re-run after the next restart; the in-memory
		// cache still serves this process.
		m.opts.Store.Put(e.digest, report)
	}

	switch state {
	case StateDone:
		m.Metrics.Completed.Add(1)
		e.log.emit(Event{Type: "done"})
	case StateCanceled:
		m.Metrics.Canceled.Add(1)
		e.log.emit(Event{Type: "canceled"})
	default:
		m.Metrics.Failed.Add(1)
		e.log.emit(Event{Type: "failed", Error: err.Error()})
	}
	if state != StateDone {
		m.mu.Lock()
		if m.cache[e.digest] == e {
			delete(m.cache, e.digest)
		}
		m.mu.Unlock()
	}
	e.cancel() // release the context regardless of outcome
}

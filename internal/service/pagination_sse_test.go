package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// submitN submits n distinct quick jobs and returns their IDs in
// submission order.
func submitN(t *testing.T, m *Manager, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		job, err := m.Submit(JobSpec{Experiment: "fig4", Seed: uint64(i + 1)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
	}
	return ids
}

func TestJobsPage(t *testing.T) {
	stub := &stubRunner{report: []byte("r")}
	m := newStubManager(t, Options{Workers: 2}, stub)
	ids := submitN(t, m, 5)

	// Page through with limit 2: three pages, submission order, empty
	// next on the last.
	var got []string
	after := ""
	pages := 0
	for {
		jobs, next := m.JobsPage(after, 2)
		pages++
		for _, j := range jobs {
			got = append(got, j.ID)
		}
		if next == "" {
			break
		}
		after = next
		if pages > 10 {
			t.Fatal("cursor did not terminate")
		}
	}
	if pages != 3 {
		t.Fatalf("paged %d times, want 3", pages)
	}
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Fatalf("paged IDs %v != submitted %v", got, ids)
	}

	// limit <= 0 returns everything with no cursor.
	all, next := m.JobsPage("", 0)
	if len(all) != 5 || next != "" {
		t.Fatalf("JobsPage(\"\",0) = %d jobs, next %q", len(all), next)
	}
	// A cursor past the end yields an empty page.
	empty, next := m.JobsPage(ids[4], 2)
	if len(empty) != 0 || next != "" {
		t.Fatalf("past-end page = %d jobs, next %q", len(empty), next)
	}
	// An unknown cursor between IDs resumes at the next newer job.
	tail, _ := m.JobsPage(ids[1]+"zzz", 10)
	if len(tail) != 3 || tail[0].ID != ids[2] {
		t.Fatalf("mid-cursor page starts at %v, want %s", tail, ids[2])
	}
}

func TestJobsPageHTTP(t *testing.T) {
	stub := &stubRunner{report: []byte("r")}
	m := newStubManager(t, Options{Workers: 2}, stub)
	ids := submitN(t, m, 3)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	decodePage := func(url string) (pageIDs []string, next string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", url, resp.StatusCode)
		}
		var page struct {
			Jobs []struct {
				ID string `json:"id"`
			} `json:"jobs"`
			Next string `json:"next"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatalf("decode: %v", err)
		}
		for _, j := range page.Jobs {
			pageIDs = append(pageIDs, j.ID)
		}
		return pageIDs, page.Next
	}

	first, next := decodePage(srv.URL + "/v1/jobs?limit=2")
	if len(first) != 2 || next != ids[1] {
		t.Fatalf("first page = %v next %q, want %v next %q", first, next, ids[:2], ids[1])
	}
	second, next := decodePage(srv.URL + "/v1/jobs?limit=2&after=" + next)
	if len(second) != 1 || second[0] != ids[2] || next != "" {
		t.Fatalf("second page = %v next %q", second, next)
	}

	// Bad limits are 400s, not silent defaults.
	for _, bad := range []string{"0", "-3", "many"} {
		resp, err := http.Get(srv.URL + "/v1/jobs?limit=" + bad)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("limit=%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestSubmitMarksDeduped(t *testing.T) {
	stub := &stubRunner{report: []byte("r"), block: make(chan struct{})}
	m := newStubManager(t, Options{Workers: 1}, stub)

	j1, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j2, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j1.Deduped() {
		t.Error("first submit marked deduped")
	}
	if !j2.Deduped() {
		t.Error("singleflight attach not marked deduped")
	}
	close(stub.block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st := j1.Wait(ctx); st != StateDone {
		t.Fatalf("j1 state = %s", st)
	}
	// Cache hit after completion is deduped too.
	j3, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !j3.Deduped() {
		t.Error("cache hit not marked deduped")
	}
	if st := j3.Wait(ctx); st != StateDone {
		t.Fatalf("j3 state = %s", st)
	}
}

// TestJobWaitContext: Wait returns promptly when its context expires
// mid-run, reporting the non-terminal state.
func TestJobWaitContext(t *testing.T) {
	stub := &stubRunner{report: []byte("r"), block: make(chan struct{})}
	m := newStubManager(t, Options{Workers: 1}, stub)
	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if st := job.Wait(ctx); st.Terminal() {
		t.Fatalf("Wait returned terminal %s for a blocked job", st)
	}
	close(stub.block)
	waitState(t, job, StateDone)
}

// TestSSEHeartbeat: an idle events stream emits `: heartbeat` comments
// at the configured interval — the slow-subscriber/idle-proxy
// liveness contract — and real events still terminate it.
func TestSSEHeartbeat(t *testing.T) {
	stub := &stubRunner{report: []byte("r"), block: make(chan struct{})}
	m := newStubManager(t, Options{Workers: 1, SSEHeartbeat: 25 * time.Millisecond}, stub)
	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, job, StateRunning)

	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read until two heartbeats arrive while the job idles mid-run,
	// then release the job and read to the terminal event.
	reader := bufio.NewReader(resp.Body)
	heartbeats := 0
	sawDone := false
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	readErr := make(chan error, 1)
	go func() {
		for {
			line, err := reader.ReadString('\n')
			if err != nil {
				readErr <- err
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	released := false
	for !sawDone {
		select {
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, ": heartbeat"):
				heartbeats++
				if heartbeats >= 2 && !released {
					released = true
					close(stub.block)
				}
			case line == "event: done":
				sawDone = true
			}
		case err := <-readErr:
			t.Fatalf("stream ended early (heartbeats=%d): %v", heartbeats, err)
		case <-deadline:
			t.Fatalf("timed out (heartbeats=%d, sawDone=%v)", heartbeats, sawDone)
		}
	}
	if heartbeats < 2 {
		t.Fatalf("saw %d heartbeats, want >= 2", heartbeats)
	}
}

// TestSSENoHeartbeatByDefault: with the interval unset, an idle stream
// stays silent (no comment frames) until real events arrive.
func TestSSENoHeartbeatByDefault(t *testing.T) {
	stub := &stubRunner{report: []byte("r"), block: make(chan struct{})}
	m := newStubManager(t, Options{Workers: 1}, stub)
	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, job, StateRunning)

	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()

	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				done <- b.String()
				return
			}
		}
	}()
	// Give a (would-be) heartbeat window to elapse while idle, then
	// finish the job and collect the whole stream.
	time.Sleep(80 * time.Millisecond)
	close(stub.block)
	select {
	case body := <-done:
		if strings.Contains(body, ": heartbeat") {
			t.Fatalf("heartbeat emitted with heartbeats disabled:\n%s", body)
		}
		if !strings.Contains(body, "event: done") {
			t.Fatalf("stream missing terminal event:\n%s", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate")
	}
}

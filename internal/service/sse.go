package service

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// sse.go is the one Server-Sent-Events writer in the repo: the job
// event stream (GET /v1/jobs/{id}/events) and the campaign progress
// stream (GET /v1/campaigns/{id}/events) both serialize through
// StreamSSE, so wire framing, replay-then-follow semantics, and the
// idle-stream heartbeat behave identically on every endpoint.

// SSEEvent is one wire event: an SSE "event:" name and its JSON
// "data:" payload.
type SSEEvent struct {
	Name string
	Data []byte
}

// StreamSSE serves an append-only event sequence as Server-Sent
// Events. next is the replay-then-follow cursor: given the number of
// events already written it returns the events past that index,
// whether the stream is closed (terminal event emitted), and a channel
// that closes on the next append. StreamSSE replays everything
// available, then follows live until the stream closes or the client
// disconnects.
//
// When heartbeat is positive, an idle stream (no event for a full
// heartbeat interval) emits a `: heartbeat` comment line and flushes
// it, so proxies and load balancers with read-idle timeouts do not
// sever long-lived watches (a campaign can sit minutes between point
// completions). Comments are invisible to EventSource clients by
// specification. Zero or negative disables heartbeats.
func StreamSSE(w http.ResponseWriter, r *http.Request, heartbeat time.Duration, next func(idx int) ([]SSEEvent, bool, <-chan struct{})) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var beat *time.Timer
	var beatC <-chan time.Time
	if heartbeat > 0 {
		beat = time.NewTimer(heartbeat)
		beatC = beat.C
		defer beat.Stop()
	}

	idx := 0
	for {
		events, closed, wake := next(idx)
		for _, ev := range events {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
		}
		idx += len(events)
		if len(events) > 0 {
			fl.Flush()
			if beat != nil {
				// Restart the idle clock: a real event is a liveness
				// signal, so the next heartbeat is due a full interval
				// from now.
				if !beat.Stop() {
					select {
					case <-beat.C:
					default:
					}
				}
				beat.Reset(heartbeat)
			}
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-beatC:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
			beat.Reset(heartbeat)
		case <-r.Context().Done():
			return
		}
	}
}

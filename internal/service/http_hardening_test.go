package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestSubmitBodyTooLarge: the POST body cap turns an oversized spec
// into a 413 instead of an unbounded allocation.
func TestSubmitBodyTooLarge(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 512})

	big := `{"experiment":"` + strings.Repeat("a", 2048) + `"}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "512") {
		t.Errorf("413 body does not name the limit: %s", body)
	}
	if got := m.Metrics.Submitted.Load(); got != 0 {
		t.Errorf("oversized submit reached the manager (Submitted = %d)", got)
	}

	// A legitimate spec under the cap still goes through.
	ok, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"pipeline":"insitu","case":3,"real_substeps":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ok.Body)
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted {
		t.Errorf("valid submit under cap: status %d, want 202", ok.StatusCode)
	}
}

// TestSubmitTrailingGarbage: bytes after the spec object are an
// error, not silently discarded — a concatenated second spec would
// otherwise look accepted while never being submitted.
func TestSubmitTrailingGarbage(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	for _, body := range []string{
		`{"experiment":"fig4"}{"experiment":"table1"}`,
		`{"experiment":"fig4"} garbage`,
		`{"experiment":"fig4"} 42`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trailing data %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Trailing whitespace (curl's natural newline) is not garbage.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader("{\"pipeline\":\"insitu\",\"case\":3,\"real_substeps\":1}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("newline-terminated spec: status %d, want 202", resp.StatusCode)
	}
}

// TestMetricsExposesStore: with a store configured, /metrics carries
// the durable tier's gauges and counters alongside the job table size.
func TestMetricsExposesStore(t *testing.T) {
	store := openStore(t, t.TempDir(), 0, 0)
	srv, m := newTestServer(t, Options{Workers: 1, Store: store})
	stub := &stubRunner{report: []byte("stored report")}
	m.run = stub.run

	view, resp := postJob(t, srv, JobSpec{Experiment: "fig4"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitJobState(t, srv, view.ID, StateDone)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"greenvizd_store_entries 1",
		"greenvizd_store_hits_total 0",
		"greenvizd_store_misses_total 1", // the cold submit probed the store
		"greenvizd_store_evictions_total 0",
		"greenvizd_store_corruptions_total 0",
		"greenvizd_jobs_tracked 1",
		"greenvizd_jobs_retired_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(string(body), "greenvizd_store_bytes ") ||
		strings.Contains(string(body), "greenvizd_store_bytes 0\n") {
		t.Errorf("store bytes gauge missing or zero after a persisted report:\n%s", body)
	}
}

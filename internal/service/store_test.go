package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/resultstore"
)

// openStore opens a result store rooted at dir for manager tests.
func openStore(t *testing.T, dir string, maxBytes int64, maxEntries int) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(resultstore.Options{Dir: dir, MaxBytes: maxBytes, MaxEntries: maxEntries})
	if err != nil {
		t.Fatalf("resultstore.Open: %v", err)
	}
	return s
}

// TestAttachRechecksStaleTerminal is the regression test for the
// attach/evict race: finish() marks an execution failed (or canceled)
// under the execution lock and only afterwards takes the manager lock
// to evict the digest, so a submit landing between the two used to
// attach to the doomed execution and report its stale error — even
// though the documented contract is that failed digests retry. Submit
// now re-checks the state under the execution lock and replaces the
// stale entry with a fresh execution.
func TestAttachRechecksStaleTerminal(t *testing.T) {
	for _, staleState := range []State{StateFailed, StateCanceled} {
		t.Run(string(staleState), func(t *testing.T) {
			stub := &stubRunner{report: []byte("fresh run")}
			m := newStubManager(t, Options{Workers: 1}, stub)

			norm, err := JobSpec{Experiment: "fig4"}.Normalized()
			if err != nil {
				t.Fatal(err)
			}
			digest, err := norm.Digest()
			if err != nil {
				t.Fatal(err)
			}

			// Reconstruct the race window: a terminal non-done execution
			// still sitting in the cache because its finish() hasn't
			// reached the eviction step yet.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			stale := &execution{
				digest: digest,
				spec:   norm,
				log:    newEventLog(),
				ctx:    ctx,
				cancel: cancel,
				state:  staleState,
				err:    fmt.Errorf("stale %s error", staleState),
			}
			m.mu.Lock()
			m.cache[digest] = stale
			m.mu.Unlock()

			job, err := m.Submit(JobSpec{Experiment: "fig4"})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if job.exec == stale {
				t.Fatal("submit attached to the stale terminal execution")
			}
			waitState(t, job, StateDone)
			if got := job.Err(); got != "" {
				t.Errorf("job observed stale error %q", got)
			}
			if body, ok := job.Report(); !ok || string(body) != "fresh run" {
				t.Errorf("report = %q, %v, want fresh run", body, ok)
			}
			if stub.callCount() != 1 {
				t.Errorf("runner calls = %d, want 1 (fresh execution)", stub.callCount())
			}
			// finish() of the fresh execution must not have evicted the
			// replacement: done entries stay cached.
			if m.CacheEntries() != 1 {
				t.Errorf("CacheEntries = %d, want 1", m.CacheEntries())
			}
		})
	}
}

// TestRetentionGC: terminal jobs older than the horizon are pruned
// from the job table; queued and running jobs survive any age.
func TestRetentionGC(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("r")}
	// A huge horizon keeps the background sweeper effectively inert so
	// the test drives gc() deterministically with its own clock.
	m := newStubManager(t, Options{Workers: 1, JobRetention: time.Hour}, stub)
	defer close(stub.block)

	// done job: completes immediately (runner not yet blocked for it).
	fast := &stubRunner{report: []byte("done")}
	m.run = fast.run
	done, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, done, StateDone)

	// running job: blocks in the runner.
	m.run = stub.run
	running, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitCalls(t, stub, 1)

	// queued job: sits behind the single busy worker.
	queued, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// canceled job: terminal the moment it is canceled.
	canceled, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(canceled.ID); err != nil {
		t.Fatal(err)
	}

	// A sweep dated far in the future retires everything terminal.
	if got := m.gc(time.Now().Add(24 * time.Hour)); got != 2 {
		t.Errorf("gc retired %d jobs, want 2 (done + canceled)", got)
	}
	for _, gone := range []*Job{done, canceled} {
		if _, err := m.Job(gone.ID); !errors.Is(err, ErrNoSuchJob) {
			t.Errorf("terminal job %s survived GC: %v", gone.ID, err)
		}
	}
	for _, alive := range []*Job{running, queued} {
		if _, err := m.Job(alive.ID); err != nil {
			t.Errorf("live job %s pruned by GC: %v", alive.ID, err)
		}
	}
	if got := m.Metrics.Retired.Load(); got != 2 {
		t.Errorf("Retired = %d, want 2", got)
	}
	if got := len(m.Jobs()); got != 2 {
		t.Errorf("Jobs() lists %d, want 2", got)
	}
	// Without a store, the done execution stays cached for dedup.
	if !m.cacheHas(t, done) {
		t.Error("done execution evicted from cache despite no store")
	}

	// A sweep inside the horizon retires nothing.
	if got := m.gc(time.Now()); got != 0 {
		t.Errorf("fresh gc retired %d jobs", got)
	}
}

// cacheHas reports whether the manager still caches a job's digest.
func (m *Manager) cacheHas(t *testing.T, j *Job) bool {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.cache[j.Digest()]
	return ok
}

// TestRetentionGCBackground: the sweeper retires terminal jobs on its
// own once the horizon passes — no manual gc() calls.
func TestRetentionGCBackground(t *testing.T) {
	stub := &stubRunner{report: []byte("r")}
	m := newStubManager(t, Options{Workers: 1, JobRetention: 30 * time.Millisecond}, stub)

	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := m.Job(job.ID); errors.Is(err, ErrNoSuchJob) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background sweeper never retired job %s", job.ID)
}

// TestStoreWarmStart is the durability acceptance test at the manager
// level: a report computed under one manager is served by a second
// manager (fresh process state, same store directory) byte-identically
// and without executing anything.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Experiment: "fig4"}
	report := []byte("== fig4 ==\npersisted report bytes\n")

	stub1 := &stubRunner{report: report}
	m1 := newStubManager(t, Options{Workers: 1, Store: openStore(t, dir, 0, 0)}, stub1)
	first, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// "Restart": a new manager over the same directory, with a runner
	// that must never fire.
	stub2 := &stubRunner{report: []byte("WRONG: re-executed")}
	m2 := newStubManager(t, Options{Workers: 1, Store: openStore(t, dir, 0, 0)}, stub2)
	warm, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.State(); got != StateDone {
		t.Fatalf("warm submit state = %s, want done immediately", got)
	}
	body, ok := warm.Report()
	if !ok || !bytes.Equal(body, report) {
		t.Fatalf("warm report = %q, %v, want original bytes", body, ok)
	}
	if stub2.callCount() != 0 {
		t.Errorf("warm start re-executed the job (%d calls)", stub2.callCount())
	}
	if got := m2.Metrics.Executions.Load(); got != 0 {
		t.Errorf("Executions = %d, want 0", got)
	}
	if got := m2.Metrics.CacheHits.Load(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if st := m2.StoreStats(); st.Hits != 1 {
		t.Errorf("store stats = %+v, want 1 hit", st)
	}
	// The synthesized execution's event log terminates, so SSE
	// replays close.
	evs := warm.Events().snapshot()
	if len(evs) == 0 || !evs[len(evs)-1].Terminal() {
		t.Errorf("warm job events = %+v, want terminal tail", evs)
	}
	// A second warm submit hits the in-memory cache, not the store.
	again, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.State() != StateDone {
		t.Errorf("second warm submit state = %s", again.State())
	}
	if st := m2.StoreStats(); st.Hits != 1 {
		t.Errorf("second submit went to disk: %+v", st)
	}
}

// TestStoreCorruptionReRuns: a record damaged on disk is detected by
// its CRC footer, counted, evicted, and the job re-executes — the
// corrupt bytes are never served.
func TestStoreCorruptionReRuns(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Experiment: "fig4"}

	stub1 := &stubRunner{report: []byte("original")}
	m1 := newStubManager(t, Options{Workers: 1, Store: openStore(t, dir, 0, 0)}, stub1)
	job, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)
	digest := job.Digest()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	// Flip one byte of the persisted record's body.
	path := filepath.Join(dir, digest+".rec")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read record: %v", err)
	}
	raw[len(raw)-6] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Open evicts the corrupt record during its scan, so the submit is
	// a clean miss that re-executes.
	store2 := openStore(t, dir, 0, 0)
	if got := store2.Stats().Corruptions; got != 1 {
		t.Fatalf("Corruptions after scan = %d, want 1", got)
	}
	stub2 := &stubRunner{report: []byte("recomputed")}
	m2 := newStubManager(t, Options{Workers: 1, Store: store2}, stub2)
	redo, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, redo, StateDone)
	if body, _ := redo.Report(); string(body) != "recomputed" {
		t.Errorf("report = %q, want the re-run's bytes", body)
	}
	if stub2.callCount() != 1 {
		t.Errorf("runner calls = %d, want 1 re-execution", stub2.callCount())
	}
	// The re-run repaired the record on disk.
	if !store2.Contains(digest) {
		t.Error("re-run did not persist a fresh record")
	}
}

// TestStoreCorruptionAtGet covers the other corruption path: damage
// that lands after the warm-start scan (while the daemon runs) is
// caught by Get's CRC check at serve time.
func TestStoreCorruptionAtGet(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir, 0, 0)
	spec := JobSpec{Experiment: "fig4"}

	stub := &stubRunner{report: []byte("original")}
	m := newStubManager(t, Options{Workers: 1, Store: store}, stub)
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateDone)

	// Damage the record, then force the manager back to disk by
	// dropping the in-memory execution (what retention GC does on a
	// long-lived daemon).
	path := filepath.Join(dir, job.Digest()+".rec")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-6] ^= 0x01
	os.WriteFile(path, raw, 0o644)
	m.mu.Lock()
	delete(m.cache, job.Digest())
	m.mu.Unlock()

	redo, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, redo, StateDone)
	if body, _ := redo.Report(); string(body) != "original" {
		t.Errorf("report = %q, want re-run bytes", body)
	}
	if stub.callCount() != 2 {
		t.Errorf("runner calls = %d, want 2 (corrupt record re-ran)", stub.callCount())
	}
	st := store.Stats()
	if st.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", st.Corruptions)
	}
}

// TestStoreEvictionUnderManager: a byte budget smaller than the
// working set evicts LRU records while the manager keeps serving.
func TestStoreEvictionUnderManager(t *testing.T) {
	report := bytes.Repeat([]byte("x"), 1024)
	// Budget fits two records and change, so the third Put evicts.
	store := openStore(t, t.TempDir(), 2500, 0)
	stub := &stubRunner{report: report}
	m := newStubManager(t, Options{Workers: 1, Store: store}, stub)

	for seed := uint64(1); seed <= 3; seed++ {
		job, err := m.Submit(JobSpec{Experiment: "fig4", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, job, StateDone)
	}
	st := store.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions with budget 2500 and 3 × %d-byte reports: %+v", len(report), st)
	}
	if st.Bytes > 2500 {
		t.Errorf("store bytes %d over budget", st.Bytes)
	}
	if st.Entries >= 3 {
		t.Errorf("entries = %d, want < 3", st.Entries)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServiceThroughput measures the service-layer cost of one
// full API round trip — submit, status, report — against a warm cache
// entry, with a stub runner so the simulation core is out of the
// picture. This is the overhead greenvizd adds over calling the
// library directly; scripts/bench.sh tracks it per PR.
func BenchmarkServiceThroughput(b *testing.B) {
	m := NewManager(Options{Workers: 2})
	stub := &stubRunner{report: []byte("== fig4 ==\nbench\nbody\n")}
	m.run = stub.run
	srv := httptest.NewServer(Handler(m))
	defer func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()

	// Warm the cache entry every iteration hits.
	warm, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		b.Fatal(err)
	}
	for warm.State() != StateDone {
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(JobSpec{Experiment: "fig4"})
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			var view jobView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
			if view.State != StateDone {
				b.Errorf("cache hit state = %s", view.State)
				return
			}
			rresp, err := client.Get(srv.URL + "/v1/jobs/" + view.ID + "/report")
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, rresp.Body)
			rresp.Body.Close()
		}
	})
}

// BenchmarkSubmitDedup measures the manager-only submit path (no HTTP)
// for deduplicated submits against an in-flight execution.
func BenchmarkSubmitDedup(b *testing.B) {
	m := NewManager(Options{Workers: 1})
	block := make(chan struct{})
	stub := &stubRunner{block: block, report: []byte("r")}
	m.run = stub.run
	defer func() {
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	if _, err := m.Submit(JobSpec{Experiment: "fig4"}); err != nil {
		b.Fatal(err)
	}

	spec := JobSpec{Experiment: "fig4"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecDigest measures the content-addressing cost alone.
func BenchmarkSpecDigest(b *testing.B) {
	spec := JobSpec{Pipeline: "insitu", Case: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Digest(); err != nil {
			b.Fatal(err)
		}
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/core"
	"repro/internal/experiments"
)

// jobView is the JSON shape of one job in API responses.
type jobView struct {
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
	Error  string  `json:"error,omitempty"`
}

func viewOf(j *Job) jobView {
	return jobView{ID: j.ID, State: j.State(), Digest: j.Digest(), Spec: j.Spec, Error: j.Err()}
}

// jobsPage is the GET /v1/jobs response: one page of job views plus
// the cursor for the next page ("" when this page is the last).
type jobsPage struct {
	Jobs []jobView `json:"jobs"`
	Next string    `json:"next,omitempty"`
}

// Jobs-listing pagination bounds.
const (
	defaultJobsPageLimit = 100
	maxJobsPageLimit     = 500
)

// Handler serves the greenvizd API for a manager:
//
//	POST   /v1/jobs             submit a JobSpec; 202 with the job view
//	GET    /v1/jobs             list jobs in submission order (?limit=&after= paginate)
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/report the deterministic report bytes (409 until done)
//	GET    /v1/jobs/{id}/events live progress over SSE (replays, then follows)
//	GET    /v1/experiments      the experiment registry
//	GET    /v1/pipelines        the pipeline registry
//	GET    /metrics             plain-text counters
//	GET    /debug/pprof/...     runtime profiles
//
// Submit errors map to status codes: invalid spec 400, queue full 429,
// draining 503. The returned mux is open for composition: the daemon
// mounts the campaign API (internal/campaign) beside these routes.
func Handler(m *Manager) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// A spec is a few hundred bytes; cap the body so an oversized
		// POST can't allocate unboundedly, and reject trailing data so
		// a concatenated second object isn't silently ignored.
		r.Body = http.MaxBytesReader(w, r.Body, m.opts.MaxBodyBytes)
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("spec body exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
			return
		}
		if dec.More() {
			httpError(w, http.StatusBadRequest, errors.New("trailing data after spec object"))
			return
		}
		job, err := m.Submit(spec)
		if err != nil {
			var bad *BadSpecError
			switch {
			case errors.As(err, &bad):
				httpError(w, http.StatusBadRequest, err)
			case errors.Is(err, ErrQueueFull):
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusInternalServerError, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, viewOf(job))
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// A campaign can create hundreds of jobs, so the listing is
		// paginated: ?limit= caps the page (default 100, max 500) and
		// ?after= resumes past a job ID. Jobs list in submission order
		// and IDs are monotonic, so (page, next) is deterministic for a
		// fixed job table.
		limit := defaultJobsPageLimit
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("limit %q must be a positive integer", s))
				return
			}
			limit = n
		}
		if limit > maxJobsPageLimit {
			limit = maxJobsPageLimit
		}
		jobs, next := m.JobsPage(r.URL.Query().Get("after"), limit)
		views := make([]jobView, 0, len(jobs))
		for _, j := range jobs {
			views = append(views, viewOf(j))
		}
		writeJSON(w, http.StatusOK, jobsPage{Jobs: views, Next: next})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(w, m, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, viewOf(job))
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		state, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]State{"state": state})
	})

	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(w, m, r)
		if !ok {
			return
		}
		body, done := job.Report()
		if !done {
			st := job.State()
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, report available once done", job.ID, st))
			return
		}
		if job.Spec.Kind == KindPipeline {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		w.Header().Set("X-Job-Digest", job.Digest())
		w.Write(body)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := lookup(w, m, r)
		if !ok {
			return
		}
		log := job.Events()
		StreamSSE(w, r, m.opts.SSEHeartbeat, func(idx int) ([]SSEEvent, bool, <-chan struct{}) {
			events, closed, wake := log.after(idx)
			out := make([]SSEEvent, 0, len(events))
			for _, ev := range events {
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				out = append(out, SSEEvent{Name: ev.Type, Data: data})
			}
			return out, closed, wake
		})
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		type expView struct {
			ID          string `json:"id"`
			Description string `json:"description"`
		}
		var out []expView
		for _, e := range experiments.Registry() {
			out = append(out, expView{e.ID, e.Description})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/pipelines", func(w http.ResponseWriter, r *http.Request) {
		type pipeView struct {
			Flag      string `json:"flag"`
			Name      string `json:"name"`
			Clustered bool   `json:"clustered"`
		}
		var out []pipeView
		for _, p := range core.Pipelines() {
			out = append(out, pipeView{p.Flag(), p.String(), p.Clustered()})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		m.Metrics.WriteTo(w, m.QueueDepth(), m.CacheEntries(), m.JobCount(), m.StoreStats())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// lookup resolves {id}, writing the 404 itself on a miss.
func lookup(w http.ResponseWriter, m *Manager, r *http.Request) (*Job, bool) {
	job, err := m.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return nil, false
	}
	return job, true
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

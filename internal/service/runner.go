package service

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netio"
	"repro/internal/node"
	"repro/internal/units"
)

// runSpec is the production runner: it executes one normalized job
// spec against the simulation core and returns the job's report
// bytes. Determinism is the contract — equal specs must yield equal
// bytes, because the manager serves cached reports by digest:
//
//   - experiment jobs build a fresh per-job Suite (the suite dedups
//     the runs experiments share *within* the job; the manager's cache
//     dedups *across* jobs) and report the exact CLI stdout block,
//     which the golden-digest harness fingerprints;
//   - pipeline jobs run the same preset resolution as the CLI and
//     report the CLI's -format json encoding.
//
// Cancellation arrives through tel: the telemetry consumer panics
// with the jobCanceled sentinel at the next telemetry event once ctx
// is done, and safeRun translates that to context.Canceled.
func runSpec(ctx context.Context, spec JobSpec, tel *jobTelemetry) ([]byte, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Telemetry = tel

	switch spec.Kind {
	case KindExperiment:
		exp, err := experiments.ByID(spec.Experiment)
		if err != nil {
			return nil, err
		}
		suite := experiments.NewSuite(spec.Seed, &cfg)
		suite.Fio.FileSize = units.Bytes(spec.FioGiB) * units.GiB
		r := exp.Run(suite)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return []byte(r.Block()), nil

	case KindPipeline:
		p, err := core.PipelineByFlag(spec.Pipeline)
		if err != nil {
			return nil, err
		}
		platform, err := core.PlatformByFlag(spec.Device)
		if err != nil {
			return nil, err
		}
		if spec.PowerCapWatts > 0 {
			// The DVFS axis: a RAPL PL1-style cap throttles the CPU
			// model's operating frequency to hold package power here.
			platform.PackagePowerCap = units.Watts(spec.PowerCapWatts)
		}
		cs := core.CaseStudies()[spec.Case-1]
		var result *core.RunResult
		if p.Clustered() {
			result = core.RunOnCluster(core.NewCluster(platform, netio.TenGigE(), spec.Seed), p, cs, cfg)
		} else {
			result = core.Run(node.New(platform, spec.Seed), p, cs, cfg)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := result.EncodeJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("unknown kind %q", spec.Kind)
}

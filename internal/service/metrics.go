package service

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resultstore"
	"repro/internal/units"
)

// Metrics is the service's plain-text counter set, served at
// GET /metrics in a Prometheus-compatible exposition format (untyped
// lines; no client dependency). Counters are monotonic totals; gauges
// report instantaneous state the manager fills in at scrape time.
type Metrics struct {
	// Submission outcomes.
	Submitted  atomic.Uint64 // accepted submits (including deduped)
	Rejected   atomic.Uint64 // 4xx/5xx submits: bad spec, queue full, draining
	Deduped    atomic.Uint64 // submits attached to an in-flight execution
	CacheHits  atomic.Uint64 // submits served from a completed execution
	Executions atomic.Uint64 // underlying runs actually started

	// Execution outcomes.
	Completed atomic.Uint64
	Failed    atomic.Uint64
	Canceled  atomic.Uint64

	// Retired counts terminal jobs pruned by retention GC.
	Retired atomic.Uint64

	// FaultsInjected counts storage faults fired across all executions
	// (from FaultInjected telemetry; zero unless jobs enable injection).
	FaultsInjected atomic.Uint64

	// Campaign accounting (filled by internal/campaign through the
	// manager it submits points to).
	CampaignsActive       atomic.Int64  // campaigns currently expanding or running
	CampaignsCompleted    atomic.Uint64 // campaigns that reached done
	CampaignPointsRun     atomic.Uint64 // points that started a fresh execution
	CampaignPointsDeduped atomic.Uint64 // points served by an existing execution/cache/store

	// Live state.
	Running atomic.Int64

	// startedAt anchors the process-uptime gauge; NewManager stamps it.
	startedAt time.Time

	mu           sync.Mutex
	stageSeconds map[string]float64
	stageJoules  map[string]float64
}

// BuildVersion labels the greenvizd_build_info metric; the daemon's
// main overrides it from its build metadata when available.
var BuildVersion = "dev"

// addStageTime accumulates one stage execution's virtual duration.
func (m *Metrics) addStageTime(phase string, d units.Seconds) {
	m.mu.Lock()
	if m.stageSeconds == nil {
		m.stageSeconds = map[string]float64{}
	}
	m.stageSeconds[phase] += float64(d)
	m.mu.Unlock()
}

// addStageEnergy accumulates one stage execution's metered energy.
func (m *Metrics) addStageEnergy(phase string, e units.Joules) {
	m.mu.Lock()
	if m.stageJoules == nil {
		m.stageJoules = map[string]float64{}
	}
	m.stageJoules[phase] += float64(e)
	m.mu.Unlock()
}

// WriteTo writes the exposition text. Lines are sorted so scrapes are
// stable; queueDepth, cacheEntries, and jobs are gauges the manager
// samples, and store carries the durable result store's counters
// (all-zero when no store is configured).
func (m *Metrics) WriteTo(w io.Writer, queueDepth, cacheEntries, jobs int, store resultstore.Stats) {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Fprintf(w, "greenvizd_build_info{version=%q,go_version=%q} 1\n", BuildVersion, runtime.Version())
	fmt.Fprintf(w, "greenvizd_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "greenvizd_cache_hits_total %d\n", m.CacheHits.Load())
	fmt.Fprintf(w, "greenvizd_campaign_points_deduped_total %d\n", m.CampaignPointsDeduped.Load())
	fmt.Fprintf(w, "greenvizd_campaign_points_run_total %d\n", m.CampaignPointsRun.Load())
	fmt.Fprintf(w, "greenvizd_campaigns_active %d\n", m.CampaignsActive.Load())
	fmt.Fprintf(w, "greenvizd_campaigns_completed_total %d\n", m.CampaignsCompleted.Load())
	fmt.Fprintf(w, "greenvizd_executions_total %d\n", m.Executions.Load())
	fmt.Fprintf(w, "greenvizd_faults_injected_total %d\n", m.FaultsInjected.Load())
	fmt.Fprintf(w, "greenvizd_go_gc_cycles_total %d\n", mem.NumGC)
	fmt.Fprintf(w, "greenvizd_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "greenvizd_go_heap_alloc_bytes %d\n", mem.HeapAlloc)
	fmt.Fprintf(w, "greenvizd_jobs_canceled_total %d\n", m.Canceled.Load())
	fmt.Fprintf(w, "greenvizd_jobs_completed_total %d\n", m.Completed.Load())
	fmt.Fprintf(w, "greenvizd_jobs_deduped_total %d\n", m.Deduped.Load())
	fmt.Fprintf(w, "greenvizd_jobs_failed_total %d\n", m.Failed.Load())
	fmt.Fprintf(w, "greenvizd_jobs_rejected_total %d\n", m.Rejected.Load())
	fmt.Fprintf(w, "greenvizd_jobs_retired_total %d\n", m.Retired.Load())
	fmt.Fprintf(w, "greenvizd_jobs_running %d\n", m.Running.Load())
	fmt.Fprintf(w, "greenvizd_jobs_submitted_total %d\n", m.Submitted.Load())
	fmt.Fprintf(w, "greenvizd_jobs_tracked %d\n", jobs)
	uptime := 0.0
	if !m.startedAt.IsZero() {
		uptime = time.Since(m.startedAt).Seconds()
	}
	fmt.Fprintf(w, "greenvizd_process_uptime_seconds %.3f\n", uptime)
	fmt.Fprintf(w, "greenvizd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "greenvizd_store_bytes %d\n", store.Bytes)
	fmt.Fprintf(w, "greenvizd_store_corruptions_total %d\n", store.Corruptions)
	fmt.Fprintf(w, "greenvizd_store_entries %d\n", store.Entries)
	fmt.Fprintf(w, "greenvizd_store_evictions_total %d\n", store.Evictions)
	fmt.Fprintf(w, "greenvizd_store_hits_total %d\n", store.Hits)
	fmt.Fprintf(w, "greenvizd_store_misses_total %d\n", store.Misses)

	m.mu.Lock()
	phases := make([]string, 0, len(m.stageJoules))
	for p := range m.stageJoules {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	for _, p := range phases {
		fmt.Fprintf(w, "greenvizd_stage_joules_total{stage=%q} %.3f\n", p, m.stageJoules[p])
	}
	phases = phases[:0]
	for p := range m.stageSeconds {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	for _, p := range phases {
		fmt.Fprintf(w, "greenvizd_stage_virtual_seconds_total{stage=%q} %.3f\n", p, m.stageSeconds[p])
	}
	m.mu.Unlock()
}

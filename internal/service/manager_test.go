package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stubRunner replaces the production runner so manager tests control
// execution timing and outcomes without running the simulation core.
type stubRunner struct {
	mu    sync.Mutex
	calls int

	block  chan struct{} // when non-nil, run blocks until closed (or ctx)
	report []byte
	err    error
}

func (s *stubRunner) run(ctx context.Context, spec JobSpec, tel *jobTelemetry) ([]byte, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.report, nil
}

func (s *stubRunner) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// newStubManager builds a manager whose runner is the stub. Replacing
// m.run before any Submit is safe: workers observe it through the
// queue-channel happens-before edge.
func newStubManager(t *testing.T, opts Options, stub *stubRunner) *Manager {
	t.Helper()
	m := NewManager(opts)
	m.run = stub.run
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// waitState polls a job to the wanted state.
func waitState(t *testing.T, job *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", job.ID, job.State(), want)
}

// waitCalls polls the stub until it has seen n calls.
func waitCalls(t *testing.T, stub *stubRunner, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if stub.callCount() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stub saw %d calls, want %d", stub.callCount(), n)
}

// TestSubmitDedup is the singleflight core: 8 concurrent identical
// submits share one execution and one report.
func TestSubmitDedup(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("the report\n")}
	m := newStubManager(t, Options{Workers: 4}, stub)

	spec := JobSpec{Experiment: "fig4"}
	jobs := make([]*Job, 8)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := m.Submit(spec)
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			jobs[i] = job
		}(i)
	}
	wg.Wait()

	for _, j := range jobs[1:] {
		if j.Digest() != jobs[0].Digest() {
			t.Fatalf("digests differ: %s vs %s", j.Digest(), jobs[0].Digest())
		}
	}
	if got := m.Metrics.Submitted.Load(); got != 8 {
		t.Errorf("Submitted = %d, want 8", got)
	}
	if got := m.Metrics.Deduped.Load(); got != 7 {
		t.Errorf("Deduped = %d, want 7", got)
	}
	if m.CacheEntries() != 1 {
		t.Errorf("CacheEntries = %d, want 1", m.CacheEntries())
	}

	close(stub.block)
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}
	if stub.callCount() != 1 {
		t.Errorf("runner ran %d times, want 1", stub.callCount())
	}
	if got := m.Metrics.Executions.Load(); got != 1 {
		t.Errorf("Executions = %d, want 1", got)
	}
	for _, j := range jobs {
		body, ok := j.Report()
		if !ok || !bytes.Equal(body, stub.report) {
			t.Errorf("job %s report = %q, %v", j.ID, body, ok)
		}
	}

	// A later identical submit is a cache hit: served without running.
	late, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("cache-hit Submit: %v", err)
	}
	if late.State() != StateDone {
		t.Errorf("cache hit state = %s, want done", late.State())
	}
	if got := m.Metrics.CacheHits.Load(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if stub.callCount() != 1 {
		t.Errorf("cache hit re-ran the job (%d calls)", stub.callCount())
	}
}

// TestQueueFullBackpressure: with one busy worker and a depth-1 queue,
// a third distinct job bounces with ErrQueueFull.
func TestQueueFullBackpressure(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("r")}
	m := newStubManager(t, Options{Workers: 1, QueueDepth: 1}, stub)

	a, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 1})
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	waitCalls(t, stub, 1) // a is out of the queue and running

	if _, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 2}); err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	_, err = m.Submit(JobSpec{Experiment: "fig4", Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit c = %v, want ErrQueueFull", err)
	}
	if got := m.Metrics.Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	// Backpressure is transient: once the queue drains, submits flow again.
	close(stub.block)
	waitState(t, a, StateDone)
	waitCalls(t, stub, 2)
	if _, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 3}); err != nil {
		t.Errorf("Submit after drain: %v", err)
	}
}

// TestCancelMidRun: cancelling the only job on an execution stops the
// run and evicts the digest so a resubmit retries.
func TestCancelMidRun(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("r")}
	m := newStubManager(t, Options{Workers: 1}, stub)

	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCalls(t, stub, 1)

	state, err := m.Cancel(job.ID)
	if err != nil || state != StateCanceled {
		t.Fatalf("Cancel = %s, %v", state, err)
	}
	// job.State() flips to canceled instantly (the per-job flag); the
	// execution itself stops at its next cancellation point. Wait for
	// the underlying run to actually wind down before checking effects.
	deadline := time.Now().Add(10 * time.Second)
	for job.exec.getState() != StateCanceled && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := job.exec.getState(); st != StateCanceled {
		t.Fatalf("execution stuck in %s, want canceled", st)
	}
	if got := m.Metrics.Canceled.Load(); got != 1 {
		t.Errorf("Canceled = %d, want 1", got)
	}
	if m.CacheEntries() != 0 {
		t.Errorf("canceled execution still cached (%d entries)", m.CacheEntries())
	}
	evs := job.Events().snapshot()
	if len(evs) == 0 || evs[len(evs)-1].Type != "canceled" {
		t.Errorf("events = %+v, want trailing canceled", evs)
	}
	if _, ok := job.Report(); ok {
		t.Error("canceled job served a report")
	}

	// Cancelling a terminal job is a no-op reporting its state.
	if state, err := m.Cancel(job.ID); err != nil || state != StateCanceled {
		t.Errorf("re-Cancel = %s, %v", state, err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrNoSuchJob) {
		t.Errorf("Cancel unknown = %v, want ErrNoSuchJob", err)
	}
}

// TestCancelDetaches: with two jobs on one execution, cancelling one
// detaches it while the run continues for the other.
func TestCancelDetaches(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("shared")}
	m := newStubManager(t, Options{Workers: 1}, stub)

	a, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	b, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	waitCalls(t, stub, 1)

	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatalf("Cancel a: %v", err)
	}
	if a.State() != StateCanceled {
		t.Errorf("a state = %s, want canceled", a.State())
	}
	if st := b.State(); st != StateRunning {
		t.Errorf("b state = %s, want running (detach must not stop the run)", st)
	}

	close(stub.block)
	waitState(t, b, StateDone)
	if body, ok := b.Report(); !ok || string(body) != "shared" {
		t.Errorf("b report = %q, %v", body, ok)
	}
	if a.State() != StateCanceled {
		t.Errorf("a resurrected to %s", a.State())
	}
}

// TestFailureEvicted: a failed execution leaves no cache entry, so the
// next identical submit gets a fresh attempt.
func TestFailureEvicted(t *testing.T) {
	stub := &stubRunner{err: fmt.Errorf("disk on fire")}
	m := newStubManager(t, Options{Workers: 1}, stub)

	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, job, StateFailed)
	if job.Err() == "" {
		t.Error("failed job reports no error")
	}
	if m.CacheEntries() != 0 {
		t.Errorf("failed execution still cached (%d entries)", m.CacheEntries())
	}
	evs := job.Events().snapshot()
	if len(evs) == 0 || evs[len(evs)-1].Type != "failed" || evs[len(evs)-1].Error == "" {
		t.Errorf("events = %+v, want trailing failed with error", evs)
	}

	stub.err = nil
	stub.report = []byte("recovered")
	retry, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("retry Submit: %v", err)
	}
	waitState(t, retry, StateDone)
	if stub.callCount() != 2 {
		t.Errorf("retry did not re-run (calls = %d)", stub.callCount())
	}
}

// TestRunnerPanicIsFailure: a panicking run fails its job without
// taking the worker down.
func TestRunnerPanicIsFailure(t *testing.T) {
	m := newStubManager(t, Options{Workers: 1}, &stubRunner{})
	m.run = func(context.Context, JobSpec, *jobTelemetry) ([]byte, error) {
		panic("kaboom")
	}
	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, job, StateFailed)

	// The worker survived: it can still run the next job.
	m.run = (&stubRunner{report: []byte("ok")}).run
	next, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 2})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitState(t, next, StateDone)
}

// TestShutdownDrains: in-flight work finishes, new submits bounce with
// ErrDraining, Shutdown returns once idle.
func TestShutdownDrains(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("drained")}
	m := NewManager(Options{Workers: 2})
	m.run = stub.run

	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCalls(t, stub, 1)

	done := make(chan error, 1)
	go func() { done <- m.Shutdown(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for !m.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if _, err := m.Submit(JobSpec{Experiment: "fig4", Seed: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(stub.block)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if job.State() != StateDone {
		t.Errorf("drained job state = %s, want done", job.State())
	}
	if body, ok := job.Report(); !ok || string(body) != "drained" {
		t.Errorf("drained job report = %q, %v", body, ok)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestShutdownDeadlineCancels: when the drain context expires,
// stragglers are canceled and Shutdown reports the context error.
func TestShutdownDeadlineCancels(t *testing.T) {
	stub := &stubRunner{block: make(chan struct{}), report: []byte("never")}
	m := NewManager(Options{Workers: 1})
	m.run = stub.run
	defer close(stub.block)

	job, err := m.Submit(JobSpec{Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitCalls(t, stub, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if job.State() != StateCanceled {
		t.Errorf("straggler state = %s, want canceled", job.State())
	}
}

// TestSubmitBadSpec maps validation failures to BadSpecError.
func TestSubmitBadSpec(t *testing.T) {
	m := newStubManager(t, Options{Workers: 1}, &stubRunner{})
	var bad *BadSpecError
	if _, err := m.Submit(JobSpec{Experiment: "nope"}); !errors.As(err, &bad) {
		t.Fatalf("Submit = %v, want BadSpecError", err)
	}
	if got := m.Metrics.Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
}

package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/service"
)

// ErrNoSuchCampaign is returned for unknown campaign IDs.
var ErrNoSuchCampaign = errors.New("campaign: no such campaign")

// BadSpecError wraps a campaign-spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Campaign is one accepted sweep: its normalized spec, the expanded
// points, the live point outcomes, and — once terminal — the rendered
// report.
type Campaign struct {
	ID     string
	Digest string
	Spec   Spec // normalized
	Points []Point

	log *eventLog

	mu       sync.Mutex
	state    service.State
	outcomes []pointOutcome
	report   []byte
	// restored marks a campaign rebuilt from a persisted state record
	// (it never ran in this process; its report came from the store).
	restored bool
}

// State returns the campaign's lifecycle position.
func (c *Campaign) State() service.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Report returns the rendered report bytes and true once the campaign
// is done.
func (c *Campaign) Report() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != service.StateDone {
		return nil, false
	}
	return c.report, true
}

// EventsAfter returns the campaign events past idx, whether the
// stream is closed, and a channel closed on the next append — the
// replay-then-follow primitive the SSE handler and the CLI's progress
// narration share.
func (c *Campaign) EventsAfter(idx int) ([]Event, bool, <-chan struct{}) {
	return c.log.after(idx)
}

// Wait blocks until the campaign is terminal or ctx expires, returning
// the campaign state either way.
func (c *Campaign) Wait(ctx context.Context) service.State {
	idx := 0
	for {
		if st := c.State(); st.Terminal() {
			return st
		}
		events, closed, wake := c.log.after(idx)
		idx += len(events)
		if closed {
			return c.State()
		}
		if len(events) == 0 {
			select {
			case <-wake:
			case <-ctx.Done():
				return c.State()
			}
		}
	}
}

// counts tallies the point outcomes for views and listings.
func (c *Campaign) counts() (done, failed, deduped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.outcomes {
		if o.State == service.StateDone {
			done++
		}
		if o.State == service.StateFailed {
			failed++
		}
		if o.Deduped {
			deduped++
		}
	}
	return
}

// Options configures a campaign Manager.
type Options struct {
	// PointWorkers bounds how many points a campaign keeps in flight at
	// once (default 4). The job manager's own worker pool still bounds
	// actual execution; this only caps outstanding submissions so one
	// campaign cannot monopolize the submit queue.
	PointWorkers int
}

// Manager runs campaigns against a service.Manager. Points are
// submitted as ordinary jobs, so they share the daemon's worker pool,
// content-addressed dedup, and durable result store; the campaign
// layer adds expansion, aggregation, persistence of sweep state, and
// its own progress stream.
type Manager struct {
	jobs *service.Manager
	opts Options

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	byID  map[string]*Campaign
	order []string // campaign IDs in acceptance order
}

// NewManager wraps a job manager (which stays owned by the caller).
func NewManager(jobs *service.Manager, opts Options) *Manager {
	if opts.PointWorkers <= 0 {
		opts.PointWorkers = 4
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		jobs:   jobs,
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		byID:   map[string]*Campaign{},
	}
}

// Close stops accepting campaigns, cancels in-flight point waits, and
// blocks until every campaign goroutine has exited. Call it before
// shutting down the job manager.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// Get looks a campaign up by ID.
func (m *Manager) Get(id string) (*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byID[id]
	if !ok {
		return nil, ErrNoSuchCampaign
	}
	return c, nil
}

// List returns all campaigns in acceptance order.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.byID[id])
	}
	return out
}

// Start accepts a campaign spec: it normalizes, expands, and
// content-addresses the sweep, then either returns the already-known
// campaign with that address (running or finished — idempotent
// resubmit), restores a finished campaign from the persisted state
// record (surviving restarts without re-running a single point), or
// launches the sweep. Point executions dedupe through the job
// manager's caches, so resubmitting a half-finished campaign after a
// crash re-runs only the points whose reports were lost.
func (m *Manager) Start(spec Spec) (*Campaign, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, &BadSpecError{err}
	}
	points, err := Expand(norm)
	if err != nil {
		return nil, &BadSpecError{err}
	}
	digest := Digest(norm, points)
	id := IDFromDigest(digest)

	m.mu.Lock()
	if c, ok := m.byID[id]; ok {
		m.mu.Unlock()
		return c, nil
	}
	if m.ctx.Err() != nil {
		m.mu.Unlock()
		return nil, errors.New("campaign: manager closed")
	}
	c := &Campaign{
		ID:       id,
		Digest:   digest,
		Spec:     norm,
		Points:   points,
		log:      newEventLog(),
		state:    service.StateRunning,
		outcomes: make([]pointOutcome, len(points)),
	}
	if rec, ok := m.loadState(digest); ok && rec.Status == service.StateDone {
		c.state = service.StateDone
		c.report = []byte(rec.Report)
		c.restored = true
		for i := range c.outcomes {
			if i < len(rec.Points) {
				c.outcomes[i] = pointOutcome{
					State:   rec.Points[i].State,
					Err:     rec.Points[i].Error,
					Deduped: rec.Points[i].Deduped,
				}
			}
		}
		c.log.emit(Event{Type: "expanded", Points: len(points)})
		c.log.emit(Event{Type: "done"})
		m.register(c)
		m.mu.Unlock()
		return c, nil
	}
	m.register(c)
	m.mu.Unlock()

	m.jobs.Metrics.CampaignsActive.Add(1)
	m.wg.Add(1)
	go m.run(c)
	return c, nil
}

// register adds a campaign to the table; m.mu must be held.
func (m *Manager) register(c *Campaign) {
	m.byID[c.ID] = c
	m.order = append(m.order, c.ID)
}

// run drives one campaign to a terminal state.
func (m *Manager) run(c *Campaign) {
	defer m.wg.Done()
	defer m.jobs.Metrics.CampaignsActive.Add(-1)

	c.log.emit(Event{Type: "expanded", Points: len(c.Points)})

	sem := make(chan struct{}, m.opts.PointWorkers)
	var pwg sync.WaitGroup
	for i := range c.Points {
		if m.ctx.Err() != nil {
			c.recordOutcome(i, pointOutcome{State: service.StateCanceled, Err: "campaign manager closed"})
			continue
		}
		sem <- struct{}{}
		pwg.Add(1)
		go func(i int) {
			defer pwg.Done()
			defer func() { <-sem }()
			m.runPoint(c, i)
		}(i)
	}
	pwg.Wait()

	// Terminal state: done when at least one point completed (failed
	// points are annotated in the report — a sweep with a dead corner
	// still answers the greenness question for the rest), failed when
	// nothing did, canceled when the manager shut down mid-sweep.
	done, _, _ := c.counts()
	var final service.State
	switch {
	case m.ctx.Err() != nil && done < len(c.Points):
		final = service.StateCanceled
	case done > 0:
		final = service.StateDone
	default:
		final = service.StateFailed
	}

	c.mu.Lock()
	c.state = final
	if final == service.StateDone {
		c.report = renderReport(c.Spec, c.Digest, c.Points, c.outcomes)
	}
	c.mu.Unlock()

	m.persistState(c)
	switch final {
	case service.StateDone:
		m.jobs.Metrics.CampaignsCompleted.Add(1)
		c.log.emit(Event{Type: "done"})
	case service.StateCanceled:
		c.log.emit(Event{Type: "canceled"})
	default:
		c.log.emit(Event{Type: "failed", Error: "no point completed"})
	}
}

// runPoint submits one point and waits for its terminal state,
// retrying with backoff while the submit queue is full.
func (m *Manager) runPoint(c *Campaign, i int) {
	spec := c.Points[i].Spec
	var job *service.Job
	backoff := 2 * time.Millisecond
	for {
		var err error
		job, err = m.jobs.Submit(spec)
		if err == nil {
			break
		}
		if errors.Is(err, service.ErrQueueFull) {
			select {
			case <-time.After(backoff):
			case <-m.ctx.Done():
				c.recordOutcome(i, pointOutcome{State: service.StateCanceled, Err: "campaign manager closed"})
				return
			}
			if backoff < 250*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		// Draining, bad spec (should have been caught at expansion), or
		// manager shut down: the point fails, the sweep continues.
		c.recordOutcome(i, pointOutcome{State: service.StateFailed, Err: err.Error()})
		return
	}

	deduped := job.Deduped()
	if deduped {
		m.jobs.Metrics.CampaignPointsDeduped.Add(1)
	} else {
		m.jobs.Metrics.CampaignPointsRun.Add(1)
	}

	st := job.Wait(m.ctx)
	out := pointOutcome{State: st, Deduped: deduped}
	switch st {
	case service.StateDone:
		report, ok := job.Report()
		if !ok {
			out.State = service.StateFailed
			out.Err = "report unavailable"
			break
		}
		r, err := decodeResult(report)
		if err != nil {
			out.State = service.StateFailed
			out.Err = err.Error()
			break
		}
		out.Result = r
	case service.StateFailed:
		out.Err = job.Err()
	case service.StateCanceled:
		out.Err = "canceled"
	default:
		// Wait returned because m.ctx expired mid-run.
		out.State = service.StateCanceled
		out.Err = "campaign manager closed"
	}
	c.recordOutcome(i, out)
}

// recordOutcome stores a point's terminal outcome and emits its event.
func (c *Campaign) recordOutcome(i int, out pointOutcome) {
	c.mu.Lock()
	c.outcomes[i] = out
	c.mu.Unlock()
	c.log.emit(Event{
		Type:    "point",
		Point:   i,
		Label:   c.Points[i].Label,
		State:   string(out.State),
		Deduped: out.Deduped,
		Error:   out.Err,
	})
}

// stateRecord is the JSON body persisted to the result store under
// stateKey(digest): enough to restore a finished campaign (including
// its exact report bytes) and to show point statuses after a restart.
type stateRecord struct {
	Version   int           `json:"version"`
	ID        string        `json:"id"`
	Digest    string        `json:"digest"`
	Name      string        `json:"name"`
	Objective string        `json:"objective"`
	Status    service.State `json:"status"`
	Points    []pointRecord `json:"points"`
	Report    string        `json:"report,omitempty"`
}

type pointRecord struct {
	Label   string        `json:"label"`
	Digest  string        `json:"digest"`
	State   service.State `json:"state,omitempty"`
	Error   string        `json:"error,omitempty"`
	Deduped bool          `json:"deduped,omitempty"`
}

// persistState writes the campaign's state record to the durable
// store (no-op without one). Best-effort like job-report persistence:
// a failed write costs a re-aggregation after restart, never
// correctness — point reports are persisted independently by the job
// manager, so a resumed campaign re-runs only what the store lost.
func (m *Manager) persistState(c *Campaign) {
	store := m.jobs.Store()
	if store == nil {
		return
	}
	c.mu.Lock()
	rec := stateRecord{
		Version:   1,
		ID:        c.ID,
		Digest:    c.Digest,
		Name:      c.Spec.Name,
		Objective: c.Spec.Objective,
		Status:    c.state,
		Report:    string(c.report),
	}
	for i, p := range c.Points {
		rec.Points = append(rec.Points, pointRecord{
			Label:   p.Label,
			Digest:  p.Digest,
			State:   c.outcomes[i].State,
			Error:   c.outcomes[i].Err,
			Deduped: c.outcomes[i].Deduped,
		})
	}
	c.mu.Unlock()
	body, err := json.Marshal(rec)
	if err != nil {
		return
	}
	store.Put(stateKey(c.Digest), body)
}

// loadState reads a persisted state record for the campaign digest.
func (m *Manager) loadState(digest string) (stateRecord, bool) {
	store := m.jobs.Store()
	if store == nil {
		return stateRecord{}, false
	}
	body, ok := store.Get(stateKey(digest))
	if !ok {
		return stateRecord{}, false
	}
	var rec stateRecord
	if err := json.Unmarshal(body, &rec); err != nil || rec.Version != 1 || rec.Digest != digest {
		return stateRecord{}, false
	}
	return rec, true
}

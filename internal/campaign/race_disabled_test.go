//go:build !race

package campaign

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false

package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/units"
)

// pointOutcome is what the engine records per point as jobs finish:
// the terminal state, whether the submit was served by an existing
// execution, and — for done points — the decoded RunResult. The
// outcome slice is indexed by point, so folding order never leaks into
// the aggregate: the report renders from it in expansion order
// whatever order the workers finished in.
type pointOutcome struct {
	State   service.State
	Err     string
	Deduped bool
	Result  *core.RunResult
}

// decodeResult parses a pipeline job's report bytes (the CLI's
// -format json encoding) back into the RunResult the aggregator folds.
func decodeResult(report []byte) (*core.RunResult, error) {
	var r core.RunResult
	if err := json.Unmarshal(report, &r); err != nil {
		return nil, fmt.Errorf("campaign: decoding point report: %w", err)
	}
	return &r, nil
}

// objectiveValue scores one result under the campaign objective.
// Lower is better for every objective; efficiency negates so the
// highest frames-per-kJ wins.
func objectiveValue(objective string, r *core.RunResult) float64 {
	switch objective {
	case ObjectiveTime:
		return float64(r.ExecTime)
	case ObjectiveEfficiency:
		return -r.EnergyEfficiency()
	default:
		return float64(r.Energy)
	}
}

// greenestIndex returns the done point that wins the objective (ties
// break to the lowest index), or -1 when no point is done.
func greenestIndex(objective string, outcomes []pointOutcome) int {
	best := -1
	var bestVal float64
	for i, o := range outcomes {
		if o.Result == nil {
			continue
		}
		v := objectiveValue(objective, o.Result)
		if best == -1 || v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// paretoFront returns the indices of the non-dominated points in the
// (time, energy) minimization plane, in ascending time order. A point
// is dominated when another is no worse on both axes and strictly
// better on one.
func paretoFront(outcomes []pointOutcome) []int {
	type cand struct {
		idx  int
		t, e float64
	}
	cands := make([]cand, 0, len(outcomes))
	for i, o := range outcomes {
		if o.Result != nil {
			cands = append(cands, cand{i, float64(o.Result.ExecTime), float64(o.Result.Energy)})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].t != cands[b].t {
			return cands[a].t < cands[b].t
		}
		if cands[a].e != cands[b].e {
			return cands[a].e < cands[b].e
		}
		return cands[a].idx < cands[b].idx
	})
	var front []int
	bestE := 0.0
	for i, c := range cands {
		if i == 0 || c.e < bestE {
			front = append(front, c.idx)
			bestE = c.e
		}
	}
	return front
}

// advisorCheck cross-checks the campaign winner against the paper's
// data-reorganization advisor: it derives a WorkloadSpec from the
// greenest post-processing point's measured disk traffic (the
// observation half of the §VI-A runtime), asks core.Advise, and
// reports whether the analytic recommendation agrees with the
// campaign's empirical winner. Returns report lines ("" elements are
// skipped) — the section is advisory prose, not part of any winner
// computation.
func advisorCheck(points []Point, outcomes []pointOutcome, winner int) []string {
	// The advisor reasons about post-processing I/O, so it needs a
	// post-processing point to observe; pick the greenest one.
	post := -1
	for i, o := range outcomes {
		if o.Result == nil || o.Result.Pipeline != core.PostProcessing {
			continue
		}
		if post == -1 || o.Result.Energy < outcomes[post].Result.Energy {
			post = i
		}
	}
	if post < 0 {
		return []string{"no post-processing point completed; advisor cross-check skipped"}
	}
	r := outcomes[post].Result
	if r.BytesRead == 0 && r.BytesWritten == 0 {
		return []string{"post-processing point performed no I/O; advisor cross-check skipped"}
	}
	platform, err := core.PlatformByFlag(points[post].Spec.Device)
	if err != nil {
		return []string{fmt.Sprintf("advisor cross-check skipped: %v", err)}
	}
	span := r.BytesWritten
	if span < 1 {
		span = 1
	}
	w := core.WorkloadSpec{
		Name:       "campaign " + points[post].Label,
		ReadBytes:  r.BytesRead,
		WriteBytes: r.BytesWritten,
		// The simulated pipelines stream checkpoints sequentially in
		// 16 KiB ops over the written span — the workload shape the
		// advisor's fio-derived model expects.
		OpSize:         16 * units.KiB,
		RandomFraction: 0,
		SpanBytes:      span,
	}
	adv := core.Advise(platform, w)

	winnerInsitu := outcomes[winner].Result.Pipeline != core.PostProcessing
	adviceInsitu := adv.Recommended == adv.InSitu.Strategy
	verdict := "disagree"
	if winnerInsitu == adviceInsitu {
		verdict = "agree"
	}
	return []string{
		fmt.Sprintf("observed workload (point %d, %s): read %s, wrote %s",
			post, points[post].Label, r.BytesRead, r.BytesWritten),
		fmt.Sprintf("core.Advise recommends %q: %s", adv.Recommended, adv.Reason),
		fmt.Sprintf("campaign winner runs %s; advisor and sweep %s",
			outcomes[winner].Result.Pipeline, verdict),
	}
}

// renderReport produces the campaign's deterministic plain-text
// report. Everything renders from the outcome slice in expansion
// order, so the bytes are identical at any point-worker count and
// across a resume from persisted state.
func renderReport(s Spec, digest string, points []Point, outcomes []pointOutcome) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "campaign %s (%s)\n", s.Name, IDFromDigest(digest))
	fmt.Fprintf(&b, "objective: %s\n", s.Objective)
	for _, ax := range s.Axes {
		fmt.Fprintf(&b, "axis %s: %s\n", ax.Name, strings.Join(ax.Values, ", "))
	}
	done, failed := 0, 0
	for _, o := range outcomes {
		switch o.State {
		case service.StateDone:
			done++
		case service.StateFailed:
			failed++
		}
	}
	fmt.Fprintf(&b, "points: %d expanded, %d done, %d failed\n", len(points), done, failed)

	// Point table, expansion order. Row cells live in one flat arena
	// sized up front, so a 256-point table costs two slice allocations
	// instead of one per row.
	ncols := 1 + len(s.Axes) + 4
	header := append(make([]string, 0, ncols), "#")
	header = append(header, axisNames(s)...)
	header = append(header, "energy", "time", "frames/kJ", "state")
	rows := make([][]string, 0, len(points)+1)
	rows = append(rows, header)
	arena := make([]string, 0, len(points)*ncols)
	for i, p := range points {
		start := len(arena)
		arena = append(arena, strconv.Itoa(i))
		arena = append(arena, p.Values...)
		o := outcomes[i]
		if o.Result != nil {
			arena = append(arena,
				o.Result.Energy.String(),
				o.Result.ExecTime.String(),
				strconv.FormatFloat(o.Result.EnergyEfficiency(), 'f', 2, 64),
				string(o.State))
		} else {
			note := string(o.State)
			if o.Err != "" {
				note += ": " + o.Err
			}
			arena = append(arena, "-", "-", "-", note)
		}
		rows = append(rows, arena[start:len(arena):len(arena)])
	}
	b.WriteString("\npoint results\n")
	writeTable(&b, rows)

	// Per-axis marginal means over done points.
	b.WriteString("\naxis marginals (means over done points)\n")
	for k, ax := range s.Axes {
		fmt.Fprintf(&b, "  %s\n", ax.Name)
		mrows := [][]string{{"value", "points", "mean energy", "mean time", "mean frames/kJ"}}
		for _, v := range ax.Values {
			var n int
			var sumE, sumT, sumF float64
			for i, p := range points {
				if p.Values[k] != v || outcomes[i].Result == nil {
					continue
				}
				r := outcomes[i].Result
				n++
				sumE += float64(r.Energy)
				sumT += float64(r.ExecTime)
				sumF += r.EnergyEfficiency()
			}
			row := []string{v, strconv.Itoa(n)}
			if n > 0 {
				fn := float64(n)
				row = append(row,
					units.Joules(sumE/fn).String(),
					units.Seconds(sumT/fn).String(),
					strconv.FormatFloat(sumF/fn, 'f', 2, 64))
			} else {
				row = append(row, "-", "-", "-")
			}
			mrows = append(mrows, row)
		}
		writeIndentedTable(&b, mrows, "    ")
	}

	// Energy-vs-time Pareto frontier.
	b.WriteString("\nenergy-time pareto frontier (time ascending; non-dominated done points)\n")
	front := paretoFront(outcomes)
	if len(front) == 0 {
		b.WriteString("  (no done points)\n")
	}
	for _, i := range front {
		r := outcomes[i].Result
		fmt.Fprintf(&b, "  point %d (%s): %s, %s\n", i, points[i].Label, r.ExecTime, r.Energy)
	}

	// Greenest configuration and the advisor cross-check.
	fmt.Fprintf(&b, "\ngreenest configuration (objective %s)\n", s.Objective)
	winner := greenestIndex(s.Objective, outcomes)
	if winner < 0 {
		b.WriteString("  none: no point completed\n")
	} else {
		r := outcomes[winner].Result
		fmt.Fprintf(&b, "  point %d: %s\n", winner, points[winner].Label)
		fmt.Fprintf(&b, "  energy %s, time %s, %d frames (%.2f frames/kJ)\n",
			r.Energy, r.ExecTime, r.Frames, r.EnergyEfficiency())
		b.WriteString("\nadvisor cross-check\n")
		for _, line := range advisorCheck(points, outcomes, winner) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.Bytes()
}

func axisNames(s Spec) []string {
	names := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		names[i] = ax.Name
	}
	return names
}

// writeTable renders rows as space-padded columns (two-space gutter),
// first row as header. Right-pads every cell to the column width and
// trims trailing spaces per line, so the output is deterministic and
// diff-friendly.
func writeTable(b *bytes.Buffer, rows [][]string) {
	writeIndentedTable(b, rows, "  ")
}

func writeIndentedTable(b *bytes.Buffer, rows [][]string, indent string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	// Pad into one reused line buffer and trim its tail, emitting
	// exactly the join-then-TrimRight bytes without the per-cell
	// strings.Repeat and per-row Join/TrimRight garbage.
	var line []byte
	for _, row := range rows {
		line = append(line[:0], indent...)
		for i, cell := range row {
			if i > 0 {
				line = append(line, ' ', ' ')
			}
			line = append(line, cell...)
			for pad := widths[i] - len(cell); pad > 0; pad-- {
				line = append(line, ' ')
			}
		}
		for len(line) > 0 && line[len(line)-1] == ' ' {
			line = line[:len(line)-1]
		}
		b.Write(line)
		b.WriteByte('\n')
	}
}

package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/service"
)

// maxSpecBytes caps POST /v1/campaigns bodies. Campaign specs are a
// few KiB even with every axis populated; 1 MiB leaves generous slack.
const maxSpecBytes = 1 << 20

// campaignView is the JSON shape of one campaign in API responses.
type campaignView struct {
	ID        string        `json:"id"`
	Name      string        `json:"name"`
	State     service.State `json:"state"`
	Objective string        `json:"objective"`
	Digest    string        `json:"digest"`
	Points    int           `json:"points"`
	Done      int           `json:"done"`
	Failed    int           `json:"failed"`
	Deduped   int           `json:"deduped"`
	// PointStates is filled on the detail view only.
	PointStates []pointView `json:"point_states,omitempty"`
}

type pointView struct {
	Index   int           `json:"index"`
	Label   string        `json:"label"`
	Digest  string        `json:"digest"`
	State   service.State `json:"state,omitempty"`
	Error   string        `json:"error,omitempty"`
	Deduped bool          `json:"deduped,omitempty"`
}

func viewOf(c *Campaign, detail bool) campaignView {
	done, failed, deduped := c.counts()
	v := campaignView{
		ID:        c.ID,
		Name:      c.Spec.Name,
		State:     c.State(),
		Objective: c.Spec.Objective,
		Digest:    c.Digest,
		Points:    len(c.Points),
		Done:      done,
		Failed:    failed,
		Deduped:   deduped,
	}
	if detail {
		c.mu.Lock()
		for i, p := range c.Points {
			v.PointStates = append(v.PointStates, pointView{
				Index:   i,
				Label:   p.Label,
				Digest:  p.Digest,
				State:   c.outcomes[i].State,
				Error:   c.outcomes[i].Err,
				Deduped: c.outcomes[i].Deduped,
			})
		}
		c.mu.Unlock()
	}
	return v
}

// Register mounts the campaign API on a mux (the one service.Handler
// returns):
//
//	POST /v1/campaigns              submit a Spec; 202 with the campaign view
//	                                (200 when the content address is already known)
//	GET  /v1/campaigns              list campaigns in acceptance order
//	GET  /v1/campaigns/{id}         one campaign's status with per-point states
//	GET  /v1/campaigns/{id}/report  the deterministic report (409 until done)
//	GET  /v1/campaigns/{id}/events  live progress over SSE (replays, then follows)
//
// Campaigns share the job manager's SSE heartbeat setting, so proxies
// see the same liveness contract on both stream families.
func (m *Manager) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("campaign spec exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode campaign spec: %w", err))
			return
		}
		if dec.More() {
			httpError(w, http.StatusBadRequest, errors.New("trailing data after campaign spec"))
			return
		}
		known := false
		if norm, err := spec.Normalized(); err == nil {
			if points, err := Expand(norm); err == nil {
				_, lookupErr := m.Get(IDFromDigest(Digest(norm, points)))
				known = lookupErr == nil
			}
		}
		c, err := m.Start(spec)
		if err != nil {
			var bad *BadSpecError
			if errors.As(err, &bad) {
				httpError(w, http.StatusBadRequest, err)
			} else {
				httpError(w, http.StatusServiceUnavailable, err)
			}
			return
		}
		status := http.StatusAccepted
		if known {
			status = http.StatusOK
		}
		writeJSON(w, status, viewOf(c, false))
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		out := []campaignView{}
		for _, c := range m.List() {
			out = append(out, viewOf(c, false))
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.lookup(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, viewOf(c, true))
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.lookup(w, r)
		if !ok {
			return
		}
		body, done := c.Report()
		if !done {
			httpError(w, http.StatusConflict,
				fmt.Errorf("campaign %s is %s, report available once done", c.ID, c.State()))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Campaign-Digest", c.Digest)
		w.Write(body)
	})

	mux.HandleFunc("GET /v1/campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.lookup(w, r)
		if !ok {
			return
		}
		service.StreamSSE(w, r, m.jobs.SSEHeartbeat(), func(idx int) ([]service.SSEEvent, bool, <-chan struct{}) {
			events, closed, wake := c.EventsAfter(idx)
			out := make([]service.SSEEvent, 0, len(events))
			for _, ev := range events {
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				out = append(out, service.SSEEvent{Name: ev.Type, Data: data})
			}
			return out, closed, wake
		})
	})
}

// lookup resolves {id}, writing the 404 itself on a miss.
func (m *Manager) lookup(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, err := m.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return nil, false
	}
	return c, true
}

// writeJSON writes v as an indented JSON response (the service API's
// encoding, duplicated here because the helpers are unexported there).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

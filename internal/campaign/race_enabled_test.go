//go:build race

package campaign

// raceEnabled lets the golden campaign test (eight full pipeline runs)
// skip under race instrumentation; make check runs it explicitly
// without race.
const raceEnabled = true

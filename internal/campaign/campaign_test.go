package campaign

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/service"
	"repro/internal/units"
)

// testSpec is the canonical sweep the package tests use: 2 pipelines x
// 2 devices at case 1 with a tiny solver so the 4 real runs stay fast.
func testSpec() Spec {
	return Spec{
		Name: "test-sweep",
		Base: service.JobSpec{Case: 1, RealSubsteps: 2, Seed: 1},
		Axes: []Axis{
			{Name: "pipeline", Values: []string{"post", "insitu"}},
			{Name: "device", Values: []string{"hdd", "ssd"}},
		},
	}
}

func newJobManager(t *testing.T, store *resultstore.Store) *service.Manager {
	t.Helper()
	m := service.NewManager(service.Options{Workers: 4, QueueDepth: 64, Store: store})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func runCampaign(t *testing.T, jobs *service.Manager, spec Spec, pointWorkers int) (*Manager, *Campaign) {
	t.Helper()
	cm := NewManager(jobs, Options{PointWorkers: pointWorkers})
	t.Cleanup(cm.Close)
	c, err := cm.Start(spec)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st := c.Wait(ctx); st != service.StateDone {
		t.Fatalf("campaign state = %s, want done", st)
	}
	return cm, c
}

func TestNormalizedValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"bad objective", func(s *Spec) { s.Objective = "carbon" }, "unknown objective"},
		{"no axes", func(s *Spec) { s.Axes = nil }, "at least one axis"},
		{"dup axis", func(s *Spec) { s.Axes = append(s.Axes, s.Axes[0]) }, "listed twice"},
		{"empty axis", func(s *Spec) { s.Axes[0].Values = nil }, "has no values"},
		{"dup value", func(s *Spec) { s.Axes[0].Values = []string{"post", "post"} }, "repeats value"},
		{"unknown axis", func(s *Spec) { s.Axes[0].Name = "voltage" }, "unknown axis"},
		{"unparsable value", func(s *Spec) { s.Axes = []Axis{{Name: "case", Values: []string{"one"}}} }, "axis case"},
		{"max points range", func(s *Spec) { s.MaxPoints = HardMaxPoints + 1 }, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec()
			tc.mod(&spec)
			_, err := spec.Normalized()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	norm, err := testSpec().Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if norm.Objective != ObjectiveEnergy || norm.MaxPoints != DefaultMaxPoints {
		t.Fatalf("defaults not applied: %+v", norm)
	}
}

func TestExpandOrderAndLabels(t *testing.T) {
	norm, err := testSpec().Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	points, err := Expand(norm)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	wantLabels := []string{
		"pipeline=post device=hdd",
		"pipeline=post device=ssd",
		"pipeline=insitu device=hdd",
		"pipeline=insitu device=ssd",
	}
	if len(points) != len(wantLabels) {
		t.Fatalf("expanded %d points, want %d", len(points), len(wantLabels))
	}
	for i, want := range wantLabels {
		if points[i].Label != want {
			t.Errorf("point %d label = %q, want %q", i, points[i].Label, want)
		}
		if points[i].Index != i {
			t.Errorf("point %d carries index %d", i, points[i].Index)
		}
		if points[i].Spec.Kind != service.KindPipeline {
			t.Errorf("point %d kind = %q", i, points[i].Spec.Kind)
		}
	}

	// A kernel_workers axis multiplies points but not executions: the
	// job digest deliberately excludes it, so both values of the axis
	// content-address to the same run.
	spec := testSpec()
	spec.Axes = append(spec.Axes, Axis{Name: "kernel_workers", Values: []string{"1", "4"}})
	norm, err = spec.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	kp, err := Expand(norm)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(kp) != 8 {
		t.Fatalf("expanded %d points, want 8", len(kp))
	}
	digests := map[string]bool{}
	for _, p := range kp {
		digests[p.Digest] = true
	}
	if len(digests) != 4 {
		t.Fatalf("kernel_workers axis changed job digests: %d distinct, want 4", len(digests))
	}
}

func TestExpandRejectsOversizedProduct(t *testing.T) {
	spec := testSpec()
	spec.MaxPoints = 3 // 2x2 product exceeds it
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if _, err := Expand(norm); err == nil || !strings.Contains(err.Error(), "exceeds max_points") {
		t.Fatalf("err = %v, want max_points rejection", err)
	}
}

func TestDigestSensitivity(t *testing.T) {
	expandAndDigest := func(s Spec) string {
		t.Helper()
		norm, err := s.Normalized()
		if err != nil {
			t.Fatalf("Normalized: %v", err)
		}
		points, err := Expand(norm)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		return Digest(norm, points)
	}
	base := expandAndDigest(testSpec())
	if base != expandAndDigest(testSpec()) {
		t.Fatal("equal specs produced different digests")
	}
	mods := map[string]func(*Spec){
		"name":      func(s *Spec) { s.Name = "other" },
		"objective": func(s *Spec) { s.Objective = ObjectiveTime },
		"axis val":  func(s *Spec) { s.Axes[1].Values = []string{"hdd", "nvram"} },
		"base seed": func(s *Spec) { s.Base.Seed = 7 },
		"power cap": func(s *Spec) { s.Axes = append(s.Axes, Axis{Name: "power_cap_watts", Values: []string{"80"}}) },
	}
	for name, mod := range mods {
		spec := testSpec()
		mod(&spec)
		if expandAndDigest(spec) == base {
			t.Errorf("%s change did not move the campaign digest", name)
		}
	}
}

// TestDigestMatchesFmtReference pins the campaign canonical form to
// the fmt.Fprintf formulation the strconv appender replaced: any
// textual drift would silently re-key every persisted campaign.
func TestDigestMatchesFmtReference(t *testing.T) {
	specs := []Spec{
		testSpec(),
		func() Spec {
			s := testSpec()
			s.Objective = ObjectiveTime
			s.Base.Faults = "bitrot=0.01"
			s.Axes = append(s.Axes, Axis{Name: "power_cap_watts", Values: []string{"0", "80"}})
			return s
		}(),
	}
	for _, spec := range specs {
		norm, err := spec.Normalized()
		if err != nil {
			t.Fatalf("Normalized: %v", err)
		}
		points, err := Expand(norm)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "campaign v1 name:%q objective:%s maxpoints:%d\n",
			norm.Name, norm.Objective, norm.MaxPoints)
		fmt.Fprintf(&buf, "base:%+v\n", norm.Base)
		for _, ax := range norm.Axes {
			fmt.Fprintf(&buf, "axis %s:%q\n", ax.Name, ax.Values)
		}
		for _, p := range points {
			fmt.Fprintf(&buf, "point %d %s\n", p.Index, p.Digest)
		}
		sum := sha256.Sum256(buf.Bytes())
		want := hex.EncodeToString(sum[:])
		if got := Digest(norm, points); got != want {
			t.Errorf("campaign %q: digest %s != fmt reference %s", norm.Name, got, want)
		}
	}
}

// TestReportDeterministicAcrossWorkers is the tentpole's core
// contract: the same campaign produces byte-identical reports whether
// points run one at a time or maximally parallel.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	_, c1 := runCampaign(t, newJobManager(t, nil), testSpec(), 1)
	_, c8 := runCampaign(t, newJobManager(t, nil), testSpec(), 8)
	r1, _ := c1.Report()
	r8, _ := c8.Report()
	if len(r1) == 0 {
		t.Fatal("empty report")
	}
	if !bytes.Equal(r1, r8) {
		t.Fatalf("reports differ between 1 and 8 point workers:\n--- workers=1\n%s\n--- workers=8\n%s", r1, r8)
	}
	for _, want := range []string{
		"campaign test-sweep", "objective: energy",
		"point results", "axis marginals", "pareto frontier",
		"greenest configuration", "advisor cross-check",
		"pipeline=insitu",
	} {
		if !bytes.Contains(r1, []byte(want)) {
			t.Errorf("report lacks %q:\n%s", want, r1)
		}
	}
	if c1.ID != c8.ID {
		t.Fatalf("campaign IDs differ: %s vs %s", c1.ID, c8.ID)
	}
}

// TestIdempotentStart: resubmitting a spec returns the same campaign,
// not a second sweep.
func TestIdempotentStart(t *testing.T) {
	jobs := newJobManager(t, nil)
	cm, c := runCampaign(t, jobs, testSpec(), 4)
	again, err := cm.Start(testSpec())
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if again != c {
		t.Fatal("resubmit created a new campaign")
	}
	if got := len(cm.List()); got != 1 {
		t.Fatalf("List has %d campaigns, want 1", got)
	}
}

// TestResumeFromStore is the persistence contract end to end at the
// package level: a finished campaign restores from the state record
// with zero executions, and a half-warm store re-runs only the cold
// points.
func TestResumeFromStore(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *resultstore.Store {
		st, err := resultstore.Open(resultstore.Options{Dir: filepath.Join(dir, "store")})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return st
	}

	// Generation 1 runs two of the four points as plain jobs — the
	// "daemon died mid-campaign" state: some point reports persisted,
	// no campaign state record.
	jobs1 := newJobManager(t, openStore())
	norm, _ := testSpec().Normalized()
	points, _ := Expand(norm)
	for _, p := range points[:2] {
		job, err := jobs1.Submit(p.Spec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if st := job.Wait(context.Background()); st != service.StateDone {
			t.Fatalf("warmup job state = %s", st)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	jobs1.Shutdown(ctx)
	cancel()

	// Generation 2 runs the full campaign: the two warm points must be
	// store hits, the two cold ones fresh executions.
	jobs2 := newJobManager(t, openStore())
	_, c2 := runCampaign(t, jobs2, testSpec(), 4)
	report2, _ := c2.Report()
	if got := jobs2.Metrics.Executions.Load(); got != 2 {
		t.Fatalf("resumed campaign ran %d executions, want 2", got)
	}
	if got := jobs2.Metrics.CampaignPointsDeduped.Load(); got != 2 {
		t.Fatalf("CampaignPointsDeduped = %d, want 2", got)
	}
	if got := jobs2.Metrics.CampaignPointsRun.Load(); got != 2 {
		t.Fatalf("CampaignPointsRun = %d, want 2", got)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	jobs2.Shutdown(ctx)
	cancel()

	// Generation 3 resubmits the finished campaign: restored from the
	// state record, byte-identical report, zero executions.
	jobs3 := newJobManager(t, openStore())
	cm3 := NewManager(jobs3, Options{})
	t.Cleanup(cm3.Close)
	c3, err := cm3.Start(testSpec())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if st := c3.State(); st != service.StateDone {
		t.Fatalf("restored campaign state = %s, want done", st)
	}
	if !c3.restored {
		t.Fatal("campaign was re-run, not restored from the state record")
	}
	report3, ok := c3.Report()
	if !ok || !bytes.Equal(report2, report3) {
		t.Fatalf("restored report differs (ok=%v)", ok)
	}
	if got := jobs3.Metrics.Executions.Load(); got != 0 {
		t.Fatalf("restored campaign ran %d executions, want 0", got)
	}
}

// TestHTTPAPI drives the campaign REST+SSE surface against a live mux.
func TestHTTPAPI(t *testing.T) {
	jobs := newJobManager(t, nil)
	cm := NewManager(jobs, Options{})
	t.Cleanup(cm.Close)
	mux := service.Handler(jobs)
	cm.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	specBody, _ := json.Marshal(testSpec())
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(specBody))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	var view struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	resp.Body.Close()
	if view.Points != 4 {
		t.Fatalf("view.Points = %d, want 4", view.Points)
	}

	c, err := cm.Get(view.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st := c.Wait(ctx); st != service.StateDone {
		t.Fatalf("campaign state = %s", st)
	}

	// Idempotent resubmit answers 200, same ID.
	resp, err = http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(specBody))
	if err != nil {
		t.Fatalf("re-POST: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-POST status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Detail view carries per-point states.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + view.ID)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var detail struct {
		State       string `json:"state"`
		PointStates []struct {
			Label string `json:"label"`
			State string `json:"state"`
		} `json:"point_states"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatalf("decode detail: %v", err)
	}
	resp.Body.Close()
	if detail.State != "done" || len(detail.PointStates) != 4 {
		t.Fatalf("detail = %+v", detail)
	}

	// Report is plain text with the digest header.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + view.ID + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Campaign-Digest"); len(got) != 64 {
		t.Fatalf("X-Campaign-Digest = %q", got)
	}
	var report bytes.Buffer
	report.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(report.Bytes(), []byte("greenest configuration")) {
		t.Fatalf("report body:\n%s", report.String())
	}

	// SSE replays the finished campaign's events through the terminal
	// one: expanded, 4 points, done.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	var sse bytes.Buffer
	sse.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"event: expanded", "event: point", "event: done"} {
		if !strings.Contains(sse.String(), want) {
			t.Fatalf("SSE stream lacks %q:\n%s", want, sse.String())
		}
	}

	// Error paths.
	if resp, _ = http.Get(srv.URL + "/v1/campaigns/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	bad, _ := json.Marshal(Spec{Name: "bad"})
	if resp, _ = http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(bad)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// benchSpec expands to 256 points without touching axis caps.
func benchSpec() Spec {
	caps := make([]string, 16)
	for i := range caps {
		caps[i] = fmt.Sprintf("%d", 40+i)
	}
	seeds := make([]string, 8)
	for i := range seeds {
		seeds[i] = fmt.Sprintf("%d", i+1)
	}
	return Spec{
		Name: "bench",
		Base: service.JobSpec{Case: 1, RealSubsteps: 2},
		Axes: []Axis{
			{Name: "pipeline", Values: []string{"post", "insitu"}},
			{Name: "power_cap_watts", Values: caps},
			{Name: "seed", Values: seeds},
		},
	}
}

// syntheticResult fabricates a plausible RunResult whose numbers vary
// deterministically with the point index.
func syntheticResult(i int) *core.RunResult {
	return &core.RunResult{
		Pipeline:     core.Pipeline(i % 2),
		ExecTime:     units.Seconds(300 + 17*((i*31)%29)),
		Energy:       units.Joules(30000 + 911*((i*13)%37)),
		Frames:       50,
		BytesWritten: units.Bytes(i+1) * units.MiB,
		BytesRead:    units.Bytes(i+1) * units.MiB,
	}
}

func BenchmarkCampaignExpand(b *testing.B) {
	norm, err := benchSpec().Normalized()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := Expand(norm)
		if err != nil {
			b.Fatal(err)
		}
		if Digest(norm, points) == "" {
			b.Fatal("empty digest")
		}
	}
}

func BenchmarkCampaignAggregate(b *testing.B) {
	norm, err := benchSpec().Normalized()
	if err != nil {
		b.Fatal(err)
	}
	points, err := Expand(norm)
	if err != nil {
		b.Fatal(err)
	}
	outcomes := make([]pointOutcome, len(points))
	for i := range outcomes {
		// Synthetic but shaped like real results; values vary per point
		// so the Pareto sweep and marginals do real work.
		r := syntheticResult(i)
		outcomes[i] = pointOutcome{State: service.StateDone, Result: r}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(renderReport(norm, Digest(norm, points), points, outcomes)) == 0 {
			b.Fatal("empty report")
		}
	}
}

package campaign

import "sync"

// Event is one campaign SSE payload: the sweep's lifecycle ("expanded"
// with the point count, terminal "done"/"failed"/"canceled") plus one
// "point" event per point as it reaches a terminal state.
type Event struct {
	// Seq numbers events from 1 within one campaign.
	Seq int `json:"seq"`
	// Type is "expanded", "point", "done", "failed", or "canceled".
	Type string `json:"type"`
	// Points is the expansion size on "expanded" events.
	Points int `json:"points,omitempty"`
	// Point and Label identify the point on "point" events (Label is
	// the identity; a zero index is omitted from the JSON).
	Point int    `json:"point,omitempty"`
	Label string `json:"label,omitempty"`
	// State is the point's terminal state on "point" events.
	State string `json:"state,omitempty"`
	// Deduped reports that the point was served by an existing
	// execution (singleflight, cache, or store) instead of a fresh run.
	Deduped bool `json:"deduped,omitempty"`
	// Error carries the failure reason on "point" and "failed" events.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether this event closes the stream.
func (e Event) Terminal() bool {
	switch e.Type {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// eventLog mirrors the service's append-only, closable event sequence
// for campaign-level progress: replay-then-follow subscribers ride the
// wake channel, which is closed and replaced on every append.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	closed bool
	wake   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// emit appends one event, assigning its sequence number; terminal
// events close the log and later emits are dropped.
func (l *eventLog) emit(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = len(l.events) + 1
	l.events = append(l.events, ev)
	if ev.Terminal() {
		l.closed = true
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// after returns the events past idx, whether the log is closed, and
// the wake channel for the next append.
func (l *eventLog) after(idx int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if idx > len(l.events) {
		idx = len(l.events)
	}
	return l.events[idx:], l.closed, l.wake
}

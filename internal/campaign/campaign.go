// Package campaign turns "run one job" into "answer a greenness
// question over a configuration space": the declarative parameter-sweep
// orchestration layer on top of the greenvizd job manager.
//
// The paper's contribution is not any single run but a comparison — it
// sweeps pipeline choice, I/O strategy, and frequency across a fixed
// platform and asks which configuration is greenest. A Spec names that
// sweep declaratively: a base job, a list of axes (pipeline, device,
// power cap, fault spec, any swept AppConfig knob), and an objective.
// The engine expands the cross-product in a deterministic order,
// content-addresses the whole campaign (SHA-256 over the canonical
// spec plus every point's job digest, which itself reuses
// AppConfig.WriteCanonical), and executes points through the existing
// service manager — so identical points dedupe onto the memory and
// disk result caches, and resubmitting a half-finished campaign after
// a daemon restart re-runs only the points whose reports were lost.
//
// As points complete, a streaming aggregator folds each RunResult into
// a comparative report: per-axis marginal tables, the energy-vs-time
// Pareto frontier, and a "greenest configuration" recommendation
// cross-checked against the paper's data-reorganization advisor
// (core.Advise). Report bytes are deterministic at any worker count:
// the fold keeps per-point summaries and the report renders from them
// in expansion order.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/service"
)

// Axis is one swept dimension: a job-spec field name and the values it
// takes, in sweep order. Values are strings regardless of the field's
// type; expansion parses them per axis (so a spec file stays uniform).
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Objectives a campaign can optimize.
const (
	ObjectiveEnergy     = "energy"     // minimize energy_joules (the default)
	ObjectiveTime       = "time"       // minimize exec_seconds
	ObjectiveEfficiency = "efficiency" // maximize frames per kilojoule
)

// Expansion caps. MaxPoints in a Spec may lower the point cap but
// never exceed HardMaxPoints.
const (
	MaxAxes          = 8
	MaxAxisValues    = 64
	DefaultMaxPoints = 256
	HardMaxPoints    = 4096
)

// Spec declares one campaign: a base pipeline job, the axes swept over
// it, and the objective that picks the greenest configuration.
type Spec struct {
	// Name labels the campaign in reports and listings.
	Name string `json:"name"`
	// Base is the job every point starts from; axis values overwrite
	// its fields. Every expanded point must normalize to a valid
	// pipeline job (experiment jobs produce prose, not RunResults, so
	// they cannot be aggregated).
	Base service.JobSpec `json:"base"`
	// Axes are the swept dimensions, outermost first: expansion is
	// row-major with the last axis varying fastest.
	Axes []Axis `json:"axes"`
	// Objective is one of energy (default), time, efficiency.
	Objective string `json:"objective,omitempty"`
	// MaxPoints caps the expansion (default 256, hard cap 4096); a
	// cross-product larger than the cap is rejected, not truncated.
	MaxPoints int `json:"max_points,omitempty"`
}

// sweepAxes lists the axis names a campaign may sweep, in menu order.
// Every name maps onto one JobSpec field; kernel_workers is the one
// deliberately non-addressing axis (points differing only there
// collapse onto a single cached run — the dedup is the point).
func sweepAxes() []string {
	return []string{
		"pipeline", "app", "device", "case", "seed", "real_substeps",
		"kernel_workers", "power_cap_watts", "faults",
		"insitu_nosync", "compress_insitu", "async_checkpoint", "cinema_variants",
	}
}

// applyAxis sets one axis value on a job spec, parsing the string form
// into the field's type.
func applyAxis(s *service.JobSpec, name, val string) error {
	fail := func(err error) error {
		return fmt.Errorf("axis %s: value %q: %w", name, val, err)
	}
	switch name {
	case "pipeline":
		s.Pipeline = val
	case "app":
		s.App = val
	case "device":
		s.Device = val
	case "faults":
		s.Faults = val
	case "case":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fail(err)
		}
		s.Case = n
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fail(err)
		}
		s.Seed = n
	case "real_substeps":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fail(err)
		}
		s.RealSubsteps = n
	case "kernel_workers":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fail(err)
		}
		s.KernelWorkers = n
	case "cinema_variants":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fail(err)
		}
		s.CinemaVariants = n
	case "power_cap_watts":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fail(err)
		}
		s.PowerCapWatts = f
	case "insitu_nosync", "compress_insitu", "async_checkpoint":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fail(err)
		}
		switch name {
		case "insitu_nosync":
			s.InsituNoSync = b
		case "compress_insitu":
			s.CompressInsitu = b
		case "async_checkpoint":
			s.AsyncCheckpoint = b
		}
	default:
		return fmt.Errorf("unknown axis %q (valid: %s)", name, strings.Join(sweepAxes(), ", "))
	}
	return nil
}

// Normalized validates the spec and applies defaults, or describes the
// first problem. Two specs that normalize equal expand to the same
// campaign.
func (s Spec) Normalized() (Spec, error) {
	n := s
	if n.Name == "" {
		return n, fmt.Errorf("campaign needs a name")
	}
	switch n.Objective {
	case "":
		n.Objective = ObjectiveEnergy
	case ObjectiveEnergy, ObjectiveTime, ObjectiveEfficiency:
	default:
		return n, fmt.Errorf("unknown objective %q (valid: %s, %s, %s)",
			n.Objective, ObjectiveEnergy, ObjectiveTime, ObjectiveEfficiency)
	}
	if n.MaxPoints == 0 {
		n.MaxPoints = DefaultMaxPoints
	}
	if n.MaxPoints < 1 || n.MaxPoints > HardMaxPoints {
		return n, fmt.Errorf("max_points %d out of range 1..%d", n.MaxPoints, HardMaxPoints)
	}
	if len(n.Axes) == 0 {
		return n, fmt.Errorf("campaign needs at least one axis")
	}
	if len(n.Axes) > MaxAxes {
		return n, fmt.Errorf("%d axes exceed the cap of %d", len(n.Axes), MaxAxes)
	}
	seen := map[string]bool{}
	for _, ax := range n.Axes {
		if seen[ax.Name] {
			return n, fmt.Errorf("axis %q listed twice", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return n, fmt.Errorf("axis %q has no values", ax.Name)
		}
		if len(ax.Values) > MaxAxisValues {
			return n, fmt.Errorf("axis %q has %d values, cap is %d", ax.Name, len(ax.Values), MaxAxisValues)
		}
		vals := map[string]bool{}
		for _, v := range ax.Values {
			if vals[v] {
				return n, fmt.Errorf("axis %q repeats value %q", ax.Name, v)
			}
			vals[v] = true
			// Parse eagerly so a bad value fails the whole campaign at
			// submit time, not point 3117 of the expansion.
			var probe service.JobSpec
			if err := applyAxis(&probe, ax.Name, v); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Point is one expanded configuration: the axis values it takes, the
// normalized job spec they produce, and that job's content address.
type Point struct {
	Index  int             `json:"index"`
	Label  string          `json:"label"`
	Values []string        `json:"values"`
	Spec   service.JobSpec `json:"spec"`
	Digest string          `json:"digest"`
}

// Expand produces the campaign's points in deterministic row-major
// order (the last axis varies fastest, like nested loops in
// declaration order). The spec must already be normalized. Every point
// must validate as a pipeline job; the first invalid point aborts the
// expansion with its axis coordinates in the error.
func Expand(s Spec) ([]Point, error) {
	total := 1
	for _, ax := range s.Axes {
		if total > s.MaxPoints/len(ax.Values)+1 {
			// Avoid overflow on absurd axis products before the real cap
			// check below.
			total = s.MaxPoints + 1
			break
		}
		total *= len(ax.Values)
	}
	if total > s.MaxPoints {
		return nil, fmt.Errorf("expansion of %d points exceeds max_points %d", total, s.MaxPoints)
	}

	points := make([]Point, 0, total)
	values := make([]string, len(s.Axes))
	// One flat backing array serves every point's Values slice — the
	// per-point copies are views into it (full-capacity slicing keeps
	// them immutable to each other's appends).
	flat := make([]string, 0, total*len(s.Axes))
	var label strings.Builder
	for i := 0; i < total; i++ {
		rem := i
		for k := len(s.Axes) - 1; k >= 0; k-- {
			n := len(s.Axes[k].Values)
			values[k] = s.Axes[k].Values[rem%n]
			rem /= n
		}
		spec := s.Base
		label.Reset()
		for k, ax := range s.Axes {
			if err := applyAxis(&spec, ax.Name, values[k]); err != nil {
				return nil, fmt.Errorf("point %d: %w", i, err)
			}
			if k > 0 {
				label.WriteByte(' ')
			}
			label.WriteString(ax.Name)
			label.WriteByte('=')
			label.WriteString(values[k])
		}
		norm, err := spec.Normalized()
		if err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", i, label.String(), err)
		}
		if norm.Kind != service.KindPipeline {
			return nil, fmt.Errorf("point %d (%s): campaigns sweep pipeline jobs, got kind %q", i, label.String(), norm.Kind)
		}
		// The spec was just normalized, so skip Digest's re-validation.
		digest, err := norm.DigestNormalized()
		if err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", i, label.String(), err)
		}
		start := len(flat)
		flat = append(flat, values...)
		points = append(points, Point{
			Index:  i,
			Label:  label.String(),
			Values: flat[start:len(flat):len(flat)],
			Spec:   norm,
			Digest: digest,
		})
	}
	return points, nil
}

// appendCanonical appends the campaign's canonical form: the
// normalized sweep declaration plus every expanded point's job digest.
// Each job digest already covers the canonical form of the AppConfig
// the point derives (AppConfig.WriteCanonical), so the campaign
// address commits to the exact run identities, not just the surface
// spelling of the spec. The strconv appends produce byte-for-byte the
// fmt form they replaced (campaign_test.go keeps the fmt version as
// the reference):
//
//	campaign v1 name:%q objective:%s maxpoints:%d\n
//	base:%+v\n
//	axis %s:%q\n   (per axis)
//	point %d %s\n  (per point)
func appendCanonical(b []byte, s Spec, points []Point) []byte {
	b = append(b, "campaign v1 name:"...)
	b = strconv.AppendQuote(b, s.Name)
	b = append(b, " objective:"...)
	b = append(b, s.Objective...)
	b = append(b, " maxpoints:"...)
	b = strconv.AppendInt(b, int64(s.MaxPoints), 10)
	b = append(b, "\nbase:"...)
	b = appendJobSpec(b, s.Base)
	b = append(b, '\n')
	for _, ax := range s.Axes {
		b = append(b, "axis "...)
		b = append(b, ax.Name...)
		b = append(b, ":["...)
		for i, v := range ax.Values {
			if i > 0 {
				b = append(b, ' ')
			}
			b = strconv.AppendQuote(b, v)
		}
		b = append(b, "]\n"...)
	}
	for _, p := range points {
		b = append(b, "point "...)
		b = strconv.AppendInt(b, int64(p.Index), 10)
		b = append(b, ' ')
		b = append(b, p.Digest...)
		b = append(b, '\n')
	}
	return b
}

// appendJobSpec appends the %+v form of a service.JobSpec value (flat
// struct of strings, ints, bools — field order as declared).
func appendJobSpec(b []byte, s service.JobSpec) []byte {
	b = append(b, "{Kind:"...)
	b = append(b, s.Kind...)
	b = append(b, " Experiment:"...)
	b = append(b, s.Experiment...)
	b = append(b, " Pipeline:"...)
	b = append(b, s.Pipeline...)
	b = append(b, " App:"...)
	b = append(b, s.App...)
	b = append(b, " Device:"...)
	b = append(b, s.Device...)
	b = append(b, " Case:"...)
	b = strconv.AppendInt(b, int64(s.Case), 10)
	b = append(b, " Seed:"...)
	b = strconv.AppendUint(b, s.Seed, 10)
	b = append(b, " RealSubsteps:"...)
	b = strconv.AppendInt(b, int64(s.RealSubsteps), 10)
	b = append(b, " FioGiB:"...)
	b = strconv.AppendInt(b, int64(s.FioGiB), 10)
	b = append(b, " Faults:"...)
	b = append(b, s.Faults...)
	b = append(b, " KernelWorkers:"...)
	b = strconv.AppendInt(b, int64(s.KernelWorkers), 10)
	b = append(b, " PowerCapWatts:"...)
	b = strconv.AppendFloat(b, s.PowerCapWatts, 'g', -1, 64)
	b = append(b, " InsituNoSync:"...)
	b = strconv.AppendBool(b, s.InsituNoSync)
	b = append(b, " CompressInsitu:"...)
	b = strconv.AppendBool(b, s.CompressInsitu)
	b = append(b, " AsyncCheckpoint:"...)
	b = strconv.AppendBool(b, s.AsyncCheckpoint)
	b = append(b, " CinemaVariants:"...)
	b = strconv.AppendInt(b, int64(s.CinemaVariants), 10)
	return append(b, '}')
}

// Digest content-addresses a normalized, expanded campaign: a hex
// SHA-256 over its canonical form. Equal digests mean byte-identical
// campaign reports.
func Digest(s Spec, points []Point) string {
	sum := sha256.Sum256(appendCanonical(nil, s, points))
	return hex.EncodeToString(sum[:])
}

// stateKey derives the resultstore key campaign state persists under:
// a second-preimage-separated hash of the campaign digest, so state
// records and job reports share one store without colliding.
func stateKey(digest string) string {
	h := sha256.Sum256([]byte("campaign-state v1\n" + digest))
	return hex.EncodeToString(h[:])
}

// IDFromDigest shortens a campaign digest to its routable ID.
func IDFromDigest(digest string) string { return digest[:12] }

package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden campaign report digest")

const goldenDigestPath = "testdata/greenest-config.sha256"

// exampleSpec loads the bundled example campaign the README points
// users at — the same file the CLI and daemon quickstarts submit.
func exampleSpec(t *testing.T) Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaigns", "greenest-config.json"))
	if err != nil {
		t.Fatalf("reading example spec: %v", err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatalf("decoding example spec: %v", err)
	}
	return spec
}

// TestGoldenCampaignReport runs the bundled example campaign and
// verifies the report bytes against the committed SHA-256 — the same
// mechanical drift gate the experiment registry has. Regenerate after
// an intentional report change with:
//
//	go test ./internal/campaign -run TestGolden -update
func TestGoldenCampaignReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight full pipeline simulations")
	}
	if raceEnabled {
		t.Skip("eight full pipeline runs are infeasible under race instrumentation; make check runs this without race")
	}

	_, c := runCampaign(t, newJobManager(t, nil), exampleSpec(t), 4)
	report, ok := c.Report()
	if !ok || len(report) == 0 {
		t.Fatal("no report")
	}
	sum := fmt.Sprintf("%x", sha256.Sum256(report))

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		line := fmt.Sprintf("%s  greenest-config\n", sum)
		if err := os.WriteFile(goldenDigestPath, []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenDigestPath)
		return
	}

	want, err := os.ReadFile(goldenDigestPath)
	if err != nil {
		t.Fatalf("no golden digest (run with -update to create): %v", err)
	}
	wantSum := strings.Fields(string(want))[0]
	if sum != wantSum {
		t.Fatalf("campaign report drifted:\n  got  %s\n  want %s\nreport:\n%s", sum, wantSum, report)
	}
}

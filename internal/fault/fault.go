// Package fault is a deterministic, seed-driven fault injector for the
// simulated storage stack. The storage layers (disk, filesystem,
// parallel filesystem) consult an Injector at their hook points:
//
//   - bit-rot on bytes delivered by a read, tripping the checkpoint
//     CRCs downstream;
//   - transient read/write errors (the syscall-level EIO class);
//   - latency spikes on disk requests (vibration, remapped sectors,
//     firmware recalibration);
//   - server drops on the parallel filesystem (a missed RPC window that
//     stalls the client out to a timeout).
//
// Injection is off by default: every decision method is safe — and
// free — on a nil *Injector, so the hooks cost nothing (0 allocs, a
// nil check) in fault-free runs and seed outputs stay byte-identical.
// With an injector attached, all decisions are drawn from one PRNG
// stream seeded by Config.Seed, so a given (config, workload) pair
// replays the exact same fault schedule every time.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/xrand"
)

// The telemetry source names fault classes fire under.
const (
	SourceBitRot       = "bitrot"
	SourceReadError    = "readerr"
	SourceWriteError   = "writeerr"
	SourceLatencySpike = "latency"
	SourceServerDrop   = "drop"
)

// ErrTransient marks an injected fault that a bounded retry can clear:
// the next attempt draws a fresh decision from the stream.
var ErrTransient = errors.New("transient I/O fault")

// Config sets the per-operation fault probabilities. The zero value
// disables injection entirely.
type Config struct {
	// Seed seeds the injector's decision stream; equal (Seed, workload)
	// pairs produce identical fault schedules.
	Seed uint64

	// BitRot is the per-read probability that the delivered bytes are
	// corrupted (1–4 bit flips at random positions). The stored data is
	// unharmed: a re-read may come back clean.
	BitRot float64
	// ReadErr is the per-read probability of a transient read error.
	ReadErr float64
	// WriteErr is the per-write probability of a transient write error.
	WriteErr float64
	// Latency is the per-disk-request probability of a latency spike of
	// Spike seconds added to the request's positioning time.
	Latency float64
	// Spike is the spike duration (default 150 ms — a recalibration
	// pass or a remapped-sector retry train).
	Spike units.Seconds
	// Drop is the per-request probability that a parallel-filesystem
	// server misses its RPC window; the client stalls DropTimeout and
	// the request fails with ErrTransient.
	Drop float64
	// DropTimeout is the client-side stall charged on a dropped PFS
	// request (default 1 s).
	DropTimeout units.Seconds
}

// Enabled reports whether any fault class has a positive rate.
func (c Config) Enabled() bool {
	return c.BitRot > 0 || c.ReadErr > 0 || c.WriteErr > 0 || c.Latency > 0 || c.Drop > 0
}

// withDefaults fills the duration knobs.
func (c Config) withDefaults() Config {
	if c.Spike <= 0 {
		c.Spike = 150 * units.Millisecond
	}
	if c.DropTimeout <= 0 {
		c.DropTimeout = 1
	}
	return c
}

// Stats counts the faults an injector has fired, for attribution in
// run results and reports.
type Stats struct {
	BitRots       uint64        `json:"bit_rots"`
	ReadErrors    uint64        `json:"read_errors"`
	WriteErrors   uint64        `json:"write_errors"`
	LatencySpikes uint64        `json:"latency_spikes"`
	SpikeTime     units.Seconds `json:"spike_seconds"`
	ServerDrops   uint64        `json:"server_drops"`
}

// Total returns the number of discrete fault events fired.
func (s Stats) Total() uint64 {
	return s.BitRots + s.ReadErrors + s.WriteErrors + s.LatencySpikes + s.ServerDrops
}

// Injector draws fault decisions from one deterministic stream. It is
// not safe for concurrent use; give each run its own, like the node it
// faults. All methods are no-ops on a nil receiver.
type Injector struct {
	cfg   Config
	rng   *xrand.Rand
	stats Stats
	tel   *telemetry.Bus
}

// New builds an injector for the config.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: xrand.New(cfg.Seed)}
}

// AttachTelemetry routes one FaultInjected event per fired fault onto
// bus. Emission never touches the decision stream, so an attached bus
// leaves the fault schedule — and run output — untouched. No-op on a
// nil receiver.
func (i *Injector) AttachTelemetry(bus *telemetry.Bus) {
	if i == nil {
		return
	}
	i.tel = bus
}

// fired emits one FaultInjected event (source = fault class, value =
// charged stall in seconds for classes that stall).
func (i *Injector) fired(source string, stall units.Seconds) {
	if !i.tel.Active() {
		return
	}
	i.tel.Emit(telemetry.Event{
		Kind:   telemetry.KindFaultInjected,
		Source: source,
		Value:  float64(stall),
	})
}

// Stats returns a copy of the fired-fault counters (zero for nil).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// ReadError decides whether this read fails transiently.
func (i *Injector) ReadError() bool {
	if i == nil || i.cfg.ReadErr <= 0 || i.rng.Float64() >= i.cfg.ReadErr {
		return false
	}
	i.stats.ReadErrors++
	i.fired(SourceReadError, 0)
	return true
}

// WriteError decides whether this write fails transiently.
func (i *Injector) WriteError() bool {
	if i == nil || i.cfg.WriteErr <= 0 || i.rng.Float64() >= i.cfg.WriteErr {
		return false
	}
	i.stats.WriteErrors++
	i.fired(SourceWriteError, 0)
	return true
}

// Rot maybe corrupts p in place (1–4 bit flips) and reports whether it
// did. Only the caller's buffer is touched, never the stored data.
func (i *Injector) Rot(p []byte) bool {
	if i == nil || i.cfg.BitRot <= 0 || len(p) == 0 || i.rng.Float64() >= i.cfg.BitRot {
		return false
	}
	flips := 1 + i.rng.Intn(4)
	for k := 0; k < flips; k++ {
		p[i.rng.Intn(len(p))] ^= 1 << i.rng.Intn(8)
	}
	i.stats.BitRots++
	i.fired(SourceBitRot, 0)
	return true
}

// LatencySpike returns the extra positioning delay for this disk
// request: Spike seconds when the injector fires, 0 otherwise.
func (i *Injector) LatencySpike() units.Seconds {
	if i == nil || i.cfg.Latency <= 0 || i.rng.Float64() >= i.cfg.Latency {
		return 0
	}
	i.stats.LatencySpikes++
	i.stats.SpikeTime += i.cfg.Spike
	i.fired(SourceLatencySpike, i.cfg.Spike)
	return i.cfg.Spike
}

// ServerDrop decides whether a parallel-filesystem request is dropped.
func (i *Injector) ServerDrop() bool {
	if i == nil || i.cfg.Drop <= 0 || i.rng.Float64() >= i.cfg.Drop {
		return false
	}
	i.stats.ServerDrops++
	i.fired(SourceServerDrop, i.cfg.DropTimeout)
	return true
}

// DropTimeout returns the stall charged on a dropped PFS request.
func (i *Injector) DropTimeout() units.Seconds {
	if i == nil {
		return 0
	}
	return i.cfg.DropTimeout
}

// ParseSpec parses the CLI's -faults value: a comma-separated list of
// key=value pairs among bitrot, readerr, writeerr, latency, drop
// (probabilities in [0,1]), spike, timeout (seconds), and seed. An
// empty spec returns (nil, nil): injection off.
func ParseSpec(spec string) (*Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var c Config
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fault: malformed entry %q (want key=value)", part)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			c.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad value %q for %s: %v", val, key, err)
		}
		if f < 0 {
			return nil, fmt.Errorf("fault: %s must be non-negative, got %v", key, f)
		}
		switch key {
		case "bitrot", "readerr", "writeerr", "latency", "drop":
			if f > 1 {
				return nil, fmt.Errorf("fault: %s is a probability, got %v > 1", key, f)
			}
		}
		switch key {
		case "bitrot":
			c.BitRot = f
		case "readerr":
			c.ReadErr = f
		case "writeerr":
			c.WriteErr = f
		case "latency":
			c.Latency = f
		case "spike":
			c.Spike = units.Seconds(f)
		case "drop":
			c.Drop = f
		case "timeout":
			c.DropTimeout = units.Seconds(f)
		default:
			return nil, fmt.Errorf("fault: unknown key %q (bitrot, readerr, writeerr, latency, spike, drop, timeout, seed)", key)
		}
	}
	return &c, nil
}

package fault

import (
	"bytes"
	"testing"

	"repro/internal/units"
)

// TestNilInjectorIsInert confirms every hook is a safe no-op without an
// injector — the fault-free hot path.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	buf := []byte{1, 2, 3, 4}
	if inj.ReadError() || inj.WriteError() || inj.ServerDrop() {
		t.Error("nil injector fired an error")
	}
	if inj.Rot(buf) {
		t.Error("nil injector rotted bytes")
	}
	if d := inj.LatencySpike(); d != 0 {
		t.Errorf("nil injector spiked %v", d)
	}
	if st := inj.Stats(); st.Total() != 0 {
		t.Errorf("nil injector has stats %+v", st)
	}
}

// TestNilInjectorZeroAllocs pins the disabled-hook cost at 0 allocs —
// the guarantee that lets the hooks live on the storage hot path.
func TestNilInjectorZeroAllocs(t *testing.T) {
	var inj *Injector
	buf := make([]byte, 64)
	avg := testing.AllocsPerRun(200, func() {
		inj.ReadError()
		inj.WriteError()
		inj.Rot(buf)
		inj.LatencySpike()
		inj.ServerDrop()
	})
	if avg != 0 {
		t.Errorf("disabled fault hooks allocate %.1f allocs/op, want 0", avg)
	}
}

// TestEnabledInjectorZeroAllocs pins the enabled decision path too: an
// attached injector still must not allocate per decision.
func TestEnabledInjectorZeroAllocs(t *testing.T) {
	inj := New(Config{Seed: 1, BitRot: 0.5, ReadErr: 0.5, WriteErr: 0.5, Latency: 0.5, Drop: 0.5})
	buf := make([]byte, 64)
	avg := testing.AllocsPerRun(200, func() {
		inj.ReadError()
		inj.WriteError()
		inj.Rot(buf)
		inj.LatencySpike()
		inj.ServerDrop()
	})
	if avg != 0 {
		t.Errorf("enabled fault hooks allocate %.1f allocs/op, want 0", avg)
	}
}

// TestDeterministicSchedule replays the same config twice and expects
// an identical decision sequence and identical stats.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, BitRot: 0.3, ReadErr: 0.3, WriteErr: 0.3, Latency: 0.3, Drop: 0.3}
	run := func() ([]bool, Stats) {
		inj := New(cfg)
		var seq []bool
		buf := make([]byte, 32)
		for i := 0; i < 200; i++ {
			seq = append(seq, inj.ReadError(), inj.WriteError(), inj.Rot(buf),
				inj.LatencySpike() > 0, inj.ServerDrop())
		}
		return seq, inj.Stats()
	}
	seqA, stA := run()
	seqB, stB := run()
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d differs between identically-seeded injectors", i)
		}
	}
	if stA != stB {
		t.Errorf("stats differ: %+v vs %+v", stA, stB)
	}
	if stA.Total() == 0 {
		t.Error("30%% rates over 1000 decisions fired nothing")
	}
}

// TestRotFlipsDeliveredBytesOnly verifies rot mutates the caller's
// buffer (and always changes it).
func TestRotFlipsDeliveredBytesOnly(t *testing.T) {
	inj := New(Config{Seed: 7, BitRot: 1})
	orig := bytes.Repeat([]byte{0xAA}, 128)
	got := append([]byte(nil), orig...)
	if !inj.Rot(got) {
		t.Fatal("BitRot=1 did not fire")
	}
	if bytes.Equal(got, orig) {
		t.Error("rot fired but bytes unchanged")
	}
	if inj.Stats().BitRots != 1 {
		t.Errorf("BitRots = %d, want 1", inj.Stats().BitRots)
	}
}

// TestSpikeDefaultsAndStats checks the spike duration default and its
// accounting.
func TestSpikeDefaultsAndStats(t *testing.T) {
	inj := New(Config{Seed: 3, Latency: 1})
	d := inj.LatencySpike()
	if d != 150*units.Millisecond {
		t.Errorf("default spike = %v, want 150ms", d)
	}
	st := inj.Stats()
	if st.LatencySpikes != 1 || st.SpikeTime != d {
		t.Errorf("spike stats %+v", st)
	}
	if got := New(Config{Seed: 3}).DropTimeout(); got != 1 {
		t.Errorf("default drop timeout = %v, want 1s", got)
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("bitrot=0.01, readerr=2e-2,writeerr=0.005,latency=0.1,spike=0.25,drop=0.05,timeout=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 9, BitRot: 0.01, ReadErr: 0.02, WriteErr: 0.005,
		Latency: 0.1, Spike: 0.25, Drop: 0.05, DropTimeout: 2}
	if *c != want {
		t.Errorf("ParseSpec = %+v, want %+v", *c, want)
	}
	if !c.Enabled() {
		t.Error("parsed config should be enabled")
	}

	if c, err := ParseSpec(""); c != nil || err != nil {
		t.Errorf("empty spec = %+v, %v; want nil, nil", c, err)
	}
	for _, bad := range []string{"bitrot", "bitrot=x", "bitrot=-1", "bitrot=1.5", "nope=1", "seed=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if (Config{Seed: 5, Spike: 1, DropTimeout: 2}).Enabled() {
		t.Error("rate-free config enabled")
	}
	if !(Config{ReadErr: 0.1}).Enabled() {
		t.Error("read-error config disabled")
	}
}

// BenchmarkHooksDisabled measures what a dormant injector costs on the
// storage hot path: every hook must be a nil check and nothing else.
// scripts/bench.sh records it to prove 0 allocs/op.
func BenchmarkHooksDisabled(b *testing.B) {
	var inj *Injector
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inj.ReadError() || inj.WriteError() || inj.ServerDrop() {
			b.Fatal("nil injector fired")
		}
		inj.Rot(buf)
		if inj.LatencySpike() != 0 {
			b.Fatal("nil injector spiked")
		}
	}
}

// BenchmarkHooksEnabled measures the armed hooks: a PRNG draw per
// decision, still allocation-free.
func BenchmarkHooksEnabled(b *testing.B) {
	inj := New(Config{Seed: 1, BitRot: 0.01, ReadErr: 0.01, WriteErr: 0.01, Latency: 0.01, Drop: 0.01})
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inj.ReadError()
		_ = inj.WriteError()
		_ = inj.ServerDrop()
		inj.Rot(buf)
		_ = inj.LatencySpike()
	}
}

package viz

import (
	"image"
	"image/color"
	"testing"
)

func blank(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = 0x40
	}
	return img
}

func TestDrawTextMarksPixels(t *testing.T) {
	img := blank(100, 20)
	white := color.RGBA{255, 255, 255, 255}
	adv := DrawText(img, 2, 2, "T=1.5", white)
	if adv != 2+5*glyphW {
		t.Errorf("advance = %d, want %d", adv, 2+5*glyphW)
	}
	found := 0
	for y := 0; y < 20; y++ {
		for x := 0; x < 100; x++ {
			if img.RGBAAt(x, y) == white {
				found++
			}
		}
	}
	if found < 20 {
		t.Errorf("only %d text pixels drawn", found)
	}
}

func TestDrawTextClipsAtBounds(t *testing.T) {
	img := blank(10, 10)
	// Must not panic even though the text runs off the image.
	DrawText(img, 5, 5, "123456789", color.RGBA{255, 255, 255, 255})
}

func TestDrawTextUnknownRuneIsBlank(t *testing.T) {
	img := blank(40, 12)
	before := append([]uint8(nil), img.Pix...)
	DrawText(img, 2, 2, "~~~", color.RGBA{255, 255, 255, 255})
	for i := range img.Pix {
		if img.Pix[i] != before[i] {
			t.Fatal("unknown runes drew pixels")
		}
	}
}

func TestAnnotateStampsFooterAndColorbar(t *testing.T) {
	img := blank(256, 256)
	Annotate(img, AnnotateOptions{
		Step: 4096, SimTime: 12.5,
		Colormap: Inferno(), Lo: 0, Hi: 1000,
	})
	// Footer is black with white text.
	blackish := 0
	for x := 0; x < 256; x++ {
		c := img.RGBAAt(x, 250)
		if c.R < 16 && c.G < 16 && c.B < 16 {
			blackish++
		}
	}
	if blackish < 100 {
		t.Errorf("footer bar not drawn (%d black pixels on footer row)", blackish)
	}
	// The colorbar occupies the right third: colors vary along it.
	barY := 256 - 14 + 5
	left := img.RGBAAt(256-80, barY)
	right := img.RGBAAt(256-6, barY)
	if left == right {
		t.Error("colorbar shows no gradient")
	}
}

func TestAnnotateChangesEncoding(t *testing.T) {
	g := hotSpotGrid()
	opts := RenderOptions{Width: 256, Height: 256}
	a, _ := Render(g, opts)
	b, _ := Render(g, opts)
	Annotate(b, AnnotateOptions{Step: 7, SimTime: 1, Colormap: Inferno(), Lo: 0, Hi: 100})
	pa, _ := EncodePNG(a)
	pb, _ := EncodePNG(b)
	if string(pa) == string(pb) {
		t.Error("annotation did not change the encoded frame")
	}
}

func TestAnnotateDeterministic(t *testing.T) {
	mk := func() []byte {
		img := blank(256, 256)
		Annotate(img, AnnotateOptions{Step: 1, SimTime: 2, Colormap: CoolWarm(), Lo: -1, Hi: 1})
		p, _ := EncodePNG(img)
		return p
	}
	if string(mk()) != string(mk()) {
		t.Error("annotation not deterministic")
	}
}

func TestAnnotateTinyImageNoop(t *testing.T) {
	img := blank(40, 20)
	before := append([]uint8(nil), img.Pix...)
	Annotate(img, AnnotateOptions{Step: 1, SimTime: 1, Colormap: Inferno()})
	for i := range img.Pix {
		if img.Pix[i] != before[i] {
			t.Fatal("tiny image was annotated (should skip)")
		}
	}
}

package viz

import (
	"image/color"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/heat"
)

func TestColormapEndpoints(t *testing.T) {
	cm := Grayscale()
	if got := cm.Map(0); got != (color.RGBA{0, 0, 0, 255}) {
		t.Errorf("Map(0) = %v", got)
	}
	if got := cm.Map(1); got != (color.RGBA{255, 255, 255, 255}) {
		t.Errorf("Map(1) = %v", got)
	}
}

func TestColormapClamps(t *testing.T) {
	cm := Inferno()
	if cm.Map(-5) != cm.Map(0) || cm.Map(7) != cm.Map(1) {
		t.Error("out-of-range values not clamped")
	}
}

func TestColormapMidpointInterpolates(t *testing.T) {
	cm := Grayscale()
	got := cm.Map(0.5)
	if got.R < 126 || got.R > 129 || got.R != got.G || got.G != got.B {
		t.Errorf("Map(0.5) = %v, want mid-gray", got)
	}
}

func TestColormapMonotoneGray(t *testing.T) {
	cm := Grayscale()
	prev := -1
	for i := 0; i <= 100; i++ {
		c := cm.Map(float64(i) / 100)
		if int(c.R) < prev {
			t.Fatalf("gray ramp not monotone at %d", i)
		}
		prev = int(c.R)
	}
}

func TestColormapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-stop colormap did not panic")
		}
	}()
	NewColormap("bad", []float64{0}, []color.RGBA{{}})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"inferno", "coolwarm", "gray"} {
		cm, err := ByName(name)
		if err != nil || cm.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, cm, err)
		}
	}
	if _, err := ByName("plasma"); err == nil {
		t.Error("unknown colormap did not error")
	}
}

func hotSpotGrid() *heat.Grid {
	g := heat.NewGrid(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			dx, dy := float64(x-16), float64(y-16)
			g.Set(x, y, 100*math.Exp(-(dx*dx+dy*dy)/40))
		}
	}
	return g
}

func TestRenderDimensionsAndStats(t *testing.T) {
	img, stats := Render(hotSpotGrid(), RenderOptions{Width: 64, Height: 48})
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 48 {
		t.Errorf("bounds = %v", img.Bounds())
	}
	if stats.Pixels != 64*48 {
		t.Errorf("Pixels = %d, want %d", stats.Pixels, 64*48)
	}
}

func TestRenderHotCenterBrighterThanEdge(t *testing.T) {
	img, _ := Render(hotSpotGrid(), RenderOptions{Width: 64, Height: 64, Colormap: Grayscale()})
	center := img.RGBAAt(32, 32)
	corner := img.RGBAAt(1, 1)
	if center.R <= corner.R {
		t.Errorf("center %v not brighter than corner %v", center, corner)
	}
}

func TestRenderFlatFieldDoesNotDivideByZero(t *testing.T) {
	g := heat.NewGrid(8, 8)
	g.Fill(42)
	img, _ := Render(g, RenderOptions{Width: 16, Height: 16})
	if img == nil {
		t.Fatal("nil image")
	}
}

func TestRenderExplicitScale(t *testing.T) {
	g := heat.NewGrid(8, 8)
	g.Fill(50)
	img, _ := Render(g, RenderOptions{Width: 4, Height: 4, Colormap: Grayscale(), Lo: 0, Hi: 100})
	c := img.RGBAAt(2, 2)
	if c.R < 126 || c.R > 129 {
		t.Errorf("50/100 maps to %v, want mid-gray", c)
	}
}

func TestRenderBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size render did not panic")
		}
	}()
	Render(hotSpotGrid(), RenderOptions{Width: 0, Height: 10})
}

func TestRenderIsolinesDrawOverlay(t *testing.T) {
	opts := RenderOptions{Width: 64, Height: 64, Colormap: Grayscale(), Isolines: []float64{50}}
	img, stats := Render(hotSpotGrid(), opts)
	if stats.Segments == 0 || stats.ContourCells != 31*31 {
		t.Errorf("stats = %+v", stats)
	}
	// Some pixel near the 50-level ring must be pure white (overlay).
	found := false
	for y := 0; y < 64 && !found; y++ {
		for x := 0; x < 64; x++ {
			c := img.RGBAAt(x, y)
			if c == (color.RGBA{255, 255, 255, 255}) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no isoline pixels drawn")
	}
}

func TestMarchingSquaresCircleLevelSet(t *testing.T) {
	segs, cells := MarchingSquares(hotSpotGrid(), 50)
	if cells != 31*31 {
		t.Errorf("cells = %d", cells)
	}
	if len(segs) < 8 {
		t.Fatalf("only %d segments for a circular level set", len(segs))
	}
	// Every crossing point must lie close to the analytic circle
	// r = sqrt(40 * ln(100/50)) around (16,16).
	want := math.Sqrt(40 * math.Ln2)
	for _, s := range segs {
		for _, pt := range [][2]float64{{s.X0, s.Y0}, {s.X1, s.Y1}} {
			r := math.Hypot(pt[0]-16, pt[1]-16)
			if math.Abs(r-want) > 0.75 {
				t.Fatalf("contour point (%.2f,%.2f) at radius %.2f, want ~%.2f", pt[0], pt[1], r, want)
			}
		}
	}
}

func TestMarchingSquaresUniformFieldEmpty(t *testing.T) {
	g := heat.NewGrid(16, 16)
	g.Fill(10)
	if segs, _ := MarchingSquares(g, 50); len(segs) != 0 {
		t.Errorf("uniform field produced %d segments", len(segs))
	}
	if segs, _ := MarchingSquares(g, 5); len(segs) != 0 {
		t.Errorf("all-above field produced %d segments", len(segs))
	}
}

// Property: every marching-squares segment endpoint lies on a cell edge
// within the grid, for random fields and levels.
func TestMarchingSquaresEndpointsOnEdgesProperty(t *testing.T) {
	f := func(vals []uint8, levelRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		g := heat.NewGrid(9, 9)
		for i := range g.Data {
			g.Data[i] = float64(vals[i%len(vals)])
		}
		level := float64(levelRaw)
		segs, _ := MarchingSquares(g, level)
		for _, s := range segs {
			for _, pt := range [][2]float64{{s.X0, s.Y0}, {s.X1, s.Y1}} {
				x, y := pt[0], pt[1]
				if x < 0 || x > 8 || y < 0 || y > 8 {
					return false
				}
				onGridX := x == math.Trunc(x)
				onGridY := y == math.Trunc(y)
				if !onGridX && !onGridY {
					return false // crossing must be on a horizontal or vertical edge
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	img, _ := Render(hotSpotGrid(), RenderOptions{Width: 32, Height: 32})
	data, err := EncodePNG(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Errorf("PNG suspiciously small: %d bytes", len(data))
	}
	back, err := DecodePNG(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bounds() != img.Bounds() {
		t.Errorf("round-trip bounds %v != %v", back.Bounds(), img.Bounds())
	}
}

func BenchmarkRender512(b *testing.B) {
	g := hotSpotGrid()
	opts := RenderOptions{Width: 512, Height: 512, Isolines: []float64{25, 50, 75}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, _ := Render(g, opts)
		// Hand the frame back like the pipelines do — otherwise the bench
		// charges a fresh 1 MiB raster to every iteration and measures the
		// allocator, not the renderer.
		ReleaseFrame(img)
	}
}

package viz

import (
	"bytes"
	"testing"

	"repro/internal/heat"
)

// renderTestGrid returns a field with enough structure to produce
// contour segments in every row band.
func renderTestGrid(t *testing.T) *heat.Grid {
	t.Helper()
	s := heat.NewSolver(heat.DefaultParams())
	s.Step(50)
	return s.Field()
}

// TestRenderWorkerCountInvariant pins the tentpole contract on the
// renderer: the frame bytes — colormap fill and isoline overlay alike —
// must be identical at any worker count, because band boundaries only
// partition the work, never change it.
func TestRenderWorkerCountInvariant(t *testing.T) {
	g := renderTestGrid(t)
	opts := DefaultRenderOptions()
	opts.Isolines = []float64{25, 100, 500}

	opts.Workers = 1
	ref, refStats := Render(g, opts)
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		img, stats := Render(g, opts)
		if !bytes.Equal(img.Pix, ref.Pix) {
			t.Errorf("frame bytes differ between workers=1 and workers=%d", workers)
		}
		if stats != refStats {
			t.Errorf("render stats differ: workers=%d %+v, workers=1 %+v", workers, stats, refStats)
		}
		ReleaseFrame(img)
	}
	ReleaseFrame(ref)
}

// TestMarchingSquaresRowBandsConcatenate checks the property the
// parallel contour pass builds on: contiguous ascending row bands,
// concatenated, equal the serial full-grid segment sequence exactly —
// same segments, same order.
func TestMarchingSquaresRowBandsConcatenate(t *testing.T) {
	g := renderTestGrid(t)
	const level = 100.0
	serial, serialCells := MarchingSquares(g, level)

	for _, bands := range []int{2, 3, 7} {
		var merged []Segment
		cells := 0
		per := (g.NY - 1 + bands - 1) / bands
		for lo := 0; lo < g.NY-1; lo += per {
			hi := lo + per
			if hi > g.NY-1 {
				hi = g.NY - 1
			}
			segs, c := marchingSquaresRows(nil, g, level, lo, hi)
			merged = append(merged, segs...)
			cells += c
		}
		if cells != serialCells {
			t.Errorf("%d bands visited %d cells, serial visited %d", bands, cells, serialCells)
		}
		if len(merged) != len(serial) {
			t.Fatalf("%d bands produced %d segments, serial %d", bands, len(merged), len(serial))
		}
		for i := range merged {
			if merged[i] != serial[i] {
				t.Fatalf("%d bands: segment %d = %+v, serial %+v", bands, i, merged[i], serial[i])
			}
		}
	}
}

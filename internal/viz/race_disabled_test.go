//go:build !race

package viz

const raceEnabled = false

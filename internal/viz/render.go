package viz

import (
	"fmt"
	"image"
	"image/color"
	"sync"

	"repro/internal/heat"
	"repro/internal/par"
)

// framePool recycles output rasters between frames and scratchPool the
// per-render working state (band scratch plus the cached kernels handed
// to par): pipelines render hundreds of frames of one geometry, so
// steady-state rendering should not allocate. sync.Pool keeps the reuse
// safe when several pipelines render concurrently.
var (
	framePool   sync.Pool
	scratchPool sync.Pool
)

// acquireRGBA returns a w×h raster, reusing a pooled one when the
// geometry matches. Render overwrites every base pixel, so pooled
// rasters need no clearing.
func acquireRGBA(w, h int) *image.RGBA {
	if v := framePool.Get(); v != nil {
		img := v.(*image.RGBA)
		if img.Rect.Dx() == w && img.Rect.Dy() == h {
			return img
		}
	}
	return image.NewRGBA(image.Rect(0, 0, w, h))
}

// ReleaseFrame returns a raster obtained from Render to the frame pool
// once its pixels are no longer needed (typically after PNG encoding).
// The caller must not use img afterwards. Releasing is optional —
// unreleased frames are simply garbage-collected.
func ReleaseFrame(img *image.RGBA) {
	if img != nil {
		framePool.Put(img)
	}
}

// rowGrain is the minimum pixel or cell rows per band for the parallel
// fill and contour passes.
const rowGrain = 16

// renderScratch is one render call's working state. The two kernels
// handed to par are built once per scratch and read everything through
// the receiver, so a pooled scratch makes steady-state renders
// closure-allocation-free.
type renderScratch struct {
	img     *image.RGBA
	g       *heat.Grid
	cm      *Colormap
	lo, inv float64
	sx, sy  float64
	width   int
	level   float64

	// Per-column resample state, precomputed once per render: every pixel
	// row uses the same horizontal sample positions, so the int(fx) and
	// weight math runs width times instead of width*height times.
	colX []int32
	colW []float64

	// Per-band marching-squares partials, indexed by band; merged into
	// segs in ascending band order (== serial row order).
	bands [][]Segment
	cells []int
	segs  []Segment

	fillRows func(lo, hi int)
	march    func(band, lo, hi int)
}

func acquireScratch() *renderScratch {
	if v := scratchPool.Get(); v != nil {
		return v.(*renderScratch)
	}
	rs := &renderScratch{}
	rs.fillRows = func(lo, hi int) { rs.fill(lo, hi) }
	rs.march = func(band, lo, hi int) {
		segs, cells := marchingSquaresRows(rs.bands[band][:0], rs.g, rs.level, lo, hi)
		rs.bands[band] = segs
		rs.cells[band] = cells
	}
	return rs
}

func releaseScratch(rs *renderScratch) {
	rs.img = nil
	rs.g = nil
	scratchPool.Put(rs)
}

// prepareColumns fills the per-column resample tables for the current
// geometry (identical values to the per-pixel computation they replace).
func (rs *renderScratch) prepareColumns() {
	if cap(rs.colX) < rs.width {
		rs.colX = make([]int32, rs.width)
		rs.colW = make([]float64, rs.width)
	}
	rs.colX = rs.colX[:rs.width]
	rs.colW = rs.colW[:rs.width]
	nx := rs.g.NX
	for px := 0; px < rs.width; px++ {
		fx := float64(px) * rs.sx
		x0 := int(fx)
		if x0 >= nx-1 {
			x0 = nx - 2
		}
		rs.colX[px] = int32(x0)
		rs.colW[px] = fx - float64(x0)
	}
}

// fill colormaps pixel rows [py0, py1): bilinear field resample, then
// the colormap lookup. Rows are an exclusive output region of img.
// The per-row field slices and direct Pix writes keep the inner loop
// free of bounds checks and interface dispatch; the blend expression is
// the exact left-to-right form of the naive version, so output bytes
// are unchanged.
func (rs *renderScratch) fill(py0, py1 int) {
	g, img, cm := rs.g, rs.img, rs.cm
	lo, inv := rs.lo, rs.inv
	gnx := g.NX
	colX, colW := rs.colX, rs.colW
	lut, stops, seg := cm.lut, cm.stops, cm.seg
	first := cm.colors[0]
	last := cm.colors[len(cm.colors)-1]
	for py := py0; py < py1; py++ {
		fy := float64(py) * rs.sy
		y0 := int(fy)
		if y0 >= g.NY-1 {
			y0 = g.NY - 2
		}
		wy := fy - float64(y0)
		omwy := 1 - wy
		r0 := g.Data[y0*gnx : y0*gnx+gnx]
		r1 := g.Data[(y0+1)*gnx : (y0+1)*gnx+gnx]
		off := img.PixOffset(0, py)
		row := img.Pix[off : off+rs.width*4]
		o := 0
		for px := 0; px < rs.width; px++ {
			x0 := int(colX[px])
			wx := colW[px]
			omwx := 1 - wx
			v := omwx*omwy*r0[x0] +
				wx*omwy*r0[x0+1] +
				omwx*wy*r1[x0] +
				wx*wy*r1[x0+1]
			// Manually inlined Colormap.Map (same expressions, same
			// bits): the call and its uint8 widenings are the hot ~70 %
			// of a frame otherwise.
			t := (v - lo) * inv
			var c color.RGBA
			switch {
			case t <= 0:
				c = first
			case t >= 1:
				c = last
			case lut != nil:
				i := int(lut[int(t*256)])
				for stops[i] < t {
					i++
				}
				slo, shi := stops[i-1], stops[i]
				f := (t - slo) / (shi - slo)
				s := &seg[i-1]
				c = color.RGBA{
					R: uint8(s.r0 + f*s.dr + 0.5),
					G: uint8(s.g0 + f*s.dg + 0.5),
					B: uint8(s.b0 + f*s.db + 0.5),
					A: 255,
				}
			default:
				c = cm.Map(t)
			}
			row[o] = c.R
			row[o+1] = c.G
			row[o+2] = c.B
			row[o+3] = c.A
			o += 4
		}
	}
}

// RenderOptions configures a frame render.
type RenderOptions struct {
	// Width, Height of the output raster.
	Width, Height int
	// Colormap for the field; nil means Inferno.
	Colormap *Colormap
	// Lo, Hi normalize the field; equal values auto-scale per frame.
	Lo, Hi float64
	// Isolines, when non-empty, overlays marching-squares contours at
	// these field values.
	Isolines []float64
	// IsolineColor is the overlay color (default white).
	IsolineColor color.RGBA
	// Workers caps how many par workers the fill and contour passes may
	// use; 0 means GOMAXPROCS. Output bytes are identical at any
	// setting.
	Workers int
}

// DefaultRenderOptions returns the pipelines' 512×512 auto-scaled
// inferno frame with three isolines.
func DefaultRenderOptions() RenderOptions {
	return RenderOptions{Width: 512, Height: 512}
}

// RenderStats reports the work a render performed, which the platform
// model converts to virtual time.
type RenderStats struct {
	Pixels       int // colormapped output pixels
	ContourCells int // marching-squares cells visited
	Segments     int // contour segments emitted
}

// Render rasterizes the field: bilinear resampling to Width×Height,
// colormap application, optional isoline overlay. The returned raster
// may come from the frame pool; hand it back with ReleaseFrame when
// done to keep steady-state rendering allocation-free.
func Render(g *heat.Grid, opts RenderOptions) (*image.RGBA, RenderStats) {
	if opts.Width <= 0 || opts.Height <= 0 {
		panic(fmt.Sprintf("viz: render size %dx%d must be positive", opts.Width, opts.Height))
	}
	cm := opts.Colormap
	if cm == nil {
		cm = Inferno()
	}
	lo, hi := opts.Lo, opts.Hi
	if lo == hi {
		lo, hi = g.MinMax()
		if lo == hi { // flat field
			hi = lo + 1
		}
	}
	inv := 1 / (hi - lo)

	img := acquireRGBA(opts.Width, opts.Height)
	rs := acquireScratch()
	rs.img, rs.g, rs.cm = img, g, cm
	rs.lo, rs.inv = lo, inv
	rs.sx = float64(g.NX-1) / float64(max(opts.Width-1, 1))
	rs.sy = float64(g.NY-1) / float64(max(opts.Height-1, 1))
	rs.width = opts.Width
	rs.prepareColumns()

	var stats RenderStats
	par.ForLimit(opts.Workers, opts.Height, rowGrain, rs.fillRows)
	stats.Pixels = opts.Width * opts.Height

	lineColor := opts.IsolineColor
	if lineColor.A == 0 {
		lineColor = color.RGBA{255, 255, 255, 255}
	}
	cellRows := g.NY - 1
	for _, level := range opts.Isolines {
		count := par.Bands(opts.Workers, cellRows, rowGrain)
		for len(rs.bands) < count {
			rs.bands = append(rs.bands, nil)
			rs.cells = append(rs.cells, 0)
		}
		rs.level = level
		rs.segs = rs.segs[:0]
		// The ordered merge concatenates band partials ascending, which
		// is exactly the serial row-scan segment sequence.
		par.Reduce(opts.Workers, cellRows, rowGrain, rs.march, func(band int) {
			rs.segs = append(rs.segs, rs.bands[band]...)
			stats.ContourCells += rs.cells[band]
		})
		stats.Segments += len(rs.segs)
		scaleX := float64(opts.Width-1) / float64(g.NX-1)
		scaleY := float64(opts.Height-1) / float64(g.NY-1)
		for _, s := range rs.segs {
			drawLine(img,
				int(s.X0*scaleX+0.5), int(s.Y0*scaleY+0.5),
				int(s.X1*scaleX+0.5), int(s.Y1*scaleY+0.5),
				lineColor)
		}
	}
	releaseScratch(rs)
	return img, stats
}

// drawLine rasterizes a Bresenham segment, clipped to the image.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	b := img.Bounds()
	for {
		if image.Pt(x0, y0).In(b) {
			img.SetRGBA(x0, y0, c)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

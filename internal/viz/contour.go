package viz

import "repro/internal/heat"

// Segment is one isoline piece in grid coordinates (cell units).
type Segment struct {
	X0, Y0, X1, Y1 float64
}

// MarchingSquares extracts the isocontour of the field at the given
// level as line segments, returning the segments and the number of
// cells visited (the stage's work unit).
func MarchingSquares(g *heat.Grid, level float64) ([]Segment, int) {
	return MarchingSquaresInto(nil, g, level)
}

// MarchingSquaresInto is MarchingSquares appending into dst, letting
// render loops reuse one segment buffer across frames instead of
// growing a fresh slice per isoline.
func MarchingSquaresInto(dst []Segment, g *heat.Grid, level float64) ([]Segment, int) {
	return marchingSquaresRows(dst, g, level, 0, g.NY-1)
}

// marchingSquaresRows extracts the contour of cell rows [y0, y1) only.
// Cells are scanned in ascending (y, x) order, so concatenating the
// results of contiguous ascending row bands reproduces the full-grid
// segment sequence exactly — the property the parallel renderer's
// ordered merge relies on.
func marchingSquaresRows(dst []Segment, g *heat.Grid, level float64, y0, y1 int) ([]Segment, int) {
	segs := dst
	cells := 0
	for y := y0; y < y1; y++ {
		for x := 0; x < g.NX-1; x++ {
			cells++
			// Corner values: tl, tr, br, bl.
			tl := g.At(x, y)
			tr := g.At(x+1, y)
			br := g.At(x+1, y+1)
			bl := g.At(x, y+1)

			idx := 0
			if tl >= level {
				idx |= 8
			}
			if tr >= level {
				idx |= 4
			}
			if br >= level {
				idx |= 2
			}
			if bl >= level {
				idx |= 1
			}
			if idx == 0 || idx == 15 {
				continue
			}

			// Interpolated crossing points on each edge.
			top := func() (float64, float64) { return float64(x) + frac(tl, tr, level), float64(y) }
			bottom := func() (float64, float64) { return float64(x) + frac(bl, br, level), float64(y + 1) }
			left := func() (float64, float64) { return float64(x), float64(y) + frac(tl, bl, level) }
			right := func() (float64, float64) { return float64(x + 1), float64(y) + frac(tr, br, level) }

			emit := func(ax, ay, bx, by float64) {
				segs = append(segs, Segment{ax, ay, bx, by})
			}
			switch idx {
			case 1, 14: // bl isolated
				ax, ay := left()
				bx, by := bottom()
				emit(ax, ay, bx, by)
			case 2, 13: // br isolated
				ax, ay := bottom()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 3, 12: // bottom half
				ax, ay := left()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 4, 11: // tr isolated
				ax, ay := top()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 6, 9: // right half
				ax, ay := top()
				bx, by := bottom()
				emit(ax, ay, bx, by)
			case 7, 8: // tl isolated
				ax, ay := left()
				bx, by := top()
				emit(ax, ay, bx, by)
			case 5: // saddle: tl+br ambiguous, resolve by center average
				if (tl+tr+br+bl)/4 >= level {
					ax, ay := left()
					bx, by := top()
					emit(ax, ay, bx, by)
					cx, cy := bottom()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				} else {
					ax, ay := left()
					bx, by := bottom()
					emit(ax, ay, bx, by)
					cx, cy := top()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				}
			case 10: // saddle: tr+bl
				if (tl+tr+br+bl)/4 >= level {
					ax, ay := top()
					bx, by := right()
					emit(ax, ay, bx, by)
					cx, cy := left()
					dx, dy := bottom()
					emit(cx, cy, dx, dy)
				} else {
					ax, ay := left()
					bx, by := top()
					emit(ax, ay, bx, by)
					cx, cy := bottom()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				}
			}
		}
	}
	return segs, cells
}

// frac returns the interpolation fraction where the level crosses
// between a and b, clamped to [0, 1].
func frac(a, b, level float64) float64 {
	if a == b {
		return 0.5
	}
	f := (level - a) / (b - a)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

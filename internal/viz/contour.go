package viz

import "repro/internal/heat"

// Segment is one isoline piece in grid coordinates (cell units).
type Segment struct {
	X0, Y0, X1, Y1 float64
}

// MarchingSquares extracts the isocontour of the field at the given
// level as line segments, returning the segments and the number of
// cells visited (the stage's work unit).
func MarchingSquares(g *heat.Grid, level float64) ([]Segment, int) {
	return MarchingSquaresInto(nil, g, level)
}

// MarchingSquaresInto is MarchingSquares appending into dst, letting
// render loops reuse one segment buffer across frames instead of
// growing a fresh slice per isoline.
func MarchingSquaresInto(dst []Segment, g *heat.Grid, level float64) ([]Segment, int) {
	return marchingSquaresRows(dst, g, level, 0, g.NY-1)
}

// Cell edges, the coordinates a contour segment endpoint can lie on.
const (
	edgeTop = iota
	edgeBottom
	edgeLeft
	edgeRight
	edgeNone = 255
)

// msTable maps a cell's corner classification (tl<<3 | tr<<2 | br<<1 |
// bl) to the edges its contour segment crosses, endpoint order
// included. The ambiguous saddles (5 and 10) emit two segments and are
// resolved against the cell-center average at scan time.
var msTable = [16][2]uint8{
	0:  {edgeNone, edgeNone},
	1:  {edgeLeft, edgeBottom},  // bl isolated
	2:  {edgeBottom, edgeRight}, // br isolated
	3:  {edgeLeft, edgeRight},   // bottom half
	4:  {edgeTop, edgeRight},    // tr isolated
	5:  {edgeNone, edgeNone},    // saddle: tl+br
	6:  {edgeTop, edgeBottom},   // right half
	7:  {edgeLeft, edgeTop},     // tl isolated (inverted)
	8:  {edgeLeft, edgeTop},     // tl isolated
	9:  {edgeTop, edgeBottom},   // left half
	10: {edgeNone, edgeNone},    // saddle: tr+bl
	11: {edgeTop, edgeRight},
	12: {edgeLeft, edgeRight}, // top half
	13: {edgeBottom, edgeRight},
	14: {edgeLeft, edgeBottom},
	15: {edgeNone, edgeNone},
}

// marchingSquaresRows extracts the contour of cell rows [y0, y1) only.
// Cells are scanned in ascending (y, x) order, so concatenating the
// results of contiguous ascending row bands reproduces the full-grid
// segment sequence exactly — the property the parallel renderer's
// ordered merge relies on.
//
// The scan classifies each cell with the msTable lookup and hoists the
// two corner rows into slices, so the common empty/full cells cost four
// comparisons and a table read with no per-cell closures or At calls.
func marchingSquaresRows(dst []Segment, g *heat.Grid, level float64, y0, y1 int) ([]Segment, int) {
	segs := dst
	nx := g.NX
	for y := y0; y < y1; y++ {
		rowT := g.Data[y*nx : y*nx+nx]
		rowB := g.Data[(y+1)*nx : (y+1)*nx+nx]
		fy := float64(y)
		fy1 := float64(y + 1)
		tl, bl := rowT[0], rowB[0]
		for x := 0; x < nx-1; x++ {
			tr := rowT[x+1]
			br := rowB[x+1]

			idx := 0
			if tl >= level {
				idx |= 8
			}
			if tr >= level {
				idx |= 4
			}
			if br >= level {
				idx |= 2
			}
			if bl >= level {
				idx |= 1
			}
			if idx != 0 && idx != 15 {
				e := msTable[idx]
				if e[0] != edgeNone {
					segs = append(segs, Segment{})
					s := &segs[len(segs)-1]
					s.X0, s.Y0 = edgePoint(e[0], x, fy, fy1, tl, tr, bl, br, level)
					s.X1, s.Y1 = edgePoint(e[1], x, fy, fy1, tl, tr, bl, br, level)
				} else {
					// Saddle: two segments, disambiguated by the center.
					var a, b [2]uint8
					if center := (tl + tr + br + bl) / 4; idx == 5 {
						if center >= level {
							a = [2]uint8{edgeLeft, edgeTop}
							b = [2]uint8{edgeBottom, edgeRight}
						} else {
							a = [2]uint8{edgeLeft, edgeBottom}
							b = [2]uint8{edgeTop, edgeRight}
						}
					} else if center >= level {
						a = [2]uint8{edgeTop, edgeRight}
						b = [2]uint8{edgeLeft, edgeBottom}
					} else {
						a = [2]uint8{edgeLeft, edgeTop}
						b = [2]uint8{edgeBottom, edgeRight}
					}
					var s Segment
					s.X0, s.Y0 = edgePoint(a[0], x, fy, fy1, tl, tr, bl, br, level)
					s.X1, s.Y1 = edgePoint(a[1], x, fy, fy1, tl, tr, bl, br, level)
					segs = append(segs, s)
					s.X0, s.Y0 = edgePoint(b[0], x, fy, fy1, tl, tr, bl, br, level)
					s.X1, s.Y1 = edgePoint(b[1], x, fy, fy1, tl, tr, bl, br, level)
					segs = append(segs, s)
				}
			}
			tl, bl = tr, br
		}
	}
	return segs, (y1 - y0) * (nx - 1)
}

// edgePoint returns the interpolated contour crossing on one cell edge.
func edgePoint(e uint8, x int, fy, fy1, tl, tr, bl, br, level float64) (float64, float64) {
	switch e {
	case edgeTop:
		return float64(x) + frac(tl, tr, level), fy
	case edgeBottom:
		return float64(x) + frac(bl, br, level), fy1
	case edgeLeft:
		return float64(x), fy + frac(tl, bl, level)
	default:
		return float64(x + 1), fy + frac(tr, br, level)
	}
}

// frac returns the interpolation fraction where the level crosses
// between a and b, clamped to [0, 1].
func frac(a, b, level float64) float64 {
	if a == b {
		return 0.5
	}
	f := (level - a) / (b - a)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

//go:build race

package viz

// raceEnabled gates assertions that depend on sync.Pool actually
// retaining items; the race-mode runtime drops Puts at random to
// expose misuse, so identity-reuse checks are meaningless there.
const raceEnabled = true

package viz

import (
	"fmt"
	"image"
	"math"

	"repro/internal/field"
)

// Downsample returns the field sampled at every k-th cell in each
// dimension — the in-situ data-sampling technique of Woodring et al.
// [21]: ship a fraction 1/k² of the data, accept some visual error.
func Downsample(g *field.Grid, k int) *field.Grid {
	if k <= 0 {
		panic(fmt.Sprintf("viz: downsample factor %d must be positive", k))
	}
	nx := (g.NX + k - 1) / k
	ny := (g.NY + k - 1) / k
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("viz: downsample factor %d collapses the %dx%d grid", k, g.NX, g.NY))
	}
	out := field.New(nx, ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			out.Set(x, y, g.At(x*k, y*k))
		}
	}
	return out
}

// MSE returns the mean squared error between two equal-sized images,
// averaged over the RGB channels (alpha ignored).
func MSE(a, b *image.RGBA) float64 {
	if a.Bounds() != b.Bounds() {
		panic("viz: MSE requires equal image bounds")
	}
	var sum float64
	n := 0
	bounds := a.Bounds()
	for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
		for x := bounds.Min.X; x < bounds.Max.X; x++ {
			ca := a.RGBAAt(x, y)
			cb := b.RGBAAt(x, y)
			dr := float64(ca.R) - float64(cb.R)
			dg := float64(ca.G) - float64(cb.G)
			db := float64(ca.B) - float64(cb.B)
			sum += dr*dr + dg*dg + db*db
			n += 3
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PSNR returns the peak signal-to-noise ratio between two images in
// decibels; +Inf for identical images. Above ~40 dB differences are
// visually negligible; below ~30 dB they are obvious.
func PSNR(a, b *image.RGBA) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

package viz

import (
	"testing"
)

// TestRenderSteadyStateAllocs is the allocation-regression guard for
// the hot render path: once the frame and segment pools are warm, a
// Render+ReleaseFrame cycle of fixed geometry must not allocate per
// frame. The budget of 2 tolerates an occasional GC emptying the
// sync.Pools mid-measurement.
func TestRenderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so steady-state allocation counts don't hold")
	}
	g := hotSpotGrid()
	opts := RenderOptions{Width: 128, Height: 128, Isolines: []float64{25, 50, 75}}
	for i := 0; i < 3; i++ { // warm the pools
		img, _ := Render(g, opts)
		ReleaseFrame(img)
	}
	avg := testing.AllocsPerRun(50, func() {
		img, _ := Render(g, opts)
		ReleaseFrame(img)
	})
	if avg > 2 {
		t.Errorf("steady-state Render allocates %.1f objects/frame, want <= 2", avg)
	}
}

// TestRenderReusesReleasedFrame checks the pool actually hands a
// released raster back for matching geometry.
func TestRenderReusesReleasedFrame(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so identity reuse doesn't hold")
	}
	g := hotSpotGrid()
	opts := RenderOptions{Width: 64, Height: 64}
	img1, _ := Render(g, opts)
	ReleaseFrame(img1)
	img2, _ := Render(g, opts)
	defer ReleaseFrame(img2)
	if img1 != img2 {
		t.Error("released frame was not reused for identical geometry")
	}
}

// TestRenderGeometryChangeSafe checks a pooled frame of the wrong size
// is never returned.
func TestRenderGeometryChangeSafe(t *testing.T) {
	g := hotSpotGrid()
	img1, _ := Render(g, RenderOptions{Width: 64, Height: 64})
	ReleaseFrame(img1)
	img2, _ := Render(g, RenderOptions{Width: 32, Height: 48})
	defer ReleaseFrame(img2)
	if img2.Bounds().Dx() != 32 || img2.Bounds().Dy() != 48 {
		t.Errorf("bounds = %v after geometry change", img2.Bounds())
	}
}

// TestReleaseFrameNil makes sure releasing nil is a no-op.
func TestReleaseFrameNil(t *testing.T) {
	ReleaseFrame(nil)
}

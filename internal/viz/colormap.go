// Package viz is the visualization stage of both pipelines: colormaps,
// a bilinear field-to-raster renderer, marching-squares isocontours,
// and PNG frame encoding. Like the heat solver, it performs real work
// on real data; the platform model charges virtual time for the pixels
// and cells it processes.
package viz

import (
	"fmt"
	"image/color"
	"sort"
)

// Colormap maps a normalized scalar in [0, 1] to a color by linear
// interpolation between control points.
type Colormap struct {
	name   string
	stops  []float64
	colors []color.RGBA
	// lut accelerates the per-pixel stop search: lut[b] is a lower bound
	// on the segment index for every t in bucket [b/256, (b+1)/256), so
	// Map starts there and walks at most a stop or two instead of binary
	// searching. Nil when the map has too many stops for uint8 indices
	// (then Map falls back to sort.SearchFloat64s).
	lut []uint8
	// seg holds each segment's endpoint colors pre-widened to float64
	// (base and exact integer delta), sparing the render fill the six
	// uint8 conversions per pixel. seg[i] spans stops[i]..stops[i+1].
	seg []cmSegment
}

// cmSegment is one colormap segment's interpolation state. The deltas
// are exact (integer differences within float64 range), so
// base + f*delta + 0.5 computes bit-identically to lerp8.
type cmSegment struct {
	r0, dr, g0, dg, b0, db float64
}

// NewColormap builds a colormap from sorted control points. It panics
// on fewer than two stops or unsorted positions.
func NewColormap(name string, stops []float64, colors []color.RGBA) *Colormap {
	if len(stops) < 2 || len(stops) != len(colors) {
		panic("viz: colormap needs >= 2 matching stops and colors")
	}
	if !sort.Float64sAreSorted(stops) {
		panic("viz: colormap stops must be sorted")
	}
	if stops[0] != 0 || stops[len(stops)-1] != 1 {
		panic("viz: colormap must span [0, 1]")
	}
	c := &Colormap{name: name, stops: stops, colors: colors}
	c.seg = make([]cmSegment, len(stops)-1)
	for i := range c.seg {
		a, b := colors[i], colors[i+1]
		c.seg[i] = cmSegment{
			r0: float64(a.R), dr: float64(b.R) - float64(a.R),
			g0: float64(a.G), dg: float64(b.G) - float64(a.G),
			b0: float64(a.B), db: float64(b.B) - float64(a.B),
		}
	}
	if len(stops) <= 255 {
		c.lut = make([]uint8, 256)
		for b := 0; b < 256; b++ {
			// Smallest index whose stop is >= the bucket's lower edge —
			// never above SearchFloat64s' answer for any t in the bucket.
			i := sort.SearchFloat64s(stops, float64(b)/256)
			if i < 1 {
				i = 1
			}
			c.lut[b] = uint8(i)
		}
	}
	return c
}

// Name returns the colormap name.
func (c *Colormap) Name() string { return c.name }

// Map returns the color for t, clamping t into [0, 1].
func (c *Colormap) Map(t float64) color.RGBA {
	if t <= 0 {
		return c.colors[0]
	}
	if t >= 1 {
		return c.colors[len(c.colors)-1]
	}
	// Find the smallest i with stops[i] >= t — exactly what
	// sort.SearchFloat64s(stops, t) returns. The lut gives a lower bound
	// for t's bucket (clamped to >= 1, valid because stops[0] == 0 < t),
	// and by monotonicity the forward walk lands on the same index.
	var i int
	if c.lut != nil {
		i = int(c.lut[int(t*256)])
		for c.stops[i] < t {
			i++
		}
	} else {
		i = sort.SearchFloat64s(c.stops, t)
	}
	// stops[i-1] < t <= stops[i]; i >= 1 because stops[0] == 0 < t.
	lo, hi := c.stops[i-1], c.stops[i]
	f := (t - lo) / (hi - lo)
	a, b := c.colors[i-1], c.colors[i]
	return color.RGBA{
		R: lerp8(a.R, b.R, f),
		G: lerp8(a.G, b.G, f),
		B: lerp8(a.B, b.B, f),
		A: 255,
	}
}

func lerp8(a, b uint8, f float64) uint8 {
	return uint8(float64(a) + f*(float64(b)-float64(a)) + 0.5)
}

// The built-in maps are immutable after construction, so the
// constructors hand out shared instances: renders are per-frame hot
// paths and must not rebuild the control-point tables every call.
var (
	infernoMap = NewColormap("inferno",
		[]float64{0, 0.25, 0.5, 0.75, 1},
		[]color.RGBA{
			{0, 0, 4, 255},
			{87, 16, 110, 255},
			{188, 55, 84, 255},
			{249, 142, 9, 255},
			{252, 255, 164, 255},
		})
	coolwarmMap = NewColormap("coolwarm",
		[]float64{0, 0.5, 1},
		[]color.RGBA{
			{59, 76, 192, 255},
			{221, 221, 221, 255},
			{180, 4, 38, 255},
		})
	grayMap = NewColormap("gray",
		[]float64{0, 1},
		[]color.RGBA{{0, 0, 0, 255}, {255, 255, 255, 255}})
)

// Inferno returns a perceptually-ordered dark-to-bright map suited to
// temperature fields.
func Inferno() *Colormap { return infernoMap }

// CoolWarm returns the diverging blue-white-red map used for signed
// anomalies.
func CoolWarm() *Colormap { return coolwarmMap }

// Grayscale returns a linear black-to-white ramp.
func Grayscale() *Colormap { return grayMap }

// ByName looks up a built-in colormap.
func ByName(name string) (*Colormap, error) {
	switch name {
	case "inferno":
		return Inferno(), nil
	case "coolwarm":
		return CoolWarm(), nil
	case "gray":
		return Grayscale(), nil
	default:
		return nil, fmt.Errorf("viz: unknown colormap %q", name)
	}
}

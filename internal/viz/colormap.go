// Package viz is the visualization stage of both pipelines: colormaps,
// a bilinear field-to-raster renderer, marching-squares isocontours,
// and PNG frame encoding. Like the heat solver, it performs real work
// on real data; the platform model charges virtual time for the pixels
// and cells it processes.
package viz

import (
	"fmt"
	"image/color"
	"sort"
)

// Colormap maps a normalized scalar in [0, 1] to a color by linear
// interpolation between control points.
type Colormap struct {
	name   string
	stops  []float64
	colors []color.RGBA
}

// NewColormap builds a colormap from sorted control points. It panics
// on fewer than two stops or unsorted positions.
func NewColormap(name string, stops []float64, colors []color.RGBA) *Colormap {
	if len(stops) < 2 || len(stops) != len(colors) {
		panic("viz: colormap needs >= 2 matching stops and colors")
	}
	if !sort.Float64sAreSorted(stops) {
		panic("viz: colormap stops must be sorted")
	}
	if stops[0] != 0 || stops[len(stops)-1] != 1 {
		panic("viz: colormap must span [0, 1]")
	}
	return &Colormap{name: name, stops: stops, colors: colors}
}

// Name returns the colormap name.
func (c *Colormap) Name() string { return c.name }

// Map returns the color for t, clamping t into [0, 1].
func (c *Colormap) Map(t float64) color.RGBA {
	if t <= 0 {
		return c.colors[0]
	}
	if t >= 1 {
		return c.colors[len(c.colors)-1]
	}
	i := sort.SearchFloat64s(c.stops, t)
	// stops[i-1] < t <= stops[i]; i >= 1 because stops[0] == 0 < t.
	lo, hi := c.stops[i-1], c.stops[i]
	f := (t - lo) / (hi - lo)
	a, b := c.colors[i-1], c.colors[i]
	return color.RGBA{
		R: lerp8(a.R, b.R, f),
		G: lerp8(a.G, b.G, f),
		B: lerp8(a.B, b.B, f),
		A: 255,
	}
}

func lerp8(a, b uint8, f float64) uint8 {
	return uint8(float64(a) + f*(float64(b)-float64(a)) + 0.5)
}

// The built-in maps are immutable after construction, so the
// constructors hand out shared instances: renders are per-frame hot
// paths and must not rebuild the control-point tables every call.
var (
	infernoMap = NewColormap("inferno",
		[]float64{0, 0.25, 0.5, 0.75, 1},
		[]color.RGBA{
			{0, 0, 4, 255},
			{87, 16, 110, 255},
			{188, 55, 84, 255},
			{249, 142, 9, 255},
			{252, 255, 164, 255},
		})
	coolwarmMap = NewColormap("coolwarm",
		[]float64{0, 0.5, 1},
		[]color.RGBA{
			{59, 76, 192, 255},
			{221, 221, 221, 255},
			{180, 4, 38, 255},
		})
	grayMap = NewColormap("gray",
		[]float64{0, 1},
		[]color.RGBA{{0, 0, 0, 255}, {255, 255, 255, 255}})
)

// Inferno returns a perceptually-ordered dark-to-bright map suited to
// temperature fields.
func Inferno() *Colormap { return infernoMap }

// CoolWarm returns the diverging blue-white-red map used for signed
// anomalies.
func CoolWarm() *Colormap { return coolwarmMap }

// Grayscale returns a linear black-to-white ramp.
func Grayscale() *Colormap { return grayMap }

// ByName looks up a built-in colormap.
func ByName(name string) (*Colormap, error) {
	switch name {
	case "inferno":
		return Inferno(), nil
	case "coolwarm":
		return CoolWarm(), nil
	case "gray":
		return Grayscale(), nil
	default:
		return nil, fmt.Errorf("viz: unknown colormap %q", name)
	}
}

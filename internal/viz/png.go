package viz

import (
	"bytes"
	"image"
	"image/png"
	"sync"
)

// pngBuffers recycles the PNG encoder's working state — including its
// zlib writer, whose construction dominates a fresh encode's
// allocations — across frames. Reused encoders are Reset by the stdlib
// and produce byte-identical output.
type pngBufferPool struct{ p sync.Pool }

func (pp *pngBufferPool) Get() *png.EncoderBuffer {
	b, _ := pp.p.Get().(*png.EncoderBuffer)
	return b
}

func (pp *pngBufferPool) Put(b *png.EncoderBuffer) { pp.p.Put(b) }

var pngBuffers pngBufferPool

// EncodePNG serializes a frame to PNG bytes — the artifact both
// pipelines write to disk per visualization event. The encoder's
// internal buffers come from a shared pool, so per-frame allocation is
// just the returned blob.
func EncodePNG(img image.Image) ([]byte, error) {
	var buf bytes.Buffer
	enc := png.Encoder{CompressionLevel: png.BestSpeed, BufferPool: &pngBuffers}
	if err := enc.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePNG parses PNG bytes back into an image (used by tests and the
// quickstart example to validate frames).
func DecodePNG(data []byte) (image.Image, error) {
	return png.Decode(bytes.NewReader(data))
}

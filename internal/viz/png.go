package viz

import (
	"bytes"
	"image"
	"image/png"
)

// EncodePNG serializes a frame to PNG bytes — the artifact both
// pipelines write to disk per visualization event.
func EncodePNG(img image.Image) ([]byte, error) {
	var buf bytes.Buffer
	enc := png.Encoder{CompressionLevel: png.BestSpeed}
	if err := enc.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePNG parses PNG bytes back into an image (used by tests and the
// quickstart example to validate frames).
func DecodePNG(data []byte) (image.Image, error) {
	return png.Decode(bytes.NewReader(data))
}

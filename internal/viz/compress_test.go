package viz

import (
	"math"
	"testing"

	"repro/internal/heat"
)

func TestCompressRoundTrip(t *testing.T) {
	g := hotSpotGrid()
	blob, err := CompressField(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressField(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.NX != g.NX || back.NY != g.NY {
		t.Fatalf("dims %dx%d", back.NX, back.NY)
	}
	lo, hi := g.MinMax()
	tol := (hi - lo) / 65535 * 1.01
	for i := range g.Data {
		if math.Abs(back.Data[i]-g.Data[i]) > tol {
			t.Fatalf("cell %d off by %v (> quantization step)", i, math.Abs(back.Data[i]-g.Data[i]))
		}
	}
}

func TestCompressionRatioOnSmoothField(t *testing.T) {
	// A real 128x128 solver field (what the pipelines checkpoint)
	// delta-compresses ~3x.
	s := heat.NewSolver(heat.DefaultParams())
	s.Step(500)
	ratio, err := CompressionRatio(s.Field())
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 2 {
		t.Errorf("solver field compressed only %.2fx, want >= 2", ratio)
	}
}

func TestCompressionRatioOnNoise(t *testing.T) {
	g := heat.NewGrid(64, 64)
	x := uint64(12345)
	for i := range g.Data {
		x = x*6364136223846793005 + 1442695040888963407
		g.Data[i] = float64(x >> 40)
	}
	ratio, err := CompressionRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	// Random data barely compresses.
	if ratio > 1.3 {
		t.Errorf("noise compressed %.2fx, suspicious", ratio)
	}
}

func TestCompressFlatField(t *testing.T) {
	g := heat.NewGrid(32, 32)
	g.Fill(42)
	blob, err := CompressField(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressField(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(5, 5) != 42 {
		t.Errorf("flat field value = %v", back.At(5, 5))
	}
	ratio, _ := CompressionRatio(g)
	if ratio < 20 {
		t.Errorf("flat field compressed only %.1fx", ratio)
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := DecompressField([]byte{1, 2, 3}); err == nil {
		t.Error("garbage decompressed without error")
	}
}

func TestCompressedRenderVisuallyClose(t *testing.T) {
	g := hotSpotGrid()
	blob, _ := CompressField(g)
	back, _ := DecompressField(blob)
	opts := RenderOptions{Width: 128, Height: 128, Lo: 0, Hi: 100}
	a, _ := Render(g, opts)
	b, _ := Render(back, opts)
	if p := PSNR(a, b); p < 45 {
		t.Errorf("16-bit quantization PSNR = %.1f dB, want >= 45 (visually lossless)", p)
	}
}

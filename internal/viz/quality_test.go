package viz

import (
	"math"
	"testing"

	"repro/internal/heat"
)

func TestDownsampleDimensions(t *testing.T) {
	g := heat.NewGrid(128, 96)
	d := Downsample(g, 4)
	if d.NX != 32 || d.NY != 24 {
		t.Errorf("downsampled dims = %dx%d", d.NX, d.NY)
	}
}

func TestDownsamplePicksEveryKth(t *testing.T) {
	g := heat.NewGrid(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			g.Set(x, y, float64(y*8+x))
		}
	}
	d := Downsample(g, 2)
	if d.At(1, 1) != g.At(2, 2) {
		t.Errorf("d(1,1) = %v, want g(2,2) = %v", d.At(1, 1), g.At(2, 2))
	}
}

func TestDownsampleIdentity(t *testing.T) {
	g := hotSpotGrid()
	d := Downsample(g, 1)
	for i := range g.Data {
		if d.Data[i] != g.Data[i] {
			t.Fatal("factor-1 downsample changed data")
		}
	}
}

func TestDownsampleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("factor 0 did not panic")
		}
	}()
	Downsample(heat.NewGrid(8, 8), 0)
}

func TestPSNRIdenticalIsInf(t *testing.T) {
	img, _ := Render(hotSpotGrid(), RenderOptions{Width: 32, Height: 32})
	if !math.IsInf(PSNR(img, img), 1) {
		t.Error("identical images not +Inf PSNR")
	}
}

func TestPSNRDegradesWithSampling(t *testing.T) {
	g := hotSpotGrid()
	opts := RenderOptions{Width: 128, Height: 128, Lo: 0, Hi: 100}
	ref, _ := Render(g, opts)
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 8} {
		img, _ := Render(Downsample(g, k), opts)
		p := PSNR(ref, img)
		if p >= prev {
			t.Errorf("PSNR did not degrade at factor %d: %v >= %v", k, p, prev)
		}
		if p < 10 {
			t.Errorf("PSNR at factor %d implausibly low: %v", k, p)
		}
		prev = p
	}
	// Mild sampling of a smooth field should stay reasonable.
	img2, _ := Render(Downsample(g, 2), opts)
	if p := PSNR(ref, img2); p < 25 {
		t.Errorf("factor-2 PSNR = %.1f dB, want >= 25 (smooth field)", p)
	}
}

func TestMSEBoundsAndSymmetry(t *testing.T) {
	g := hotSpotGrid()
	opts := RenderOptions{Width: 64, Height: 64, Lo: 0, Hi: 100}
	a, _ := Render(g, opts)
	b, _ := Render(Downsample(g, 4), opts)
	ab, ba := MSE(a, b), MSE(b, a)
	if ab != ba {
		t.Errorf("MSE not symmetric: %v vs %v", ab, ba)
	}
	if ab < 0 || ab > 255*255 {
		t.Errorf("MSE out of range: %v", ab)
	}
}

func TestMSEDifferentBoundsPanics(t *testing.T) {
	a, _ := Render(hotSpotGrid(), RenderOptions{Width: 32, Height: 32})
	b, _ := Render(hotSpotGrid(), RenderOptions{Width: 16, Height: 16})
	defer func() {
		if recover() == nil {
			t.Error("mismatched bounds did not panic")
		}
	}()
	MSE(a, b)
}
